// Package rvcte reproduces "Early Concolic Testing of Embedded Binaries
// with Virtual Prototypes: A RISC-V Case Study" (DAC 2019): a concolic
// testing engine (CTE) integrated with an RV32IMC instruction set
// simulator inside a virtual prototype, with peripherals integrated as
// software models through a small CTE-interface.
//
// The public surface lives in the command-line tools (cmd/cte, cmd/rvsim,
// cmd/minicc, cmd/rvasm) and the runnable examples (examples/...); the
// benchmark harness in bench_test.go regenerates every table and figure
// of the paper's evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package rvcte
