package rvcte

// End-to-end integration tests across the toolchain: mini-C -> assembly
// -> ELF on disk -> reload -> concolic exploration, mirroring exactly
// what the cmd/minicc + cmd/cte tools do.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/relf"
	"rvcte/internal/smt"
)

// TestToolchainPipeline compiles a buggy program to an ELF file on disk,
// loads it back and lets exploration find the seeded assertion failure —
// the `minicc -o prog.elf prog.c && cte prog.elf` flow.
func TestToolchainPipeline(t *testing.T) {
	src := `
unsigned char pin[4];

int check_pin(void) {
    /* accepts exactly 7-3-1-9 */
    if (pin[0] != 7) return 0;
    if (pin[1] != 3) return 0;
    if (pin[2] != 1) return 0;
    if (pin[3] != 9) return 0;
    return 1;
}

int main(void) {
    CTE_make_symbolic(pin, 4, "pin");
    if (check_pin()) {
        CTE_assert(0 && "backdoor reached");
    }
    return 0;
}
`
	elf, err := guest.Build(guest.Program{
		Name:    "pin-check",
		Sources: []guest.Source{guest.C("main.c", src)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Write the ELF to disk and read it back (the on-disk tool flow).
	dir := t.TempDir()
	path := filepath.Join(dir, "pin.elf")
	if err := os.WriteFile(path, relf.Write(elf), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := relf.Load(data)
	if err != nil {
		t.Fatal(err)
	}

	b := smt.NewBuilder()
	core := iss.New(b, iss.Config{RamBase: 0x80000000, RamSize: 4 << 20, MaxInstr: 10_000_000})
	core.LoadImage(loaded.Addr, loaded.Data, loaded.Entry)

	rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 100}}).Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("exploration must find the PIN backdoor: %v", rep)
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Fatalf("kind: %v", f.Err)
	}
	want := []uint64{7, 3, 1, 9}
	for i, w := range want {
		if got := b.Value(f.Input, "pin["+string(rune('0'+i))+"]"); got != w {
			t.Errorf("pin[%d] = %d want %d", i, got, w)
		}
	}
	// One nested comparison per byte: 5 paths (4 flips + the hit).
	if rep.Paths != 5 {
		t.Errorf("paths: %d want 5 (one per PIN digit plus the hit)", rep.Paths)
	}
}

// TestReplayDeterminism: re-running a finding's input must reproduce the
// identical path (trace shape, error, instruction count) — clones are
// deterministic, which the whole exploration scheme depends on.
func TestReplayDeterminism(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, guest.SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatal("no finding")
	}
	f := rep.Findings[0]

	run := func() *iss.Core {
		c := core.Clone()
		c.Input = f.Input
		c.Run(0)
		return c
	}
	r1, r2 := run(), run()
	if r1.Err == nil || r2.Err == nil || r1.Err.Kind != r2.Err.Kind || r1.Err.PC != r2.Err.PC {
		t.Fatalf("replays diverge: %v vs %v", r1.Err, r2.Err)
	}
	if r1.InstrCount != r2.InstrCount || len(r1.Trace) != len(r2.Trace) || len(r1.EPC) != len(r2.EPC) {
		t.Errorf("replay shape differs: instr %d/%d trace %d/%d epc %d/%d",
			r1.InstrCount, r2.InstrCount, len(r1.Trace), len(r2.Trace), len(r1.EPC), len(r2.EPC))
	}
	// The input must actually satisfy the replayed path's EPC.
	for _, cond := range r1.EPC {
		if smt.Eval(cond, f.Input) != 1 {
			t.Errorf("finding input does not satisfy its own path condition: %v", cond)
		}
	}
}

// TestEPCConsistency: on every explored path, the path condition is
// satisfied by the input that produced it (soundness of the concolic
// bookkeeping across the full sensor system).
func TestEPCConsistency(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, guest.SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 32}})
	checked := 0
	eng.OnPath = func(_ int, c *iss.Core) {
		for _, cond := range c.EPC {
			if smt.Eval(cond, c.Input) != 1 {
				t.Errorf("EPC violated by own input on path with input %v", cte.DescribeInput(b, c.Input))
			}
			checked++
		}
	}
	eng.Run(context.Background())
	if checked == 0 {
		t.Error("no EPC conjuncts checked")
	}
}
