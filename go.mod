module rvcte

go 1.22
