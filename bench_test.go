package rvcte

// Benchmark harness regenerating the paper's evaluation (Tables 1 and 2,
// Figure 4) plus the ablations called out in DESIGN.md. Run:
//
//	go test -run 'TestTable|TestFigure' -v .
//	go test -bench=. -benchmem .
//
// Absolute numbers differ from the paper (different host, simulator
// substrate, scaled workloads); the reproduction target is the shape:
// VP < CTE << S2E-proxy on concrete runs, large CTE speedups on symbolic
// runs, and the six TCP/IP bugs found in order of increasing depth.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/nestedvm"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
	"rvcte/internal/vp"
)

// table1Concrete lists the single-path benchmark programs (upper half of
// Table 1). The sha512 row is reproduced with SHA-256 (32-bit substrate;
// see DESIGN.md).
func table1Concrete() []guest.Program {
	var progs []guest.Program
	for _, name := range []string{"qsort", "sha256", "dhrystone"} {
		p, _ := guest.BenchProgram(name)
		progs = append(progs, p)
	}
	progs = append(progs, guest.FreeRTOSSensorProgram(false, 3))
	return progs
}

// table1Symbolic lists the multi-path benchmarks (lower half of Table 1).
func table1Symbolic() []struct {
	prog     guest.Program
	maxPaths int
} {
	q, _ := guest.BenchProgram("qsort-s")
	c, _ := guest.BenchProgram("counter-s")
	f, _ := guest.BenchProgram("fibonacci-s")
	return []struct {
		prog     guest.Program
		maxPaths int
	}{
		{c, 1500},
		{f, 200},
		{q, 600},
		{func() guest.Program {
			p := guest.FreeRTOSSensorProgram(true, 2)
			p.Name = "freertos-sensor-s"
			return p
		}(), 60},
	}
}

// runOnVP executes a program on the concrete VP baseline.
func runOnVP(tb testing.TB, p guest.Program) (time.Duration, uint64, bool) {
	elf, err := guest.Build(p)
	if err != nil {
		tb.Fatal(err)
	}
	cpu := vp.New(vp.Config{
		RamBase: p.RamBase, RamSize: p.RamSize,
		StackTop: p.RamBase + p.RamSize - 16384,
		MaxInstr: 500_000_000,
	})
	vp.AttachStandardPeripherals(cpu)
	if err := cpu.LoadELF(elf); err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	cpu.Run(0)
	if cpu.Err != nil {
		tb.Fatalf("%s on VP: %v", p.Name, cpu.Err)
	}
	return time.Since(start), cpu.InstrCount, cpu.Exited
}

// runOnCTE executes a program single-path on the concolic ISS.
func runOnCTE(tb testing.TB, p guest.Program, nested bool) (time.Duration, uint64) {
	core, _, err := guest.NewCore(smt.NewBuilder(), p)
	if err != nil {
		tb.Fatal(err)
	}
	if nested {
		nestedvm.Attach(core)
	}
	start := time.Now()
	core.Run(0)
	if core.Err != nil {
		tb.Fatalf("%s: %v", p.Name, core.Err)
	}
	return time.Since(start), core.InstrCount
}

// explore runs full concolic exploration, optionally through the nested
// (S2E-proxy) interpreter. workers selects the exploration pool size
// (1 = the paper's sequential engine).
func explore(tb testing.TB, p guest.Program, maxPaths int, nested bool, workers int) (*cte.Report, time.Duration) {
	core, _, err := guest.NewCore(smt.NewBuilder(), p)
	if err != nil {
		tb.Fatal(err)
	}
	if nested {
		nestedvm.Attach(core)
	}
	start := time.Now()
	rep := cte.NewSession(core, cte.Config{Workers: workers, Budget: cte.Budget{MaxPaths: maxPaths}}).Run(context.Background())
	return rep, time.Since(start)
}

// defaults ensures programs carry their default memory map before use
// outside guest.NewCore.
func withDefaults(p guest.Program) guest.Program {
	if p.RamBase == 0 {
		p.RamBase = 0x80000000
	}
	if p.RamSize == 0 {
		p.RamSize = 4 << 20
	}
	return p
}

// TestTable1 regenerates Table 1: simulation performance of the
// concrete VP, the generic-engine proxy (S2E) and CTE on concrete
// benchmarks, plus CTE exploration statistics on symbolic benchmarks.
func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	fmt.Printf("\n%-20s %12s %9s %9s %9s %9s %8s %8s %9s\n",
		"Benchmark", "#instr", "VP(s)", "S2E(s)", "CTE(s)", "FoI-S2E", "stime", "#paths", "#queries")

	for _, p := range table1Concrete() {
		p = withDefaults(p)
		vpTime, _, _ := runOnVP(t, p)
		s2eTime, _ := runOnCTE(t, p, true)
		cteTime, instr := runOnCTE(t, p, false)
		foi := float64(s2eTime) / float64(cteTime)
		fmt.Printf("%-20s %12d %9.3f %9.3f %9.3f %8.1fx %8s %8d %9s\n",
			p.Name, instr, vpTime.Seconds(), s2eTime.Seconds(), cteTime.Seconds(), foi, "/", 1, "/")
		if vpTime > cteTime {
			t.Logf("note: %s: VP (%v) not faster than CTE (%v) on this host", p.Name, vpTime, cteTime)
		}
		if foi < 1.5 {
			t.Errorf("%s: S2E proxy should be clearly slower than CTE (FoI %.2f)", p.Name, foi)
		}
	}

	for _, row := range table1Symbolic() {
		p := withDefaults(row.prog)
		s2eRep, s2eTime := explore(t, p, row.maxPaths, true, 1)
		cteRep, cteTime := explore(t, p, row.maxPaths, false, 1)
		if cteRep.Paths != s2eRep.Paths {
			t.Errorf("%s: path mismatch cte=%d s2e=%d", p.Name, cteRep.Paths, s2eRep.Paths)
		}
		foi := float64(s2eTime) / float64(cteTime)
		fmt.Printf("%-20s %12d %9s %9.3f %9.3f %8.1fx %8.2f %8d %9d\n",
			p.Name+"/s", cteRep.TotalInstr, "/", s2eTime.Seconds(), cteTime.Seconds(), foi,
			cteRep.SolverTime.Seconds(), cteRep.Paths, cteRep.Queries)
		if len(cteRep.Findings) != 0 {
			t.Errorf("%s: unexpected findings %v", p.Name, cteRep.Findings)
		}
	}
}

// TestTable2 regenerates Table 2: the six FreeRTOS-TCP/IP heap overflow
// bugs found by the find-fix-rerun workflow, with per-bug statistics.
func TestTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	fmt.Printf("\n%-5s %9s %9s %8s %9s %12s  %s\n",
		"Error", "time(s)", "stime(s)", "#paths", "#queries", "#instr", "description")
	descriptions := map[int]string{
		1: "malformed IP header length -> memmove with size close to UINT_MAX",
		2: "buffer overflow (read) in the DNS/NBNS packet parser",
		3: "buffer overflow (write) in the DNS reply generator",
		4: "buffer overflow (read) during TCP options checking",
		5: "NBNS length overflow: large reply filled beyond a smaller input",
		6: "NBNS reply allocation too small for the complete reply",
	}

	fixed := uint(0)
	found := map[int]bool{}
	for stage := 0; stage < 6; stage++ {
		b := smt.NewBuilder()
		core, elf, err := guest.NewCore(b, guest.TCPIPProgram(fixed, 64))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 10000}}).Run(context.Background())
		elapsed := time.Since(start)
		if len(rep.Findings) == 0 {
			t.Fatalf("stage %d: no finding in %d paths", stage, rep.Paths)
		}
		f := rep.Findings[0]
		bug := guest.Classify("tcpip", elf, f.Err.Kind, f.Err.PC, fixed)
		if bug == 0 || found[bug] {
			t.Fatalf("stage %d: bad classification %d for %v", stage, bug, f.Err)
		}
		found[bug] = true
		fixed |= 1 << (bug - 1)
		fmt.Printf("%-5d %9.2f %9.2f %8d %9d %12d  %s\n",
			bug, elapsed.Seconds(), rep.SolverTime.Seconds(), rep.Paths, rep.Queries,
			rep.TotalInstr, descriptions[bug])
	}
	if len(found) != 6 {
		t.Errorf("only %d of 6 bugs found", len(found))
	}
}

// TestFigure4Paths replays the paper's Fig. 4 narrative on the sensor
// system: the empty input I0 is pruned at the sensor-range assume; a
// later input passes the assume and emits an assert TC; solving it gives
// the I3-style input whose data value underflows and violates the
// assertion.
func TestFigure4Paths(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, guest.SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}

	type pathInfo struct {
		input  string
		result string
	}
	var paths []pathInfo
	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}})
	eng.OnPath = func(_ int, c *iss.Core) {
		r := "completed"
		if c.Err != nil {
			r = c.Err.Kind.String()
		}
		paths = append(paths, pathInfo{cte.DescribeInput(b, c.Input), r})
	}
	rep := eng.Run(context.Background())

	// I0: empty input -> pruned inside the peripheral's range assume.
	if len(paths) == 0 || paths[0].result != iss.ErrAssumeFail.String() {
		t.Fatalf("first path should be assume-pruned, got %+v", paths)
	}
	// The final path is the assertion violation.
	last := paths[len(paths)-1]
	if last.result != iss.ErrAssertFail.String() {
		t.Fatalf("last path should violate the assertion, got %+v", last)
	}
	// And the violating input satisfies the Fig. 4 constraints:
	// f >= MIN (16) so the buggy rewrite to 17 fires, and d - 17 wraps.
	f := rep.Findings[0]
	fv := uint32(b.Value(f.Input, "f[0]") | b.Value(f.Input, "f[1]")<<8 |
		b.Value(f.Input, "f[2]")<<16 | b.Value(f.Input, "f[3]")<<24)
	dv := uint32(b.Value(f.Input, "d[0]") | b.Value(f.Input, "d[1]")<<8 |
		b.Value(f.Input, "d[2]")<<16 | b.Value(f.Input, "d[3]")<<24)
	if fv < 16 {
		t.Errorf("I3 filter %d must be >= 16", fv)
	}
	if dv < 16 || dv > 64 {
		t.Errorf("I3 data %d must lie in the sensor range", dv)
	}
	if dv-17 <= 64 {
		t.Errorf("I3 data %d must make data-17 wrap beyond the range", dv)
	}
	t.Logf("Fig. 4 reproduced: %d paths, I3 = {f=%d, d=%d}", rep.Paths, fv, dv)
}

// --- testing.B benchmarks, one per table/figure ---

// BenchmarkTable1Concrete measures each simulator on each concrete
// benchmark (the upper half of Table 1).
func BenchmarkTable1Concrete(b *testing.B) {
	for _, p := range table1Concrete() {
		p := withDefaults(p)
		b.Run(p.Name+"/vp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnVP(b, p)
			}
		})
		b.Run(p.Name+"/cte", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnCTE(b, p, false)
			}
		})
		b.Run(p.Name+"/s2e", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOnCTE(b, p, true)
			}
		})
	}
}

// BenchmarkTable1Symbolic measures full exploration on the symbolic
// benchmarks (lower half of Table 1).
func BenchmarkTable1Symbolic(b *testing.B) {
	for _, row := range table1Symbolic() {
		p := withDefaults(row.prog)
		b.Run(p.Name+"/cte", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore(b, p, row.maxPaths, false, 1)
			}
		})
		b.Run(p.Name+"/s2e", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore(b, p, row.maxPaths, true, 1)
			}
		})
	}
}

// BenchmarkTable2FirstBug measures the time to the first TCP/IP finding
// (Table 2, error 1).
func BenchmarkTable2FirstBug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core, _, err := guest.NewCore(smt.NewBuilder(), guest.TCPIPProgram(0, 64))
		if err != nil {
			b.Fatal(err)
		}
		rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 400}}).Run(context.Background())
		if len(rep.Findings) == 0 {
			b.Fatal("bug 1 not found")
		}
	}
}

// BenchmarkParallelExploreTCPIP measures path throughput of the worker
// pool on the TCP/IP workload (all bugs fixed, fixed path budget, no
// early stop). Compare the j1 and j4 variants: ns/op is the cost of the
// same 200-path exploration, so on a >= 4-core host j4 should explore at
// a multiple of the j1 throughput (paths/s is reported explicitly).
// The snapshot is built once per variant; each iteration explores
// fresh clones of it, exactly like the -j flag of cmd/cte.
func BenchmarkParallelExploreTCPIP(b *testing.B) {
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			core, _, err := guest.NewCore(smt.NewBuilder(), guest.TCPIPProgram(0x3f, 64))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			paths := 0
			for i := 0; i < b.N; i++ {
				rep := cte.NewSession(core, cte.Config{Workers: j, Budget: cte.Budget{MaxPaths: 200}}).Run(context.Background())
				paths += rep.Paths
			}
			b.ReportMetric(float64(paths)/b.Elapsed().Seconds(), "paths/s")
		})
	}
}

// BenchmarkParallelExploreCounter is the same comparison on the small
// counter-s benchmark (solver-light, ISS-dominated — the paper's
// Table 1 observation that per-path ISS execution dominates wall time).
func BenchmarkParallelExploreCounter(b *testing.B) {
	p, _ := guest.BenchProgram("counter-s")
	p = withDefaults(p)
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			core, _, err := guest.NewCore(smt.NewBuilder(), p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			paths := 0
			for i := 0; i < b.N; i++ {
				rep := cte.NewSession(core, cte.Config{Workers: j, Budget: cte.Budget{MaxPaths: 1500}}).Run(context.Background())
				paths += rep.Paths
			}
			b.ReportMetric(float64(paths)/b.Elapsed().Seconds(), "paths/s")
		})
	}
}

// BenchmarkQueryCacheExplore measures end-to-end exploration of the
// branch-storm benchmark with the query cache off, cold and warm
// (primed from a persisted cache file, the -cache-dir workflow).
// Every iteration builds a fresh system — builder, core and cache are
// all per-iteration, so "warm" measures the real warm-start cost
// including Load and model hydration.
func BenchmarkQueryCacheExplore(b *testing.B) {
	p, _ := guest.BenchProgram("storm-s")
	p = withDefaults(p)

	run := func(b *testing.B, cacheFile string, load bool) *cte.Report {
		bld := smt.NewBuilder()
		core, _, err := guest.NewCore(bld, p)
		if err != nil {
			b.Fatal(err)
		}
		var qc *qcache.Cache
		if cacheFile != "" {
			qc = qcache.New(bld, qcache.Options{})
			if load {
				if err := qc.Load(cacheFile); err != nil {
					b.Fatal(err)
				}
			}
		}
		rep := cte.NewSession(core, cte.Config{Workers: 1, Budget: cte.Budget{MaxPaths: 2000}, Cache: cte.CacheConfig{Queries: qc}}).Run(context.Background())
		if cacheFile != "" && !load {
			if err := qc.Save(cacheFile); err != nil {
				b.Fatal(err)
			}
		}
		return rep
	}

	b.Run("off", func(b *testing.B) {
		queries := 0
		for i := 0; i < b.N; i++ {
			queries += run(b, "", false).Queries
		}
		b.ReportMetric(float64(queries)/float64(b.N), "queries/explore")
	})
	b.Run("cold", func(b *testing.B) {
		cacheFile := filepath.Join(b.TempDir(), "storm.qcache")
		queries := 0
		for i := 0; i < b.N; i++ {
			queries += run(b, cacheFile, false).Queries
		}
		b.ReportMetric(float64(queries)/float64(b.N), "queries/explore")
	})
	b.Run("warm", func(b *testing.B) {
		cacheFile := filepath.Join(b.TempDir(), "storm.qcache")
		run(b, cacheFile, false) // prime the cache file once
		b.ResetTimer()
		queries := 0
		for i := 0; i < b.N; i++ {
			queries += run(b, cacheFile, true).Queries
		}
		b.ReportMetric(float64(queries)/float64(b.N), "queries/explore")
	})
}

// BenchmarkFigure4Sensor measures full exploration of the sensor example.
func BenchmarkFigure4Sensor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core, _, err := guest.NewCore(smt.NewBuilder(), guest.SensorProgram(false))
		if err != nil {
			b.Fatal(err)
		}
		rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())
		if len(rep.Findings) == 0 {
			b.Fatal("sensor bug not found")
		}
	}
}
