// Command rvasm assembles RV32IM assembly into a RISC-V ELF executable.
//
// Usage:
//
//	rvasm -o prog.elf file.s...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rvcte/internal/asm"
	"rvcte/internal/relf"
)

func main() {
	out := flag.String("o", "a.out", "output ELF file")
	base := flag.Uint("base", 0x80000000, "load address")
	compress := flag.Bool("compress", false, "emit RV32C compressed encodings where possible")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "rvasm: no input files")
		os.Exit(2)
	}
	var parts []string
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		die(err)
		parts = append(parts, string(src))
	}
	assembleFn := asm.Assemble
	if *compress {
		assembleFn = asm.AssembleCompressed
	}
	img, err := assembleFn(strings.Join(parts, "\n"), uint32(*base))
	die(err)
	memSize := uint32(len(img.Bytes))
	if end := img.BssAddr + img.BssSize - img.Origin; end > memSize {
		memSize = end
	}
	elf := &relf.File{
		Entry:   img.Entry(),
		Addr:    img.Origin,
		Data:    img.Bytes,
		MemSize: memSize,
		Symbols: img.Symbols,
	}
	die(os.WriteFile(*out, relf.Write(elf), 0o755))
	fmt.Fprintf(os.Stderr, "rvasm: wrote %s (%d bytes, %d symbols, entry %#x)\n",
		*out, len(elf.Data), len(elf.Symbols), elf.Entry)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvasm:", err)
		os.Exit(1)
	}
}
