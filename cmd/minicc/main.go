// Command minicc compiles mini-C source files to RV32IM assembly or to a
// linked RISC-V ELF executable (with the guest runtime).
//
// Usage:
//
//	minicc file.c...            # assembly on stdout
//	minicc -o prog.elf file.c   # link with the runtime into an ELF
//	minicc -S -o out.s file.c   # assembly to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rvcte/internal/cc"
	"rvcte/internal/guest"
	"rvcte/internal/relf"
)

func main() {
	out := flag.String("o", "", "output file (default stdout for -S)")
	asmOnly := flag.Bool("S", false, "emit assembly instead of an ELF")
	base := flag.Uint("base", 0x80000000, "load address for ELF output")
	compress := flag.Bool("compress", false, "emit RV32C compressed encodings where possible")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "minicc: no input files")
		os.Exit(2)
	}

	if *asmOnly {
		var parts []string
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			die(err)
			asmText, err := cc.CompileUnit(string(src), sanitize(path))
			die(err)
			parts = append(parts, asmText)
		}
		text := strings.Join(parts, "\n")
		if *out == "" {
			fmt.Print(text)
		} else {
			die(os.WriteFile(*out, []byte(text), 0o644))
		}
		return
	}

	var sources []guest.Source
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		die(err)
		if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".S") {
			sources = append(sources, guest.Asm(filepath.Base(path), string(src)))
		} else {
			sources = append(sources, guest.C(filepath.Base(path), string(src)))
		}
	}
	elf, err := guest.Build(guest.Program{
		Name:     "minicc",
		Sources:  sources,
		RamBase:  uint32(*base),
		Compress: *compress,
	})
	die(err)
	target := *out
	if target == "" {
		target = "a.out"
	}
	die(os.WriteFile(target, relf.Write(elf), 0o755))
	fmt.Fprintf(os.Stderr, "minicc: wrote %s (%d bytes, entry %#x)\n", target, len(elf.Data), elf.Entry)
}

func sanitize(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	sb.WriteByte('_')
	return sb.String()
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
}
