// Command cte runs concolic testing on a guest system: it clones the VP
// per input, explores paths by solving trace conditions and reports any
// runtime errors or heap overflows found (the tool form of the paper's
// CTE engine).
//
// Usage:
//
//	cte -prog sensor                     # the paper's Fig. 2/3 example
//	cte -prog tcpip                      # FreeRTOS-style TCP/IP stack
//	cte -prog tcpip -fix 1,2             # ... with bugs 1 and 2 patched
//	cte -prog counter-s -strategy dfs
//	cte -cover -err-trace 8 -prog sensor # coverage + finding trace
//	cte -fuzz -prog tcpip -fuzz-time 60s # hybrid fuzzing instead of pure CTE
//	cte -prog tcpip -progress 2s -trace run.jsonl   # live progress + event trace
//	cte -prog tcpip -listen :8080        # live /metrics JSON + pprof
//	cte prog.elf                         # explore an arbitrary ELF
//
// A run can be interrupted with SIGINT/SIGTERM: the engines wind down
// promptly and the (partial) report is still printed, with stopped =
// "canceled".
//
// Exit codes: 0 = explored clean, 1 = findings reported, 2 = usage or
// setup error.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/fuzz"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
	"rvcte/internal/relf"
	"rvcte/internal/smt"
)

func main() {
	progName := flag.String("prog", "", "built-in program: sensor, sensor-fixed, tcpip, tcpip-session, freertos-sensor, qsort-s, counter-s, fibonacci-s, storm-s")
	fixList := flag.String("fix", "", "tcpip/tcpip-session only: comma-separated bug numbers to patch (1-9)")
	maxPaths := flag.Int("max-paths", 1000, "path budget (0 = unlimited)")
	maxInstr := flag.Uint64("max-instr", 0, "per-path instruction budget (0 = program default)")
	strategy := flag.String("strategy", "bfs", "search strategy: bfs, dfs, random, coverage")
	stopOnError := flag.Bool("stop-on-error", true, "stop at the first finding")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	pktMax := flag.Int("pkt-max", 64, "tcpip/tcpip-session: bound on the symbolic packet size")
	pkts := flag.Int("pkts", 0, "tcpip-session only: session depth in packets (0 = program default)")
	pktCaps := flag.String("pkt-caps", "", "tcpip-session only: comma-separated per-packet symbolic size caps; the last cap repeats (default: -pkt-max for every packet)")
	detectors := flag.String("detectors", "", "comma-separated bug-detector set to attach (heap-guard, heap-uaf, stack-canary, irq-reentrancy, or \"all\"; empty = default heap-guard)")
	verbose := flag.Bool("v", false, "print each explored path")
	cover := flag.Bool("cover", false, "print per-function coverage after exploration")
	errTrace := flag.Int("err-trace", 0, "print the last N instructions of each finding")
	traceFile := flag.String("trace", "", "write a structured JSONL event trace (path/query/cache/fuzz events) to this file")
	progressEvery := flag.Duration("progress", 0, "print a live progress line to stderr at this interval (0 = off)")
	listenAddr := flag.String("listen", "", "serve live /metrics JSON and /debug/pprof on this address while the run lasts")
	workers := flag.Int("j", runtime.NumCPU(), "parallel exploration workers (1 = sequential, deterministic path order)")
	maxConflicts := flag.Int("max-conflicts", 0, "per-query solver conflict budget; exhausted queries count as unknown (0 = unlimited)")
	useCache := flag.Bool("cache", true, "enable the SMT query cache (model reuse, unsat subsumption, independence slicing)")
	cacheDir := flag.String("cache-dir", "", "persist the query cache under this directory so repeated runs warm-start")
	jsonOut := flag.Bool("json", false, "emit the full report as a single JSON object on stdout (suppresses the human summary)")
	seed := flag.Int64("seed", 0, "PRNG seed for the random strategy and the fuzzer (runs are reproducible for a fixed seed at -j 1)")
	fuzzMode := flag.Bool("fuzz", false, "hybrid fuzzing: coverage-guided concrete fuzzing with concolic escalation on stall, instead of pure concolic exploration")
	bmcMode := flag.Bool("bmc", false, "bounded model checking: symbolically execute all paths at once up to the -k depth bound, merging at join points, and solve one reachability query per bug site, instead of pure concolic exploration")
	bmcK := flag.Int("k", 0, "with -bmc: unroll depth bound in instructions (0 = -max-instr, then the program default)")
	fuzzTime := flag.Duration("fuzz-time", 30*time.Second, "fuzzing wall-clock budget (0 = until dry or first finding)")
	corpusDir := flag.String("corpus-dir", "", "fuzz only: load initial inputs from this directory and persist the final corpus back to it")
	dryEscalations := flag.Int("dry-escalations", 0, "fuzz only: stop after this many consecutive escalations without new coverage (0 = engine default; deep stateful guests need hundreds)")
	forkMode := flag.Bool("fork", true, "resume divergence checkpoints instead of re-executing path prefixes from the snapshot (disable for the restart-only ablation baseline)")
	forkMinPrefix := flag.Uint64("fork-min-prefix", 2000, "skip checkpoint capture on path prefixes shorter than this many instructions (restarting a short prefix is cheaper than checkpointing it; 0 = checkpoint every divergence)")
	bbCache := flag.Bool("bbcache", true, "enable the predecoded basic-block cache (direct-threaded dispatch; disable to use the legacy fetch/decode/execute loop)")
	fuse := flag.Bool("fuse", true, "enable superinstruction fusion inside cached blocks (lui+addi, auipc+addi, compare+branch)")
	serveAddr := flag.String("serve", "", "campaign coordinator: serve the HTTP control plane on this address instead of exploring locally")
	spoolDir := flag.String("spool", "", "with -serve: persist campaign state under this directory and resume it on restart")
	connectAddr := flag.String("connect", "", "campaign worker: execute leases from the coordinator at this address")
	workerID := flag.String("worker-id", "", "with -connect: stable worker identity (default hostname-pid)")
	submitAddr := flag.String("submit", "", "campaign client: submit -prog as a campaign to the coordinator at this address and stream its findings")
	findFix := flag.Bool("findfix", false, "with -submit -prog tcpip: iterate stop-on-error campaigns, patching each classified bug, until the stack explores clean")
	shards := flag.Int("shards", 0, "with -submit: frontier shard count (0 = coordinator default)")
	batch := flag.Int("batch", 0, "with -submit: frontier inputs per lease (0 = coordinator default)")
	leaseTTL := flag.Duration("lease-ttl", 0, "with -submit: lease lifetime before re-assignment (0 = coordinator default)")
	flag.Parse()

	// -pkt-max has a tcpip-oriented default (64); for the stateful
	// session guest an unset flag must keep the program's own
	// per-packet caps (32) — otherwise the depth-2-clean property of
	// the seeded deep bugs silently changes with a flag default.
	if *progName == "tcpip-session" && !flagWasSet("pkt-max") {
		*pktMax = 0
	}
	for _, d := range parseNameList(*detectors) {
		if d == "all" {
			continue
		}
		if _, err := iss.NewDetector(d); err != nil {
			fmt.Fprintln(os.Stderr, "cte:", err)
			os.Exit(2)
		}
	}

	copts := campaignOpts{
		serve: *serveAddr, spool: *spoolDir,
		connect: *connectAddr, workerID: *workerID,
		submit: *submitAddr, findFix: *findFix,
		prog: *progName, fixList: *fixList, pktMax: *pktMax,
		pkts: *pkts, pktCaps: parseIntList(*pktCaps), detectors: parseNameList(*detectors),
		fuzz: *fuzzMode,
		bmc:  *bmcMode, bmcK: *bmcK,
		shards: *shards, batch: *batch, leaseTTL: *leaseTTL,
		maxPaths: *maxPaths, maxInstr: *maxInstr, maxConflicts: *maxConflicts,
		stopOnError: *stopOnError, seed: *seed,
	}
	if err := validateCampaignFlags(copts, flag.NArg()); err != nil {
		fmt.Fprintln(os.Stderr, "cte:", err)
		os.Exit(2)
	}
	if copts.serve != "" || copts.connect != "" || copts.submit != "" {
		os.Exit(campaignMain(copts))
	}

	b := smt.NewBuilder()
	var core *iss.Core
	var elf *relf.File
	var err error

	var prg guest.Program
	switch {
	case *progName != "":
		prg, core, elf, err = buildProg(b, *progName, guest.ProgramOpts{
			Fix: *fixList, PktMax: *pktMax, Pkts: *pkts, PktCaps: parseIntList(*pktCaps),
		})
	case flag.NArg() == 1:
		var data []byte
		data, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			elf, err = relf.Load(data)
		}
		if err == nil {
			core = iss.New(b, iss.Config{RamBase: 0x80000000, RamSize: 4 << 20, MaxInstr: 100_000_000})
			core.LoadImage(elf.Addr, elf.Data, elf.Entry)
		}
	default:
		fmt.Fprintln(os.Stderr, "cte: need -prog <name> or an ELF file")
		os.Exit(2)
	}
	die(err)

	// Block-cache ablation switches: clones inherit these via struct
	// copy, so setting them on the snapshot covers every path/fuzz exec.
	core.NoBlockCache = !*bbCache
	core.NoFusion = !*fuse

	strat, ok := map[string]cte.Strategy{
		"bfs": cte.BFS, "dfs": cte.DFS, "random": cte.Random, "coverage": cte.Coverage,
	}[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "cte: unknown -strategy %q (want bfs, dfs, random or coverage)\n", *strategy)
		os.Exit(2)
	}

	// The query cache is shared by all exploration workers; -cache-dir
	// additionally persists it per guest identity across runs.
	var qc *qcache.Cache
	var cacheFile string
	if *useCache {
		qc = qcache.New(b, qcache.Options{})
		if *cacheDir != "" {
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				die(err)
			}
			cacheFile = filepath.Join(*cacheDir, cacheID(*progName, *fixList, *pktMax, *pkts, flag.Args())+".qcache")
			if err := qc.Load(cacheFile); err != nil && !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "cte: warning: ignoring cache file: %v\n", err)
			}
		}
	}

	// Observability: the metric registry is always on (its counters are
	// the -json obs section); the tracer, progress reporter and HTTP
	// endpoint are opt-in.
	ob := obs.New()
	if *traceFile != "" {
		tr, err := obs.OpenTrace(*traceFile)
		die(err)
		ob.Tracer = tr
	}
	var prog *obs.Progress
	if *progressEvery > 0 {
		budget := *timeout
		if *fuzzMode {
			budget = *fuzzTime
		}
		prog = obs.StartProgress(ob, obs.ProgressOptions{Interval: *progressEvery, Budget: budget})
	}
	var shutdown func() error
	if *listenAddr != "" {
		bound, sd, err := obs.Serve(*listenAddr, ob)
		die(err)
		shutdown = sd
		fmt.Fprintf(os.Stderr, "cte: serving /metrics and /debug/pprof on http://%s\n", bound)
	}

	cfg := cte.Config{
		Workers: *workers,
		Budget: cte.Budget{
			Timeout:              *timeout,
			MaxPaths:             *maxPaths,
			MaxInstrPerRun:       *maxInstr,
			MaxConflictsPerQuery: *maxConflicts,
		},
		Cache:       cte.CacheConfig{Queries: qc},
		Obs:         ob,
		Seed:        *seed,
		StopOnError: *stopOnError,
		Detectors:   parseNameList(*detectors),
		Explore: cte.ExploreConfig{
			Strategy:      strat,
			TrackCoverage: *cover,
			TraceDepth:    *errTrace,
		},
		Fork: cte.ForkConfig{Enabled: *forkMode, MinPrefix: *forkMinPrefix},
	}
	// Stateful guests publish their protocol-state byte; wiring it banks
	// edge coverage by protocol state and scopes the run to the session
	// depth the guest was built with.
	if prg.Proto.StateSym != "" && elf != nil {
		if addr, ok := elf.Symbol(prg.Proto.StateSym); ok {
			cfg.Protocol = cte.ProtocolConfig{
				Packets:   prg.Proto.Pkts,
				PktMax:    prg.Proto.Caps,
				StateAddr: addr,
				States:    prg.Proto.States,
			}
		}
	}
	if *fuzzMode {
		cfg.Mode = cte.ModeHybrid
		cfg.Budget.Timeout = *fuzzTime
		cfg.Fuzz.DryEscalations = *dryEscalations
		if *corpusDir != "" {
			seeds, err := fuzz.LoadDir(*corpusDir)
			die(err)
			cfg.Fuzz.Seeds = seeds
		}
	}
	if *bmcMode {
		cfg.Mode = cte.ModeBMC
		cfg.BMC.K = *bmcK
	}

	sess := cte.NewSession(core, cfg)
	if *verbose && !*jsonOut && !*fuzzMode {
		sess.OnPath = func(path int, c *iss.Core) {
			status := "ok"
			if c.Err != nil {
				status = c.Err.Error()
			} else if c.Exited {
				status = fmt.Sprintf("exit %d", c.ExitCode)
			}
			fmt.Printf("path %4d: %8d instr, %s\n", path, c.InstrCount, status)
		}
	}

	// SIGINT/SIGTERM cancel the run; the engines finish the path or batch
	// in flight and return the partial report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	rep := sess.Run(ctx)
	stop()

	// Tear observability down before reporting: the progress line must
	// not interleave with the summary, and the trace must be flushed
	// (os.Exit below skips defers).
	if prog != nil {
		prog.Stop()
	}
	if ob.Tracer != nil {
		if err := ob.Tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cte: warning: trace not fully written: %v\n", err)
		}
	}
	if shutdown != nil {
		_ = shutdown()
	}

	if cacheFile != "" {
		if err := qc.Save(cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "cte: warning: could not persist cache: %v\n", err)
		}
	}
	if *fuzzMode && *corpusDir != "" && rep.Fuzz != nil {
		if err := fuzz.SaveDir(*corpusDir, rep.Fuzz.Corpus); err != nil {
			fmt.Fprintf(os.Stderr, "cte: warning: could not persist corpus: %v\n", err)
		}
	}

	if *jsonOut {
		emitJSON(b, elf, *progName, cfg, rep)
	} else if rep.Mode == cte.ModeHybrid {
		printFuzzReport(elf, rep)
	} else if rep.Mode == cte.ModeBMC {
		printBMCReport(b, elf, rep)
	} else {
		printReport(b, elf, rep, *cover)
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// printReport is the human summary of a concolic exploration run.
func printReport(b *smt.Builder, elf *relf.File, rep *cte.Report, cover bool) {
	fmt.Printf("explored %d paths in %.2fs (%d queries, %.2fs solver, %d instructions total)\n",
		rep.Paths, rep.WallTime.Seconds(), rep.Queries, rep.SolverTime.Seconds(), rep.TotalInstr)
	fmt.Printf("trace conditions: %d sat, %d unsat, %d unknown (budget-exhausted)\n",
		rep.SatTCs, rep.UnsatTCs, rep.UnknownTCs)
	if rep.Forked > 0 || rep.ForkRestarts > 0 {
		fmt.Printf("state forking: %d paths resumed from checkpoints, %d fell back to snapshot restarts\n",
			rep.Forked, rep.ForkRestarts)
	}
	if cs := rep.Cache; cs != nil {
		fmt.Printf("query cache: %d exact, %d eval-reuse, %d subsumed of %d lookups; %d SAT calls (%d sliced), %d entries (%d loaded)\n",
			cs.Hits, cs.EvalHits, cs.SubsumeHits, cs.Queries, cs.SolverCalls, cs.SliceSolves, cs.Entries, cs.Loaded)
	}
	if rep.Workers > 1 {
		fmt.Printf("workers: %d\n", rep.Workers)
		for i, ws := range rep.PerWorker {
			fmt.Printf("  worker %d: %5d paths, %6d queries, %.2fs solver\n",
				i, ws.Paths, ws.Queries, ws.SolverTime.Seconds())
		}
	}
	if rep.Exhausted {
		fmt.Println("state space exhausted")
	} else if rep.Stopped != "" {
		fmt.Printf("stopped: %s\n", rep.Stopped)
	}
	if cover && elf != nil {
		printCoverage(elf, rep.Covered)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("no errors found")
		return
	}
	for _, f := range rep.Findings {
		fmt.Printf("FINDING: %v\n", f.Err)
		if elf != nil {
			fmt.Printf("  in function: %s\n", guest.LocateFunc(elf, f.Err.PC))
		}
		fmt.Printf("  input: %s\n", cte.DescribeInput(b, f.Input))
		if len(f.Trace) > 0 {
			fmt.Println("  last instructions:")
			for _, te := range f.Trace {
				fn := ""
				if elf != nil {
					fn = "  # " + guest.LocateFunc(elf, te.PC)
				}
				fmt.Printf("    %08x: %s%s\n", te.PC, te.Inst, fn)
			}
		}
	}
}

// printCoverage aggregates covered PCs per function symbol.
func printCoverage(elf *relf.File, covered map[uint32]struct{}) {
	if len(covered) == 0 {
		return
	}
	perFn := map[string]int{}
	for pc := range covered {
		perFn[guest.LocateFunc(elf, pc)]++
	}
	names := make([]string, 0, len(perFn))
	for n := range perFn {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("coverage: %d distinct PCs across %d functions\n", len(covered), len(names))
	for _, n := range names {
		fmt.Printf("  %-32s %5d instructions\n", n, perFn[n])
	}
}

func buildProg(b *smt.Builder, name string, opts guest.ProgramOpts) (guest.Program, *iss.Core, *relf.File, error) {
	p, err := guest.ProgramFor(name, opts)
	if err != nil {
		return guest.Program{}, nil, nil, err
	}
	core, elf, err := guest.NewCore(b, p)
	return p, core, elf, err
}

// parseIntList parses a comma-separated list of non-negative ints;
// malformed entries are usage errors.
func parseIntList(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			die(fmt.Errorf("bad list entry %q", part))
		}
		out = append(out, n)
	}
	return out
}

// flagWasSet reports whether the named flag was given on the command
// line (flag.Visit only walks explicitly-set flags).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseNameList splits a comma-separated name list, dropping blanks.
func parseNameList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if t := strings.TrimSpace(part); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// printFuzzReport is the human summary of a hybrid fuzzing run.
func printFuzzReport(elf *relf.File, rep *cte.Report) {
	st := rep.Fuzz
	rate := 0.0
	if rep.WallTime > 0 {
		rate = float64(st.Execs) / rep.WallTime.Seconds()
	}
	fmt.Printf("hybrid fuzzing: %d execs in %.2fs (%.0f exec/s), corpus %d, %d edges, %d pruned\n",
		st.Execs, rep.WallTime.Seconds(), rate, st.CorpusSize, st.Edges, st.Pruned)
	fmt.Printf("concolic assist: %d stalls escalated, %d flips solved (%d sat, %d unsat, %d unknown), %d solved inputs fed back\n",
		st.Escalations, st.FlipsAttempted, rep.SatTCs, rep.UnsatTCs, rep.UnknownTCs, st.Solves)
	fmt.Printf("solver: %d queries, %.2fs\n", rep.Queries, rep.SolverTime.Seconds())
	if cs := rep.Cache; cs != nil {
		fmt.Printf("query cache: %d exact, %d eval-reuse, %d subsumed of %d lookups; %d SAT calls (%d sliced), %d entries (%d loaded)\n",
			cs.Hits, cs.EvalHits, cs.SubsumeHits, cs.Queries, cs.SolverCalls, cs.SliceSolves, cs.Entries, cs.Loaded)
	}
	if st.SkipInitInstrs > 0 {
		fmt.Printf("skip-init: %d instructions executed once and snapshotted\n", st.SkipInitInstrs)
	}
	fmt.Printf("stopped: %s\n", rep.Stopped)
	if len(rep.Findings) == 0 {
		fmt.Println("no errors found")
		return
	}
	for _, f := range rep.Findings {
		fmt.Printf("FINDING: %v\n", f.Err)
		if elf != nil {
			fmt.Printf("  in function: %s\n", guest.LocateFunc(elf, f.Err.PC))
		}
		fmt.Printf("  input: %s  (exec %d)\n", hex.EncodeToString(f.Data), f.Exec)
	}
}

// printBMCReport is the human summary of a bounded-model-checking run.
func printBMCReport(b *smt.Builder, elf *relf.File, rep *cte.Report) {
	br := rep.BMC
	if br == nil {
		fmt.Printf("bmc: did not run (%s)\n", rep.Stopped)
		return
	}
	fmt.Printf("bmc: unrolled to depth %d in %.2fs: %d symbolic steps, peak %d states (%d splits, %d merges)\n",
		br.K, rep.WallTime.Seconds(), br.Steps, br.PeakStates, br.Splits, br.Merges)
	fmt.Printf("accounting: %d exits, %d truncated at the bound, %d guarded violations at %d sites\n",
		br.Exits, br.Truncated, br.Violations, br.Sites)
	fmt.Printf("solver: %d queries, %.2fs, %d sites unknown (budget-exhausted)\n",
		br.Queries, br.SolverTime.Seconds(), br.Unknown)
	if cs := rep.Cache; cs != nil {
		fmt.Printf("query cache: %d exact, %d eval-reuse, %d subsumed of %d lookups; %d SAT calls (%d sliced), %d entries (%d loaded)\n",
			cs.Hits, cs.EvalHits, cs.SubsumeHits, cs.Queries, cs.SolverCalls, cs.SliceSolves, cs.Entries, cs.Loaded)
	}
	if len(br.Unsupported) > 0 {
		reasons := make([]string, 0, len(br.Unsupported))
		for why, n := range br.Unsupported {
			reasons = append(reasons, fmt.Sprintf("%s x%d", why, n))
		}
		sort.Strings(reasons)
		fmt.Printf("incomplete: states dropped as unsupported (%s) — absence is NOT proven\n",
			strings.Join(reasons, ", "))
	} else if br.Exhausted {
		fmt.Println("state space exhausted below the bound: the bug set is exact, not just up to depth")
	} else if br.Truncated > 0 {
		fmt.Printf("absence proven up to depth %d (deeper behaviour truncated)\n", br.K)
	}
	if rep.Stopped != "" && rep.Stopped != "exhausted" && rep.Stopped != "depth" {
		fmt.Printf("stopped: %s\n", rep.Stopped)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("no errors found")
		return
	}
	for i, f := range rep.Findings {
		fmt.Printf("FINDING: %v\n", f.Err)
		if elf != nil {
			fmt.Printf("  in function: %s\n", guest.LocateFunc(elf, f.Err.PC))
		}
		fmt.Printf("  input: %s\n", cte.DescribeInput(b, f.Input))
		bf := br.Findings[i]
		status := "model not replayed (-bmc runs confirm by default)"
		if bf.Confirmed {
			status = fmt.Sprintf("confirmed by concrete replay at depth %d", bf.Depth)
		} else if br.Replayed {
			status = "NOT reproduced by concrete replay — possible encoding bug"
		}
		fmt.Printf("  %s\n", status)
	}
}

// jsonBMC is the machine-readable form of the BMC side of a run.
type jsonBMC struct {
	K           int            `json:"k"`
	Steps       uint64         `json:"steps"`
	PeakStates  int            `json:"peak_states"`
	Splits      int            `json:"splits"`
	Merges      int            `json:"merges"`
	SkewMerges  int            `json:"skew_merges"`
	Exits       int            `json:"exits"`
	Truncated   int            `json:"truncated"`
	Violations  int            `json:"violations"`
	Sites       int            `json:"sites"`
	Unknown     int            `json:"unknown"`
	Complete    bool           `json:"complete"`
	Exhausted   bool           `json:"exhausted"`
	Confirmed   int            `json:"confirmed"`
	Unsupported map[string]int `json:"unsupported,omitempty"`
}

// jsonProtocol is the machine-readable form of a stateful multi-packet
// campaign's protocol wiring.
type jsonProtocol struct {
	Packets   int   `json:"packets"`
	States    int   `json:"states"`
	StateAddr int64 `json:"state_addr"`
	PktCaps   []int `json:"pkt_caps,omitempty"`
}

// jsonFuzz is the machine-readable form of the hybrid side of a run.
type jsonFuzz struct {
	Execs          uint64  `json:"execs"`
	ExecsPerSec    float64 `json:"execs_per_sec"`
	TotalInstr     uint64  `json:"total_instr"`
	CorpusSize     int     `json:"corpus_size"`
	Edges          int     `json:"edges"`
	Pruned         uint64  `json:"pruned"`
	Injected       int     `json:"injected"`
	Escalations    int     `json:"escalations"`
	FlipsAttempted int     `json:"flips_attempted"`
	Solves         int     `json:"solves"`
	SkipInitInstrs uint64  `json:"skip_init_instrs"`
}

// cacheID derives the persisted cache's file stem from the guest
// identity: same guest (and constraint-shaping options) — same file.
func cacheID(prog, fixList string, pktMax, pkts int, args []string) string {
	id := prog
	if id == "" && len(args) == 1 {
		id = strings.TrimSuffix(filepath.Base(args[0]), ".elf")
	}
	if id == "tcpip" || id == "tcpip-session" {
		id = fmt.Sprintf("%s-p%d", id, pktMax)
		if prog == "tcpip-session" && pkts > 0 {
			id += fmt.Sprintf("-n%d", pkts)
		}
		if fixList != "" {
			id += "-fix" + strings.ReplaceAll(fixList, ",", "_")
		}
	}
	var sb strings.Builder
	for _, r := range id {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.' {
			sb.WriteRune(r)
		} else {
			sb.WriteRune('_')
		}
	}
	return sb.String()
}

// jsonFinding is the machine-readable form of one finding. Concolic
// findings report the solved variable assignment (Input); fuzz findings
// report the raw input stream (Data, hex) and the execution index.
type jsonFinding struct {
	Error    string            `json:"error"`
	PC       uint32            `json:"pc"`
	Function string            `json:"function,omitempty"`
	Path     int               `json:"path,omitempty"`
	Exec     uint64            `json:"exec,omitempty"`
	Input    map[string]uint64 `json:"input,omitempty"`
	Data     string            `json:"data,omitempty"`
	Instrs   uint64            `json:"instrs"`
}

// jsonReport is the machine-readable form of cte.Report emitted by
// -json, for scripting and diffing EXPERIMENTS.md runs. The schema is
// documented in README.md ("JSON report schema"); fields are only ever
// added, never renamed.
type jsonReport struct {
	Program    string            `json:"program,omitempty"`
	Mode       string            `json:"mode"`
	Stopped    string            `json:"stopped,omitempty"`
	Workers    int               `json:"workers"`
	Paths      int               `json:"paths"`
	Queries    int               `json:"queries"`
	SolverTime float64           `json:"solver_time_sec"`
	WallTime   float64           `json:"wall_time_sec"`
	TotalInstr uint64            `json:"total_instr"`
	SatTCs     int               `json:"sat_tcs"`
	UnsatTCs   int               `json:"unsat_tcs"`
	UnknownTCs int               `json:"unknown_tcs"`
	Pruned     int               `json:"pruned"`
	Exhausted  bool              `json:"exhausted"`
	CoveredPCs int               `json:"covered_pcs"`
	Detectors  []string          `json:"detectors,omitempty"`
	Protocol   *jsonProtocol     `json:"protocol,omitempty"`
	Cache      *qcache.Stats     `json:"cache,omitempty"`
	PerWorker  []cte.WorkerStats `json:"per_worker,omitempty"`
	Fuzz       *jsonFuzz         `json:"fuzz,omitempty"`
	BMC        *jsonBMC          `json:"bmc,omitempty"`
	Obs        *obs.Snapshot     `json:"obs,omitempty"`
	Findings   []jsonFinding     `json:"findings"`
}

func emitJSON(b *smt.Builder, elf *relf.File, prog string, cfg cte.Config, rep *cte.Report) {
	jr := jsonReport{
		Program:    prog,
		Mode:       rep.Mode.String(),
		Stopped:    rep.Stopped,
		Workers:    rep.Workers,
		Paths:      rep.Paths,
		Queries:    rep.Queries,
		SolverTime: rep.SolverTime.Seconds(),
		WallTime:   rep.WallTime.Seconds(),
		TotalInstr: rep.TotalInstr,
		SatTCs:     rep.SatTCs,
		UnsatTCs:   rep.UnsatTCs,
		UnknownTCs: rep.UnknownTCs,
		Pruned:     rep.Pruned,
		Exhausted:  rep.Exhausted,
		CoveredPCs: len(rep.Covered),
		Cache:      rep.Cache,
		PerWorker:  rep.PerWorker,
		Obs:        rep.Obs,
		Detectors:  rep.Detectors,
		Findings:   []jsonFinding{},
	}
	if cfg.Protocol.StateAddr != 0 {
		jr.Protocol = &jsonProtocol{
			Packets:   cfg.Protocol.Packets,
			States:    cfg.Protocol.States,
			StateAddr: int64(cfg.Protocol.StateAddr),
			PktCaps:   cfg.Protocol.PktMax,
		}
	}
	if st := rep.Fuzz; st != nil {
		rate := 0.0
		if rep.WallTime > 0 {
			rate = float64(st.Execs) / rep.WallTime.Seconds()
		}
		jr.TotalInstr = st.TotalInstr
		jr.Fuzz = &jsonFuzz{
			Execs:          st.Execs,
			ExecsPerSec:    rate,
			TotalInstr:     st.TotalInstr,
			CorpusSize:     st.CorpusSize,
			Edges:          st.Edges,
			Pruned:         st.Pruned,
			Injected:       st.Injected,
			Escalations:    st.Escalations,
			FlipsAttempted: st.FlipsAttempted,
			Solves:         st.Solves,
			SkipInitInstrs: st.SkipInitInstrs,
		}
	}
	if br := rep.BMC; br != nil {
		confirmed := 0
		for _, f := range br.Findings {
			if f.Confirmed {
				confirmed++
			}
		}
		jr.BMC = &jsonBMC{
			K: br.K, Steps: br.Steps, PeakStates: br.PeakStates,
			Splits: br.Splits, Merges: br.Merges, SkewMerges: br.SkewMerges,
			Exits: br.Exits, Truncated: br.Truncated,
			Violations: br.Violations, Sites: br.Sites, Unknown: br.Unknown,
			Complete: br.Complete, Exhausted: br.Exhausted,
			Confirmed: confirmed, Unsupported: br.Unsupported,
		}
	}
	for _, f := range rep.Findings {
		jf := jsonFinding{
			Error:  f.Err.Error(),
			PC:     f.Err.PC,
			Path:   f.Path,
			Exec:   f.Exec,
			Instrs: f.Instrs,
		}
		if elf != nil {
			jf.Function = guest.LocateFunc(elf, f.Err.PC)
		}
		if len(f.Data) > 0 {
			jf.Data = hex.EncodeToString(f.Data)
		}
		if len(f.Input) > 0 {
			jf.Input = map[string]uint64{}
			for id, v := range f.Input {
				if id < b.NumVars() {
					jf.Input[b.VarName(id)] = v
				}
			}
		}
		jr.Findings = append(jr.Findings, jf)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&jr); err != nil {
		die(err)
	}
}

// die reports a usage/setup error (exit code 2 — distinct from exit 1,
// which means the run completed and reported findings).
func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cte:", err)
		os.Exit(2)
	}
}
