package main

import (
	"encoding/json"
	"os/exec"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestJSONReportSchemaStable pins the -json wire contract after the
// Config restructure: downstream tooling (campaign dashboards, the
// EXPERIMENTS.md tables) parses these exact keys, so adding a field is
// fine only through the golden lists below, and renaming one is a
// breaking change that must be called out in README's migration notes.
func TestJSONReportSchemaStable(t *testing.T) {
	t.Parallel()
	out, err := exec.Command(cteBin,
		"-prog", "tcpip-session", "-pkts", "3", "-detectors", "all",
		"-max-paths", "5", "-stop-on-error=false", "-json").Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() > 1 {
			t.Fatalf("run: %v (%s)", err, out)
		}
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(out, &top); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}

	want := []string{
		"cache", "covered_pcs", "detectors", "exhausted", "findings",
		"mode", "obs", "paths", "program", "protocol", "pruned",
		"queries", "sat_tcs", "solver_time_sec", "stopped",
		"total_instr", "unknown_tcs", "unsat_tcs", "wall_time_sec",
		"workers",
	}
	var got []string
	for k := range top {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("top-level -json keys changed:\n got  %v\n want %v", got, want)
	}

	var proto map[string]json.RawMessage
	if err := json.Unmarshal(top["protocol"], &proto); err != nil {
		t.Fatalf("protocol section: %v", err)
	}
	wantProto := []string{"packets", "pkt_caps", "state_addr", "states"}
	var gotProto []string
	for k := range proto {
		gotProto = append(gotProto, k)
	}
	sort.Strings(gotProto)
	if !reflect.DeepEqual(gotProto, wantProto) {
		t.Errorf("protocol keys changed:\n got  %v\n want %v", gotProto, wantProto)
	}

	var dets []string
	if err := json.Unmarshal(top["detectors"], &dets); err != nil {
		t.Fatalf("detectors section: %v", err)
	}
	if len(dets) < 4 || !strings.Contains(strings.Join(dets, ","), "heap-uaf") {
		t.Errorf(`"all" must expand in the report: %v`, dets)
	}
}
