package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestCampaignFlagValidation pins the mode matrix as subprocess runs:
// -serve, -connect, -submit and one-shot exploration are mutually
// exclusive, auxiliary flags require their mode, and every violation is
// a usage error — exit code 2 with a diagnostic on stderr.
func TestCampaignFlagValidation(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{
			name:   "serve and connect conflict",
			args:   []string{"-serve", ":0", "-connect", "localhost:1"},
			stderr: "mutually exclusive",
		},
		{
			name:   "serve and submit conflict",
			args:   []string{"-serve", ":0", "-submit", "localhost:1", "-prog", "tcpip"},
			stderr: "mutually exclusive",
		},
		{
			name:   "connect and submit conflict",
			args:   []string{"-connect", "localhost:1", "-submit", "localhost:1"},
			stderr: "mutually exclusive",
		},
		{
			name:   "serve rejects a program",
			args:   []string{"-serve", ":0", "-prog", "tcpip"},
			stderr: "take no program",
		},
		{
			name:   "connect rejects an ELF",
			args:   []string{"-connect", "localhost:1", "prog.elf"},
			stderr: "take no program",
		},
		{
			name:   "fuzz with serve conflicts",
			args:   []string{"-serve", ":0", "-fuzz"},
			stderr: "cannot be combined with -serve",
		},
		{
			name:   "fuzz with connect conflicts",
			args:   []string{"-connect", "localhost:1", "-fuzz"},
			stderr: "cannot be combined with -serve",
		},
		{
			name:   "submit requires a program",
			args:   []string{"-submit", "localhost:1"},
			stderr: "-submit requires -prog",
		},
		{
			name:   "submit rejects an ELF",
			args:   []string{"-submit", "localhost:1", "-prog", "tcpip", "prog.elf"},
			stderr: "cannot explore an ELF",
		},
		{
			name:   "spool requires serve",
			args:   []string{"-spool", "/tmp/x", "-prog", "sensor"},
			stderr: "-spool requires -serve",
		},
		{
			name:   "worker-id requires connect",
			args:   []string{"-worker-id", "w", "-prog", "sensor"},
			stderr: "-worker-id requires -connect",
		},
		{
			name:   "findfix requires submit",
			args:   []string{"-findfix", "-prog", "tcpip"},
			stderr: "-findfix requires -submit",
		},
		{
			name:   "findfix is tcpip-only",
			args:   []string{"-submit", "localhost:1", "-prog", "sensor", "-findfix"},
			stderr: "-findfix is the concolic find-fix-rerun workflow",
		},
		{
			name:   "bmc with fuzz conflicts",
			args:   []string{"-prog", "storm-s", "-bmc", "-fuzz"},
			stderr: "-bmc and -fuzz are mutually exclusive",
		},
		{
			name:   "bmc with serve conflicts",
			args:   []string{"-serve", ":0", "-bmc"},
			stderr: "cannot be combined with -serve, -connect or -submit",
		},
		{
			name:   "bmc with connect conflicts",
			args:   []string{"-connect", "localhost:1", "-bmc"},
			stderr: "cannot be combined with -serve, -connect or -submit",
		},
		{
			name:   "bmc with submit conflicts",
			args:   []string{"-submit", "localhost:1", "-prog", "storm-s", "-bmc"},
			stderr: "cannot be combined with -serve, -connect or -submit",
		},
		{
			name:   "k requires bmc",
			args:   []string{"-prog", "storm-s", "-k", "100"},
			stderr: "-k requires -bmc",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(cteBin, tc.args...)
			var sb, eb strings.Builder
			cmd.Stdout, cmd.Stderr = &sb, &eb
			err := cmd.Run()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("run: %v", err)
			}
			if code != 2 {
				t.Errorf("exit code %d want 2\nstdout: %s\nstderr: %s", code, sb.String(), eb.String())
			}
			if !strings.Contains(eb.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", eb.String(), tc.stderr)
			}
		})
	}

	// A submit against an unreachable coordinator is a setup error, not
	// a finding: exit 2.
	t.Run("submit to unreachable coordinator", func(t *testing.T) {
		t.Parallel()
		cmd := exec.Command(cteBin, "-submit", "127.0.0.1:1", "-prog", "storm-s")
		var eb strings.Builder
		cmd.Stderr = &eb
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("exit %v want 2 (stderr: %s)", err, eb.String())
		}
	})
}
