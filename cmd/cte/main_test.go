package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCTE compiles the cte binary once per test binary invocation.
var cteBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ctebin")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	cteBin = filepath.Join(dir, "cte")
	out, err := exec.Command("go", "build", "-o", cteBin, ".").CombinedOutput()
	if err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// TestExitCodes pins the contract stated in the package comment:
// 0 = explored clean, 1 = findings reported, 2 = usage/setup error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr string // required substring of stderr (usage errors)
		stdout string // required substring of stdout
	}{
		{
			name:   "finding exits 1",
			args:   []string{"-prog", "sensor", "-max-paths", "200"},
			want:   1,
			stdout: "FINDING",
		},
		{
			name:   "clean exploration exits 0",
			args:   []string{"-prog", "sensor-fixed", "-max-paths", "200"},
			want:   0,
			stdout: "no errors found",
		},
		{
			name:   "unknown program exits 2",
			args:   []string{"-prog", "no-such-guest"},
			want:   2,
			stderr: "unknown program",
		},
		{
			name:   "unknown strategy exits 2",
			args:   []string{"-prog", "sensor", "-strategy", "bogus"},
			want:   2,
			stderr: "unknown -strategy",
		},
		{
			name:   "no program exits 2",
			args:   []string{},
			want:   2,
			stderr: "need -prog",
		},
		{
			name:   "bad fix list exits 2",
			args:   []string{"-prog", "tcpip", "-fix", "7"},
			want:   2,
			stderr: "bad -fix entry",
		},
		{
			name: "missing ELF file exits 2",
			args: []string{"/no/such/file.elf"},
			want: 2,
		},
		{
			name:   "fuzz finding exits 1",
			args:   []string{"-prog", "tcpip", "-fuzz", "-fuzz-time", "120s", "-seed", "1"},
			want:   1,
			stdout: "FINDING",
		},
		{
			name:   "json finding exits 1",
			args:   []string{"-prog", "sensor", "-max-paths", "200", "-json"},
			want:   1,
			stdout: `"findings"`,
		},
		{
			name:   "bmc finding exits 1",
			args:   []string{"-prog", "storm-s", "-bmc"},
			want:   1,
			stdout: "FINDING",
		},
		{
			name:   "bmc clean exits 0",
			args:   []string{"-prog", "counter-s", "-bmc"},
			want:   0,
			stdout: "no errors found",
		},
		{
			name:   "bmc json carries the bmc section",
			args:   []string{"-prog", "storm-s", "-bmc", "-json"},
			want:   1,
			stdout: `"bmc"`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(cteBin, tc.args...)
			var sb, eb strings.Builder
			cmd.Stdout, cmd.Stderr = &sb, &eb
			err := cmd.Run()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("run: %v", err)
			}
			if code != tc.want {
				t.Errorf("exit code %d want %d\nstdout: %s\nstderr: %s", code, tc.want, sb.String(), eb.String())
			}
			if tc.stderr != "" && !strings.Contains(eb.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", eb.String(), tc.stderr)
			}
			if tc.stdout != "" && !strings.Contains(sb.String(), tc.stdout) {
				t.Errorf("stdout %q does not contain %q", sb.String(), tc.stdout)
			}
		})
	}
}
