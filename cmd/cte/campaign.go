package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rvcte/internal/campaign"
	"rvcte/internal/obs"
)

// campaignOpts carries the flag values the three campaign modes need.
type campaignOpts struct {
	serve, spool      string // coordinator
	connect, workerID string // worker
	submit            string // client
	findFix           bool

	prog, fixList string
	pktMax        int
	pkts          int
	pktCaps       []int
	detectors     []string
	fuzz          bool
	bmc           bool
	bmcK          int
	shards, batch int
	leaseTTL      time.Duration
	maxPaths      int
	maxInstr      uint64
	maxConflicts  int
	stopOnError   bool
	seed          int64
}

// validateCampaignFlags enforces the mode matrix: -serve, -connect,
// -submit and one-shot exploration are mutually exclusive, and the
// auxiliary flags only make sense with their mode. Violations are usage
// errors (exit 2).
func validateCampaignFlags(o campaignOpts, nargs int) error {
	modes := 0
	for _, m := range []string{o.serve, o.connect, o.submit} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-serve, -connect and -submit are mutually exclusive")
	}
	if o.spool != "" && o.serve == "" {
		return errors.New("-spool requires -serve")
	}
	if o.workerID != "" && o.connect == "" {
		return errors.New("-worker-id requires -connect")
	}
	if o.findFix && o.submit == "" {
		return errors.New("-findfix requires -submit")
	}
	if o.fuzz && (o.serve != "" || o.connect != "") {
		return errors.New("-fuzz selects a run mode: it cannot be combined with -serve or -connect")
	}
	if o.bmc && o.fuzz {
		return errors.New("-bmc and -fuzz are mutually exclusive run modes")
	}
	if o.bmc && (o.serve != "" || o.connect != "" || o.submit != "") {
		return errors.New("-bmc selects a run mode: it cannot be combined with -serve, -connect or -submit")
	}
	if o.bmcK != 0 && !o.bmc {
		return errors.New("-k requires -bmc")
	}
	if (o.serve != "" || o.connect != "") && (o.prog != "" || nargs > 0) {
		return errors.New("-serve and -connect take no program: workers receive the campaign spec from the coordinator")
	}
	if o.submit != "" && o.prog == "" {
		return errors.New("-submit requires -prog (campaigns run the built-in programs)")
	}
	if o.submit != "" && nargs > 0 {
		return errors.New("-submit cannot explore an ELF file; use -prog")
	}
	if o.findFix && (o.prog != "tcpip" || o.fuzz) {
		return errors.New("-findfix is the concolic find-fix-rerun workflow for -prog tcpip")
	}
	return nil
}

// campaignMain dispatches to the selected campaign mode and returns the
// process exit code.
func campaignMain(o campaignOpts) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch {
	case o.serve != "":
		return runServe(ctx, o)
	case o.connect != "":
		return runConnect(ctx, o)
	default:
		return runSubmit(ctx, o)
	}
}

// runServe runs the coordinator: the HTTP control plane (plus the obs
// /metrics and /debug/pprof diagnostics on the same address) until
// SIGINT/SIGTERM, with campaign state spooled to -spool if given.
func runServe(ctx context.Context, o campaignOpts) int {
	ob := obs.New()
	co, err := campaign.NewCoordinator(o.spool, ob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cte:", err)
		return 2
	}
	ln, err := net.Listen("tcp", o.serve)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cte:", err)
		return 2
	}
	srv := &http.Server{Handler: campaign.NewServer(co, ob), ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(os.Stderr, "cte: campaign control plane on http://%s", ln.Addr())
	if o.spool != "" {
		resumed := 0
		for _, st := range co.List() {
			if st.State == campaign.StateRunning {
				resumed++
			}
		}
		fmt.Fprintf(os.Stderr, " (spool %s, %d campaigns resumed)", o.spool, resumed)
	}
	fmt.Fprintln(os.Stderr)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		return 0
	case err := <-done:
		fmt.Fprintln(os.Stderr, "cte:", err)
		return 2
	}
}

// runConnect runs a worker process against a coordinator until
// SIGINT/SIGTERM.
func runConnect(ctx context.Context, o campaignOpts) int {
	err := campaign.RunWorker(ctx, campaign.WorkerOptions{
		Server: o.connect,
		ID:     o.workerID,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cte: "+format+"\n", args...)
		},
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "cte:", err)
		return 2
	}
	return 0
}

// specFor assembles the campaign spec the -submit flags describe.
func specFor(o campaignOpts, fixList string) campaign.Spec {
	s := campaign.Spec{
		Prog: o.prog, FixList: fixList, PktMax: o.pktMax,
		Pkts: o.pkts, PktCaps: o.pktCaps, Detectors: o.detectors,
		Shards: o.shards, Batch: o.batch, LeaseTTLMS: o.leaseTTL.Milliseconds(),
		MaxPaths: o.maxPaths, MaxInstr: o.maxInstr, MaxConflicts: o.maxConflicts,
		StopOnError: o.stopOnError, Seed: o.seed,
	}
	if o.fuzz {
		s.Mode = "hybrid"
	}
	return s
}

func printWireFinding(stage int, f campaign.WireFinding) {
	prefix := "FINDING"
	if stage >= 0 {
		prefix = fmt.Sprintf("stage %d: FINDING", stage)
	}
	bug := ""
	if f.Bug > 0 {
		bug = fmt.Sprintf("  [table-2 bug %d]", f.Bug)
	}
	fmt.Printf("%s: %s @ %#x in %s (worker %s)%s\n", prefix, f.Kind, f.PC, f.Func, f.Worker, bug)
	fmt.Printf("  %s\n", f.Msg)
}

// runSubmit creates a campaign from the -prog flags, streams its
// findings until it completes, and exits 1 if anything was found — the
// same contract as a one-shot run. With -findfix it iterates the paper's
// §4.2.3 find-fix-rerun workflow across campaigns: each stop-on-error
// campaign stops at its first finding, the classified bug joins the fix
// list, and the loop ends when a campaign explores clean.
func runSubmit(ctx context.Context, o campaignOpts) int {
	cl := campaign.NewClient(o.submit)
	if o.findFix {
		return runFindFix(ctx, cl, o)
	}
	st, err := cl.Create(ctx, specFor(o, o.fixList))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cte:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "cte: campaign %s (%s) submitted to %s\n", st.Spec.ID, st.Spec.Prog, o.submit)
	found := 0
	final, err := cl.StreamFindings(ctx, st.Spec.ID, func(f campaign.WireFinding) {
		found++
		printWireFinding(-1, f)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cte:", err)
		return 2
	}
	fmt.Printf("campaign %s: %s — %d paths, %d findings (%d duplicates dropped, %d leases expired)\n",
		st.Spec.ID, final.State, final.Stats.Paths, final.Findings,
		final.Stats.Duplicates, final.Stats.Expired)
	if found > 0 {
		return 1
	}
	return 0
}

func runFindFix(ctx context.Context, cl *campaign.Client, o campaignOpts) int {
	fixes := []string{}
	if o.fixList != "" {
		fixes = strings.Split(o.fixList, ",")
	}
	bugs := 0
	for stage := 0; stage < 8; stage++ {
		fixList := strings.Join(fixes, ",")
		spec := specFor(o, fixList)
		spec.StopOnError = true
		st, err := cl.Create(ctx, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cte:", err)
			return 2
		}
		var first *campaign.WireFinding
		final, err := cl.StreamFindings(ctx, st.Spec.ID, func(f campaign.WireFinding) {
			if first == nil {
				first = &f
				printWireFinding(stage, f)
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cte:", err)
			return 2
		}
		if first == nil {
			fmt.Printf("stage %d: clean — %d paths, fixes [%s], campaign %s %s\n",
				stage, final.Stats.Paths, fixList, st.Spec.ID, final.State)
			if bugs > 0 {
				return 1
			}
			return 0
		}
		if first.Bug == 0 {
			fmt.Fprintf(os.Stderr, "cte: stage %d finding not classified to a table-2 bug; cannot continue fixing\n", stage)
			return 2
		}
		fix := fmt.Sprintf("%d", first.Bug)
		for _, f := range fixes {
			if f == fix {
				fmt.Fprintf(os.Stderr, "cte: bug %s found again after being fixed; aborting\n", fix)
				return 2
			}
		}
		fixes = append(fixes, fix)
		bugs++
	}
	fmt.Fprintln(os.Stderr, "cte: find-fix did not converge in 8 stages")
	return 2
}
