// Command tracecheck validates a JSONL event trace written by cte
// -trace: every line must decode into obs.Event with no unknown fields,
// timestamps must be monotone, and the trace must end with a run_end
// event. It prints a per-kind event census on success.
//
// Usage:
//
//	cte -prog storm-s -trace run.jsonl
//	tracecheck run.jsonl
//
// Exit codes: 0 = trace valid, 1 = validation failure, 2 = usage error.
package main

import (
	"fmt"
	"os"
	"sort"

	"rvcte/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	defer f.Close()

	events, err := obs.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: invalid trace:", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: empty trace")
		os.Exit(1)
	}
	census := map[string]int{}
	last := -1.0
	for i, ev := range events {
		if ev.Ev == "" {
			fmt.Fprintf(os.Stderr, "tracecheck: line %d: missing event kind\n", i+1)
			os.Exit(1)
		}
		if ev.T < last {
			fmt.Fprintf(os.Stderr, "tracecheck: line %d: timestamp %f before %f\n", i+1, ev.T, last)
			os.Exit(1)
		}
		last = ev.T
		census[ev.Ev]++
	}
	if events[len(events)-1].Ev != obs.EvRunEnd {
		fmt.Fprintf(os.Stderr, "tracecheck: trace does not end with %s (got %s)\n",
			obs.EvRunEnd, events[len(events)-1].Ev)
		os.Exit(1)
	}

	kinds := make([]string, 0, len(census))
	for k := range census {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("trace OK: %d events over %.3fs\n", len(events), last)
	for _, k := range kinds {
		fmt.Printf("  %-12s %6d\n", k, census[k])
	}
}
