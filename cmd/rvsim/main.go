// Command rvsim runs a RISC-V ELF on the concrete virtual prototype
// (native SystemC-style peripherals, no symbolic execution) — the "VP"
// baseline of the paper's Table 1.
//
// Usage:
//
//	rvsim prog.elf
//	rvsim -bench qsort       # run a built-in benchmark guest
package main

import (
	"flag"
	"fmt"
	"os"

	"rvcte/internal/guest"
	"rvcte/internal/relf"
	"rvcte/internal/vp"
)

func main() {
	benchName := flag.String("bench", "", "run a built-in benchmark (qsort, sha256, dhrystone)")
	maxInstr := flag.Uint64("max-instr", 500_000_000, "instruction budget")
	flag.Parse()

	var elf *relf.File
	var err error
	switch {
	case *benchName != "":
		p, ok := guest.BenchProgram(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "rvsim: unknown benchmark %q\n", *benchName)
			os.Exit(2)
		}
		elf, err = guest.Build(p)
		die(err)
	case flag.NArg() == 1:
		data, rerr := os.ReadFile(flag.Arg(0))
		die(rerr)
		elf, err = relf.Load(data)
		die(err)
	default:
		fmt.Fprintln(os.Stderr, "rvsim: need an ELF file or -bench name")
		os.Exit(2)
	}

	cpu := vp.New(vp.Config{
		RamBase:  0x80000000,
		RamSize:  4 << 20,
		StackTop: 0x80000000 + (4 << 20) - 16384,
		MaxInstr: *maxInstr,
	})
	vp.AttachStandardPeripherals(cpu)
	die(cpu.LoadELF(elf))
	cpu.Run(0)

	os.Stdout.Write(cpu.Output)
	if cpu.Err != nil {
		fmt.Fprintf(os.Stderr, "rvsim: %v (after %d instructions)\n", cpu.Err, cpu.InstrCount)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rvsim: exit %d, %d instructions, %d cycles\n",
		cpu.ExitCode, cpu.InstrCount, cpu.Cycles)
	os.Exit(int(cpu.ExitCode & 0x7f))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvsim:", err)
		os.Exit(1)
	}
}
