// Command rvdis disassembles a RISC-V ELF produced by the toolchain,
// objdump-style: addresses, raw encodings, mnemonics, and symbol labels.
//
// Usage:
//
//	rvdis prog.elf
//	rvdis -start 0x80000000 -count 40 prog.elf
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rvcte/internal/relf"
	"rvcte/internal/rv32"
)

func main() {
	start := flag.Uint64("start", 0, "start address (default: entry point)")
	count := flag.Int("count", 0, "max instructions (0 = whole image)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "rvdis: need exactly one ELF file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	die(err)
	elf, err := relf.Load(data)
	die(err)

	// Function labels by address (skip compiler-internal .L labels).
	labels := map[uint32][]string{}
	for name, addr := range elf.Symbols {
		if strings.HasPrefix(name, ".L") {
			continue
		}
		labels[addr] = append(labels[addr], name)
	}
	for _, names := range labels {
		sort.Strings(names)
	}

	pc := elf.Entry
	if *start != 0 {
		pc = uint32(*start)
	}
	end := elf.Addr + uint32(len(elf.Data))
	printed := 0
	for pc < end {
		if *count > 0 && printed >= *count {
			break
		}
		if names, ok := labels[pc]; ok {
			for _, n := range names {
				fmt.Printf("\n%08x <%s>:\n", pc, n)
			}
		}
		off := pc - elf.Addr
		if off+2 > uint32(len(elf.Data)) {
			break
		}
		word := uint32(elf.Data[off]) | uint32(elf.Data[off+1])<<8
		if word&3 == 3 {
			if off+4 > uint32(len(elf.Data)) {
				break
			}
			word |= uint32(elf.Data[off+2])<<16 | uint32(elf.Data[off+3])<<24
		}
		inst := rv32.Decode(word)
		if inst.Size == 2 {
			fmt.Printf("%8x:\t%04x     \t%s\n", pc, word&0xffff, describe(inst, pc, labels))
		} else {
			fmt.Printf("%8x:\t%08x \t%s\n", pc, word, describe(inst, pc, labels))
		}
		pc += uint32(inst.Size)
		printed++
	}
}

// describe renders an instruction, resolving branch/jump targets to
// symbol names where possible.
func describe(in rv32.Inst, pc uint32, labels map[uint32][]string) string {
	s := in.String()
	switch in.Op {
	case rv32.OpJAL, rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU:
		target := pc + uint32(in.Imm)
		if names, ok := labels[target]; ok {
			return fmt.Sprintf("%s\t# %x <%s>", s, target, names[0])
		}
		return fmt.Sprintf("%s\t# %x", s, target)
	}
	return s
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvdis:", err)
		os.Exit(1)
	}
}
