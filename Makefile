# rvcte — stdlib-only Go repo; everything here works offline.

GO ?= go

.PHONY: all build vet test race verify fuzz-smoke trace-smoke campaign-smoke bmc-smoke stateful-smoke bench bench-iss bench-fork examples clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent layers (worker-pool exploration, the fuzzer, the
# shared query cache, the solver it drives, the COW memory it clones,
# the shared decoded-block layer those clones publish into, and the
# campaign coordinator serving many workers) must stay race-clean.
race:
	$(GO) test -race ./internal/cte/... ./internal/fuzz/... ./internal/qcache/... ./internal/concolic/... ./internal/smt/... ./internal/iss/... ./internal/campaign/... ./internal/bmc/...
	$(GO) test -race -short ./internal/guest/...

# A bounded hybrid-fuzzing run against the tcpip stack: must report at
# least one finding (exit code 1) well inside the time budget.
fuzz-smoke: build
	$(GO) build -o /tmp/cte-smoke ./cmd/cte
	/tmp/cte-smoke -prog tcpip -fuzz -fuzz-time 120s -seed 1 -j 2; test $$? -eq 1

# Observability smoke: explore storm-s with the event tracer and live
# progress on, then validate that every trace line decodes, timestamps
# are monotone and the trace ends with run_end. storm-s reports its
# seeded assertion finding (exit 1); only exit 2 (setup error) fails.
trace-smoke: build
	$(GO) build -o /tmp/cte-smoke ./cmd/cte
	$(GO) build -o /tmp/tracecheck-smoke ./cmd/tracecheck
	/tmp/cte-smoke -prog storm-s -stop-on-error=false -progress 500ms -trace /tmp/cte-smoke.jsonl >/dev/null; test $$? -le 1
	/tmp/tracecheck-smoke /tmp/cte-smoke.jsonl

# Fleet smoke: a coordinator with a spool, two worker processes and a
# find-fix-rerun client over the HTTP control plane must rediscover all
# six Table-2 tcpip bugs (submit exits 1 = findings reported), then
# every process must wind down cleanly on SIGTERM (exit 0).
campaign-smoke: build
	$(GO) build -o /tmp/cte-smoke ./cmd/cte
	rm -rf /tmp/cte-smoke-spool
	sh -ec ' \
	  /tmp/cte-smoke -serve 127.0.0.1:8473 -spool /tmp/cte-smoke-spool & srv=$$!; \
	  trap "kill -TERM $$srv 2>/dev/null || true" EXIT; \
	  sleep 1; \
	  /tmp/cte-smoke -connect 127.0.0.1:8473 -worker-id smoke-w1 & w1=$$!; \
	  /tmp/cte-smoke -connect 127.0.0.1:8473 -worker-id smoke-w2 & w2=$$!; \
	  trap "kill -TERM $$w1 $$w2 $$srv 2>/dev/null || true" EXIT; \
	  rc=0; /tmp/cte-smoke -submit 127.0.0.1:8473 -prog tcpip -pkt-max 48 -findfix || rc=$$?; \
	  test $$rc -eq 1; \
	  kill -TERM $$w1 $$w2; wait $$w1; wait $$w2; \
	  kill -TERM $$srv; wait $$srv; \
	  trap - EXIT'

# BMC cross-check smoke: the exhaustiveness oracle and the differential
# path-condition check on storm-s (the engines must report the same bug
# set and agree on sampled path conditions), the seeded-disagreement
# negative tests (the oracle must fail when the engines disagree), then
# an end-to-end -bmc run at a small depth: truncated clean absence proof
# (exit 0) and the full-depth confirmed finding (exit 1).
bmc-smoke: build
	$(GO) test -run 'TestBMCConcolicAgreement|TestCompareTamperedConcolicSet|TestCompareDepthMismatch' ./internal/cte ./internal/bmc
	$(GO) build -o /tmp/cte-smoke ./cmd/cte
	/tmp/cte-smoke -prog storm-s -bmc -k 100 >/dev/null
	rc=0; /tmp/cte-smoke -prog storm-s -bmc >/dev/null || rc=$$?; test $$rc -eq 1

# Stateful-campaign smoke: a 3-packet hybrid run on the session guest
# with the full detector set must rediscover one of the seeded deep
# bugs (exit 1 = finding reported). State-banked coverage plus concolic
# escalation is what reaches packet depth 3; the generous
# -dry-escalations keeps the fuzzer escalating through the stateful
# plateau instead of declaring dry.
stateful-smoke: build
	$(GO) build -o /tmp/cte-smoke ./cmd/cte
	/tmp/cte-smoke -prog tcpip-session -pkts 3 -detectors all -fuzz -fuzz-time 180s -dry-escalations 2000 -seed 1; test $$? -eq 1

# The repo's verification recipe (see README.md and
# .claude/skills/verify/SKILL.md): build, vet, full tests, race pass,
# then the end-to-end fuzzing, tracing, campaign, BMC and stateful
# smokes.
verify: build vet test race fuzz-smoke trace-smoke campaign-smoke bmc-smoke stateful-smoke

bench:
	$(GO) test -bench=. -benchmem .

# Block-cache ablation microbenchmarks (EXPERIMENTS.md "Block cache
# ablation"): each benchmark runs the bb / bb-nofuse / nocache variants.
bench-iss:
	$(GO) test -run NONE -bench 'BenchmarkConcreteExec|BenchmarkConcolicExec' -benchmem ./internal/iss

# Fork-vs-restart ablation on the deep guests (EXPERIMENTS.md "State
# forking"): same explorations with checkpoints resumed, with the
# capture threshold, and with full prefix re-execution.
bench-fork:
	$(GO) test -run NONE -bench BenchmarkForkVsRestart -benchtime 20x .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heap-guard
	$(GO) run ./examples/branch-storm
	$(GO) run ./examples/tcpip-fuzz

clean:
	$(GO) clean ./...
