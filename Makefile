# rvcte — stdlib-only Go repo; everything here works offline.

GO ?= go

.PHONY: all build vet test race verify fuzz-smoke bench examples clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent layers (worker-pool exploration, the fuzzer, the
# shared query cache, the solver it drives, and the COW memory it
# clones) must stay race-clean.
race:
	$(GO) test -race ./internal/cte/... ./internal/fuzz/... ./internal/qcache/... ./internal/concolic/... ./internal/smt/...

# A bounded hybrid-fuzzing run against the tcpip stack: must report at
# least one finding (exit code 1) well inside the time budget.
fuzz-smoke: build
	$(GO) build -o /tmp/cte-smoke ./cmd/cte
	/tmp/cte-smoke -prog tcpip -fuzz -fuzz-time 120s -seed 1 -j 2; test $$? -eq 1

# The repo's verification recipe (see README.md and
# .claude/skills/verify/SKILL.md): build, vet, full tests, race pass,
# then the end-to-end fuzzing smoke.
verify: build vet test race fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heap-guard
	$(GO) run ./examples/branch-storm
	$(GO) run ./examples/tcpip-fuzz

clean:
	$(GO) clean ./...
