# rvcte — stdlib-only Go repo; everything here works offline.

GO ?= go

.PHONY: all build vet test race verify bench examples clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent layers (worker-pool exploration, the shared query
# cache, the solver it drives, and the COW memory it clones) must stay
# race-clean.
race:
	$(GO) test -race ./internal/cte/... ./internal/qcache/... ./internal/concolic/... ./internal/smt/...

# The repo's verification recipe (see README.md and
# .claude/skills/verify/SKILL.md): build, vet, full tests, race pass.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heap-guard
	$(GO) run ./examples/branch-storm
	$(GO) run ./examples/tcpip-fuzz

clean:
	$(GO) clean ./...
