// Quickstart: the paper's running example (Fig. 2-4) end to end.
//
// A sensor peripheral — written as a software model using the
// CTE-interface — periodically generates symbolic data; the application
// software configures it over memory-mapped I/O with a symbolic filter
// value and asserts that the delivered data stays in the sensor range.
// Concolic exploration finds the seeded off-by-one in the peripheral's
// filter post-processing: with filter >= MIN the filter is rewritten to
// MIN+1, so a minimal data value underflows "data -= filter" and the
// assertion fails (the I3 input of Fig. 4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

func main() {
	fmt.Println("== building the sensor system (app + sensor & PLIC SW models) ==")
	b := smt.NewBuilder()
	core, elf, err := guest.NewCore(b, guest.SensorProgram(false))
	if err != nil {
		log.Fatal(err)
	}
	if addr, ok := elf.Symbol("sensor_transport"); ok {
		fmt.Printf("sensor transport function bound from ELF symbol: %#x\n", addr)
	}

	fmt.Println("\n== path I0: empty input (all symbolic values default to zero) ==")
	first := core.Clone()
	first.Run(0)
	fmt.Printf("result: %v after %d instructions\n", first.Err, first.InstrCount)
	fmt.Printf("trace conditions emitted: %d\n", len(first.Trace))

	fmt.Println("\n== concolic exploration ==")
	sess := cte.NewSession(core, cte.Config{
		Budget:      cte.Budget{MaxPaths: 64},
		StopOnError: true,
	})
	sess.OnPath = func(path int, c *iss.Core) {
		status := "completed"
		if c.Err != nil {
			status = c.Err.Kind.String()
		}
		fmt.Printf("  path %d: input %s -> %s\n", path, cte.DescribeInput(b, c.Input), status)
	}
	rep := sess.Run(context.Background())

	if len(rep.Findings) == 0 {
		log.Fatal("expected to find the sensor bug")
	}
	f := rep.Findings[0]
	fv := b.Value(f.Input, "f[0]")
	dv := b.Value(f.Input, "d[0]")
	fmt.Printf("\nBUG FOUND: %v\n", f.Err)
	fmt.Printf("violating input: filter=%d data=%d\n", fv, dv)
	fmt.Printf("explanation: filter >= 16 triggers the peripheral's buggy rewrite to 17;\n")
	fmt.Printf("data=%d then underflows (data - 17 wraps around), violating data <= 64.\n", dv)
	fmt.Printf("\nstats: %d paths, %d solver queries, %.3fs solver time\n",
		rep.Paths, rep.Queries, rep.SolverTime.Seconds())

	fmt.Println("\n== after fixing the peripheral (minus one instead of plus one) ==")
	b2 := smt.NewBuilder()
	fixedCore, _, err := guest.NewCore(b2, guest.SensorProgram(true))
	if err != nil {
		log.Fatal(err)
	}
	rep2 := cte.NewSession(fixedCore, cte.Config{
		Budget: cte.Budget{MaxPaths: 200},
	}).Run(context.Background())
	fmt.Printf("exploration: %d paths, findings: %d, exhausted: %v\n",
		rep2.Paths, len(rep2.Findings), rep2.Exhausted)
}
