// heap-guard demonstrates the paper's Fig. 5 heap-overflow detection:
// pvPortMalloc/vPortFree wrappers surround every allocation with
// protected zones that the VP monitors on every load and store. Three
// buggy programs are executed: an off-by-one write, an out-of-bounds
// read driven by a symbolic index (found by exploration), and a double
// free.
//
// Run with: go run ./examples/heap-guard
package main

import (
	"context"
	"fmt"
	"log"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/smt"
)

const wrappers = `
#define PROT_ZONE_SIZE 512

void *guarded_malloc(unsigned int want) {
    unsigned char *p = (unsigned char *)malloc(want + 2 * PROT_ZONE_SIZE);
    if (p == 0) return 0;
    void *addr = (void *)(p + PROT_ZONE_SIZE);
    CTE_register_protected_memory(addr, want, PROT_ZONE_SIZE);
    return addr;
}

void guarded_free(void *pv) {
    CTE_assert(pv != 0);
    CTE_free_protected_memory(pv);
    free((void *)((unsigned char *)pv - PROT_ZONE_SIZE));
}
`

func run(name, src string) {
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, guest.Program{
		Name:    name,
		Sources: []guest.Source{guest.C("main.c", wrappers+src)},
	})
	if err != nil {
		log.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		fmt.Printf("%-18s CAUGHT: %v\n", name+":", core.Err)
	} else {
		fmt.Printf("%-18s completed without error (exit %d)\n", name+":", core.ExitCode)
	}
}

func main() {
	fmt.Println("== concrete off-by-one write ==")
	run("off-by-one", `
int main(void) {
    unsigned char *buf = (unsigned char *)guarded_malloc(16);
    int i;
    for (i = 0; i <= 16; i++) buf[i] = (unsigned char)i;  /* <= is the bug */
    guarded_free(buf);
    return 0;
}`)

	fmt.Println("\n== double free ==")
	run("double-free", `
int main(void) {
    void *p = guarded_malloc(32);
    guarded_free(p);
    guarded_free(p);
    return 0;
}`)

	fmt.Println("\n== in-bounds program stays clean ==")
	run("clean", `
int main(void) {
    unsigned char *buf = (unsigned char *)guarded_malloc(16);
    int i;
    for (i = 0; i < 16; i++) buf[i] = (unsigned char)i;
    unsigned int sum = 0;
    for (i = 0; i < 16; i++) sum += buf[i];
    guarded_free(buf);
    return (int)sum;
}`)

	fmt.Println("\n== symbolic index: exploration finds the overflowing input ==")
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, guest.Program{
		Name: "symbolic-index",
		Sources: []guest.Source{guest.C("main.c", wrappers+`
unsigned char idx;
int main(void) {
    CTE_make_symbolic(&idx, 1, "idx");
    unsigned char *buf = (unsigned char *)guarded_malloc(16);
    /* missing bounds check: idx may be up to 255 */
    buf[idx] = 7;
    guarded_free(buf);
    return 0;
}`)},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Enable the optional address-concretization TCs (§2.2) so the
	// symbolic index is steered toward out-of-bounds values.
	core.AddressTCs = true
	rep := cte.NewSession(core, cte.Config{
		Budget:      cte.Budget{MaxPaths: 50},
		StopOnError: true,
	}).Run(context.Background())
	if len(rep.Findings) == 0 {
		fmt.Println("no overflow found (unexpected)")
		return
	}
	f := rep.Findings[0]
	fmt.Printf("CAUGHT: %v with input idx=%d (after %d paths)\n",
		f.Err, b.Value(f.Input, "idx[0]"), rep.Paths)
}
