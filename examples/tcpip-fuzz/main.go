// tcpip-fuzz reproduces the paper's §4.2 evaluation workflow on the
// mini-RTOS TCP/IP stack: inject one packet with symbolic size and
// content through the network-card peripheral, run concolic testing
// until the first heap overflow, "fix" the bug (enable its patch), and
// re-run — until the stack survives a full bounded sweep. One row is
// printed per discovered bug, mirroring Table 2.
//
// Run with: go run ./examples/tcpip-fuzz
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/smt"
)

var bugDescriptions = map[int]string{
	1: "IP header length underflow -> memmove with size close to UINT_MAX",
	2: "DNS parser reads non-existing header fields / unbounded name walk",
	3: "DNS reply generator write overflow (missing length check)",
	4: "TCP option walking reads beyond the segment",
	5: "NBNS record length trusted: large reply filled from beyond the input",
	6: "NBNS reply buffer sized from the packet's UDP length (too small)",
}

func main() {
	fmt.Println("testing the TCP/IP stack: one symbolic packet (size N <= 64, symbolic content)")
	fmt.Println()
	fmt.Printf("%-4s %-8s %-8s %-8s %-9s %-11s %s\n",
		"bug", "time(s)", "stime(s)", "#paths", "#queries", "#instr", "description")

	fixed := uint(0)
	for stage := 0; stage < 6; stage++ {
		b := smt.NewBuilder()
		core, elf, err := guest.NewCore(b, guest.TCPIPProgram(fixed, 64))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rep := cte.NewSession(core, cte.Config{
			Budget:      cte.Budget{MaxPaths: 10000},
			StopOnError: true,
		}).Run(context.Background())
		elapsed := time.Since(start)
		if len(rep.Findings) == 0 {
			log.Fatalf("stage %d: no error found in %d paths", stage, rep.Paths)
		}
		f := rep.Findings[0]
		bug := guest.Classify("tcpip", elf, f.Err.Kind, f.Err.PC, fixed)
		if bug == 0 {
			log.Fatalf("stage %d: unclassified finding %v", stage, f.Err)
		}
		fmt.Printf("%-4d %-8.2f %-8.2f %-8d %-9d %-11d %s\n",
			bug, elapsed.Seconds(), rep.SolverTime.Seconds(),
			rep.Paths, rep.Queries, rep.TotalInstr, bugDescriptions[bug])
		fixed |= 1 << (bug - 1)
	}

	fmt.Println("\nall six bugs found; verifying the fully patched stack ...")
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, guest.TCPIPProgram(fixed, 64))
	if err != nil {
		log.Fatal(err)
	}
	rep := cte.NewSession(core, cte.Config{
		Budget: cte.Budget{MaxPaths: 1000},
	}).Run(context.Background())
	fmt.Printf("clean sweep: %d paths, %d findings\n", rep.Paths, len(rep.Findings))
}
