// Branch-storm: the SMT query cache (internal/qcache) under a guest
// built to stress it — many overlapping branch conditions over a small
// symbolic buffer (the storm-s benchmark program).
//
// The demo explores the same guest three ways and prints the solver
// work side by side:
//
//  1. cache off — every trace condition goes to the SAT solver;
//  2. cache on, cold — model reuse, unsat subsumption and independence
//     slicing answer most queries without the solver;
//  3. cache on, warm — a second process-equivalent run primed from the
//     cache file persisted by run 2 (the -cache-dir workflow of cmd/cte).
//
// Run with: go run ./examples/branch-storm
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// explore builds a fresh storm-s system (its own builder, so nothing
// leaks between runs) and explores it to exhaustion.
func explore(cacheFile string, load bool) (*cte.Report, *qcache.Cache, error) {
	b := smt.NewBuilder()
	prog, _ := guest.BenchProgram("storm-s")
	core, _, err := guest.NewCore(b, prog)
	if err != nil {
		return nil, nil, err
	}
	var qc *qcache.Cache
	if cacheFile != "" {
		qc = qcache.New(b, qcache.Options{})
		if load {
			if err := qc.Load(cacheFile); err != nil {
				return nil, nil, err
			}
		}
	}
	rep := cte.NewSession(core, cte.Config{
		Budget: cte.Budget{MaxPaths: 2000},
		Cache:  cte.CacheConfig{Queries: qc},
	}).Run(context.Background())
	if cacheFile != "" && !load {
		if err := qc.Save(cacheFile); err != nil {
			return nil, nil, err
		}
	}
	return rep, qc, nil
}

func main() {
	dir, err := os.MkdirTemp("", "branch-storm-cache")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cacheFile := filepath.Join(dir, "storm-s.qcache")

	fmt.Println("== branch-storm: exploring storm-s three ways ==")

	cold, _, err := explore("", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncache off:   %4d paths, %4d SAT queries, %.3fs solver, %d findings\n",
		cold.Paths, cold.Queries, cold.SolverTime.Seconds(), len(cold.Findings))

	cached, _, err := explore(cacheFile, false)
	if err != nil {
		log.Fatal(err)
	}
	cs := cached.Cache
	fmt.Printf("cache cold:  %4d paths, %4d SAT queries, %.3fs solver, %d findings\n",
		cached.Paths, cached.Queries, cached.SolverTime.Seconds(), len(cached.Findings))
	fmt.Printf("             %d exact hits, %d model reuses, %d unsat subsumptions, %d sliced solves\n",
		cs.Hits, cs.EvalHits, cs.SubsumeHits, cs.SliceSolves)

	warm, _, err := explore(cacheFile, true)
	if err != nil {
		log.Fatal(err)
	}
	ws := warm.Cache
	fmt.Printf("cache warm:  %4d paths, %4d SAT queries, %.3fs solver, %d findings (%d entries loaded)\n",
		warm.Paths, warm.Queries, warm.SolverTime.Seconds(), len(warm.Findings), ws.Loaded)

	if cold.Paths != cached.Paths || cold.SatTCs != cached.SatTCs || cold.UnsatTCs != cached.UnsatTCs {
		log.Fatalf("cache changed the exploration result: %v vs %v", cold, cached)
	}
	if cached.Queries >= cold.Queries {
		log.Fatalf("cache did not reduce SAT queries: %d vs %d", cached.Queries, cold.Queries)
	}
	if warm.Queries >= cached.Queries {
		log.Fatalf("warm start did not reduce SAT queries further: %d vs %d", warm.Queries, cached.Queries)
	}
	fmt.Printf("\nsame %d paths and %d/%d sat/unsat TCs on every run; SAT queries %d -> %d -> %d\n",
		cold.Paths, cold.SatTCs, cold.UnsatTCs, cold.Queries, cached.Queries, warm.Queries)
}
