package rvcte

import (
	"context"
	"fmt"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// exploreOrdered runs a bounded deterministic exploration (Workers=1)
// of a guest program and returns the ordered per-path records plus the
// report. With fork on, each path resumes its divergence checkpoint;
// records still carry the full-path instruction count (InstrCount is
// absolute across a fork), so any prefix-replay divergence is visible.
func exploreOrdered(tb testing.TB, p guest.Program, fork bool, maxPaths int) ([]string, *cte.Report) {
	tb.Helper()
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, p)
	if err != nil {
		tb.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Workers: 1, Budget: cte.Budget{MaxPaths: maxPaths}, Fork: cte.ForkConfig{Enabled: fork}})
	var recs []string
	eng.OnPath = func(_ int, c *iss.Core) {
		recs = append(recs, fmt.Sprintf("in=%s exit=%d err=%v out=%q instr=%d",
			cte.DescribeInput(b, c.Input), c.ExitCode, c.Err, c.Output, c.InstrCount))
	}
	return recs, eng.Run(context.Background())
}

// TestForkEquivalenceDeepGuests is the acceptance gate for state
// forking on the paper's real workloads: on storm-s and on the tcpip
// stack the forked exploration must produce the bit-identical ordered
// path sequence, the same findings and the same solver statistics as
// the restart-only baseline — while re-executing strictly fewer
// instructions.
func TestForkEquivalenceDeepGuests(t *testing.T) {
	storm, ok := guest.BenchProgram("storm-s")
	if !ok {
		t.Fatal("storm-s missing")
	}
	guests := []struct {
		name     string
		p        guest.Program
		maxPaths int
	}{
		{"storm-s", withDefaults(storm), 60},
		{"tcpip", withDefaults(guest.TCPIPProgram(0, 64)), 60},
		{"tcpip-allfixed", withDefaults(guest.TCPIPProgram(0x3f, 64)), 40},
	}
	for _, g := range guests {
		t.Run(g.name, func(t *testing.T) {
			forkRecs, forkRep := exploreOrdered(t, g.p, true, g.maxPaths)
			restRecs, restRep := exploreOrdered(t, g.p, false, g.maxPaths)

			if len(forkRecs) != len(restRecs) {
				t.Fatalf("path counts: fork %d restart %d", len(forkRecs), len(restRecs))
			}
			for i := range forkRecs {
				if forkRecs[i] != restRecs[i] {
					t.Fatalf("path %d diverges:\n fork:    %s\n restart: %s",
						i, forkRecs[i], restRecs[i])
				}
			}
			if forkRep.Queries != restRep.Queries ||
				forkRep.SatTCs != restRep.SatTCs ||
				forkRep.UnsatTCs != restRep.UnsatTCs {
				t.Errorf("solver stats diverge: fork %d/%d/%d restart %d/%d/%d",
					forkRep.Queries, forkRep.SatTCs, forkRep.UnsatTCs,
					restRep.Queries, restRep.SatTCs, restRep.UnsatTCs)
			}
			if len(forkRep.Findings) != len(restRep.Findings) {
				t.Fatalf("findings: fork %d restart %d",
					len(forkRep.Findings), len(restRep.Findings))
			}
			for i := range forkRep.Findings {
				ff, rf := forkRep.Findings[i], restRep.Findings[i]
				if ff.Err.Kind != rf.Err.Kind || ff.Err.PC != rf.Err.PC {
					t.Errorf("finding %d diverges: fork %v restart %v", i, ff.Err, rf.Err)
				}
			}
			if forkRep.Forked == 0 {
				t.Error("fork mode never resumed a checkpoint")
			}
			if forkRep.TotalInstr >= restRep.TotalInstr {
				t.Errorf("no re-execution saved: fork %d restart %d instrs",
					forkRep.TotalInstr, restRep.TotalInstr)
			}
			t.Logf("%s: %d paths, instr fork=%d restart=%d (%.1fx), forked=%d fallback=%d",
				g.name, forkRep.Paths, forkRep.TotalInstr, restRep.TotalInstr,
				float64(restRep.TotalInstr)/float64(forkRep.TotalInstr),
				forkRep.Forked, forkRep.ForkRestarts)
		})
	}
}

// BenchmarkForkVsRestart measures the wall-clock effect of state forking
// on the deep guests (make bench-fork): identical explorations, one
// resuming checkpoints, one re-executing every path prefix.
func BenchmarkForkVsRestart(b *testing.B) {
	storm, _ := guest.BenchProgram("storm-s")
	guests := []struct {
		name     string
		p        guest.Program
		maxPaths int
	}{
		{"storm-s", withDefaults(storm), 60},
		{"tcpip", withDefaults(guest.TCPIPProgram(0, 64)), 60},
	}
	modes := []struct {
		name string
		opt  func(*cte.Config)
	}{
		{"fork", func(o *cte.Config) { o.Fork.Enabled = true }},
		{"fork-min2k", func(o *cte.Config) { o.Fork.Enabled = true; o.Fork.MinPrefix = 2000 }},
		{"restart", func(o *cte.Config) {}},
	}
	for _, g := range guests {
		for _, m := range modes {
			b.Run(g.name+"/"+m.name, func(b *testing.B) {
				var instr uint64
				for i := 0; i < b.N; i++ {
					bld := smt.NewBuilder()
					core, _, err := guest.NewCore(bld, g.p)
					if err != nil {
						b.Fatal(err)
					}
					opt := cte.Config{Workers: 1, Budget: cte.Budget{MaxPaths: g.maxPaths}}
					m.opt(&opt)
					rep := cte.NewSession(core, opt).Run(context.Background())
					instr += rep.TotalInstr
				}
				b.ReportMetric(float64(instr)/float64(b.N), "instr/explore")
			})
		}
	}
}
