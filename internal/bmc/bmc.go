// Package bmc is the bounded-model-checking backend: a second
// verification engine next to the concolic one. Starting from the same
// frozen VP snapshot, it symbolically executes *all* paths at once for
// up to K instructions — every register and memory byte is a guarded
// smt.Expr, branches split the path guard, and states that meet at the
// same program point are merged back with ite instead of staying forked
// — then asks one reachability query per bug site (assertion failure,
// heap-guard violation, bad-PC trap, ...) through the shared query
// cache and bit-blaster.
//
// Where the concolic engine proves bug *presence* one path at a time,
// BMC proves *absence* up to the depth bound: an UNSAT reachability
// query means no input reaches that detector in <= K instructions. The
// two engines cross-check each other (CrossCheck, DiffCheck): on the
// supported guest subset the BMC bug set at depth K must equal the
// concolic finding set when concolic is depth-bounded to K.
//
// The supported subset is the synchronous, peripheral-free ISS:
// symbolic jump targets, symbolic data addresses, MMIO/peripheral
// context switches, notifications, CSRs and cycle-dependent interfaces
// make a state "unsupported" — its guard is recorded and the run is
// marked incomplete rather than silently wrong.
package bmc

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rvcte/internal/concolic"
	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// Config tunes one bounded unrolling.
type Config struct {
	// K is the depth bound in retired instructions per path (matches
	// the concolic engine's Budget.MaxInstrPerRun for cross-checks).
	K int
	// Cache, when non-nil, routes the reachability queries through the
	// shared SMT query cache; nil falls back to the bare solver.
	Cache *qcache.Cache
	// MaxConflicts bounds each solver query (0 = unlimited); exhausted
	// queries leave the bug site "unknown" instead of blocking.
	MaxConflicts int
	// MaxStates is a safety valve on the merged-state pool (0 = 4096).
	// Exceeding it stops the unrolling with Stopped = "state-budget".
	MaxStates int
	// NoReplay skips the concrete confirmation replay of each finding's
	// model through the concolic ISS.
	NoReplay bool
	Obs      *obs.Obs
}

// Finding is one solver-confirmed reachable bug site.
type Finding struct {
	Kind  iss.ErrKind
	PC    uint32
	Addr  uint32
	Msg   string
	Depth int            // shallowest unroll depth that recorded the site
	Input smt.Assignment // model of the reachability query
	// Confirmed reports that replaying Input through the concolic ISS
	// reproduced exactly this (Kind, PC) — the zero-false-positive
	// check. Always false with Config.NoReplay.
	Confirmed bool
}

// Report is the outcome of one bounded unrolling.
type Report struct {
	K          int
	Steps      uint64 // state-steps executed (one instruction each)
	PeakStates int    // peak merged-state pool size
	Splits     int    // branch splits
	Merges     int    // ite-merges at join points
	SkewMerges int    // merges of states at different depths (see Exhausted)
	Exits      int    // states that reached CTE_exit
	Truncated  int    // states still live at depth K
	Violations int    // guarded violation terms recorded (pre-solving)
	Sites      int    // distinct (kind, pc) bug sites queried
	Queries    int    // solver/cache queries issued
	Unknown    int    // sites left undecided by the conflict budget
	SolverTime time.Duration
	WallTime   time.Duration
	// Unsupported counts dropped states by reason. Any drop voids the
	// exhaustiveness claim.
	Unsupported map[string]int
	// Exhausted: every path terminated before K and no state was
	// dropped — the bug set is exactly the set of reachable bugs, full
	// stop, not just up to depth K. Merging states of unequal depth
	// (SkewMerges) only threatens exactness when the run *truncates*,
	// so it does not affect this flag.
	Exhausted bool
	// Complete: no state was dropped (Exhausted without the
	// ran-to-completion requirement): the bug set is exact up to K.
	Complete bool
	// Stopped says why the unrolling ended: "exhausted" | "depth" |
	// "state-budget" | "canceled".
	Stopped string
	// Replayed records whether findings were confirmation-replayed
	// (Config.NoReplay off), i.e. whether Finding.Confirmed is
	// meaningful.
	Replayed bool
	Findings []Finding
	// Accounted holds the guards of every terminated, truncated and
	// dropped state. With Complete, they partition the input space:
	// exactly one evaluates true under any total assignment (DiffCheck
	// leans on this).
	Accounted []*smt.Expr
}

// violation is one guarded bug-detector hit recorded during unrolling.
type violation struct {
	kind  iss.ErrKind
	pc    uint32
	addr  uint32
	msg   string
	guard *smt.Expr
	depth int
}

// state is one merged symbolic machine state: a path guard, fully
// symbolic registers, a concrete PC, and a symbolic byte overlay over
// the snapshot image. Two states are merged (ite per register and
// overlay byte, or of the guards) when they reach the same PC with the
// same auxiliary state.
type state struct {
	guard  *smt.Expr
	regs   [32]*smt.Expr
	pc     uint32
	mem    *smt.Mem
	depth  int
	zones  []iss.Zone
	symGen map[string]int
}

func (s *state) clone() *state {
	n := *s
	n.mem = s.mem.Clone()
	n.zones = append([]iss.Zone(nil), s.zones...)
	n.symGen = make(map[string]int, len(s.symGen))
	for k, v := range s.symGen {
		n.symGen[k] = v
	}
	return &n
}

// compatible reports whether two states at the same PC may merge: their
// non-encodable auxiliary state (protected zones, make_symbolic
// generations) must agree, or their futures would diverge in ways the
// guards cannot express.
func compatible(a, t *state) bool {
	if len(a.zones) != len(t.zones) || len(a.symGen) != len(t.symGen) {
		return false
	}
	for i := range a.zones {
		if a.zones[i] != t.zones[i] {
			return false
		}
	}
	for k, v := range a.symGen {
		if t.symGen[k] != v {
			return false
		}
	}
	return true
}

// Executor unrolls one snapshot. Not safe for concurrent use.
type Executor struct {
	b    *smt.Builder
	ops  concolic.Ops
	snap *iss.Core
	// dec is a private clone used as the decode oracle: DecodedAt goes
	// through its predecoded block cache, so the BMC stepper shares the
	// concolic engine's translations. It is never stepped.
	dec *iss.Core
	cfg Config

	violations []violation
	accounted  []*smt.Expr
	unsup      map[string]int
	rep        Report

	obsSteps, obsSplits, obsMerges, obsViolations *obs.Counter
	obsDrops, obsQueries                          *obs.Counter
	obsStates                                     *obs.Gauge
	obsUnrollUS, obsSolveUS                       *obs.Histogram
}

// New prepares an unrolling of snap. The snapshot is cloned, never
// mutated; the SMT builder is shared so variable identities line up
// with the concolic engine's.
func New(snap *iss.Core, cfg Config) (*Executor, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("bmc: depth bound K must be positive (got %d)", cfg.K)
	}
	if n := snap.PendingHostWork(); n != 0 {
		return nil, fmt.Errorf("bmc: snapshot has %d pending notifications/peripheral contexts; BMC models the synchronous subset only", n)
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 4096
	}
	x := &Executor{
		b:     snap.B,
		ops:   concolic.Ops{B: snap.B},
		snap:  snap,
		dec:   snap.Clone(),
		cfg:   cfg,
		unsup: map[string]int{},
	}
	// The unrolling models exactly one detector: the heap guard (zones
	// become reachability queries). Any other detector attached to the
	// snapshot — UAF quarantine, stack canary, IRQ reentrancy — watches
	// runtime events this encoding does not carry, so its bugs would be
	// silently missed. Record each as unsupported up front: the run
	// still executes, but Complete/Exhausted stay honestly false.
	for _, kind := range snap.DetectorKinds() {
		if kind != iss.KindHeapGuard {
			x.unsup["detector:"+kind]++
		}
	}
	if o := cfg.Obs; o != nil {
		m := o.Registry()
		x.obsSteps = m.Counter("bmc.steps")
		x.obsSplits = m.Counter("bmc.splits")
		x.obsMerges = m.Counter("bmc.merges")
		x.obsViolations = m.Counter("bmc.violations")
		x.obsDrops = m.Counter("bmc.unsupported_drops")
		x.obsQueries = m.Counter("bmc.queries")
		x.obsStates = m.Gauge("bmc.states")
		x.obsUnrollUS = m.Histogram("bmc.unroll_us", obs.LatencyBoundsUS)
		x.obsSolveUS = m.Histogram("bmc.solve_us", obs.LatencyBoundsUS)
	}
	return x, nil
}

// base returns the background byte expression at addr: the snapshot's
// symbolic shadow when one exists, else its concrete byte.
func (x *Executor) base(addr uint32) *smt.Expr {
	cb, sym := x.dec.Mem.LoadByteRaw(addr)
	if sym != nil {
		return sym
	}
	return x.b.Const(8, uint64(cb))
}

// initialState lifts the snapshot into the symbolic-state encoding.
func (x *Executor) initialState() *state {
	s := &state{
		guard:  x.b.AndAll(x.snap.EPC),
		pc:     x.snap.PC,
		mem:    smt.NewMem(x.base),
		zones:  x.snap.ZonesSnapshot(),
		symGen: x.snap.SymCounterSnapshot(),
	}
	s.regs[0] = x.b.Const(32, 0)
	for i := 1; i < 32; i++ {
		v := x.snap.Regs[i]
		if v.Sym != nil {
			s.regs[i] = v.Sym
		} else {
			s.regs[i] = x.b.Const(32, uint64(v.C))
		}
	}
	return s
}

// Run unrolls up to K instructions per path and solves one reachability
// query per recorded bug site.
//
// Scheduling: the state pool is keyed by PC and the lowest PC steps
// first. For the forward-branching code compilers emit, every interior
// state of a branch diamond (lower PC) runs before the join point
// (higher PC) is stepped, so sides arrive at the join while it still
// waits in the pool and merge there; loop-exit states likewise wait
// above the (lower-PC) loop body and absorb one merge per iteration.
// Back edges make this a heuristic, not a guarantee — unmerged states
// are correct, just slower.
func (x *Executor) Run(ctx context.Context) *Report {
	start := time.Now()
	x.rep = Report{K: x.cfg.K, Unsupported: x.unsup, Replayed: !x.cfg.NoReplay}
	pool := map[uint32][]*state{}
	x.insert(pool, x.initialState())
	live := 1
	stopped := ""

	for live > 0 {
		if err := ctx.Err(); err != nil {
			stopped = "canceled"
			break
		}
		if live > x.cfg.MaxStates {
			stopped = "state-budget"
			break
		}
		s := popMin(pool)
		live--
		if s.depth >= x.cfg.K {
			x.rep.Truncated++
			x.accounted = append(x.accounted, s.guard)
			continue
		}
		t0 := time.Now()
		succs := x.step(s)
		x.obsUnrollUS.ObserveDuration(time.Since(t0))
		x.rep.Steps++
		x.obsSteps.Inc()
		for _, n := range succs {
			if n.guard.IsFalse() {
				continue
			}
			live += x.insert(pool, n)
		}
		if live > x.rep.PeakStates {
			x.rep.PeakStates = live
		}
		x.obsStates.Set(int64(live))
	}

	switch {
	case stopped != "":
		x.rep.Stopped = stopped
		// Whatever is still pooled was not fully explored: account the
		// guards as dropped so Complete/Exhausted go false.
		for _, ss := range pool {
			for _, s := range ss {
				x.drop(s, "stopped:"+stopped)
			}
		}
	case x.rep.Truncated > 0:
		x.rep.Stopped = "depth"
	default:
		x.rep.Stopped = "exhausted"
	}
	x.rep.Complete = len(x.unsup) == 0
	x.rep.Exhausted = x.rep.Complete && x.rep.Truncated == 0 && x.rep.Stopped == "exhausted"

	x.solveSites(ctx)
	x.rep.Accounted = x.accounted
	x.rep.WallTime = time.Since(start)
	return &x.rep
}

// insert merges s into the pool (returns 0) or adds it (returns 1).
func (x *Executor) insert(pool map[uint32][]*state, s *state) int {
	for _, t := range pool[s.pc] {
		if !compatible(t, s) {
			continue
		}
		g := t.guard
		t.guard = x.b.Or(t.guard, s.guard)
		for i := 1; i < 32; i++ {
			t.regs[i] = x.b.Ite(g, t.regs[i], s.regs[i])
		}
		t.mem.Merge(x.b, g, s.mem)
		if t.depth != s.depth {
			x.rep.SkewMerges++
			if s.depth > t.depth {
				t.depth = s.depth
			}
		}
		x.rep.Merges++
		x.obsMerges.Inc()
		return 0
	}
	pool[s.pc] = append(pool[s.pc], s)
	return 1
}

// popMin removes and returns a state with the minimal PC.
func popMin(pool map[uint32][]*state) *state {
	min := uint32(0)
	first := true
	for pc := range pool {
		if first || pc < min {
			min, first = pc, false
		}
	}
	ss := pool[min]
	s := ss[0]
	if len(ss) == 1 {
		delete(pool, min)
	} else {
		pool[min] = ss[1:]
	}
	return s
}

// violate records a guarded bug-detector hit. The caller decides
// whether the state survives (assertion split) or dies (deterministic
// access error).
func (x *Executor) violate(s *state, kind iss.ErrKind, pc, addr uint32, msg string, guard *smt.Expr) {
	if guard.IsFalse() {
		return
	}
	x.violations = append(x.violations, violation{
		kind: kind, pc: pc, addr: addr, msg: msg, guard: guard, depth: s.depth,
	})
	x.accounted = append(x.accounted, guard)
	x.rep.Violations++
	x.obsViolations.Inc()
}

// drop abandons a state the encoder cannot model. Its guard stays
// accounted (DiffCheck's partition) but the run is no longer complete.
func (x *Executor) drop(s *state, why string) {
	x.unsup[why]++
	x.accounted = append(x.accounted, s.guard)
	x.obsDrops.Inc()
}

// exit retires a state that reached CTE_exit.
func (x *Executor) exit(s *state) {
	x.rep.Exits++
	x.accounted = append(x.accounted, s.guard)
}

// solveSites groups the recorded violations by (kind, pc) bug site and
// issues one reachability query per site: SAT means some input reaches
// the detector within the depth bound, and the model is that input.
func (x *Executor) solveSites(ctx context.Context) {
	type site struct {
		kind iss.ErrKind
		pc   uint32
	}
	groups := map[site][]*violation{}
	order := []site{}
	for i := range x.violations {
		v := &x.violations[i]
		k := site{v.kind, v.pc}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], v)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].pc != order[j].pc {
			return order[i].pc < order[j].pc
		}
		return order[i].kind < order[j].kind
	})
	x.rep.Sites = len(order)

	solver := smt.NewSolver(x.b)
	solver.MaxConflictsPerQuery = x.cfg.MaxConflicts
	if x.cfg.Obs != nil {
		solver.SetObs(x.cfg.Obs)
	}
	for _, k := range order {
		if ctx.Err() != nil {
			break
		}
		vs := groups[k]
		guards := make([]*smt.Expr, len(vs))
		for i, v := range vs {
			guards[i] = v.guard
		}
		reach := x.b.OrAll(guards)
		t0 := time.Now()
		var sat, unknown bool
		var model smt.Assignment
		if x.cfg.Cache != nil {
			sat, model, unknown = x.cfg.Cache.Check(solver, []*smt.Expr{reach}, nil)
		} else {
			sat, model, unknown = solver.Check(reach)
		}
		x.obsSolveUS.ObserveDuration(time.Since(t0))
		x.rep.Queries++
		x.obsQueries.Inc()
		if unknown {
			x.rep.Unknown++
			continue
		}
		if !sat {
			continue
		}
		f := Finding{Kind: k.kind, PC: k.pc, Addr: vs[0].addr, Msg: vs[0].msg, Depth: vs[0].depth, Input: model}
		for _, v := range vs[1:] {
			if v.depth < f.Depth {
				f.Depth, f.Addr, f.Msg = v.depth, v.addr, v.msg
			}
		}
		if !x.cfg.NoReplay {
			f.Confirmed = x.confirm(f)
		}
		x.rep.Findings = append(x.rep.Findings, f)
	}
	x.rep.SolverTime = solver.Stats.SolverTime
}

// confirm replays the finding's model through the concolic ISS: the
// run must fail with exactly this (kind, pc) within the depth bound.
// This is the false-positive filter — a model that does not reproduce
// concretely means the encoding and the ISS disagree.
func (x *Executor) confirm(f Finding) bool {
	core := x.snap.Clone()
	core.Input = make(smt.Assignment, len(f.Input))
	for id, v := range f.Input {
		core.Input[id] = v
	}
	core.Bound = 1 << 30 // suppress trace-condition emission
	core.Run(uint64(x.cfg.K))
	return core.Err != nil && core.Err.Kind == f.Kind && core.Err.PC == f.PC
}
