package bmc

import (
	"fmt"

	"rvcte/internal/concolic"
	"rvcte/internal/iss"
	"rvcte/internal/rv32"
	"rvcte/internal/smt"
)

// This file is the symbolic transition relation: one ISS step over a
// guarded symbolic state, mirroring internal/iss/exec.go semantics
// exactly (the confirmation replay in bmc.go holds it to that). The
// arithmetic reuses concolic.Ops with expression-wrapped values, so the
// RISC-V corner cases (shift masking, div-by-zero, INT_MIN/-1) are the
// same code the concolic engine runs.

// wrap lifts an expression into a concolic value for Ops; unwrap takes
// the result back, rebuilding the constant Ops.bin collapses to.
func wrap(e *smt.Expr) concolic.Value { return concolic.Value{C: uint32(e.Val), Sym: e} }

func (x *Executor) unwrap(v concolic.Value) *smt.Expr {
	if v.Sym != nil {
		return v.Sym
	}
	return x.b.Const(32, uint64(v.C))
}

func (s *state) reg(r uint8) *smt.Expr { return s.regs[r] }

func (s *state) setReg(r uint8, e *smt.Expr) {
	if r != 0 {
		s.regs[r] = e
	}
}

func one(s *state) []*state { return []*state{s} }

// prune retires a state whose guard was assumed away (CTE_assume false
// side): accounted, but neither a violation nor an exit.
func (x *Executor) prune(guard *smt.Expr) {
	if !guard.IsFalse() {
		x.accounted = append(x.accounted, guard)
	}
}

// step retires one instruction of s, recording violations, exits and
// drops on x, and returns the surviving successors (s is mutated and
// usually returned; branch splits clone it).
func (x *Executor) step(s *state) []*state {
	s.depth++
	in, ok := x.fetch(s)
	if !ok {
		return nil
	}
	o := x.ops
	cur := s.pc
	next := s.pc + uint32(in.Size)
	immE := x.b.Const(32, uint64(uint32(in.Imm)))
	bin := func(f func(a, b concolic.Value) concolic.Value, a, b *smt.Expr) *smt.Expr {
		return x.unwrap(f(wrap(a), wrap(b)))
	}

	switch in.Op {
	case rv32.OpLUI:
		s.setReg(in.Rd, immE)
	case rv32.OpAUIPC:
		s.setReg(in.Rd, x.b.Const(32, uint64(cur+uint32(in.Imm))))
	case rv32.OpJAL:
		s.setReg(in.Rd, x.b.Const(32, uint64(next)))
		s.pc = cur + uint32(in.Imm)
		return one(s)
	case rv32.OpJALR:
		target := bin(o.Add, s.reg(in.Rs1), immE)
		if !target.IsConst() {
			// The concolic engine concretizes symbolic jump targets to
			// its one concrete value; a state set has no such value, and
			// enumerating targets is future work.
			x.drop(s, "symbolic jump target")
			return nil
		}
		s.setReg(in.Rd, x.b.Const(32, uint64(next)))
		s.pc = uint32(target.Val) &^ 1
		return one(s)

	case rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU:
		a, b := wrap(s.reg(in.Rs1)), wrap(s.reg(in.Rs2))
		var cond *smt.Expr
		switch in.Op {
		case rv32.OpBEQ:
			_, cond = o.CmpEq(a, b)
		case rv32.OpBNE:
			_, cond = o.CmpNe(a, b)
		case rv32.OpBLT:
			_, cond = o.CmpLt(a, b)
		case rv32.OpBGE:
			_, cond = o.CmpGe(a, b)
		case rv32.OpBLTU:
			_, cond = o.CmpLtu(a, b)
		default:
			_, cond = o.CmpGeu(a, b)
		}
		taken := cur + uint32(in.Imm)
		if cond.IsTrue() {
			s.pc = taken
			return one(s)
		}
		if cond.IsFalse() {
			s.pc = next
			return one(s)
		}
		gTaken := x.b.And(s.guard, cond)
		gNot := x.b.And(s.guard, x.b.Not(cond))
		x.rep.Splits++
		x.obsSplits.Inc()
		switch {
		case gTaken.IsFalse():
			s.guard, s.pc = gNot, next
			return one(s)
		case gNot.IsFalse():
			s.guard, s.pc = gTaken, taken
			return one(s)
		}
		t := s.clone()
		t.guard, t.pc = gTaken, taken
		s.guard, s.pc = gNot, next
		return []*state{t, s}

	case rv32.OpLB, rv32.OpLH, rv32.OpLW, rv32.OpLBU, rv32.OpLHU:
		size := map[rv32.Op]int{rv32.OpLB: 1, rv32.OpLBU: 1, rv32.OpLH: 2, rv32.OpLHU: 2, rv32.OpLW: 4}[in.Op]
		signed := in.Op == rv32.OpLB || in.Op == rv32.OpLH
		addrE := bin(o.Add, s.reg(in.Rs1), immE)
		if !addrE.IsConst() {
			x.drop(s, "symbolic load address")
			return nil
		}
		addr := uint32(addrE.Val)
		if !x.checkAccess(s, addr, size, false) {
			return nil
		}
		if !x.dec.InRAM(addr, size) {
			if x.peripheralAt(addr) {
				x.drop(s, "peripheral load")
				return nil
			}
			x.violate(s, iss.ErrIllegalLoad, cur, addr, "", s.guard)
			return nil
		}
		s.setReg(in.Rd, x.load(s, addr, size, signed))

	case rv32.OpSB, rv32.OpSH, rv32.OpSW:
		size := map[rv32.Op]int{rv32.OpSB: 1, rv32.OpSH: 2, rv32.OpSW: 4}[in.Op]
		addrE := bin(o.Add, s.reg(in.Rs1), immE)
		if !addrE.IsConst() {
			x.drop(s, "symbolic store address")
			return nil
		}
		addr := uint32(addrE.Val)
		if !x.checkAccess(s, addr, size, true) {
			return nil
		}
		if !x.dec.InRAM(addr, size) {
			if x.peripheralAt(addr) {
				x.drop(s, "peripheral store")
				return nil
			}
			x.violate(s, iss.ErrIllegalStore, cur, addr, "", s.guard)
			return nil
		}
		x.store(s, addr, size, s.reg(in.Rs2))

	case rv32.OpADDI:
		s.setReg(in.Rd, bin(o.Add, s.reg(in.Rs1), immE))
	case rv32.OpSLTI:
		s.setReg(in.Rd, bin(o.Slt, s.reg(in.Rs1), immE))
	case rv32.OpSLTIU:
		s.setReg(in.Rd, bin(o.Sltu, s.reg(in.Rs1), immE))
	case rv32.OpXORI:
		s.setReg(in.Rd, bin(o.Xor, s.reg(in.Rs1), immE))
	case rv32.OpORI:
		s.setReg(in.Rd, bin(o.Or, s.reg(in.Rs1), immE))
	case rv32.OpANDI:
		s.setReg(in.Rd, bin(o.And, s.reg(in.Rs1), immE))
	case rv32.OpSLLI:
		s.setReg(in.Rd, bin(o.Sll, s.reg(in.Rs1), immE))
	case rv32.OpSRLI:
		s.setReg(in.Rd, bin(o.Srl, s.reg(in.Rs1), immE))
	case rv32.OpSRAI:
		s.setReg(in.Rd, bin(o.Sra, s.reg(in.Rs1), immE))

	case rv32.OpADD:
		s.setReg(in.Rd, bin(o.Add, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpSUB:
		s.setReg(in.Rd, bin(o.Sub, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpSLL:
		s.setReg(in.Rd, bin(o.Sll, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpSLT:
		s.setReg(in.Rd, bin(o.Slt, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpSLTU:
		s.setReg(in.Rd, bin(o.Sltu, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpXOR:
		s.setReg(in.Rd, bin(o.Xor, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpSRL:
		s.setReg(in.Rd, bin(o.Srl, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpSRA:
		s.setReg(in.Rd, bin(o.Sra, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpOR:
		s.setReg(in.Rd, bin(o.Or, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpAND:
		s.setReg(in.Rd, bin(o.And, s.reg(in.Rs1), s.reg(in.Rs2)))

	case rv32.OpMUL:
		s.setReg(in.Rd, bin(o.Mul, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpMULH:
		s.setReg(in.Rd, bin(o.MulH, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpMULHSU:
		s.setReg(in.Rd, bin(o.MulHSU, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpMULHU:
		s.setReg(in.Rd, bin(o.MulHU, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpDIV:
		s.setReg(in.Rd, bin(o.Div, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpDIVU:
		s.setReg(in.Rd, bin(o.DivU, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpREM:
		s.setReg(in.Rd, bin(o.Rem, s.reg(in.Rs1), s.reg(in.Rs2)))
	case rv32.OpREMU:
		s.setReg(in.Rd, bin(o.RemU, s.reg(in.Rs1), s.reg(in.Rs2)))

	case rv32.OpFENCE:
		// No-op on a single-hart VP.
	case rv32.OpECALL:
		return x.ecall(s, cur, next)
	case rv32.OpEBREAK:
		x.violate(s, iss.ErrAssertFail, cur, cur, "ebreak", s.guard)
		return nil
	case rv32.OpMRET, rv32.OpWFI,
		rv32.OpCSRRW, rv32.OpCSRRS, rv32.OpCSRRC,
		rv32.OpCSRRWI, rv32.OpCSRRSI, rv32.OpCSRRCI:
		// Interrupts, CSRs and cycle state are host-driven machinery the
		// guarded-update encoding does not model.
		x.drop(s, "csr/interrupt instruction")
		return nil
	default:
		x.violate(s, iss.ErrIllegalInstr, cur, cur, fmt.Sprintf("op %v", in.Op), s.guard)
		return nil
	}

	s.pc = next
	return one(s)
}

// fetch decodes the instruction at s.pc, reading code through the
// state's own memory: bad PCs trap like the ISS, symbolic code drops
// the state, and unmodified code decodes through the shared predecoded
// block cache.
func (x *Executor) fetch(s *state) (rv32.Inst, bool) {
	pc := s.pc
	if pc&1 != 0 {
		x.violate(s, iss.ErrIllegalJump, pc, pc, "misaligned pc", s.guard)
		return rv32.Inst{}, false
	}
	if !x.dec.InRAM(pc, 2) {
		x.violate(s, iss.ErrIllegalJump, pc, pc, "pc outside memory", s.guard)
		return rv32.Inst{}, false
	}
	word, ok := x.codeHalf(s, pc)
	if !ok {
		x.drop(s, "symbolic code")
		return rv32.Inst{}, false
	}
	size := 2
	if word&3 == 3 {
		if !x.dec.InRAM(pc, 4) {
			x.violate(s, iss.ErrIllegalJump, pc, pc, "pc outside memory", s.guard)
			return rv32.Inst{}, false
		}
		hi, ok := x.codeHalf(s, pc+2)
		if !ok {
			x.drop(s, "symbolic code")
			return rv32.Inst{}, false
		}
		word |= hi << 16
		size = 4
	}
	modified := false
	for i := uint32(0); i < uint32(size); i++ {
		if s.mem.Load(pc+i) != x.base(pc+i) {
			modified = true
			break
		}
	}
	if !modified {
		if in, ok := x.dec.DecodedAt(pc); ok {
			return in, true
		}
	}
	in := rv32.Decode(word)
	if in.Op == rv32.OpIllegal {
		x.violate(s, iss.ErrIllegalInstr, pc, pc, fmt.Sprintf("encoding %#x", word), s.guard)
		return rv32.Inst{}, false
	}
	return in, true
}

// codeHalf reads a 16-bit code unit from the state's memory; false when
// any byte is symbolic.
func (x *Executor) codeHalf(s *state, addr uint32) (uint32, bool) {
	b0 := s.mem.Load(addr)
	b1 := s.mem.Load(addr + 1)
	if !b0.IsConst() || !b1.IsConst() {
		return 0, false
	}
	return uint32(b0.Val) | uint32(b1.Val)<<8, true
}

// checkAccess mirrors iss.Core.checkAccess: null dereference, alignment
// and protected-zone checks against the concrete address. All three are
// deterministic for the whole state, so a hit kills it (false).
func (x *Executor) checkAccess(s *state, addr uint32, size int, isWrite bool) bool {
	if addr < 0x100 {
		x.violate(s, iss.ErrNullDeref, s.pc, addr, "", s.guard)
		return false
	}
	if addr%uint32(size) != 0 {
		x.violate(s, iss.ErrMisaligned, s.pc, addr, fmt.Sprintf("%d-byte access", size), s.guard)
		return false
	}
	for i := range s.zones {
		z := &s.zones[i]
		if addr < z.Start+z.Size && addr+uint32(size) > z.Start {
			kind := iss.ErrProtectedRead
			if isWrite {
				kind = iss.ErrProtectedWrite
			}
			x.violate(s, kind, s.pc, addr, fmt.Sprintf("protected zone of block %#x", z.Block), s.guard)
			return false
		}
	}
	return true
}

// peripheralAt reports whether addr falls in a registered MMIO range.
func (x *Executor) peripheralAt(addr uint32) bool {
	for i := range x.dec.Peripherals {
		p := &x.dec.Peripherals[i]
		if addr >= p.Base && addr < p.Base+p.Size {
			return true
		}
	}
	return false
}

// load reads a size-byte little-endian value and sign/zero-extends it.
func (x *Executor) load(s *state, addr uint32, size int, signed bool) *smt.Expr {
	v := s.mem.Load(addr)
	for i := 1; i < size; i++ {
		v = x.b.Concat(s.mem.Load(addr+uint32(i)), v)
	}
	if size == 4 {
		return v
	}
	if signed {
		return x.b.SExt(v, 32)
	}
	return x.b.ZExt(v, 32)
}

// store writes the low size bytes of v little-endian.
func (x *Executor) store(s *state, addr uint32, size int, v *smt.Expr) {
	for i := 0; i < size; i++ {
		lo := uint8(i * 8)
		s.mem.Store(addr+uint32(i), x.b.Extract(v, lo+7, lo))
	}
}

// ecall dispatches the CTE interface for the supported synchronous
// subset; the a7 selector must be concrete (it always is — the library
// wrappers load it with li).
func (x *Executor) ecall(s *state, cur, next uint32) []*state {
	code := s.reg(17)
	if !code.IsConst() {
		x.drop(s, "symbolic ecall selector")
		return nil
	}
	a0, a1, a2 := s.reg(10), s.reg(11), s.reg(12)

	switch uint32(code.Val) {
	case iss.SysExit:
		x.exit(s)
		return nil

	case iss.SysMakeSymbolic:
		if !a0.IsConst() || !a1.IsConst() || !a2.IsConst() {
			x.drop(s, "symbolic make_symbolic args")
			return nil
		}
		ptr, size, namePtr := uint32(a0.Val), uint32(a1.Val), uint32(a2.Val)
		name, ok, concrete := x.readCString(s, namePtr)
		if !concrete {
			x.drop(s, "symbolic make_symbolic name")
			return nil
		}
		if !ok {
			x.violate(s, iss.ErrIllegalLoad, cur, namePtr,
				fmt.Sprintf("make_symbolic name not NUL-terminated within %d bytes", concolic.CStringMax), s.guard)
			return nil
		}
		if name == "" {
			name = fmt.Sprintf("anon@%#x", ptr)
		}
		gen := s.symGen[name]
		s.symGen[name] = gen + 1
		full := fmt.Sprintf("%s#%d", name, gen)
		if gen == 0 {
			full = name
		}
		for i := uint32(0); i < size; i++ {
			s.mem.Store(ptr+i, x.b.Var(8, fmt.Sprintf("%s[%d]", full, i)))
		}

	case iss.SysAssume:
		cond := x.b.Ne(a0, x.b.Const(32, 0))
		x.prune(x.b.And(s.guard, x.b.Not(cond)))
		s.guard = x.b.And(s.guard, cond)
		if s.guard.IsFalse() {
			return nil
		}

	case iss.SysAssert:
		cond := x.b.Ne(a0, x.b.Const(32, 0))
		x.violate(s, iss.ErrAssertFail, cur, 0, "assertion violated",
			x.b.And(s.guard, x.b.Not(cond)))
		s.guard = x.b.And(s.guard, cond)
		if s.guard.IsFalse() {
			return nil
		}

	case iss.SysRegisterProtect:
		if !a0.IsConst() || !a1.IsConst() || !a2.IsConst() {
			x.drop(s, "symbolic protect args")
			return nil
		}
		addr, size, zone := uint32(a0.Val), uint32(a1.Val), uint32(a2.Val)
		s.zones = append(s.zones,
			iss.Zone{Start: addr - zone, Size: zone, Block: addr},
			iss.Zone{Start: addr + size, Size: zone, Block: addr})

	case iss.SysFreeProtect:
		if !a0.IsConst() {
			x.drop(s, "symbolic free addr")
			return nil
		}
		addr := uint32(a0.Val)
		if addr == 0 {
			x.violate(s, iss.ErrBadFree, cur, addr, "free(NULL)", s.guard)
			return nil
		}
		removed := 0
		kept := s.zones[:0]
		for _, z := range s.zones {
			if z.Block == addr {
				removed++
				continue
			}
			kept = append(kept, z)
		}
		s.zones = kept
		switch removed {
		case 2:
			// ok: both guard zones removed
		case 0:
			x.violate(s, iss.ErrDoubleFree, cur, addr, "no protected zones registered for block", s.guard)
			return nil
		default:
			x.violate(s, iss.ErrBadFree, cur, addr, "inconsistent protected zones", s.guard)
			return nil
		}

	case iss.SysPutChar:
		// Output is not a bug detector; nothing to track.

	case iss.SysNotify, iss.SysReturn, iss.SysGetCycles, iss.SysTriggerIRQ,
		iss.SysCancelNotify, iss.SysIsSymbolic:
		// Notifications, peripheral context switches and cycle/shadow
		// introspection are host-side machinery outside the encoding.
		x.drop(s, fmt.Sprintf("ecall %d", code.Val))
		return nil

	default:
		x.violate(s, iss.ErrIllegalInstr, cur, cur, fmt.Sprintf("unknown ecall %d", code.Val), s.guard)
		return nil
	}

	s.pc = next
	return one(s)
}

// readCString reads a NUL-terminated string from the state's memory.
// concrete is false when a scanned byte is symbolic; ok is false when
// no terminator exists within concolic.CStringMax bytes.
func (x *Executor) readCString(s *state, addr uint32) (str string, ok, concrete bool) {
	buf := make([]byte, 0, 16)
	for i := uint32(0); i < concolic.CStringMax; i++ {
		if !x.dec.InRAM(addr+i, 1) {
			return "", false, true
		}
		e := s.mem.Load(addr + i)
		if !e.IsConst() {
			return "", false, false
		}
		if e.Val == 0 {
			return string(buf), true, true
		}
		buf = append(buf, byte(e.Val))
	}
	return "", false, true
}
