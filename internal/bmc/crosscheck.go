package bmc

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rvcte/internal/iss"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// BugKey identifies a bug site for cross-engine comparison: the error
// class and the faulting PC (inputs and messages differ per engine).
type BugKey struct {
	Kind iss.ErrKind
	PC   uint32
}

func (k BugKey) String() string { return fmt.Sprintf("%v@%#x", k.Kind, k.PC) }

// Keys extracts the deduplicated, sorted bug-site set of a BMC report.
func (r *Report) Keys() []BugKey {
	seen := map[BugKey]bool{}
	out := []BugKey{}
	for _, f := range r.Findings {
		k := BugKey{f.Kind, f.PC}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []BugKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].PC != ks[j].PC {
			return ks[i].PC < ks[j].PC
		}
		return ks[i].Kind < ks[j].Kind
	})
}

func dedupKeys(ks []BugKey) []BugKey {
	seen := map[BugKey]bool{}
	out := []BugKey{}
	for _, k := range ks {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sortKeys(out)
	return out
}

// CrossReport is the exhaustiveness oracle's verdict.
type CrossReport struct {
	BMC *Report
	// BMCBugs and ConcolicBugs are the two engines' deduplicated bug
	// sets at the same depth bound.
	BMCBugs      []BugKey
	ConcolicBugs []BugKey
	// ExtraInBMC are sites BMC reaches that concolic never reported: a
	// concolic exhaustiveness hole (confirmed findings) or a BMC false
	// positive (unconfirmed ones). Always an oracle failure.
	ExtraInBMC []BugKey
	// MissedByBMC are concolic findings BMC did not reach. An oracle
	// failure when the BMC run was Complete; expected (and recorded
	// here) when states were dropped as unsupported.
	MissedByBMC []BugKey
	// Agree: the sets match and the comparison was meaningful.
	Agree bool
}

// CrossCheck runs the bounded unrolling over snap and compares its bug
// set against the concolic engine's findings at the same depth bound
// (the caller runs concolic with MaxInstrPerRun = cfg.K and
// StopOnError off, and passes the finding keys in). A non-nil error is
// the oracle failing: the engines disagree in a way the BMC run's
// completeness cannot excuse.
func CrossCheck(ctx context.Context, snap *iss.Core, cfg Config, concolicBugs []BugKey) (*CrossReport, error) {
	x, err := New(snap, cfg)
	if err != nil {
		return nil, err
	}
	rep := x.Run(ctx)
	return Compare(rep, concolicBugs)
}

// Compare evaluates the oracle on an existing BMC report: the concolic
// finding set and the BMC-reachable bug set must agree.
func Compare(rep *Report, concolicBugs []BugKey) (*CrossReport, error) {
	cr := &CrossReport{
		BMC:          rep,
		BMCBugs:      rep.Keys(),
		ConcolicBugs: dedupKeys(concolicBugs),
	}
	conc := map[BugKey]bool{}
	for _, k := range cr.ConcolicBugs {
		conc[k] = true
	}
	inBMC := map[BugKey]bool{}
	for _, k := range cr.BMCBugs {
		inBMC[k] = true
		if !conc[k] {
			cr.ExtraInBMC = append(cr.ExtraInBMC, k)
		}
	}
	for _, k := range cr.ConcolicBugs {
		if !inBMC[k] {
			cr.MissedByBMC = append(cr.MissedByBMC, k)
		}
	}

	var faults []string
	if len(cr.ExtraInBMC) > 0 {
		faults = append(faults, fmt.Sprintf("BMC reaches %v which concolic never reported", cr.ExtraInBMC))
	}
	if len(cr.MissedByBMC) > 0 && rep.Complete {
		faults = append(faults, fmt.Sprintf("complete BMC run misses concolic findings %v", cr.MissedByBMC))
	}
	if rep.Unknown > 0 {
		faults = append(faults, fmt.Sprintf("%d bug sites left unknown by the solver budget", rep.Unknown))
	}
	for _, f := range rep.Findings {
		if rep.Replayed && !f.Confirmed {
			faults = append(faults, fmt.Sprintf("finding %v@%#x did not reproduce on concrete replay", f.Kind, f.PC))
		}
	}
	if len(faults) > 0 {
		return cr, fmt.Errorf("bmc cross-check failed: %s", strings.Join(faults, "; "))
	}
	cr.Agree = len(cr.MissedByBMC) == 0
	return cr, nil
}

// PathSample is one concolic path offered to the differential check:
// the path condition (EPC) it executed under, the concrete input that
// drove it, and the instructions it retired.
type PathSample struct {
	Conds []*smt.Expr
	Input smt.Assignment
	Depth uint64
}

// DiffReport is the outcome of the differential path-condition check.
type DiffReport struct {
	Samples   int
	SatAgreed int // path conditions BMC's solver agrees are satisfiable
	Covered   int // inputs falling under exactly one accounted guard
}

// DiffCheck is the differential path-condition check: for each sampled
// concolic path, (1) its path condition must be satisfiable — the
// concolic engine executed it, so a solver disagreeing exposes a
// soundness bug in one of them — and (2) with a Complete report, the
// path's concrete input must select exactly one of the unrolling's
// accounted guards: the state set covers the path and the guards still
// partition the input space. Queries go through cache when non-nil, so
// both engines share entries.
func (r *Report) DiffCheck(b *smt.Builder, cache *qcache.Cache, maxConflicts int, samples []PathSample) (*DiffReport, error) {
	solver := smt.NewSolver(b)
	solver.MaxConflictsPerQuery = maxConflicts
	dr := &DiffReport{Samples: len(samples)}
	var faults []string
	for i, ps := range samples {
		var sat, unknown bool
		if cache != nil {
			sat, _, unknown = cache.Check(solver, ps.Conds, ps.Input)
		} else {
			sat, _, unknown = solver.Check(ps.Conds...)
		}
		switch {
		case unknown:
			faults = append(faults, fmt.Sprintf("sample %d: path condition unknown under conflict budget", i))
		case !sat:
			faults = append(faults, fmt.Sprintf("sample %d: executed path condition is UNSAT", i))
		default:
			dr.SatAgreed++
		}

		if !r.Complete {
			continue
		}
		ev := smt.NewEvaluator(ps.Input)
		hits := 0
		for _, g := range r.Accounted {
			if ev.Eval(g) == 1 {
				hits++
			}
		}
		if hits == 1 {
			dr.Covered++
		} else {
			faults = append(faults, fmt.Sprintf("sample %d: input selects %d accounted guards (want exactly 1)", i, hits))
		}
	}
	if len(faults) > 0 {
		return dr, fmt.Errorf("bmc differential check failed: %s", strings.Join(faults, "; "))
	}
	return dr, nil
}
