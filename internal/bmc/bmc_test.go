// Package bmc_test exercises the bounded unrolling end to end on real
// guest builds: the positive storm-s run (exact bug set, confirmed
// findings, exhausted state space) and the seeded-disagreement negative
// cases that prove the cross-check oracle actually fails when the
// engines disagree.
package bmc_test

import (
	"context"
	"strings"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/bmc"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// buildSnap compiles a built-in benchmark program into a frozen VP
// snapshot on a fresh builder.
func buildSnap(t testing.TB, name string) *iss.Core {
	t.Helper()
	p, ok := guest.BenchProgram(name)
	if !ok {
		t.Fatalf("unknown bench program %q", name)
	}
	b := smt.NewBuilder()
	core, _, err := guest.NewCore(b, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	core.Freeze()
	return core
}

func runStorm(t *testing.T, cfg bmc.Config) *bmc.Report {
	t.Helper()
	snap := buildSnap(t, "storm-s")
	x, err := bmc.New(snap, cfg)
	if err != nil {
		t.Fatalf("bmc.New: %v", err)
	}
	return x.Run(context.Background())
}

// TestStormS: the positive case. storm-s has exactly one reachable bug
// (the score==5 gated assert); the unrolling must find it, confirm it on
// concrete replay, drop no states, and drain the pool before the bound.
func TestStormS(t *testing.T) {
	rep := runStorm(t, bmc.Config{K: 1 << 20})
	if !rep.Complete {
		t.Fatalf("unsupported drops on storm-s: %v", rep.Unsupported)
	}
	if !rep.Exhausted {
		t.Fatalf("not exhausted: stopped=%q truncated=%d", rep.Stopped, rep.Truncated)
	}
	keys := rep.Keys()
	if len(keys) != 1 || keys[0].Kind != iss.ErrAssertFail {
		t.Fatalf("bug set = %v, want exactly one assert site", keys)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %v, want 1", rep.Findings)
	}
	f := rep.Findings[0]
	if !f.Confirmed {
		t.Errorf("finding %v@%#x not confirmed by concrete replay", f.Kind, f.PC)
	}
	if f.Input == nil {
		t.Error("finding carries no input model")
	}
	if rep.Exits == 0 {
		t.Error("no normal exits accounted — every path ends in CTE_exit")
	}
	if rep.Merges == 0 {
		t.Error("no state merges on a 9-diamond program — path merging is not happening")
	}
	if rep.Unknown != 0 {
		t.Errorf("unknown queries = %d, want 0", rep.Unknown)
	}
}

// TestStormSQueryCache: the same run through a query cache must agree
// and actually route its reachability queries through the cache.
func TestStormSQueryCache(t *testing.T) {
	snap := buildSnap(t, "storm-s")
	qc := qcache.New(snap.B, qcache.Options{})
	x, err := bmc.New(snap, bmc.Config{K: 1 << 20, Cache: qc})
	if err != nil {
		t.Fatalf("bmc.New: %v", err)
	}
	rep := x.Run(context.Background())
	if len(rep.Keys()) != 1 {
		t.Fatalf("bug set = %v, want 1 site", rep.Keys())
	}
	if st := qc.Stats(); st.Queries == 0 {
		t.Error("query cache saw no queries")
	}
}

// TestCompareTamperedConcolicSet: seeded disagreement #1. Tampering the
// concolic finding set (dropping the real storm-s assert) must fail the
// oracle with the site listed as ExtraInBMC — a confirmed BMC finding
// the concolic engine "never reported".
func TestCompareTamperedConcolicSet(t *testing.T) {
	rep := runStorm(t, bmc.Config{K: 1 << 20})
	cr, err := bmc.Compare(rep, nil)
	if err == nil {
		t.Fatal("oracle accepted a tampered (empty) concolic finding set")
	}
	if !strings.Contains(err.Error(), "never reported") {
		t.Errorf("unexpected oracle error: %v", err)
	}
	if len(cr.ExtraInBMC) != 1 {
		t.Errorf("ExtraInBMC = %v, want the one assert site", cr.ExtraInBMC)
	}
	if cr.Agree {
		t.Error("CrossReport.Agree set despite disagreement")
	}
}

// TestCompareDepthMismatch: seeded disagreement #2. A BMC run truncated
// before the bug is reachable, compared against a full-depth concolic
// finding set, must fail the oracle with the site as MissedByBMC — the
// run was Complete (nothing unsupported), so missing a finding is not
// excusable.
func TestCompareDepthMismatch(t *testing.T) {
	rep := runStorm(t, bmc.Config{K: 20, NoReplay: true})
	if !rep.Complete {
		t.Fatalf("unsupported drops at K=20: %v", rep.Unsupported)
	}
	if rep.Truncated == 0 {
		t.Fatal("K=20 did not truncate storm-s — pick a smaller bound")
	}
	full := []bmc.BugKey{{Kind: iss.ErrAssertFail, PC: 0xdeadbeee}}
	cr, err := bmc.Compare(rep, full)
	if err == nil {
		t.Fatal("oracle accepted a truncated run missing a concolic finding")
	}
	if len(cr.MissedByBMC) != 1 {
		t.Errorf("MissedByBMC = %v, want the injected site", cr.MissedByBMC)
	}
}

// TestCounterS: a second program with value-dependent loop joins; the
// assert never fails (count <= 8 always holds), so the bug set must be
// empty and everything must account as exit or prune.
func TestCounterS(t *testing.T) {
	snap := buildSnap(t, "counter-s")
	x, err := bmc.New(snap, bmc.Config{K: 1 << 20})
	if err != nil {
		t.Fatalf("bmc.New: %v", err)
	}
	rep := x.Run(context.Background())
	if !rep.Complete {
		t.Fatalf("unsupported drops on counter-s: %v", rep.Unsupported)
	}
	if keys := rep.Keys(); len(keys) != 0 {
		t.Fatalf("bug set = %v, want none (counter-s asserts hold)", keys)
	}
	if !rep.Exhausted {
		t.Fatalf("not exhausted: stopped=%q truncated=%d", rep.Stopped, rep.Truncated)
	}
}

// TestBadConfig: K must be positive.
func TestBadConfig(t *testing.T) {
	snap := buildSnap(t, "storm-s")
	if _, err := bmc.New(snap, bmc.Config{}); err == nil {
		t.Fatal("bmc.New accepted K=0")
	}
}

// heapGuardSrc: a symbolic byte decides whether a store lands one past
// a protected block — the heap-guard detector, gated on a branch so the
// violation term carries a non-trivial guard. rv32 asm keeps the guest
// free of compiler-scheduling noise.
const heapGuardSrc = `
_start:
	la a0, buf
	li a1, 1
	la a2, name
	li a7, 1
	ecall            # make_symbolic(buf, 1, "x")
	la a0, blk
	li a1, 4
	li a2, 8
	li a7, 8
	ecall            # register_protect(blk, 4, zone 8)
	la t0, buf
	lbu t1, 0(t0)
	li t2, 42
	bne t1, t2, ok
	la t3, blk
	sw zero, 4(t3)   # x == 42: write one past the block, into the guard
ok:
	li a0, 0
	li a7, 0
	ecall
.data
blk: .space 4
pad: .space 12
buf: .space 4
name: .asciz "x"
`

// TestHeapGuardViolation: the heap-guard detector fires in BMC, with a
// model that concretely reproduces the overflow.
func TestHeapGuardViolation(t *testing.T) {
	img, err := asm.Assemble(heapGuardSrc, 0x80000000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b := smt.NewBuilder()
	snap := iss.New(b, iss.Config{RamBase: 0x80000000, RamSize: 1 << 20, MaxInstr: 10_000})
	snap.LoadImage(img.Origin, img.Bytes, img.Entry())
	snap.Freeze()
	x, err := bmc.New(snap, bmc.Config{K: 10_000})
	if err != nil {
		t.Fatalf("bmc.New: %v", err)
	}
	rep := x.Run(context.Background())
	if !rep.Complete {
		t.Fatalf("unsupported drops: %v", rep.Unsupported)
	}
	keys := rep.Keys()
	if len(keys) != 1 || keys[0].Kind != iss.ErrProtectedWrite {
		t.Fatalf("bug set = %v, want one protected-write site", keys)
	}
	f := rep.Findings[0]
	if !f.Confirmed {
		t.Errorf("heap-guard finding not confirmed by replay")
	}
	if got := f.Input[0]; got != 42 {
		t.Errorf("model x = %d, want 42 (the only overflowing input)", got)
	}
}

// TestDetectorKindsUnsupported: the unrolling only models the paper's
// heap guard-zone check. Attaching richer detectors (UAF quarantine,
// canaries, IRQ reentrancy) must not silently weaken the absence proof:
// each extra kind is recorded as an unsupported drop up front, so a run
// that would otherwise be Complete/Exhausted honestly reports neither.
func TestDetectorKindsUnsupported(t *testing.T) {
	snap := buildSnap(t, "counter-s") // Complete under the stock set (TestCounterS)
	if err := snap.AttachDetectorSet([]string{"all"}); err != nil {
		t.Fatal(err)
	}
	x, err := bmc.New(snap, bmc.Config{K: 1 << 20})
	if err != nil {
		t.Fatalf("bmc.New: %v", err)
	}
	rep := x.Run(context.Background())
	for _, kind := range []string{iss.KindHeapUAF, iss.KindStackCanary, iss.KindIRQReentrancy} {
		if rep.Unsupported["detector:"+kind] == 0 {
			t.Errorf("detector %q not recorded as unsupported: %v", kind, rep.Unsupported)
		}
	}
	if n := rep.Unsupported["detector:"+iss.KindHeapGuard]; n != 0 {
		t.Errorf("heap-guard is modeled by the unrolling, must not be dropped (%d)", n)
	}
	if rep.Complete {
		t.Error("Complete with unmodeled detectors attached")
	}
	if rep.Exhausted {
		t.Error("Exhausted with unmodeled detectors attached")
	}
}
