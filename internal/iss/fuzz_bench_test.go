package iss

import (
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/smt"
)

// benchGuest makes a 64-byte buffer symbolic and runs a branchy
// checksum over it — every load pulls a symbolic byte through the ALU,
// so the concolic run pays the full shadow-expression tax on each
// iteration while the concrete fast path pays none.
const benchGuest = `
_start:
	la a0, buf
	li a1, 64
	la a2, name
	li a7, 1
	ecall            # make_symbolic(buf, 64, "x")
	li a4, 0         # checksum
	li s1, 0         # pass counter
pass:
	la a3, buf
	li t0, 0
loop:
	lbu t1, 0(a3)
	andi t2, t1, 1
	beqz t2, even
	slli t1, t1, 1
even:
	add a4, a4, t1
	xor a4, a4, t0
	addi a3, a3, 1
	addi t0, t0, 1
	li t3, 64
	bltu t0, t3, loop
	addi s1, s1, 1
	li t3, 32
	bltu s1, t3, pass
	mv a0, a4
	li a7, 0
	ecall
.data
buf: .space 64
name: .asciz "x"
`

func buildBenchSnapshot(b *testing.B) *Core {
	b.Helper()
	img, err := asm.Assemble(benchGuest, ramBase)
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	c := New(smt.NewBuilder(), Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 1_000_000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	c.Freeze()
	return c
}

var benchInput = func() []byte {
	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i*37 + 11)
	}
	return in
}()

// benchVariants are the block-cache ablation axes (EXPERIMENTS.md
// "Block cache ablation"): the default predecoded-dispatch path, the
// cache without superinstruction fusion, and the legacy
// fetch/decode/execute loop.
var benchVariants = []struct {
	name              string
	noCache, noFusion bool
}{
	{"bb", false, false},
	{"bb-nofuse", false, true},
	{"nocache", true, false},
}

// BenchmarkConcreteExec measures one fuzz-style execution: clone the
// frozen snapshot, run ConcreteOnly with the edge bitmap enabled. This
// is the hot loop of the hybrid fuzzer.
func BenchmarkConcreteExec(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			snap := buildBenchSnapshot(b)
			edge := make([]byte, 1<<16)
			var instrs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clear(edge)
				c := snap.Clone()
				c.NoBlockCache = v.noCache
				c.NoFusion = v.noFusion
				c.ConcreteOnly = true
				c.FuzzInput = benchInput
				c.EdgeMap = edge
				c.Run(0)
				if c.Err != nil {
					b.Fatal(c.Err)
				}
				instrs += c.InstrCount
			}
			b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
		})
	}
}

// BenchmarkConcolicExec measures the same execution with the full
// concolic shadow (fuzz-input replay: variables minted, symbolic bytes
// propagated, trace conditions emitted). The ratio against
// BenchmarkConcreteExec is the per-execution concolic tax the hybrid
// loop avoids on the fuzzing fast path.
func BenchmarkConcolicExec(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			snap := buildBenchSnapshot(b)
			var instrs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := snap.Clone()
				c.NoBlockCache = v.noCache
				c.NoFusion = v.noFusion
				c.FuzzInput = benchInput
				c.Run(0)
				if c.Err != nil {
					b.Fatal(c.Err)
				}
				instrs += c.InstrCount
			}
			b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
		})
	}
}
