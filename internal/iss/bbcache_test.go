package iss

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/smt"
)

// smcGuest patches one of its own instructions and loops back over it:
// the first pass executes `addi a0, zero, 1`, then the word is
// overwritten with `addi a0, zero, 42` (0x02A00513) and re-executed. A
// block cache that misses the store keeps serving the stale decode and
// exits 1 instead of 42.
const smcGuest = `
_start:
	li s0, 0
	la s1, patch
	la s2, newinst
	lw s2, 0(s2)
loop:
patch:
	addi a0, zero, 1
	bnez s0, done
	sw s2, 0(s1)
	li s0, 1
	j loop
done:
` + exitSeq + `
.data
newinst: .word 0x02A00513
`

func TestSMCInvalidatesCachedBlock(t *testing.T) {
	c := run(t, smcGuest)
	if !c.Exited || c.Err != nil {
		t.Fatalf("did not exit cleanly: %v", c.Err)
	}
	if c.ExitCode != 42 {
		t.Fatalf("exit code %d want 42 (stale cached block executed)", c.ExitCode)
	}
	if _, _, invals := c.BBStats(); invals == 0 {
		t.Error("self-modifying store must invalidate a cached block")
	}
}

func TestSMCWithoutCacheMatches(t *testing.T) {
	c := buildCore(t, smcGuest)
	c.NoBlockCache = true
	c.Run(0)
	if c.ExitCode != 42 {
		t.Fatalf("legacy path exit code %d want 42", c.ExitCode)
	}
}

// cloneGuest sums a small arithmetic series; every clone must compute
// the same result regardless of which clone decoded the shared blocks.
const cloneGuest = `
_start:
	li a0, 0
	li a1, 1
loop:
	add a0, a0, a1
	addi a1, a1, 1
	li a2, 100
	bleu a1, a2, loop
` + exitSeq

// TestCloneSharedBlocksConcurrent exercises the clone-safety contract
// under the race detector: many goroutines clone one frozen snapshot
// and run concurrently, racing to publish decoded blocks into the
// shared overlay.
func TestCloneSharedBlocksConcurrent(t *testing.T) {
	snap := buildCore(t, cloneGuest)
	snap.Freeze()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c := snap.Clone()
				c.Run(0)
				if c.Err != nil || c.ExitCode != 5050 {
					errs <- fmt.Errorf("clone exit=%d err=%v", c.ExitCode, c.Err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloneSMCConcurrent runs the self-modifying guest from many
// concurrent clones of one frozen snapshot. Each clone patches its own
// copy-on-write page; the shared decoded blocks must be shadowed by the
// clone's dirty-page tracking, never mutated, and every clone must see
// its own patched instruction.
func TestCloneSMCConcurrent(t *testing.T) {
	snap := buildCore(t, smcGuest)
	snap.Freeze()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c := snap.Clone()
				c.Run(0)
				if c.Err != nil || c.ExitCode != 42 {
					errs <- fmt.Errorf("smc clone exit=%d err=%v", c.ExitCode, c.Err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// equivGuest mixes fusible pairs (lui+addi via li, auipc+addi via la,
// slt+bnez), symbolic data, loads/stores and branches so the
// equivalence check covers the fused, unfused and legacy execution
// paths on the same trace.
const equivGuest = `
_start:
	la a0, buf
	li a1, 8
	la a2, name
	li a7, 1
	ecall              # make_symbolic(buf, 8, "x")
	la a3, buf
	li t0, 0
	li a4, 0
loop:
	lbu t1, 0(a3)
	li t2, 100
	slt t3, t1, t2
	bnez t3, small
	addi a4, a4, 7
small:
	add a4, a4, t1
	sw a4, 0(a3)       # overwrite data (exercises OnWrite on data pages)
	addi a3, a3, 4
	addi t0, t0, 1
	li t2, 2
	bltu t0, t2, loop
	lui a5, 0x12345
	addi a5, a5, 0x678
	add a0, a4, a5
` + exitSeq + `
.data
buf: .space 8
name: .asciz "x"
`

// TestCacheEquivalence runs the same concolic execution with the cache
// on, the cache on without fusion, and the legacy step loop, and
// requires bit-identical architectural results: registers, counters,
// exit state, console output, trace conditions and edge coverage.
func TestCacheEquivalence(t *testing.T) {
	img, err := asm.Assemble(equivGuest, ramBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	input := []byte{3, 200, 7, 250, 1, 2, 3, 4}

	exec := func(noCache, noFusion bool) *Core {
		c := New(smt.NewBuilder(), Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 1_000_000})
		c.LoadImage(img.Origin, img.Bytes, img.Entry())
		c.NoBlockCache = noCache
		c.NoFusion = noFusion
		c.FuzzInput = input
		c.EdgeMap = make([]byte, 1<<16)
		c.Run(0)
		return c
	}

	ref := exec(true, false) // legacy fetch/decode/execute loop
	for _, v := range []struct {
		name     string
		noFusion bool
	}{{"cache+fusion", false}, {"cache-nofuse", true}} {
		got := exec(false, v.noFusion)
		if got.Exited != ref.Exited || got.ExitCode != ref.ExitCode {
			t.Fatalf("%s: exit (%v,%d) want (%v,%d)", v.name, got.Exited, got.ExitCode, ref.Exited, ref.ExitCode)
		}
		if got.InstrCount != ref.InstrCount || got.Cycles != ref.Cycles {
			t.Errorf("%s: instr/cycles %d/%d want %d/%d", v.name, got.InstrCount, got.Cycles, ref.InstrCount, ref.Cycles)
		}
		for r := 0; r < 32; r++ {
			if got.Regs[r].C != ref.Regs[r].C {
				t.Errorf("%s: x%d = %#x want %#x", v.name, r, got.Regs[r].C, ref.Regs[r].C)
			}
		}
		if !bytes.Equal(got.Output, ref.Output) {
			t.Errorf("%s: output %q want %q", v.name, got.Output, ref.Output)
		}
		if len(got.Trace) != len(ref.Trace) {
			t.Fatalf("%s: %d trace conditions want %d", v.name, len(got.Trace), len(ref.Trace))
		}
		for i := range ref.Trace {
			g, r := got.Trace[i], ref.Trace[i]
			if g.EPCLen != r.EPCLen || g.SiteIdx != r.SiteIdx || g.FlipFrom != r.FlipFrom || g.FlipTo != r.FlipTo {
				t.Errorf("%s: trace[%d] = %+v want %+v", v.name, i, g, r)
			}
		}
		if !bytes.Equal(got.EdgeMap, ref.EdgeMap) {
			t.Errorf("%s: edge coverage bitmap differs from legacy loop", v.name)
		}
	}
}

// TestBBStatsCounters checks that a loop produces cache hits (the loop
// body block is decoded once, then reused).
func TestBBStatsCounters(t *testing.T) {
	c := run(t, cloneGuest)
	hits, misses, _ := c.BBStats()
	if misses == 0 {
		t.Error("expected at least one decode miss")
	}
	if hits < 90 {
		t.Errorf("loop of 100 iterations produced only %d block hits", hits)
	}
}
