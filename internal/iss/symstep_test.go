package iss

import (
	"testing"

	"rvcte/internal/rv32"
)

// TestDecodedAt: the symbolic-step decode hook must return the same
// instruction with and without the block cache, and classify bad PCs
// the way fetch() would fail them.
func TestDecodedAt(t *testing.T) {
	c := buildCore(t, `
	_start:
		li a0, 6
		addi a0, a0, 1
	`+exitSeq)

	inst, ok := c.DecodedAt(ramBase)
	if !ok || inst.Op == rv32.OpIllegal {
		t.Fatalf("DecodedAt(entry) = %v/%v, want a decodable instruction", inst.Op, ok)
	}
	// Same answer through the legacy path.
	c.NoBlockCache = true
	inst2, ok2 := c.DecodedAt(ramBase)
	if !ok2 || inst2 != inst {
		t.Fatalf("legacy DecodedAt = %+v/%v, cache gave %+v", inst2, ok2, inst)
	}
	c.NoBlockCache = false

	// DecodedAt must not disturb the core: PC and Err stay put.
	if c.PC != ramBase || c.Err != nil {
		t.Fatalf("DecodedAt moved the core: pc=%#x err=%v", c.PC, c.Err)
	}

	for _, tc := range []struct {
		name string
		pc   uint32
		kind ErrKind
	}{
		{"misaligned", ramBase + 1, ErrIllegalJump},
		{"outside RAM", ramBase + ramSize, ErrIllegalJump},
		{"undecodable word", ramBase + 0x100, ErrIllegalInstr},
	} {
		if _, ok := c.DecodedAt(tc.pc); ok {
			t.Errorf("%s: DecodedAt succeeded", tc.name)
		}
		if got := c.FetchErrAt(tc.pc); got != tc.kind {
			t.Errorf("%s: FetchErrAt = %v, want %v", tc.name, got, tc.kind)
		}
	}
}

// TestSymstepSnapshots: the auxiliary-state accessors return copies
// that do not alias the core's private state.
func TestSymstepSnapshots(t *testing.T) {
	c := run(t, `
	_start:
		la a0, buf
		li a1, 2
		la a2, name
		li a7, 1
		ecall            # make_symbolic(buf, 2, "s")
		la a0, buf
		li a1, 2
		li a2, 77
		li a7, 8
		ecall            # register_protect(buf, 2, 77)
		li a0, 0
	`+exitSeq+`
	.data
	buf: .space 4
	name: .asciz "s"
	`)
	if c.Err != nil {
		t.Fatalf("guest failed: %v", c.Err)
	}
	zones := c.ZonesSnapshot()
	if len(zones) != 2 {
		t.Fatalf("zones = %v, want the 2 guard zones of one protect", zones)
	}
	zones[0] = Zone{}
	if z := c.ZonesSnapshot(); z[0] == (Zone{}) {
		t.Error("ZonesSnapshot aliases the core's zones")
	}
	gens := c.SymCounterSnapshot()
	if gens["s"] != 1 {
		t.Fatalf("symGen = %v, want s:1 after one make_symbolic", gens)
	}
	gens["s"] = 99
	if c.SymCounterSnapshot()["s"] != 1 {
		t.Error("SymCounterSnapshot aliases the core's counters")
	}
	if c.PendingHostWork() != 0 {
		t.Errorf("PendingHostWork = %d on a peripheral-free core", c.PendingHostWork())
	}
	if !c.InRAM(ramBase, 4) || c.InRAM(ramBase+ramSize-1, 2) {
		t.Error("InRAM bounds are off")
	}
}
