package iss

import (
	"fmt"

	"rvcte/internal/concolic"
	"rvcte/internal/rv32"
	"rvcte/internal/smt"
)

// execute retires one decoded instruction.
func (c *Core) execute(in rv32.Inst) {
	o := c.Ops
	cur := c.PC
	next := c.PC + uint32(in.Size)

	switch in.Op {
	case rv32.OpLUI:
		c.setReg(in.Rd, concolic.Concrete(uint32(in.Imm)))
	case rv32.OpAUIPC:
		c.setReg(in.Rd, concolic.Concrete(c.PC+uint32(in.Imm)))
	case rv32.OpJAL:
		c.setReg(in.Rd, concolic.Concrete(next))
		c.PC = c.PC + uint32(in.Imm)
		return
	case rv32.OpJALR:
		target := c.reg(in.Rs1)
		// A symbolic jump target is concretized (paper §2.2
		// "Concretization"): the EPC is extended with target == N.
		taddr := c.concretize(target, "jump target")
		c.setReg(in.Rd, concolic.Concrete(next))
		c.PC = (taddr + uint32(in.Imm)) &^ 1
		return

	case rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU:
		a, b := c.reg(in.Rs1), c.reg(in.Rs2)
		var taken bool
		var cond *smt.Expr
		switch in.Op {
		case rv32.OpBEQ:
			taken, cond = o.CmpEq(a, b)
		case rv32.OpBNE:
			taken, cond = o.CmpNe(a, b)
		case rv32.OpBLT:
			taken, cond = o.CmpLt(a, b)
		case rv32.OpBGE:
			taken, cond = o.CmpGe(a, b)
		case rv32.OpBLTU:
			taken, cond = o.CmpLtu(a, b)
		default:
			taken, cond = o.CmpGeu(a, b)
		}
		if cond != nil {
			flipTo := next
			if !taken {
				flipTo = c.PC + uint32(in.Imm)
			}
			c.branchFlip(taken, cond, flipTo)
		}
		if taken {
			c.PC = c.PC + uint32(in.Imm)
		} else {
			c.PC = next
		}
		return

	case rv32.OpLB, rv32.OpLH, rv32.OpLW, rv32.OpLBU, rv32.OpLHU:
		size := map[rv32.Op]int{rv32.OpLB: 1, rv32.OpLBU: 1, rv32.OpLH: 2, rv32.OpLHU: 2, rv32.OpLW: 4}[in.Op]
		signed := in.Op == rv32.OpLB || in.Op == rv32.OpLH
		addr := c.effAddr(in.Rs1, in.Imm)
		if c.Halted() {
			return
		}
		if !c.memLoad(addr, size, in.Rd, signed, next) {
			return // context switched to a peripheral; pc already saved
		}
	case rv32.OpSB, rv32.OpSH, rv32.OpSW:
		size := map[rv32.Op]int{rv32.OpSB: 1, rv32.OpSH: 2, rv32.OpSW: 4}[in.Op]
		addr := c.effAddr(in.Rs1, in.Imm)
		if c.Halted() {
			return
		}
		if !c.memStore(addr, size, c.reg(in.Rs2), next) {
			return
		}

	case rv32.OpADDI:
		c.setReg(in.Rd, o.Add(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpSLTI:
		c.setReg(in.Rd, o.Slt(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpSLTIU:
		c.setReg(in.Rd, o.Sltu(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpXORI:
		c.setReg(in.Rd, o.Xor(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpORI:
		c.setReg(in.Rd, o.Or(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpANDI:
		c.setReg(in.Rd, o.And(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpSLLI:
		c.setReg(in.Rd, o.Sll(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpSRLI:
		c.setReg(in.Rd, o.Srl(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))
	case rv32.OpSRAI:
		c.setReg(in.Rd, o.Sra(c.reg(in.Rs1), concolic.Concrete(uint32(in.Imm))))

	case rv32.OpADD:
		c.setReg(in.Rd, o.Add(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpSUB:
		c.setReg(in.Rd, o.Sub(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpSLL:
		c.setReg(in.Rd, o.Sll(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpSLT:
		c.setReg(in.Rd, o.Slt(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpSLTU:
		c.setReg(in.Rd, o.Sltu(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpXOR:
		c.setReg(in.Rd, o.Xor(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpSRL:
		c.setReg(in.Rd, o.Srl(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpSRA:
		c.setReg(in.Rd, o.Sra(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpOR:
		c.setReg(in.Rd, o.Or(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpAND:
		c.setReg(in.Rd, o.And(c.reg(in.Rs1), c.reg(in.Rs2)))

	case rv32.OpMUL:
		c.setReg(in.Rd, o.Mul(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpMULH:
		c.setReg(in.Rd, o.MulH(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpMULHSU:
		c.setReg(in.Rd, o.MulHSU(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpMULHU:
		c.setReg(in.Rd, o.MulHU(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpDIV:
		c.setReg(in.Rd, o.Div(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpDIVU:
		c.setReg(in.Rd, o.DivU(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpREM:
		c.setReg(in.Rd, o.Rem(c.reg(in.Rs1), c.reg(in.Rs2)))
	case rv32.OpREMU:
		c.setReg(in.Rd, o.RemU(c.reg(in.Rs1), c.reg(in.Rs2)))

	case rv32.OpFENCE:
		// No-op on a single-hart VP.
	case rv32.OpECALL:
		c.ecall()
		if c.Halted() {
			return
		}
		// CTE_return redirects the PC; only advance when the ecall left
		// it in place.
		if c.PC == cur {
			c.PC = next
		}
		return
	case rv32.OpEBREAK:
		c.fail(ErrAssertFail, c.PC, "ebreak")
		return
	case rv32.OpMRET:
		const mieBit, mpieBit = uint32(1 << 3), uint32(1 << 7)
		c.MStatus = c.MStatus&^mieBit | (c.MStatus&mpieBit)>>4
		c.MStatus |= mpieBit
		c.PC = c.MEPC
		for _, d := range c.trapDet {
			d.OnMRet(c)
		}
		return
	case rv32.OpWFI:
		c.waitForInterrupt()

	case rv32.OpCSRRW, rv32.OpCSRRS, rv32.OpCSRRC:
		old := c.readCSR(uint16(in.Imm))
		v := c.reg(in.Rs1)
		nv := c.concretizeVal(v, "csr write")
		switch in.Op {
		case rv32.OpCSRRW:
			c.writeCSR(uint16(in.Imm), nv)
		case rv32.OpCSRRS:
			if in.Rs1 != 0 {
				c.writeCSR(uint16(in.Imm), old|nv)
			}
		case rv32.OpCSRRC:
			if in.Rs1 != 0 {
				c.writeCSR(uint16(in.Imm), old&^nv)
			}
		}
		c.setReg(in.Rd, concolic.Concrete(old))
	case rv32.OpCSRRWI, rv32.OpCSRRSI, rv32.OpCSRRCI:
		old := c.readCSR(uint16(in.Imm))
		z := uint32(in.Rs2)
		switch in.Op {
		case rv32.OpCSRRWI:
			c.writeCSR(uint16(in.Imm), z)
		case rv32.OpCSRRSI:
			if z != 0 {
				c.writeCSR(uint16(in.Imm), old|z)
			}
		case rv32.OpCSRRCI:
			if z != 0 {
				c.writeCSR(uint16(in.Imm), old&^z)
			}
		}
		c.setReg(in.Rd, concolic.Concrete(old))

	default:
		c.fail(ErrIllegalInstr, c.PC, in.Op.String())
		return
	}
	if !c.Halted() {
		c.PC = next
	}
}

// Exported accessors for ExecHook implementations (the nested-VM
// baseline executes through these so CTE semantics stay identical).

// Reg reads register r as a concolic value.
func (c *Core) Reg(r uint8) concolic.Value { return c.reg(r) }

// SetReg writes register r (x0 writes are discarded).
func (c *Core) SetReg(r uint8, v concolic.Value) { c.setReg(r, v) }

// Branch records a symbolic branch decision (EPC/TC bookkeeping).
func (c *Core) Branch(taken bool, cond *smt.Expr) { c.branch(taken, cond) }

// Concretize pins a concolic value to its concrete part via the EPC.
func (c *Core) Concretize(v concolic.Value, what string) uint32 {
	return c.concretize(v, what)
}

// HookLoad performs a load including MMIO routing; returns false when a
// peripheral context switch occurred.
func (c *Core) HookLoad(addr uint32, size int, rd uint8, signed bool, next uint32) bool {
	return c.memLoad(addr, size, rd, signed, next)
}

// HookStore performs a store including MMIO routing; returns false when
// a peripheral context switch occurred.
func (c *Core) HookStore(addr uint32, size int, v concolic.Value, next uint32) bool {
	return c.memStore(addr, size, v, next)
}

// effAddr computes the effective address of a load/store, concretizing a
// symbolic address (paper §2.2). Returns the concrete address. When
// AddressTCs is enabled, a ladder of alternative-address trace
// conditions is emitted before concretization so exploration can steer
// symbolic addresses into protected zones (the optional concretization
// TCs of §2.2, applied to addresses).
func (c *Core) effAddr(rs1 uint8, imm int32) uint32 {
	base := c.reg(rs1)
	addr := base.C + uint32(imm)
	if base.Sym != nil {
		full := c.Ops.Add(base, concolic.Concrete(uint32(imm)))
		if full.Sym != nil && c.AddressTCs {
			site := c.siteCount
			c.siteCount++
			if site >= c.Bound {
				for _, step := range []uint64{0, 7, 31, 127, 511, 4095} {
					target := uint64(full.C) + step
					if target > 0xffffffff {
						break
					}
					cond := c.B.Ugt(full.Sym, c.B.Const(32, target))
					if cond.IsFalse() {
						break
					}
					c.emitTC(TraceCond{EPCLen: len(c.EPC), Cond: cond, SiteIdx: site})
				}
			}
		}
		c.concretize(full, "memory address")
	}
	return addr
}

// concretize pins a (possibly symbolic) value to its concrete part by
// extending the EPC with v == N, and returns N.
func (c *Core) concretize(v concolic.Value, what string) uint32 {
	if v.Sym != nil {
		c.EPC = append(c.EPC, c.B.Eq(v.Sym, c.B.Const(32, uint64(v.C))))
		_ = what
	}
	return v.C
}

func (c *Core) concretizeVal(v concolic.Value, what string) uint32 {
	return c.concretize(v, what)
}

// branch handles a symbolic branch condition per §2.2: emit a TC for the
// unexplored side (subject to the generational bound) and extend the EPC
// with the taken side.
func (c *Core) branch(taken bool, cond *smt.Expr) {
	c.branchFlip(taken, cond, 0)
}

// branchFlip is branch with the not-followed successor address attached
// to the emitted trace condition (0 when the flip edge is unknown, e.g.
// for host-model branches that have no guest PC).
func (c *Core) branchFlip(taken bool, cond *smt.Expr, flipTo uint32) {
	site := c.siteCount
	c.siteCount++
	var follow, flip *smt.Expr
	if taken {
		follow, flip = cond, c.B.Not(cond)
	} else {
		follow, flip = c.B.Not(cond), cond
	}
	if site >= c.Bound && !flip.IsFalse() {
		tc := TraceCond{EPCLen: len(c.EPC), Cond: flip, SiteIdx: site}
		if flipTo != 0 {
			tc.FlipFrom, tc.FlipTo = c.PC, flipTo
		}
		c.emitTC(tc)
	}
	if !follow.IsTrue() {
		c.EPC = append(c.EPC, follow)
	}
}

// memLoad performs a load, routing MMIO to peripherals. Returns false if
// a context switch happened (the load completes on CTE_return).
func (c *Core) memLoad(addr uint32, size int, rd uint8, signed bool, next uint32) bool {
	if err := c.checkAccess(addr, size, false); err {
		return true
	}
	if c.inRAM(addr, size) {
		c.setReg(rd, c.loadRAM(addr, size, signed))
		return true
	}
	p := c.findPeripheral(addr)
	if p == nil {
		c.fail(ErrIllegalLoad, addr, "")
		return true
	}
	if p.Host != nil {
		// Host models may emit TCs mid-mutation (the model has already
		// updated its own state when Branch fires), so fork capture is
		// suppressed for the duration (hostDepth).
		c.hostDepth++
		v := p.Host.Transport(c, addr-p.Base, size, concolic.Concrete(0), true)
		c.hostDepth--
		c.setReg(rd, c.extendLoaded(v, size, signed))
		return true
	}
	// Global-to-local address translation, then transport(local, buf,
	// size, is_read=1) via context switch (paper §3.2.1-§3.2.2).
	args := [4]concolic.Value{
		concolic.Concrete(addr - p.Base),
		concolic.Concrete(p.Buf),
		concolic.Concrete(uint32(size)),
		concolic.Concrete(1),
	}
	c.PC = next // resume after the load once the peripheral returns
	c.enterPeripheral(p.Transport, args, pendingOp{active: true, isLoad: true, size: size, rd: rd, buf: p.Buf, signed: signed})
	return false
}

// memStore performs a store, routing MMIO to peripherals.
func (c *Core) memStore(addr uint32, size int, v concolic.Value, next uint32) bool {
	if err := c.checkAccess(addr, size, true); err {
		return true
	}
	if c.inRAM(addr, size) {
		c.Mem.Store(addr, size, v)
		return true
	}
	p := c.findPeripheral(addr)
	if p == nil {
		c.fail(ErrIllegalStore, addr, "")
		return true
	}
	if p.Host != nil {
		c.hostDepth++
		p.Host.Transport(c, addr-p.Base, size, v, false)
		c.hostDepth--
		return true
	}
	// Copy the store value into the transaction buffer, then switch.
	c.Mem.Store(p.Buf, size, v)
	args := [4]concolic.Value{
		concolic.Concrete(addr - p.Base),
		concolic.Concrete(p.Buf),
		concolic.Concrete(uint32(size)),
		concolic.Concrete(0),
	}
	c.PC = next
	c.enterPeripheral(p.Transport, args, pendingOp{active: true, buf: p.Buf, size: size})
	return false
}

// loadRAM loads from RAM with sign/zero extension.
func (c *Core) loadRAM(addr uint32, size int, signed bool) concolic.Value {
	return c.extendLoaded(c.Mem.Load(addr, size), size, signed)
}

// extendLoaded applies load sign/zero extension to a raw value.
func (c *Core) extendLoaded(v concolic.Value, size int, signed bool) concolic.Value {
	switch size {
	case 1:
		if signed {
			return c.Ops.SextByte(v)
		}
		return c.Ops.ZextByte(v)
	case 2:
		if signed {
			return c.Ops.SextHalf(v)
		}
		return c.Ops.ZextHalf(v)
	}
	return v
}

// checkAccess runs the generic runtime checks: null dereference and
// alignment inline, then every attached access detector (detect.go —
// the stock set scans the protected heap guard zones). Returns true
// when the path has failed.
func (c *Core) checkAccess(addr uint32, size int, isWrite bool) bool {
	if addr < 0x100 {
		c.fail(ErrNullDeref, addr, "")
		return true
	}
	if addr%uint32(size) != 0 {
		c.fail(ErrMisaligned, addr, fmt.Sprintf("%d-byte access", size))
		return true
	}
	for _, d := range c.accessDet {
		if err := d.OnAccess(c, addr, size, isWrite); err != nil {
			if c.Err == nil {
				c.Err = err
			}
			return true
		}
	}
	return false
}

// enterPeripheral saves the execution context and jumps to a peripheral
// function (paper §3.2.2). Args are placed in a0..a3.
func (c *Core) enterPeripheral(fn uint32, args [4]concolic.Value, pend pendingOp) {
	ctx := savedCtx{regs: c.Regs, pc: c.PC, pending: pend}
	c.ctxStack = append(c.ctxStack, ctx)
	for i, a := range args {
		c.Regs[10+i] = a
	}
	// ra points at an invalid address: well-formed peripheral models end
	// with CTE_return, never a plain ret.
	c.Regs[1] = concolic.Concrete(0xdead0000)
	if c.Cfg.PeriphStackTop != 0 && len(c.ctxStack) == 1 {
		c.Regs[2] = concolic.Concrete(c.Cfg.PeriphStackTop)
	}
	c.PC = fn
	// The block runner must stop and re-dispatch at the peripheral entry.
	c.bbAbort = true
}

// cteReturn pops the context stack and completes any pending memory
// operation (the CTE_return interface function).
func (c *Core) cteReturn() {
	if len(c.ctxStack) == 0 {
		c.fail(ErrIllegalInstr, c.PC, "CTE_return outside peripheral context")
		return
	}
	ctx := c.ctxStack[len(c.ctxStack)-1]
	c.ctxStack = c.ctxStack[:len(c.ctxStack)-1]
	c.Regs = ctx.regs
	c.PC = ctx.pc
	if ctx.pending.active && ctx.pending.isLoad {
		v := c.loadRAM(ctx.pending.buf, ctx.pending.size, ctx.pending.signed)
		c.setReg(ctx.pending.rd, v)
	}
}

// readCSR implements the machine-mode CSR file.
func (c *Core) readCSR(csr uint16) uint32 {
	switch csr {
	case rv32.CSRMStatus:
		return c.MStatus
	case rv32.CSRMISA:
		return 1<<30 | 1<<8 | 1<<12 | 1<<2 // RV32IMC
	case rv32.CSRMIE:
		return c.MIE
	case rv32.CSRMIP:
		return c.MIP
	case rv32.CSRMTVec:
		return c.MTVec
	case rv32.CSRMScratch:
		return c.MScratch
	case rv32.CSRMEPC:
		return c.MEPC
	case rv32.CSRMCause:
		return c.MCause
	case rv32.CSRMTVal:
		return c.MTVal
	case rv32.CSRMCycle:
		return uint32(c.Cycles)
	case rv32.CSRMCycleH:
		return uint32(c.Cycles >> 32)
	case rv32.CSRMHartID:
		return 0
	}
	return 0
}

func (c *Core) writeCSR(csr uint16, v uint32) {
	switch csr {
	case rv32.CSRMStatus:
		c.MStatus = v
	case rv32.CSRMIE:
		c.MIE = v
	case rv32.CSRMIP:
		c.MIP = v
	case rv32.CSRMTVec:
		c.MTVec = v
	case rv32.CSRMScratch:
		c.MScratch = v
	case rv32.CSRMEPC:
		c.MEPC = v
	case rv32.CSRMCause:
		c.MCause = v
	case rv32.CSRMTVal:
		c.MTVal = v
	}
}
