package iss_test

import (
	"context"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/cte"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

const (
	tRamBase = 0x80000000
	tRamSize = 1 << 20
)

// raceSrc contains a classic lost-update race: main performs a
// non-atomic read-modify-write of a counter while a notified peripheral
// function increments the same counter. If the notification fires inside
// the window between main's load and store, the peripheral's update is
// lost and the final assertion fails. The notification delay is
// symbolic, so only timing exploration can expose the bug.
const raceSrc = `
_start:
	# d = symbolic delay
	la a0, d
	li a1, 4
	la a2, dname
	li a7, 1
	ecall                 # make_symbolic(&d, 4, "d")
	la a0, d
	lw s2, 0(a0)
	li t0, 2048
	sltu a0, s2, t0
	li a7, 2
	ecall                 # CTE_assume(d < 2048): always fires before
	                      # the spin loop below finishes
	mv a1, s2
	la a0, bump
	li a7, 4
	ecall                 # CTE_notify(bump, d)

	# non-atomic counter += 1 with a widened race window
	la s0, counter
	lw s1, 0(s0)          # load
	nop
	nop
	nop
	nop
	nop
	nop
	addi s1, s1, 1
	sw s1, 0(s0)          # store

	# wait until the notification certainly fired
spin:
	li a7, 6
	ecall                 # get_cycles
	li t0, 4096
	bltu a0, t0, spin

	la s0, counter
	lw a0, 0(s0)
	li a1, 11
	sub a0, a0, a1
	seqz a0, a0           # counter == 11 ?
	li a7, 3
	ecall                 # CTE_assert(counter == 11)
	li a0, 0
	li a7, 0
	ecall

bump:
	la t0, counter
	lw t1, 0(t0)
	addi t1, t1, 10
	sw t1, 0(t0)
	li a7, 5
	ecall                 # CTE_return

.data
counter: .word 0
d: .word 0
dname: .asciz "d"
`

// TestSymbolicNotificationTimeFindsRace: with SymbolicTimes enabled,
// exploration finds a delay that drops the notification into the
// read-modify-write window (paper future work §5.2).
func TestSymbolicNotificationTimeFindsRace(t *testing.T) {
	img, err := asmAssembleHelper(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	b := smt.NewBuilder()
	core := iss.New(b, iss.Config{RamBase: tRamBase, RamSize: tRamSize, MaxInstr: 1_000_000})
	core.LoadImage(img.Origin, img.Bytes, img.Entry())
	core.SymbolicTimes = true

	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("timing exploration must find the lost update: %v", rep)
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Fatalf("kind: %v", f.Err)
	}
	d := b.Value(f.Input, "d[0]") | b.Value(f.Input, "d[1]")<<8
	t.Logf("lost update with notification delay d=%d after %d paths", d, rep.Paths)
	// The violating delay must fall inside the read-modify-write window
	// (non-zero, and well before the spin loop ends).
	if d == 0 || d >= 2048 {
		t.Errorf("delay %d cannot be a lost-update window hit", d)
	}
}

// TestSymbolicTimesOffMissesRace: without the extension the delay is
// silently concretized to the input value and the race is not found —
// demonstrating why the paper lists this as future work.
func TestSymbolicTimesOffMissesRace(t *testing.T) {
	img, err := asmAssembleHelper(raceSrc)
	if err != nil {
		t.Fatal(err)
	}
	b := smt.NewBuilder()
	core := iss.New(b, iss.Config{RamBase: tRamBase, RamSize: tRamSize, MaxInstr: 1_000_000})
	core.LoadImage(img.Origin, img.Bytes, img.Entry())
	// SymbolicTimes left off.

	rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("without timing exploration the race should stay hidden, found %v", rep.Findings)
	}
	if !rep.Exhausted {
		t.Error("exploration should exhaust (no symbolic branches beyond the delay)")
	}
}

// asmAssembleHelper assembles a test source at the standard base.
func asmAssembleHelper(src string) (*asm.Image, error) { return asm.Assemble(src, tRamBase) }
