package iss

import (
	"fmt"

	"rvcte/internal/concolic"
)

// CTE-interface function codes. Guest software (and the peripheral
// software models) invoke these via `ecall` with the code in a7 and
// arguments in a0..a2, mirroring the paper's CTE SW-library.
const (
	SysExit            = 0  // exit(code)
	SysMakeSymbolic    = 1  // CTE_make_symbolic(ptr, size, name)
	SysAssume          = 2  // CTE_assume(cond)
	SysAssert          = 3  // CTE_assert(cond)
	SysNotify          = 4  // CTE_notify(fn, delay_cycles)
	SysReturn          = 5  // CTE_return()
	SysGetCycles       = 6  // CTE_get_cycles() -> a0 (lo), a1 (hi)
	SysTriggerIRQ      = 7  // CTE_trigger_irq(line, level)
	SysRegisterProtect = 8  // CTE_register_protected_memory(addr, size, zone)
	SysFreeProtect     = 9  // CTE_free_protected_memory(addr)
	SysPutChar         = 10 // putchar(ch)
	SysCancelNotify    = 11 // CTE_cancel_notify(fn)
	SysIsSymbolic      = 12 // CTE_is_symbolic(value) -> 0/1
	SysCanaryArm       = 13 // CTE_canary_arm(addr, size)
	SysCanaryDisarm    = 14 // CTE_canary_disarm(addr)
)

// ecall dispatches a CTE-interface call.
func (c *Core) ecall() {
	code := c.reg(17).C // a7
	a0 := c.reg(10)
	a1 := c.reg(11)
	a2 := c.reg(12)

	switch code {
	case SysExit:
		c.Exited = true
		c.ExitCode = a0.C

	case SysMakeSymbolic:
		ptr := c.concretize(a0, "make_symbolic ptr")
		size := c.concretize(a1, "make_symbolic size")
		namePtr := c.concretize(a2, "make_symbolic name")
		name, ok := c.Mem.ReadCString(namePtr)
		if !ok {
			// No NUL terminator within the scan bound: almost certainly a
			// wild name pointer. Fail loudly instead of minting variables
			// under a 4 KiB garbage name (which would also silently change
			// identity if the garbage differed between runs).
			c.fail(ErrIllegalLoad, namePtr,
				fmt.Sprintf("make_symbolic name not NUL-terminated within %d bytes", concolic.CStringMax))
			return
		}
		if name == "" {
			name = fmt.Sprintf("anon@%#x", ptr)
		}
		c.makeSymbolic(ptr, size, name)

	case SysAssume:
		c.assumeVal(a0)

	case SysAssert:
		c.assertVal(a0)

	case SysNotify:
		fn := c.concretize(a0, "notify fn")
		// Symbolic delays are concretized (paper §3.2: "Currently, we
		// only support concrete delay arguments"). With SymbolicTimes
		// enabled (future work §5.2), alternative firing times are
		// emitted as trace conditions first, so exploration can reorder
		// notifications against the software and expose timing bugs.
		// Small steps matter: race windows are a few instructions wide.
		if a1.Sym != nil && c.SymbolicTimes {
			site := c.siteCount
			c.siteCount++
			if site >= c.Bound {
				// Exact alternative firing times: races live in windows
				// a few cycles wide, so candidate delays are pinned
				// with equalities (dense nearby, geometric farther out).
				for _, step := range []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 20, 24, 32, 48, 64, 96, 128, 256, 512, 1024} {
					target := uint64(a1.C) + step
					if target > 0xffffffff {
						break
					}
					cond := c.B.Eq(a1.Sym, c.B.Const(32, target))
					if cond.IsFalse() {
						continue
					}
					c.emitTC(TraceCond{EPCLen: len(c.EPC), Cond: cond, SiteIdx: site})
				}
			}
		}
		delay := c.concretize(a1, "notify delay")
		// A pending notification for the same function is reset.
		for i := range c.notifications {
			if c.notifications[i].Fn == fn {
				c.notifications[i].Due = c.Cycles + uint64(delay)
				return
			}
		}
		c.notifications = append(c.notifications, notification{Fn: fn, Due: c.Cycles + uint64(delay)})

	case SysReturn:
		c.cteReturn()

	case SysGetCycles:
		c.setReg(10, concolic.Concrete(uint32(c.Cycles)))
		c.setReg(11, concolic.Concrete(uint32(c.Cycles>>32)))

	case SysTriggerIRQ:
		line := c.concretize(a0, "irq line") & 31
		level := c.concretize(a1, "irq level")
		if level != 0 {
			c.MIP |= 1 << line
		} else {
			c.MIP &^= 1 << line
		}

	case SysRegisterProtect:
		addr := c.concretize(a0, "protect addr")
		// Allocation sizes are the one concretization where exploring
		// alternative concrete values pays off (paper §2.2: "trace
		// conditions can be emitted to generate different concrete
		// values N"): emit a TC asking for a strictly larger size so
		// overflow-triggering allocations are reachable.
		if a1.Sym != nil && !c.NoConcretizationTCs {
			// Emit a geometric ladder of alternative-size trace
			// conditions (size > N, > N+7, > N+31, ...), so a single
			// generation covers exponentially larger allocations — the
			// "minimum and maximum possible values would be good
			// candidates" optimization of §2.2.
			site := c.siteCount
			c.siteCount++
			if site >= c.Bound {
				for _, step := range []uint64{0, 7, 31, 127, 511, 4095, 65535} {
					target := uint64(a1.C) + step
					if target > 0xffffffff {
						break
					}
					cond := c.B.Ugt(a1.Sym, c.B.Const(32, target))
					if cond.IsFalse() {
						break
					}
					c.emitTC(TraceCond{EPCLen: len(c.EPC), Cond: cond, SiteIdx: site})
				}
			}
		}
		size := c.concretize(a1, "protect size")
		zone := c.concretize(a2, "protect zone")
		c.zones = append(c.zones,
			Zone{Start: addr - zone, Size: zone, Block: addr},
			Zone{Start: addr + size, Size: zone, Block: addr})
		for _, d := range c.heapDet {
			d.OnProtect(c, addr, size)
		}

	case SysFreeProtect:
		addr := c.concretize(a0, "free addr")
		// Derive the block size from its post-guard zone (Start ==
		// block+size) before removal, then strip both guard zones and
		// let the heap detectors classify the event: heap-guard raises
		// free(NULL)/double-free/bad-free, heap-uaf quarantines the
		// freed range.
		var size uint32
		removed := 0
		kept := c.zones[:0]
		for _, z := range c.zones {
			if z.Block == addr && addr != 0 {
				if z.Start > addr {
					size = z.Start - addr
				}
				removed++
				continue
			}
			kept = append(kept, z)
		}
		c.zones = kept
		for _, d := range c.heapDet {
			if err := d.OnUnprotect(c, addr, size, removed); err != nil {
				if c.Err == nil {
					c.Err = err
				}
				return
			}
		}

	case SysPutChar:
		if c.CaptureForks && a0.Sym != nil && !c.ConcreteOnly {
			// Shadow symbolic output bytes so a forked path can re-evaluate
			// the prefix's output under its new model (the concrete byte
			// printed here depends on the input assignment).
			for len(c.outSym) < len(c.Output) {
				c.outSym = append(c.outSym, nil)
			}
			c.outSym = append(c.outSym, a0.Sym)
		}
		c.Output = append(c.Output, byte(a0.C))

	case SysCancelNotify:
		fn := c.concretize(a0, "cancel fn")
		for i := range c.notifications {
			if c.notifications[i].Fn == fn {
				c.notifications = append(c.notifications[:i], c.notifications[i+1:]...)
				return
			}
		}

	case SysIsSymbolic:
		if a0.Sym != nil {
			c.setReg(10, concolic.Concrete(1))
		} else {
			c.setReg(10, concolic.Concrete(0))
		}

	case SysCanaryArm:
		addr := c.concretize(a0, "canary addr")
		size := c.concretize(a1, "canary size")
		for _, d := range c.canaryDet {
			d.Arm(c, addr, size)
		}

	case SysCanaryDisarm:
		addr := c.concretize(a0, "canary addr")
		for _, d := range c.canaryDet {
			d.Disarm(c, addr)
		}

	default:
		c.fail(ErrIllegalInstr, c.PC, fmt.Sprintf("unknown ecall %d", code))
	}
}

// assumeVal implements CTE_assume (§2.2): when the concrete condition
// holds, the path continues under the symbolic assumption; otherwise a
// TC targeting the assumption is emitted and the path is pruned.
func (c *Core) assumeVal(v concolic.Value) {
	conc := v.C != 0
	if v.Sym == nil {
		if !conc {
			c.fail(ErrAssumeFail, c.PC, "concrete assume(false)")
		}
		return
	}
	x := c.B.Ne(v.Sym, c.B.Const(32, 0))
	site := c.siteCount
	c.siteCount++
	if conc {
		if !x.IsTrue() {
			c.EPC = append(c.EPC, x)
		}
	} else {
		if site >= c.Bound && !x.IsFalse() {
			c.emitTC(TraceCond{EPCLen: len(c.EPC), Cond: x, SiteIdx: site})
		}
		c.fail(ErrAssumeFail, c.PC, "")
	}
}

// assertVal implements CTE_assert (§2.2): a concretely-true symbolic
// assertion emits a violation-seeking TC and continues; a false one
// fails the path.
func (c *Core) assertVal(v concolic.Value) {
	conc := v.C != 0
	if v.Sym == nil {
		if !conc {
			c.fail(ErrAssertFail, c.PC, "concrete assertion failed")
		}
		return
	}
	x := c.B.Ne(v.Sym, c.B.Const(32, 0))
	site := c.siteCount
	c.siteCount++
	if conc {
		nx := c.B.Not(x)
		if site >= c.Bound && !nx.IsFalse() {
			c.emitTC(TraceCond{EPCLen: len(c.EPC), Cond: nx, SiteIdx: site})
		}
		if !x.IsTrue() {
			c.EPC = append(c.EPC, x)
		}
	} else {
		c.fail(ErrAssertFail, c.PC, "symbolic assertion violated")
	}
}

// makeSymbolic overwrites size bytes at ptr with fresh symbolic bytes.
// Concrete values come from the current input assignment (or zero). Each
// call mints a new generation of variables ("d#0", "d#1", ...) so that a
// peripheral regenerating sensor data in a loop gets independent symbols.
func (c *Core) makeSymbolic(ptr, size uint32, name string) {
	if c.ConcreteOnly {
		// Concrete fast path (fuzzing): no variables are minted and no
		// shadow bytes stored — the input stream supplies the bytes.
		for i := uint32(0); i < size; i++ {
			c.Mem.StoreByte(ptr+i, c.nextFuzzByte(), nil)
		}
		return
	}
	gen := c.symCounters[name]
	c.symCounters[name] = gen + 1
	full := fmt.Sprintf("%s#%d", name, gen)
	if gen == 0 {
		// The first generation keeps the bare name for readability.
		full = name
	}
	for i := uint32(0); i < size; i++ {
		v := c.B.Var(8, fmt.Sprintf("%s[%d]", full, i))
		// The variable id is stable across runs (names are deterministic
		// along a path), so the input assignment applies directly.
		id := int(v.Val)
		var cb byte
		if c.FuzzInput != nil {
			// Concolic replay of a fuzz input: the stream supplies the
			// byte, the assignment records it, and the consumption order
			// is kept so a solver model maps back onto stream offsets.
			cb = c.nextFuzzByte()
			c.Input[id] = uint64(cb)
			c.SymOrder = append(c.SymOrder, id)
		} else {
			cb = byte(c.Input[id])
		}
		c.Mem.StoreByte(ptr+i, cb, v)
	}
}
