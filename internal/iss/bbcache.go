package iss

import (
	"sync"

	"rvcte/internal/rv32"
)

// This file implements the predecoded basic-block cache (DESIGN.md
// "ISS"): on the first execution of a block the ISS decodes straight-line
// instructions once into a slice of pre-resolved operation records
// (decoded) that dispatch through per-opcode handler functions
// (dispatch.go), instead of re-fetching, re-decoding and re-switching on
// every step of every path. Blocks terminate at control transfers and
// system instructions, are indexed by physical PC, and are invalidated
// when guest memory they cover is written (self-modifying code,
// LoadImage) via the concolic.Memory OnWrite hook.
//
// Clone safety follows the memory snapshot protocol. Core.Freeze
// promotes the core's decoded blocks into a shared frozenBlocks layer:
// an immutable base map plus a concurrently growable overlay that
// clones populate lazily, so the first path to execute a block decodes
// it for every later path of the campaign. Publishing is sound because
// of the copy-on-write invariant: a page the clone has not written is
// bit-identical to the frozen image, so a block decoded from clean
// pages is the block every sibling clone would decode. Each core
// tracks the 64-byte memory lines it has written since cloning (a
// dirty bitset over RAM) and refuses to use or publish shared blocks
// overlapping them — a clone that rewrites code (rare) falls back to
// its precise private layer.

const (
	// maxBlockOps caps block length so pathological straight-line code
	// cannot produce unbounded decode work on a miss.
	maxBlockOps = 64

	// bbPageBits sets the granularity of write tracking (64-byte lines).
	// Finer than the 4KB memory pages so that data sitting on the same
	// page as code (common in small linked images) does not shadow the
	// page's shared blocks on every data write.
	bbPageBits = 6
)

// bblock is one immutable decoded basic block covering code bytes
// [start, end).
type bblock struct {
	start, end uint32
	ops        []decoded
	dead       bool // invalidated; still present in stale page lists
}

// frozenBlocks is the translation cache shared by every clone of a
// frozen snapshot: an immutable base built at Freeze time plus an
// overlay that clones extend concurrently with blocks decoded from
// clean (unwritten) pages.
type frozenBlocks struct {
	blocks  map[uint32]*bblock // immutable after Freeze
	overlay sync.Map           // uint32 start PC → *bblock
}

// bbCache is the per-core cache state: a private mutable layer for
// blocks that may not be shared (decoded from pages this core wrote),
// plus a pointer to the shared layer of the snapshot the core was
// cloned from (nil for a root core).
type bbCache struct {
	blocks map[uint32]*bblock   // private layer, keyed by block start PC
	pages  map[uint32][]*bblock // page index over private blocks
	lo, hi uint32               // extent of private code ([lo,hi); lo>hi when empty)

	shared *frozenBlocks
	// dirty is a bitset with one bit per 64-byte RAM line this core has
	// written since it was cloned (or frozen); nil until the first
	// tracked write. Shared blocks touching a dirty line are ignored
	// and re-decoded privately; only blocks decoded entirely from clean
	// lines are published to the shared overlay. Tracked only while
	// shared != nil — a root core's private layer is kept consistent by
	// precise invalidation instead.
	dirty            []uint64
	ramBase, ramSize uint32

	hits, misses, invals uint64
}

func newBBCache(ramBase, ramSize uint32) *bbCache {
	return &bbCache{
		blocks:  make(map[uint32]*bblock),
		pages:   make(map[uint32][]*bblock),
		lo:      ^uint32(0),
		ramBase: ramBase,
		ramSize: ramSize,
	}
}

// cleanRange reports whether no line of [start, end) has been written
// by this core since it was cloned. Callers guarantee the range lies in
// RAM (blocks are only decoded from RAM).
func (bc *bbCache) cleanRange(start, end uint32) bool {
	if bc.dirty == nil {
		return true
	}
	last := (end - 1 - bc.ramBase) >> bbPageBits
	for l := (start - bc.ramBase) >> bbPageBits; l <= last; l++ {
		if bc.dirty[l>>6]&(1<<(l&63)) != 0 {
			return false
		}
	}
	return true
}

// markDirty sets the dirty bits for the written range [lo, hi),
// clamped to RAM (blocks cannot cover anything outside RAM, so writes
// elsewhere are irrelevant to the cache).
func (bc *bbCache) markDirty(lo, hi uint32) {
	ramEnd := uint64(bc.ramBase) + uint64(bc.ramSize)
	if uint64(hi) <= uint64(bc.ramBase) || uint64(lo) >= ramEnd {
		return
	}
	if lo < bc.ramBase {
		lo = bc.ramBase
	}
	if uint64(hi) > ramEnd {
		hi = uint32(ramEnd)
	}
	if bc.dirty == nil {
		lines := (bc.ramSize >> bbPageBits) + 1
		bc.dirty = make([]uint64, (lines+63)/64)
	}
	last := (hi - 1 - bc.ramBase) >> bbPageBits
	for l := (lo - bc.ramBase) >> bbPageBits; l <= last; l++ {
		bc.dirty[l>>6] |= 1 << (l & 63)
	}
}

// lookup returns the decoded block starting at pc, decoding it on a
// miss and publishing the result to the shared overlay when possible. A
// nil return means the first instruction at pc cannot be fetched or
// decoded; the caller falls back to Step for exact legacy error
// reporting.
func (bc *bbCache) lookup(c *Core, pc uint32) *bblock {
	if len(bc.blocks) > 0 { // fuzz/path clones usually have no private blocks
		if b := bc.blocks[pc]; b != nil {
			bc.hits++
			return b
		}
	}
	publishable := false
	if fb := bc.shared; fb != nil {
		b := fb.blocks[pc]
		if b == nil {
			if v, ok := fb.overlay.Load(pc); ok {
				b = v.(*bblock)
			}
		}
		if b != nil && bc.cleanRange(b.start, b.end) {
			bc.hits++
			return b
		}
		// Either unknown to the shared layer, or stale for this core
		// (its range overlaps pages we wrote): decode below.
		publishable = b == nil
	}
	bc.misses++
	nb := c.decodeBlock(pc)
	if nb == nil {
		return nil
	}
	if publishable && bc.cleanRange(nb.start, nb.end) {
		// Decoded entirely from clean pages: identical to what any
		// sibling clone would decode from the frozen image, so publish
		// it for the whole campaign. First publisher wins.
		if v, loaded := bc.shared.overlay.LoadOrStore(pc, nb); loaded {
			nb = v.(*bblock)
		}
		return nb
	}
	bc.insert(nb)
	return nb
}

func (bc *bbCache) insert(b *bblock) {
	bc.blocks[b.start] = b
	if b.start < bc.lo {
		bc.lo = b.start
	}
	if b.end > bc.hi {
		bc.hi = b.end
	}
	last := (b.end - 1) >> bbPageBits
	for pg := b.start >> bbPageBits; ; pg++ {
		bc.pages[pg] = append(bc.pages[pg], b)
		if pg >= last {
			break
		}
	}
}

// invalidate discards private blocks overlapping [lo, hi). Reports
// whether any block was removed.
func (bc *bbCache) invalidate(lo, hi uint32) bool {
	removed := false
	last := (hi - 1) >> bbPageBits
	for pg := lo >> bbPageBits; ; pg++ {
		if list := bc.pages[pg]; len(list) > 0 {
			kept := list[:0]
			for _, b := range list {
				if b.dead {
					continue // already removed via another page's list
				}
				if b.start < hi && b.end > lo {
					b.dead = true
					delete(bc.blocks, b.start)
					removed = true
					continue
				}
				kept = append(kept, b)
			}
			bc.pages[pg] = kept
		}
		if pg >= last {
			break
		}
	}
	return removed
}

// freeze promotes this core's view of the program into the shared layer
// served to clones: the previous shared blocks that are still valid for
// this core's memory (not overlapping pages it wrote), plus everything
// in its private layer. Afterwards the core's memory is the new
// baseline, so the dirty set resets.
func (bc *bbCache) freeze() {
	if bc.shared != nil && len(bc.blocks) == 0 && bc.dirty == nil {
		// Nothing private and nothing stale: the current shared layer
		// already matches this core's memory and keeps growing through
		// its overlay. (When shared is nil we fall through even with an
		// empty private layer, so that clones always have an overlay to
		// publish into.)
		return
	}
	fb := &frozenBlocks{blocks: make(map[uint32]*bblock)}
	if old := bc.shared; old != nil {
		for pc, b := range old.blocks {
			if bc.cleanRange(b.start, b.end) {
				fb.blocks[pc] = b
			}
		}
		old.overlay.Range(func(k, v any) bool {
			b := v.(*bblock)
			if bc.cleanRange(b.start, b.end) {
				fb.blocks[k.(uint32)] = b
			}
			return true
		})
	}
	for pc, b := range bc.blocks {
		fb.blocks[pc] = b
	}
	bc.shared = fb
	bc.blocks = make(map[uint32]*bblock)
	bc.pages = make(map[uint32][]*bblock)
	bc.lo, bc.hi = ^uint32(0), 0
	bc.dirty = nil
}

// cloneFor returns the cache for a clone of the owning core: the shared
// layer is carried over (base immutable, overlay concurrency-safe), the
// private layer is rebuilt lazily, and the dirty bitset is inherited
// (the clone's memory contains the parent's writes).
func (bc *bbCache) cloneFor() *bbCache {
	if bc == nil {
		return newBBCache(0, 0)
	}
	n := newBBCache(bc.ramBase, bc.ramSize)
	n.shared = bc.shared
	if bc.dirty != nil {
		n.dirty = append([]uint64(nil), bc.dirty...)
	}
	return n
}

// noteMemWrite is the concolic.Memory OnWrite hook: it invalidates
// private decoded blocks covering the written range and marks the
// written lines dirty so stale shared blocks are never consulted. The
// common case — data writes outside any privately decoded code — costs
// two extent compares plus one bit-set per written line.
func (c *Core) noteMemWrite(addr uint32, n int) {
	if n > 0 {
		// Any memory mutation ends the window in which consecutive fork
		// checkpoints may share one memory snapshot (captureFork).
		c.capMemo = nil
		// A write covering the protocol-state byte re-reads it at the
		// next instruction boundary (the hook fires before the bytes
		// land, so the new value is not visible yet).
		if c.ProtoStateAddr != 0 && addr <= c.ProtoStateAddr && c.ProtoStateAddr-addr < uint32(n) {
			c.protoDirty = true
		}
	}
	bc := c.bb
	if bc == nil || n <= 0 {
		return
	}
	end := addr + uint32(n)
	if end < addr {
		end = ^uint32(0) // clamp a wrapping range
	}
	if addr < bc.hi && end > bc.lo {
		if bc.invalidate(addr, end) {
			bc.invals++
			c.bbAbort = true
		}
	}
	if bc.shared != nil {
		bc.markDirty(addr, end)
	}
}

// BBStats returns the block-cache hit, miss and invalidation counts
// accumulated by this core.
func (c *Core) BBStats() (hits, misses, invals uint64) {
	if c.bb == nil {
		return 0, 0, 0
	}
	return c.bb.hits, c.bb.misses, c.bb.invals
}

// blockEnds reports whether op terminates a basic block: control
// transfers (the successor is dynamic or conditional), system
// instructions that redirect or depend on machine state, and fences
// (conservative FENCE.I barrier for self-modifying code).
func blockEnds(op rv32.Op) bool {
	switch op {
	case rv32.OpJAL, rv32.OpJALR,
		rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU,
		rv32.OpECALL, rv32.OpEBREAK, rv32.OpMRET, rv32.OpWFI, rv32.OpFENCE,
		rv32.OpCSRRW, rv32.OpCSRRS, rv32.OpCSRRC, rv32.OpCSRRWI, rv32.OpCSRRSI, rv32.OpCSRRCI:
		return true
	}
	return false
}

// decodeBlock decodes the basic block starting at pc from the concrete
// bytes of guest memory. Decoding mirrors fetch's validity checks and
// stops before the first unfetchable or illegal instruction, so
// erroring PCs always take the legacy Step path and fail identically.
// Returns nil when no instruction could be decoded at all.
func (c *Core) decodeBlock(start uint32) *bblock {
	pc := start
	b := &bblock{start: start}
	for len(b.ops) < maxBlockOps {
		if pc&1 != 0 || !c.inRAM(pc, 2) {
			break
		}
		b0, _ := c.Mem.LoadByteRaw(pc)
		b1, _ := c.Mem.LoadByteRaw(pc + 1)
		word := uint32(b0) | uint32(b1)<<8
		if word&3 == 3 {
			if !c.inRAM(pc, 4) {
				break
			}
			b2, _ := c.Mem.LoadByteRaw(pc + 2)
			b3, _ := c.Mem.LoadByteRaw(pc + 3)
			word |= uint32(b2)<<16 | uint32(b3)<<24
		}
		inst := rv32.Decode(word)
		if inst.Op == rv32.OpIllegal {
			break
		}
		b.ops = append(b.ops, makeDecoded(pc, inst))
		pc += uint32(inst.Size)
		if blockEnds(inst.Op) {
			break
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	b.end = pc
	if !c.NoFusion {
		fuseBlock(b)
	}
	return b
}

// fuseBlock runs the superinstruction pass: adjacent hot pairs
// (lui+addi, auipc+addi, compare+branch) collapse into one record whose
// handler retires both instructions, preserving exact per-instruction
// bookkeeping (see pairBoundary) and unfusing itself at runtime whenever
// pairing could be observed (pending events, budget edge, symbolic
// compare operands).
func fuseBlock(b *bblock) {
	out := make([]decoded, 0, len(b.ops))
	for i := 0; i < len(b.ops); i++ {
		d := b.ops[i]
		if i+1 < len(b.ops) {
			if f, ok := tryFuse(&d, &b.ops[i+1]); ok {
				out = append(out, f)
				i++
				continue
			}
		}
		out = append(out, d)
	}
	b.ops = out
}

func tryFuse(a, b *decoded) (decoded, bool) {
	switch a.op {
	case rv32.OpLUI, rv32.OpAUIPC:
		// lui/auipc rd, hi ; addi rd2, rd, lo  →  one constant load.
		if b.op != rv32.OpADDI || b.rs1 != a.rd || a.rd == 0 {
			return decoded{}, false
		}
		f := *a
		f.fn = stepFusedLI
		f.k1 = uint32(a.imm)
		if a.op == rv32.OpAUIPC {
			f.k1 = a.pc + uint32(a.imm)
		}
		f.k = f.k1 + uint32(b.imm)
		f.op2, f.rd2 = b.op, b.rd
		f.imm2, f.pc2, f.npc2, f.inst2 = b.imm, b.pc, b.npc, b.inst
		return f, true

	case rv32.OpSLT, rv32.OpSLTU, rv32.OpSLTI, rv32.OpSLTIU:
		// slt* rd, ... ; beqz/bnez rd  →  one compare-and-branch. Only
		// the concrete case is fused at runtime (symbolic compares must
		// keep the legacy EPC/TC structure, see stepFusedCmpBr).
		if (b.op != rv32.OpBEQ && b.op != rv32.OpBNE) || b.rs2 != 0 || b.rs1 != a.rd || a.rd == 0 {
			return decoded{}, false
		}
		f := *a
		f.fn = stepFusedCmpBr
		f.op2 = b.op
		f.imm2, f.pc2, f.npc2, f.inst2 = b.imm, b.pc, b.npc, b.inst
		return f, true
	}
	return decoded{}, false
}
