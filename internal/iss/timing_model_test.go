package iss

import (
	"testing"

	"rvcte/internal/rv32"
)

// TestCyclesPerInstructionModel: the fixed-cycles-per-instruction timing
// model of §3.2 is configurable per opcode.
func TestCyclesPerInstructionModel(t *testing.T) {
	c := buildCore(t, `
	_start:
		li a0, 6      # 2 instructions (li = lui+addi)
		li a1, 7      # 2 instructions
		mul a2, a0, a1
		divu a3, a2, a0
	`+exitSeq)
	c.CyclesPer = func(op rv32.Op) uint64 {
		switch op {
		case rv32.OpMUL:
			return 3
		case rv32.OpDIVU:
			return 34
		}
		return 1
	}
	c.Run(0)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	// Three li pseudo-instructions expand to lui+addi (6 instructions),
	// plus ecall, all at 1 cycle; mul costs 3, divu 34.
	want := uint64(7*1 + 3 + 34)
	if c.Cycles != want {
		t.Errorf("cycles: %d want %d", c.Cycles, want)
	}
	if c.InstrCount != 9 {
		t.Errorf("instr: %d want 9", c.InstrCount)
	}
}

// TestDefaultTimingOneCyclePerInstr: without a model, cycles == retired
// instructions.
func TestDefaultTimingOneCyclePerInstr(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 0
		li a1, 100
	lp:
		addi a0, a0, 1
		bltu a0, a1, lp
	`+exitSeq)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.Cycles != c.InstrCount {
		t.Errorf("cycles %d != instr %d", c.Cycles, c.InstrCount)
	}
}
