package iss

import (
	"bytes"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/smt"
)

// fuzzGuest makes an 8-byte buffer symbolic, sums its bytes with a
// data-dependent branch per byte, and exits with the number of odd
// bytes — a small input-dependent workload for the fuzz-mode tests.
const fuzzGuest = `
_start:
	la a0, buf
	li a1, 8
	la a2, name
	li a7, 1
	ecall            # make_symbolic(buf, 8, "x")
	la a3, buf
	li a4, 0         # odd-byte count
	li t0, 0         # index
loop:
	lbu t1, 0(a3)
	andi t2, t1, 1
	beqz t2, even
	addi a4, a4, 1
even:
	addi a3, a3, 1
	addi t0, t0, 1
	li t3, 8
	bltu t0, t3, loop
	mv a0, a4
	li a7, 0
	ecall
.data
buf: .space 8
name: .asciz "x"
`

func buildFuzzCore(t *testing.T) (*Core, *smt.Builder) {
	t.Helper()
	img, err := asm.Assemble(fuzzGuest, ramBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b := smt.NewBuilder()
	c := New(b, Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 1_000_000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	return c, b
}

// TestConcreteOnlyFastPath: a ConcreteOnly run consumes its bytes from
// the fuzz stream, mints no SMT variables, and leaves EPC/Trace empty.
func TestConcreteOnlyFastPath(t *testing.T) {
	c, b := buildFuzzCore(t)
	c.ConcreteOnly = true
	c.FuzzInput = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	c.Run(0)
	if c.Err != nil || !c.Exited {
		t.Fatalf("did not exit cleanly: %v", c.Err)
	}
	if c.ExitCode != 4 {
		t.Errorf("odd count %d want 4", c.ExitCode)
	}
	if n := b.NumVars(); n != 0 {
		t.Errorf("concrete fast path minted %d variables", n)
	}
	if len(c.EPC) != 0 || len(c.Trace) != 0 {
		t.Errorf("concrete fast path built shadow state: epc=%d trace=%d", len(c.EPC), len(c.Trace))
	}
	if c.FuzzPos != 8 {
		t.Errorf("demand %d want 8", c.FuzzPos)
	}
}

// TestFuzzDemandPastEnd: missing stream bytes read as zero, and FuzzPos
// still reports the full demand.
func TestFuzzDemandPastEnd(t *testing.T) {
	c, _ := buildFuzzCore(t)
	c.ConcreteOnly = true
	c.FuzzInput = []byte{1, 1} // 6 bytes short
	c.Run(0)
	if c.ExitCode != 2 {
		t.Errorf("odd count %d want 2 (missing bytes are zero)", c.ExitCode)
	}
	if c.FuzzPos != 8 {
		t.Errorf("demand %d want 8", c.FuzzPos)
	}
}

// TestReplayRoundTrip: a concolic replay of a fuzz input records the
// stream in Input/SymOrder, and re-running from that assignment (the
// classic concolic mode) reproduces the same execution.
func TestReplayRoundTrip(t *testing.T) {
	c, b := buildFuzzCore(t)
	c.Freeze()
	in := []byte{9, 0, 255, 3, 3, 0, 0, 1}

	replay := c.Clone()
	replay.FuzzInput = in
	replay.Run(0)
	if replay.Err != nil {
		t.Fatal(replay.Err)
	}
	if got := len(replay.SymOrder); got != 8 {
		t.Fatalf("SymOrder length %d want 8", got)
	}
	for i, id := range replay.SymOrder {
		if b.VarWidth(id) != 8 {
			t.Errorf("var %d width %d want 8", id, b.VarWidth(id))
		}
		if replay.Input[id] != uint64(in[i]) {
			t.Errorf("Input[%d] = %d want %d", id, replay.Input[id], in[i])
		}
	}

	again := c.Clone()
	again.Input = replay.Input
	again.Run(0)
	if again.ExitCode != replay.ExitCode {
		t.Errorf("assignment replay diverged: %d vs %d", again.ExitCode, replay.ExitCode)
	}
	if len(again.Trace) != len(replay.Trace) {
		t.Errorf("trace lengths diverged: %d vs %d", len(again.Trace), len(replay.Trace))
	}
}

// TestEdgeMap: the hashed PC-pair bitmap is deterministic for one input
// and distinguishes inputs that drive different branch outcomes.
func TestEdgeMap(t *testing.T) {
	c, _ := buildFuzzCore(t)
	c.Freeze()
	exec := func(in []byte) []byte {
		m := make([]byte, 1<<12)
		cl := c.Clone()
		cl.ConcreteOnly = true
		cl.FuzzInput = in
		cl.EdgeMap = m
		cl.Run(0)
		if cl.Err != nil {
			t.Fatal(cl.Err)
		}
		return m
	}
	allEven := exec([]byte{2, 4, 6, 8, 10, 12, 14, 16})
	if !bytes.Equal(allEven, exec([]byte{2, 4, 6, 8, 10, 12, 14, 16})) {
		t.Error("edge map must be deterministic per input")
	}
	nonZero := 0
	for _, v := range allEven {
		if v != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("edge map recorded nothing")
	}
	if bytes.Equal(allEven, exec([]byte{1, 4, 6, 8, 10, 12, 14, 16})) {
		t.Error("different branch outcomes must yield different edge maps")
	}
}
