package iss

import (
	"fmt"

	"rvcte/internal/concolic"
	"rvcte/internal/rv32"
	"rvcte/internal/smt"
)

// This file is the direct-threaded execution engine over predecoded
// blocks (bbcache.go): each decoded record carries a handler function
// pointer resolved once at decode time, so the hot loop is
// prologue → indirect call → epilogue with no fetch, no rv32.Decode and
// no opcode switch. Every handler mirrors the corresponding arm of the
// legacy execute switch exactly — the legacy Step path stays the
// semantic reference (and the NoBlockCache ablation baseline).

// decoded is one pre-resolved operation record of a basic block. It is
// immutable after decode (blocks are shared across clones).
type decoded struct {
	fn     stepFn
	op     rv32.Op
	rd     uint8
	rs1    uint8
	rs2    uint8
	msize  uint8 // memory access size in bytes (loads/stores)
	signed bool  // sign-extend the loaded value
	imm    int32
	pc     uint32
	npc    uint32 // pc + instruction size
	inst   rv32.Inst

	// Superinstruction (fused pair) fields; only set when fn is a fused
	// handler. op2/imm2/pc2/npc2/inst2 describe the second instruction,
	// k1/k are the precomputed results of the constant-load pair.
	op2   rv32.Op
	rd2   uint8
	imm2  int32
	pc2   uint32
	npc2  uint32
	k1, k uint32
	inst2 rv32.Inst
}

// stepFn executes one decoded record. It returns the opcode to charge
// in the runner's cycle epilogue: the record's own op, or — for a fused
// record that retired both instructions — the second op (the first was
// already charged by pairBoundary).
type stepFn func(c *Core, d *decoded) rv32.Op

var stepTab [rv32.NumOps]stepFn

func init() {
	stepTab[rv32.OpLUI] = stepLUI
	stepTab[rv32.OpAUIPC] = stepAUIPC
	stepTab[rv32.OpJAL] = stepJAL
	stepTab[rv32.OpJALR] = stepJALR
	for _, op := range []rv32.Op{rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU} {
		stepTab[op] = stepBranch
	}
	for _, op := range []rv32.Op{rv32.OpLB, rv32.OpLH, rv32.OpLW, rv32.OpLBU, rv32.OpLHU} {
		stepTab[op] = stepLoad
	}
	for _, op := range []rv32.Op{rv32.OpSB, rv32.OpSH, rv32.OpSW} {
		stepTab[op] = stepStore
	}
	stepTab[rv32.OpADDI] = stepADDI
	stepTab[rv32.OpSLTI] = stepSLTI
	stepTab[rv32.OpSLTIU] = stepSLTIU
	stepTab[rv32.OpXORI] = stepXORI
	stepTab[rv32.OpORI] = stepORI
	stepTab[rv32.OpANDI] = stepANDI
	stepTab[rv32.OpSLLI] = stepSLLI
	stepTab[rv32.OpSRLI] = stepSRLI
	stepTab[rv32.OpSRAI] = stepSRAI
	stepTab[rv32.OpADD] = stepADD
	stepTab[rv32.OpSUB] = stepSUB
	stepTab[rv32.OpSLL] = stepSLL
	stepTab[rv32.OpSLT] = stepSLT
	stepTab[rv32.OpSLTU] = stepSLTU
	stepTab[rv32.OpXOR] = stepXOR
	stepTab[rv32.OpSRL] = stepSRL
	stepTab[rv32.OpSRA] = stepSRA
	stepTab[rv32.OpOR] = stepOR
	stepTab[rv32.OpAND] = stepAND
	stepTab[rv32.OpMUL] = stepMUL
	stepTab[rv32.OpMULH] = stepMULH
	stepTab[rv32.OpMULHSU] = stepMULHSU
	stepTab[rv32.OpMULHU] = stepMULHU
	stepTab[rv32.OpDIV] = stepDIV
	stepTab[rv32.OpDIVU] = stepDIVU
	stepTab[rv32.OpREM] = stepREM
	stepTab[rv32.OpREMU] = stepREMU
	stepTab[rv32.OpFENCE] = stepFENCE
	stepTab[rv32.OpECALL] = stepECALL
	stepTab[rv32.OpEBREAK] = stepEBREAK
	stepTab[rv32.OpMRET] = stepMRET
	stepTab[rv32.OpWFI] = stepWFI
	for _, op := range []rv32.Op{rv32.OpCSRRW, rv32.OpCSRRS, rv32.OpCSRRC} {
		stepTab[op] = stepCSR
	}
	for _, op := range []rv32.Op{rv32.OpCSRRWI, rv32.OpCSRRSI, rv32.OpCSRRCI} {
		stepTab[op] = stepCSRI
	}
}

// makeDecoded builds the operation record for inst at pc, resolving the
// handler and pre-computing the load/store metadata the legacy switch
// looks up per execution.
func makeDecoded(pc uint32, inst rv32.Inst) decoded {
	d := decoded{
		fn: stepTab[inst.Op], op: inst.Op,
		rd: inst.Rd, rs1: inst.Rs1, rs2: inst.Rs2,
		imm: inst.Imm, pc: pc, npc: pc + uint32(inst.Size), inst: inst,
	}
	switch inst.Op {
	case rv32.OpLB:
		d.msize, d.signed = 1, true
	case rv32.OpLBU, rv32.OpSB:
		d.msize = 1
	case rv32.OpLH:
		d.msize, d.signed = 2, true
	case rv32.OpLHU, rv32.OpSH:
		d.msize = 2
	case rv32.OpLW, rv32.OpSW:
		d.msize = 4
	}
	if d.fn == nil {
		d.fn = stepUnknown
	}
	return d
}

// runBlock executes the records of b in order, reproducing the exact
// per-instruction structure of Run+Step: budget check, event delivery
// at peripheral depth 0, edge/coverage/ring bookkeeping, execution,
// retire accounting. It returns on halt, on a control transfer out of
// the block (last record), on a context switch, and on bbAbort
// (peripheral entry or block invalidation).
func (c *Core) runBlock(b *bblock, maxInstr uint64) {
	for i := range b.ops {
		d := &b.ops[i]
		c.PC = d.pc
		if maxInstr > 0 && c.InstrCount >= maxInstr {
			c.fail(ErrLimit, c.PC, fmt.Sprintf("after %d instructions", c.InstrCount))
			return
		}
		if c.CaptureForks {
			c.stepUnsafe = false
		}
		if len(c.ctxStack) == 0 {
			if c.dispatchNotifications() {
				return // context-switched into a peripheral function
			} else if c.takeInterrupt() {
				return
			}
		}
		if c.CaptureForks {
			c.recordPreState()
		}
		if c.protoDirty {
			c.protoRefresh()
		}
		if c.EdgeMap != nil {
			if c.edgeMask == 0 {
				c.initEdgeBank()
			}
			cur := (c.PC >> 1) * 0x9e3779b1
			idx := c.protoBank + (cur^c.prevLoc)&c.edgeMask
			if c.EdgeMap[idx] != 0xff {
				c.EdgeMap[idx]++
			}
			c.prevLoc = cur >> 1
		}
		if c.TrackCoverage {
			if c.Coverage == nil {
				c.Coverage = make(map[uint32]struct{})
			}
			c.Coverage[c.PC] = struct{}{}
		}
		if c.TraceDepth > 0 {
			if len(c.traceRing) < c.TraceDepth {
				c.traceRing = append(c.traceRing, TraceEntry{PC: c.PC, Inst: d.inst})
			} else {
				c.traceRing[c.traceNext] = TraceEntry{PC: c.PC, Inst: d.inst}
			}
			c.traceNext = (c.traceNext + 1) % c.TraceDepth
		}
		c.bbAbort = false
		op := d.fn(c, d)
		c.InstrCount++
		if c.CyclesPer != nil {
			c.Cycles += c.CyclesPer(op)
		} else {
			c.Cycles++
		}
		if c.Halted() || c.bbAbort {
			return
		}
	}
}

// canPair reports whether a fused record may retire its second
// instruction without an observable difference from two separate steps:
// the core must not be halted, the budget must allow two retirements,
// and no notification or interrupt may be deliverable at the pair's
// internal boundary.
func (c *Core) canPair() bool {
	if c.Halted() {
		return false
	}
	if c.runLimit > 0 && c.InstrCount+1 >= c.runLimit {
		return false
	}
	if len(c.ctxStack) == 0 {
		if len(c.notifications) != 0 {
			return false
		}
		const mieBit = 1 << 3
		if c.MStatus&mieBit != 0 && c.MIP&c.MIE != 0 {
			return false
		}
	}
	return true
}

// pairBoundary performs the full per-instruction bookkeeping at the
// internal boundary of a fused pair: retire the first instruction and
// run the prologue (edge map, coverage, trace ring) for the second, so
// fused execution is bit-identical to two separate steps.
func (c *Core) pairBoundary(d *decoded) {
	c.InstrCount++
	if c.CyclesPer != nil {
		c.Cycles += c.CyclesPer(d.op)
	} else {
		c.Cycles++
	}
	c.PC = d.pc2
	if c.EdgeMap != nil {
		// Fused pairs never contain stores, so the bank cannot change at
		// the internal boundary and the mask is already derived (the
		// pair's own block prologue ran first).
		cur := (d.pc2 >> 1) * 0x9e3779b1
		idx := c.protoBank + (cur^c.prevLoc)&c.edgeMask
		if c.EdgeMap[idx] != 0xff {
			c.EdgeMap[idx]++
		}
		c.prevLoc = cur >> 1
	}
	if c.TrackCoverage {
		if c.Coverage == nil {
			c.Coverage = make(map[uint32]struct{})
		}
		c.Coverage[d.pc2] = struct{}{}
	}
	if c.TraceDepth > 0 {
		if len(c.traceRing) < c.TraceDepth {
			c.traceRing = append(c.traceRing, TraceEntry{PC: d.pc2, Inst: d.inst2})
		} else {
			c.traceRing[c.traceNext] = TraceEntry{PC: d.pc2, Inst: d.inst2}
		}
		c.traceNext = (c.traceNext + 1) % c.TraceDepth
	}
}

func stepUnknown(c *Core, d *decoded) rv32.Op {
	c.fail(ErrIllegalInstr, c.PC, d.op.String())
	return d.op
}

func stepLUI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, concolic.Concrete(uint32(d.imm)))
	if !c.Halted() {
		c.PC = d.npc
	}
	return d.op
}

func stepAUIPC(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, concolic.Concrete(d.pc+uint32(d.imm)))
	if !c.Halted() {
		c.PC = d.npc
	}
	return d.op
}

func stepJAL(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, concolic.Concrete(d.npc))
	c.PC = d.pc + uint32(d.imm)
	return d.op
}

func stepJALR(c *Core, d *decoded) rv32.Op {
	target := c.reg(d.rs1)
	taddr := c.concretize(target, "jump target")
	c.setReg(d.rd, concolic.Concrete(d.npc))
	c.PC = (taddr + uint32(d.imm)) &^ 1
	return d.op
}

func stepBranch(c *Core, d *decoded) rv32.Op {
	o := c.Ops
	a, b := c.reg(d.rs1), c.reg(d.rs2)
	var taken bool
	var cond *smt.Expr
	switch d.op {
	case rv32.OpBEQ:
		taken, cond = o.CmpEq(a, b)
	case rv32.OpBNE:
		taken, cond = o.CmpNe(a, b)
	case rv32.OpBLT:
		taken, cond = o.CmpLt(a, b)
	case rv32.OpBGE:
		taken, cond = o.CmpGe(a, b)
	case rv32.OpBLTU:
		taken, cond = o.CmpLtu(a, b)
	default:
		taken, cond = o.CmpGeu(a, b)
	}
	if cond != nil {
		flipTo := d.npc
		if !taken {
			flipTo = d.pc + uint32(d.imm)
		}
		c.branchFlip(taken, cond, flipTo)
	}
	if taken {
		c.PC = d.pc + uint32(d.imm)
	} else {
		c.PC = d.npc
	}
	return d.op
}

func stepLoad(c *Core, d *decoded) rv32.Op {
	addr := c.effAddr(d.rs1, d.imm)
	if c.Halted() {
		return d.op
	}
	if !c.memLoad(addr, int(d.msize), d.rd, d.signed, d.npc) {
		return d.op // context switched; bbAbort set by enterPeripheral
	}
	if !c.Halted() {
		c.PC = d.npc
	}
	return d.op
}

func stepStore(c *Core, d *decoded) rv32.Op {
	addr := c.effAddr(d.rs1, d.imm)
	if c.Halted() {
		return d.op
	}
	if !c.memStore(addr, int(d.msize), c.reg(d.rs2), d.npc) {
		return d.op
	}
	if !c.Halted() {
		c.PC = d.npc
	}
	return d.op
}

// aluTail advances the PC after a non-branching record, matching the
// fallthrough epilogue of the legacy execute switch.
func aluTail(c *Core, d *decoded) rv32.Op {
	if !c.Halted() {
		c.PC = d.npc
	}
	return d.op
}

func stepADDI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Add(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepSLTI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Slt(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepSLTIU(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sltu(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepXORI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Xor(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepORI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Or(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepANDI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.And(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepSLLI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sll(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepSRLI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Srl(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepSRAI(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sra(c.reg(d.rs1), concolic.Concrete(uint32(d.imm))))
	return aluTail(c, d)
}

func stepADD(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Add(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepSUB(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sub(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepSLL(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sll(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepSLT(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Slt(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepSLTU(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sltu(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepXOR(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Xor(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepSRL(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Srl(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepSRA(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Sra(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepOR(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Or(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepAND(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.And(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepMUL(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Mul(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepMULH(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.MulH(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepMULHSU(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.MulHSU(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepMULHU(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.MulHU(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepDIV(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Div(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepDIVU(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.DivU(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepREM(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.Rem(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepREMU(c *Core, d *decoded) rv32.Op {
	c.setReg(d.rd, c.Ops.RemU(c.reg(d.rs1), c.reg(d.rs2)))
	return aluTail(c, d)
}

func stepFENCE(c *Core, d *decoded) rv32.Op {
	// No-op on a single-hart VP (block-terminal for FENCE.I conservatism).
	return aluTail(c, d)
}

func stepECALL(c *Core, d *decoded) rv32.Op {
	c.ecall()
	if c.Halted() {
		return d.op
	}
	// CTE_return redirects the PC; only advance when the ecall left it in
	// place.
	if c.PC == d.pc {
		c.PC = d.npc
	}
	return d.op
}

func stepEBREAK(c *Core, d *decoded) rv32.Op {
	c.fail(ErrAssertFail, c.PC, "ebreak")
	return d.op
}

func stepMRET(c *Core, d *decoded) rv32.Op {
	const mieBit, mpieBit = uint32(1 << 3), uint32(1 << 7)
	c.MStatus = c.MStatus&^mieBit | (c.MStatus&mpieBit)>>4
	c.MStatus |= mpieBit
	c.PC = c.MEPC
	for _, det := range c.trapDet {
		det.OnMRet(c)
	}
	return d.op
}

func stepWFI(c *Core, d *decoded) rv32.Op {
	c.waitForInterrupt()
	return aluTail(c, d)
}

func stepCSR(c *Core, d *decoded) rv32.Op {
	old := c.readCSR(uint16(d.imm))
	v := c.reg(d.rs1)
	nv := c.concretizeVal(v, "csr write")
	switch d.op {
	case rv32.OpCSRRW:
		c.writeCSR(uint16(d.imm), nv)
	case rv32.OpCSRRS:
		if d.rs1 != 0 {
			c.writeCSR(uint16(d.imm), old|nv)
		}
	case rv32.OpCSRRC:
		if d.rs1 != 0 {
			c.writeCSR(uint16(d.imm), old&^nv)
		}
	}
	c.setReg(d.rd, concolic.Concrete(old))
	return aluTail(c, d)
}

func stepCSRI(c *Core, d *decoded) rv32.Op {
	old := c.readCSR(uint16(d.imm))
	z := uint32(d.rs2)
	switch d.op {
	case rv32.OpCSRRWI:
		c.writeCSR(uint16(d.imm), z)
	case rv32.OpCSRRSI:
		if z != 0 {
			c.writeCSR(uint16(d.imm), old|z)
		}
	case rv32.OpCSRRCI:
		if z != 0 {
			c.writeCSR(uint16(d.imm), old&^z)
		}
	}
	c.setReg(d.rd, concolic.Concrete(old))
	return aluTail(c, d)
}

// stepFusedLI retires a fused lui/auipc+addi pair: both destination
// registers are written from precomputed constants. When pairing would
// be observable (canPair), the record unfuses itself: only the first
// instruction executes and the block aborts, so the dispatcher re-enters
// at the second instruction through a fresh block.
func stepFusedLI(c *Core, d *decoded) rv32.Op {
	if !c.canPair() {
		c.setReg(d.rd, concolic.Concrete(d.k1))
		if !c.Halted() {
			c.PC = d.pc2
		}
		c.bbAbort = true
		return d.op
	}
	c.setReg(d.rd, concolic.Concrete(d.k1))
	c.pairBoundary(d)
	c.setReg(d.rd2, concolic.Concrete(d.k))
	c.PC = d.npc2
	return d.op2
}

// stepFusedCmpBr retires a fused slt*+beqz/bnez pair on the concrete
// fast path. Symbolic compare operands unfuse (the compare must mint its
// shadow expression and the branch must run the full EPC/TC protocol at
// its own PC), as does any pending event or budget edge.
func stepFusedCmpBr(c *Core, d *decoded) rv32.Op {
	a := c.reg(d.rs1)
	var bv concolic.Value
	if d.op == rv32.OpSLTI || d.op == rv32.OpSLTIU {
		bv = concolic.Concrete(uint32(d.imm))
	} else {
		bv = c.reg(d.rs2)
	}
	if a.Sym != nil || bv.Sym != nil || !c.canPair() {
		var v concolic.Value
		if d.op == rv32.OpSLT || d.op == rv32.OpSLTI {
			v = c.Ops.Slt(a, bv)
		} else {
			v = c.Ops.Sltu(a, bv)
		}
		c.setReg(d.rd, v)
		if !c.Halted() {
			c.PC = d.pc2
		}
		c.bbAbort = true
		return d.op
	}
	var lt bool
	if d.op == rv32.OpSLT || d.op == rv32.OpSLTI {
		lt = int32(a.C) < int32(bv.C)
	} else {
		lt = a.C < bv.C
	}
	var res uint32
	if lt {
		res = 1
	}
	c.setReg(d.rd, concolic.Concrete(res))
	c.pairBoundary(d)
	if (res != 0) == (d.op2 == rv32.OpBNE) {
		c.PC = d.pc2 + uint32(d.imm2)
	} else {
		c.PC = d.npc2
	}
	return d.op2
}
