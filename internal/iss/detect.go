package iss

import (
	"fmt"
	"sort"
	"sync"
)

// Pluggable bug detectors. The runtime checks of §3.1.1/§4.2.2 used to
// be a closed ErrKind switch hard-wired into the memory and ecall
// paths; detectors make the set open: each detector observes a narrow
// slice of the execution (memory accesses, heap protect/unprotect
// events, trap entry/exit) and may raise a SimError with its own kind.
// A core carries an ordered detector list — iss.New installs
// DefaultDetectors (the paper's heap guard-zone check); engines and the
// CLI swap in richer sets by name (-detectors). Detectors are part of
// the cloned VP state, so per-path detector state (UAF quarantines,
// armed canaries, active IRQ causes) forks with the path.

// Detector is the base interface every bug detector implements. A
// detector additionally implements one or more of AccessDetector,
// HeapDetector, TrapDetector and CanaryDetector to receive events.
type Detector interface {
	// Kind names the detector (stable, kebab-case; doubles as the
	// registry key and the classification key for guest bug tables).
	Kind() string
	// CloneDetector deep-copies per-path state (the VP is cloned before
	// every explored input, and forked at divergence points).
	CloneDetector() Detector
}

// AccessDetector observes every checked data memory access (after the
// null-pointer and alignment checks). Returning a non-nil error fails
// the path.
type AccessDetector interface {
	Detector
	OnAccess(c *Core, addr uint32, size int, isWrite bool) *SimError
}

// HeapDetector observes the protected-heap lifecycle driven by the
// CTE_register_protected_memory / CTE_free_protected_memory ecalls
// (the pvPortMalloc/vPortFree wrappers of paper Fig. 5). OnUnprotect
// sees the number of guard zones that were actually removed (2 for a
// live allocation, 0 for an unknown or already-freed block) and may
// fail the path.
type HeapDetector interface {
	Detector
	OnProtect(c *Core, block, size uint32)
	OnUnprotect(c *Core, block, size uint32, removedZones int) *SimError
}

// TrapDetector observes machine trap entry (takeInterrupt) and exit
// (mret). OnTrap may fail the path.
type TrapDetector interface {
	Detector
	OnTrap(c *Core, cause uint32) *SimError
	OnMRet(c *Core)
}

// CanaryDetector receives the CTE_canary_arm / CTE_canary_disarm
// ecalls. When no canary detector is attached the ecalls are no-ops,
// so instrumented guests run unchanged under a plain detector set.
type CanaryDetector interface {
	Detector
	Arm(c *Core, addr, size uint32)
	Disarm(c *Core, addr uint32)
}

// --- registry ---

var (
	detMu      sync.RWMutex
	detFactory = map[string]func() Detector{}
)

// RegisterDetector makes a detector constructible by name (NewDetector,
// Core.AttachDetectorSet, cmd/cte -detectors). Registering an existing
// kind replaces the factory.
func RegisterDetector(kind string, factory func() Detector) {
	detMu.Lock()
	defer detMu.Unlock()
	detFactory[kind] = factory
}

// NewDetector constructs a registered detector by kind.
func NewDetector(kind string) (Detector, error) {
	detMu.RLock()
	f := detFactory[kind]
	detMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("iss: unknown detector %q (registered: %v)", kind, RegisteredDetectors())
	}
	return f(), nil
}

// RegisteredDetectors lists the registered detector kinds, sorted.
func RegisteredDetectors() []string {
	detMu.RLock()
	defer detMu.RUnlock()
	kinds := make([]string, 0, len(detFactory))
	for k := range detFactory {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// DefaultDetectors returns the detector set iss.New installs: the
// paper's heap guard-zone overflow check. Richer sets are opt-in.
func DefaultDetectors() []Detector {
	return []Detector{newHeapGuard()}
}

func init() {
	RegisterDetector(KindHeapGuard, func() Detector { return newHeapGuard() })
	RegisterDetector(KindHeapUAF, func() Detector { return newHeapUAF() })
	RegisterDetector(KindStackCanary, func() Detector { return newStackCanary() })
	RegisterDetector(KindIRQReentrancy, func() Detector { return newIRQReent() })
}

// Registered detector kinds.
const (
	KindHeapGuard     = "heap-guard"
	KindHeapUAF       = "heap-uaf"
	KindStackCanary   = "stack-canary"
	KindIRQReentrancy = "irq-reentrancy"
)

// --- Core attachment ---

// SetDetectors replaces the core's detector list (order is the event
// dispatch order). Passing DefaultDetectors() restores the stock set;
// an empty call disables all pluggable checks.
func (c *Core) SetDetectors(ds ...Detector) {
	c.detectors = append([]Detector(nil), ds...)
	c.deriveDetectors()
}

// AttachDetector appends one detector to the current set.
func (c *Core) AttachDetector(d Detector) {
	c.detectors = append(c.detectors, d)
	c.deriveDetectors()
}

// AttachDetectorSet resolves names through the registry and replaces
// the detector set. The name "all" expands to every registered kind;
// nil keeps the current set unchanged.
func (c *Core) AttachDetectorSet(names []string) error {
	if names == nil {
		return nil
	}
	var ds []Detector
	for _, n := range names {
		if n == "all" {
			for _, k := range RegisteredDetectors() {
				d, err := NewDetector(k)
				if err != nil {
					return err
				}
				ds = append(ds, d)
			}
			continue
		}
		d, err := NewDetector(n)
		if err != nil {
			return err
		}
		ds = append(ds, d)
	}
	c.SetDetectors(ds...)
	return nil
}

// DetectorKinds lists the kinds attached to this core, in dispatch
// order.
func (c *Core) DetectorKinds() []string {
	kinds := make([]string, len(c.detectors))
	for i, d := range c.detectors {
		kinds[i] = d.Kind()
	}
	return kinds
}

// deriveDetectors rebuilds the per-event dispatch slices.
func (c *Core) deriveDetectors() {
	c.accessDet, c.heapDet, c.trapDet, c.canaryDet = nil, nil, nil, nil
	for _, d := range c.detectors {
		if a, ok := d.(AccessDetector); ok {
			c.accessDet = append(c.accessDet, a)
		}
		if h, ok := d.(HeapDetector); ok {
			c.heapDet = append(c.heapDet, h)
		}
		if t, ok := d.(TrapDetector); ok {
			c.trapDet = append(c.trapDet, t)
		}
		if k, ok := d.(CanaryDetector); ok {
			c.canaryDet = append(c.canaryDet, k)
		}
	}
}

// cloneDetectors deep-copies the detector list into clone n.
func (c *Core) cloneDetectorsInto(n *Core) {
	if len(c.detectors) == 0 {
		n.detectors, n.accessDet, n.heapDet, n.trapDet, n.canaryDet = nil, nil, nil, nil, nil
		return
	}
	n.detectors = make([]Detector, len(c.detectors))
	for i, d := range c.detectors {
		n.detectors[i] = d.CloneDetector()
	}
	n.deriveDetectors()
}

// --- heap-guard: the paper's guard-zone overflow/free checks ---

// heapGuard scans the protected zones registered around heap blocks
// (Fig. 5) on every access, and classifies bad frees. It is stateless —
// the zone list lives on the Core so BMC's ZonesSnapshot keeps working.
type heapGuard struct{}

func newHeapGuard() *heapGuard { return &heapGuard{} }

func (g *heapGuard) Kind() string            { return KindHeapGuard }
func (g *heapGuard) CloneDetector() Detector { return g }

func (g *heapGuard) OnAccess(c *Core, addr uint32, size int, isWrite bool) *SimError {
	for i := range c.zones {
		z := &c.zones[i]
		if addr < z.Start+z.Size && addr+uint32(size) > z.Start {
			kind := ErrProtectedRead
			if isWrite {
				kind = ErrProtectedWrite
			}
			return &SimError{Kind: kind, PC: c.PC, Addr: addr,
				Msg: fmt.Sprintf("protected zone of block %#x", z.Block)}
		}
	}
	return nil
}

func (g *heapGuard) OnProtect(c *Core, block, size uint32) {}

func (g *heapGuard) OnUnprotect(c *Core, block, size uint32, removedZones int) *SimError {
	if block == 0 {
		return &SimError{Kind: ErrBadFree, PC: c.PC, Addr: block, Msg: "free(NULL)"}
	}
	switch removedZones {
	case 2:
		return nil // both guard zones removed
	case 0:
		return &SimError{Kind: ErrDoubleFree, PC: c.PC, Addr: block,
			Msg: "no protected zones registered for block"}
	default:
		return &SimError{Kind: ErrBadFree, PC: c.PC, Addr: block,
			Msg: "inconsistent protected zones"}
	}
}

// --- heap-uaf: use-after-free quarantine ---

// quarantineCap bounds the freed-range ring; old entries fall off, so
// very long-lived sessions trade detection of ancient frees for bounded
// clone cost.
const quarantineCap = 64

type freedRange struct{ start, end uint32 }

// heapUAF remembers recently freed heap blocks (as reported by the
// vPortFree wrapper's CTE_free_protected_memory) and flags any access
// that touches a quarantined range before it is re-allocated.
type heapUAF struct {
	freed []freedRange
}

func newHeapUAF() *heapUAF { return &heapUAF{} }

func (u *heapUAF) Kind() string { return KindHeapUAF }
func (u *heapUAF) CloneDetector() Detector {
	return &heapUAF{freed: append([]freedRange(nil), u.freed...)}
}

func (u *heapUAF) OnAccess(c *Core, addr uint32, size int, isWrite bool) *SimError {
	end := addr + uint32(size)
	for _, r := range u.freed {
		if addr < r.end && end > r.start {
			return &SimError{Kind: ErrUseAfterFree, PC: c.PC, Addr: addr,
				Msg: fmt.Sprintf("freed block [%#x,%#x)", r.start, r.end)}
		}
	}
	return nil
}

func (u *heapUAF) OnProtect(c *Core, block, size uint32) {
	// The allocator reused quarantined memory: those ranges are live
	// again and must stop firing.
	end := block + size
	kept := u.freed[:0]
	for _, r := range u.freed {
		if block < r.end && end > r.start {
			continue
		}
		kept = append(kept, r)
	}
	u.freed = kept
}

func (u *heapUAF) OnUnprotect(c *Core, block, size uint32, removedZones int) *SimError {
	if block == 0 || removedZones != 2 || size == 0 {
		return nil // bad frees are heap-guard's call; nothing to quarantine
	}
	if len(u.freed) >= quarantineCap {
		u.freed = u.freed[1:]
	}
	u.freed = append(u.freed, freedRange{start: block, end: block + size})
	return nil
}

// --- stack-canary: guest-armed write tripwires ---

type canaryRegion struct{ start, end uint32 }

// stackCanary tracks regions armed by the guest via CTE_canary_arm
// (e.g. the tail of a parser's reassembly buffer, or the word below a
// task stack). Any write that overlaps an armed region is a stack/
// buffer smash; reads are allowed so the guest may verify the canary
// itself.
type stackCanary struct {
	armed []canaryRegion
}

func newStackCanary() *stackCanary { return &stackCanary{} }

func (s *stackCanary) Kind() string { return KindStackCanary }
func (s *stackCanary) CloneDetector() Detector {
	return &stackCanary{armed: append([]canaryRegion(nil), s.armed...)}
}

func (s *stackCanary) Arm(c *Core, addr, size uint32) {
	if size == 0 {
		return
	}
	s.armed = append(s.armed, canaryRegion{start: addr, end: addr + size})
}

func (s *stackCanary) Disarm(c *Core, addr uint32) {
	kept := s.armed[:0]
	for _, r := range s.armed {
		if r.start == addr {
			continue
		}
		kept = append(kept, r)
	}
	s.armed = kept
}

func (s *stackCanary) OnAccess(c *Core, addr uint32, size int, isWrite bool) *SimError {
	if !isWrite {
		return nil
	}
	end := addr + uint32(size)
	for _, r := range s.armed {
		if addr < r.end && end > r.start {
			return &SimError{Kind: ErrStackSmash, PC: c.PC, Addr: addr,
				Msg: fmt.Sprintf("write into armed canary [%#x,%#x)", r.start, r.end)}
		}
	}
	return nil
}

// --- irq-reentrancy: same-cause nested trap entry ---

// irqReent keeps the stack of active trap causes. Re-entering a
// handler whose cause is already active (the guest re-enabled
// mstatus.MIE inside the handler and the same line fired again) is
// reported; nesting *different* causes is legitimate prioritized
// interrupt handling and passes.
type irqReent struct {
	active []uint32
}

func newIRQReent() *irqReent { return &irqReent{} }

func (r *irqReent) Kind() string { return KindIRQReentrancy }
func (r *irqReent) CloneDetector() Detector {
	return &irqReent{active: append([]uint32(nil), r.active...)}
}

func (r *irqReent) OnTrap(c *Core, cause uint32) *SimError {
	for _, a := range r.active {
		if a == cause {
			return &SimError{Kind: ErrIRQReentrancy, PC: c.PC, Addr: cause,
				Msg: fmt.Sprintf("handler for cause %d re-entered (depth %d)", cause, len(r.active)+1)}
		}
	}
	r.active = append(r.active, cause)
	return nil
}

func (r *irqReent) OnMRet(c *Core) {
	if len(r.active) > 0 {
		r.active = r.active[:len(r.active)-1]
	}
}
