// Package iss implements the concolic RV32IMC instruction set simulator
// at the heart of the CTE virtual prototype (paper §3). The ISS operates
// on concolic data types, propagates symbolic constraints during
// execution, tracks the execution path condition (EPC) and emits trace
// conditions (TCs) at symbolic branches and at assume/assert sites. It
// also implements the CTE-interface used by peripheral software models:
// notifications with a cycle-accurate timing model, context switching
// between the software under test and peripheral functions, interrupt
// lines, and protected memory zones for heap overflow detection.
//
// # Execution engines
//
// The ISS has two architecturally equivalent execution engines. Step
// (core.go, exec.go) is the legacy reference: fetch, decode and a
// switch over every opcode, once per instruction. Run normally executes
// through the predecoded basic-block cache instead (bbcache.go,
// dispatch.go): straight-line blocks are decoded once into pre-resolved
// operation records dispatched through per-opcode handler functions,
// with adjacent hot pairs fused into superinstructions. Blocks are
// invalidated when the memory they cover is written, and Core.Freeze
// publishes them into a shared layer that concurrent clones extend
// lazily — so a fuzzing or multi-path campaign decodes each block once,
// not once per execution. Core.NoBlockCache and Core.NoFusion select
// the ablation points; results (registers, counters, EPC, trace
// conditions, edge coverage) are bit-identical across all three modes.
//
// Both the concolic re-execution mode (FuzzInput replay) and the
// fuzzer's ConcreteOnly fast path — which skips all symbolic shadow
// work — run on the same cached blocks. See DESIGN.md "ISS" for the
// discovery, termination and invalidation rules.
package iss

import (
	"fmt"

	"rvcte/internal/concolic"
	"rvcte/internal/obs"
	"rvcte/internal/rv32"
	"rvcte/internal/smt"
)

// ErrKind classifies the runtime checks of §3.1.1 and §4.2.2.
type ErrKind int

const (
	ErrNone ErrKind = iota
	ErrAssertFail
	ErrAssumeFail // not an error per se: path pruned by a false assume
	ErrNullDeref
	ErrIllegalLoad
	ErrIllegalStore
	ErrMisaligned
	ErrIllegalJump
	ErrIllegalInstr
	ErrProtectedRead  // heap buffer overflow (read)
	ErrProtectedWrite // heap buffer overflow (write)
	ErrDoubleFree
	ErrBadFree
	ErrDeadlock // wfi with no pending event source
	ErrLimit    // instruction budget exhausted
	// Detector-raised kinds (detect.go).
	ErrUseAfterFree  // access to a quarantined freed heap block
	ErrStackSmash    // write into an armed stack/buffer canary region
	ErrIRQReentrancy // same-cause nested interrupt handler entry
)

var errKindNames = map[ErrKind]string{
	ErrAssertFail: "assertion failure", ErrAssumeFail: "assume pruned",
	ErrNullDeref: "null pointer dereference", ErrIllegalLoad: "illegal memory read",
	ErrIllegalStore: "illegal memory write", ErrMisaligned: "misaligned access",
	ErrIllegalJump: "invalid jump target", ErrIllegalInstr: "illegal instruction",
	ErrProtectedRead: "heap buffer overflow (read)", ErrProtectedWrite: "heap buffer overflow (write)",
	ErrDoubleFree: "double free", ErrBadFree: "free of non-allocated block",
	ErrDeadlock: "wfi deadlock", ErrLimit: "instruction limit exceeded",
	ErrUseAfterFree: "heap use after free", ErrStackSmash: "stack smashing (canary write)",
	ErrIRQReentrancy: "irq handler reentrancy",
}

func (k ErrKind) String() string {
	if s, ok := errKindNames[k]; ok {
		return s
	}
	return "ok"
}

// SimError is a simulation-terminating error detected by a runtime check.
type SimError struct {
	Kind ErrKind
	PC   uint32
	Addr uint32
	Msg  string
}

func (e *SimError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%v at pc=%#x: %s", e.Kind, e.PC, e.Msg)
	}
	return fmt.Sprintf("%v at pc=%#x addr=%#x", e.Kind, e.PC, e.Addr)
}

// TraceCond records one emitted trace condition: the conjunction of the
// first EPCLen entries of the final EPC with Cond. SiteIdx is the index
// of the emission site along the path (used for generational search).
type TraceCond struct {
	EPCLen  int
	Cond    *smt.Expr
	SiteIdx int
	// FlipFrom/FlipTo identify the control-flow edge that taking the
	// flipped direction of a conditional branch would execute (branch PC
	// and the not-followed successor). Both are zero for non-branch trace
	// conditions (concretization ladders, assume/assert negations,
	// host-model branches), which have no single flip edge. The hybrid
	// driver uses this to skip solving flips whose target edge concrete
	// fuzzing has already covered (Driller's "only solve what fuzzing
	// cannot reach").
	FlipFrom uint32
	FlipTo   uint32
}

// EdgeIndex returns the EdgeMap slot that executing the control-flow
// edge from→to would hit. It must mirror the per-instruction update in
// Step: cur = (pc>>1)*K; idx = cur ^ (prev>>1); prev = cur.
func EdgeIndex(from, to uint32, mapLen int) uint32 {
	cur := (to >> 1) * 0x9e3779b1
	prev := ((from >> 1) * 0x9e3779b1) >> 1
	return (cur ^ prev) & uint32(mapLen-1)
}

// HostModel is a peripheral implemented on the host side with full
// access to concolic values — the "C++ peripheral models with a more
// comprehensive abstraction layer" of the paper's future work (§5 item
// 1). It avoids the software-model transformation step at the price of
// writing concolic-aware code per peripheral (the trade-off §3.1.2
// calls "fully specialized").
type HostModel interface {
	// Transport handles one bus access at a peripheral-local address.
	// For reads the model returns the value; for writes v holds the
	// stored value. The core gives access to the CTE facilities
	// (NotifyHostModel, TriggerIRQ, MakeSymbolicValue, AssumeValue...).
	Transport(c *Core, addr uint32, size int, v concolic.Value, isRead bool) concolic.Value
	// Notify delivers a scheduled callback (the host-side counterpart
	// of a CTE_notify-driven process).
	Notify(c *Core, event uint32)
	// CloneModel deep-copies the model state (the VP is cloned before
	// every explored input).
	CloneModel() HostModel
}

// Peripheral describes one memory-mapped peripheral: either a
// software model (paper §3.2 — accesses are routed to the guest
// Transport function via a context switch) or a host model (future
// work §5.1 — Host is non-nil and handles accesses directly).
type Peripheral struct {
	Name      string
	Base      uint32
	Size      uint32
	Transport uint32 // guest address of transport(addr, data, size, is_read)
	Buf       uint32 // guest address of the transaction data array
	Host      HostModel
}

// Zone is a protected memory region guarding a heap allocation
// (paper Fig. 5): [Start, Start+Size) must not be touched.
type Zone struct {
	Start uint32
	Size  uint32
	Block uint32 // user block address this zone protects (for messages)
}

// savedCtx is a saved execution context for peripheral context switching
// (paper §3.2.2): registers and PC, plus the memory operation to finish
// when CTE_return fires.
type savedCtx struct {
	regs    [32]concolic.Value
	pc      uint32
	pending pendingOp
}

type pendingOp struct {
	active bool
	isLoad bool
	size   int
	rd     uint8
	buf    uint32 // transaction buffer to read the result from
	signed bool
}

// notification is a pending CTE_notify: either a guest function Fn
// (invoked via context switch) or a host-model callback (resolved
// through the peripheral index so clones dispatch to their own model
// instance).
type notification struct {
	Fn        uint32
	HostIdx   int // index+1 into Peripherals; 0 = guest notification
	HostEvent uint32
	Due       uint64
}

// Config fixes the memory map of the VP.
type Config struct {
	RamBase uint32
	RamSize uint32
	// StackTop is where sp starts; 0 means RamBase+RamSize.
	StackTop uint32
	// PeriphStackTop is the dedicated stack for peripheral SW models;
	// 0 disables the dedicated stack (peripherals then run on the
	// interrupted software's stack).
	PeriphStackTop uint32
	// MaxInstr bounds one run; 0 means no limit.
	MaxInstr uint64
}

// Core is the concolic ISS state. Create with New, load an image, then
// Run. Clone snapshots the whole VP between exploration runs.
type Core struct {
	B   *smt.Builder
	Ops concolic.Ops
	Mem *concolic.Memory

	Regs [32]concolic.Value
	PC   uint32

	// Machine-mode CSRs.
	MStatus  uint32
	MIE      uint32
	MIP      uint32
	MTVec    uint32
	MEPC     uint32
	MCause   uint32
	MTVal    uint32
	MScratch uint32

	Cycles     uint64
	InstrCount uint64

	Cfg         Config
	Peripherals []Peripheral

	// CTE state.
	EPC       []*smt.Expr // path condition, append-only within a run
	Trace     []TraceCond
	siteCount int
	Bound     int // sites below Bound do not emit TCs (generational search)
	Input     smt.Assignment

	notifications []notification
	ctxStack      []savedCtx
	zones         []Zone

	symCounters map[string]int // per-name make_symbolic counters

	Exited   bool
	ExitCode uint32
	Err      *SimError

	// TrackCoverage enables per-run PC coverage collection (used by the
	// coverage-guided search strategy, paper §5 future work 3).
	TrackCoverage bool
	Coverage      map[uint32]struct{}

	// NoConcretizationTCs disables the §2.2 optional trace conditions at
	// size concretizations (used by the ablation benchmarks).
	NoConcretizationTCs bool

	// AddressTCs additionally emits alternative-value trace conditions
	// when a symbolic memory address is concretized, letting exploration
	// steer accesses into protected zones (off by default: symbolic
	// addresses are frequent and the extra queries are only worthwhile
	// for out-of-bounds hunting on index-driven code).
	AddressTCs bool

	// SymbolicTimes enables exploration of symbolic CTE_notify delays
	// (paper future work §5.2): alternative firing times become trace
	// conditions, so interrupt/notification orderings relative to the
	// software are explored and timing bugs (lost updates, races)
	// surface.
	SymbolicTimes bool

	// Fuzz-mode state (hybrid fuzzing, DESIGN.md "Hybrid fuzzing").
	// When FuzzInput is non-nil, make-symbolic sites consume their
	// concrete bytes from this flat stream in execution order instead of
	// the Input assignment. FuzzPos keeps advancing past the end of the
	// stream (missing bytes read as zero), so after a run it reports the
	// total number of input bytes the path demanded.
	FuzzInput []byte
	FuzzPos   int
	// ConcreteOnly skips all symbolic shadow state: make-symbolic sites
	// store plain bytes, so no SMT variables are minted, the EPC stays
	// empty and no trace conditions are emitted — the concrete fast path
	// the fuzzer runs on. Without it (concolic replay of a fuzz input)
	// variables are minted as usual, Input records the stream bytes, and
	// SymOrder records the minted variable ids in consumption order so a
	// solver model can be mapped back onto the byte stream.
	ConcreteOnly bool
	SymOrder     []int

	// EdgeMap, when non-nil, collects hashed PC-pair edge coverage
	// (AFL-style; the length must be a power of two). Unlike the
	// Coverage map it costs one multiply, one xor and a saturating
	// increment per retired instruction — cheap enough for fuzzing
	// throughput. With ProtoStates > 1 the map is split into that many
	// equal power-of-two banks and each edge lands in the bank selected
	// by the guest's current protocol state (stateful-fuzzer
	// state × edge coverage): revisiting an edge in a new protocol
	// state counts as new coverage.
	EdgeMap []byte
	prevLoc uint32

	// ProtoStateAddr, when non-zero, names the guest byte holding the
	// protocol state (e.g. a TCP session state variable). Writes that
	// cover the address re-read it at the next instruction boundary:
	// the edge map switches to the bank for the new state (clamped to
	// ProtoStates-1) and ProtoProbe, when set, observes the transition —
	// the inter-packet guest-state probe of multi-packet campaigns.
	ProtoStateAddr uint32
	ProtoStates    int
	ProtoProbe     func(c *Core, state uint32)
	protoBank      uint32
	protoDirty     bool
	edgeMask       uint32 // per-bank index mask; 0 = not yet derived

	// Pluggable bug detectors (detect.go) with per-event dispatch
	// slices derived by deriveDetectors.
	detectors []Detector
	accessDet []AccessDetector
	heapDet   []HeapDetector
	trapDet   []TrapDetector
	canaryDet []CanaryDetector

	// TraceDepth keeps a ring buffer of the last N executed
	// instructions for error diagnosis (0 disables).
	TraceDepth int
	traceRing  []TraceEntry
	traceNext  int

	// ExecHook, when set, may take over execution of an instruction
	// (returning true). Used by the nested-interpretation baseline
	// (internal/nestedvm) that models running the VP inside a generic
	// symbolic execution engine like S2E.
	ExecHook func(c *Core, inst rv32.Inst) bool

	Output []byte // console output from the guest

	// ObsInstr/ObsExecs, when non-nil, are observability sinks
	// (internal/obs): every Run call adds the instructions it retired to
	// ObsInstr and one completed execution to ObsExecs when it returns.
	// Counting happens once per run, not per instruction, so the
	// simulation loop stays unobserved. Clones inherit the pointers, so
	// one counter pair aggregates across every core of a campaign (the
	// counters are atomic).
	ObsInstr *obs.Counter
	ObsExecs *obs.Counter
	// ObsBBHits/ObsBBMisses/ObsBBInval aggregate the block-cache hit,
	// miss and invalidation counts ("iss.bb.*"), flushed once per Run
	// like ObsInstr.
	ObsBBHits   *obs.Counter
	ObsBBMisses *obs.Counter
	ObsBBInval  *obs.Counter

	// NoBlockCache disables the predecoded basic-block cache: Run then
	// drives the legacy fetch/decode/execute Step loop. Used by the
	// ablation benchmarks as the honest pre-cache baseline.
	NoBlockCache bool
	// NoFusion keeps the block cache but disables the superinstruction
	// pass that fuses hot adjacent pairs (lui+addi, auipc+addi,
	// compare+branch).
	NoFusion bool

	// CaptureForks enables checkpointing at trace-condition emission sites
	// (fork.go): whenever a TC is emitted, a copy-on-write clone of the VP
	// as of the start of the current instruction is stashed in forkPoints,
	// keyed by site index. The engine later resumes one of these clones
	// with a new solver model substituted (Fork), skipping re-execution of
	// the path prefix. Off by default — capture costs one Clone per TC
	// site.
	CaptureForks bool
	// ForkMinPrefix skips checkpoint capture while InstrCount is below
	// the bound: on short prefixes a snapshot restart re-executes less
	// work than a capture costs, so those children fall back to restarts
	// (which are bit-identical by construction). Zero captures always.
	ForkMinPrefix uint64
	forkPoints    map[int]*Core
	// capMemo is the memory snapshot of the most recent checkpoint,
	// reusable by the next capture as long as no memory write happened in
	// between (noteMemWrite clears it). Checkpoint cores never execute —
	// Fork always clones them first — so sharing one Memory between
	// consecutive checkpoints is read-only and saves the dominant cost of
	// capture (the page-table copy) on branch-dense code.
	capMemo *concolic.Memory
	// hostDepth > 0 while a host peripheral model is running (Transport or
	// Notify): TCs emitted there happen mid-mutation of model state, so
	// fork capture is skipped and those children fall back to a snapshot
	// restart. stepUnsafe marks the rest of an instruction after a
	// boundary host-model notification already fired (resuming a capture
	// from before it would deliver the notification twice).
	hostDepth  int
	stepUnsafe bool
	// Pre-instruction rewind state for mid-instruction TC emission
	// (recordPreState), valid only while CaptureForks is set.
	preEPCLen   int
	preSite     int
	preRingLen  int
	preRingNext int
	// outSym shadows Output with the symbolic expression of each byte that
	// was printed from a symbolic value (nil for concrete bytes); indexes
	// align with Output. Maintained only under CaptureForks so forked
	// paths can re-evaluate prefix output under their new model.
	outSym []*smt.Expr

	// bb is the per-core translation cache (bbcache.go). bbAbort asks the
	// block runner to stop after the current record (peripheral context
	// switch, block invalidation, runtime unfusing); runLimit mirrors
	// Run's effective budget for the fused-pair feasibility check.
	bb       *bbCache
	bbAbort  bool
	runLimit uint64

	// CyclesPer assigns each executed instruction a fixed cycle cost
	// (paper §3.2: "a simple timing model that assigns each RISC-V
	// instruction a fixed number of cycles").
	CyclesPer func(op rv32.Op) uint64
}

// New creates a core with the given builder and configuration.
func New(b *smt.Builder, cfg Config) *Core {
	if cfg.StackTop == 0 {
		cfg.StackTop = cfg.RamBase + cfg.RamSize
	}
	c := &Core{
		B:           b,
		Ops:         concolic.Ops{B: b},
		Mem:         concolic.NewMemory(b),
		Cfg:         cfg,
		symCounters: map[string]int{},
		Input:       smt.Assignment{},
	}
	c.Regs[2] = concolic.Concrete(cfg.StackTop)
	c.bb = newBBCache(cfg.RamBase, cfg.RamSize)
	c.Mem.OnWrite = c.noteMemWrite
	c.SetDetectors(DefaultDetectors()...)
	return c
}

// Freeze prepares the core to serve as a shared exploration snapshot:
// its memory pages are marked copy-on-write once, so subsequent Clone
// calls never mutate snapshot state and may run concurrently from
// multiple worker goroutines. Decoded basic blocks are promoted into an
// immutable shared layer at the same time, so clones start with the
// snapshot's translations instead of re-decoding. The frozen core
// itself must no longer be stepped or mutated while clones are
// outstanding.
func (c *Core) Freeze() {
	c.Mem.Freeze()
	if c.bb != nil {
		c.bb.freeze()
	}
}

// Clone deep-copies the VP state so a new input can be executed from the
// same starting point (paper §3.1.1: "The VP is cloned each time before
// executing a new input"). The SMT builder is shared (expressions are
// immutable and the builder is internally locked). After Freeze, Clone
// only reads the receiver and is safe to call concurrently.
func (c *Core) Clone() *Core {
	n := c.cloneNoMem()
	n.Mem = c.Mem.Clone()
	n.Mem.OnWrite = n.noteMemWrite
	return n
}

// cloneNoMem is Clone without the memory snapshot: n.Mem still aliases
// c.Mem and must be replaced by the caller (Clone installs a fresh COW
// clone; captureFork may substitute a memo shared with the previous
// checkpoint).
func (c *Core) cloneNoMem() *Core {
	n := &Core{}
	*n = *c
	n.EPC = append([]*smt.Expr(nil), c.EPC...)
	n.Trace = append([]TraceCond(nil), c.Trace...)
	n.notifications = append([]notification(nil), c.notifications...)
	n.ctxStack = append([]savedCtx(nil), c.ctxStack...)
	n.zones = append([]Zone(nil), c.zones...)
	n.Peripherals = append([]Peripheral(nil), c.Peripherals...)
	for i := range n.Peripherals {
		if n.Peripherals[i].Host != nil {
			n.Peripherals[i].Host = n.Peripherals[i].Host.CloneModel()
		}
	}
	n.Output = append([]byte(nil), c.Output...)
	n.symCounters = make(map[string]int, len(c.symCounters))
	for k, v := range c.symCounters {
		n.symCounters[k] = v
	}
	n.Input = smt.Assignment{}
	for k, v := range c.Input {
		n.Input[k] = v
	}
	n.Coverage = nil // coverage is per-run
	n.traceRing = append([]TraceEntry(nil), c.traceRing...)
	// Fork-capture state: checkpoints belong to the original (the engine
	// harvests them per path); a clone starts a clean capture epoch.
	n.forkPoints = nil
	n.capMemo = nil
	n.stepUnsafe = false
	n.outSym = append([]*smt.Expr(nil), c.outSym...)
	// Fuzz-mode state is per-run: every clone starts with a fresh stream
	// and edge map (the caller installs its own before Run).
	n.FuzzInput = nil
	n.FuzzPos = 0
	n.ConcreteOnly = false
	n.SymOrder = nil
	n.EdgeMap = nil
	n.prevLoc = 0
	n.edgeMask = 0
	n.protoBank = 0
	n.protoDirty = false
	// Detector state (UAF quarantines, armed canaries, active IRQ
	// causes) is per-path and forks with the clone.
	c.cloneDetectorsInto(n)
	// The clone shares the immutable frozen block layer (if any) and
	// rebuilds its private layer lazily; it invalidates against its own
	// memory writes through its own hook.
	n.bb = c.bb.cloneFor()
	n.bbAbort = false
	return n
}

// TraceEntry is one executed instruction in the diagnostic ring buffer.
type TraceEntry struct {
	PC   uint32
	Inst rv32.Inst
}

// RecentTrace returns the last executed instructions, oldest first
// (empty unless TraceDepth was set).
func (c *Core) RecentTrace() []TraceEntry {
	if len(c.traceRing) < c.TraceDepth {
		return append([]TraceEntry(nil), c.traceRing...)
	}
	out := make([]TraceEntry, 0, len(c.traceRing))
	for i := 0; i < len(c.traceRing); i++ {
		out = append(out, c.traceRing[(c.traceNext+i)%len(c.traceRing)])
	}
	return out
}

// LoadImage copies an assembled/linked image into memory and points the
// PC at its entry.
func (c *Core) LoadImage(origin uint32, data []byte, entry uint32) {
	c.Mem.WriteBytes(origin, data)
	c.PC = entry
}

// AddPeripheral registers a memory-mapped peripheral range.
func (c *Core) AddPeripheral(p Peripheral) { c.Peripherals = append(c.Peripherals, p) }

func (c *Core) fail(kind ErrKind, addr uint32, msg string) {
	if c.Err != nil {
		return
	}
	c.Err = &SimError{Kind: kind, PC: c.PC, Addr: addr, Msg: msg}
}

// Halted reports whether the core has stopped (exit, prune, or error).
func (c *Core) Halted() bool { return c.Exited || c.Err != nil }

// reg reads a register (x0 is always zero).
func (c *Core) reg(r uint8) concolic.Value {
	if r == 0 {
		return concolic.Concrete(0)
	}
	return c.Regs[r]
}

func (c *Core) setReg(r uint8, v concolic.Value) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// inRAM reports whether [addr, addr+n) falls in RAM.
func (c *Core) inRAM(addr uint32, n int) bool {
	return addr >= c.Cfg.RamBase && addr+uint32(n) >= addr &&
		addr+uint32(n) <= c.Cfg.RamBase+c.Cfg.RamSize
}

// findPeripheral returns the peripheral mapped at addr, or nil.
func (c *Core) findPeripheral(addr uint32) *Peripheral {
	for i := range c.Peripherals {
		p := &c.Peripherals[i]
		if addr >= p.Base && addr < p.Base+p.Size {
			return p
		}
	}
	return nil
}

// Run executes until the core halts or maxInstr instructions have
// retired (0 = use Cfg.MaxInstr; both 0 = unbounded). Execution flows
// through the predecoded basic-block cache (bbcache.go) unless an
// ExecHook is installed or NoBlockCache is set, in which case the
// legacy per-instruction Step loop runs instead.
func (c *Core) Run(maxInstr uint64) {
	if maxInstr == 0 {
		maxInstr = c.Cfg.MaxInstr
	}
	if c.ObsInstr != nil || c.ObsExecs != nil || c.ObsBBHits != nil ||
		c.ObsBBMisses != nil || c.ObsBBInval != nil {
		start := c.InstrCount
		var h0, m0, i0 uint64
		if c.bb != nil {
			h0, m0, i0 = c.bb.hits, c.bb.misses, c.bb.invals
		}
		defer func() {
			c.ObsInstr.Add(int64(c.InstrCount - start))
			c.ObsExecs.Inc()
			if c.bb != nil {
				c.ObsBBHits.Add(int64(c.bb.hits - h0))
				c.ObsBBMisses.Add(int64(c.bb.misses - m0))
				c.ObsBBInval.Add(int64(c.bb.invals - i0))
			}
		}()
	}
	if c.ExecHook != nil || c.NoBlockCache || c.bb == nil {
		for !c.Halted() {
			if maxInstr > 0 && c.InstrCount >= maxInstr {
				c.fail(ErrLimit, c.PC, fmt.Sprintf("after %d instructions", c.InstrCount))
				return
			}
			c.Step()
		}
		return
	}
	c.runLimit = maxInstr
	for !c.Halted() {
		b := c.bb.lookup(c, c.PC)
		if b == nil {
			// The instruction at PC cannot be fetched or decoded (or an
			// event pending here will redirect the PC): take one legacy
			// Step so error reporting and event delivery stay identical.
			if maxInstr > 0 && c.InstrCount >= maxInstr {
				c.fail(ErrLimit, c.PC, fmt.Sprintf("after %d instructions", c.InstrCount))
				return
			}
			c.Step()
			continue
		}
		c.runBlock(b, maxInstr)
	}
}

// Step retires one instruction (or takes one interrupt).
func (c *Core) Step() {
	if c.Halted() {
		return
	}
	if c.CaptureForks {
		c.stepUnsafe = false
	}
	// Deliver notifications and interrupts only at peripheral depth 0,
	// so peripheral functions execute atomically (they model hardware).
	if len(c.ctxStack) == 0 {
		if c.dispatchNotifications() {
			// Context-switched into a notified peripheral function; the
			// next fetch executes it.
		} else if c.takeInterrupt() {
			return
		}
	}
	if c.CaptureForks {
		c.recordPreState()
	}
	inst, ok := c.fetch()
	if !ok {
		return
	}
	if c.protoDirty {
		c.protoRefresh()
	}
	if c.EdgeMap != nil {
		if c.edgeMask == 0 {
			c.initEdgeBank()
		}
		cur := (c.PC >> 1) * 0x9e3779b1
		idx := c.protoBank + (cur^c.prevLoc)&c.edgeMask
		if c.EdgeMap[idx] != 0xff {
			c.EdgeMap[idx]++
		}
		c.prevLoc = cur >> 1
	}
	if c.TrackCoverage {
		if c.Coverage == nil {
			c.Coverage = make(map[uint32]struct{})
		}
		c.Coverage[c.PC] = struct{}{}
	}
	if c.TraceDepth > 0 {
		if len(c.traceRing) < c.TraceDepth {
			c.traceRing = append(c.traceRing, TraceEntry{PC: c.PC, Inst: inst})
		} else {
			c.traceRing[c.traceNext] = TraceEntry{PC: c.PC, Inst: inst}
		}
		c.traceNext = (c.traceNext + 1) % c.TraceDepth
	}
	if c.ExecHook == nil || !c.ExecHook(c, inst) {
		c.execute(inst)
	}
	c.InstrCount++
	if c.CyclesPer != nil {
		c.Cycles += c.CyclesPer(inst.Op)
	} else {
		c.Cycles++
	}
}

// fetch reads and decodes the instruction at PC.
func (c *Core) fetch() (rv32.Inst, bool) {
	if c.PC&1 != 0 {
		c.fail(ErrIllegalJump, c.PC, "misaligned pc")
		return rv32.Inst{}, false
	}
	if !c.inRAM(c.PC, 2) {
		c.fail(ErrIllegalJump, c.PC, "pc outside memory")
		return rv32.Inst{}, false
	}
	lo := c.Mem.Load(c.PC, 2)
	word := lo.C
	if word&3 == 3 {
		if !c.inRAM(c.PC, 4) {
			c.fail(ErrIllegalJump, c.PC, "pc outside memory")
			return rv32.Inst{}, false
		}
		hi := c.Mem.Load(c.PC+2, 2)
		word |= hi.C << 16
	}
	inst := rv32.Decode(word)
	if inst.Op == rv32.OpIllegal {
		c.fail(ErrIllegalInstr, c.PC, fmt.Sprintf("encoding %#x", word))
		return rv32.Inst{}, false
	}
	return inst, true
}

// dispatchNotifications fires due CTE_notify callbacks. Reports whether a
// context switch happened.
func (c *Core) dispatchNotifications() bool {
	for i := 0; i < len(c.notifications); i++ {
		n := c.notifications[i]
		if c.Cycles >= n.Due {
			c.notifications = append(c.notifications[:i], c.notifications[i+1:]...)
			if n.HostIdx > 0 {
				// Host-model callbacks run atomically on the host side,
				// dispatched through the (possibly cloned) peripheral.
				// Fork capture is off for the rest of this step: the
				// callback may leave further due notifications pending that
				// a resumed fork's boundary check would deliver before the
				// re-executed instruction instead of after it (stepUnsafe),
				// and TCs emitted inside the callback happen mid-mutation
				// of model state (hostDepth).
				c.stepUnsafe = true
				c.hostDepth++
				c.Peripherals[n.HostIdx-1].Host.Notify(c, n.HostEvent)
				c.hostDepth--
				return false
			}
			c.enterPeripheral(n.Fn, [4]concolic.Value{}, pendingOp{})
			return true // one at a time; the rest fire on later steps
		}
	}
	return false
}

// NotifyHostModel schedules a callback to the given host model after
// delay cycles (the host-side counterpart of CTE_notify). A pending
// notification with the same (model, event) is reset.
func (c *Core) NotifyHostModel(m HostModel, event uint32, delay uint64) {
	idx := -1
	for i := range c.Peripherals {
		if c.Peripherals[i].Host == m {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.fail(ErrIllegalInstr, c.PC, "NotifyHostModel: model not registered")
		return
	}
	for i := range c.notifications {
		if c.notifications[i].HostIdx == idx+1 && c.notifications[i].HostEvent == event {
			c.notifications[i].Due = c.Cycles + delay
			return
		}
	}
	c.notifications = append(c.notifications, notification{HostIdx: idx + 1, HostEvent: event, Due: c.Cycles + delay})
}

// TriggerIRQ drives a machine interrupt line (host-side counterpart of
// CTE_trigger_irq).
func (c *Core) TriggerIRQ(line uint32, level bool) {
	if level {
		c.MIP |= 1 << (line & 31)
	} else {
		c.MIP &^= 1 << (line & 31)
	}
}

// MakeSymbolicValue mints a fresh symbolic 32-bit value whose concrete
// part comes from the current input assignment (host-side counterpart
// of CTE_make_symbolic for register-like values). In fuzz modes the
// concrete part is drawn from the input byte stream instead.
func (c *Core) MakeSymbolicValue(name string) concolic.Value {
	if c.ConcreteOnly {
		return concolic.Concrete(c.nextFuzzWord())
	}
	gen := c.symCounters[name]
	c.symCounters[name] = gen + 1
	full := name
	if gen > 0 {
		full = fmt.Sprintf("%s#%d", name, gen)
	}
	v := c.B.Var(32, full)
	id := int(v.Val)
	if c.FuzzInput != nil {
		w := c.nextFuzzWord()
		c.Input[id] = uint64(w)
		c.SymOrder = append(c.SymOrder, id)
		return concolic.Value{C: w, Sym: v}
	}
	return concolic.Value{C: uint32(c.Input[id]), Sym: v}
}

// nextFuzzByte consumes one byte from the fuzz input stream; bytes past
// the end read as zero, but FuzzPos keeps advancing so the total demand
// of the run stays observable.
func (c *Core) nextFuzzByte() byte {
	var v byte
	if c.FuzzPos < len(c.FuzzInput) {
		v = c.FuzzInput[c.FuzzPos]
	}
	c.FuzzPos++
	return v
}

// nextFuzzWord consumes four stream bytes, little-endian.
func (c *Core) nextFuzzWord() uint32 {
	var w uint32
	for i := 0; i < 4; i++ {
		w |= uint32(c.nextFuzzByte()) << (8 * i)
	}
	return w
}

// AssumeValue applies CTE_assume semantics to a concolic condition
// (non-zero = true).
func (c *Core) AssumeValue(v concolic.Value) { c.assumeVal(v) }

// AssertValue applies CTE_assert semantics to a concolic condition.
func (c *Core) AssertValue(v concolic.Value) { c.assertVal(v) }

// takeInterrupt checks mstatus.MIE and mie/mip and vectors to mtvec.
func (c *Core) takeInterrupt() bool {
	const mieBit = 1 << 3
	if c.MStatus&mieBit == 0 {
		return false
	}
	pending := c.MIP & c.MIE
	if pending == 0 {
		return false
	}
	// Priority: external > software > timer (per privileged spec).
	var cause uint32
	switch {
	case pending&(1<<rv32.IrqMachineExternal) != 0:
		cause = rv32.IrqMachineExternal
	case pending&(1<<rv32.IrqMachineSoftware) != 0:
		cause = rv32.IrqMachineSoftware
	default:
		cause = rv32.IrqMachineTimer
	}
	c.MEPC = c.PC
	c.MCause = rv32.CauseInterruptFlag | cause
	// mstatus: MPIE <- MIE, MIE <- 0
	const mpieBit = 1 << 7
	c.MStatus = c.MStatus&^mpieBit | (c.MStatus&mieBit)<<4
	c.MStatus &^= mieBit
	c.PC = c.MTVec &^ 3
	for _, d := range c.trapDet {
		if err := d.OnTrap(c, cause); err != nil {
			if c.Err == nil {
				c.Err = err
			}
			break
		}
	}
	return true
}

// EdgeBanks resolves a protocol-state count to the edge-map bank count:
// the next power of two, so every bank length stays a power of two and
// the in-bank index can be a mask. 0 and 1 states mean one bank.
func EdgeBanks(states int) int {
	banks := 1
	for banks < states {
		banks <<= 1
	}
	return banks
}

// initEdgeBank derives the per-bank index mask from the installed edge
// map and the configured protocol-state bank count, then resolves the
// current bank. Called lazily on the first edge-map update after a map
// is installed (cloneNoMem resets the mask).
func (c *Core) initEdgeBank() {
	banks := EdgeBanks(c.ProtoStates)
	bankLen := len(c.EdgeMap) / banks
	if bankLen < 2 {
		bankLen = len(c.EdgeMap)
	}
	c.edgeMask = uint32(bankLen - 1)
	c.protoRefresh()
}

// protoRefresh re-reads the protocol-state byte after a write covered
// it: fires the inter-packet probe and switches the edge-map bank.
func (c *Core) protoRefresh() {
	c.protoDirty = false
	if c.ProtoStateAddr == 0 {
		return
	}
	b, _ := c.Mem.LoadByteRaw(c.ProtoStateAddr)
	st := uint32(b)
	if c.ProtoStates > 1 && st >= uint32(c.ProtoStates) {
		st = uint32(c.ProtoStates) - 1
	}
	if c.ProtoProbe != nil {
		c.ProtoProbe(c, st)
	}
	if c.EdgeMap != nil && c.ProtoStates > 1 && c.edgeMask != 0 {
		bank := st * (c.edgeMask + 1)
		// A map too small to hold one bank per state fell back to a
		// single shared bank in initEdgeBank; don't index past it.
		if int(bank)+int(c.edgeMask) < len(c.EdgeMap) {
			c.protoBank = bank
		}
	}
}

// WaitForInterrupt implements WFI: fast-forward the cycle counter to the
// next notification if no interrupt is pending yet.
func (c *Core) waitForInterrupt() {
	if c.MIP&c.MIE != 0 {
		return // something is already pending; wfi completes immediately
	}
	// Find the earliest notification that could eventually raise an
	// interrupt and jump time forward.
	var best uint64
	found := false
	for _, n := range c.notifications {
		if !found || n.Due < best {
			best = n.Due
			found = true
		}
	}
	if !found {
		c.fail(ErrDeadlock, c.PC, "wfi with no pending notification or interrupt")
		return
	}
	if best > c.Cycles {
		c.Cycles = best
	}
}
