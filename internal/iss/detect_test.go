package iss

import (
	"strings"
	"testing"

	"rvcte/internal/smt"
)

func detTestCore() *Core {
	return New(smt.NewBuilder(), Config{RamBase: 0x80000000, RamSize: 1 << 16})
}

// TestRegisteredDetectorKinds: the four built-in detectors are
// constructible by name and report the kind they were registered under;
// unknown names fail with the registered set in the message.
func TestRegisteredDetectorKinds(t *testing.T) {
	kinds := RegisteredDetectors()
	for _, want := range []string{KindHeapGuard, KindHeapUAF, KindStackCanary, KindIRQReentrancy} {
		found := false
		for _, k := range kinds {
			found = found || k == want
		}
		if !found {
			t.Errorf("kind %q not registered (got %v)", want, kinds)
		}
		d, err := NewDetector(want)
		if err != nil {
			t.Errorf("NewDetector(%q): %v", want, err)
		} else if d.Kind() != want {
			t.Errorf("NewDetector(%q).Kind() = %q", want, d.Kind())
		}
	}
	if _, err := NewDetector("bogus"); err == nil {
		t.Error("unknown detector must fail")
	} else if !strings.Contains(err.Error(), KindHeapGuard) {
		t.Errorf("error should list the registered kinds: %v", err)
	}
}

// TestAttachDetectorSet pins the attachment contract used by
// cte.NewSession and the campaign runner: nil keeps the current set, a
// name list replaces it, "all" expands to every registered kind, and a
// bad name leaves the set untouched.
func TestAttachDetectorSet(t *testing.T) {
	c := detTestCore()
	if got := c.DetectorKinds(); len(got) != 1 || got[0] != KindHeapGuard {
		t.Fatalf("stock set = %v, want [%s]", got, KindHeapGuard)
	}
	if err := c.AttachDetectorSet(nil); err != nil {
		t.Fatal(err)
	}
	if got := c.DetectorKinds(); len(got) != 1 || got[0] != KindHeapGuard {
		t.Fatalf("nil must keep the set, got %v", got)
	}
	if err := c.AttachDetectorSet([]string{KindHeapUAF, KindStackCanary}); err != nil {
		t.Fatal(err)
	}
	if got := c.DetectorKinds(); len(got) != 2 || got[0] != KindHeapUAF || got[1] != KindStackCanary {
		t.Fatalf("explicit list not honored: %v", got)
	}
	if err := c.AttachDetectorSet([]string{"no-such-detector"}); err == nil {
		t.Fatal("bad name must fail")
	}
	if got := c.DetectorKinds(); len(got) != 2 {
		t.Fatalf("failed attach must not change the set: %v", got)
	}
	if err := c.AttachDetectorSet([]string{"all"}); err != nil {
		t.Fatal(err)
	}
	if got := c.DetectorKinds(); len(got) != len(RegisteredDetectors()) {
		t.Fatalf(`"all" = %v, want every registered kind`, got)
	}
}

// TestDetectorKindsSurviveClone: clones carry their own deep-copied
// detector list (per-path state must fork with the path).
func TestDetectorKindsSurviveClone(t *testing.T) {
	c := detTestCore()
	if err := c.AttachDetectorSet([]string{"all"}); err != nil {
		t.Fatal(err)
	}
	n := c.Clone()
	if got, want := n.DetectorKinds(), c.DetectorKinds(); len(got) != len(want) {
		t.Fatalf("clone kinds %v != parent %v", got, want)
	}
	for i, d := range n.detectors {
		if d == c.detectors[i] && d.Kind() != KindHeapGuard { // heapGuard is stateless, shared by design
			t.Errorf("stateful detector %q shared between clone and parent", d.Kind())
		}
	}
}

// TestDetectorCloneIsolation: mutating a detector after CloneDetector
// must not leak into the copy — UAF quarantines, armed canaries and
// active IRQ causes are per-path state.
func TestDetectorCloneIsolation(t *testing.T) {
	u := newHeapUAF()
	u.freed = append(u.freed, freedRange{start: 0x100, end: 0x200})
	uc := u.CloneDetector().(*heapUAF)
	u.freed[0].start = 0x500
	u.freed = append(u.freed, freedRange{start: 1, end: 2})
	if len(uc.freed) != 1 || uc.freed[0].start != 0x100 {
		t.Errorf("heapUAF clone shares state: %+v", uc.freed)
	}

	s := newStackCanary()
	s.Arm(nil, 0x80001000, 32)
	sc := s.CloneDetector().(*stackCanary)
	s.Disarm(nil, 0x80001000)
	if len(sc.armed) != 1 {
		t.Errorf("stackCanary clone shares state: %+v", sc.armed)
	}

	r := newIRQReent()
	r.active = append(r.active, 7)
	rc := r.CloneDetector().(*irqReent)
	r.OnMRet(nil)
	if len(rc.active) != 1 || rc.active[0] != 7 {
		t.Errorf("irqReent clone shares state: %+v", rc.active)
	}
}

// TestEdgeBanks pins the protocol-state bank rounding: next power of
// two, minimum one bank.
func TestEdgeBanks(t *testing.T) {
	for _, tc := range []struct{ states, banks int }{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := EdgeBanks(tc.states); got != tc.banks {
			t.Errorf("EdgeBanks(%d) = %d want %d", tc.states, got, tc.banks)
		}
	}
}
