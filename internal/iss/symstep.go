package iss

import (
	"rvcte/internal/rv32"
)

// This file is the symbolic-step hook surface for the bounded model
// checker (internal/bmc): it steps a *set* of guarded symbolic states in
// lockstep with this ISS's semantics and needs (a) the same decoded
// instructions — through the predecoded block cache, not a second
// decoder — and (b) read access to the launch snapshot's private
// auxiliary state (protected zones, make_symbolic generations, pending
// peripheral work).

// DecodedAt returns the decoded instruction at pc, going through the
// predecoded basic-block cache when enabled so a symbolic stepper shares
// the concolic engine's translations (and their invalidation discipline)
// instead of re-decoding per step. ok is false when pc cannot be fetched
// or decoded; the caller maps that to its bad-PC trap detector.
func (c *Core) DecodedAt(pc uint32) (rv32.Inst, bool) {
	if c.bb != nil && !c.NoBlockCache {
		if b := c.bb.lookup(c, pc); b != nil && len(b.ops) > 0 && b.ops[0].pc == pc {
			return b.ops[0].inst, true
		}
		// lookup failed: fall through to the legacy fetch for the
		// precise error classification below.
	}
	saved := c.PC
	savedErr := c.Err
	c.PC = pc
	c.Err = nil
	inst, ok := c.fetch()
	c.PC = saved
	c.Err = savedErr
	return inst, ok
}

// FetchErrAt classifies why pc is not executable, mirroring fetch():
// misaligned pc and out-of-memory pc are ErrIllegalJump, an undecodable
// word is ErrIllegalInstr. Only meaningful when DecodedAt returned !ok.
func (c *Core) FetchErrAt(pc uint32) ErrKind {
	if pc&1 != 0 || !c.inRAM(pc, 2) {
		return ErrIllegalJump
	}
	lo := c.Mem.Load(pc, 2)
	if lo.C&3 == 3 && !c.inRAM(pc, 4) {
		return ErrIllegalJump
	}
	return ErrIllegalInstr
}

// ZonesSnapshot copies the currently protected memory zones.
func (c *Core) ZonesSnapshot() []Zone {
	return append([]Zone(nil), c.zones...)
}

// SymCounterSnapshot copies the per-name make_symbolic generation
// counters, so an external stepper mints variables with exactly the
// names (and therefore identities — the builder deduplicates by name)
// this core would.
func (c *Core) SymCounterSnapshot() map[string]int {
	m := make(map[string]int, len(c.symCounters))
	for k, v := range c.symCounters {
		m[k] = v
	}
	return m
}

// PendingHostWork counts state an external symbolic stepper cannot
// reproduce: queued peripheral notifications and saved peripheral
// contexts. A stepper should refuse snapshots where this is non-zero.
func (c *Core) PendingHostWork() int {
	return len(c.notifications) + len(c.ctxStack)
}

// InRAM reports whether [addr, addr+n) falls inside guest RAM.
func (c *Core) InRAM(addr uint32, n int) bool { return c.inRAM(addr, n) }
