package iss

import (
	"strings"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/smt"
)

const ramBase = 0x80000000
const ramSize = 1 << 20

func buildCore(t *testing.T, src string) *Core {
	t.Helper()
	img, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b := smt.NewBuilder()
	c := New(b, Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 1_000_000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	return c
}

func run(t *testing.T, src string) *Core {
	t.Helper()
	c := buildCore(t, src)
	c.Run(0)
	return c
}

// exitWith wraps a code snippet with an exit ecall (exit code in a0).
const exitSeq = `
	li a7, 0
	ecall
`

func TestArithmeticProgram(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 6
		li a1, 7
		mul a0, a0, a1   # 42
		addi a0, a0, 58  # 100
		li a2, 3
		divu a0, a0, a2  # 33
	`+exitSeq)
	if !c.Exited || c.Err != nil {
		t.Fatalf("did not exit cleanly: %v", c.Err)
	}
	if c.ExitCode != 33 {
		t.Errorf("exit code %d want 33", c.ExitCode)
	}
	if c.InstrCount == 0 || c.Cycles == 0 {
		t.Error("instruction/cycle counters must advance")
	}
}

func TestLoopSum(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 0
		li a1, 1
	loop:
		add a0, a0, a1
		addi a1, a1, 1
		li a2, 10
		bleu a1, a2, loop
	`+exitSeq)
	if c.ExitCode != 55 {
		t.Errorf("sum 1..10 = %d want 55", c.ExitCode)
	}
}

func TestMemoryAndExtension(t *testing.T) {
	c := run(t, `
	_start:
		la a1, buf
		li a0, 0x80
		sb a0, 0(a1)
		lb a2, 0(a1)        # sign-extends to 0xffffff80
		lbu a3, 0(a1)       # 0x80
		li a0, 0x8000
		sh a0, 4(a1)
		lh a4, 4(a1)        # 0xffff8000
		lhu a5, 4(a1)       # 0x8000
		add a0, a2, a3
		add a0, a0, a4
		add a0, a0, a5
	`+exitSeq+`
	.data
	buf: .space 16
	`)
	var want uint32
	for _, v := range []uint32{0xffffff80, 0x80, 0xffff8000, 0x8000} {
		want += v
	}
	if c.ExitCode != want {
		t.Errorf("extension sum %#x want %#x", c.ExitCode, want)
	}
}

func TestFunctionCall(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 20
		call double
		call double
	`+exitSeq+`
	double:
		add a0, a0, a0
		ret
	`)
	if c.ExitCode != 80 {
		t.Errorf("double(double(20)) = %d want 80", c.ExitCode)
	}
}

func TestCompressedInstructions(t *testing.T) {
	// The assembler emits 32-bit encodings only, so place compressed
	// encodings by hand: c.li a0, 10 (0x4529) then c.addi a0,-1 (0x157d)
	// then 32-bit exit sequence.
	c := run(t, `
	_start:
		.half 0x4529     # c.li a0, 10
		.half 0x157d     # c.addi a0, -1
		li a7, 0
		ecall
	`)
	if c.Err != nil {
		t.Fatalf("error: %v", c.Err)
	}
	if c.ExitCode != 9 {
		t.Errorf("compressed sequence: %d want 9", c.ExitCode)
	}
}

func TestPutchar(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 'H'
		li a7, 10
		ecall
		li a0, 'i'
		li a7, 10
		ecall
		li a0, 0
	`+exitSeq)
	if string(c.Output) != "Hi" {
		t.Errorf("output %q", c.Output)
	}
}

func TestErrorDetection(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind ErrKind
	}{
		{"null deref", "_start: li a1, 0\nlw a0, 0(a1)", ErrNullDeref},
		{"illegal load", "_start: li a1, 0x40000000\nlw a0, 0(a1)", ErrIllegalLoad},
		{"illegal store", "_start: li a1, 0x40000000\nsw a0, 0(a1)", ErrIllegalStore},
		{"misaligned", "_start: li a1, 0x80000102\nlw a0, 0(a1)", ErrMisaligned},
		{"bad jump", "_start: li a1, 0x20000000\njr a1", ErrIllegalJump},
		{"illegal instr", "_start: .word 0xffffffff", ErrIllegalInstr},
		{"ebreak", "_start: ebreak", ErrAssertFail},
		{"limit", "_start: j _start", ErrLimit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := run(t, tc.src)
			if c.Err == nil || c.Err.Kind != tc.kind {
				t.Errorf("got %v want %v", c.Err, tc.kind)
			}
		})
	}
}

func TestCSRAccess(t *testing.T) {
	c := run(t, `
	_start:
		li a1, 0x80000100
		csrw mtvec, a1
		csrr a0, mtvec
	`+exitSeq)
	if c.ExitCode != 0x80000100 {
		t.Errorf("mtvec readback %#x", c.ExitCode)
	}
}

func TestMakeSymbolicAndBranch(t *testing.T) {
	// Make x symbolic (default input: zero), branch on x < 5.
	c := run(t, `
	_start:
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall           # make_symbolic(&x, 4, "x")
		la a0, x
		lw a0, 0(a0)
		li a1, 5
		bltu a0, a1, small
		li a0, 100
	`+exitSeq+`
	small:
		li a0, 50
	`+exitSeq+`
	.data
	x: .word 0
	name: .asciz "x"
	`)
	if c.Err != nil {
		t.Fatalf("error: %v", c.Err)
	}
	if c.ExitCode != 50 {
		t.Errorf("default input should take x<5 path: %d", c.ExitCode)
	}
	if len(c.Trace) != 1 {
		t.Fatalf("expected 1 trace condition, got %d", len(c.Trace))
	}
	if len(c.EPC) != 1 {
		t.Fatalf("expected EPC of length 1, got %d", len(c.EPC))
	}
	// Solve the TC: should produce x >= 5.
	solver := smt.NewSolver(c.B)
	sat, model, _ := solver.Check(c.Trace[0].Cond)
	if !sat {
		t.Fatal("TC must be satisfiable")
	}
	xv := c.B.Value(model, "x[0]") | c.B.Value(model, "x[1]")<<8 |
		c.B.Value(model, "x[2]")<<16 | c.B.Value(model, "x[3]")<<24
	if xv < 5 {
		t.Errorf("solved input %d should flip the branch", xv)
	}
}

func TestSymbolicInputDrivesPath(t *testing.T) {
	src := `
	_start:
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall
		la a0, x
		lw a0, 0(a0)
		li a1, 5
		bltu a0, a1, small
		li a0, 100
	` + exitSeq + `
	small:
		li a0, 50
	` + exitSeq + `
	.data
	x: .word 0
	name: .asciz "x"
	`
	c := buildCore(t, src)
	// Assign x = 9 through the input assignment: variable names are
	// x[0..3], created in order, so ids are 0..3.
	c.Input = smt.Assignment{0: 9, 1: 0, 2: 0, 3: 0}
	c.Run(0)
	if c.ExitCode != 100 {
		t.Errorf("input x=9 should take the x>=5 path: %d", c.ExitCode)
	}
}

func TestAssumeAssert(t *testing.T) {
	// assume(x >= 3): with default input x=0 the path is pruned and a TC
	// targeting the assumption is emitted.
	c := run(t, `
	_start:
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall
		la a0, x
		lw s0, 0(a0)
		sltiu a0, s0, 3
		xori a0, a0, 1   # a0 = x >= 3
		li a7, 2
		ecall            # assume
		li a0, 1
	`+exitSeq+`
	.data
	x: .word 0
	name: .asciz "x"
	`)
	if c.Err == nil || c.Err.Kind != ErrAssumeFail {
		t.Fatalf("expected assume prune, got %v", c.Err)
	}
	if len(c.Trace) != 1 {
		t.Fatalf("expected 1 TC from the failed assume, got %d", len(c.Trace))
	}
	solver := smt.NewSolver(c.B)
	sat, model, _ := solver.Check(c.Trace[0].Cond)
	if !sat {
		t.Fatal("assume TC must be satisfiable")
	}
	if v := c.B.Value(model, "x[0]"); v < 3 && c.B.Value(model, "x[1]") == 0 &&
		c.B.Value(model, "x[2]") == 0 && c.B.Value(model, "x[3]") == 0 {
		t.Errorf("assume TC model must give x >= 3, got byte0=%d", v)
	}
}

func TestAssertViolationAndTC(t *testing.T) {
	// assert(x != 7) with x = 7 as input: violation. With default input
	// x=0: passes but emits a TC looking for x == 7.
	src := `
	_start:
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall
		la a0, x
		lw s0, 0(a0)
		li a1, 7
		xor a0, s0, a1
		snez a0, a0     # a0 = (x != 7)
		li a7, 3
		ecall           # assert
		li a0, 0
	` + exitSeq + `
	.data
	x: .word 0
	name: .asciz "x"
	`
	c := run(t, src)
	if c.Err != nil {
		t.Fatalf("x=0 must pass the assert: %v", c.Err)
	}
	if len(c.Trace) != 1 {
		t.Fatalf("expected 1 TC, got %d", len(c.Trace))
	}
	solver := smt.NewSolver(c.B)
	conds := append(append([]*smt.Expr{}, c.EPC[:c.Trace[0].EPCLen]...), c.Trace[0].Cond)
	sat, model, _ := solver.Check(conds...)
	if !sat {
		t.Fatal("assert TC must be satisfiable")
	}
	// Re-run with the violating input.
	c2 := buildCore(t, src)
	c2.Input = model
	c2.Run(0)
	if c2.Err == nil || c2.Err.Kind != ErrAssertFail {
		t.Fatalf("violating input must fail the assert, got %v", c2.Err)
	}
}

func TestPeripheralTransport(t *testing.T) {
	// A one-register peripheral: writes store to "reg" doubled, reads
	// return reg+1. Exercises the full context-switch path for both
	// loads and stores.
	src := `
	_start:
		li a1, 0x10000000
		li a0, 21
		sw a0, 0(a1)     # transport write: reg = 42
		lw a0, 0(a1)     # transport read: 43
	` + exitSeq + `
	.globl periph_transport
	periph_transport:   # a0=local addr, a1=buf, a2=size, a3=is_read
		la t0, reg
		bnez a3, .read
		lw t1, 0(a1)     # value from transaction buffer
		add t1, t1, t1
		sw t1, 0(t0)
		j .done
	.read:
		lw t1, 0(t0)
		addi t1, t1, 1
		sw t1, 0(a1)
	.done:
		li a7, 5
		ecall            # CTE_return
	.data
	reg: .word 0
	.globl cte_buf
	cte_buf: .word 0
	`
	img, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatal(err)
	}
	b := smt.NewBuilder()
	c := New(b, Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 100000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	c.AddPeripheral(Peripheral{
		Name: "test", Base: 0x10000000, Size: 0x1000,
		Transport: img.Symbols["periph_transport"],
		Buf:       img.Symbols["cte_buf"],
	})
	c.Run(0)
	if c.Err != nil {
		t.Fatalf("error: %v", c.Err)
	}
	if c.ExitCode != 43 {
		t.Errorf("MMIO round trip: %d want 43", c.ExitCode)
	}
}

func TestNotifyAndInterrupt(t *testing.T) {
	// Schedule a notification that raises the external interrupt line;
	// main spins in wfi until the handler sets a flag.
	src := `
	_start:
		la t0, handler
		csrw mtvec, t0
		li t0, 0x800        # MEIE
		csrw mie, t0
		csrsi mstatus, 8    # MIE
		la a0, notifier
		li a1, 100
		li a7, 4
		ecall               # CTE_notify(notifier, 100 cycles)
	wait:
		la t0, flag
		lw t1, 0(t0)
		bnez t1, done
		wfi
		j wait
	done:
		li a0, 77
	` + exitSeq + `
	notifier:
		li a0, 11           # external line
		li a1, 1
		li a7, 7
		ecall               # CTE_trigger_irq(11, 1)
		li a7, 5
		ecall               # CTE_return
	handler:
		la t0, flag
		li t1, 1
		sw t1, 0(t0)
		li a0, 11
		li a1, 0
		li a7, 7
		ecall               # clear the line
		mret
	.data
	flag: .word 0
	`
	// csrsi is not in the assembler: use csrrsi alias spelled directly.
	src = strings.Replace(src, "csrsi mstatus, 8", "csrrsi zero, mstatus, 8", 1)
	c := run(t, src)
	if c.Err != nil {
		t.Fatalf("error: %v", c.Err)
	}
	if c.ExitCode != 77 {
		t.Errorf("interrupt flow: %d want 77", c.ExitCode)
	}
	if c.Cycles < 100 {
		t.Errorf("wfi must fast-forward cycles: %d", c.Cycles)
	}
}

func TestWfiDeadlock(t *testing.T) {
	c := run(t, `
	_start:
		wfi
	`+exitSeq)
	if c.Err == nil || c.Err.Kind != ErrDeadlock {
		t.Errorf("expected deadlock, got %v", c.Err)
	}
}

func TestProtectedZones(t *testing.T) {
	// Register a protected zone around a "block" and then write into it.
	c := run(t, `
	_start:
		li a0, 0x80001000   # block addr
		li a1, 16           # block size
		li a2, 32           # zone size
		li a7, 8
		ecall               # register_protected(0x80001000, 16, 32)
		li t0, 0x80001004
		li t1, 5
		sw t1, 0(t0)        # inside the block: fine
		li t0, 0x80001010
		sw t1, 0(t0)        # 1 past the block: overflow!
		li a0, 0
	`+exitSeq)
	if c.Err == nil || c.Err.Kind != ErrProtectedWrite {
		t.Fatalf("expected protected write, got %v", c.Err)
	}
	if c.Err.Addr != 0x80001010 {
		t.Errorf("overflow addr %#x", c.Err.Addr)
	}
}

func TestDoubleFreeDetection(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 0x80002000
		li a1, 8
		li a2, 16
		li a7, 8
		ecall            # register
		li a0, 0x80002000
		li a7, 9
		ecall            # free: ok
		li a0, 0x80002000
		li a7, 9
		ecall            # double free!
		li a0, 0
	`+exitSeq)
	if c.Err == nil || c.Err.Kind != ErrDoubleFree {
		t.Errorf("expected double free, got %v", c.Err)
	}
}

func TestUnderflowZoneRead(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 0x80003000
		li a1, 8
		li a2, 16
		li a7, 8
		ecall
		li t0, 0x80002ffc   # just below the block: underflow read
		lw t1, 0(t0)
		li a0, 0
	`+exitSeq)
	if c.Err == nil || c.Err.Kind != ErrProtectedRead {
		t.Errorf("expected protected read, got %v", c.Err)
	}
}

func TestCloneIndependence(t *testing.T) {
	src := `
	_start:
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall
		la a0, x
		lw a0, 0(a0)
	` + exitSeq + `
	.data
	x: .word 0
	name: .asciz "x"
	`
	base := buildCore(t, src)
	c1 := base.Clone()
	c1.Input = smt.Assignment{0: 5}
	c1.Run(0)
	c2 := base.Clone()
	c2.Input = smt.Assignment{0: 9}
	c2.Run(0)
	if c1.ExitCode != 5 || c2.ExitCode != 9 {
		t.Errorf("clone runs: %d, %d", c1.ExitCode, c2.ExitCode)
	}
	if base.InstrCount != 0 {
		t.Error("base core must be untouched")
	}
}

func TestGenerationalBound(t *testing.T) {
	// Two symbolic branches; with Bound=1 only the second emits a TC.
	src := `
	_start:
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall
		la a0, x
		lw s0, 0(a0)
		li a1, 10
		bltu s0, a1, c1
	c1:
		li a1, 20
		bltu s0, a1, c2
	c2:
		li a0, 0
	` + exitSeq + `
	.data
	x: .word 0
	name: .asciz "x"
	`
	c := buildCore(t, src)
	c.Bound = 1
	c.Run(0)
	if len(c.Trace) != 1 {
		t.Fatalf("with bound 1, want 1 TC, got %d", len(c.Trace))
	}
	if c.Trace[0].SiteIdx != 1 {
		t.Errorf("TC site: %d", c.Trace[0].SiteIdx)
	}
	// Without a bound both branches emit.
	c2 := buildCore(t, src)
	c2.Run(0)
	if len(c2.Trace) != 2 {
		t.Errorf("without bound, want 2 TCs, got %d", len(c2.Trace))
	}
}

func TestGetCycles(t *testing.T) {
	c := run(t, `
	_start:
		li a7, 6
		ecall        # get_cycles -> a0
	`+exitSeq)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.ExitCode == 0 || c.ExitCode > 10 {
		t.Errorf("cycle count at exit: %d", c.ExitCode)
	}
}
