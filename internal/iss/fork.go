package iss

import (
	"rvcte/internal/smt"
)

// State forking (DESIGN.md "State forking"): instead of re-executing a
// whole path prefix from the frozen exploration snapshot for every new
// solver model, the engine checkpoints the live VP at each divergence
// point — the instruction that emitted a trace condition — and resumes
// a copy-on-write clone of that checkpoint with the new model
// substituted into the symbolic shadow state. The suffix after the
// divergence is the only part that executes again.
//
// A checkpoint must look exactly like the state a restart run would be
// in when it reaches the divergence instruction under the new model:
//
//   - TCs fire mid-instruction (after operand reads, before any
//     architectural write), so the capture clones the live core and
//     rewinds the per-instruction append-only state (EPC entries, site
//     counter, trace-ring entry) to the values recorded at the start of
//     the instruction; the whole instruction re-executes on resume.
//   - The concrete halves of all concolic state (registers, saved
//     contexts, memory bytes, host-model values, console output) were
//     computed under the parent's input assignment; ApplyModel
//     re-evaluates every symbolic shadow under the child's model (with
//     the same unassigned-variables-are-zero completion the restart
//     path uses), which makes the resumed state bit-identical to the
//     restart run at the same point.
//
// Capture is skipped (and the engine falls back to a snapshot restart
// for that child) in the situations where a mid-instruction clone is
// not a faithful restart state: inside host peripheral models
// (hostDepth — the model has already mutated its own state when the TC
// fires), after a boundary host notification in the same step
// (stepUnsafe — further due notifications would be delivered before
// instead of after the re-executed instruction), and under an ExecHook
// (the hook's external state cannot be cloned).

// ModelReconcretizer is implemented by HostModels that carry concolic
// values: Reconcretize must re-evaluate the concrete half of each such
// value under ev, mirroring what Core.ApplyModel does for registers and
// memory. Host models that hold only concrete state need not implement
// it.
type ModelReconcretizer interface {
	Reconcretize(ev *smt.Evaluator)
}

// emitTC appends a trace condition and, under CaptureForks, stashes a
// divergence checkpoint for its site. All TC emission funnels through
// here.
func (c *Core) emitTC(tc TraceCond) {
	c.Trace = append(c.Trace, tc)
	if c.CaptureForks {
		c.captureFork(tc.SiteIdx)
	}
}

// recordPreState snapshots the per-instruction rewind state. Called at
// the top of every instruction (after boundary event delivery) while
// CaptureForks is set.
func (c *Core) recordPreState() {
	c.preEPCLen = len(c.EPC)
	c.preSite = c.siteCount
	c.preRingLen = len(c.traceRing)
	c.preRingNext = c.traceNext
}

// captureFork stashes a checkpoint of the VP rewound to the start of
// the current instruction, keyed by TC site. Ladders emit several TCs
// at one site; the first capture wins (they share the divergence
// instruction).
func (c *Core) captureFork(site int) {
	if c.hostDepth > 0 || c.stepUnsafe || c.ExecHook != nil {
		return
	}
	if c.InstrCount < c.ForkMinPrefix {
		return
	}
	if c.forkPoints == nil {
		c.forkPoints = make(map[int]*Core)
	} else if _, ok := c.forkPoints[site]; ok {
		return
	}
	var n *Core
	if memo := c.capMemo; memo != nil {
		// No memory write since the previous checkpoint: share its memory
		// snapshot instead of paying another page-table clone. Checkpoint
		// cores are never executed directly (Fork clones them first), so
		// the shared Memory is only ever read or re-cloned. This memo is
		// only valid here — Fork's own clones execute and must never
		// share.
		n = c.cloneNoMem()
		n.Mem = memo
		c.copyPrefixCoverage(n)
	} else {
		n = c.cloneForFork()
		c.capMemo = n.Mem
	}
	n.EPC = n.EPC[:c.preEPCLen]
	n.siteCount = c.preSite
	n.traceRing = n.traceRing[:c.preRingLen]
	n.traceNext = c.preRingNext
	// The checkpoint starts a fresh TC epoch: the engine collects the
	// suffix's trace conditions from the resumed core and re-bases them
	// on the inherited EPC prefix.
	n.Trace = nil
	c.forkPoints[site] = n
}

// cloneForFork is Clone plus the prefix coverage: Clone resets Coverage
// (it is per-run), but a resumed fork must report prefix+suffix
// coverage exactly like a restart run would.
func (c *Core) cloneForFork() *Core {
	n := c.Clone()
	c.copyPrefixCoverage(n)
	return n
}

func (c *Core) copyPrefixCoverage(n *Core) {
	if c.Coverage == nil {
		return
	}
	cov := make(map[uint32]struct{}, len(c.Coverage))
	for pc := range c.Coverage {
		cov[pc] = struct{}{}
	}
	n.Coverage = cov
}

// Fork materializes a resumable core from the checkpoint at site: a
// fresh clone (several children may fork off one site — one per SAT
// trace condition), with the generational bound and the new input
// assignment installed and every concrete shadow re-evaluated under the
// model. Returns nil when no checkpoint was captured for the site (the
// caller falls back to a snapshot restart).
func (c *Core) Fork(site int, model smt.Assignment, bound int) *Core {
	cp := c.forkPoints[site]
	if cp == nil {
		return nil
	}
	n := cp.cloneForFork()
	n.Bound = bound
	n.Input = model
	n.ApplyModel(model)
	return n
}

// ApplyModel re-evaluates the concrete half of every symbolic shadow in
// the VP under model: registers, saved context registers, memory bytes,
// host peripheral models (via ModelReconcretizer) and console output
// bytes printed from symbolic values. Unassigned variables evaluate to
// zero, matching the Input-map read of a restart run.
func (c *Core) ApplyModel(model smt.Assignment) {
	ev := smt.NewEvaluator(model)
	for i := range c.Regs {
		if s := c.Regs[i].Sym; s != nil {
			c.Regs[i].C = uint32(ev.Eval(s))
		}
	}
	for i := range c.ctxStack {
		regs := &c.ctxStack[i].regs
		for j := range regs {
			if s := regs[j].Sym; s != nil {
				regs[j].C = uint32(ev.Eval(s))
			}
		}
	}
	c.Mem.Reconcretize(ev)
	for i := range c.Peripherals {
		if h := c.Peripherals[i].Host; h != nil {
			if r, ok := h.(ModelReconcretizer); ok {
				r.Reconcretize(ev)
			}
		}
	}
	for i, s := range c.outSym {
		if s != nil && i < len(c.Output) {
			c.Output[i] = byte(ev.Eval(s))
		}
	}
}

// TakeForkPoints detaches and returns the checkpoints captured during
// the last run (site index → rewound core). The engine harvests them
// once per executed path.
func (c *Core) TakeForkPoints() map[int]*Core {
	fp := c.forkPoints
	c.forkPoints = nil
	return fp
}
