package iss

import (
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/smt"
)

// TestNotifyResetsPending: re-notifying a function replaces its pending
// notification (paper §3.2: "In case the function already has a pending
// notification, it will be reset").
func TestNotifyResetsPending(t *testing.T) {
	c := run(t, `
	_start:
		la a0, fn
		li a1, 50
		li a7, 4
		ecall            # notify(fn, 50)
		la a0, fn
		li a1, 2000
		li a7, 4
		ecall            # re-notify(fn, 2000): resets the first one
	spin:
		la t0, fired
		lw t1, 0(t0)
		beqz t1, spin
		li a7, 6
		ecall            # get_cycles -> a0
	`+exitSeq+`
	fn:
		la t0, fired
		li t1, 1
		sw t1, 0(t0)
		li a7, 5
		ecall            # CTE_return
	.data
	fired: .word 0
	`)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	// The callback must fire near cycle 2000, not cycle 50.
	if c.ExitCode < 1900 {
		t.Errorf("notification was not reset: fired at cycle %d", c.ExitCode)
	}
}

// TestCancelNotify: a cancelled notification never fires.
func TestCancelNotify(t *testing.T) {
	c := run(t, `
	_start:
		la a0, fn
		li a1, 100
		li a7, 4
		ecall            # notify(fn, 100)
		la a0, fn
		li a7, 11
		ecall            # cancel_notify(fn)
		li t2, 0
	loop:
		addi t2, t2, 1
		li t3, 2000
		bltu t2, t3, loop
		la t0, fired
		lw a0, 0(t0)     # must still be 0
	`+exitSeq+`
	fn:
		la t0, fired
		li t1, 1
		sw t1, 0(t0)
		li a7, 5
		ecall
	.data
	fired: .word 0
	`)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.ExitCode != 0 {
		t.Error("cancelled notification fired anyway")
	}
}

// TestIsSymbolic: the introspection call distinguishes concrete from
// symbolic values.
func TestIsSymbolic(t *testing.T) {
	c := run(t, `
	_start:
		li a0, 42
		li a7, 12
		ecall            # is_symbolic(42) -> 0
		mv s0, a0
		la a0, x
		li a1, 4
		la a2, name
		li a7, 1
		ecall            # make_symbolic(&x)
		la a0, x
		lw a0, 0(a0)
		li a7, 12
		ecall            # is_symbolic(x) -> 1
		slli a0, a0, 1
		or a0, a0, s0    # result = symbolic<<1 | concrete
	`+exitSeq+`
	.data
	x: .word 0
	name: .asciz "x"
	`)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.ExitCode != 2 {
		t.Errorf("is_symbolic results: %#b want 0b10", c.ExitCode)
	}
}

// TestNestedPeripheralAccess: a peripheral's transport function performs
// a memory-mapped access to a second peripheral — the context stack must
// nest (paper §3.2.2: "Using a stack to save the execution context
// allows peripherals to access other peripherals memory").
func TestNestedPeripheralAccess(t *testing.T) {
	src := `
	_start:
		li a1, 0x10000000
		lw a0, 0(a1)       # read outer -> returns inner+1
	` + exitSeq + `
	.globl outer_transport
	outer_transport:
		# reads the inner peripheral's register via MMIO (nested switch)
		li t0, 0x10010000
		lw t1, 0(t0)
		addi t1, t1, 1
		sw t1, 0(a1)       # store result into the transaction buffer
		li a7, 5
		ecall
	.globl inner_transport
	inner_transport:
		li t1, 41
		sw t1, 0(a1)
		li a7, 5
		ecall
	.data
	.globl outer_buf
	outer_buf: .word 0
	.globl inner_buf
	inner_buf: .word 0
	`
	c := buildCore(t, src)
	// Resolve symbols by assembling again (buildCore hides the image);
	// simpler: rebuild with the helper below.
	img := mustImage(t, src)
	c.AddPeripheral(Peripheral{Name: "outer", Base: 0x10000000, Size: 0x1000,
		Transport: img.Symbols["outer_transport"], Buf: img.Symbols["outer_buf"]})
	c.AddPeripheral(Peripheral{Name: "inner", Base: 0x10010000, Size: 0x1000,
		Transport: img.Symbols["inner_transport"], Buf: img.Symbols["inner_buf"]})
	c.Run(0)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.ExitCode != 42 {
		t.Errorf("nested transport: %d want 42", c.ExitCode)
	}
}

// TestPeripheralStackIsolation: with a dedicated peripheral stack
// configured, peripheral execution must not descend below the
// interrupted software's stack pointer.
func TestPeriphStackUsed(t *testing.T) {
	src := `
	_start:
		li a1, 0x10000000
		lw a0, 0(a1)
	` + exitSeq + `
	.globl p_transport
	p_transport:
		# store sp into the transaction buffer so the test can see it
		sw sp, 0(a1)
		li a7, 5
		ecall
	.data
	.globl p_buf
	p_buf: .word 0
	`
	img := mustImage(t, src)
	b := smt.NewBuilder()
	c := New(b, Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 100000,
		StackTop: ramBase + 0x8000, PeriphStackTop: ramBase + 0x10000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	c.AddPeripheral(Peripheral{Name: "p", Base: 0x10000000, Size: 0x1000,
		Transport: img.Symbols["p_transport"], Buf: img.Symbols["p_buf"]})
	c.Run(0)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.ExitCode != ramBase+0x10000 {
		t.Errorf("peripheral sp %#x want %#x", c.ExitCode, ramBase+0x10000)
	}
}

// TestCloneCopiesNotificationsAndZones: cloned cores carry pending
// notifications and protected zones independently.
func TestCloneCopiesNotificationsAndZones(t *testing.T) {
	base := buildCore(t, `
	_start:
		li a0, 0x80001000
		li a1, 8
		li a2, 16
		li a7, 8
		ecall            # register zone
		li a0, 0
	`+exitSeq)
	base.Run(0)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	c1 := base.Clone()
	c2 := base.Clone()
	// Freeing in one clone must not affect the other.
	if len(c1.zones) != 2 || len(c2.zones) != 2 {
		t.Fatalf("zones not cloned: %d %d", len(c1.zones), len(c2.zones))
	}
	c1.zones = c1.zones[:0]
	if len(c2.zones) != 2 {
		t.Error("zone slice shared between clones")
	}
}

// mustImage assembles a test source (duplicating buildCore's assembly
// step where the Image is needed for symbol lookup).
func mustImage(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatal(err)
	}
	return img
}
