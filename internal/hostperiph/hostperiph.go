// Package hostperiph provides host-side concolic-aware peripheral models
// — the paper's future-work item §5.1 ("C++ peripheral models with a
// more comprehensive abstraction layer to avoid the current peripheral
// transformation step"). These models implement iss.HostModel: they run
// natively on the host but manipulate concolic values directly, so no
// software-model transformation (and no per-access context switch) is
// needed. The trade-off is exactly the one §3.1.2 describes: best
// performance, but concolic-awareness must be implemented per
// peripheral.
package hostperiph

import (
	"rvcte/internal/concolic"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// PLIC is the host-model platform-level interrupt controller. Register
// layout matches the software model (0x0 claim, 0x4 enable, 0x8 pending,
// 0x10+4n priority).
type PLIC struct {
	Pending  uint32
	Enable   uint32
	Priority [32]uint32
}

// NewPLIC creates a host PLIC with all sources enabled at priority 1.
func NewPLIC() *PLIC {
	p := &PLIC{Enable: 0xffffffff}
	for i := 1; i < 32; i++ {
		p.Priority[i] = 1
	}
	return p
}

// Raise asserts source src and updates the external line.
func (p *PLIC) Raise(c *iss.Core, src uint32) {
	if src == 0 || src >= 32 {
		return
	}
	p.Pending |= 1 << src
	p.update(c)
}

func (p *PLIC) update(c *iss.Core) {
	c.TriggerIRQ(11, p.Pending&p.Enable != 0)
}

func (p *PLIC) claim(c *iss.Core) uint32 {
	var best, bestPrio uint32
	for i := uint32(1); i < 32; i++ {
		if p.Pending&(1<<i) != 0 && p.Enable&(1<<i) != 0 && p.Priority[i] > bestPrio {
			best, bestPrio = i, p.Priority[i]
		}
	}
	if best != 0 {
		p.Pending &^= 1 << best
		p.update(c)
	}
	return best
}

// Transport implements iss.HostModel.
func (p *PLIC) Transport(c *iss.Core, addr uint32, size int, v concolic.Value, isRead bool) concolic.Value {
	switch {
	case addr == 0x0:
		if isRead {
			return concolic.Concrete(p.claim(c))
		}
	case addr == 0x4:
		if isRead {
			return concolic.Concrete(p.Enable)
		}
		p.Enable = c.Concretize(v, "plic enable")
		p.update(c)
	case addr == 0x8:
		if isRead {
			return concolic.Concrete(p.Pending)
		}
	case addr >= 0x10 && addr < 0x10+32*4:
		idx := (addr - 0x10) / 4
		if isRead {
			return concolic.Concrete(p.Priority[idx])
		}
		p.Priority[idx] = c.Concretize(v, "plic priority")
	}
	return concolic.Concrete(0)
}

// Notify implements iss.HostModel (the PLIC has no timed processes).
func (p *PLIC) Notify(c *iss.Core, event uint32) {}

// CloneModel implements iss.HostModel.
func (p *PLIC) CloneModel() iss.HostModel {
	cp := *p
	return &cp
}

// Sensor is the host-model port of the paper's Fig. 2 sensor: identical
// register layout, symbolic data generation, range assumption, filter
// application and the seeded off-by-one bug — but written directly
// against the concolic API instead of as guest software.
type Sensor struct {
	Scaler      concolic.Value
	Filter      concolic.Value
	Data        concolic.Value
	Min         uint32
	Max         uint32
	IRQ         uint32
	Fixed       bool // apply the corrected (minus one) post-processing
	CyclesPerMS uint64
}

// NewSensor creates the host sensor with the Fig. 2 defaults.
func NewSensor(fixed bool) *Sensor {
	return &Sensor{
		Scaler: concolic.Concrete(25),
		Min:    16, Max: 64, IRQ: 2,
		Fixed:       fixed,
		CyclesPerMS: 1000,
	}
}

// findPLIC locates the (possibly cloned) host PLIC on the core, so
// cross-model references stay valid after VP cloning.
func findPLIC(c *iss.Core) *PLIC {
	for i := range c.Peripherals {
		if p, ok := c.Peripherals[i].Host.(*PLIC); ok {
			return p
		}
	}
	return nil
}

const sensorUpdateEvent = 1

// Notify implements the periodic update process (Fig. 2's update()).
func (s *Sensor) Notify(c *iss.Core, event uint32) {
	if event != sensorUpdateEvent {
		return
	}
	// Overwrite data with a fresh symbolic value constrained to the
	// sensor range.
	s.Data = c.MakeSymbolicValue("d")
	ge, geE := c.Ops.CmpGeu(s.Data, concolic.Concrete(s.Min))
	le, leE := c.Ops.CmpGeu(concolic.Concrete(s.Max), s.Data)
	// assume(data >= MIN && data <= MAX), built concolically.
	and := concolic.Concrete(boolToU32(ge && le))
	if geE != nil && leE != nil {
		and.Sym = c.B.ZExt(c.B.And(geE, leE), 32)
	}
	c.AssumeValue(and)
	if c.Halted() {
		return
	}
	s.Data = c.Ops.Sub(s.Data, s.Filter)
	if plic := findPLIC(c); plic != nil {
		plic.Raise(c, s.IRQ)
	}
	c.NotifyHostModel(s, sensorUpdateEvent, uint64(s.Scaler.C)*s.CyclesPerMS)
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Transport implements the register file (0x0 scaler, 0x4 filter, 0x8
// data), including the pre/post-processing actions of Fig. 2.
func (s *Sensor) Transport(c *iss.Core, addr uint32, size int, v concolic.Value, isRead bool) concolic.Value {
	switch addr {
	case 0x0:
		if isRead {
			return s.Scaler
		}
		s.Scaler = v
		c.NotifyHostModel(s, sensorUpdateEvent, uint64(s.Scaler.C)*s.CyclesPerMS)
	case 0x4:
		if isRead {
			return s.Filter
		}
		s.Filter = v
		// Post-process action with the seeded bug (Fig. 2 line 45).
		conc, cond := c.Ops.CmpGeu(s.Filter, concolic.Concrete(s.Min))
		if cond != nil {
			c.Branch(conc, cond)
		}
		if conc {
			if s.Fixed {
				s.Filter = concolic.Concrete(s.Min - 1)
			} else {
				s.Filter = concolic.Concrete(s.Min + 1)
			}
		}
	case 0x8:
		if isRead {
			return s.Data
		}
		s.Data = v
	}
	return concolic.Concrete(0)
}

// CloneModel deep-copies the sensor (the PLIC is found through the core
// at dispatch time, so no re-linking is needed).
func (s *Sensor) CloneModel() iss.HostModel {
	cp := *s
	return &cp
}

// Reconcretize implements iss.ModelReconcretizer: the sensor's register
// file holds concolic values whose concrete halves were computed under
// the parent path's input, so a forked path re-evaluates them under its
// own model. (The PLIC holds only concrete state and needs none.)
func (s *Sensor) Reconcretize(ev *smt.Evaluator) {
	for _, v := range []*concolic.Value{&s.Scaler, &s.Filter, &s.Data} {
		if v.Sym != nil {
			v.C = uint32(ev.Eval(v.Sym))
		}
	}
}

// Attach maps a host sensor + PLIC at the standard addresses.
func Attach(c *iss.Core, fixed bool) (*Sensor, *PLIC) {
	plic := NewPLIC()
	sensor := NewSensor(fixed)
	c.AddPeripheral(iss.Peripheral{Name: "sensor", Base: 0x10000000, Size: 0x10000, Host: sensor})
	c.AddPeripheral(iss.Peripheral{Name: "plic", Base: 0x10010000, Size: 0x10000, Host: plic})
	return sensor, plic
}
