package hostperiph

import (
	"context"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// buildHostSensorSystem compiles the paper's Fig. 3 application but maps
// host-model peripherals (this package) instead of software models.
func buildHostSensorSystem(t testing.TB, fixed bool) (*iss.Core, *smt.Builder) {
	t.Helper()
	b := smt.NewBuilder()
	// Build the app WITHOUT the SW peripheral models and without
	// peripheral mappings; host models are attached afterwards.
	p := guest.SensorProgram(fixed)
	p.Sources = p.Sources[:1] // keep only app.c
	p.Peripherals = nil
	core, _, err := guest.NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	Attach(core, fixed)
	return core, b
}

// TestHostModelFindsSameBug: the host-model integration must find the
// same sensor bug as the software-model integration, with an equivalent
// violating input region.
func TestHostModelFindsSameBug(t *testing.T) {
	core, b := buildHostSensorSystem(t, false)
	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("host-model exploration must find the sensor bug: %v", rep)
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Fatalf("kind: %v", f.Err)
	}
	fv := b.Value(f.Input, "f[0]")
	dv := b.Value(f.Input, "d")
	if fv < 16 {
		t.Errorf("violating filter %d must be >= 16", fv)
	}
	if dv < 16 || dv > 64 {
		t.Errorf("violating data %d must be in the sensor range", dv)
	}
	t.Logf("host-model bug found after %d paths with f=%d d=%d", rep.Paths, fv, dv)
}

// TestHostModelFixedClean: with the corrected post-processing the
// host-model system explores cleanly.
func TestHostModelFixedClean(t *testing.T) {
	core, _ := buildHostSensorSystem(t, true)
	rep := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 200}}).Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("fixed host sensor must be clean: %v", rep.Findings)
	}
	if !rep.Exhausted {
		t.Errorf("exploration should exhaust (%d paths)", rep.Paths)
	}
}

// TestHostModelCloneIsolation: state mutated on one explored path must
// not leak into sibling paths (CloneModel correctness).
func TestHostModelCloneIsolation(t *testing.T) {
	core, _ := buildHostSensorSystem(t, false)
	var filters []uint32
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 16}})
	eng.OnPath = func(_ int, c *iss.Core) {
		for i := range c.Peripherals {
			if s, ok := c.Peripherals[i].Host.(*Sensor); ok {
				filters = append(filters, s.Filter.C)
			}
		}
	}
	eng.Run(context.Background())
	// The base snapshot's sensor must remain untouched.
	for i := range core.Peripherals {
		if s, ok := core.Peripherals[i].Host.(*Sensor); ok {
			if s.Filter.C != 0 || s.Filter.Sym != nil {
				t.Errorf("snapshot sensor mutated: %v", s.Filter)
			}
		}
	}
	// Different paths saw different filter values (state diverges).
	distinct := map[uint32]bool{}
	for _, f := range filters {
		distinct[f] = true
	}
	if len(distinct) < 2 {
		t.Errorf("expected divergent per-path peripheral state, got %v", filters)
	}
}

// BenchmarkPeripheralIntegration compares the two concolic peripheral
// integration styles of §3.1.2 on the sensor system: software models
// (executed on the ISS, inheriting concolic execution) vs. host models
// (fully specialized). The software model costs guest instructions per
// access; the host model costs host-side implementation effort.
func BenchmarkPeripheralIntegration(b *testing.B) {
	b.Run("sw-model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bld := smt.NewBuilder()
			core, _, err := guest.NewCore(bld, guest.SensorProgram(false))
			if err != nil {
				b.Fatal(err)
			}
			rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())
			if len(rep.Findings) == 0 {
				b.Fatal("bug not found")
			}
		}
	})
	b.Run("host-model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core, _ := buildHostSensorSystem(b, false)
			rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())
			if len(rep.Findings) == 0 {
				b.Fatal("bug not found")
			}
		}
	})
}
