// Package concolic provides the concolic data types used by the ISS: a
// value carries a concrete 32-bit part and an optional symbolic part
// (paper §2.2), and a sparse byte-granular memory propagates symbolic
// bytes alongside concrete storage.
package concolic

import (
	"fmt"

	"rvcte/internal/smt"
)

// Value is a concolic value (N, x): concrete part C is always available;
// symbolic part Sym may be nil, in which case the value is concrete.
type Value struct {
	C   uint32
	Sym *smt.Expr // nil means concrete; width 32 otherwise
}

// Concrete builds a concrete value.
func Concrete(c uint32) Value { return Value{C: c} }

// IsConcrete reports whether v has no symbolic part.
func (v Value) IsConcrete() bool { return v.Sym == nil }

func (v Value) String() string {
	if v.Sym == nil {
		return fmt.Sprintf("(%d, /)", v.C)
	}
	return fmt.Sprintf("(%d, %v)", v.C, v.Sym)
}

// Ops performs concolic arithmetic: each operation computes the concrete
// result natively and, when any operand is symbolic, builds the matching
// symbolic expression (converting concrete operands to SMT constants, as
// in the paper's (2, /) -> (2, 2_S) example).
type Ops struct {
	B *smt.Builder
}

// sym returns the symbolic part of v, materializing a constant when v is
// concrete.
func (o Ops) sym(v Value) *smt.Expr {
	if v.Sym != nil {
		return v.Sym
	}
	return o.B.Const(32, uint64(v.C))
}

// SymOrNil returns v's symbolic part or nil (exported for the ISS's
// branch handling).
func (v Value) SymOrNil() *smt.Expr { return v.Sym }

func (o Ops) bin(a, b Value, cf func(x, y uint32) uint32, sf func(x, y *smt.Expr) *smt.Expr) Value {
	c := cf(a.C, b.C)
	if a.Sym == nil && b.Sym == nil {
		return Value{C: c}
	}
	s := sf(o.sym(a), o.sym(b))
	if s.IsConst() {
		// The symbolic computation collapsed to a constant (e.g. x^x):
		// drop the symbolic part entirely.
		return Value{C: uint32(s.Val)}
	}
	return Value{C: c, Sym: s}
}

func (o Ops) Add(a, b Value) Value {
	return o.bin(a, b, func(x, y uint32) uint32 { return x + y }, o.B.Add)
}

func (o Ops) Sub(a, b Value) Value {
	return o.bin(a, b, func(x, y uint32) uint32 { return x - y }, o.B.Sub)
}

func (o Ops) And(a, b Value) Value {
	return o.bin(a, b, func(x, y uint32) uint32 { return x & y }, o.B.And)
}

func (o Ops) Or(a, b Value) Value {
	return o.bin(a, b, func(x, y uint32) uint32 { return x | y }, o.B.Or)
}

func (o Ops) Xor(a, b Value) Value {
	return o.bin(a, b, func(x, y uint32) uint32 { return x ^ y }, o.B.Xor)
}

// Sll shifts left; RISC-V masks the shift amount to 5 bits.
func (o Ops) Sll(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 { return x << (y & 31) },
		func(x, y *smt.Expr) *smt.Expr { return o.B.Shl(x, o.B.And(y, o.B.Const(32, 31))) })
}

func (o Ops) Srl(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 { return x >> (y & 31) },
		func(x, y *smt.Expr) *smt.Expr { return o.B.LShr(x, o.B.And(y, o.B.Const(32, 31))) })
}

func (o Ops) Sra(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 { return uint32(int32(x) >> (y & 31)) },
		func(x, y *smt.Expr) *smt.Expr { return o.B.AShr(x, o.B.And(y, o.B.Const(32, 31))) })
}

// Slt is the signed set-less-than (result 0/1).
func (o Ops) Slt(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 {
			if int32(x) < int32(y) {
				return 1
			}
			return 0
		},
		func(x, y *smt.Expr) *smt.Expr { return o.B.ZExt(o.B.Slt(x, y), 32) })
}

// Sltu is the unsigned set-less-than (result 0/1).
func (o Ops) Sltu(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 {
			if x < y {
				return 1
			}
			return 0
		},
		func(x, y *smt.Expr) *smt.Expr { return o.B.ZExt(o.B.Ult(x, y), 32) })
}

func (o Ops) Mul(a, b Value) Value {
	return o.bin(a, b, func(x, y uint32) uint32 { return x * y }, o.B.Mul)
}

// MulH computes the high 32 bits of the signed 64-bit product.
func (o Ops) MulH(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 { return uint32(uint64(int64(int32(x))*int64(int32(y))) >> 32) },
		func(x, y *smt.Expr) *smt.Expr {
			p := o.B.Mul(o.B.SExt(x, 64), o.B.SExt(y, 64))
			return o.B.Extract(p, 63, 32)
		})
}

// MulHU computes the high 32 bits of the unsigned 64-bit product.
func (o Ops) MulHU(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 { return uint32(uint64(x) * uint64(y) >> 32) },
		func(x, y *smt.Expr) *smt.Expr {
			p := o.B.Mul(o.B.ZExt(x, 64), o.B.ZExt(y, 64))
			return o.B.Extract(p, 63, 32)
		})
}

// MulHSU computes the high 32 bits of signed(a) * unsigned(b).
func (o Ops) MulHSU(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 { return uint32(uint64(int64(int32(x))*int64(uint64(y))) >> 32) },
		func(x, y *smt.Expr) *smt.Expr {
			p := o.B.Mul(o.B.SExt(x, 64), o.B.ZExt(y, 64))
			return o.B.Extract(p, 63, 32)
		})
}

// DivU implements RISC-V unsigned division: x/0 == 0xffffffff.
func (o Ops) DivU(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 {
			if y == 0 {
				return 0xffffffff
			}
			return x / y
		},
		// SMT-LIB bvudiv already returns all-ones for zero divisors.
		o.B.UDiv)
}

// RemU implements RISC-V unsigned remainder: x%0 == x.
func (o Ops) RemU(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 {
			if y == 0 {
				return x
			}
			return x % y
		},
		o.B.URem)
}

// Div implements RISC-V signed division: x/0 == -1; INT_MIN / -1 == INT_MIN.
func (o Ops) Div(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 {
			if y == 0 {
				return 0xffffffff
			}
			if x == 0x80000000 && y == 0xffffffff {
				return 0x80000000
			}
			return uint32(int32(x) / int32(y))
		},
		func(x, y *smt.Expr) *smt.Expr { return o.signedDivRem(x, y, true) })
}

// Rem implements RISC-V signed remainder: x%0 == x; INT_MIN % -1 == 0.
func (o Ops) Rem(a, b Value) Value {
	return o.bin(a, b,
		func(x, y uint32) uint32 {
			if y == 0 {
				return x
			}
			if x == 0x80000000 && y == 0xffffffff {
				return 0
			}
			return uint32(int32(x) % int32(y))
		},
		func(x, y *smt.Expr) *smt.Expr { return o.signedDivRem(x, y, false) })
}

// signedDivRem expresses signed division over the unsigned SMT primitives
// using the usual absolute-value transformation. The SMT-LIB zero-divisor
// results of the unsigned primitives happen to compose into exactly the
// RISC-V-mandated values (div: -1, rem: dividend).
func (o Ops) signedDivRem(x, y *smt.Expr, wantDiv bool) *smt.Expr {
	b := o.B
	zero := b.Const(32, 0)
	xNeg := b.Slt(x, zero)
	yNeg := b.Slt(y, zero)
	ax := b.Ite(xNeg, b.Neg(x), x)
	ay := b.Ite(yNeg, b.Neg(y), y)
	if wantDiv {
		q := b.UDiv(ax, ay)
		qSigned := b.Ite(b.Xor(xNeg, yNeg), b.Neg(q), q)
		// Zero divisor: RISC-V requires -1.
		return b.Ite(b.Eq(y, zero), b.Const(32, 0xffffffff), qSigned)
	}
	r := b.URem(ax, ay)
	rSigned := b.Ite(xNeg, b.Neg(r), r)
	// Zero divisor: RISC-V requires the dividend.
	return b.Ite(b.Eq(y, zero), x, rSigned)
}

// CmpEq builds the width-1 condition a == b together with its concrete
// truth value.
func (o Ops) CmpEq(a, b Value) (bool, *smt.Expr) {
	conc := a.C == b.C
	if a.Sym == nil && b.Sym == nil {
		return conc, nil
	}
	return conc, o.B.Eq(o.sym(a), o.sym(b))
}

// CmpNe builds a != b.
func (o Ops) CmpNe(a, b Value) (bool, *smt.Expr) {
	c, e := o.CmpEq(a, b)
	if e == nil {
		return !c, nil
	}
	return !c, o.B.Not(e)
}

// CmpLt builds signed a < b.
func (o Ops) CmpLt(a, b Value) (bool, *smt.Expr) {
	conc := int32(a.C) < int32(b.C)
	if a.Sym == nil && b.Sym == nil {
		return conc, nil
	}
	return conc, o.B.Slt(o.sym(a), o.sym(b))
}

// CmpGe builds signed a >= b.
func (o Ops) CmpGe(a, b Value) (bool, *smt.Expr) {
	conc := int32(a.C) >= int32(b.C)
	if a.Sym == nil && b.Sym == nil {
		return conc, nil
	}
	return conc, o.B.Sge(o.sym(a), o.sym(b))
}

// CmpLtu builds unsigned a < b.
func (o Ops) CmpLtu(a, b Value) (bool, *smt.Expr) {
	conc := a.C < b.C
	if a.Sym == nil && b.Sym == nil {
		return conc, nil
	}
	return conc, o.B.Ult(o.sym(a), o.sym(b))
}

// CmpGeu builds unsigned a >= b.
func (o Ops) CmpGeu(a, b Value) (bool, *smt.Expr) {
	conc := a.C >= b.C
	if a.Sym == nil && b.Sym == nil {
		return conc, nil
	}
	return conc, o.B.Uge(o.sym(a), o.sym(b))
}

// SextByte sign-extends the low byte of v to 32 bits.
func (o Ops) SextByte(v Value) Value {
	c := uint32(int32(int8(v.C)))
	if v.Sym == nil {
		return Value{C: c}
	}
	return Value{C: c, Sym: o.B.SExt(o.B.Extract(v.Sym, 7, 0), 32)}
}

// SextHalf sign-extends the low half of v to 32 bits.
func (o Ops) SextHalf(v Value) Value {
	c := uint32(int32(int16(v.C)))
	if v.Sym == nil {
		return Value{C: c}
	}
	return Value{C: c, Sym: o.B.SExt(o.B.Extract(v.Sym, 15, 0), 32)}
}

// ZextByte zero-extends the low byte of v.
func (o Ops) ZextByte(v Value) Value {
	c := v.C & 0xff
	if v.Sym == nil {
		return Value{C: c}
	}
	return Value{C: c, Sym: o.B.ZExt(o.B.Extract(v.Sym, 7, 0), 32)}
}

// ZextHalf zero-extends the low half of v.
func (o Ops) ZextHalf(v Value) Value {
	c := v.C & 0xffff
	if v.Sym == nil {
		return Value{C: c}
	}
	return Value{C: c, Sym: o.B.ZExt(o.B.Extract(v.Sym, 15, 0), 32)}
}
