package concolic

import (
	"fmt"

	"rvcte/internal/smt"
)

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// page holds pageSize bytes of concrete data plus, lazily, one 8-bit
// symbolic expression per byte. A shared page must be copied before any
// write (copy-on-write cloning, supporting the paper's "VP is cloned
// before executing each new input").
type page struct {
	data   [pageSize]byte
	sym    []*smt.Expr // nil until a symbolic byte is stored
	shared bool
}

func (p *page) ensureSym() {
	if p.sym == nil {
		p.sym = make([]*smt.Expr, pageSize)
	}
}

// Memory is a sparse concolic byte store covering the 32-bit address
// space. The zero value is not usable; create with NewMemory.
type Memory struct {
	pages  map[uint32]*page
	ops    Ops
	frozen bool // pages are already marked shared; Clone must not mutate them

	// OnWrite, when non-nil, is invoked once per mutating call with the
	// written range before the caller observes the new bytes. The ISS uses
	// it to invalidate predecoded basic blocks covering the range
	// (self-modifying code, image reloads). Clone deliberately does not
	// carry the hook over: each owner installs its own.
	OnWrite func(addr uint32, n int)
}

// NewMemory creates an empty memory whose symbolic bytes are built with b.
func NewMemory(b *smt.Builder) *Memory {
	return &Memory{pages: make(map[uint32]*page), ops: Ops{B: b}}
}

// Freeze marks every current page shared, turning this memory into an
// immutable snapshot that may be Cloned concurrently: Clone then only
// reads the page table instead of flipping shared flags (which would be
// a data race between two workers cloning at the same time). The frozen
// memory must not be written afterwards while clones are outstanding.
func (m *Memory) Freeze() {
	for _, p := range m.pages {
		p.shared = true
	}
	m.frozen = true
}

// Clone returns a copy-on-write snapshot. Both the original and the clone
// remain usable; pages are duplicated only when either side writes. A
// frozen memory may be cloned from multiple goroutines concurrently; an
// unfrozen one retains the original single-threaded contract (cloning
// marks its pages shared in place).
//
// Live (unfrozen) cloning is what state forking builds on: the clone may
// later be handed to another goroutine (a forked path resumed by a
// different worker) as long as the handoff itself synchronizes. The
// invariant that makes this safe is that a page's shared flag only ever
// transitions false→true, and only the page's exclusive owner performs
// the write — an already-shared page is never written again (not even to
// re-set the flag), so concurrent cloners of downstream forks only read.
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint32]*page, len(m.pages)), ops: m.ops}
	for k, p := range m.pages {
		if !m.frozen && !p.shared {
			p.shared = true
		}
		c.pages[k] = p
	}
	return c
}

func (m *Memory) pageFor(addr uint32, write bool) *page {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil {
		p = &page{}
		m.pages[idx] = p
		return p
	}
	if write && p.shared {
		np := &page{data: p.data}
		if p.sym != nil {
			np.sym = append([]*smt.Expr(nil), p.sym...)
		}
		m.pages[idx] = np
		return np
	}
	return p
}

// StoreByte writes a concolic byte. A nil symbolic part clears any prior
// symbolic byte at the address.
func (m *Memory) StoreByte(addr uint32, c byte, sym *smt.Expr) {
	if m.OnWrite != nil {
		m.OnWrite(addr, 1)
	}
	m.storeByte(addr, c, sym)
}

// storeByte is StoreByte without the OnWrite notification; multi-byte
// entry points call it per byte after notifying once for the full range.
func (m *Memory) storeByte(addr uint32, c byte, sym *smt.Expr) {
	if sym != nil && sym.Width != 8 {
		panic(fmt.Sprintf("concolic: StoreByte symbolic width %d", sym.Width))
	}
	p := m.pageFor(addr, true)
	off := addr & pageMask
	p.data[off] = c
	if sym != nil {
		p.ensureSym()
		p.sym[off] = sym
	} else if p.sym != nil {
		p.sym[off] = nil
	}
}

// LoadByteRaw reads one concolic byte.
func (m *Memory) LoadByteRaw(addr uint32) (byte, *smt.Expr) {
	p := m.pages[addr>>pageBits]
	if p == nil {
		return 0, nil
	}
	off := addr & pageMask
	if p.sym == nil {
		return p.data[off], nil
	}
	return p.data[off], p.sym[off]
}

// Store writes an n-byte little-endian concolic value (n in {1,2,4}). The
// symbolic part of v, when present, is split into byte expressions.
func (m *Memory) Store(addr uint32, n int, v Value) {
	if m.OnWrite != nil {
		m.OnWrite(addr, n)
	}
	for i := 0; i < n; i++ {
		var symByte *smt.Expr
		if v.Sym != nil {
			symByte = m.ops.B.Extract(v.Sym, uint8(i*8+7), uint8(i*8))
			if symByte.IsConst() {
				symByte = nil
			}
		}
		m.storeByte(addr+uint32(i), byte(v.C>>(8*i)), symByte)
	}
}

// Load reads an n-byte little-endian concolic value (n in {1,2,4}). When
// every byte is concrete the result is concrete; otherwise the byte
// expressions are concatenated (and the builder re-fuses contiguous
// extracts, so a round trip returns the original expression).
func (m *Memory) Load(addr uint32, n int) Value {
	var c uint32
	anySym := false
	var bytes [4]*smt.Expr
	var concs [4]byte
	for i := 0; i < n; i++ {
		cb, sb := m.LoadByteRaw(addr + uint32(i))
		concs[i] = cb
		bytes[i] = sb
		c |= uint32(cb) << (8 * i)
		if sb != nil {
			anySym = true
		}
	}
	if !anySym {
		return Value{C: c}
	}
	b := m.ops.B
	// Build MSB-first concat, materializing concrete bytes as constants.
	var e *smt.Expr
	for i := n - 1; i >= 0; i-- {
		be := bytes[i]
		if be == nil {
			be = b.Const(8, uint64(concs[i]))
		}
		if e == nil {
			e = be
		} else {
			e = b.Concat(e, be)
		}
	}
	// The builder constant-folds the concat (and re-fuses contiguous
	// extracts of a constant), so the result may be concrete even though
	// individual bytes carried expressions — collapse it at every width,
	// or constant-folded narrow loads stay symbolic and inflate the EPC
	// and trace conditions downstream.
	if e.IsConst() {
		return Value{C: uint32(e.Val)}
	}
	if n < 4 {
		// Loads narrower than a word return the raw width; the ISS
		// applies sign/zero extension via Ops.
		return Value{C: c, Sym: b.ZExt(e, 32)}
	}
	return Value{C: c, Sym: e}
}

// WriteBytes copies concrete bytes into memory (used by the loader).
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	if m.OnWrite != nil && len(data) > 0 {
		m.OnWrite(addr, len(data))
	}
	for i, by := range data {
		m.storeByte(addr+uint32(i), by, nil)
	}
}

// ReadBytes copies n concrete bytes out of memory (symbolic parts are
// ignored; used for diagnostics and for reading guest strings).
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i], _ = m.LoadByteRaw(addr + uint32(i))
	}
	return out
}

// CStringMax bounds ReadCString: a string without a NUL terminator
// within this many bytes is reported as truncated instead of silently
// cut short.
const CStringMax = 4096

// ReadCString reads a NUL-terminated guest string. The scan is bounded
// at CStringMax bytes; when no terminator is found within the bound,
// the truncated prefix is returned with ok == false (callers should
// treat that as a malformed string — typically a wild pointer — rather
// than a valid name).
func (m *Memory) ReadCString(addr uint32) (s string, ok bool) {
	var out []byte
	for i := 0; i < CStringMax; i++ {
		b, _ := m.LoadByteRaw(addr + uint32(i))
		if b == 0 {
			return string(out), true
		}
		out = append(out, b)
	}
	return string(out), false
}

// MakeSymbolic overwrites len(conc) bytes starting at addr with fresh
// symbolic bytes named name[0..len(conc)), whose concrete parts are set
// from conc. The range must not wrap the 32-bit address space and the
// name must be non-empty (variable names are the replay identity of the
// bytes); violations panic with a diagnostic rather than silently
// minting unusable variables. Returns the created byte expressions.
func (m *Memory) MakeSymbolic(addr uint32, conc []byte, name string) []*smt.Expr {
	if name == "" {
		panic("concolic: MakeSymbolic with empty name")
	}
	if uint64(addr)+uint64(len(conc)) > 1<<32 {
		panic(fmt.Sprintf("concolic: MakeSymbolic range [%#x, %#x+%d) wraps the address space",
			addr, addr, len(conc)))
	}
	if m.OnWrite != nil && len(conc) > 0 {
		m.OnWrite(addr, len(conc))
	}
	out := make([]*smt.Expr, len(conc))
	for i := range conc {
		v := m.ops.B.Var(8, fmt.Sprintf("%s[%d]", name, i))
		out[i] = v
		m.storeByte(addr+uint32(i), conc[i], v)
	}
	return out
}

// Reconcretize rewrites the concrete part of every symbolic byte to its
// value under ev, leaving the symbolic expressions untouched. This is
// the memory half of substituting a new solver model into a forked VP:
// the symbolic shadow (which encodes how each byte derives from the
// inputs) stays valid across models, but the concrete mirror was
// computed under the old input and must be re-evaluated. Copy-on-write
// is preserved — a shared page is copied only when one of its bytes
// actually changes — and OnWrite fires per changed byte so block-cache
// invalidation sees the mutation.
func (m *Memory) Reconcretize(ev *smt.Evaluator) {
	for idx := range m.pages {
		p := m.pages[idx]
		if p.sym == nil {
			continue
		}
		base := idx << pageBits
		for off := 0; off < pageSize; off++ {
			s := p.sym[off]
			if s == nil {
				continue
			}
			nb := byte(ev.Eval(s))
			if nb == p.data[off] {
				continue
			}
			if m.OnWrite != nil {
				m.OnWrite(base|uint32(off), 1)
			}
			// COW on first actual change; later changes of the same page
			// hit the now-private copy.
			p = m.pageFor(base|uint32(off), true)
			p.data[off] = nb
		}
	}
}
