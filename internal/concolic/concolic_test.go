package concolic

import (
	"sync"
	"testing"
	"testing/quick"

	"rvcte/internal/smt"
)

// evalV evaluates the symbolic part of v under env and checks it matches
// the concrete part when env assigns exactly the concrete inputs used.
func evalV(t *testing.T, v Value, env smt.Assignment) {
	t.Helper()
	if v.Sym == nil {
		return
	}
	if got := uint32(smt.Eval(v.Sym, env)); got != v.C {
		t.Fatalf("symbolic/concrete mismatch: sym=%d conc=%d (%v)", got, v.C, v.Sym)
	}
}

// TestOpsAgreement: for every binary op, the symbolic expression evaluated
// at the concrete operand values must equal the concrete result.
func TestOpsAgreement(t *testing.T) {
	b := smt.NewBuilder()
	o := Ops{B: b}
	x := b.Var(32, "x")
	y := b.Var(32, "y")

	type binOp struct {
		name string
		f    func(a, b Value) Value
	}
	ops := []binOp{
		{"add", o.Add}, {"sub", o.Sub}, {"and", o.And}, {"or", o.Or}, {"xor", o.Xor},
		{"sll", o.Sll}, {"srl", o.Srl}, {"sra", o.Sra}, {"slt", o.Slt}, {"sltu", o.Sltu},
		{"mul", o.Mul}, {"mulh", o.MulH}, {"mulhu", o.MulHU}, {"mulhsu", o.MulHSU},
		{"div", o.Div}, {"divu", o.DivU}, {"rem", o.Rem}, {"remu", o.RemU},
	}

	f := func(av, bv uint32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		// Symbolic-symbolic
		sa := Value{C: av, Sym: x}
		sb := Value{C: bv, Sym: y}
		env := smt.Assignment{0: uint64(av), 1: uint64(bv)}
		r := op.f(sa, sb)
		if r.Sym != nil && uint32(smt.Eval(r.Sym, env)) != r.C {
			t.Logf("%s symbolic mismatch: a=%#x b=%#x conc=%#x", op.name, av, bv, r.C)
			return false
		}
		// Concrete-concrete must stay concrete and agree with mixed.
		rc := op.f(Concrete(av), Concrete(bv))
		if !rc.IsConcrete() {
			t.Logf("%s concrete op produced symbolic value", op.name)
			return false
		}
		if rc.C != r.C {
			t.Logf("%s concrete vs concolic mismatch: %#x vs %#x", op.name, rc.C, r.C)
			return false
		}
		// Mixed: only one side symbolic.
		rm := op.f(sa, Concrete(bv))
		if rm.C != rc.C {
			t.Logf("%s mixed mismatch", op.name)
			return false
		}
		if rm.Sym != nil && uint32(smt.Eval(rm.Sym, env)) != rm.C {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestRiscvDivisionEdgeCases(t *testing.T) {
	b := smt.NewBuilder()
	o := Ops{B: b}
	x := b.Var(32, "x")

	cases := []struct {
		a, b       uint32
		div, rem   uint32
		divu, remu uint32
	}{
		{10, 0, 0xffffffff, 10, 0xffffffff, 10},                // div by zero
		{0x80000000, 0xffffffff, 0x80000000, 0, 0, 0x80000000}, // INT_MIN / -1
		{7, 2, 3, 1, 3, 1},
		{0xfffffff9, 2, 0xfffffffd, 0xffffffff, 0x7ffffffc, 1}, // -7/2 = -3 rem -1
		{7, 0xfffffffe, 0xfffffffd, 1, 0, 7},                   // 7/-2 = -3 rem 1
	}
	for _, tc := range cases {
		a, c := Concrete(tc.a), Concrete(tc.b)
		if got := o.Div(a, c).C; got != tc.div {
			t.Errorf("div(%#x,%#x) = %#x want %#x", tc.a, tc.b, got, tc.div)
		}
		if got := o.Rem(a, c).C; got != tc.rem {
			t.Errorf("rem(%#x,%#x) = %#x want %#x", tc.a, tc.b, got, tc.rem)
		}
		if got := o.DivU(a, c).C; got != tc.divu {
			t.Errorf("divu(%#x,%#x) = %#x want %#x", tc.a, tc.b, got, tc.divu)
		}
		if got := o.RemU(a, c).C; got != tc.remu {
			t.Errorf("remu(%#x,%#x) = %#x want %#x", tc.a, tc.b, got, tc.remu)
		}
		// Symbolic versions agree at the same point.
		env := smt.Assignment{0: uint64(tc.a)}
		sa := Value{C: tc.a, Sym: x}
		evalV(t, o.Div(sa, c), env)
		evalV(t, o.Rem(sa, c), env)
		evalV(t, o.DivU(sa, c), env)
		evalV(t, o.RemU(sa, c), env)
	}
}

func TestComparisons(t *testing.T) {
	b := smt.NewBuilder()
	o := Ops{B: b}
	x := b.Var(32, "x")

	a := Value{C: 5, Sym: x}
	c := Concrete(7)
	conc, sym := o.CmpLtu(a, c)
	if !conc {
		t.Error("5 < 7")
	}
	if sym == nil {
		t.Fatal("expected symbolic condition")
	}
	if smt.Eval(sym, smt.Assignment{0: 5}) != 1 {
		t.Error("sym cond at x=5 must be true")
	}
	if smt.Eval(sym, smt.Assignment{0: 9}) != 0 {
		t.Error("sym cond at x=9 must be false")
	}
	// Concrete-concrete comparisons produce no expression.
	if _, e := o.CmpEq(Concrete(1), Concrete(1)); e != nil {
		t.Error("concrete cmp must not build expressions")
	}
	// All comparison senses.
	if conc, _ := o.CmpGe(Value{C: 0x80000000, Sym: x}, Concrete(0)); conc {
		t.Error("INT_MIN >= 0 signed must be false")
	}
	if conc, _ := o.CmpGeu(Value{C: 0x80000000, Sym: x}, Concrete(0)); !conc {
		t.Error("0x80000000 >= 0 unsigned must be true")
	}
	if conc, _ := o.CmpNe(a, c); !conc {
		t.Error("5 != 7")
	}
}

func TestExtensions(t *testing.T) {
	b := smt.NewBuilder()
	o := Ops{B: b}
	x := b.Var(32, "x")

	v := Value{C: 0x80, Sym: x}
	env := smt.Assignment{0: 0x80}
	sb := o.SextByte(v)
	if sb.C != 0xffffff80 {
		t.Errorf("sext byte: %#x", sb.C)
	}
	evalV(t, sb, env)
	zb := o.ZextByte(v)
	if zb.C != 0x80 {
		t.Errorf("zext byte: %#x", zb.C)
	}
	evalV(t, zb, env)

	v2 := Value{C: 0x8000, Sym: x}
	env2 := smt.Assignment{0: 0x8000}
	sh := o.SextHalf(v2)
	if sh.C != 0xffff8000 {
		t.Errorf("sext half: %#x", sh.C)
	}
	evalV(t, sh, env2)
	zh := o.ZextHalf(v2)
	if zh.C != 0x8000 {
		t.Errorf("zext half: %#x", zh.C)
	}
	evalV(t, zh, env2)
}

func TestMemoryConcreteRoundTrip(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)

	m.Store(0x1000, 4, Concrete(0xdeadbeef))
	v := m.Load(0x1000, 4)
	if !v.IsConcrete() || v.C != 0xdeadbeef {
		t.Fatalf("word round trip: %v", v)
	}
	if v := m.Load(0x1000, 1); v.C != 0xef {
		t.Errorf("byte 0: %#x", v.C)
	}
	if v := m.Load(0x1003, 1); v.C != 0xde {
		t.Errorf("byte 3: %#x", v.C)
	}
	if v := m.Load(0x1002, 2); v.C != 0xdead {
		t.Errorf("half at 2: %#x", v.C)
	}
	// Unwritten memory reads as zero.
	if v := m.Load(0x99999, 4); !v.IsConcrete() || v.C != 0 {
		t.Errorf("unwritten: %v", v)
	}
	// Cross-page store/load.
	m.Store(0x1fff, 4, Concrete(0x11223344))
	if v := m.Load(0x1fff, 4); v.C != 0x11223344 {
		t.Errorf("cross page: %#x", v.C)
	}
}

func TestMemorySymbolicRoundTrip(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	x := b.Var(32, "x")

	m.Store(0x2000, 4, Value{C: 0x01020304, Sym: x})
	v := m.Load(0x2000, 4)
	if v.Sym != x {
		t.Fatalf("word round trip should re-fuse to x, got %v", v.Sym)
	}
	if v.C != 0x01020304 {
		t.Errorf("concrete part: %#x", v.C)
	}
	// Partial load keeps the right extract.
	lo := m.Load(0x2000, 2)
	if lo.C != 0x0304 {
		t.Errorf("half concrete: %#x", lo.C)
	}
	if lo.Sym == nil || uint32(smt.Eval(lo.Sym, smt.Assignment{0: 0x01020304})) != 0x0304 {
		t.Errorf("half symbolic eval mismatch: %v", lo.Sym)
	}
	// Overwriting with concrete data clears the symbolic bytes.
	m.Store(0x2000, 4, Concrete(7))
	if v := m.Load(0x2000, 4); !v.IsConcrete() || v.C != 7 {
		t.Errorf("concrete overwrite: %v", v)
	}
}

func TestMemoryMixedSymbolicBytes(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	y := b.Var(8, "y")

	m.Store(0x3000, 4, Concrete(0xaabbccdd))
	m.StoreByte(0x3001, 0x11, y)
	v := m.Load(0x3000, 4)
	if v.IsConcrete() {
		t.Fatal("expected symbolic word")
	}
	if v.C != 0xaabb11dd {
		t.Errorf("concrete part: %#x", v.C)
	}
	got := uint32(smt.Eval(v.Sym, smt.Assignment{0: 0x42}))
	if got != 0xaabb42dd {
		t.Errorf("eval with y=0x42: %#x", got)
	}
}

func TestMemoryClone(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	x := b.Var(32, "x")
	m.Store(0x1000, 4, Concrete(111))
	m.Store(0x2000, 4, Value{C: 222, Sym: x})

	c := m.Clone()
	// Writes to the clone must not affect the original, and vice versa.
	c.Store(0x1000, 4, Concrete(999))
	if v := m.Load(0x1000, 4); v.C != 111 {
		t.Errorf("original polluted by clone write: %d", v.C)
	}
	m.Store(0x2000, 4, Concrete(333))
	if v := c.Load(0x2000, 4); v.C != 222 || v.Sym == nil {
		t.Errorf("clone polluted by original write: %v", v)
	}
	// Clone of a clone.
	c2 := c.Clone()
	c2.Store(0x1000, 4, Concrete(555))
	if v := c.Load(0x1000, 4); v.C != 999 {
		t.Errorf("first clone polluted: %d", v.C)
	}
}

func TestMakeSymbolic(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	exprs := m.MakeSymbolic(0x4000, []byte{1, 2, 3, 4}, "d")
	if len(exprs) != 4 {
		t.Fatal("expected 4 byte exprs")
	}
	v := m.Load(0x4000, 4)
	if v.IsConcrete() || v.C != 0x04030201 {
		t.Fatalf("make symbolic: %v", v)
	}
	if b.VarName(0) != "d[0]" || b.VarName(3) != "d[3]" {
		t.Errorf("variable naming: %s %s", b.VarName(0), b.VarName(3))
	}
}

func TestReadHelpers(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	m.WriteBytes(0x100, []byte("hello\x00world"))
	if s, ok := m.ReadCString(0x100); !ok || s != "hello" {
		t.Errorf("cstring: %q ok=%v", s, ok)
	}
	if got := string(m.ReadBytes(0x106, 5)); got != "world" {
		t.Errorf("readbytes: %q", got)
	}
}

// TestFreezeCloneConcurrent: after Freeze, Clone must not mutate the
// snapshot's pages, so many goroutines may clone (and write to their
// clones) at once. Run under -race to catch regressions of the old
// clone-time shared-flag flip.
func TestFreezeCloneConcurrent(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	const span = 3 * pageSize
	for i := 0; i < span; i++ {
		m.StoreByte(uint32(i), byte(i), nil)
	}
	m.MakeSymbolic(100, make([]byte, 8), "frz")
	m.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := m.Clone()
			// Writes land on copy-on-write page copies private to the clone.
			for i := 0; i < 512; i++ {
				c.StoreByte(uint32(i*7%span), byte(g), nil)
			}
			if got, _ := c.LoadByteRaw(0); got != byte(g) {
				t.Errorf("clone %d: own write lost, got %d", g, got)
			}
		}(g)
	}
	wg.Wait()

	// The frozen snapshot is untouched.
	for i := 0; i < span; i += 97 {
		if got, _ := m.LoadByteRaw(uint32(i)); got != byte(i) {
			t.Fatalf("snapshot byte %d corrupted: got %d want %d", i, got, byte(i))
		}
	}
	if _, sym := m.LoadByteRaw(100); sym == nil {
		t.Fatal("snapshot symbolic byte lost")
	}
}

// TestUnfrozenCloneStillCopiesOnWrite guards the single-threaded
// contract: cloning an unfrozen memory and writing on either side must
// not leak into the other.
func TestUnfrozenCloneStillCopiesOnWrite(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	m.StoreByte(42, 1, nil)
	c := m.Clone()
	m.StoreByte(42, 2, nil)
	c.StoreByte(42, 3, nil)
	if got, _ := m.LoadByteRaw(42); got != 2 {
		t.Errorf("original sees %d want 2", got)
	}
	if got, _ := c.LoadByteRaw(42); got != 3 {
		t.Errorf("clone sees %d want 3", got)
	}
}
