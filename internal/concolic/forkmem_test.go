package concolic

import (
	"math/rand"
	"strings"
	"testing"

	"rvcte/internal/smt"
)

// TestNarrowLoadConstCollapse is the regression test for the narrow-load
// bug: a Load of width < 4 used to return the concatenated byte
// expression even when it folded to a constant, so downstream consumers
// treated a fully-determined value as symbolic (spurious trace
// conditions, dead solver queries). Constant expressions must collapse
// to concrete values at every width.
func TestNarrowLoadConstCollapse(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	// Shadow bytes that are symbolic expressions yet constant-valued —
	// e.g. the residue of a concretized store.
	for i, c := range []byte{0x11, 0x22, 0x33, 0x44} {
		m.StoreByte(0x5000+uint32(i), c, b.Const(8, uint64(c)))
	}
	for _, n := range []int{1, 2, 4} {
		v := m.Load(0x5000, n)
		if !v.IsConcrete() {
			t.Errorf("width %d: constant-valued load stayed symbolic: %v", n, v.Sym)
		}
		want := uint32(0x44332211) & (0xffffffff >> (32 - 8*n))
		if v.C != want {
			t.Errorf("width %d: got %#x want %#x", n, v.C, want)
		}
	}
	// A genuinely symbolic byte must still surface its expression.
	m.StoreByte(0x5001, 0x22, b.Var(8, "nb"))
	if v := m.Load(0x5000, 2); v.IsConcrete() {
		t.Error("symbolic half-word collapsed to concrete")
	}
}

func TestMakeSymbolicValidation(t *testing.T) {
	expectPanic := func(f func()) (msg string) {
		defer func() {
			if p := recover(); p != nil {
				msg, _ = p.(string)
				if msg == "" {
					msg = "panic"
				}
			}
		}()
		f()
		return ""
	}

	b := smt.NewBuilder()
	m := NewMemory(b)
	if msg := expectPanic(func() { m.MakeSymbolic(0x100, []byte{1}, "") }); !strings.Contains(msg, "empty name") {
		t.Errorf("empty name: got panic %q", msg)
	}
	if msg := expectPanic(func() { m.MakeSymbolic(0xfffffffe, make([]byte, 4), "w") }); msg == "" {
		t.Error("address-space wrap must panic")
	}
	// In-range calls still work, including one ending exactly at 2^32.
	m.MakeSymbolic(0xfffffffc, make([]byte, 4), "top")
	if v := m.Load(0xfffffffc, 4); v.IsConcrete() {
		t.Error("top-of-memory MakeSymbolic did not take")
	}
}

func TestReadCStringTruncation(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	// No NUL within CStringMax: the truncated prefix comes back ok=false.
	for i := 0; i < CStringMax; i++ {
		m.StoreByte(0x8000+uint32(i), 'a', nil)
	}
	if s, ok := m.ReadCString(0x8000); ok || len(s) != CStringMax {
		t.Errorf("unterminated: ok=%v len=%d", ok, len(s))
	}
	// NUL at the last in-bound byte: still a valid string.
	m.StoreByte(0x8000+uint32(CStringMax-1), 0, nil)
	if s, ok := m.ReadCString(0x8000); !ok || len(s) != CStringMax-1 {
		t.Errorf("boundary terminator: ok=%v len=%d", ok, len(s))
	}
}

// TestLiveCloneChainDifferential interleaves writes, loads and forks
// across a growing chain of LIVE (unfrozen) clones — the access pattern
// of fork-based exploration, where a checkpoint is cloned from a running
// core and both sides keep executing. Each fork must observe exactly its
// own write history; a COW aliasing bug (e.g. a miss in the shared-flag
// handoff) shows up as one fork seeing another's bytes. Runs under
// -race via make race (the concolic package is on the race list).
func TestLiveCloneChainDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := smt.NewBuilder()

	type fork struct {
		m      *Memory
		shadow map[uint32]byte
	}
	root := &fork{m: NewMemory(b), shadow: map[uint32]byte{}}
	forks := []*fork{root}
	const span = 4 * pageSize

	for step := 0; step < 6000; step++ {
		f := forks[rng.Intn(len(forks))]
		switch op := rng.Intn(12); {
		case op == 0 && len(forks) < 24: // fork a live memory mid-stream
			sh := make(map[uint32]byte, len(f.shadow))
			for k, v := range f.shadow {
				sh[k] = v
			}
			forks = append(forks, &fork{m: f.m.Clone(), shadow: sh})
		case op <= 4: // byte load, checked against this fork's own history
			addr := uint32(rng.Intn(span))
			if got, _ := f.m.LoadByteRaw(addr); got != f.shadow[addr] {
				t.Fatalf("step %d: fork read %#x=%d, its own history says %d",
					step, addr, got, f.shadow[addr])
			}
		case op <= 8: // byte store
			addr := uint32(rng.Intn(span))
			v := byte(rng.Intn(256))
			f.m.StoreByte(addr, v, nil)
			f.shadow[addr] = v
		default: // word store (exercises multi-byte + page-crossing paths)
			addr := uint32(rng.Intn(span - 4))
			v := rng.Uint32()
			f.m.Store(addr, 4, Concrete(v))
			for i := 0; i < 4; i++ {
				f.shadow[addr+uint32(i)] = byte(v >> (8 * i))
			}
		}
	}

	// Full sweep: every fork sees exactly its own final state.
	for i, f := range forks {
		for addr := uint32(0); addr < span; addr += 13 {
			if got, _ := f.m.LoadByteRaw(addr); got != f.shadow[addr] {
				t.Fatalf("final sweep fork %d: %#x=%d want %d", i, addr, got, f.shadow[addr])
			}
		}
	}
}

// TestReconcretize checks the fork-time model substitution: symbolic
// shadow bytes are re-evaluated under the child's assignment (zero
// default for unassigned variables), concrete-only pages are untouched,
// and the write-back is itself copy-on-write against sibling clones.
func TestReconcretize(t *testing.T) {
	b := smt.NewBuilder()
	m := NewMemory(b)
	m.MakeSymbolic(0x1000, []byte{0xaa, 0xbb, 0xcc}, "in")
	m.Store(0x2000, 4, Concrete(0x12345678))
	sibling := m.Clone()

	var touched []uint32
	m.OnWrite = func(addr uint32, n int) { touched = append(touched, addr) }
	m.Reconcretize(smt.NewEvaluator(smt.Assignment{0: 0x5a, 2: 0x7f}))

	if got := m.Load(0x1000, 1); got.C != 0x5a || got.Sym == nil {
		t.Errorf("assigned byte: %+v", got)
	}
	if got := m.Load(0x1001, 1); got.C != 0 {
		t.Errorf("unassigned byte must default to zero, got %#x", got.C)
	}
	if got := m.Load(0x1002, 1); got.C != 0x7f {
		t.Errorf("third byte: %#x", got.C)
	}
	if got := m.Load(0x2000, 4); !got.IsConcrete() || got.C != 0x12345678 {
		t.Errorf("concrete page disturbed: %+v", got)
	}
	if len(touched) != 3 {
		t.Errorf("OnWrite fired %d times, want 3 (only changed bytes)", len(touched))
	}
	// The sibling clone still sees the parent-path concrete values.
	if got := sibling.Load(0x1000, 1); got.C != 0xaa {
		t.Errorf("reconcretize leaked into sibling: %#x", got.C)
	}
}
