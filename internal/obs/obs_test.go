package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the boundary semantics: a value equal to a
// bound lands in that bound's bucket; above every bound lands in the
// overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{0, 5, 10, 11, 100, 101, 1_000_000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if want := []int64{10, 100}; fmt.Sprint(s.Bounds) != fmt.Sprint(want) {
		t.Fatalf("bounds = %v, want %v", s.Bounds, want)
	}
	// <=10: {0,5,10}; <=100: {11,100}; overflow: {101, 1e6}
	if want := []int64{3, 2, 2}; fmt.Sprint(s.Buckets) != fmt.Sprint(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+5+10+11+100+101+1_000_000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Unsorted bounds are sorted at creation.
	h2 := r.Histogram("h2", []int64{100, 1, 10})
	h2.Observe(2)
	if b := r.Snapshot().Histograms["h2"].Bounds; b[0] != 1 || b[2] != 100 {
		t.Fatalf("bounds not sorted: %v", b)
	}
}

// TestConcurrentCounters exercises the registry and its handles from
// many goroutines; run under -race this is the data-race check, and the
// final totals check that no increment is lost.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve handles inside the goroutine: wiring is also
			// concurrent in parallel engines.
			c := r.Counter("shared")
			g := r.Gauge("gauge")
			h := r.Histogram("lat", LatencyBoundsUS)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 500))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilSafety: every handle and bundle method must be a no-op on nil,
// the contract the engines' unconditional call sites rely on.
func TestNilSafety(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
		o *Obs
		s *Tracer
	)
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	s.Emit(Event{Ev: "x"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must resolve nil handles")
	}
	if o.Snapshot() != nil || o.Registry() != nil || o.Trace() != nil {
		t.Fatal("nil obs accessors must return nil")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

// TestTracerRoundTrip writes a mixed event stream and decodes it back,
// field by field.
func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	in := []Event{
		{Ev: EvPathStart, Path: 3},
		{Ev: EvPathEnd, Path: 3, DurUS: 1234, N: 5678, Result: "ok"},
		{Ev: EvSatQuery, DurUS: 42, N: 7, Result: "sat"},
		{Ev: EvCacheHit, Class: "eval"},
		{Ev: EvFinding, Path: 9, PC: 0x80000010, Err: "assertion failed"},
		{Ev: EvRunEnd, DurUS: 10, Class: "exhausted"},
	}
	for _, ev := range in {
		tr.Emit(ev)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != int64(len(in)) {
		t.Fatalf("Events() = %d, want %d", got, len(in))
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	lastT := -1.0
	for i, ev := range out {
		if ev.T < lastT {
			t.Fatalf("event %d: timestamps not monotone: %f after %f", i, ev.T, lastT)
		}
		lastT = ev.T
		want := in[i]
		want.T = ev.T // stamped by the tracer
		if ev != want {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	// A malformed line must fail the decode.
	if _, err := ReadTrace(strings.NewReader("{\"ev\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("ReadTrace accepted a malformed line")
	}
	// An unknown field must fail the decode (schema drift guard).
	if _, err := ReadTrace(strings.NewReader("{\"ev\":\"x\",\"bogus\":1}\n")); err == nil {
		t.Fatal("ReadTrace accepted an unknown field")
	}
}

// TestProgressShutdown checks the reporter goroutine actually exits on
// Stop (no leak) and that it emits lines while running.
func TestProgressShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	o := New()
	o.Metrics.Counter("smt.queries").Add(123)
	o.Metrics.Counter("iss.instr").Add(1_500_000)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := StartProgress(o, ProgressOptions{Interval: 5 * time.Millisecond, W: w, Budget: time.Minute})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "satq=123") || !strings.Contains(out, "instr=1.5M") || !strings.Contains(out, "eta=") {
		t.Fatalf("unexpected progress output: %q", out)
	}
	// After Stop returns the goroutine must be gone. Allow scheduler
	// noise from unrelated runtime goroutines with a bounded retry.
	for i := 0; ; i++ {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 1000 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
	// Stopping a nil-Obs reporter must not hang either.
	p2 := StartProgress(nil, ProgressOptions{Interval: time.Millisecond})
	p2.Stop()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestProgressLine pins the formatting of one line without timing.
func TestProgressLine(t *testing.T) {
	cur := &Snapshot{
		Counters: map[string]int64{
			"cte.paths": 200, "smt.queries": 1000,
			"qcache.queries": 1000, "qcache.hits": 400, "qcache.eval_hits": 100,
			"iss.instr": 2_000_000, "cte.findings": 2,
		},
		Gauges: map[string]int64{"cte.cover_pcs": 321},
	}
	prev := &Snapshot{Counters: map[string]int64{"cte.paths": 100, "smt.queries": 500}}
	line := progressLine(cur, prev, 2*time.Second, 10*time.Second, 30*time.Second)
	for _, want := range []string{
		"obs 10s:", "paths=200 (50/s)", "satq=1000 (250/s)",
		"cachehit=50%", "instr=2.0M", "cover=321", "findings=2", "eta=20s",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

// TestServe exercises the HTTP endpoint end to end on an ephemeral port.
func TestServe(t *testing.T) {
	o := New()
	o.Metrics.Counter("cte.paths").Add(7)
	addr, shutdown, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["cte.paths"] != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp2.StatusCode)
	}
}
