package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured trace record. Every event carries the kind
// (Ev) and a timestamp relative to tracer start (T, seconds); the
// remaining fields are kind-specific and omitted when zero, so the
// JSONL stream stays compact. The event taxonomy (which kinds set which
// fields) is documented in DESIGN.md "Observability".
type Event struct {
	T      float64 `json:"t"`                // seconds since tracer start
	Ev     string  `json:"ev"`               // event kind ("path_end", "sat_query", ...)
	Path   int     `json:"path,omitempty"`   // path/exec index
	DurUS  int64   `json:"dur_us,omitempty"` // duration, microseconds
	N      int64   `json:"n,omitempty"`      // kind-specific magnitude (instrs, execs, flips, ...)
	N2     int64   `json:"n2,omitempty"`     // kind-specific secondary magnitude
	Result string  `json:"result,omitempty"` // "sat" | "unsat" | "unknown" | exit status ...
	Class  string  `json:"class,omitempty"`  // cache-hit class, stop reason, ...
	PC     uint32  `json:"pc,omitempty"`     // guest PC (findings)
	Err    string  `json:"err,omitempty"`    // finding / error text
}

// Event kinds emitted by the engines. Consumers should tolerate unknown
// kinds: the taxonomy grows with the system.
const (
	EvPathStart  = "path_start"  // Path
	EvPathEnd    = "path_end"    // Path, DurUS, N=instrs, Result=status
	EvSatQuery   = "sat_query"   // DurUS, N=#conds, Result
	EvCacheHit   = "cache_hit"   // Class: "exact" | "eval" | "subsume"
	EvFuzzBatch  = "fuzz_batch"  // DurUS, N=execs so far, N2=corpus size
	EvEscalation = "escalation"  // Path=escalation index, N=flips attempted, N2=injected
	EvFlipSolved = "flip_solved" // N=flip site index
	EvFinding    = "finding"     // Path, PC, Err
	EvRunEnd     = "run_end"     // DurUS, Class=stop reason
)

// Tracer writes events as one JSON object per line. Emit is safe for
// concurrent use (one mutex around the buffered writer) and a no-op on
// a nil receiver, so the tracing-disabled fast path is a single nil
// test at the call site.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // underlying file, when opened by OpenTrace
	enc    *json.Encoder
	start  time.Time
	events int64
}

// NewTracer wraps w in a tracer. The caller owns w; Close flushes but
// does not close it.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Tracer{w: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// OpenTrace creates (truncates) the JSONL trace file at path.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTracer(f)
	t.c = f
	return t, nil
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit appends one event to the stream. The event's T field is stamped
// by the tracer; callers never set it.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.T = time.Since(t.start).Seconds()
	_ = t.enc.Encode(&ev) // write errors surface at Close
	t.events++
	t.mu.Unlock()
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Close flushes the stream (and closes the underlying file when the
// tracer was created by OpenTrace). Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
		t.c = nil
	}
	return err
}

// ReadTrace decodes a full JSONL event stream, failing on the first
// malformed line. Unknown fields are rejected so schema drift between
// producer and consumer is caught immediately (cmd/tracecheck and the
// round-trip tests are built on this).
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var evs []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return evs, nil
		} else if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}
