// Package obs is the observability layer shared by every engine in the
// repo: a lock-cheap metrics registry (atomic counters, gauges and
// bucketed latency histograms), a structured JSONL event tracer, a
// periodic progress reporter, and an opt-in HTTP endpoint serving the
// live metric snapshot plus pprof. Everything is stdlib-only.
//
// Design constraints (DESIGN.md "Observability"):
//
//   - The hot path must stay hot. Counter/Gauge/Histogram methods are
//     nil-safe no-ops, so instrumented code holds plain pointers and
//     pays one nil test plus one atomic op when metrics are on, and one
//     nil test when they are off (BenchmarkObsCounterHot guards this).
//     No map lookup ever happens on the hot path: handles are resolved
//     once, at wiring time.
//   - Tracing off must cost one nil test. Tracer methods no-op on a nil
//     receiver; engines keep the `*Tracer` and call Emit directly.
//   - Metric names are a flat, dot-separated namespace owned by the
//     producing package ("smt.queries", "cte.paths", "fuzz.execs", ...).
//     The full taxonomy is documented in DESIGN.md and is part of the
//     -json output contract.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops), so disabled metrics cost one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBoundsUS is the default histogram bucketing for query/path
// latencies, in microseconds: roughly logarithmic from 1µs to 1s.
var LatencyBoundsUS = []int64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
}

// Histogram is a bucketed distribution: Observe(v) increments the first
// bucket whose upper bound is >= v; values above every bound land in the
// implicit overflow bucket. Bounds are fixed at creation; observations
// are lock-free atomic increments. Nil-safe like Counter.
type Histogram struct {
	bounds  []int64        // ascending upper bounds; len(buckets) == len(bounds)+1
	buckets []atomic.Int64 // counts per bucket, last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in microseconds (the unit of
// LatencyBoundsUS).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Microseconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds the named metrics of one run. Handle resolution
// (Counter/Gauge/Histogram) takes a mutex and is meant for wiring time;
// the returned handles are lock-free. A nil *Registry resolves every
// name to a nil handle, so disabled observability needs no special
// casing at call sites.
//
// A Registry is a view — a name prefix over shared storage. Scoped
// derives a sub-view, which the campaign server uses to give every
// campaign its own metric namespace ("campaign.<id>.") inside one
// process-wide registry: the scoped snapshot shows a campaign its own
// metrics under local names, while the root /metrics endpoint sees the
// fully qualified union.
type Registry struct {
	prefix string
	s      *regState
}

type regState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}}
}

// Scoped returns a view of the same registry under prefix (a trailing
// dot is added if missing, matching the dot-separated namespace).
// Handles resolved through the view live in the shared storage with
// fully qualified names; the view's Snapshot sees only its own subtree,
// with the prefix stripped. Scoping composes: r.Scoped("a").Scoped("b")
// is the "a.b." subtree.
func (r *Registry) Scoped(prefix string) *Registry {
	if r == nil {
		return nil
	}
	if prefix != "" && !strings.HasSuffix(prefix, ".") {
		prefix += "."
	}
	return &Registry{prefix: r.prefix + prefix, s: r.s}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	c := r.s.counters[name]
	if c == nil {
		c = &Counter{}
		r.s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	g := r.s.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	h := r.s.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.s.hists[name] = h
	}
	return h
}

// HistSnapshot is the serializable state of one histogram.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"` // len(Bounds)+1, last is overflow
}

// Snapshot is a point-in-time copy of every metric in a registry, the
// unit the -json report, the /metrics endpoint and the progress
// reporter consume.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric in this
// view's subtree, under view-local names (the scope prefix stripped).
// Values are loaded individually (no global lock), so a snapshot taken
// during a run is consistent per-metric, not across metrics — fine for
// progress display and end-of-run totals (the engines have quiesced by
// then).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	s := &Snapshot{Counters: map[string]int64{}}
	for name, c := range r.s.counters {
		if local, ok := strings.CutPrefix(name, r.prefix); ok {
			s.Counters[local] = c.Value()
		}
	}
	for name, g := range r.s.gauges {
		local, ok := strings.CutPrefix(name, r.prefix)
		if !ok {
			continue
		}
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[local] = g.Value()
	}
	for name, h := range r.s.hists {
		local, ok := strings.CutPrefix(name, r.prefix)
		if !ok {
			continue
		}
		hs := HistSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Bounds: append([]int64(nil), h.bounds...),
		}
		hs.Buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistSnapshot{}
		}
		s.Histograms[local] = hs
	}
	return s
}

// Obs bundles the observability state threaded through a run: a metrics
// registry (always present on a non-nil Obs) and an optional tracer.
// Engines accept a *Obs and tolerate nil — a nil Obs resolves every
// metric handle to nil and traces nothing.
type Obs struct {
	Metrics *Registry
	Tracer  *Tracer
}

// New creates an Obs with a fresh registry and no tracer.
func New() *Obs {
	return &Obs{Metrics: NewRegistry()}
}

// Registry returns the metrics registry (nil on a nil Obs).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Scoped returns an Obs whose registry is the prefix-scoped view of
// this one's (shared storage, see Registry.Scoped) and which shares the
// tracer. The campaign server hands each campaign o.Scoped("campaign."+id).
func (o *Obs) Scoped(prefix string) *Obs {
	if o == nil {
		return nil
	}
	return &Obs{Metrics: o.Metrics.Scoped(prefix), Tracer: o.Tracer}
}

// Trace returns the tracer (nil on a nil Obs or when tracing is off).
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Snapshot returns the current metric snapshot (nil on a nil Obs).
func (o *Obs) Snapshot() *Snapshot {
	if o == nil {
		return nil
	}
	return o.Metrics.Snapshot()
}
