package obs

import (
	"testing"
)

func TestScopedRegistrySharesState(t *testing.T) {
	root := NewRegistry()
	a := root.Scoped("campaign.a") // trailing dot added
	b := root.Scoped("campaign.b.")

	a.Counter("paths").Add(3)
	b.Counter("paths").Add(5)
	root.Counter("uptime").Inc()

	// The scoped handle and the fully qualified root handle are the same
	// counter.
	if got := root.Counter("campaign.a.paths").Value(); got != 3 {
		t.Errorf("root view of scoped counter = %d, want 3", got)
	}
	a.Gauge("workers").Set(2)
	a.Histogram("lease_us", LatencyBoundsUS).Observe(10)

	// Root snapshot holds the union under qualified names.
	rs := root.Snapshot()
	if rs.Counters["campaign.a.paths"] != 3 || rs.Counters["campaign.b.paths"] != 5 || rs.Counters["uptime"] != 1 {
		t.Errorf("root snapshot counters = %v", rs.Counters)
	}
	if rs.Gauges["campaign.a.workers"] != 2 {
		t.Errorf("root snapshot gauges = %v", rs.Gauges)
	}

	// A scoped snapshot sees only its subtree, prefix stripped.
	as := a.Snapshot()
	if len(as.Counters) != 1 || as.Counters["paths"] != 3 {
		t.Errorf("scoped snapshot counters = %v", as.Counters)
	}
	if h, ok := as.Histograms["lease_us"]; !ok || h.Count != 1 {
		t.Errorf("scoped snapshot histograms = %v", as.Histograms)
	}
	if _, leaked := as.Gauges["campaign.b.paths"]; leaked {
		t.Error("sibling scope leaked into snapshot")
	}
}

func TestScopedRegistryComposes(t *testing.T) {
	root := NewRegistry()
	inner := root.Scoped("a").Scoped("b")
	inner.Counter("x").Inc()
	if got := root.Snapshot().Counters["a.b.x"]; got != 1 {
		t.Errorf("nested scope name = %v", root.Snapshot().Counters)
	}
	if got := inner.Snapshot().Counters["x"]; got != 1 {
		t.Errorf("nested scoped snapshot = %v", inner.Snapshot().Counters)
	}
}

func TestScopedNilSafety(t *testing.T) {
	var r *Registry
	if r.Scoped("x") != nil {
		t.Error("nil registry must scope to nil")
	}
	r.Scoped("x").Counter("c").Inc() // must not panic

	var o *Obs
	if o.Scoped("x") != nil {
		t.Error("nil Obs must scope to nil")
	}
}

func TestObsScopedSharesTracer(t *testing.T) {
	o := New()
	s := o.Scoped("campaign.z")
	s.Registry().Counter("c").Add(7)
	if got := o.Snapshot().Counters["campaign.z.c"]; got != 7 {
		t.Errorf("Obs scope not shared: %v", o.Snapshot().Counters)
	}
	if s.Trace() != o.Trace() {
		t.Error("scoped Obs must share the tracer")
	}
}
