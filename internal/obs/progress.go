package obs

import (
	"fmt"
	"io"
	"os"
	"time"
)

// ProgressOptions configures the periodic progress reporter.
type ProgressOptions struct {
	Interval time.Duration // tick period (default 2s)
	W        io.Writer     // destination (default os.Stderr)
	Budget   time.Duration // wall-clock budget for the ETA column (0 = none)
}

// Progress is a background reporter printing one status line per tick,
// built from the well-known metric names of the engines (DESIGN.md
// "Observability"): paths/s, execs/s, SAT queries/s, cache hit rate,
// instructions, coverage edges, and time remaining against the budget.
type Progress struct {
	stop chan struct{}
	done chan struct{}
}

// StartProgress launches the reporter goroutine. Stop shuts it down and
// waits for it to exit (the shutdown-leak test hangs off this
// guarantee). A nil Obs yields a reporter that prints nothing.
func StartProgress(o *Obs, opt ProgressOptions) *Progress {
	if opt.Interval <= 0 {
		opt.Interval = 2 * time.Second
	}
	if opt.W == nil {
		opt.W = os.Stderr
	}
	p := &Progress{stop: make(chan struct{}), done: make(chan struct{})}
	go p.loop(o, opt)
	return p
}

// Stop terminates the reporter and blocks until its goroutine has
// exited. Safe to call more than once is NOT guaranteed; callers stop
// exactly once (typically via defer).
func (p *Progress) Stop() {
	close(p.stop)
	<-p.done
}

func (p *Progress) loop(o *Obs, opt ProgressOptions) {
	defer close(p.done)
	if o == nil {
		<-p.stop
		return
	}
	start := time.Now()
	tick := time.NewTicker(opt.Interval)
	defer tick.Stop()
	prev := o.Snapshot()
	prevT := start
	for {
		select {
		case <-p.stop:
			return
		case now := <-tick.C:
			cur := o.Snapshot()
			fmt.Fprintln(opt.W, progressLine(cur, prev, now.Sub(prevT), time.Since(start), opt.Budget))
			prev, prevT = cur, now
		}
	}
}

// progressLine renders one status line from two consecutive snapshots.
// Split out (and exported to tests) so formatting is testable without
// timing.
func progressLine(cur, prev *Snapshot, dt, elapsed, budget time.Duration) string {
	c := func(name string) int64 { return cur.Counters[name] }
	rate := func(name string) float64 {
		if dt <= 0 {
			return 0
		}
		d := cur.Counters[name] - prev.Counters[name]
		return float64(d) / dt.Seconds()
	}
	s := fmt.Sprintf("obs %s:", fmtDur(elapsed))
	if v := c("cte.paths"); v > 0 || rate("cte.paths") > 0 {
		s += fmt.Sprintf(" paths=%s (%s/s)", fmtCount(v), fmtRate(rate("cte.paths")))
	}
	if v := c("fuzz.execs"); v > 0 {
		s += fmt.Sprintf(" execs=%s (%s/s)", fmtCount(v), fmtRate(rate("fuzz.execs")))
	}
	s += fmt.Sprintf(" satq=%s (%s/s)", fmtCount(c("smt.queries")), fmtRate(rate("smt.queries")))
	if q := c("qcache.queries"); q > 0 {
		hits := c("qcache.hits") + c("qcache.eval_hits") + c("qcache.subsume_hits")
		s += fmt.Sprintf(" cachehit=%d%%", hits*100/q)
	}
	s += fmt.Sprintf(" instr=%s", fmtCount(c("iss.instr")))
	if cur.Gauges != nil {
		if v := cur.Gauges["fuzz.edges"]; v > 0 {
			s += fmt.Sprintf(" edges=%s", fmtCount(v))
		}
		if v := cur.Gauges["cte.cover_pcs"]; v > 0 {
			s += fmt.Sprintf(" cover=%s", fmtCount(v))
		}
		if v := cur.Gauges["fuzz.corpus"]; v > 0 {
			s += fmt.Sprintf(" corpus=%d", v)
		}
	}
	if f := c("cte.findings") + c("fuzz.findings"); f > 0 {
		s += fmt.Sprintf(" findings=%d", f)
	}
	if budget > 0 {
		if rem := budget - elapsed; rem > 0 {
			s += fmt.Sprintf(" eta=%s", fmtDur(rem))
		} else {
			s += " eta=0s"
		}
	}
	return s
}

// fmtCount renders a counter with a k/M/G suffix past 4 digits.
func fmtCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}

func fmtRate(v float64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtDur(d time.Duration) string {
	if d >= time.Minute {
		return d.Round(time.Second).String()
	}
	return d.Round(100 * time.Millisecond).String()
}
