package obs

import (
	"testing"
	"time"
)

// BenchmarkObsCounterHot guards the two hot-path costs the engines pay
// per event: a live atomic increment (obs on) and a nil-receiver no-op
// (obs off). The nil case must stay at ~1ns — it is executed once per
// retired path/query/exec even when observability is disabled.
func BenchmarkObsCounterHot(b *testing.B) {
	b.Run("live", func(b *testing.B) {
		c := NewRegistry().Counter("bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("nil", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("nil-histogram", func(b *testing.B) {
		var h *Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveDuration(time.Microsecond)
		}
	})
	b.Run("live-histogram", func(b *testing.B) {
		h := NewRegistry().Histogram("bench", LatencyBoundsUS)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i & 1023))
		}
	})
}

// BenchmarkTracerEmit measures one traced event (buffered JSON encode
// under a mutex) against the disabled nil path.
func BenchmarkTracerEmit(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var t *Tracer
		for i := 0; i < b.N; i++ {
			t.Emit(Event{Ev: EvSatQuery, DurUS: 12, Result: "sat"})
		}
	})
	b.Run("live", func(b *testing.B) {
		t := NewTracer(discard{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.Emit(Event{Ev: EvSatQuery, DurUS: 12, Result: "sat"})
		}
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
