package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the diagnostics endpoints as an http.Handler:
//
//	GET /metrics       — the Snapshot as indented JSON
//	GET /debug/pprof/  — the standard runtime profiles
//
// Serve mounts it standalone; servers that grow more routes (the
// campaign control plane) mount it on their own mux alongside theirs.
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes Handler on addr (e.g. "localhost:6060"). It returns the
// bound address (useful with a ":0" addr in tests) and a shutdown
// function. The server runs until the shutdown function is called;
// serving errors after a successful bind are dropped (the endpoint is
// best-effort diagnostics, never load-bearing for a run).
func Serve(addr string, o *Obs) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(o), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
