package nestedvm

import (
	"context"
	"testing"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// TestNestedMatchesNative: executing any guest through the nested
// interpreter must produce bit-identical results to the native engine.
func TestNestedMatchesNative(t *testing.T) {
	progs := []guest.Program{
		func() guest.Program {
			p, _ := guest.BenchProgram("qsort")
			p.Defines = map[string]string{"QSORT_N": "150"}
			return p
		}(),
		func() guest.Program {
			p, _ := guest.BenchProgram("dhrystone")
			p.Defines = map[string]string{"DHRY_RUNS": "40"}
			return p
		}(),
		{Name: "strings", Sources: []guest.Source{guest.C("m.c", `
int main(void) {
    char buf[40];
    strcpy(buf, "nested interpretation");
    print_u32(strlen(buf));
    return strcmp(buf, "nested interpretation") == 0 ? 3 : 4;
}`)}},
	}
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			native, _, err := guest.NewCore(smt.NewBuilder(), p)
			if err != nil {
				t.Fatal(err)
			}
			native.Run(0)

			nested, _, err := guest.NewCore(smt.NewBuilder(), p)
			if err != nil {
				t.Fatal(err)
			}
			Attach(nested)
			nested.Run(0)

			if native.Err != nil || nested.Err != nil {
				t.Fatalf("errors: native=%v nested=%v", native.Err, nested.Err)
			}
			if native.ExitCode != nested.ExitCode {
				t.Errorf("exit: native=%d nested=%d", native.ExitCode, nested.ExitCode)
			}
			if string(native.Output) != string(nested.Output) {
				t.Errorf("output: native=%q nested=%q", native.Output, nested.Output)
			}
			if native.InstrCount != nested.InstrCount {
				t.Errorf("instr: native=%d nested=%d", native.InstrCount, nested.InstrCount)
			}
		})
	}
}

// TestNestedSymbolicEquivalence: symbolic exploration through the nested
// layer finds the same paths and the same bug as the native engine.
func TestNestedSymbolicEquivalence(t *testing.T) {
	b1 := smt.NewBuilder()
	nativeCore, _, err := guest.NewCore(b1, guest.SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	nativeRep := cte.NewSession(nativeCore, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())

	b2 := smt.NewBuilder()
	nestedCore, _, err := guest.NewCore(b2, guest.SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	Attach(nestedCore)
	nestedRep := cte.NewSession(nestedCore, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())

	if len(nativeRep.Findings) == 0 || len(nestedRep.Findings) == 0 {
		t.Fatalf("both engines must find the sensor bug: native=%v nested=%v",
			nativeRep.Findings, nestedRep.Findings)
	}
	if nativeRep.Paths != nestedRep.Paths {
		t.Errorf("path counts differ: native=%d nested=%d", nativeRep.Paths, nestedRep.Paths)
	}
	if nativeRep.Findings[0].Err.Kind != nestedRep.Findings[0].Err.Kind {
		t.Errorf("finding kinds differ")
	}
}

// TestNestedIsSlower: the added interpretation layer must cost real time
// (the factor underlying the paper's FoI column). We only assert a
// conservative lower bound to keep the test robust across machines.
func TestNestedIsSlower(t *testing.T) {
	p, _ := guest.BenchProgram("sha256")
	p.Defines = map[string]string{"SHA_ITERS": "6", "SHA_MSG_LEN": "256"}

	run := func(attach bool) time.Duration {
		core, _, err := guest.NewCore(smt.NewBuilder(), p)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			Attach(core)
		}
		start := time.Now()
		core.Run(0)
		if core.Err != nil {
			t.Fatal(core.Err)
		}
		return time.Since(start)
	}
	native := run(false)
	nested := run(true)
	ratio := float64(nested) / float64(native)
	t.Logf("native=%v nested=%v factor=%.1fx", native, nested, ratio)
	if ratio < 1.5 {
		t.Errorf("nested interpretation should be clearly slower, factor %.2f", ratio)
	}
}

// TestNestedSystemFallback: ecall/wfi/csr fall back to the native path
// and still work under the hook (peripheral interrupt flow).
func TestNestedSystemFallback(t *testing.T) {
	core, _, err := guest.NewCore(smt.NewBuilder(), guest.FreeRTOSSensorProgram(false, 2))
	if err != nil {
		t.Fatal(err)
	}
	Attach(core)
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("nested RTOS run: %v", core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("exit %d", core.ExitCode)
	}
}

var _ = iss.ErrNone
