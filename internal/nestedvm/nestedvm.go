// Package nestedvm models the paper's "S2E" baseline: running the VP
// (with its ISS) inside a generic symbolic execution engine. Instead of
// the specialized concolic ISS executing RISC-V instructions natively,
// every instruction is re-translated on each step into a sequence of
// generic micro-operations and evaluated by a boxed, dynamically
// dispatched interpreter over a heap-allocated operand stack — the same
// structural overheads (an additional interpretation layer, generic
// state representation, no translation caching) that make the
// VP-inside-S2E configuration one to two orders of magnitude slower than
// the specialized engine (paper §3.1.2, §4.1). The contrast is
// deliberate: the native engine caches decoded basic blocks across
// executions (see internal/iss bbcache.go), while this baseline
// re-translates every instruction on every step by design — installing
// an ExecHook also routes iss.Core.Run through the legacy per-step
// loop, so the baseline never silently benefits from the block cache.
//
// The CTE semantics (path condition tracking, peripherals, protected
// zones) are inherited unchanged from internal/iss through its ExecHook
// interface, so results are bit-identical to the native engine — only
// the execution mechanism differs.
package nestedvm

import (
	"rvcte/internal/concolic"
	"rvcte/internal/iss"
	"rvcte/internal/rv32"
	"rvcte/internal/smt"
)

// uopKind enumerates the generic micro-operations.
type uopKind uint8

const (
	uGetReg uopKind = iota // push reg[a]
	uGetImm                // push imm
	uALU                   // pop b, pop a, push fn(a,b); fn name in s
	uSetReg                // pop -> reg[a]
	uSetPC                 // pop -> pc (also masks bit 0)
	uPCRel                 // push pc + imm
	uBranch                // pop b, pop a: conditional branch by name s, target pc+imm
	uLoad                  // pop addr, load a-bytes (signed if b != 0) into reg c
	uStore                 // pop value, pop addr, store a bytes
	uExt                   // pop, push extension by name s
)

// uop is one generic micro-operation. Operands are kept generic: the
// interpreter re-examines them dynamically on every execution.
type uop struct {
	kind uopKind
	a    int
	b    int
	c    int
	imm  uint32
	s    string
}

// box is a deliberately generic boxed operand (how a generic engine's
// expression objects wrap every value).
type box struct {
	v concolic.Value
}

// aluTable maps operator names to generic binary functions; dynamic
// dispatch through this table replaces the native switch.
var aluTable = map[string]func(o concolic.Ops, a, b concolic.Value) concolic.Value{
	"add":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Add(a, b) },
	"sub":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Sub(a, b) },
	"and":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.And(a, b) },
	"or":     func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Or(a, b) },
	"xor":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Xor(a, b) },
	"sll":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Sll(a, b) },
	"srl":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Srl(a, b) },
	"sra":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Sra(a, b) },
	"slt":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Slt(a, b) },
	"sltu":   func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Sltu(a, b) },
	"mul":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Mul(a, b) },
	"mulh":   func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.MulH(a, b) },
	"mulhsu": func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.MulHSU(a, b) },
	"mulhu":  func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.MulHU(a, b) },
	"div":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Div(a, b) },
	"divu":   func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.DivU(a, b) },
	"rem":    func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.Rem(a, b) },
	"remu":   func(o concolic.Ops, a, b concolic.Value) concolic.Value { return o.RemU(a, b) },
}

var extTable = map[string]func(o concolic.Ops, v concolic.Value) concolic.Value{
	"sextb": func(o concolic.Ops, v concolic.Value) concolic.Value { return o.SextByte(v) },
	"sexth": func(o concolic.Ops, v concolic.Value) concolic.Value { return o.SextHalf(v) },
	"zextb": func(o concolic.Ops, v concolic.Value) concolic.Value { return o.ZextByte(v) },
	"zexth": func(o concolic.Ops, v concolic.Value) concolic.Value { return o.ZextHalf(v) },
}

// Attach installs the nested interpreter on a core. All subsequent
// execution goes through the generic layer.
func Attach(c *iss.Core) {
	c.ExecHook = hook
}

// hook translates and interprets one instruction. System instructions
// (ecall, csr, wfi, mret, fence) return false and run natively — in the
// real S2E setup those correspond to the plugin interface boundary.
func hook(c *iss.Core, in rv32.Inst) bool {
	// The hosted ISS performs its own fetch+decode cycle under the
	// generic engine; model it by re-decoding the raw encoding here.
	in = rv32.Decode(in.Raw)
	prog := translate(in)
	if prog == nil {
		return false
	}
	// S2E-style mode check: scan the micro-ops for symbolic operands to
	// decide between the concrete fast path and the symbolic
	// interpreter (both end up in the same generic layer here, but the
	// scan itself is part of every executed instruction).
	symbolic := false
	for _, u := range prog {
		if u.kind == uGetReg {
			if r := c.Reg(uint8(u.a)); !r.IsConcrete() {
				symbolic = true
			}
		}
	}
	_ = symbolic
	interp(c, in, prog)
	return true
}

// translate lowers one RISC-V instruction to micro-ops. Run on every
// step: the generic engine re-decodes continuously (no translation
// cache), exactly the overhead §3.1.2 describes.
func translate(in rv32.Inst) []uop {
	switch in.Op {
	case rv32.OpLUI:
		return []uop{{kind: uGetImm, imm: uint32(in.Imm)}, {kind: uSetReg, a: int(in.Rd)}}
	case rv32.OpAUIPC:
		return []uop{{kind: uPCRel, imm: uint32(in.Imm)}, {kind: uSetReg, a: int(in.Rd)}}
	case rv32.OpJAL:
		return []uop{
			{kind: uPCRel, imm: uint32(in.Size)},
			{kind: uSetReg, a: int(in.Rd)},
			{kind: uPCRel, imm: uint32(in.Imm)},
			{kind: uSetPC},
		}
	case rv32.OpJALR:
		return []uop{
			{kind: uGetReg, a: int(in.Rs1)},
			{kind: uGetImm, imm: uint32(in.Imm)},
			{kind: uALU, s: "add"},
			{kind: uPCRel, imm: uint32(in.Size)},
			{kind: uSetReg, a: int(in.Rd)},
			{kind: uSetPC},
		}
	case rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU:
		return []uop{
			{kind: uGetReg, a: int(in.Rs1)},
			{kind: uGetReg, a: int(in.Rs2)},
			{kind: uBranch, s: in.Op.String(), imm: uint32(in.Imm)},
		}
	case rv32.OpLB, rv32.OpLH, rv32.OpLW, rv32.OpLBU, rv32.OpLHU:
		size := map[rv32.Op]int{rv32.OpLB: 1, rv32.OpLBU: 1, rv32.OpLH: 2, rv32.OpLHU: 2, rv32.OpLW: 4}[in.Op]
		signed := 0
		if in.Op == rv32.OpLB || in.Op == rv32.OpLH {
			signed = 1
		}
		return []uop{
			{kind: uGetReg, a: int(in.Rs1)},
			{kind: uGetImm, imm: uint32(in.Imm)},
			{kind: uALU, s: "add"},
			{kind: uLoad, a: size, b: signed, c: int(in.Rd)},
		}
	case rv32.OpSB, rv32.OpSH, rv32.OpSW:
		size := map[rv32.Op]int{rv32.OpSB: 1, rv32.OpSH: 2, rv32.OpSW: 4}[in.Op]
		return []uop{
			{kind: uGetReg, a: int(in.Rs1)},
			{kind: uGetImm, imm: uint32(in.Imm)},
			{kind: uALU, s: "add"},
			{kind: uGetReg, a: int(in.Rs2)},
			{kind: uStore, a: size},
		}
	case rv32.OpADDI, rv32.OpSLTI, rv32.OpSLTIU, rv32.OpXORI, rv32.OpORI, rv32.OpANDI,
		rv32.OpSLLI, rv32.OpSRLI, rv32.OpSRAI:
		names := map[rv32.Op]string{
			rv32.OpADDI: "add", rv32.OpSLTI: "slt", rv32.OpSLTIU: "sltu",
			rv32.OpXORI: "xor", rv32.OpORI: "or", rv32.OpANDI: "and",
			rv32.OpSLLI: "sll", rv32.OpSRLI: "srl", rv32.OpSRAI: "sra",
		}
		return []uop{
			{kind: uGetReg, a: int(in.Rs1)},
			{kind: uGetImm, imm: uint32(in.Imm)},
			{kind: uALU, s: names[in.Op]},
			{kind: uSetReg, a: int(in.Rd)},
		}
	case rv32.OpADD, rv32.OpSUB, rv32.OpSLL, rv32.OpSLT, rv32.OpSLTU, rv32.OpXOR,
		rv32.OpSRL, rv32.OpSRA, rv32.OpOR, rv32.OpAND,
		rv32.OpMUL, rv32.OpMULH, rv32.OpMULHSU, rv32.OpMULHU,
		rv32.OpDIV, rv32.OpDIVU, rv32.OpREM, rv32.OpREMU:
		return []uop{
			{kind: uGetReg, a: int(in.Rs1)},
			{kind: uGetReg, a: int(in.Rs2)},
			{kind: uALU, s: in.Op.String()},
			{kind: uSetReg, a: int(in.Rd)},
		}
	}
	// System instructions fall back to the native path.
	return nil
}

// interp evaluates a micro-op program against the core state through a
// boxed operand stack and a generic (map-based) register state object —
// the way a generic engine views the hosted VP's CPU state.
func interp(c *iss.Core, in rv32.Inst, prog []uop) {
	// The operand stack and the state object are heap-allocated per
	// instruction (generic engines build expression/state objects
	// continuously and look everything up dynamically).
	stack := make([]any, 0, 4)
	state := make(map[int]any, 4)
	push := func(v concolic.Value) { stack = append(stack, &box{v: v}) }
	pop := func() concolic.Value {
		v := stack[len(stack)-1].(*box)
		stack = stack[:len(stack)-1]
		return v.v
	}
	getReg := func(r int) concolic.Value {
		if cached, ok := state[r]; ok {
			return cached.(*box).v
		}
		v := c.Reg(uint8(r))
		state[r] = &box{v: v}
		return v
	}
	setReg := func(r int, v concolic.Value) {
		state[r] = &box{v: v}
		c.SetReg(uint8(r), v)
	}
	next := c.PC + uint32(in.Size)
	branched := false

	for _, u := range prog {
		switch u.kind {
		case uGetReg:
			push(getReg(u.a))
		case uGetImm:
			push(concolic.Concrete(u.imm))
		case uPCRel:
			push(concolic.Concrete(c.PC + u.imm))
		case uALU:
			b := pop()
			a := pop()
			fn := aluTable[u.s]
			push(fn(c.Ops, a, b))
		case uSetReg:
			setReg(u.a, pop())
		case uSetPC:
			t := pop()
			addr := c.Concretize(t, "jump target")
			c.PC = addr &^ 1
			branched = true
		case uBranch:
			b := pop()
			a := pop()
			taken, cond := evalBranch(c, u.s, a, b)
			if cond != nil {
				c.Branch(taken, cond)
			}
			if taken {
				c.PC = c.PC + u.imm
			} else {
				c.PC = next
			}
			branched = true
		case uLoad:
			addr := c.Concretize(pop(), "memory address")
			if !c.HookLoad(addr, u.a, uint8(u.c), u.b != 0, next) {
				return // context switch to a peripheral
			}
			if c.Halted() {
				return
			}
		case uStore:
			v := pop()
			addr := c.Concretize(pop(), "memory address")
			if !c.HookStore(addr, u.a, v, next) {
				return
			}
			if c.Halted() {
				return
			}
		case uExt:
			push(extTable[u.s](c.Ops, pop()))
		}
		if c.Halted() {
			return
		}
	}
	if !branched {
		c.PC = next
	}
}

// evalBranch dispatches a comparison by name (generic condition objects).
func evalBranch(c *iss.Core, name string, a, b concolic.Value) (bool, *smt.Expr) {
	switch name {
	case "beq":
		return c.Ops.CmpEq(a, b)
	case "bne":
		return c.Ops.CmpNe(a, b)
	case "blt":
		return c.Ops.CmpLt(a, b)
	case "bge":
		return c.Ops.CmpGe(a, b)
	case "bltu":
		return c.Ops.CmpLtu(a, b)
	default: // bgeu
		return c.Ops.CmpGeu(a, b)
	}
}
