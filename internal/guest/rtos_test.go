package guest

import (
	"context"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// rtosProgram builds a bare RTOS program with the given app source and
// the CLINT peripheral (needed for the scheduler tick).
func rtosProgram(name, app string) Program {
	srcs := append([]Source{}, RTOSSources()...)
	srcs = append(srcs, C("clint.c", clintModel), C("app.c", mrtosHeader+app))
	return Program{
		Name:    name,
		Sources: srcs,
		Peripherals: []PeriphSpec{
			{Name: "clint", Base: CLINTBase, Size: PeriphSize, TransportSym: "clint_transport", BufSym: "clint_buf"},
		},
		MaxInstr: 20_000_000,
	}
}

func TestRTOSTwoTasksInterleave(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, rtosProgram("two-tasks", `
volatile unsigned int log_a = 0;
volatile unsigned int log_b = 0;
unsigned int order[8];
unsigned int order_n = 0;
unsigned int stack_a[256];
unsigned int stack_b[256];

void task_a(void *arg) {
    int i;
    for (i = 0; i < 3; i++) {
        log_a = log_a + 1;
        if (order_n < 8) { order[order_n] = 1; order_n++; }
        taskYIELD();
    }
    vTaskDeleteSelf();
}

void task_b(void *arg) {
    int i;
    for (i = 0; i < 3; i++) {
        log_b = log_b + 1;
        if (order_n < 8) { order[order_n] = 2; order_n++; }
        taskYIELD();
    }
    vTaskDeleteSelf();
}

int main(void) {
    xTaskCreate(task_a, "a", stack_a, 256, (void *)0, 1);
    xTaskCreate(task_b, "b", stack_b, 256, (void *)0, 1);
    vTaskStartScheduler();
    /* both tasks deleted: scheduler returns */
    if (log_a != 3 || log_b != 3) return 1;
    /* equal priority round-robin: strict interleaving */
    if (order[0] == order[1]) return 2;
    return 42;
}`))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("rtos error: %v", core.Err)
	}
	if core.ExitCode != 42 {
		t.Errorf("exit %d want 42 (1=counts wrong, 2=no interleave)", core.ExitCode)
	}
}

func TestRTOSDelayUsesTimer(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, rtosProgram("delay", `
unsigned int stack_a[256];
void task_a(void *arg) {
    unsigned int t0 = xTickCount;
    vTaskDelay(3);
    unsigned int dt = xTickCount - t0;
    if (dt < 3) CTE_exit(1);
    CTE_exit(0);
}
int main(void) {
    xTaskCreate(task_a, "a", stack_a, 256, (void *)0, 1);
    vTaskStartScheduler();
    return 9;
}`))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("rtos error: %v", core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("vTaskDelay did not wait: exit %d", core.ExitCode)
	}
	// Delay of 3 ticks at 10000 cycles per tick.
	if core.Cycles < 30000 {
		t.Errorf("cycles %d: the delay must consume simulated time", core.Cycles)
	}
}

func TestRTOSQueue(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, rtosProgram("queue", `
queue_t q;
unsigned int q_storage[4];
unsigned int stack_p[256];
unsigned int stack_c[256];
unsigned int received_sum = 0;

void producer(void *arg) {
    unsigned int i;
    for (i = 1; i <= 6; i++) {
        xQueueSend(&q, &i, 0xffffffff);
    }
    vTaskDeleteSelf();
}

void consumer(void *arg) {
    unsigned int v, i;
    for (i = 0; i < 6; i++) {
        if (!xQueueReceive(&q, &v, 0xffffffff)) CTE_exit(7);
        received_sum += v;
    }
    CTE_exit(received_sum == 21 ? 0 : 8);
}

int main(void) {
    xQueueInit(&q, q_storage, 4, 4);
    xTaskCreate(producer, "p", stack_p, 256, (void *)0, 1);
    xTaskCreate(consumer, "c", stack_c, 256, (void *)0, 1);
    vTaskStartScheduler();
    return 9;
}`))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("rtos error: %v", core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("queue test exit %d (7=recv fail, 8=sum wrong, 9=fell out)", core.ExitCode)
	}
}

func TestRTOSQueueTimeout(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, rtosProgram("queue-timeout", `
queue_t q;
unsigned int q_storage[2];
unsigned int stack_a[256];
void task_a(void *arg) {
    unsigned int v;
    /* nothing ever sends: must time out */
    if (xQueueReceive(&q, &v, 2)) CTE_exit(1);
    CTE_exit(0);
}
int main(void) {
    xQueueInit(&q, q_storage, 4, 2);
    xTaskCreate(task_a, "a", stack_a, 256, (void *)0, 1);
    vTaskStartScheduler();
    return 9;
}`))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("rtos error: %v", core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("timeout test exit %d", core.ExitCode)
	}
}

func TestFreeRTOSSensorConcrete(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, FreeRTOSSensorProgram(false, 3))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("freertos-sensor error: %v", core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("exit %d", core.ExitCode)
	}
	if b.NumVars() != 0 {
		t.Errorf("concrete variant must not create symbolic variables, got %d", b.NumVars())
	}
}

func TestFreeRTOSSensorSymbolic(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, FreeRTOSSensorProgram(true, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 60}})
	rep := eng.Run(context.Background())
	// filter = 5 < MIN: the seeded sensor bug is dormant, so no findings;
	// but multiple paths from the symbolic sensor range assumes.
	for _, f := range rep.Findings {
		if f.Err.Kind != iss.ErrAssertFail {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	if len(rep.Findings) != 0 {
		t.Errorf("filter below MIN keeps data in range; findings: %v", rep.Findings)
	}
	// One in-range path per consumed sample plus the out-of-range
	// prunes; the exact count depends on which models the solver picks.
	if rep.Paths < 3 {
		t.Errorf("expected at least 3 explored paths, got %d", rep.Paths)
	}
	if rep.TotalInstr < 50_000 {
		t.Errorf("combined instruction count too small: %d", rep.TotalInstr)
	}
	t.Logf("freertos-sensor/s: %v", rep)
}
