package guest

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAddressMap parses the VP's address-map configuration (paper
// §3.2.1: "This address map information is obtained from a configuration
// file"). Format, one peripheral per line:
//
//	# comment
//	periph <name> <base> <size> <transport-symbol> <buffer-symbol>
//
// Numbers accept 0x prefixes. Example:
//
//	periph sensor 0x10000000 0x10000 sensor_transport sensor_buf
//	periph plic   0x10010000 0x10000 plic_transport   plic_buf
func ParseAddressMap(text string) ([]PeriphSpec, error) {
	var specs []PeriphSpec
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "periph" {
			return nil, fmt.Errorf("address map line %d: unknown directive %q", lineNo+1, fields[0])
		}
		if len(fields) != 6 {
			return nil, fmt.Errorf("address map line %d: want 'periph name base size transport buf', got %d fields", lineNo+1, len(fields))
		}
		base, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil {
			return nil, fmt.Errorf("address map line %d: bad base %q", lineNo+1, fields[2])
		}
		size, err := strconv.ParseUint(fields[3], 0, 32)
		if err != nil || size == 0 {
			return nil, fmt.Errorf("address map line %d: bad size %q", lineNo+1, fields[3])
		}
		spec := PeriphSpec{
			Name:         fields[1],
			Base:         uint32(base),
			Size:         uint32(size),
			TransportSym: fields[4],
			BufSym:       fields[5],
		}
		// Ranges must not overlap (the paper requires non-overlapping
		// address ranges).
		for _, prev := range specs {
			if spec.Base < prev.Base+prev.Size && prev.Base < spec.Base+spec.Size {
				return nil, fmt.Errorf("address map line %d: %s overlaps %s", lineNo+1, spec.Name, prev.Name)
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// FormatAddressMap renders specs in the configuration-file format
// (round-trips through ParseAddressMap).
func FormatAddressMap(specs []PeriphSpec) string {
	var sb strings.Builder
	sb.WriteString("# VP address map: periph <name> <base> <size> <transport> <buf>\n")
	for _, s := range specs {
		fmt.Fprintf(&sb, "periph %s %#x %#x %s %s\n", s.Name, s.Base, s.Size, s.TransportSym, s.BufSym)
	}
	return sb.String()
}
