package guest

import (
	"fmt"
	"strings"

	"rvcte/internal/asm"
	"rvcte/internal/cc"
	"rvcte/internal/iss"
	"rvcte/internal/relf"
	"rvcte/internal/smt"
)

// Lang selects the compiler front end for a source.
type Lang int

const (
	LangC Lang = iota
	LangAsm
)

// Source is one translation unit of a guest program.
type Source struct {
	Name string
	Lang Lang
	Text string
}

// C and Asm are convenience constructors.
func C(name, text string) Source   { return Source{Name: name, Lang: LangC, Text: text} }
func Asm(name, text string) Source { return Source{Name: name, Lang: LangAsm, Text: text} }

// PeriphSpec maps a software-model peripheral into the VP address map.
// The transport function and transaction buffer are resolved from ELF
// symbols (paper §3.2.2).
type PeriphSpec struct {
	Name         string
	Base         uint32
	Size         uint32
	TransportSym string
	BufSym       string
}

// ProtoSpec describes the stateful session shape of a multi-packet
// guest: how many packets a session consumes, the per-packet symbolic
// size caps, and which guest symbol holds the protocol-state byte that
// the engines bank edge coverage by.
type ProtoSpec struct {
	Pkts     int    // packets per session (0 = single-packet guest)
	Caps     []int  // per-packet size caps; last entry repeats
	StateSym string // guest symbol holding the protocol-state byte
	States   int    // number of protocol states for banked coverage
}

// Program describes a guest build.
type Program struct {
	Name        string
	Sources     []Source
	Peripherals []PeriphSpec
	RamBase     uint32 // default 0x80000000
	RamSize     uint32 // default 4 MiB
	MaxInstr    uint64 // default 200M
	// NoRuntime skips crt0/cte/libc (for fully self-contained images).
	NoRuntime bool
	// Defines prepends #define lines to every C source (build flags,
	// e.g. enabling one of the seeded TCP/IP bugs).
	Defines map[string]string
	// Compress enables the assembler's RV32C pass: eligible
	// instructions are emitted as 16-bit compressed encodings.
	Compress bool
	// Proto is set for stateful multi-packet guests (zero value for
	// single-packet ones).
	Proto ProtoSpec
}

func (p *Program) defaults() {
	if p.RamBase == 0 {
		p.RamBase = 0x80000000
	}
	if p.RamSize == 0 {
		p.RamSize = 4 << 20
	}
	if p.MaxInstr == 0 {
		p.MaxInstr = 200_000_000
	}
}

// Build compiles and links the program into an ELF.
func Build(p Program) (*relf.File, error) {
	p.defaults()
	var parts []string
	if !p.NoRuntime {
		parts = append(parts, crt0, cteLib)
	}
	var defines strings.Builder
	for _, k := range sortedKeys(p.Defines) {
		fmt.Fprintf(&defines, "#define %s %s\n", k, p.Defines[k])
	}
	if !p.NoRuntime {
		for _, rt := range []struct{ name, text string }{
			{"libc.c", libc},
			{"irq.c", irqRuntime},
		} {
			asmText, err := cc.CompileUnit(defines.String()+header+rt.text, sanitize(rt.name))
			if err != nil {
				return nil, fmt.Errorf("guest %s: %s: %w", p.Name, rt.name, err)
			}
			parts = append(parts, asmText)
		}
	}
	for _, src := range p.Sources {
		switch src.Lang {
		case LangC:
			asmText, err := cc.CompileUnit(defines.String()+header+src.Text, sanitize(src.Name))
			if err != nil {
				return nil, fmt.Errorf("guest %s: %s: %w", p.Name, src.Name, err)
			}
			parts = append(parts, asmText)
		case LangAsm:
			parts = append(parts, src.Text)
		}
	}
	assembleFn := asm.Assemble
	if p.Compress {
		assembleFn = asm.AssembleCompressed
	}
	img, err := assembleFn(strings.Join(parts, "\n"), p.RamBase)
	if err != nil {
		return nil, fmt.Errorf("guest %s: %w", p.Name, err)
	}
	memSize := uint32(len(img.Bytes))
	if end := img.BssAddr + img.BssSize - img.Origin; end > memSize {
		memSize = end
	}
	return &relf.File{
		Entry:   img.Entry(),
		Addr:    img.Origin,
		Data:    img.Bytes,
		MemSize: memSize,
		Symbols: img.Symbols,
	}, nil
}

// sanitize turns a source name into a label-safe prefix.
func sanitize(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	sb.WriteByte('_')
	return sb.String()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}

// NewCore builds the program, serializes it through the ELF layer (the
// same round trip the paper's flow performs) and returns a VP core ready
// to Run or to snapshot for exploration.
func NewCore(b *smt.Builder, p Program) (*iss.Core, *relf.File, error) {
	p.defaults()
	f, err := Build(p)
	if err != nil {
		return nil, nil, err
	}
	// ELF round trip: write and reload, ensuring the image and symbol
	// table actually survive serialization.
	loaded, err := relf.Load(relf.Write(f))
	if err != nil {
		return nil, nil, fmt.Errorf("guest %s: elf round trip: %w", p.Name, err)
	}

	cfg := iss.Config{
		RamBase:  p.RamBase,
		RamSize:  p.RamSize,
		MaxInstr: p.MaxInstr,
		// Main stack below the dedicated peripheral stack region.
		StackTop: p.RamBase + p.RamSize - 16384,
	}
	if top, ok := loaded.Symbol("__periph_stack_top"); ok {
		cfg.PeriphStackTop = top
	}
	core := iss.New(b, cfg)
	core.LoadImage(loaded.Addr, loaded.Data, loaded.Entry)

	for _, ps := range p.Peripherals {
		tr, ok := loaded.Symbol(ps.TransportSym)
		if !ok {
			return nil, nil, fmt.Errorf("guest %s: peripheral %s: transport symbol %q not found", p.Name, ps.Name, ps.TransportSym)
		}
		buf, ok := loaded.Symbol(ps.BufSym)
		if !ok {
			return nil, nil, fmt.Errorf("guest %s: peripheral %s: buffer symbol %q not found", p.Name, ps.Name, ps.BufSym)
		}
		core.AddPeripheral(iss.Peripheral{
			Name: ps.Name, Base: ps.Base, Size: ps.Size,
			Transport: tr, Buf: buf,
		})
	}
	return core, loaded, nil
}
