package guest

import (
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// TestClassifyTCPIPFinding pins the finding→bug mapping for all six
// seeded mtcp overflow sites (Table 2 numbering), including the
// fix-dependent disambiguation inside prvProcessDNS and the kind-based
// split inside prvProcessNBNS.
func TestClassifyTCPIPFinding(t *testing.T) {
	_, elf, err := NewCore(smt.NewBuilder(), TCPIPProgram(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	sym := func(name string) uint32 {
		addr, ok := elf.Symbols[name]
		if !ok {
			t.Fatalf("symbol %q not in tcpip image", name)
		}
		return addr
	}

	cases := []struct {
		name  string
		fn    string
		kind  iss.ErrKind
		fixed uint
		want  int
	}{
		{"bug1 via memmove", "memmove", iss.ErrProtectedRead, 0, 1},
		{"bug1 via prvProcessIPPacket", "prvProcessIPPacket", iss.ErrProtectedRead, 0, 1},
		{"bug2 via rd16", "rd16", iss.ErrProtectedRead, 0, 2},
		{"bug2 in prvProcessDNS", "prvProcessDNS", iss.ErrProtectedRead, 0, 2},
		{"bug3 in prvProcessDNS once bug2 fixed", "prvProcessDNS", iss.ErrProtectedWrite, 1 << 1, 3},
		{"bug4 in prvProcessTCP", "prvProcessTCP", iss.ErrProtectedRead, 0, 4},
		{"bug5 NBNS read", "prvProcessNBNS", iss.ErrProtectedRead, 0, 5},
		{"bug6 NBNS write", "prvProcessNBNS", iss.ErrProtectedWrite, 0, 6},
		// With every other bug patched the mapping must not shift.
		{"bug1 with others fixed", "memmove", iss.ErrProtectedRead, 0b111110, 1},
		{"bug4 with others fixed", "prvProcessTCP", iss.ErrProtectedRead, 0b101011, 4},
		{"bug6 with others fixed", "prvProcessNBNS", iss.ErrProtectedWrite, 0b011111, 6},
		// Non-overflow kinds and non-bug sites classify as 0.
		{"assertion is not a seeded bug", "prvProcessDNS", iss.ErrAssertFail, 0, 0},
		{"illegal load is not a seeded bug", "rd16", iss.ErrIllegalLoad, 0, 0},
		{"overflow outside the stack", "_start", iss.ErrProtectedWrite, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify("tcpip", elf, tc.kind, sym(tc.fn), tc.fixed)
			if got != tc.want {
				t.Errorf("Classify(tcpip, %s@%s, fixed=%06b) = %d, want %d",
					tc.kind, tc.fn, tc.fixed, got, tc.want)
			}
		})
	}
}
