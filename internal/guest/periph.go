package guest

// Header with CTE-interface and libc prototypes, prepended to every C
// translation unit (the "CTE SW-library" interface of paper Fig. 1).
const header = `
void CTE_exit(int code);
void CTE_make_symbolic(void *ptr, unsigned int size, const char *name);
void CTE_assume(int cond);
void CTE_assert(int cond);
void CTE_notify(void *fn, unsigned int delay);
void CTE_return(void);
unsigned int CTE_get_cycles(void);
void CTE_trigger_irq(unsigned int line, unsigned int level);
void CTE_register_protected_memory(void *addr, unsigned int size, unsigned int zone);
void CTE_free_protected_memory(void *addr);
void cte_putchar(int c);
void CTE_cancel_notify(void *fn);
unsigned int CTE_is_symbolic(unsigned int v);
void CTE_canary_arm(void *addr, unsigned int size);
void CTE_canary_disarm(void *addr);

void *memcpy(void *dst, const void *src, unsigned int n);
void *memmove(void *dst, const void *src, unsigned int n);
void *memset(void *dst, int v, unsigned int n);
int memcmp(const void *a, const void *b, unsigned int n);
unsigned int strlen(const char *s);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, unsigned int n);
char *strcpy(char *dst, const char *src);
void puts_(const char *s);
void print_str(const char *s);
void print_u32(unsigned int v);
void print_hex(unsigned int v);
void *malloc(unsigned int n);
void free(void *p);

void __install_trap_entry(void);
void __enable_mie(void);
void __disable_mie(void);
void __set_mie_mask(unsigned int mask);
void __wfi(void);
void register_interrupt_handler(unsigned int src, void (*fn)(void));
void register_timer_handler(void (*fn)(void));
`

// Peripheral memory map (the "configuration file" address map of §3.2.1).
const (
	SensorBase  = 0x10000000
	PLICBase    = 0x10010000
	CLINTBase   = 0x10020000
	NetcardBase = 0x10030000
	PeriphSize  = 0x10000

	// Machine interrupt lines.
	IrqLineExternal = 11
	IrqLineTimer    = 7

	// PLIC source ids.
	SensorIRQ  = 2
	NetcardIRQ = 3
)

// irqRuntime dispatches traps to registered per-source handlers; the
// external-interrupt path claims the source from the PLIC via MMIO, as
// real RISC-V firmware does.
const irqRuntime = `
void (*__irq_handlers[32])(void);
void (*__timer_handler)(void);

void register_interrupt_handler(unsigned int src, void (*fn)(void)) {
    if (src < 32) __irq_handlers[src] = fn;
}

void register_timer_handler(void (*fn)(void)) {
    __timer_handler = fn;
}

void trap_handler(unsigned int mcause) {
    if (mcause == 0x8000000b) {          /* machine external interrupt */
        unsigned int src = *(volatile unsigned int *)0x10010000; /* PLIC claim */
        while (src != 0) {
            if (__irq_handlers[src]) __irq_handlers[src]();
            src = *(volatile unsigned int *)0x10010000;
        }
    } else if (mcause == 0x80000007) {   /* machine timer interrupt */
        if (__timer_handler) __timer_handler();
    }
}
`

// plicModel is the Platform Level Interrupt Controller software model.
// Register map (local offsets): 0x0 claim/complete, 0x4 enable mask,
// 0x8 raw pending, 0x10+4n source priorities.
const plicModel = `
unsigned int plic_pending_bits = 0;
unsigned int plic_enable_mask = 0xffffffff;
unsigned int plic_priority[32] = {0,1,1,1,1,1,1,1, 1,1,1,1,1,1,1,1, 1,1,1,1,1,1,1,1, 1,1,1,1,1,1,1,1};
unsigned char plic_buf[8];

static void plic_update_line(void) {
    if (plic_pending_bits & plic_enable_mask) CTE_trigger_irq(11, 1);
    else CTE_trigger_irq(11, 0);
}

/* Called directly by other peripheral models (paper Fig. 2 line 15). */
void plic_raise(unsigned int src) {
    if (src == 0 || src >= 32) return;
    plic_pending_bits |= 1u << src;
    plic_update_line();
}

static unsigned int plic_claim(void) {
    unsigned int best = 0;
    unsigned int bestprio = 0;
    unsigned int i;
    for (i = 1; i < 32; i++) {
        if ((plic_pending_bits & (1u << i)) && (plic_enable_mask & (1u << i))) {
            if (plic_priority[i] > bestprio) { bestprio = plic_priority[i]; best = i; }
        }
    }
    if (best != 0) {
        plic_pending_bits &= ~(1u << best);
        plic_update_line();
    }
    return best;
}

void plic_transport(unsigned int addr, unsigned char *data, unsigned int size, unsigned int is_read) {
    unsigned int *wp = (unsigned int *)data;
    CTE_assert(size == 4);
    if (addr == 0x0) {
        if (is_read) *wp = plic_claim();
        /* writes to claim/complete are accepted and ignored */
    } else if (addr == 0x4) {
        if (is_read) *wp = plic_enable_mask;
        else { plic_enable_mask = *wp; plic_update_line(); }
    } else if (addr == 0x8) {
        if (is_read) *wp = plic_pending_bits;
    } else if (addr >= 0x10 && addr < 0x10 + 32 * 4) {
        unsigned int idx = (addr - 0x10) / 4;
        if (is_read) *wp = plic_priority[idx];
        else plic_priority[idx] = *wp;
    } else {
        CTE_assert(0);
    }
    CTE_return();
}
`

// clintModel is the Core Local INTerruptor: a 32-bit mtime/mtimecmp pair
// driving the machine timer interrupt via CTE_get_cycles and CTE_notify
// (paper §3.2: CLINT is modeled with CTE_get_cycles).
const clintModel = `
unsigned int clint_mtimecmp = 0xffffffff;
unsigned char clint_buf[8];

void clint_tick(void) {
    unsigned int now = CTE_get_cycles();
    if (now >= clint_mtimecmp) {
        CTE_trigger_irq(7, 1);
    } else {
        CTE_notify((void *)&clint_tick, clint_mtimecmp - now);
    }
    CTE_return();
}

void clint_transport(unsigned int addr, unsigned char *data, unsigned int size, unsigned int is_read) {
    unsigned int *wp = (unsigned int *)data;
    CTE_assert(size == 4);
    if (addr == 0x4000) {            /* mtimecmp (low word) */
        if (is_read) {
            *wp = clint_mtimecmp;
        } else {
            clint_mtimecmp = *wp;
            CTE_trigger_irq(7, 0);   /* writing mtimecmp clears the line */
            unsigned int now = CTE_get_cycles();
            if (now >= clint_mtimecmp) CTE_trigger_irq(7, 1);
            else CTE_notify((void *)&clint_tick, clint_mtimecmp - now);
        }
    } else if (addr == 0xbff8) {     /* mtime (low word) */
        if (is_read) *wp = CTE_get_cycles();
    } else {
        CTE_assert(0);
    }
    CTE_return();
}
`

// sensorModel is the paper's Fig. 2 sensor peripheral, ported verbatim:
// three memory-mapped registers (scaler, filter, data), periodic data
// generation with symbolic values constrained to the sensor range, and
// the seeded off-by-one bug in the filter post-processing (line 45 of
// Fig. 2: "should use minus one instead of plus one").
const sensorModel = `
#ifndef CYCLES_PER_MS
#define CYCLES_PER_MS 1000
#endif
#ifndef MIN_SENSOR_VALUE
#define MIN_SENSOR_VALUE 16
#endif
#ifndef MAX_SENSOR_VALUE
#define MAX_SENSOR_VALUE 64
#endif
#define SCALER_REG_ADDR 0x00
#define FILTER_REG_ADDR 0x04
#define DATA_REG_ADDR   0x08

unsigned int sensor_scaler = 25;
unsigned int sensor_filter = 0;
unsigned int sensor_data = 0;
unsigned char sensor_buf[8];

void plic_raise(unsigned int src);

#ifdef SENSOR_CONCRETE
static unsigned int sensor_lcg = 77777;
#endif

void sensor_update(void) {
#ifdef SENSOR_CONCRETE
    /* concrete-VP mode: pseudo-random data in the sensor range */
    sensor_lcg = sensor_lcg * 1103515245 + 12345;
    sensor_data = MIN_SENSOR_VALUE + (sensor_lcg >> 8) % (MAX_SENSOR_VALUE - MIN_SENSOR_VALUE + 1);
#else
    /* overwrite data with new concolic bytes */
    CTE_make_symbolic(&sensor_data, sizeof(sensor_data), "d");
    CTE_assume(sensor_data >= MIN_SENSOR_VALUE && sensor_data <= MAX_SENSOR_VALUE);
#endif
    sensor_data -= sensor_filter;

    /* PLIC receives interrupts, prioritizes them, notifies the VP */
    plic_raise(2 /* IRQ_NUMBER */);

    /* corresponds to a simple thread wait in SystemC */
    CTE_notify((void *)&sensor_update, sensor_scaler * CYCLES_PER_MS);
    CTE_return();
}

void sensor_transport(unsigned int addr, unsigned char *data, unsigned int size, unsigned int is_read) {
    CTE_assert(size == 4);  /* only whole-register access */
    unsigned int *vptr = (unsigned int *)data;
    unsigned int *reg = 0;

    /* pre-process actions */
    if (addr == SCALER_REG_ADDR) {
        if (!is_read)
            CTE_notify((void *)&sensor_update, sensor_scaler * CYCLES_PER_MS);
        reg = &sensor_scaler;
    } else if (addr == DATA_REG_ADDR) {
        reg = &sensor_data;
    } else if (addr == FILTER_REG_ADDR) {
        reg = &sensor_filter;
    } else {
        CTE_assert(0 && "invalid addr");
    }

    if (is_read) *vptr = *reg;
    else *reg = *vptr;

    /* post-process actions */
    if (addr == FILTER_REG_ADDR && !is_read) {
        if (sensor_filter >= MIN_SENSOR_VALUE)
#ifdef SENSOR_BUG_FIXED
            sensor_filter = MIN_SENSOR_VALUE - 1;
#else
            sensor_filter = MIN_SENSOR_VALUE + 1;   /* seeded bug (Fig. 2 line 45) */
#endif
    }

    CTE_return();
}
`

// netcardModel holds a 512-byte packet buffer with symbolic content and
// a symbolic size N <= 512 (paper §4.2.1). Register map: 0x0 CTRL
// (write 1: receive next packet -> raises IRQ), 0x4 RX_SIZE, 0x8
// DMA_ADDR, 0xc DMA_START (copies the packet into guest memory).
const netcardModel = `
#ifndef NET_PKT_CAP
#define NET_PKT_CAP 512
#endif
#ifndef NET_PKT_MAX
#define NET_PKT_MAX 512
#endif
#ifdef NET_PKT_CAPS_FN
/* Per-packet symbolic size caps: a session program provides
   net_pkt_cap_for(packet_index) so packet k of a multi-packet sequence
   gets its own bound (generated by guest.TCPIPSessionProgram). */
unsigned int net_pkt_cap_for(unsigned int idx);
#endif

unsigned char net_packet[NET_PKT_CAP];
unsigned int net_rx_size = 0;
unsigned int net_dma_addr = 0;
unsigned int net_pkts_injected = 0;
unsigned char net_buf[8];

void plic_raise(unsigned int src);

static void net_receive_packet(void) {
    CTE_make_symbolic(net_packet, NET_PKT_CAP, "pkt");
    CTE_make_symbolic(&net_rx_size, sizeof(net_rx_size), "N");
#ifdef NET_PKT_CAPS_FN
    CTE_assume(net_rx_size <= net_pkt_cap_for(net_pkts_injected));
#else
    CTE_assume(net_rx_size <= NET_PKT_MAX);
#endif
    net_pkts_injected++;
    plic_raise(3 /* NetcardIRQ */);
}

void net_transport(unsigned int addr, unsigned char *data, unsigned int size, unsigned int is_read) {
    unsigned int *wp = (unsigned int *)data;
    CTE_assert(size == 4);
    if (addr == 0x0) {
        if (!is_read && *wp == 1) net_receive_packet();
        else if (is_read) *wp = net_pkts_injected;
    } else if (addr == 0x4) {
        if (is_read) *wp = net_rx_size;
    } else if (addr == 0x8) {
        if (is_read) *wp = net_dma_addr;
        else net_dma_addr = *wp;
    } else if (addr == 0xc) {
        if (!is_read && net_dma_addr != 0) {
            unsigned int n = net_rx_size;
            if (n > NET_PKT_CAP) n = NET_PKT_CAP;
            memcpy((void *)net_dma_addr, net_packet, n);
        }
    } else {
        CTE_assert(0);
    }
    CTE_return();
}
`

// Standard peripheral sets. Each returns the sources to link and the
// specs to map.

// SensorPeriph returns the sensor+PLIC combination of the paper's
// running example.
func SensorPeriph() ([]Source, []PeriphSpec) {
	return []Source{
			C("plic.c", plicModel),
			C("sensor.c", sensorModel),
		}, []PeriphSpec{
			{Name: "sensor", Base: SensorBase, Size: PeriphSize, TransportSym: "sensor_transport", BufSym: "sensor_buf"},
			{Name: "plic", Base: PLICBase, Size: PeriphSize, TransportSym: "plic_transport", BufSym: "plic_buf"},
		}
}

// RTOSPeriphs returns the full peripheral set used by the mini-RTOS
// TCP/IP evaluation: PLIC + CLINT + netcard.
func RTOSPeriphs() ([]Source, []PeriphSpec) {
	return []Source{
			C("plic.c", plicModel),
			C("clint.c", clintModel),
			C("netcard.c", netcardModel),
		}, []PeriphSpec{
			{Name: "plic", Base: PLICBase, Size: PeriphSize, TransportSym: "plic_transport", BufSym: "plic_buf"},
			{Name: "clint", Base: CLINTBase, Size: PeriphSize, TransportSym: "clint_transport", BufSym: "clint_buf"},
			{Name: "netcard", Base: NetcardBase, Size: PeriphSize, TransportSym: "net_transport", BufSym: "net_buf"},
		}
}
