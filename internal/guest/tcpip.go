package guest

// mtcp is the miniature TCP/IP stack evaluated in §4.2: a platform-
// independent IP task processes packets delivered by a network driver
// through a queue; UDP payloads are dispatched to DNS (port 53) and NBNS
// (port 137) responders, TCP segments are matched against a listening
// socket and their options parsed. Six heap-buffer-overflow bugs of the
// same classes as the paper's Table 2 findings are seeded and
// individually fixable with FIX_BUG1..FIX_BUG6 defines:
//
//  1. IP total-length underflow -> memmove with a size close to UINT_MAX
//  2. DNS/NBNS header fields and name labels read without bounds checks
//  3. DNS reply generator copies the query name into a fixed reply
//     buffer without a length check (heap corruption)
//  4. TCP option walker trusts the data-offset/option-length fields
//  5. NBNS trusts a 16-bit record length, allocating a large reply and
//     filling it from far beyond the much smaller input buffer
//  6. NBNS sizes its reply buffer from the packet's UDP length field,
//     which can be smaller than the fixed reply it then writes
//
// Heap accesses are guarded by the paper's Fig. 5 pvPortMalloc/vPortFree
// wrappers (protected zones before and after each block); the -Wl,-wrap
// linker trick is replicated with object-like macros.
const mtcpStack = `
/* ---- Fig. 5: heap guard wrappers ---- */
#define PROT_ZONE_SIZE 512

void *__wrap_pvPortMalloc(unsigned int xWantedSize) {
    unsigned int xSize = xWantedSize + 2 * PROT_ZONE_SIZE;
    unsigned char *p = (unsigned char *)pvPortMalloc(xSize);
    if (p == 0) return 0;
    void *addr = (void *)(p + PROT_ZONE_SIZE);
    CTE_register_protected_memory(addr, xWantedSize, PROT_ZONE_SIZE);
    return addr;
}

void __wrap_vPortFree(void *pv) {
    CTE_assert(pv != 0);
    CTE_free_protected_memory(pv);
    void *pv_real = (void *)((unsigned char *)pv - PROT_ZONE_SIZE);
    vPortFree(pv_real);
}

/* Redirect the stack's allocations through the wrappers (the paper uses
   -Wl,-wrap=pvPortMalloc -Wl,-wrap=vPortFree). */
#define pvPortMalloc __wrap_pvPortMalloc
#define vPortFree __wrap_vPortFree

/* ---- protocol constants ---- */
#define IPPROTO_TCP 6
#define IPPROTO_UDP 17
#define DNS_PORT 53
#define NBNS_PORT 137
#define DNS_REPLY_SIZE 16
#define NBNS_REPLY_HDR 50

unsigned int tcp_listen_port = 0;   /* 0 = no listening socket */
unsigned int packets_processed = 0;

static unsigned int rd16(const unsigned char *p) {
    return ((unsigned int)p[0] << 8) | (unsigned int)p[1];
}

void vSocketListen(unsigned int port) {
    tcp_listen_port = port;
}

/* ---- DNS responder ---- */
static void prvProcessDNS(unsigned char *p, unsigned int n) {
    unsigned int flags, qd, off, nameLen, i;
#ifdef FIX_BUG2
    if (n < 12) return;
#endif
    /* BUG2 when unfixed: header fields read blindly */
    flags = rd16(p + 2);
    qd = rd16(p + 4);
    if (qd == 0) return;
    off = 12;
    while (p[off] != 0) {
        off += (unsigned int)p[off] + 1;
#ifdef FIX_BUG2
        if (off >= n) return;
#endif
    }
    nameLen = off - 12;
    if ((flags & 0x8000) == 0) {
        /* a query: generate a reply */
        unsigned char *reply = (unsigned char *)pvPortMalloc(DNS_REPLY_SIZE);
        if (reply == 0) return;
        unsigned int m = nameLen + 12;
#ifdef FIX_BUG3
        if (m > DNS_REPLY_SIZE) m = DNS_REPLY_SIZE;
#endif
        /* BUG3 when unfixed: the copy below overruns the reply buffer */
        for (i = 0; i < m; i++) reply[i] = p[i];
        vPortFree(reply);
    }
}

/* ---- NBNS responder ---- */
static void prvProcessNBNS(unsigned char *p, unsigned int n, unsigned int udpLen) {
    unsigned int flags, qd, rdlen, i;
    if (n < 13) return;
    flags = rd16(p + 2);
    if ((flags & 0x7800) != 0) return;   /* only name queries */
    qd = rd16(p + 4);
    if (qd != 1) return;
    if (p[12] != 0x20) return;           /* NBNS encoded-name marker */

    /* BUG5 when unfixed: a 16-bit record length from the packet is
       trusted: a large reply is allocated and filled by reading far
       beyond the received data. */
    rdlen = rd16(p + 10);
    if (rdlen > 0) {
        unsigned char *big = (unsigned char *)pvPortMalloc(rdlen + 20);
        if (big == 0) return;
#ifndef FIX_BUG5
        for (i = 0; i < rdlen; i++) big[20 + i] = p[12 + i];
#else
        {
            unsigned int m = rdlen;
            if (m > n - 12) m = n - 12;
            for (i = 0; i < m; i++) big[20 + i] = p[12 + i];
        }
#endif
        vPortFree(big);
    }

    /* Reply generation for node-status queries (deeper gate). */
    if (n >= 15 && p[13] == 'C' && p[14] == 'K') {
        /* BUG6 when unfixed: the reply buffer is sized from the
           packet's UDP length field, which can undershoot the fixed
           reply header written below. */
        unsigned int replyLen = udpLen - 8 + 4;
#ifdef FIX_BUG6
        if (replyLen < NBNS_REPLY_HDR) replyLen = NBNS_REPLY_HDR;
#endif
        unsigned char *reply = (unsigned char *)pvPortMalloc(replyLen);
        if (reply == 0) return;
        for (i = 0; i < NBNS_REPLY_HDR; i++) reply[i] = (unsigned char)(0x80 + i);
        vPortFree(reply);
    }
}

/* ---- TCP segment handling ---- */
static void prvProcessTCP(unsigned char *p, unsigned int n) {
    unsigned int dstPort, dataOff, off;
    if (n < 20) return;
    dstPort = rd16(p + 2);
    if (tcp_listen_port == 0 || dstPort != tcp_listen_port) return; /* drop: no socket */
    dataOff = ((unsigned int)p[12] >> 4) * 4;
    if (dataOff < 20) return;
#ifdef FIX_BUG4
    if (dataOff > n) return;
#endif
    /* BUG4 when unfixed: options walked using in-packet lengths without
       checking against the real segment size. */
    off = 20;
    while (off < dataOff) {
        unsigned int kind = p[off];
        if (kind == 0) break;       /* end of options */
        if (kind == 1) { off++; continue; }  /* NOP */
        {
#ifdef FIX_BUG4
            if (off + 1 >= dataOff) break;   /* no room for a length byte */
#endif
            unsigned int optlen = p[off + 1];
            if (optlen < 2) break;
#ifdef FIX_BUG4
            if (off + optlen > n) return;
#endif
            unsigned int i;
            unsigned int acc = 0;
            for (i = 2; i < optlen; i++) acc += p[off + i];
            (void)acc;
            off += optlen;
        }
    }
}

/* Internet checksum over the IP header (one's complement sum of
   16-bit words). */
static unsigned int ip_header_checksum(const unsigned char *p, unsigned int ihl) {
    unsigned int sum = 0;
    unsigned int i;
    for (i = 0; i < ihl; i += 2) {
        sum += rd16(p + i);
    }
    while (sum > 0xffff) {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    return sum;
}

/* ---- IP input ---- */
void prvProcessIPPacket(unsigned char *pkt, unsigned int size) {
    unsigned int verIhl, ihl, totalLen, dataLen, proto;
    if (size < 20) return;
    verIhl = pkt[0];
    if ((verIhl >> 4) != 4) return;
    ihl = (verIhl & 0xf) * 4;
    if (ihl < 20) return;
    totalLen = rd16(pkt + 2);
#ifdef NET_CHECKSUM_VALIDATE
    /* Real stacks verify the header checksum before anything else; with
       symbolic packet content this forces the solver to construct
       packets whose one's-complement sum folds to 0xffff. The base
       20-byte header is always present (size >= 20 was checked). */
    if (ip_header_checksum(pkt, 20) != 0xffff) return;
#endif
#ifdef FIX_BUG1
    if (totalLen < ihl || totalLen > size) return;
#endif
    /* BUG1 when unfixed: totalLen < ihl underflows dataLen and the
       normalizing memmove runs with a size close to UINT_MAX. */
    dataLen = totalLen - ihl;
    proto = pkt[9];
    if (ihl > 20) {
        /* strip IP options: compact the payload to a fixed offset */
        memmove(pkt + 20, pkt + ihl, dataLen);
        ihl = 20;
    }
    if (proto == IPPROTO_UDP) {
        unsigned char *udp = pkt + ihl;
        unsigned int udpLen, dstPort;
        if (dataLen < 8) return;
        udpLen = rd16(udp + 4);
        if (udpLen < 8 || udpLen > dataLen) return;
        dstPort = rd16(udp + 2);
        if (dstPort == DNS_PORT) prvProcessDNS(udp + 8, udpLen - 8);
        else if (dstPort == NBNS_PORT) prvProcessNBNS(udp + 8, udpLen - 8, udpLen);
    } else if (proto == IPPROTO_TCP) {
        if (dataLen < 20 || dataLen > size) return;
        prvProcessTCP(pkt + ihl, dataLen);
    }
    packets_processed = packets_processed + 1;
}
`

// mtcpApp is the test harness of §4.2.1: network driver task + IP task
// connected by a queue, a listening TCP socket, one symbolic packet
// injected through the netcard peripheral, and the stop-after-one-packet
// switch.
const mtcpApp = `
unsigned int *NET_CTRL = (unsigned int *)0x10030000;
unsigned int *NET_RX_SIZE = (unsigned int *)0x10030004;
unsigned int *NET_DMA_ADDR = (unsigned int *)0x10030008;
unsigned int *NET_DMA_START = (unsigned int *)0x1003000c;

volatile unsigned int net_irq_seen = 0;

typedef struct pktdesc {
    unsigned char *data;
    unsigned int len;
} pktdesc_t;

queue_t ip_queue;
unsigned char ip_queue_storage[32];   /* 4 descriptors x 8 bytes */

unsigned int driver_stack[768];
unsigned int ip_stack[768];

void prvProcessIPPacket(unsigned char *pkt, unsigned int size);
void vSocketListen(unsigned int port);
void *__wrap_pvPortMalloc(unsigned int n);
void __wrap_vPortFree(void *p);

void net_irq_handler(void) {
    net_irq_seen = 1;
}

/* The three glue functions of the FreeRTOS porting guide (§4.2.1). */
unsigned int xNetworkReceiveSize(void) {
    return *NET_RX_SIZE;
}

void xNetworkReceiveData(unsigned char *buf) {
    *NET_DMA_ADDR = (unsigned int)buf;
    *NET_DMA_START = 1;
}

void vNetworkDriverTask(void *arg) {
    register_interrupt_handler(3 /* netcard */, net_irq_handler);
    *NET_CTRL = 1;                   /* start symbolic testing: inject */
    while (!net_irq_seen) {
        vTaskDelay(1);
    }
    net_irq_seen = 0;
    unsigned int size = xNetworkReceiveSize();
    if (size < 20 || size > 512) {
        CTE_exit(0);                 /* undersized frame: dropped */
    }
    unsigned char *buf = (unsigned char *)__wrap_pvPortMalloc(size);
    if (buf == 0) CTE_exit(0);
    xNetworkReceiveData(buf);
    pktdesc_t d;
    d.data = buf;
    d.len = size;
    xQueueSend(&ip_queue, &d, 0xffffffff);
    for (;;) vTaskDelay(100);
}

void vIPTask(void *arg) {
    pktdesc_t d;
    xQueueReceive(&ip_queue, &d, 0xffffffff);
    prvProcessIPPacket(d.data, d.len);
    __wrap_vPortFree(d.data);
    /* stop-after-one-packet switch (§4.2.1) */
    CTE_exit(0);
}

int main(void) {
    xQueueInit(&ip_queue, ip_queue_storage, sizeof(pktdesc_t), 4);
    vSocketListen(7);   /* TCP socket in listening mode */
    xTaskCreate(vNetworkDriverTask, "drv", driver_stack, 768, (void *)0, 2);
    xTaskCreate(vIPTask, "ip", ip_stack, 768, (void *)0, 1);
    vTaskStartScheduler();
    return 0;
}
`

// TCPIPChecksumProgram is TCPIPProgram with IP header checksum
// validation enabled: every explored packet must carry a correct
// internet checksum, which the SMT solver has to construct.
func TCPIPChecksumProgram(fixedBugs uint, pktMax int) Program {
	p := TCPIPProgram(fixedBugs, pktMax)
	p.Defines["NET_CHECKSUM_VALIDATE"] = "1"
	return p
}

// TCPIPProgram builds the §4.2 evaluation target with the given set of
// bugs fixed (fixedBugs is a bitmask: bit 0 = FIX_BUG1 ... bit 5 =
// FIX_BUG6). pktMax bounds the symbolic packet size N (the paper uses
// 512; smaller values shrink the search space proportionally).
func TCPIPProgram(fixedBugs uint, pktMax int) Program {
	periphSrcs, specs := RTOSPeriphs()
	defines := map[string]string{}
	for i := 0; i < 6; i++ {
		if fixedBugs&(1<<i) != 0 {
			defines["FIX_BUG"+itoa(i+1)] = "1"
		}
	}
	if pktMax > 0 {
		defines["NET_PKT_MAX"] = itoa(pktMax)
	}
	srcs := append([]Source{}, RTOSSources()...)
	srcs = append(srcs, periphSrcs...)
	srcs = append(srcs,
		C("mtcp.c", mrtosHeader+mtcpStack),
		C("app.c", mrtosHeader+mtcpApp),
	)
	return Program{
		Name:        "freertos-tcpip",
		Sources:     srcs,
		Peripherals: specs,
		Defines:     defines,
		MaxInstr:    20_000_000,
	}
}
