package guest

// mrtos is a miniature FreeRTOS-like kernel: statically allocated tasks
// with dedicated stacks and real context switching (callee-saved register
// frames, like FreeRTOS's cooperative configuration), a tick counter
// driven by CLINT timer interrupts, vTaskDelay, message queues with
// blocking send/receive, and the pvPortMalloc/vPortFree memory-management
// API. It substitutes FreeRTOS v10.0.0 + its RISC-V port in the paper's
// §4.2 evaluation.

// ctxSwitchAsm is the context-switch primitive: saves the callee-saved
// register frame on the current stack and resumes another one.
const ctxSwitchAsm = `
.text
.align 2
# void mrtos_ctx_switch(unsigned int **save_sp, unsigned int *load_sp)
.globl mrtos_ctx_switch
mrtos_ctx_switch:
	addi sp, sp, -56
	sw ra, 0(sp)
	sw s0, 4(sp)
	sw s1, 8(sp)
	sw s2, 12(sp)
	sw s3, 16(sp)
	sw s4, 20(sp)
	sw s5, 24(sp)
	sw s6, 28(sp)
	sw s7, 32(sp)
	sw s8, 36(sp)
	sw s9, 40(sp)
	sw s10, 44(sp)
	sw s11, 48(sp)
	sw sp, 0(a0)
	mv sp, a1
	lw ra, 0(sp)
	lw s0, 4(sp)
	lw s1, 8(sp)
	lw s2, 12(sp)
	lw s3, 16(sp)
	lw s4, 20(sp)
	lw s5, 24(sp)
	lw s6, 28(sp)
	lw s7, 32(sp)
	lw s8, 36(sp)
	lw s9, 40(sp)
	lw s10, 44(sp)
	lw s11, 48(sp)
	addi sp, sp, 56
	ret

# First activation of a task: the initial frame put s0 = task function,
# s1 = argument; jump there.
.globl mrtos_task_bootstrap
mrtos_task_bootstrap:
	mv a0, s1
	jalr ra, 0(s0)
	# A task function returned: delete the current task.
	call vTaskDeleteSelf
.Lmrtos_halt:
	j .Lmrtos_halt
`

// mrtosKernel is the kernel proper.
const mrtosKernel = `
#define MRTOS_MAX_TASKS 8
#define TASK_UNUSED 0
#define TASK_READY 1
#define TASK_BLOCKED 2
#define TASK_DELETED 3

#ifndef MRTOS_TICK_CYCLES
#define MRTOS_TICK_CYCLES 10000
#endif

void mrtos_ctx_switch(unsigned int **save_sp, unsigned int *load_sp);
void mrtos_task_bootstrap(void);

typedef struct tcb {
    unsigned int *sp;
    unsigned int state;
    unsigned int wake_tick;
    unsigned int prio;
    const char *name;
} tcb_t;

tcb_t mrtos_tasks[MRTOS_MAX_TASKS];
unsigned int mrtos_cur = 0;
volatile unsigned int xTickCount = 0;
unsigned int mrtos_started = 0;
unsigned int *mrtos_sched_sp = 0;   /* scheduler (main) context */

unsigned int *CLINT_MTIMECMP = (unsigned int *)0x10024000;
unsigned int *CLINT_MTIME = (unsigned int *)0x1002bff8;

static void mrtos_arm_tick(void) {
    *CLINT_MTIMECMP = *CLINT_MTIME + MRTOS_TICK_CYCLES;
}

void mrtos_tick_handler(void) {
    xTickCount = xTickCount + 1;
    mrtos_arm_tick();
}

/* xTaskCreate: static stacks, priority 0..3 (higher runs first). */
int xTaskCreate(void (*fn)(void *), const char *name, unsigned int *stack,
                unsigned int stack_words, void *arg, unsigned int prio) {
    unsigned int i;
    for (i = 0; i < MRTOS_MAX_TASKS; i++) {
        if (mrtos_tasks[i].state == TASK_UNUSED) {
            unsigned int *top = stack + stack_words;
            /* Build the initial callee-saved frame for ctx_switch. */
            top -= 14;
            top[0] = (unsigned int)&mrtos_task_bootstrap;  /* ra */
            top[1] = (unsigned int)fn;                     /* s0 */
            top[2] = (unsigned int)arg;                    /* s1 */
            unsigned int k;
            for (k = 3; k < 14; k++) top[k] = 0;
            mrtos_tasks[i].sp = top;
            mrtos_tasks[i].state = TASK_READY;
            mrtos_tasks[i].wake_tick = 0;
            mrtos_tasks[i].prio = prio;
            mrtos_tasks[i].name = name;
            return 1;
        }
    }
    return 0;
}

/* mrtos_pick: highest priority ready task, round robin among equals. */
static int mrtos_pick(void) {
    int best = -1;
    unsigned int bestprio = 0;
    unsigned int i;
    unsigned int tick = xTickCount;
    for (i = 0; i < MRTOS_MAX_TASKS; i++) {
        unsigned int idx = (mrtos_cur + 1 + i) % MRTOS_MAX_TASKS;
        tcb_t *t = &mrtos_tasks[idx];
        if (t->state == TASK_BLOCKED && t->wake_tick != 0 && tick >= t->wake_tick) {
            t->state = TASK_READY;
            t->wake_tick = 0;
        }
        if (t->state == TASK_READY) {
            if (best < 0 || t->prio > bestprio) {
                best = (int)idx;
                bestprio = t->prio;
            }
        }
    }
    return best;
}

/* taskYIELD: switch to the next ready task, or back to the scheduler
   loop when nothing is ready. */
void taskYIELD(void) {
    if (!mrtos_started) return;
    int next = mrtos_pick();
    unsigned int cur = mrtos_cur;
    if (next < 0) {
        /* Nothing ready: return to the scheduler idle loop. */
        mrtos_ctx_switch(&mrtos_tasks[cur].sp, mrtos_sched_sp);
        return;
    }
    if ((unsigned int)next == cur) return;
    mrtos_cur = (unsigned int)next;
    mrtos_ctx_switch(&mrtos_tasks[cur].sp, mrtos_tasks[next].sp);
}

void vTaskDelay(unsigned int ticks) {
    tcb_t *t = &mrtos_tasks[mrtos_cur];
    t->state = TASK_BLOCKED;
    t->wake_tick = xTickCount + ticks;
    if (t->wake_tick == 0) t->wake_tick = 1;
    taskYIELD();
}

void vTaskDeleteSelf(void) {
    mrtos_tasks[mrtos_cur].state = TASK_DELETED;
    taskYIELD();
}

/* vTaskStartScheduler: arm the tick, run tasks until none remain
   runnable or blockable; wfi while every task is blocked. */
void vTaskStartScheduler(void) {
    __install_trap_entry();
    register_timer_handler(mrtos_tick_handler);
    __set_mie_mask((1 << 7) | (1 << 11));  /* MTIE | MEIE */
    __enable_mie();
    mrtos_arm_tick();
    mrtos_started = 1;
    for (;;) {
        int next = mrtos_pick();
        if (next >= 0) {
            mrtos_cur = (unsigned int)next;
            mrtos_ctx_switch(&mrtos_sched_sp, mrtos_tasks[next].sp);
            continue;
        }
        /* Anything still blocked? Then wait for an interrupt. */
        unsigned int i;
        int blocked = 0;
        for (i = 0; i < MRTOS_MAX_TASKS; i++) {
            if (mrtos_tasks[i].state == TASK_BLOCKED) blocked = 1;
        }
        if (!blocked) return;  /* all tasks deleted: scheduler exits */
        __wfi();
    }
}

/* ---- queues ---- */

typedef struct queue {
    unsigned char *storage;
    unsigned int item_size;
    unsigned int capacity;
    unsigned int count;
    unsigned int head;   /* next slot to read */
} queue_t;

void xQueueInit(queue_t *q, void *storage, unsigned int item_size, unsigned int capacity) {
    q->storage = (unsigned char *)storage;
    q->item_size = item_size;
    q->capacity = capacity;
    q->count = 0;
    q->head = 0;
}

/* Returns 1 on success, 0 on timeout. timeout in ticks; 0xffffffff
   blocks forever. */
int xQueueSend(queue_t *q, const void *item, unsigned int timeout) {
    unsigned int start = xTickCount;
    while (q->count == q->capacity) {
        if (timeout != 0xffffffff && xTickCount - start >= timeout) return 0;
        taskYIELD();
    }
    unsigned int slot = (q->head + q->count) % q->capacity;
    memcpy(q->storage + slot * q->item_size, item, q->item_size);
    q->count = q->count + 1;
    return 1;
}

int xQueueReceive(queue_t *q, void *item, unsigned int timeout) {
    unsigned int start = xTickCount;
    while (q->count == 0) {
        if (timeout != 0xffffffff && xTickCount - start >= timeout) return 0;
        /* Block with a wake tick so the scheduler's wfi can make
           progress on pure-timer workloads. */
        tcb_t *t = &mrtos_tasks[mrtos_cur];
        t->state = TASK_BLOCKED;
        t->wake_tick = xTickCount + 1;
        taskYIELD();
    }
    memcpy(item, q->storage + q->head * q->item_size, q->item_size);
    q->head = (q->head + 1) % q->capacity;
    q->count = q->count - 1;
    return 1;
}

/* ---- FreeRTOS memory management API (heap wrapper) ---- */

void *pvPortMalloc(unsigned int size) {
    return malloc(size);
}

void vPortFree(void *p) {
    free(p);
}
`

// mrtosHeader declares the kernel API for application units.
const mrtosHeader = `
typedef struct tcb {
    unsigned int *sp;
    unsigned int state;
    unsigned int wake_tick;
    unsigned int prio;
    const char *name;
} tcb_t;
typedef struct queue {
    unsigned char *storage;
    unsigned int item_size;
    unsigned int capacity;
    unsigned int count;
    unsigned int head;
} queue_t;
int xTaskCreate(void (*fn)(void *), const char *name, unsigned int *stack,
                unsigned int stack_words, void *arg, unsigned int prio);
void vTaskStartScheduler(void);
void vTaskDelay(unsigned int ticks);
void taskYIELD(void);
void vTaskDeleteSelf(void);
void xQueueInit(queue_t *q, void *storage, unsigned int item_size, unsigned int capacity);
int xQueueSend(queue_t *q, const void *item, unsigned int timeout);
int xQueueReceive(queue_t *q, void *item, unsigned int timeout);
void *pvPortMalloc(unsigned int size);
void vPortFree(void *p);
extern volatile unsigned int xTickCount;
`

// RTOSSources returns the kernel sources to link into an RTOS program.
func RTOSSources() []Source {
	return []Source{
		Asm("ctxswitch.s", ctxSwitchAsm),
		C("mrtos.c", mrtosKernel),
	}
}
