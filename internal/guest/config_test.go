package guest

import (
	"strings"
	"testing"

	"rvcte/internal/smt"
)

func TestParseAddressMap(t *testing.T) {
	specs, err := ParseAddressMap(`
# the standard sensor system
periph sensor 0x10000000 0x10000 sensor_transport sensor_buf
periph plic   0x10010000 0x10000 plic_transport   plic_buf
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs: %v", specs)
	}
	if specs[0].Base != 0x10000000 || specs[0].TransportSym != "sensor_transport" {
		t.Errorf("spec 0: %+v", specs[0])
	}
	if specs[1].Name != "plic" || specs[1].Size != 0x10000 {
		t.Errorf("spec 1: %+v", specs[1])
	}
}

func TestParseAddressMapErrors(t *testing.T) {
	cases := []string{
		"bogus sensor 0x0 0x10 t b",
		"periph sensor 0x0 0x10 t",                             // missing field
		"periph sensor nothex 0x10 t b",                        // bad base
		"periph sensor 0x0 0 t b",                              // zero size
		"periph a 0x1000 0x100 t b\nperiph b 0x1080 0x100 t b", // overlap
	}
	for _, src := range cases {
		if _, err := ParseAddressMap(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAddressMapRoundTrip(t *testing.T) {
	_, specs := SensorPeriph()
	text := FormatAddressMap(specs)
	parsed, err := ParseAddressMap(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(specs) {
		t.Fatalf("round trip lost specs: %v", parsed)
	}
	for i := range specs {
		if parsed[i] != specs[i] {
			t.Errorf("spec %d: %+v != %+v", i, parsed[i], specs[i])
		}
	}
}

// TestConfigDrivenSensorSystem builds the sensor example with the
// address map supplied via the configuration-file path end to end.
func TestConfigDrivenSensorSystem(t *testing.T) {
	srcs, _ := SensorPeriph()
	specs, err := ParseAddressMap(`
periph sensor 0x10000000 0x10000 sensor_transport sensor_buf
periph plic   0x10010000 0x10000 plic_transport   plic_buf
`)
	if err != nil {
		t.Fatal(err)
	}
	p := Program{
		Name:        "config-driven",
		Sources:     append([]Source{C("app.c", sensorApp)}, srcs...),
		Peripherals: specs,
		MaxInstr:    5_000_000,
	}
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	// Default input prunes at the sensor-range assume, as in Fig. 4 I0.
	if core.Err == nil || !strings.Contains(core.Err.Error(), "assume") {
		t.Errorf("expected assume prune, got %v", core.Err)
	}
}
