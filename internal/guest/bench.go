package guest

// Benchmark guest programs for the Table 1 reproduction. The /s variants
// use symbolic inputs and explore multiple paths; the plain variants are
// single-path workloads for raw simulation-speed comparison.
//
// Substitution note: the paper's sha512 row is reproduced with SHA-256 —
// the mini-C dialect is 32-bit only, and SHA-256 exercises the same code
// shape (block-based compression function, rotations, additions) with
// 32-bit words instead of 64-bit ones.

// qsortBench sorts a pseudo-random array with a recursive quicksort (the
// newlib qsort workload of Table 1) and self-checks the result.
const qsortBench = `
#ifndef QSORT_N
#define QSORT_N 2000
#endif

unsigned int qsort_data[QSORT_N];

static unsigned int lcg_state = 12345;
static unsigned int lcg_next(void) {
    lcg_state = lcg_state * 1103515245 + 12345;
    return lcg_state >> 8;
}

static void swap_u32(unsigned int *a, unsigned int *b) {
    unsigned int t = *a;
    *a = *b;
    *b = t;
}

void quicksort(unsigned int *a, int lo, int hi) {
    if (lo >= hi) return;
    unsigned int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            swap_u32(&a[i], &a[j]);
            i++;
            j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

int main(void) {
    int i;
    for (i = 0; i < QSORT_N; i++) qsort_data[i] = lcg_next();
    quicksort(qsort_data, 0, QSORT_N - 1);
    for (i = 1; i < QSORT_N; i++) {
        if (qsort_data[i - 1] > qsort_data[i]) {
            CTE_assert(0 && "not sorted");
        }
    }
    return 0;
}
`

// qsortSymBench sorts a small fully-symbolic array: the comparison
// branches fork the exploration over element orderings (qsort/s).
const qsortSymBench = `
#ifndef QSORT_S_N
#define QSORT_S_N 5
#endif

unsigned char s_data[QSORT_S_N];

void qsort_bytes(unsigned char *a, int lo, int hi) {
    if (lo >= hi) return;
    unsigned char pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            unsigned char t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
    }
    qsort_bytes(a, lo, j);
    qsort_bytes(a, i, hi);
}

int main(void) {
    CTE_make_symbolic(s_data, QSORT_S_N, "arr");
    qsort_bytes(s_data, 0, QSORT_S_N - 1);
    int i;
    for (i = 1; i < QSORT_S_N; i++) {
        CTE_assert(s_data[i - 1] <= s_data[i]);
    }
    return 0;
}
`

// sha256Bench is a complete SHA-256 implementation hashing a buffer over
// several iterations (stand-in for the paper's sha512 row; see the
// substitution note above).
const sha256Bench = `
#ifndef SHA_ITERS
#define SHA_ITERS 12
#endif
#ifndef SHA_MSG_LEN
#define SHA_MSG_LEN 512
#endif

unsigned int sha_k[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2
};

unsigned int sha_h[8];
unsigned char sha_msg[SHA_MSG_LEN + 72];

static unsigned int rotr(unsigned int x, unsigned int n) {
    return (x >> n) | (x << (32 - n));
}

static void sha_compress(const unsigned char *p) {
    unsigned int w[64];
    int i;
    for (i = 0; i < 16; i++) {
        w[i] = ((unsigned int)p[4*i] << 24) | ((unsigned int)p[4*i+1] << 16) |
               ((unsigned int)p[4*i+2] << 8) | (unsigned int)p[4*i+3];
    }
    for (i = 16; i < 64; i++) {
        unsigned int s0 = rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ (w[i-15] >> 3);
        unsigned int s1 = rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ (w[i-2] >> 10);
        w[i] = w[i-16] + s0 + w[i-7] + s1;
    }
    unsigned int a = sha_h[0], b = sha_h[1], c = sha_h[2], d = sha_h[3];
    unsigned int e = sha_h[4], f = sha_h[5], g = sha_h[6], h = sha_h[7];
    for (i = 0; i < 64; i++) {
        unsigned int S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        unsigned int ch = (e & f) ^ (~e & g);
        unsigned int t1 = h + S1 + ch + sha_k[i] + w[i];
        unsigned int S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        unsigned int maj = (a & b) ^ (a & c) ^ (b & c);
        unsigned int t2 = S0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    sha_h[0] += a; sha_h[1] += b; sha_h[2] += c; sha_h[3] += d;
    sha_h[4] += e; sha_h[5] += f; sha_h[6] += g; sha_h[7] += h;
}

static void sha_init(void) {
    sha_h[0] = 0x6a09e667; sha_h[1] = 0xbb67ae85; sha_h[2] = 0x3c6ef372; sha_h[3] = 0xa54ff53a;
    sha_h[4] = 0x510e527f; sha_h[5] = 0x9b05688c; sha_h[6] = 0x1f83d9ab; sha_h[7] = 0x5be0cd19;
}

unsigned int sha256_of(unsigned char *msg, unsigned int len) {
    sha_init();
    /* pad: 0x80, zeros, 64-bit big-endian bit length */
    unsigned int total = len + 1;
    while (total % 64 != 56) total++;
    msg[len] = 0x80;
    unsigned int i;
    for (i = len + 1; i < total; i++) msg[i] = 0;
    unsigned int bits = len * 8;
    msg[total] = 0; msg[total+1] = 0; msg[total+2] = 0; msg[total+3] = 0;
    msg[total+4] = (unsigned char)(bits >> 24);
    msg[total+5] = (unsigned char)(bits >> 16);
    msg[total+6] = (unsigned char)(bits >> 8);
    msg[total+7] = (unsigned char)bits;
    for (i = 0; i < total + 8; i += 64) sha_compress(msg + i);
    return sha_h[0];
}

int main(void) {
    unsigned int i, iter;
    unsigned int acc = 0;
    for (iter = 0; iter < SHA_ITERS; iter++) {
        for (i = 0; i < SHA_MSG_LEN; i++) sha_msg[i] = (unsigned char)(i + iter);
        acc ^= sha256_of(sha_msg, SHA_MSG_LEN);
    }
    /* known-answer check for the empty message on the last round */
    sha_msg[0] = 0;
    unsigned int empty = sha256_of(sha_msg, 0);
    CTE_assert(empty == 0xe3b0c442);
    return (int)(acc & 0x7f);
}
`

// dhrystoneBench is a compact dhrystone-flavoured workload: record
// assignment, string comparison and integer arithmetic in a loop, with a
// self-check of the final state (stands in for the standard dhrystone).
const dhrystoneBench = `
#ifndef DHRY_RUNS
#define DHRY_RUNS 3000
#endif

typedef struct record {
    struct record *ptr_comp;
    int discr;
    int enum_comp;
    int int_comp;
    char str_comp[31];
} record_t;

record_t glob, next_glob;
record_t *glob_ptr;
int int_glob;
char ch1_glob, ch2_glob;
int arr1_glob[50];
int arr2_glob[50];

static int func1(char c1, char c2) {
    char loc1 = c1;
    char loc2 = loc1;
    if (loc2 != c2) return 0;
    ch1_glob = loc1;
    return 1;
}

static int func2(char *s1, char *s2) {
    int loc = 2;
    char ch = 'A';
    while (loc <= 2) {
        if (func1(s1[loc], s2[loc + 1])) { ch = 'A'; loc += 3; }
        else loc += 1;
    }
    if (ch >= 'W' && ch < 'Z') loc = 7;
    if (strcmp(s1, s2) > 0) { loc += 7; int_glob = loc; return 1; }
    return 0;
}

static void proc7(int a, int b, int *out) { *out = a + b + 2; }

static void proc8(int *a1, int *a2, int idx, int val) {
    int loc = idx + 5;
    a1[loc] = val;
    a1[loc + 1] = a1[loc];
    a1[loc + 30] = loc;
    a2[loc] = loc;
    int_glob = 5;
}

static void proc3(record_t **out) {
    if (glob_ptr != 0) *out = glob_ptr->ptr_comp;
    proc7(10, int_glob, &glob_ptr->int_comp);
}

static void proc1(record_t *p) {
    record_t *next = p->ptr_comp;
    *next = glob;           /* struct copy */
    p->int_comp = 5;
    next->int_comp = p->int_comp;
    proc3(&next->ptr_comp);
    if (next->discr == 0) {
        next->int_comp = 6;
        proc7(next->int_comp, 10, &next->int_comp);
    }
}

int main(void) {
    int run;
    glob_ptr = &glob;
    glob.ptr_comp = &next_glob;
    glob.discr = 0;
    glob.enum_comp = 2;
    glob.int_comp = 40;
    strcpy(glob.str_comp, "DHRYSTONE PROGRAM, SOME STRING");
    char str1[31];
    char str2[31];
    strcpy(str1, "DHRYSTONE PROGRAM, 1ST STRING");
    strcpy(str2, "DHRYSTONE PROGRAM, 2ND STRING");

    for (run = 1; run <= DHRY_RUNS; run++) {
        int int1 = 2;
        int int2 = 3;
        int int3 = 0;
        if (func2(str1, str2) == 0) {
            proc7(int1, int2, &int3);
        }
        proc8(arr1_glob, arr2_glob, int1, int3);
        proc1(glob_ptr);
        ch2_glob = 'B';
        int_glob = run;
    }
    CTE_assert(int_glob == DHRY_RUNS);
    CTE_assert(next_glob.int_comp == 18);
    CTE_assert(arr1_glob[7] == 7);
    return 0;
}
`

// counterBench is the counter/s workload: per-bit branches on a symbolic
// byte plus a comparison against a second symbolic value generate a few
// hundred distinct paths of counting-related constraints.
const counterBench = `
unsigned char cnt_in[2];

int main(void) {
    CTE_make_symbolic(cnt_in, 2, "in");
    unsigned int a = cnt_in[0];
    unsigned int b = cnt_in[1];
    unsigned int count = 0;
    unsigned int i;
    for (i = 0; i < 8; i++) {
        if (b & (1u << i)) count++;
    }
    if (count == (a & 7u)) {
        CTE_assert(count <= 8);
    }
    CTE_assert(count <= 8);
    return (int)count;
}
`

// fibonacciBench is the fibonacci/s workload: a recursive implementation
// (function call intensive) applied to a symbolic, range-assumed input,
// checked against an iterative oracle.
const fibonacciBench = `
unsigned int fib_rec(unsigned int n) {
    if (n < 2) return n;
    return fib_rec(n - 1) + fib_rec(n - 2);
}

unsigned int fib_iter(unsigned int n) {
    unsigned int a = 0, b = 1, i;
    for (i = 0; i < n; i++) {
        unsigned int t = a + b;
        a = b;
        b = t;
    }
    return a;
}

unsigned char fib_n;

int main(void) {
    CTE_make_symbolic(&fib_n, 1, "n");
    CTE_assume(fib_n <= 10);
    unsigned int r = fib_rec(fib_n);
    CTE_assert(r == fib_iter(fib_n));
    return (int)r;
}
`

// stormBench is the branch-storm workload: a stress test for the SMT
// query cache (internal/qcache). The first loop's branches touch one
// symbolic byte each — independent constraint groups, which the cache's
// independence slicing reduces to single-variable solves — while the
// second loop chains neighbouring bytes into overlapping groups, and the
// score gate re-uses all of them. Exploration re-issues the same small
// condition set under hundreds of prefixes, the pattern query caching is
// built for.
const stormBench = `
unsigned char st_v[5];

int main(void) {
    CTE_make_symbolic(st_v, 5, "v");
    int score = 0;
    int i;
    for (i = 0; i < 5; i++) {
        if (st_v[i] > 100) score++;
    }
    for (i = 1; i < 5; i++) {
        if (st_v[i - 1] == st_v[i]) score--;
    }
    if (score == 5) {
        CTE_assert(st_v[0] != 200);
    }
    return score;
}
`

// BenchProgram returns a named benchmark program. Known names: qsort,
// qsort-s, sha256, dhrystone, counter-s, fibonacci-s, storm-s.
func BenchProgram(name string) (Program, bool) {
	switch name {
	case "qsort":
		return Program{Name: name, Sources: []Source{C("qsort.c", qsortBench)}}, true
	case "qsort-s":
		return Program{Name: name, Sources: []Source{C("qsort_s.c", qsortSymBench)}, MaxInstr: 2_000_000}, true
	case "sha256":
		return Program{Name: name, Sources: []Source{C("sha256.c", sha256Bench)}}, true
	case "dhrystone":
		return Program{Name: name, Sources: []Source{C("dhrystone.c", dhrystoneBench)}}, true
	case "counter-s":
		return Program{Name: name, Sources: []Source{C("counter.c", counterBench)}, MaxInstr: 2_000_000}, true
	case "fibonacci-s":
		return Program{Name: name, Sources: []Source{C("fibonacci.c", fibonacciBench)}, MaxInstr: 2_000_000}, true
	case "storm-s":
		return Program{Name: name, Sources: []Source{C("storm.c", stormBench)}, MaxInstr: 2_000_000}, true
	}
	return Program{}, false
}
