package guest

import (
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// sessPkt encodes one packet of the netcard's fuzz-input stream: 64
// frame bytes (NET_PKT_CAP) followed by the 4-byte little-endian
// symbolic size, matching the make-symbolic order in net_receive_packet.
func sessPkt(frame []byte, size int) []byte {
	buf := make([]byte, 68)
	copy(buf, frame)
	buf[64] = byte(size)
	buf[65] = byte(size >> 8)
	buf[66] = byte(size >> 16)
	buf[67] = byte(size >> 24)
	return buf
}

// runSession replays a concrete packet sequence against a
// depth-len(pkts) session guest with the given detector set and
// returns the core.
func runSession(t *testing.T, fixed uint, detectors []string, pkts ...[]byte) *iss.Core {
	t.Helper()
	b := smt.NewBuilder()
	core, _, err := NewCore(b, TCPIPSessionProgram(fixed, nil, len(pkts)))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.AttachDetectorSet(detectors); err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for _, p := range pkts {
		stream = append(stream, p...)
	}
	core.ConcreteOnly = true
	core.FuzzInput = stream
	core.Run(0)
	return core
}

// TestSessionSinglePath sanity-checks plain execution: all-zero packets
// have size 0 < 4, are dropped by the driver, and the session task exits
// after spending its NET_SESSION_PKTS slots.
func TestSessionSinglePath(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, TCPIPSessionProgram(0, nil, 3))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("single path error: %v (pc=%#x)", core.Err, core.PC)
	}
	if !core.Exited {
		t.Fatal("must exit after three dropped packets")
	}
}

// The three deep bugs, each replayed concretely at its minimal depth of
// three packets with the matching detector attached.

func TestSessionBug7UAFFires(t *testing.T) {
	core := runSession(t, 0, []string{"heap-guard", "heap-uaf"},
		sessPkt([]byte{1}, 4),       // SYN: allocate session
		sessPkt([]byte{4}, 4),       // RST: free it, pointer dangles
		sessPkt([]byte{3, 0x80}, 5), // DATA stats: touch freed block
	)
	if core.Err == nil || core.Err.Kind != iss.ErrUseAfterFree {
		t.Fatalf("want ErrUseAfterFree, got %v", core.Err)
	}
}

func TestSessionBug8CanaryFires(t *testing.T) {
	data := make([]byte, 64)
	data[0] = 3 // DATA, flags 0 -> reassembly path, plen = 28
	core := runSession(t, 0, []string{"heap-guard", "stack-canary"},
		sessPkt(data, 32), sessPkt(data, 32), sessPkt(data, 32),
	)
	if core.Err == nil || core.Err.Kind != iss.ErrStackSmash {
		t.Fatalf("want ErrStackSmash, got %v", core.Err)
	}
}

func TestSessionBug9ReentrancyFires(t *testing.T) {
	ack := []byte{2, 0x5A} // magic ACK arms the fast path at the 2nd
	core := runSession(t, 0, []string{"heap-guard", "irq-reentrancy"},
		sessPkt(ack, 4), sessPkt(ack, 4), sessPkt([]byte{1}, 4),
	)
	if core.Err == nil || core.Err.Kind != iss.ErrIRQReentrancy {
		t.Fatalf("want ErrIRQReentrancy, got %v", core.Err)
	}
}

// TestSessionDepthTwoClean: the same attack prefixes truncated to two
// packets stay clean — the seeded bugs genuinely need depth >= 3.
func TestSessionDepthTwoClean(t *testing.T) {
	data := make([]byte, 64)
	data[0] = 3
	for name, pkts := range map[string][][]byte{
		"uaf":    {sessPkt([]byte{1}, 4), sessPkt([]byte{4}, 4)},
		"canary": {sessPkt(data, 32), sessPkt(data, 32)},
		"reent":  {sessPkt([]byte{2, 0x5A}, 4), sessPkt([]byte{2, 0x5A}, 4)},
	} {
		core := runSession(t, 0, []string{"all"}, pkts...)
		if core.Err != nil {
			t.Errorf("%s prefix at depth 2: unexpected %v", name, core.Err)
		}
		if !core.Exited {
			t.Errorf("%s prefix at depth 2: did not exit", name)
		}
	}
}

// TestSessionUnregisteredDetectorsNeverFire: without the matching
// detector attached, the buggy traces run to completion — the stock
// heap-guard set alone reports nothing for the three deep bugs.
func TestSessionUnregisteredDetectorsNeverFire(t *testing.T) {
	data := make([]byte, 64)
	data[0] = 3
	for name, pkts := range map[string][][]byte{
		"uaf":    {sessPkt([]byte{1}, 4), sessPkt([]byte{4}, 4), sessPkt([]byte{3, 0x80}, 5)},
		"canary": {sessPkt(data, 32), sessPkt(data, 32), sessPkt(data, 32)},
		"reent":  {sessPkt([]byte{2, 0x5A}, 4), sessPkt([]byte{2, 0x5A}, 4), sessPkt([]byte{1}, 4)},
	} {
		core := runSession(t, 0, []string{"heap-guard"}, pkts...)
		if core.Err != nil {
			t.Errorf("%s without its detector: unexpected %v", name, core.Err)
		}
		if !core.Exited {
			t.Errorf("%s without its detector: did not exit", name)
		}
	}
}

// TestSessionFixedClean: with FIX_BUG7..9 compiled in, the full
// detector set finds nothing on the three attack sequences.
func TestSessionFixedClean(t *testing.T) {
	data := make([]byte, 64)
	data[0] = 3
	fixed := uint(1<<6 | 1<<7 | 1<<8)
	for name, pkts := range map[string][][]byte{
		"uaf":    {sessPkt([]byte{1}, 4), sessPkt([]byte{4}, 4), sessPkt([]byte{3, 0x80}, 5)},
		"canary": {sessPkt(data, 32), sessPkt(data, 32), sessPkt(data, 32)},
		"reent":  {sessPkt([]byte{2, 0x5A}, 4), sessPkt([]byte{2, 0x5A}, 4), sessPkt([]byte{1}, 4)},
	} {
		core := runSession(t, fixed, []string{"all"}, pkts...)
		if core.Err != nil {
			t.Errorf("%s with fixes: unexpected %v", name, core.Err)
		}
		if !core.Exited {
			t.Errorf("%s with fixes: did not exit", name)
		}
	}
}
