package guest

import (
	"context"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

func TestBuildHelloWorld(t *testing.T) {
	b := smt.NewBuilder()
	core, elf, err := NewCore(b, Program{
		Name: "hello",
		Sources: []Source{C("main.c", `
int main(void) {
    puts_("hello, vp");
    print_u32(12345);
    cte_putchar('\n');
    print_hex(0xdeadbeef);
    return 7;
}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := elf.Symbol("main"); !ok {
		t.Error("main symbol missing from ELF")
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("runtime error: %v", core.Err)
	}
	if core.ExitCode != 7 {
		t.Errorf("exit: %d", core.ExitCode)
	}
	want := "hello, vp\n12345\n0xdeadbeef"
	if string(core.Output) != want {
		t.Errorf("output %q want %q", core.Output, want)
	}
}

func TestLibcMemoryFunctions(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, Program{
		Name: "libc",
		Sources: []Source{C("main.c", `
int main(void) {
    char buf[64];
    char buf2[64];
    memset(buf, 0xab, 64);
    if ((unsigned char)buf[0] != 0xab || (unsigned char)buf[63] != 0xab) return 1;
    memcpy(buf2, buf, 64);
    if (memcmp(buf, buf2, 64) != 0) return 2;
    strcpy(buf, "overlap test");
    memmove(buf + 3, buf, 9);       /* overlapping forward */
    if (strncmp(buf + 3, "overlap t", 9) != 0) return 3;
    if (strlen("abcdef") != 6) return 4;
    if (strcmp("abc", "abd") >= 0) return 5;
    if (strcmp("same", "same") != 0) return 6;
    return 0;
}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatal(core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("libc test failed with code %d", core.ExitCode)
	}
}

func TestMallocFree(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, Program{
		Name: "malloc",
		Sources: []Source{C("main.c", `
int main(void) {
    unsigned int *a = (unsigned int *)malloc(64);
    unsigned int *b = (unsigned int *)malloc(128);
    if (a == 0 || b == 0 || a == b) return 1;
    a[0] = 0x1234; a[15] = 0x5678;
    b[0] = 0x9abc;
    if (a[0] != 0x1234 || a[15] != 0x5678 || b[0] != 0x9abc) return 2;
    free(a);
    unsigned int *c = (unsigned int *)malloc(32);   /* reuses a's block */
    if (c == 0) return 3;
    free(b);
    free(c);
    /* allocate something large to test coalescing */
    void *big = malloc(200000);
    if (big == 0) return 4;
    free(big);
    return 0;
}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatal(core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("malloc test failed with code %d", core.ExitCode)
	}
}

// TestSensorExampleBugFound reproduces the paper's running example
// (Fig. 2-4): concolic exploration of the sensor system must find the
// filter underflow bug — an input with filter >= MIN_SENSOR_VALUE and a
// small data value makes "data -= filter" wrap, violating the assertion.
func TestSensorExampleBugFound(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("exploration must find the sensor bug: %v", rep)
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Fatalf("expected assertion failure, got %v", f.Err)
	}
	// The violating input must have filter >= 16 (so the buggy
	// post-processing path with filter = MIN+1 = 17 was taken) and a
	// data value below 17 (so data - 17 wraps).
	fv := b.Value(f.Input, "f[0]") | b.Value(f.Input, "f[1]")<<8 |
		b.Value(f.Input, "f[2]")<<16 | b.Value(f.Input, "f[3]")<<24
	dv := b.Value(f.Input, "d[0]") | b.Value(f.Input, "d[1]")<<8 |
		b.Value(f.Input, "d[2]")<<16 | b.Value(f.Input, "d[3]")<<24
	if fv < 16 {
		t.Errorf("violating filter %d should be >= 16", fv)
	}
	if dv < 16 || dv > 64 {
		t.Errorf("violating data %d should be in the sensor range", dv)
	}
	if dv >= 17+64 {
		t.Errorf("violating data %d cannot trigger the wrap", dv)
	}
	t.Logf("found Fig. 4 bug with input %s after %d paths", cte.DescribeInput(b, f.Input), rep.Paths)
}

// TestSensorExampleFixedClean verifies that the patched peripheral
// (minus-one instead of plus-one) survives full exploration.
func TestSensorExampleFixedClean(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, SensorProgram(true))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 200}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("fixed sensor must be clean, got %v", rep.Findings)
	}
	if !rep.Exhausted {
		t.Errorf("exploration should exhaust the fixed sensor's paths (%d paths run)", rep.Paths)
	}
	if rep.Paths < 3 {
		t.Errorf("expected at least 3 explored paths, got %d", rep.Paths)
	}
}

// TestSensorDirectRun checks plain (single-path) simulation of the
// sensor system with the default all-zeros input: filter=0 stays below
// MIN, data=0 fails the assume, so the path is pruned inside the
// peripheral — exactly the I0 path of Fig. 4.
func TestSensorDirectRun(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, SensorProgram(false))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err == nil || core.Err.Kind != iss.ErrAssumeFail {
		t.Fatalf("zero input should prune at the sensor-range assume, got %v", core.Err)
	}
	if len(core.Trace) == 0 {
		t.Error("pruned path must still emit trace conditions")
	}
}

func TestBuildErrors(t *testing.T) {
	b := smt.NewBuilder()
	_, _, err := NewCore(b, Program{
		Name:    "broken",
		Sources: []Source{C("main.c", `int main( { return 0; }`)},
	})
	if err == nil {
		t.Error("compile error must propagate")
	}
	_, _, err = NewCore(b, Program{
		Name:    "missing-periph",
		Sources: []Source{C("main.c", `int main(void) { return 0; }`)},
		Peripherals: []PeriphSpec{
			{Name: "ghost", Base: 0x20000000, Size: 0x1000, TransportSym: "nope", BufSym: "nada"},
		},
	})
	if err == nil {
		t.Error("missing peripheral symbol must be an error")
	}
}

func TestDefinesPropagate(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, Program{
		Name: "defines",
		Sources: []Source{C("main.c", `
int main(void) {
#ifdef MY_FLAG
    return MY_VALUE;
#endif
    return 0;
}`)},
		Defines: map[string]string{"MY_FLAG": "1", "MY_VALUE": "42"},
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.ExitCode != 42 {
		t.Errorf("defines not propagated: exit %d", core.ExitCode)
	}
}

// TestCompressedGuestEquivalence: the same program built with the RV32C
// compression pass must behave identically (same exit code, output and
// retired instruction count — compression changes encodings, not
// instructions) while producing a smaller image.
func TestCompressedGuestEquivalence(t *testing.T) {
	for _, name := range []string{"qsort", "dhrystone"} {
		t.Run(name, func(t *testing.T) {
			p, _ := BenchProgram(name)
			p.Defines = map[string]string{"QSORT_N": "200", "DHRY_RUNS": "50"}

			plainELF, err := Build(p)
			if err != nil {
				t.Fatal(err)
			}
			p.Compress = true
			compELF, err := Build(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(compELF.Data) >= len(plainELF.Data) {
				t.Errorf("compressed image not smaller: %d vs %d", len(compELF.Data), len(plainELF.Data))
			}
			ratio := float64(len(compELF.Data)) / float64(len(plainELF.Data))
			t.Logf("image: %d -> %d bytes (%.0f%%)", len(plainELF.Data), len(compELF.Data), ratio*100)

			run := func(compress bool) *iss.Core {
				pp := p
				pp.Compress = compress
				b := smt.NewBuilder()
				core, _, err := NewCore(b, pp)
				if err != nil {
					t.Fatal(err)
				}
				core.Run(0)
				if core.Err != nil {
					t.Fatalf("compress=%v: %v", compress, core.Err)
				}
				return core
			}
			plain := run(false)
			comp := run(true)
			if plain.ExitCode != comp.ExitCode {
				t.Errorf("exit: %d vs %d", plain.ExitCode, comp.ExitCode)
			}
			if string(plain.Output) != string(comp.Output) {
				t.Errorf("output differs")
			}
			if plain.InstrCount != comp.InstrCount {
				t.Errorf("instr count: %d vs %d", plain.InstrCount, comp.InstrCount)
			}
		})
	}
}

// TestCompressedSensorExploration: concolic exploration over a
// compressed binary finds the same sensor bug.
func TestCompressedSensorExploration(t *testing.T) {
	p := SensorProgram(false)
	p.Compress = true
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 64}}).Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("compressed sensor exploration must find the bug: %v", rep)
	}
	if rep.Findings[0].Err.Kind != iss.ErrAssertFail {
		t.Errorf("kind: %v", rep.Findings[0].Err)
	}
}
