package guest

import (
	"strings"

	"rvcte/internal/iss"
	"rvcte/internal/relf"
)

// LocateFunc returns the name of the function containing pc: the nearest
// function-level symbol at or below pc (compiler-internal ".L" labels are
// skipped).
func LocateFunc(elf *relf.File, pc uint32) string {
	best := ""
	var bestAddr uint32
	for name, addr := range elf.Symbols {
		if strings.HasPrefix(name, ".L") {
			continue
		}
		if addr <= pc && (best == "" || addr > bestAddr) {
			best, bestAddr = name, addr
		}
	}
	return best
}

// ClassifyTCPIPFinding maps a heap-overflow finding in the mtcp stack to
// the seeded bug index 1..6 (Table 2 numbering), given which bugs are
// already fixed (bitmask, bit i = bug i+1 fixed). Returns 0 when the
// finding does not match any seeded bug.
func ClassifyTCPIPFinding(elf *relf.File, kind iss.ErrKind, pc uint32, fixed uint) int {
	if kind != iss.ErrProtectedRead && kind != iss.ErrProtectedWrite {
		return 0
	}
	fn := LocateFunc(elf, pc)
	switch fn {
	case "memmove", "prvProcessIPPacket":
		return 1
	case "rd16":
		// Unguarded 16-bit field reads exist only in the DNS path
		// (NBNS and TCP check sizes first).
		return 2
	case "prvProcessDNS":
		// Both the blind label walk (bug 2) and the reply copy (bug 3)
		// live here; once bug 2 is fixed, remaining faults are bug 3.
		if fixed&(1<<1) == 0 {
			return 2
		}
		return 3
	case "prvProcessTCP":
		return 4
	case "prvProcessNBNS":
		if kind == iss.ErrProtectedRead {
			return 5
		}
		return 6
	}
	return 0
}
