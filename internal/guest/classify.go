package guest

import (
	"strings"

	"rvcte/internal/iss"
	"rvcte/internal/relf"
)

// LocateFunc returns the name of the function containing pc: the nearest
// function-level symbol at or below pc (compiler-internal ".L" labels are
// skipped).
func LocateFunc(elf *relf.File, pc uint32) string {
	best := ""
	var bestAddr uint32
	for name, addr := range elf.Symbols {
		if strings.HasPrefix(name, ".L") {
			continue
		}
		if addr <= pc && (best == "" || addr > bestAddr) {
			best, bestAddr = name, addr
		}
	}
	return best
}

// ClassRule maps one finding shape to a seeded bug index. Rules are
// matched in order, first match wins. A rule matches when the finding's
// error kind is in Kinds (empty = any kind), the faulting PC lies in
// function Func (empty = any function), and — when NotFixed is nonzero
// — bug NotFixed is not in the fixed bitmask. Bug is the seeded bug
// index the rule classifies to.
type ClassRule struct {
	Kinds    []iss.ErrKind
	Func     string
	WriteBug int // overrides Bug for write-kind findings (0 = no override)
	NotFixed int // rule applies only while bug NotFixed is unfixed
	Bug      int
}

// classifiers is the per-guest rule table, keyed by the short guest
// name used on the campaign wire ("tcpip", "tcpip-session", ...).
var classifiers = map[string][]ClassRule{}

// RegisterClassifier installs the classification rules for a guest.
// Later registrations for the same guest replace earlier ones.
func RegisterClassifier(guest string, rules []ClassRule) {
	classifiers[guest] = rules
}

// RegisteredClassifiers returns the guest names with classification
// rules installed, sorted.
func RegisteredClassifiers() []string {
	names := make([]string, 0, len(classifiers))
	for n := range classifiers {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j-1] > names[j]; j-- {
			names[j-1], names[j] = names[j], names[j-1]
		}
	}
	return names
}

// Classify maps a finding in the named guest to its seeded bug index
// (Table 2 numbering for tcpip; 7..9 for the session guest), given
// which bugs are already fixed (bitmask, bit i = bug i+1 fixed).
// Returns 0 for guests without rules or findings matching no rule.
func Classify(guest string, elf *relf.File, kind iss.ErrKind, pc uint32, fixed uint) int {
	rules := classifiers[guest]
	if len(rules) == 0 {
		return 0
	}
	fn := ""
	if elf != nil {
		fn = LocateFunc(elf, pc)
	}
	for _, r := range rules {
		if len(r.Kinds) > 0 {
			hit := false
			for _, k := range r.Kinds {
				if k == kind {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		if r.Func != "" && r.Func != fn {
			continue
		}
		if r.NotFixed != 0 && fixed&(1<<(r.NotFixed-1)) != 0 {
			continue
		}
		if r.WriteBug != 0 && kind == iss.ErrProtectedWrite {
			return r.WriteBug
		}
		return r.Bug
	}
	return 0
}

func init() {
	heapKinds := []iss.ErrKind{iss.ErrProtectedRead, iss.ErrProtectedWrite}
	// The mtcp single-packet stack (Table 2 numbering). Ordered: the
	// DNS function hosts both the blind label walk (bug 2) and the
	// reply copy (bug 3) — once bug 2 is fixed, remaining DNS faults
	// are bug 3. Unguarded rd16 reads exist only in the DNS path
	// (NBNS and TCP check sizes first).
	RegisterClassifier("tcpip", []ClassRule{
		{Kinds: heapKinds, Func: "memmove", Bug: 1},
		{Kinds: heapKinds, Func: "prvProcessIPPacket", Bug: 1},
		{Kinds: heapKinds, Func: "rd16", Bug: 2},
		{Kinds: heapKinds, Func: "prvProcessDNS", NotFixed: 2, Bug: 2},
		{Kinds: heapKinds, Func: "prvProcessDNS", Bug: 3},
		{Kinds: heapKinds, Func: "prvProcessTCP", Bug: 4},
		{Kinds: heapKinds, Func: "prvProcessNBNS", Bug: 5, WriteBug: 6},
	})
	// The stateful session guest: each deep bug maps 1:1 onto a
	// detector kind, so the error kind alone classifies it.
	RegisterClassifier("tcpip-session", []ClassRule{
		// Bug 7 shows as a UAF (DATA stats touch after RST freed the
		// block) or as a double free (second RST on the dangling
		// pointer) — both are the missing NULL-out, both need 3 packets.
		{Kinds: []iss.ErrKind{iss.ErrUseAfterFree, iss.ErrDoubleFree}, Bug: 7},
		{Kinds: []iss.ErrKind{iss.ErrStackSmash}, Bug: 8},
		{Kinds: []iss.ErrKind{iss.ErrIRQReentrancy}, Bug: 9},
	})
}
