package guest

import (
	"context"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/qcache"
	"rvcte/internal/relf"
	"rvcte/internal/smt"
)

// sessionProto resolves a session program's ProtoSpec against its built
// ELF — the same wiring cmd/cte and the campaign runner perform.
func sessionProto(t *testing.T, p Program, elf *relf.File) cte.ProtocolConfig {
	t.Helper()
	addr, ok := elf.Symbol(p.Proto.StateSym)
	if !ok {
		t.Fatalf("state symbol %q missing from the session guest", p.Proto.StateSym)
	}
	return cte.ProtocolConfig{
		Packets:   p.Proto.Pkts,
		PktMax:    p.Proto.Caps,
		StateAddr: addr,
		States:    p.Proto.States,
	}
}

// findFixSession runs one find-fix-rerun campaign over the three deep
// session bugs with the given per-stage config factory (final = the
// patched-guest clean sweep, which runs on a reduced budget) and
// returns the bug indices discovered, in order.
func findFixSession(t *testing.T, mode string, cfgFor func(b *smt.Builder, proto cte.ProtocolConfig, final bool) cte.Config) []int {
	t.Helper()
	fixed := uint(0)
	var bugs []int
	for stage := 0; stage < 3; stage++ {
		b := smt.NewBuilder()
		p := TCPIPSessionProgram(fixed, nil, 3)
		core, elf, err := NewCore(b, p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cfgFor(b, sessionProto(t, p, elf), false)
		rep := cte.NewSession(core, cfg).Run(context.Background())
		if len(rep.Findings) == 0 {
			t.Fatalf("%s stage %d (fixed=%09b): no finding (stopped=%s paths=%d)",
				mode, stage, fixed, rep.Stopped, rep.Paths)
		}
		f := rep.Findings[0]
		bug := Classify("tcpip-session", elf, f.Err.Kind, f.Err.PC, fixed)
		if bug < 7 || bug > 9 {
			t.Fatalf("%s stage %d: unclassifiable finding %v in %s",
				mode, stage, f.Err, LocateFunc(elf, f.Err.PC))
		}
		if fixed&(1<<(bug-1)) != 0 {
			t.Fatalf("%s stage %d: bug %d found twice", mode, stage, bug)
		}
		instr, execs := rep.TotalInstr, uint64(0)
		if rep.Fuzz != nil {
			instr, execs = rep.Fuzz.TotalInstr, rep.Fuzz.Execs
		}
		t.Logf("%s stage %d: bug %d (%v in %s), %d paths, %d execs, %d queries, %d instr",
			mode, stage, bug, f.Err.Kind, LocateFunc(elf, f.Err.PC),
			rep.Paths, execs, rep.Queries, instr)
		bugs = append(bugs, bug)
		fixed |= 1 << (bug - 1)
	}
	// The fully patched guest survives the same exploration budget.
	b := smt.NewBuilder()
	p := TCPIPSessionProgram(fixed, nil, 3)
	core, elf, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	rep := cte.NewSession(core, cfgFor(b, sessionProto(t, p, elf), true)).Run(context.Background())
	if len(rep.Findings) != 0 {
		f := rep.Findings[0]
		t.Fatalf("%s: patched guest still fails: %v in %s", mode, f.Err, LocateFunc(elf, f.Err.PC))
	}
	return bugs
}

// TestSessionDeepBugsConcolic: pure concolic exploration rediscovers
// all three seeded depth-3 bugs (UAF, canary smash, IRQ reentrancy) on
// the stateful session guest, find-fix-rerun style, and reports nothing
// once all three patches are in.
func TestSessionDeepBugsConcolic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stage exploration is slow")
	}
	bugs := findFixSession(t, "concolic", func(b *smt.Builder, proto cte.ProtocolConfig, final bool) cte.Config {
		maxPaths := 30_000
		if final {
			maxPaths = 4_000 // bounded clean sweep of the patched guest
		}
		return cte.Config{
			Workers:     cte.AutoWorkers,
			StopOnError: true,
			Detectors:   []string{"all"},
			Budget:      cte.Budget{MaxPaths: maxPaths},
			Cache:       cte.CacheConfig{Queries: qcache.New(b, qcache.Options{})},
			// State-banked coverage scheduling is what makes the deep op
			// sequences reachable: inputs that advance the protocol state
			// land in a fresh edge bank and get frontier priority.
			Explore:  cte.ExploreConfig{Strategy: cte.Coverage, TrackCoverage: true},
			Fork:     cte.ForkConfig{Enabled: true},
			Protocol: proto,
		}
	})
	checkDeepBugSet(t, "concolic", bugs)
}

// TestSessionDeepBugsHybrid: the hybrid fuzzer — state-banked coverage
// map plus concolic escalation on stall — rediscovers the same three
// deep bugs, and goes quiet on the patched guest.
func TestSessionDeepBugsHybrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stage fuzzing is slow")
	}
	bugs := findFixSession(t, "hybrid", func(b *smt.Builder, proto cte.ProtocolConfig, final bool) cte.Config {
		budget := cte.Budget{MaxExecs: 400_000, MaxInstrPerRun: 2_000_000}
		if final {
			budget.MaxExecs = 60_000 // bounded clean sweep of the patched guest
		}
		return cte.Config{
			Mode:        cte.ModeHybrid,
			Seed:        1,
			StopOnError: true,
			Detectors:   []string{"all"},
			Cache:       cte.CacheConfig{Queries: qcache.New(b, qcache.Options{})},
			Budget:      budget,
			Fuzz: cte.FuzzConfig{
				Batch:          200,
				StallExecs:     200,
				DryEscalations: 2000,
			},
			Protocol: proto,
		}
	})
	checkDeepBugSet(t, "hybrid", bugs)
}

func checkDeepBugSet(t *testing.T, mode string, bugs []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, b := range bugs {
		seen[b] = true
	}
	for b := 7; b <= 9; b++ {
		if !seen[b] {
			t.Errorf("%s never discovered deep bug %d (got %v)", mode, b, bugs)
		}
	}
}
