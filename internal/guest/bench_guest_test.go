package guest

import (
	"context"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/smt"
)

func runBench(t *testing.T, name string, overrides map[string]string) *cteResult {
	t.Helper()
	p, ok := BenchProgram(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	if p.Defines == nil {
		p.Defines = map[string]string{}
	}
	for k, v := range overrides {
		p.Defines[k] = v
	}
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	return &cteResult{core: core}
}

type cteResult struct{ core interface{ Halted() bool } }

func TestQsortConcrete(t *testing.T) {
	p, _ := BenchProgram("qsort")
	p.Defines = map[string]string{"QSORT_N": "300"}
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("qsort failed: %v", core.Err)
	}
	if !core.Exited || core.ExitCode != 0 {
		t.Errorf("qsort exit: %d", core.ExitCode)
	}
	if core.InstrCount < 100_000 {
		t.Errorf("qsort too short: %d instr", core.InstrCount)
	}
}

func TestSha256KnownAnswer(t *testing.T) {
	p, _ := BenchProgram("sha256")
	p.Defines = map[string]string{"SHA_ITERS": "2", "SHA_MSG_LEN": "128"}
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	// The guest itself asserts SHA256("") starts with 0xe3b0c442.
	if core.Err != nil {
		t.Fatalf("sha256 failed: %v", core.Err)
	}
}

func TestDhrystoneSelfCheck(t *testing.T) {
	p, _ := BenchProgram("dhrystone")
	p.Defines = map[string]string{"DHRY_RUNS": "200"}
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("dhrystone failed: %v", core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("dhrystone exit: %d", core.ExitCode)
	}
}

func TestCounterSymbolicExploration(t *testing.T) {
	p, _ := BenchProgram("counter-s")
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 1500}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("counter has no bugs, found %v", rep.Findings)
	}
	if !rep.Exhausted {
		t.Errorf("counter exploration should exhaust (%d paths)", rep.Paths)
	}
	// 8 bit-branches on b plus the final comparison on a: a few hundred
	// distinct paths (Table 1 reports 452 for the paper's variant).
	if rep.Paths < 200 || rep.Paths > 1200 {
		t.Errorf("counter paths: %d, want a few hundred", rep.Paths)
	}
	t.Logf("counter-s: %v", rep)
}

func TestFibonacciSymbolicExploration(t *testing.T) {
	p, _ := BenchProgram("fibonacci-s")
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 200}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("fibonacci has no bugs, found %v", rep.Findings)
	}
	if !rep.Exhausted {
		t.Errorf("fibonacci exploration should exhaust (%d paths)", rep.Paths)
	}
	// One full path per n in 0..10 plus assume-pruned ones: order of
	// tens of paths (Table 1 reports 22).
	if rep.Paths < 10 || rep.Paths > 120 {
		t.Errorf("fibonacci paths: %d", rep.Paths)
	}
	t.Logf("fibonacci-s: %v", rep)
}

func TestQsortSymbolicExploration(t *testing.T) {
	p, _ := BenchProgram("qsort-s")
	p.Defines = map[string]string{"QSORT_S_N": "4"}
	b := smt.NewBuilder()
	core, _, err := NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 600}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("qsort-s: sort must be correct on every path, found %v", rep.Findings)
	}
	// Orderings of 4 elements create dozens of paths.
	if rep.Paths < 20 {
		t.Errorf("qsort-s paths: %d", rep.Paths)
	}
	t.Logf("qsort-s: %v", rep)
}
