package guest

import (
	"context"
	"fmt"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// exploreTCPIP runs exploration against the stack with the given bugs
// fixed (bitmask, bit i = FIX_BUG(i+1)).
func exploreTCPIP(t *testing.T, fixedBugs uint, maxPaths int) (*cte.Report, *smt.Builder, *iss.Core) {
	t.Helper()
	b := smt.NewBuilder()
	core, elf, err := NewCore(b, TCPIPProgram(fixedBugs, 64))
	if err != nil {
		t.Fatal(err)
	}
	_ = elf
	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: maxPaths}})
	return eng.Run(context.Background()), b, core
}

func isHeapOverflow(k iss.ErrKind) bool {
	return k == iss.ErrProtectedRead || k == iss.ErrProtectedWrite
}

// TestTCPIPBug1 reproduces Table 2 error 1: a malformed IP header length
// underflows the payload size and the normalizing memmove overruns the
// packet buffer. It must be the very first error found.
func TestTCPIPBug1(t *testing.T) {
	b := smt.NewBuilder()
	core, elf, err := NewCore(b, TCPIPProgram(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 400}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("bug 1 not found: %v", rep)
	}
	f := rep.Findings[0]
	if !isHeapOverflow(f.Err.Kind) {
		t.Fatalf("expected a heap overflow, got %v", f.Err)
	}
	if bug := Classify("tcpip", elf, f.Err.Kind, f.Err.PC, 0); bug != 1 {
		t.Fatalf("first finding should be bug 1, classified as %d (%v in %s)",
			bug, f.Err, LocateFunc(elf, f.Err.PC))
	}
	if rep.Paths > 50 {
		t.Errorf("bug 1 should be shallow; took %d paths", rep.Paths)
	}
	t.Logf("bug1: %v after %d paths, %d queries (input %s)",
		f.Err, rep.Paths, rep.Queries, cte.DescribeInput(b, f.Input))
}

// TestTCPIPFindFixRerun reproduces the full §4.2.3 workflow: run CTE
// until the first error, fix it, re-run — until no more errors are found.
// All six seeded bug classes must be discovered.
func TestTCPIPFindFixRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stage exploration is slow")
	}
	fixed := uint(0)
	found := map[int]bool{}
	budgets := []int{400, 1200, 2500, 4000, 6000, 9000}

	for stage := 0; stage < 6; stage++ {
		b := smt.NewBuilder()
		core, elf, err := NewCore(b, TCPIPProgram(fixed, 64))
		if err != nil {
			t.Fatal(err)
		}
		eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: budgets[stage]}})
		rep := eng.Run(context.Background())
		if len(rep.Findings) == 0 {
			t.Fatalf("stage %d (fixed=%06b): no error found in %d paths", stage, fixed, rep.Paths)
		}
		f := rep.Findings[0]
		bug := Classify("tcpip", elf, f.Err.Kind, f.Err.PC, fixed)
		if bug == 0 {
			t.Fatalf("stage %d: unclassifiable finding %v in %s", stage, f.Err, LocateFunc(elf, f.Err.PC))
		}
		if found[bug] {
			t.Fatalf("stage %d: bug %d found twice (fix ineffective?)", stage, bug)
		}
		found[bug] = true
		fixed |= 1 << (bug - 1)
		t.Logf("stage %d: found bug %d (%v in %s) after %d paths, %d queries, %.2fs solver, %d instr",
			stage, bug, f.Err.Kind, LocateFunc(elf, f.Err.PC),
			rep.Paths, rep.Queries, rep.SolverTime.Seconds(), rep.TotalInstr)
	}
	for i := 1; i <= 6; i++ {
		if !found[i] {
			t.Errorf("bug %d was never discovered", i)
		}
	}

	// Final stage: everything fixed, bounded sweep must be clean.
	b := smt.NewBuilder()
	core, _, err := NewCore(b, TCPIPProgram(fixed, 64))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 600}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Errorf("all-fixed stack must be clean, found %v", rep.Findings)
	}
	t.Logf("final sweep: %v", rep)
}

// TestTCPIPAllFixed: with every bug patched, exploration (bounded) finds
// nothing.
func TestTCPIPAllFixed(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, TCPIPProgram(0b111111, 64))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 400}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("fixed stack must be clean, found %v", rep.Findings)
	}
	t.Logf("all-fixed sweep: %v", rep)
}

// TestTCPIPSinglePath sanity-checks plain execution (no exploration):
// the zero packet is dropped by the driver's minimum-size check.
func TestTCPIPSinglePath(t *testing.T) {
	b := smt.NewBuilder()
	core, _, err := NewCore(b, TCPIPProgram(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatalf("single path error: %v", core.Err)
	}
	if !core.Exited {
		t.Fatal("must exit via the drop path")
	}
}

// TestTCPIPChecksumValidation: with IP header checksum validation
// enabled, exploration must construct packets whose one's-complement sum
// folds to 0xffff before any parsing happens — a significantly harder
// solver workload — and still find the first bug.
func TestTCPIPChecksumValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy")
	}
	b := smt.NewBuilder()
	core, elf, err := NewCore(b, TCPIPChecksumProgram(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	eng := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 1500}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("bug 1 must be reachable through the checksum: %v", rep)
	}
	f := rep.Findings[0]
	if !isHeapOverflow(f.Err.Kind) {
		t.Fatalf("kind: %v", f.Err)
	}
	if bug := Classify("tcpip", elf, f.Err.Kind, f.Err.PC, 0); bug != 1 {
		t.Errorf("expected bug 1 first, got %d", bug)
	}
	// Verify the model really carries a valid checksum: fold the summed
	// base-header halfwords of the solved packet.
	sum := uint64(0)
	for i := uint64(0); i < 20; i += 2 {
		hi := b.Value(f.Input, fmt.Sprintf("pkt[%d]", i))
		lo := b.Value(f.Input, fmt.Sprintf("pkt[%d]", i+1))
		sum += hi<<8 | lo
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Errorf("solved packet checksum folds to %#x, want 0xffff", sum)
	}
	t.Logf("checksum-valid overflow packet found after %d paths, %d queries, %.2fs solver",
		rep.Paths, rep.Queries, rep.SolverTime.Seconds())
}
