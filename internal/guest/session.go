package guest

import "fmt"

// mtcpSession is the stateful multi-packet protocol target: a miniature
// TCP-like session state machine (LISTEN -> SYN_RCVD -> ESTABLISHED)
// fed a *sequence* of NET_SESSION_PKTS symbolic packets through the
// netcard peripheral. Where the single-packet mtcp stack seeds heap
// overflows, this guest seeds the deeper bug classes of ROADMAP item 4
// — each reachable only at packet depth >= 3 and individually fixable
// with FIX_BUG7..FIX_BUG9 defines:
//
//  7. use-after-free: RST frees the session block but leaves the
//     pointer dangling; a later DATA packet on the stats path
//     (flags & 0x80) touches it (SYN, RST, DATA = 3 packets).
//     Detected by the heap-uaf detector.
//  8. stack smashing: DATA reassembly appends payloads into a 64-byte
//     window with no cumulative bound; per-packet payloads are capped
//     at 28 bytes, so overflowing into the armed canary tail needs
//     three DATA packets (2 x 28 = 56 < 64 < 3 x 28). Detected by the
//     stack-canary detector.
//  9. IRQ-handler reentrancy: two magic ACKs arm a receive "fast
//     path" that re-enables interrupts inside the netcard IRQ handler
//     and requests the next packet from there — the third packet's IRQ
//     then re-enters the still-active handler. Detected by the
//     irq-reentrancy detector.
//
// Frame format (after the netcard DMA): f[0] = op (1 SYN, 2 ACK,
// 3 DATA, 4 RST), f[1] = flags, f[2..3] reserved, f[4..] payload.
// sess_state is the protocol-state byte the engines bank edge coverage
// by (Program.Proto.StateSym).
const mtcpSession = `
/* ---- Fig. 5 heap guard wrappers (as in the mtcp stack) ---- */
#define PROT_ZONE_SIZE 64

void *__wrap_pvPortMalloc(unsigned int xWantedSize) {
    unsigned int xSize = xWantedSize + 2 * PROT_ZONE_SIZE;
    unsigned char *p = (unsigned char *)pvPortMalloc(xSize);
    if (p == 0) return 0;
    void *addr = (void *)(p + PROT_ZONE_SIZE);
    CTE_register_protected_memory(addr, xWantedSize, PROT_ZONE_SIZE);
    return addr;
}

void __wrap_vPortFree(void *pv) {
    CTE_assert(pv != 0);
    CTE_free_protected_memory(pv);
    void *pv_real = (void *)((unsigned char *)pv - PROT_ZONE_SIZE);
    vPortFree(pv_real);
}

#define pvPortMalloc __wrap_pvPortMalloc
#define vPortFree __wrap_vPortFree

/* ---- session state machine ---- */
#define OP_SYN 1
#define OP_ACK 2
#define OP_DATA 3
#define OP_RST 4

#define SESS_LISTEN 0
#define SESS_SYN_RCVD 1
#define SESS_ESTABLISHED 2

#define REASM_CAP 64

typedef struct sess {
    unsigned int rx_bytes;
    unsigned int tx_bytes;
    unsigned int flags;
} sess_t;

/* The protocol-state byte: engines bank edge coverage by it. */
unsigned char sess_state = SESS_LISTEN;

sess_t *cur_sess = 0;
unsigned int sess_acks = 0;
volatile unsigned int sess_fastpath = 0;

/* Reassembly window: logical capacity REASM_CAP; the 32-byte tail is
   armed as a canary region at boot. */
unsigned char sess_reasm[96];
unsigned int sess_off = 0;

void prvSessionInput(unsigned char *f, unsigned int n) {
    unsigned int op = f[0];
    unsigned int flags = f[1];
    unsigned int plen = n - 4;

    if (op == OP_SYN) {
        if (sess_state == SESS_LISTEN) {
            if (cur_sess == 0) {
                cur_sess = (sess_t *)pvPortMalloc(sizeof(sess_t));
                if (cur_sess == 0) return;
                cur_sess->rx_bytes = 0;
                cur_sess->tx_bytes = 0;
                cur_sess->flags = flags;
            }
            sess_state = SESS_SYN_RCVD;
        }
    } else if (op == OP_ACK) {
        if (sess_state == SESS_SYN_RCVD) sess_state = SESS_ESTABLISHED;
        if (flags == 0x5A) {
            sess_acks = sess_acks + 1;
            if (sess_acks >= 2) sess_fastpath = 1;
        }
    } else if (op == OP_DATA) {
        if (flags & 0x80) {
            /* Stats path. BUG7 when unfixed: after an RST freed the
               session block, cur_sess still points at it. */
            if (cur_sess != 0) {
                cur_sess->rx_bytes = cur_sess->rx_bytes + plen;
            }
        } else {
            /* Reassembly path. BUG8 when unfixed: no cumulative bound
               on the appended payload total. */
#ifdef FIX_BUG8
            if (sess_off >= REASM_CAP) return;
            if (plen > REASM_CAP - sess_off) plen = REASM_CAP - sess_off;
#endif
            memcpy(sess_reasm + sess_off, f + 4, plen);
            sess_off = sess_off + plen;
        }
    } else if (op == OP_RST) {
        if (cur_sess != 0) {
            vPortFree((void *)cur_sess);
#ifdef FIX_BUG7
            cur_sess = 0;
#endif
        }
        sess_state = SESS_LISTEN;
        sess_off = 0;
    }
}
`

// mtcpSessionApp drives the session: one task requests NET_SESSION_PKTS
// packets from the netcard, DMAs each into a static frame buffer and
// feeds it to prvSessionInput — packet N is fully processed before
// packet N+1 is requested, so session state at packet k depends on the
// whole prefix. The netcard IRQ handler carries the bug-9 fast path.
const mtcpSessionApp = `
#ifndef NET_SESSION_PKTS
#define NET_SESSION_PKTS 3
#endif
#ifndef NET_PKT_CAP
#define NET_PKT_CAP 64
#endif

unsigned int *NET_CTRL = (unsigned int *)0x10030000;
unsigned int *NET_RX_SIZE = (unsigned int *)0x10030004;
unsigned int *NET_DMA_ADDR = (unsigned int *)0x10030008;
unsigned int *NET_DMA_START = (unsigned int *)0x1003000c;

volatile unsigned int net_irq_seen = 0;
unsigned int reent_kick = 0;
extern volatile unsigned int sess_fastpath;

unsigned char rx_frame[NET_PKT_CAP];
unsigned char sess_canary_probe = 0;
unsigned int sess_stack[768];

void prvSessionInput(unsigned char *f, unsigned int n);
extern unsigned char sess_reasm[96];

void net_irq_handler(void) {
    net_irq_seen = 1;
#ifndef FIX_BUG9
    /* BUG9 when unfixed: the receive fast path re-enables interrupts
       inside the handler and immediately requests the next packet, so
       its IRQ re-enters this still-active handler. */
    if (sess_fastpath && reent_kick < 2) {
        reent_kick = reent_kick + 1;
        __enable_mie();
        *NET_CTRL = 1;
    }
#endif
}

void vSessionTask(void *arg) {
    unsigned int k;
    register_interrupt_handler(3 /* netcard */, net_irq_handler);
    for (k = 0; k < NET_SESSION_PKTS; k++) {
        *NET_CTRL = 1;               /* request the next symbolic packet */
        while (!net_irq_seen) {
            vTaskDelay(1);
        }
        net_irq_seen = 0;
        unsigned int size = *NET_RX_SIZE;
        if (size >= 4 && size <= NET_PKT_CAP) {
            *NET_DMA_ADDR = (unsigned int)rx_frame;
            *NET_DMA_START = 1;
            prvSessionInput(rx_frame, size);
        }
        /* else: undersized/oversized frame dropped; the slot is spent */
    }
    CTE_exit(0);
}

int main(void) {
    /* Arm the canary over the reassembly window's tail (no-op unless
       the stack-canary detector is attached). */
    CTE_canary_arm(sess_reasm + 64, 32);
    xTaskCreate(vSessionTask, "sess", sess_stack, 768, (void *)0, 2);
    vTaskStartScheduler();
    return 0;
}
`

// TCPIPSessionProgram builds the stateful multi-packet session target
// with the given bugs fixed (bitmask, bit 6 = FIX_BUG7 ... bit 8 =
// FIX_BUG9; the tcpip bits 0-5 are ignored). pktCaps holds per-packet
// symbolic size caps — packet k is bounded by pktCaps[k], with the
// last entry repeating for deeper packets; nil defaults every packet
// to 32 bytes. pkts is the session depth in packets (default 3).
func TCPIPSessionProgram(fixedBugs uint, pktCaps []int, pkts int) Program {
	if pkts <= 0 {
		pkts = 3
	}
	if len(pktCaps) == 0 {
		pktCaps = []int{32}
	}
	caps := make([]int, len(pktCaps))
	for i, c := range pktCaps {
		if c < 8 {
			c = 8
		}
		if c > 64 {
			c = 64
		}
		caps[i] = c
	}
	// Per-packet symbolic sizing: the netcard asks this function for
	// packet k's bound (NET_PKT_CAPS_FN in periph.go).
	capsSrc := "unsigned int net_pkt_cap_for(unsigned int idx) {\n"
	for i := 0; i < len(caps)-1; i++ {
		capsSrc += fmt.Sprintf("    if (idx == %d) return %d;\n", i, caps[i])
	}
	capsSrc += fmt.Sprintf("    return %d;\n}\n", caps[len(caps)-1])

	periphSrcs, specs := RTOSPeriphs()
	defines := map[string]string{
		"NET_PKT_CAP":      "64",
		"NET_PKT_CAPS_FN":  "1",
		"NET_SESSION_PKTS": itoa(pkts),
	}
	for i := 6; i < 9; i++ {
		if fixedBugs&(1<<i) != 0 {
			defines["FIX_BUG"+itoa(i+1)] = "1"
		}
	}
	srcs := append([]Source{}, RTOSSources()...)
	srcs = append(srcs, periphSrcs...)
	srcs = append(srcs,
		C("caps.c", capsSrc),
		C("session.c", mrtosHeader+mtcpSession),
		C("sessapp.c", mrtosHeader+mtcpSessionApp),
	)
	return Program{
		Name:        "freertos-tcpip-session",
		Sources:     srcs,
		Peripherals: specs,
		Defines:     defines,
		MaxInstr:    30_000_000,
		Proto: ProtoSpec{
			Pkts:     pkts,
			Caps:     caps,
			StateSym: "sess_state",
			States:   4,
		},
	}
}
