package guest

import (
	"context"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/fuzz"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// tcpipHybridOptions is the configuration used for the hybrid find-fix
// experiment (EXPERIMENTS.md "Hybrid fuzzing ablation"): short stall
// windows keep the solver in the loop — on this workload the gates are
// comparison-shaped, so concrete mutation mostly serves to execute
// solved inputs cheaply and harvest their neighborhoods.
func tcpipHybridOptions(b *smt.Builder) cte.Config {
	return cte.Config{
		Mode: cte.ModeHybrid,
		// Query-cache reuse is part of the hybrid design: flip queries
		// along sibling paths share long prefixes, which the cache's
		// model-reuse and slicing exploit.
		Cache:       cte.CacheConfig{Queries: qcache.New(b, qcache.Options{})},
		Seed:        1,
		StopOnError: true,
		Budget:      cte.Budget{MaxExecs: 150_000, MaxInstrPerRun: 2_000_000},
		Fuzz: cte.FuzzConfig{
			Batch:      200,
			StallExecs: 200,
			// The corpus grows into the hundreds on this stack; give the
			// escalation rotation a full sweep before declaring exhaustion.
			DryEscalations: 500,
		},
	}
}

// TestTCPIPHybridFindFixRerun replays the §4.2.3 find-fix-rerun
// workflow with the hybrid fuzzer instead of pure concolic exploration:
// all six seeded bugs must be rediscovered, and the total number of SAT
// queries must be strictly lower than the pure-concolic baseline at the
// same worker count — the hybrid pays solver time only for
// coverage-stalled branches.
func TestTCPIPHybridFindFixRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stage exploration is slow")
	}

	// Hybrid protocol.
	fixed := uint(0)
	found := map[int]bool{}
	hybridQueries, hybridExecs := 0, uint64(0)
	for stage := 0; stage < 6; stage++ {
		b := smt.NewBuilder()
		core, elf, err := NewCore(b, TCPIPProgram(fixed, 64))
		if err != nil {
			t.Fatal(err)
		}
		rep := cte.NewSession(core, tcpipHybridOptions(b)).Run(context.Background())
		hybridQueries += rep.Queries
		hybridExecs += rep.Fuzz.Execs
		if len(rep.Findings) == 0 {
			t.Fatalf("hybrid stage %d (fixed=%06b): no finding (stopped=%s execs=%d escalations=%d solves=%d)",
				stage, fixed, rep.Stopped, rep.Fuzz.Execs, rep.Fuzz.Escalations, rep.Fuzz.Solves)
		}
		f := rep.Findings[0]
		bug := Classify("tcpip", elf, f.Err.Kind, f.Err.PC, fixed)
		if bug == 0 {
			t.Fatalf("hybrid stage %d: unclassifiable finding %v in %s", stage, f.Err, LocateFunc(elf, f.Err.PC))
		}
		if found[bug] {
			t.Fatalf("hybrid stage %d: bug %d found twice", stage, bug)
		}
		found[bug] = true
		fixed |= 1 << (bug - 1)
		t.Logf("hybrid stage %d: bug %d (%v in %s) after %d execs, %d escalations, %d solves, %d queries, %.2fs solver, skip-init %d instr",
			stage, bug, f.Err.Kind, LocateFunc(elf, f.Err.PC), rep.Fuzz.Execs,
			rep.Fuzz.Escalations, rep.Fuzz.Solves, rep.Queries, rep.SolverTime.Seconds(), rep.Fuzz.SkipInitInstrs)
	}
	for i := 1; i <= 6; i++ {
		if !found[i] {
			t.Errorf("hybrid protocol never discovered bug %d", i)
		}
	}

	// Pure-concolic baseline, same budgets as TestTCPIPFindFixRerun.
	fixed = 0
	concolicQueries := 0
	budgets := []int{400, 1200, 2500, 4000, 6000, 9000}
	for stage := 0; stage < 6; stage++ {
		b := smt.NewBuilder()
		core, elf, err := NewCore(b, TCPIPProgram(fixed, 64))
		if err != nil {
			t.Fatal(err)
		}
		rep := cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: budgets[stage]}}).Run(context.Background())
		concolicQueries += rep.Queries
		if len(rep.Findings) == 0 {
			t.Fatalf("concolic stage %d: no finding", stage)
		}
		f := rep.Findings[0]
		bug := Classify("tcpip", elf, f.Err.Kind, f.Err.PC, fixed)
		if bug == 0 {
			t.Fatalf("concolic stage %d: unclassifiable finding", stage)
		}
		fixed |= 1 << (bug - 1)
	}

	if hybridQueries >= concolicQueries {
		t.Errorf("hybrid must need strictly fewer SAT queries: hybrid=%d concolic=%d",
			hybridQueries, concolicQueries)
	}
	t.Logf("find-fix-rerun totals: hybrid %d queries (%d concrete execs), pure concolic %d queries",
		hybridQueries, hybridExecs, concolicQueries)
}

// TestTCPIPPureFuzzBaseline documents the other end of the ablation: a
// pure coverage-guided fuzzer (no concolic assist) reaches at most the
// shallow length-field overflow by byte mutation — the format-gated
// deeper protocol handlers stay out of reach within many times the
// execution budget the hybrid needs for all six bugs.
func TestTCPIPPureFuzzBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("large execution count")
	}
	b := smt.NewBuilder()
	core, elf, err := NewCore(b, TCPIPProgram(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	f := fuzz.New(core, fuzz.Options{Seed: 1, MaxInstrPerRun: 2_000_000})
	f.RunBatch(20_000)
	st := f.Stats()
	var bugs []int
	for _, fd := range f.Findings() {
		if bug := Classify("tcpip", elf, fd.Err.Kind, fd.Err.PC, 0); bug != 0 {
			bugs = append(bugs, bug)
		}
	}
	// The log line feeds EXPERIMENTS.md.
	t.Logf("pure fuzz: %d execs, %d corpus, %d edges, %d pruned, seeded bugs found: %v",
		st.Execs, st.CorpusSize, st.Edges, st.Pruned, bugs)
	if st.Execs != 20_000 {
		t.Errorf("execs %d want 20000", st.Execs)
	}
	if st.CorpusSize == 0 {
		t.Error("fuzzer built no corpus at all")
	}
}
