package guest

import (
	"testing"

	"rvcte/internal/smt"
)

// TestUninitializedGlobalsGoToBss: large zero-initialized state (the
// libc heap, task stacks, packet buffers) must live in .bss — absent
// from the ELF image but zeroed and writable at run time.
func TestUninitializedGlobalsGoToBss(t *testing.T) {
	prog := Program{
		Name: "bss",
		Sources: []Source{C("main.c", `
unsigned char big_buffer[100000];   /* uninitialized: .bss */
unsigned int initialized_table[4] = {1, 2, 3, 4};

int main(void) {
    if (big_buffer[0] != 0 || big_buffer[99999] != 0) return 1;
    big_buffer[50000] = 7;
    if (big_buffer[50000] != 7) return 2;
    if (initialized_table[2] != 3) return 3;
    return 0;
}`)},
	}
	elf, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The 100 KB buffer must not appear in the image bytes.
	if len(elf.Data) > 50000 {
		t.Errorf("image size %d: uninitialized buffer leaked into the image", len(elf.Data))
	}
	if elf.MemSize < 100000 {
		t.Errorf("memsize %d must cover the .bss region", elf.MemSize)
	}
	bufAddr, ok := elf.Symbol("big_buffer")
	if !ok {
		t.Fatal("big_buffer symbol missing")
	}
	if bufAddr < elf.Addr+uint32(len(elf.Data)) {
		t.Errorf("big_buffer at %#x overlaps the image (ends %#x)",
			bufAddr, elf.Addr+uint32(len(elf.Data)))
	}

	b := smt.NewBuilder()
	core, _, err := NewCore(b, prog)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(0)
	if core.Err != nil {
		t.Fatal(core.Err)
	}
	if core.ExitCode != 0 {
		t.Errorf("bss semantics: exit %d", core.ExitCode)
	}
}
