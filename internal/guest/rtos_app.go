package guest

// freertosSensorApp embeds the sensor application into RTOS tasks
// (Table 1's freertos-sensor benchmark): a high-priority sensor task
// consumes interrupt-driven sensor samples while a low-priority worker
// task crunches in the background under the preemptible tick.
const freertosSensorApp = `
#ifndef NSAMPLES
#define NSAMPLES 3
#endif
#ifndef MAX_SENSOR_VALUE
#define MAX_SENSOR_VALUE 64
#endif

unsigned int *SENSOR_SCALER_REG = (unsigned int *)0x10000000;
unsigned int *SENSOR_FILTER_REG = (unsigned int *)0x10000004;
unsigned int *SENSOR_DATA_REG = (unsigned int *)0x10000008;

volatile unsigned int s_has_data = 0;
volatile unsigned int sample_count = 0;
unsigned int sensor_checksum = 0;
volatile unsigned int worker_iters = 0;

unsigned int sensor_task_stack[512];
unsigned int worker_task_stack[512];

void sensor_irq(void) {
    s_has_data = 1;
}

void sensor_task(void *arg) {
    register_interrupt_handler(2, sensor_irq);
    *SENSOR_FILTER_REG = 5;   /* below MIN: the buggy rewrite is dormant */
    *SENSOR_SCALER_REG = 20;  /* new data every 20 ms (longer than the
                                 interrupt service path, avoiding an
                                 interrupt storm) */
    while (sample_count < NSAMPLES) {
        while (!s_has_data) {
            vTaskDelay(1);
        }
        s_has_data = 0;
        unsigned int n = *SENSOR_DATA_REG;
#ifdef SENSOR_SYMBOLIC_CHECK
        CTE_assert(n <= MAX_SENSOR_VALUE);
#endif
        sensor_checksum += n;
        sample_count = sample_count + 1;
    }
    CTE_exit(0);
}

void worker_task(void *arg) {
    unsigned int x = 1;
    for (;;) {
        x = x * 1103515245 + 12345;
        worker_iters = worker_iters + 1;
        if ((x & 0x3ff) == 0) vTaskDelay(1);
        taskYIELD();
    }
}

int main(void) {
    xTaskCreate(sensor_task, "sensor", sensor_task_stack, 512, (void *)0, 2);
    xTaskCreate(worker_task, "worker", worker_task_stack, 512, (void *)0, 1);
    vTaskStartScheduler();
    return 0;
}
`

// FreeRTOSSensorProgram builds the RTOS-hosted sensor benchmark.
// symbolic selects the /s variant (symbolic sensor data + assertion);
// the concrete variant drives the sensor with pseudo-random data.
func FreeRTOSSensorProgram(symbolic bool, samples int) Program {
	periphSrcs, _ := SensorPeriph()
	clintSpec := PeriphSpec{Name: "clint", Base: CLINTBase, Size: PeriphSize, TransportSym: "clint_transport", BufSym: "clint_buf"}
	specs := []PeriphSpec{
		{Name: "sensor", Base: SensorBase, Size: PeriphSize, TransportSym: "sensor_transport", BufSym: "sensor_buf"},
		{Name: "plic", Base: PLICBase, Size: PeriphSize, TransportSym: "plic_transport", BufSym: "plic_buf"},
		clintSpec,
	}
	defines := map[string]string{}
	if samples > 0 {
		defines["NSAMPLES"] = itoa(samples)
	}
	if symbolic {
		defines["SENSOR_SYMBOLIC_CHECK"] = "1"
	} else {
		defines["SENSOR_CONCRETE"] = "1"
	}
	srcs := append([]Source{}, RTOSSources()...)
	srcs = append(srcs, periphSrcs...)
	srcs = append(srcs, C("clint.c", clintModel))
	srcs = append(srcs, C("app.c", mrtosHeader+freertosSensorApp))
	return Program{
		Name:        "freertos-sensor",
		Sources:     srcs,
		Peripherals: specs,
		Defines:     defines,
		MaxInstr:    50_000_000,
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
