package guest

import (
	"fmt"
	"strconv"
	"strings"
)

// ProgramOpts carries the build knobs shared by cmd/cte and campaign
// workers: the same options must resolve to the same binary on every
// machine, so a coordinator's program spec is portable.
type ProgramOpts struct {
	// Fix is a comma-separated list of seeded bug numbers to compile
	// out (1-6 for tcpip, 7-9 for tcpip-session).
	Fix string
	// PktMax caps the symbolic packet length for single-packet guests
	// (0 = program default). For tcpip-session it is the uniform
	// per-packet cap when PktCaps is empty.
	PktMax int
	// Pkts is the session depth in packets for stateful guests
	// (0 = program default).
	Pkts int
	// PktCaps holds per-packet symbolic size caps for stateful guests;
	// the last entry repeats for deeper packets.
	PktCaps []int
}

// ProgramFor resolves a program name — the -prog vocabulary of cmd/cte,
// shared verbatim by campaign workers — to a buildable Program.
// Unknown names and malformed fix entries are errors.
func ProgramFor(name string, opts ProgramOpts) (Program, error) {
	switch name {
	case "sensor":
		return SensorProgram(false), nil
	case "sensor-fixed":
		return SensorProgram(true), nil
	case "tcpip":
		fixed, err := ParseFixList(opts.Fix, 1, 6)
		if err != nil {
			return Program{}, err
		}
		return TCPIPProgram(fixed, opts.PktMax), nil
	case "tcpip-session":
		fixed, err := ParseFixList(opts.Fix, 7, 9)
		if err != nil {
			return Program{}, err
		}
		caps := opts.PktCaps
		if len(caps) == 0 && opts.PktMax > 0 {
			caps = []int{opts.PktMax}
		}
		return TCPIPSessionProgram(fixed, caps, opts.Pkts), nil
	case "freertos-sensor":
		return FreeRTOSSensorProgram(true, 2), nil
	default:
		if p, ok := BenchProgram(name); ok {
			return p, nil
		}
		return Program{}, fmt.Errorf("unknown program %q", name)
	}
}

// ParseFixList parses a comma-separated list of seeded bug numbers
// ("2,5") into the fixed-bug bitmask the tcpip and tcpip-session
// builders take. Entries outside [lo, hi] — the guest's own bug
// numbering — are errors. The empty string is an empty mask.
func ParseFixList(fixList string, lo, hi int) (uint, error) {
	var fixed uint
	if fixList == "" {
		return 0, nil
	}
	for _, s := range strings.Split(fixList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < lo || n > hi {
			return 0, fmt.Errorf("bad -fix entry %q", s)
		}
		fixed |= 1 << (n - 1)
	}
	return fixed, nil
}
