package guest

import (
	"fmt"
	"strconv"
	"strings"
)

// ProgramFor resolves a program name — the -prog vocabulary of cmd/cte,
// shared verbatim by campaign workers so a coordinator's program spec
// means the same binary on every machine — to a buildable Program.
//
// fixList is a comma-separated list of Table-2 bug numbers (1–6) to
// compile out, meaningful only for "tcpip"; pktMax caps the symbolic
// packet length (0 = program default). Unknown names and malformed fix
// entries are errors.
func ProgramFor(name, fixList string, pktMax int) (Program, error) {
	switch name {
	case "sensor":
		return SensorProgram(false), nil
	case "sensor-fixed":
		return SensorProgram(true), nil
	case "tcpip":
		fixed, err := ParseFixList(fixList)
		if err != nil {
			return Program{}, err
		}
		return TCPIPProgram(fixed, pktMax), nil
	case "freertos-sensor":
		return FreeRTOSSensorProgram(true, 2), nil
	default:
		if p, ok := BenchProgram(name); ok {
			return p, nil
		}
		return Program{}, fmt.Errorf("unknown program %q", name)
	}
}

// ParseFixList parses a comma-separated list of tcpip bug numbers
// ("2,5") into the fixed-bug bitmask TCPIPProgram takes. The empty
// string is an empty mask.
func ParseFixList(fixList string) (uint, error) {
	var fixed uint
	if fixList == "" {
		return 0, nil
	}
	for _, s := range strings.Split(fixList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 || n > 6 {
			return 0, fmt.Errorf("bad -fix entry %q", s)
		}
		fixed |= 1 << (n - 1)
	}
	return fixed, nil
}
