// Package guest builds RISC-V guest programs: mini-C and assembly
// sources are compiled (internal/cc), assembled (internal/asm), linked
// into an ELF (internal/relf) and loaded into a concolic VP
// (internal/iss) with peripherals bound by ELF symbol name, mirroring the
// paper's flow of compiling the software under test together with the
// CTE SW-library into a combined RISC-V ELF (§3.1.1).
package guest

// crt0 is the program entry: the ISS initializes sp; crt0 calls main and
// exits with its return value.
const crt0 = `
.text
.align 2
.globl _start
_start:
	call main
	li a7, 0
	ecall
`

// cteLib is the CTE-interface SW-library (paper Fig. 1): thin ecall
// wrappers. Argument registers a0..a2 already hold the C arguments; a7
// selects the interface function.
const cteLib = `
.text
.align 2
.globl CTE_exit
CTE_exit:
	li a7, 0
	ecall
	ret

.globl CTE_make_symbolic
CTE_make_symbolic:
	li a7, 1
	ecall
	ret

.globl CTE_assume
CTE_assume:
	li a7, 2
	ecall
	ret

.globl CTE_assert
CTE_assert:
	li a7, 3
	ecall
	ret

.globl CTE_notify
CTE_notify:
	li a7, 4
	ecall
	ret

.globl CTE_return
CTE_return:
	li a7, 5
	ecall
	ret

.globl CTE_get_cycles
CTE_get_cycles:
	li a7, 6
	ecall
	ret

.globl CTE_trigger_irq
CTE_trigger_irq:
	li a7, 7
	ecall
	ret

.globl CTE_register_protected_memory
CTE_register_protected_memory:
	li a7, 8
	ecall
	ret

.globl CTE_free_protected_memory
CTE_free_protected_memory:
	li a7, 9
	ecall
	ret

.globl cte_putchar
cte_putchar:
	li a7, 10
	ecall
	ret

.globl CTE_cancel_notify
CTE_cancel_notify:
	li a7, 11
	ecall
	ret

.globl CTE_is_symbolic
CTE_is_symbolic:
	li a7, 12
	ecall
	ret

.globl CTE_canary_arm
CTE_canary_arm:
	li a7, 13
	ecall
	ret

.globl CTE_canary_disarm
CTE_canary_disarm:
	li a7, 14
	ecall
	ret

# Trap entry: saves caller-saved registers, calls the C-level handler
# (trap_handler), restores and mret. Installed by runtime_init.
.globl __trap_entry
.align 2
__trap_entry:
	addi sp, sp, -64
	sw ra, 0(sp)
	sw t0, 4(sp)
	sw t1, 8(sp)
	sw t2, 12(sp)
	sw a0, 16(sp)
	sw a1, 20(sp)
	sw a2, 24(sp)
	sw a3, 28(sp)
	sw a4, 32(sp)
	sw a5, 36(sp)
	sw a6, 40(sp)
	sw a7, 44(sp)
	sw t3, 48(sp)
	sw t4, 52(sp)
	sw t5, 56(sp)
	sw t6, 60(sp)
	csrr a0, mcause
	call trap_handler
	lw ra, 0(sp)
	lw t0, 4(sp)
	lw t1, 8(sp)
	lw t2, 12(sp)
	lw a0, 16(sp)
	lw a1, 20(sp)
	lw a2, 24(sp)
	lw a3, 28(sp)
	lw a4, 32(sp)
	lw a5, 36(sp)
	lw a6, 40(sp)
	lw a7, 44(sp)
	lw t3, 48(sp)
	lw t4, 52(sp)
	lw t5, 56(sp)
	lw t6, 60(sp)
	addi sp, sp, 64
	mret

.globl __install_trap_entry
__install_trap_entry:
	la t0, __trap_entry
	csrw mtvec, t0
	ret

.globl __enable_mie
__enable_mie:
	csrrsi zero, mstatus, 8
	ret

.globl __disable_mie
__disable_mie:
	csrrci zero, mstatus, 8
	ret

.globl __set_mie_mask
__set_mie_mask:
	csrw mie, a0
	ret

.globl __wfi
__wfi:
	wfi
	ret

# Dedicated stack for peripheral software models.
.bss
.align 4
__periph_stack:
	.space 4096
.globl __periph_stack_top
__periph_stack_top:
	.space 16
`

// libc is the runtime C library subset the guests rely on.
const libc = `
typedef unsigned int size_t;

void cte_putchar(int c);

void *memcpy(void *dst, const void *src, size_t n) {
    unsigned char *d = (unsigned char *)dst;
    const unsigned char *s = (const unsigned char *)src;
    // Word-wise fast path when both pointers are aligned.
    while (n >= 4 && (((unsigned int)d | (unsigned int)s) & 3) == 0) {
        *(unsigned int *)d = *(const unsigned int *)s;
        d += 4; s += 4; n -= 4;
    }
    while (n > 0) { *d = *s; d++; s++; n--; }
    return dst;
}

void *memmove(void *dst, const void *src, size_t n) {
    unsigned char *d = (unsigned char *)dst;
    const unsigned char *s = (const unsigned char *)src;
    if (d < s) {
        while (n > 0) { *d = *s; d++; s++; n--; }
    } else if (d > s) {
        d += n; s += n;
        while (n > 0) { d--; s--; *d = *s; n--; }
    }
    return dst;
}

void *memset(void *dst, int v, size_t n) {
    unsigned char *d = (unsigned char *)dst;
    unsigned char b = (unsigned char)v;
    unsigned int word = (unsigned int)b;
    word |= word << 8;
    word |= word << 16;
    while (n >= 4 && ((unsigned int)d & 3) == 0) {
        *(unsigned int *)d = word;
        d += 4; n -= 4;
    }
    while (n > 0) { *d = b; d++; n--; }
    return dst;
}

int memcmp(const void *a, const void *b, size_t n) {
    const unsigned char *pa = (const unsigned char *)a;
    const unsigned char *pb = (const unsigned char *)b;
    while (n > 0) {
        if (*pa != *pb) return (int)*pa - (int)*pb;
        pa++; pb++; n--;
    }
    return 0;
}

size_t strlen(const char *s) {
    size_t n = 0;
    while (s[n]) n++;
    return n;
}

int strcmp(const char *a, const char *b) {
    while (*a && *a == *b) { a++; b++; }
    return (int)*a - (int)*b;
}

int strncmp(const char *a, const char *b, size_t n) {
    while (n > 0 && *a && *a == *b) { a++; b++; n--; }
    if (n == 0) return 0;
    return (int)*a - (int)*b;
}

char *strcpy(char *dst, const char *src) {
    char *d = dst;
    while ((*d = *src) != 0) { d++; src++; }
    return dst;
}

void puts_(const char *s) {
    while (*s) { cte_putchar((int)*s); s++; }
    cte_putchar('\n');
}

void print_str(const char *s) {
    while (*s) { cte_putchar((int)*s); s++; }
}

void print_u32(unsigned int v) {
    char buf[12];
    int i = 0;
    if (v == 0) { cte_putchar('0'); return; }
    while (v > 0) { buf[i] = (char)('0' + v % 10); v /= 10; i++; }
    while (i > 0) { i--; cte_putchar((int)buf[i]); }
}

void print_hex(unsigned int v) {
    int i;
    print_str("0x");
    for (i = 28; i >= 0; i -= 4) {
        unsigned int d = (v >> (unsigned int)i) & 0xf;
        if (d < 10) cte_putchar((int)('0' + d));
        else cte_putchar((int)('a' + d - 10));
    }
}

/* First-fit free-list allocator over a static heap. */
#define HEAP_SIZE 262144
static unsigned char heap_area[HEAP_SIZE];
typedef struct blockhdr { size_t size; struct blockhdr *next; int used; } blockhdr_t;
static blockhdr_t *heap_head = 0;

static void heap_init(void) {
    heap_head = (blockhdr_t *)heap_area;
    heap_head->size = HEAP_SIZE - sizeof(blockhdr_t);
    heap_head->next = 0;
    heap_head->used = 0;
}

void *malloc(size_t n) {
    if (heap_head == 0) heap_init();
    n = (n + 7u) & ~7u;
    blockhdr_t *b = heap_head;
    while (b) {
        if (!b->used && b->size >= n) {
            if (b->size >= n + sizeof(blockhdr_t) + 8) {
                blockhdr_t *rest = (blockhdr_t *)((unsigned char *)b + sizeof(blockhdr_t) + n);
                rest->size = b->size - n - sizeof(blockhdr_t);
                rest->next = b->next;
                rest->used = 0;
                b->next = rest;
                b->size = n;
            }
            b->used = 1;
            return (void *)((unsigned char *)b + sizeof(blockhdr_t));
        }
        b = b->next;
    }
    return 0;
}

void free(void *p) {
    if (p == 0) return;
    blockhdr_t *b = (blockhdr_t *)((unsigned char *)p - sizeof(blockhdr_t));
    b->used = 0;
    // Coalesce with the next block when free.
    if (b->next && !b->next->used) {
        b->size += b->next->size + sizeof(blockhdr_t);
        b->next = b->next->next;
    }
}
`
