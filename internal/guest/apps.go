package guest

// sensorApp is the paper's Fig. 3 example software: it installs an
// interrupt handler for the sensor IRQ, configures the sensor with a
// symbolic filter and a concrete scaler via memory-mapped I/O, waits for
// the data-ready interrupt and validates the received value.
const sensorApp = `
#ifndef MAX_SENSOR_VALUE
#define MAX_SENSOR_VALUE 64
#endif

unsigned int *SENSOR_SCALER_REG_ADDR = (unsigned int *)0x10000000;
unsigned int *SENSOR_FILTER_REG_ADDR = (unsigned int *)0x10000004;
unsigned int *SENSOR_DATA_REG_ADDR = (unsigned int *)0x10000008;

volatile unsigned int sensor_has_data = 0;

void sensor_irq_handler(void) {
    sensor_has_data = 1;
}

int main(void) {
    __install_trap_entry();
    __set_mie_mask(1 << 11);   /* MEIE */
    __enable_mie();
    register_interrupt_handler(2 /* IRQ_NUMBER */, sensor_irq_handler);

    unsigned int filter;
    CTE_make_symbolic(&filter, sizeof(filter), "f");
    *SENSOR_FILTER_REG_ADDR = filter;
    *SENSOR_SCALER_REG_ADDR = 50;

    while (!sensor_has_data) {   /* check for sensor */
        __wfi();                 /* wait for any irq */
    }

    unsigned int n = *SENSOR_DATA_REG_ADDR;
    CTE_assert(n <= MAX_SENSOR_VALUE);
    return 0;
}
`

// SensorProgram assembles the complete Fig. 2 + Fig. 3 system: the
// sensor application plus the sensor and PLIC software-model peripherals.
// When fixed is true the seeded filter bug (Fig. 2 line 45) is patched.
func SensorProgram(fixed bool) Program {
	srcs, specs := SensorPeriph()
	p := Program{
		Name:        "sensor-example",
		Sources:     append([]Source{C("app.c", sensorApp)}, srcs...),
		Peripherals: specs,
		MaxInstr:    5_000_000,
		Defines:     map[string]string{},
	}
	if fixed {
		p.Defines["SENSOR_BUG_FIXED"] = "1"
	}
	return p
}
