package fuzz

import (
	"encoding/binary"
	"sort"
)

// edgeBit is one covered edge in bucketized form: the edge-map index and
// the hit-count bucket bits the execution set there.
type edgeBit struct {
	Idx  uint32
	Bits uint8
}

// Entry is one corpus input together with its coverage accounting.
type Entry struct {
	ID   int
	Data []byte
	Sig  uint64    // signature of the bucketized edge set
	Cov  []edgeBit // sparse bucketized coverage of one execution
	// NewBits counts the virgin edge-map bits this entry set first —
	// the basis of its energy.
	NewBits int
	Picks   int    // times this entry has been selected for mutation
	Exec    uint64 // global exec index when the entry was added
	DetPos  int    // deterministic-stage cursor (-1 when exhausted)
	// Injected marks inputs fed back by the concolic assist; Bound is an
	// opaque generational tag they carry (the hybrid driver uses it to
	// skip already-flipped trace-condition sites on re-escalation);
	// Escalations counts how often the hybrid loop escalated this entry.
	Injected    bool
	Bound       int
	Escalations int
}

// energy weights corpus scheduling: entries that discovered more new
// edges, are shorter, and have been fuzzed less often get more picks
// (afl's perf_score, radically simplified).
func (e *Entry) energy() float64 {
	sc := 1.0 + float64(e.NewBits)
	sc /= 1.0 + float64(len(e.Data))/1024.0
	sc /= 1.0 + float64(e.Picks)/32.0
	if e.Injected {
		// Solver-derived inputs sit exactly on a new branch polarity;
		// mutating around them is how the hybrid loop exploits a solve.
		sc *= 2
	}
	return sc
}

// bucketLUT maps a raw edge hit count to its afl count-class bit.
var bucketLUT = func() (t [256]byte) {
	set := func(lo, hi int, v byte) {
		for i := lo; i <= hi; i++ {
			t[i] = v
		}
	}
	t[1] = 1
	t[2] = 2
	t[3] = 4
	set(4, 7, 8)
	set(8, 15, 16)
	set(16, 31, 32)
	set(32, 127, 64)
	set(128, 255, 128)
	return
}()

// bucketize converts a raw edge map into sparse bucketized coverage and
// its signature hash (FNV-1a over the (index, bucket) pairs).
func bucketize(edge []byte) ([]edgeBit, uint64) {
	var cov []edgeBit
	hash := uint64(0xcbf29ce484222325)
	var word [12]byte
	// Skip zero bytes eight at a time: the map is sparse (a few thousand
	// edges in a 64 KiB map) and this scan runs once per execution.
	for i := 0; i < len(edge); i += 8 {
		if binary.LittleEndian.Uint64(edge[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if edge[j] == 0 {
				continue
			}
			b := bucketLUT[edge[j]]
			cov = append(cov, edgeBit{Idx: uint32(j), Bits: b})
			binary.LittleEndian.PutUint32(word[:4], uint32(j))
			word[4] = b
			for _, c := range word[:5] {
				hash ^= uint64(c)
				hash *= 0x100000001b3
			}
		}
	}
	return cov, hash
}

// virginMerge ORs cov into the virgin map and returns how many
// previously-unseen bits it set (0 = nothing new).
func virginMerge(virgin []byte, cov []edgeBit) int {
	n := 0
	for _, eb := range cov {
		if newBits := eb.Bits &^ virgin[eb.Idx]; newBits != 0 {
			virgin[eb.Idx] |= newBits
			n += popcount8(newBits)
		}
	}
	return n
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// minimizeCorpus implements afl-cmin's greedy reduction: for every
// covered edge bit keep the smallest entry touching it, then drop every
// entry that is nobody's best. Returns the retained entries (order
// preserved) — the caller swaps its corpus for the result.
func minimizeCorpus(entries []*Entry) []*Entry {
	type bitKey struct {
		idx uint32
		bit uint8
	}
	best := make(map[bitKey]*Entry)
	for _, e := range entries {
		for _, eb := range e.Cov {
			for bits := eb.Bits; bits != 0; bits &= bits - 1 {
				k := bitKey{eb.Idx, bits & -bits}
				cur, ok := best[k]
				if !ok || len(e.Data) < len(cur.Data) ||
					(len(e.Data) == len(cur.Data) && e.ID < cur.ID) {
					best[k] = e
				}
			}
		}
	}
	keep := make(map[int]bool, len(best))
	for _, e := range best {
		keep[e.ID] = true
	}
	var out []*Entry
	for _, e := range entries {
		// Never drop an entry whose deterministic stage is still running:
		// its remaining mutations are paid-for future coverage.
		if keep[e.ID] || e.DetPos >= 0 {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
