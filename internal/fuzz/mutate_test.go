package fuzz

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDetMutateSchedule walks the full deterministic schedule for a
// short input: every position yields a same-length output, the original
// is never aliased, and at least one byte differs from the base.
func TestDetMutateSchedule(t *testing.T) {
	data := []byte{10, 20, 30, 40, 50, 60, 70, 80}
	orig := append([]byte(nil), data...)
	n := detCount(len(data))
	if n <= 0 {
		t.Fatal("empty deterministic schedule")
	}
	seen := map[string]bool{}
	for pos := 0; pos < n; pos++ {
		out := detMutate(data, pos, 64)
		if len(out) != len(data) {
			t.Fatalf("pos %d: length changed %d -> %d", pos, len(data), len(out))
		}
		if bytes.Equal(out, data) {
			t.Errorf("pos %d: mutation is identity", pos)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("pos %d: input slice mutated in place", pos)
		}
		seen[string(out)] = true
	}
	// Walking bit flips alone guarantee 8*len distinct outputs.
	if len(seen) < 8*len(data) {
		t.Errorf("only %d distinct mutations over %d positions", len(seen), n)
	}
}

// TestDetMutateRespectsDetLen: positions are counted against the detLen
// prefix only; bytes past it stay untouched.
func TestDetMutateRespectsDetLen(t *testing.T) {
	data := make([]byte, 32)
	const detLen = 4
	for pos := 0; pos < detCount(detLen); pos++ {
		out := detMutate(data, pos, detLen)
		for i := detLen + 1; i < len(out); i++ {
			if out[i] != 0 {
				t.Fatalf("pos %d touched byte %d beyond detLen", pos, i)
			}
		}
	}
}

// TestHavocBounds: havoc output never exceeds maxLen and never mutates
// its input in place.
func TestHavocBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]byte(nil), data...)
	for i := 0; i < 5000; i++ {
		out := havoc(rng, data, 16)
		if len(out) > 16 {
			t.Fatalf("iter %d: havoc grew to %d > 16", i, len(out))
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("iter %d: havoc mutated input in place", i)
		}
	}
	// Empty inputs must still produce something to execute.
	if out := havoc(rng, nil, 16); len(out) == 0 {
		t.Error("havoc of empty input produced empty output")
	}
}

// TestSpliceBounds: splice respects maxLen and handles empty operands.
func TestSpliceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := bytes.Repeat([]byte{0xaa}, 12)
	b := bytes.Repeat([]byte{0xbb}, 12)
	for i := 0; i < 2000; i++ {
		if out := splice(rng, a, b, 16); len(out) > 16 {
			t.Fatalf("iter %d: splice grew to %d > 16", i, len(out))
		}
	}
	if out := splice(rng, nil, b, 16); len(out) > 16 {
		t.Fatal("splice with empty a overflowed")
	}
}

// TestMutatorDeterminism: identical seeds produce identical mutation
// streams — the basis of reproducible fuzzing runs.
func TestMutatorDeterminism(t *testing.T) {
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	data := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	for i := 0; i < 1000; i++ {
		if !bytes.Equal(havoc(r1, data, 32), havoc(r2, data, 32)) {
			t.Fatalf("iter %d: havoc diverged for equal seeds", i)
		}
	}
}
