package fuzz

import (
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

const ramBase = 0x80000000
const ramSize = 1 << 20

// gateGuest hides an assertion failure behind a two-byte gate
// (buf[0]==0x80 && buf[1]==0xff). Both values sit in the fuzzer's
// interesting-8 table, so the deterministic stages climb the gate one
// coverage step at a time — the canonical coverage-guided story.
const gateGuest = `
_start:
	la a0, buf
	li a1, 4
	la a2, name
	li a7, 1
	ecall            # make_symbolic(buf, 4, "x")
	la a3, buf
	lbu t0, 0(a3)
	li t1, 0x80
	bne t0, t1, out
	lbu t0, 1(a3)
	li t1, 0xff
	bne t0, t1, out
	li a0, 0
	li a7, 3
	ecall            # CTE_assert(0): the planted bug
out:
	lbu a0, 2(a3)
	andi a0, a0, 3
	li a7, 0
	ecall
.data
buf: .space 4
name: .asciz "x"
`

func gateSnapshot(t *testing.T) *iss.Core {
	t.Helper()
	img, err := asm.Assemble(gateGuest, ramBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := iss.New(smt.NewBuilder(), iss.Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 100000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	return c
}

// TestFuzzerFindsGatedBug: starting from an empty seed, the
// deterministic interesting-value stages discover both gate bytes and
// the planted assertion failure within a small batch.
func TestFuzzerFindsGatedBug(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 1, Workers: 1})
	f.RunBatch(4000)
	st := f.Stats()
	if st.Execs != 4000 {
		t.Errorf("execs %d want 4000", st.Execs)
	}
	if st.MaxDemand != 4 {
		t.Errorf("demand %d want 4", st.MaxDemand)
	}
	if st.CorpusSize < 3 {
		t.Errorf("corpus %d want >=3 (baseline + two gate steps)", st.CorpusSize)
	}
	fs := f.Findings()
	if len(fs) != 1 {
		t.Fatalf("findings %d want exactly 1 (deduplicated)", len(fs))
	}
	if fs[0].Err.Kind != iss.ErrAssertFail {
		t.Errorf("finding kind %v want assertion failure", fs[0].Err.Kind)
	}
	if len(fs[0].Data) < 2 || fs[0].Data[0] != 0x80 || fs[0].Data[1] != 0xff {
		t.Errorf("finding input %x does not pass the gate", fs[0].Data)
	}
}

// TestFuzzerDeterministic: identical seeds at Workers=1 replay the exact
// same campaign.
func TestFuzzerDeterministic(t *testing.T) {
	run := func() (Stats, []Finding, []*Entry) {
		f := New(gateSnapshot(t), Options{Seed: 7, Workers: 1})
		f.RunBatch(1500)
		return f.Stats(), f.Findings(), f.Corpus()
	}
	s1, f1, c1 := run()
	s2, f2, c2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("finding counts diverged: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Exec != f2[i].Exec || string(f1[i].Data) != string(f2[i].Data) {
			t.Errorf("finding %d diverged", i)
		}
	}
	if len(c1) != len(c2) {
		t.Fatalf("corpus sizes diverged: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].Sig != c2[i].Sig || string(c1[i].Data) != string(c2[i].Data) {
			t.Errorf("corpus entry %d diverged", i)
		}
	}
}

// TestFuzzerInject: an injected (solver-derived) input runs next, its
// coverage joins the corpus as an injected entry, and any bug it
// triggers is recorded.
func TestFuzzerInject(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 3, Workers: 1})
	f.RunBatch(1) // empty seed establishes the baseline
	f.Inject([]byte{0x80, 0xff, 0, 0}, 0)
	f.RunBatch(1)
	fs := f.Findings()
	if len(fs) != 1 {
		t.Fatalf("findings %d want 1 after injection", len(fs))
	}
	injected := false
	for _, e := range f.Corpus() {
		if e.Injected {
			injected = true
		}
	}
	if !injected {
		t.Error("injected input with new coverage not marked in corpus")
	}
	if st := f.Stats(); st.Injected != 1 {
		t.Errorf("injected counter %d want 1", st.Injected)
	}
}

// TestFuzzerStallSignal: SinceNewCover grows while coverage is flat.
func TestFuzzerStallSignal(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 11, Workers: 1})
	f.RunBatch(4000) // long enough to saturate this tiny guest
	f.RunBatch(200)
	if got := f.SinceNewCover(); got < 200 {
		t.Errorf("stall signal %d; want >=200 once coverage saturates", got)
	}
}

// TestFuzzerParallel: a multi-worker campaign on a shared snapshot finds
// the same bug (exercised under -race in the verify target).
func TestFuzzerParallel(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 5, Workers: 4})
	f.RunBatch(4000)
	if st := f.Stats(); st.Execs != 4000 {
		t.Errorf("execs %d want 4000", st.Execs)
	}
	if fs := f.Findings(); len(fs) != 1 {
		t.Errorf("findings %d want 1", len(fs))
	}
}

// TestFuzzerMinimize: after saturation, minimization keeps a covering
// subset and never grows the corpus.
func TestFuzzerMinimize(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 13, Workers: 1})
	f.RunBatch(3000)
	before, after := f.Minimize()
	if after > before {
		t.Errorf("minimize grew corpus: %d -> %d", before, after)
	}
	if after == 0 {
		t.Error("minimize emptied the corpus")
	}
}
