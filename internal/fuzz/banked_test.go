package fuzz

import (
	"testing"

	"rvcte/internal/iss"
)

// TestStateBankedMapSizing: Options.States splits the virgin map into
// next-pow2 protocol-state banks, each of the configured MapBits size.
func TestStateBankedMapSizing(t *testing.T) {
	for _, tc := range []struct{ states, banks int }{
		{0, 1}, {1, 1}, {3, 4}, {4, 4},
	} {
		f := New(gateSnapshot(t), Options{Seed: 1, MapBits: 10, States: tc.states})
		if want := tc.banks << 10; len(f.virgin) != want {
			t.Errorf("States=%d: virgin map %d bytes want %d", tc.states, len(f.virgin), want)
		}
	}
}

// TestEdgeCoveredAcrossBanks: EdgeCovered answers "covered in ANY
// protocol-state bank" — the campaign dedup question. An edge recorded
// only in a non-zero bank must still count as covered, and bank
// boundaries must not alias distinct edges.
func TestEdgeCoveredAcrossBanks(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 1, MapBits: 10, States: 4})
	bankLen := len(f.virgin) / iss.EdgeBanks(4)
	from, to := uint32(0x80000004), uint32(0x80000010)
	idx := int(iss.EdgeIndex(from, to, bankLen))
	if f.EdgeCovered(from, to) {
		t.Fatal("fresh map must report uncovered")
	}
	// Record the edge in bank 2 only (a non-LISTEN protocol state).
	f.virgin[2*bankLen+idx] = 1
	if !f.EdgeCovered(from, to) {
		t.Fatal("edge covered in bank 2 not seen by EdgeCovered")
	}
	for b := 0; b < 4; b++ {
		if b != 2 && f.virgin[b*bankLen+idx] != 0 {
			t.Fatalf("bank %d dirtied by bank-2 write", b)
		}
	}
}

// TestBankedFuzzStillFindsGatedBug: state banking is transparent when
// the guest never writes a protocol-state byte — the gated-bug story of
// TestFuzzerFindsGatedBug must replay identically on a 4-bank map.
func TestBankedFuzzStillFindsGatedBug(t *testing.T) {
	f := New(gateSnapshot(t), Options{Seed: 1, Workers: 1, States: 4})
	f.RunBatch(4000)
	if fs := f.Findings(); len(fs) != 1 {
		t.Fatalf("findings %d want exactly 1", len(fs))
	}
	if st := f.Stats(); st.CorpusSize < 3 {
		t.Errorf("corpus %d want >=3", st.CorpusSize)
	}
}
