package fuzz

import "testing"

// TestBucketize: raw hit counts map to afl count classes, zero bytes are
// skipped, and the signature is order- and content-sensitive.
func TestBucketize(t *testing.T) {
	edge := make([]byte, 64)
	edge[3] = 1    // bucket 1
	edge[10] = 3   // bucket 4
	edge[17] = 9   // bucket 16
	edge[40] = 200 // bucket 128
	cov, sig := bucketize(edge)
	want := []edgeBit{{3, 1}, {10, 4}, {17, 16}, {40, 128}}
	if len(cov) != len(want) {
		t.Fatalf("cov length %d want %d", len(cov), len(want))
	}
	for i, eb := range cov {
		if eb != want[i] {
			t.Errorf("cov[%d] = %+v want %+v", i, eb, want[i])
		}
	}
	_, sig2 := bucketize(edge)
	if sig != sig2 {
		t.Error("signature not deterministic")
	}
	edge[3] = 2 // different bucket, same edges
	if _, sig3 := bucketize(edge); sig3 == sig {
		t.Error("bucket change did not change signature")
	}
}

// TestVirginMerge: new bits are counted once; re-merging the same
// coverage yields zero.
func TestVirginMerge(t *testing.T) {
	virgin := make([]byte, 64)
	cov := []edgeBit{{1, 1}, {2, 4}, {3, 128}}
	if n := virginMerge(virgin, cov); n != 3 {
		t.Errorf("first merge counted %d bits want 3", n)
	}
	if n := virginMerge(virgin, cov); n != 0 {
		t.Errorf("re-merge counted %d bits want 0", n)
	}
	// A deeper bucket on a known edge is still new information.
	if n := virginMerge(virgin, []edgeBit{{1, 2}}); n != 1 {
		t.Errorf("new bucket on known edge counted %d want 1", n)
	}
}

// TestMinimizeCorpus: the smallest entry covering each edge bit is kept,
// fully-subsumed larger entries are dropped, and entries still in their
// deterministic stage survive.
func TestMinimizeCorpus(t *testing.T) {
	small := &Entry{ID: 0, Data: []byte{1}, DetPos: -1,
		Cov: []edgeBit{{1, 1}, {2, 1}}}
	big := &Entry{ID: 1, Data: []byte{1, 2, 3, 4}, DetPos: -1,
		Cov: []edgeBit{{1, 1}, {2, 1}}} // subsumed by small
	unique := &Entry{ID: 2, Data: []byte{1, 2, 3, 4, 5}, DetPos: -1,
		Cov: []edgeBit{{9, 1}}}
	pending := &Entry{ID: 3, Data: []byte{7, 7, 7, 7, 7, 7}, DetPos: 5,
		Cov: []edgeBit{{1, 1}}} // subsumed, but det stage still running

	out := minimizeCorpus([]*Entry{small, big, unique, pending})
	got := map[int]bool{}
	for _, e := range out {
		got[e.ID] = true
	}
	if !got[0] || got[1] || !got[2] || !got[3] {
		t.Errorf("kept %v; want {0,2,3}", got)
	}
}

// TestEnergyOrdering: more new coverage, shorter data, and fewer picks
// all increase energy; injected entries get a boost.
func TestEnergyOrdering(t *testing.T) {
	base := Entry{Data: make([]byte, 64), NewBits: 4}
	richer := base
	richer.NewBits = 16
	if richer.energy() <= base.energy() {
		t.Error("more new bits should mean more energy")
	}
	tired := base
	tired.Picks = 1000
	if tired.energy() >= base.energy() {
		t.Error("heavily-picked entries should decay")
	}
	injected := base
	injected.Injected = true
	if injected.energy() <= base.energy() {
		t.Error("solver-derived entries should be prioritized")
	}
}
