package fuzz

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMergeInputsDedup(t *testing.T) {
	a, b, c := []byte("aa"), []byte("bb"), []byte("cc")
	dst := [][]byte{a, b}
	out, n := MergeInputs(dst, [][]byte{b, c, c, a})
	if n != 1 || len(out) != 3 {
		t.Fatalf("merged %d into %d entries, want 1 new of 3 total", n, len(out))
	}
	if !bytes.Equal(out[2], c) {
		t.Errorf("admission order broken: %q", out[2])
	}
	if _, n := MergeInputs(out, [][]byte{a, b, c}); n != 0 {
		t.Errorf("re-merge must be a no-op, admitted %d", n)
	}
}

func TestCorpusDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	// Missing directory reads as empty (first-run warm start).
	if seeds, err := LoadDir(dir); err != nil || len(seeds) != 0 {
		t.Fatalf("missing dir: seeds=%v err=%v", seeds, err)
	}
	corpus := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	if err := SaveDir(dir, corpus); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-save, including overlap with new material.
	if err := SaveDir(dir, append(corpus, []byte("four"))); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 {
		t.Fatalf("loaded %d inputs want 4", len(loaded))
	}
	merged, n := MergeInputs(nil, loaded)
	if n != 4 || len(merged) != 4 {
		t.Errorf("saved corpus carries duplicates: %d unique of %d", n, len(loaded))
	}
}
