package fuzz

import (
	"encoding/binary"
	"math/rand"
)

// AFL's "interesting" constants: boundary values that flip comparison
// outcomes far more often than uniform random bytes.
var (
	interesting8  = []uint8{0x80, 0xff, 0, 1, 16, 32, 64, 100, 127}
	interesting16 = []uint16{0x8000, 0xff7f, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 0xffff}
	interesting32 = []uint32{0x80000000, 0xfa0000fa, 32768, 65535, 65536, 100663045, 0x7fffffff}
)

// detStages describes the deterministic mutation schedule applied to the
// first detLen bytes of a fresh corpus entry: walking bit flips, byte
// sets to interesting values, and byte-level arithmetic — the classic
// afl deterministic stages, bounded so one entry cannot monopolize the
// fuzzer (DetBytes in Options).
const (
	detArithMax = 16 // +/- 1..detArithMax
)

// detCount returns the number of deterministic mutations for a prefix of
// l bytes.
func detCount(l int) int {
	if l <= 0 {
		return 0
	}
	// bit flips + interesting8 + arith(+/-) + 16-bit interesting (LE).
	n := 8*l + len(interesting8)*l + 2*detArithMax*l
	if l >= 2 {
		n += len(interesting16) * (l - 1)
	}
	return n
}

// detMutate returns the pos'th deterministic mutation of data (the first
// detLen bytes only). pos must be < detCount(min(len(data), detLen)).
func detMutate(data []byte, pos, detLen int) []byte {
	l := len(data)
	if l > detLen {
		l = detLen
	}
	out := append([]byte(nil), data...)
	// Stage 1: walking single-bit flips.
	if pos < 8*l {
		out[pos/8] ^= 1 << (pos % 8)
		return out
	}
	pos -= 8 * l
	// Stage 2: interesting byte values.
	if pos < len(interesting8)*l {
		out[pos/len(interesting8)] = interesting8[pos%len(interesting8)]
		return out
	}
	pos -= len(interesting8) * l
	// Stage 3: byte arithmetic +/- 1..detArithMax.
	if pos < 2*detArithMax*l {
		i := pos / (2 * detArithMax)
		d := pos % (2 * detArithMax)
		if d < detArithMax {
			out[i] += byte(d + 1)
		} else {
			out[i] -= byte(d - detArithMax + 1)
		}
		return out
	}
	pos -= 2 * detArithMax * l
	// Stage 4: interesting 16-bit values, little-endian.
	i := pos / len(interesting16)
	binary.LittleEndian.PutUint16(out[i:], interesting16[pos%len(interesting16)])
	return out
}

// havoc applies 1..64 random stacked mutations (bit flips, interesting
// values, arithmetic, block overwrite/insert/delete) and returns a new
// slice, never longer than maxLen.
func havoc(rng *rand.Rand, data []byte, maxLen int) []byte {
	out := append([]byte(nil), data...)
	n := 1 << (1 + rng.Intn(6)) // 2..64 stacked ops
	for i := 0; i < n; i++ {
		if len(out) == 0 {
			// Degenerate input: grow it so positional ops have a target.
			out = append(out, byte(rng.Intn(256)))
			continue
		}
		switch rng.Intn(12) {
		case 0: // flip one bit
			p := rng.Intn(len(out) * 8)
			out[p/8] ^= 1 << (p % 8)
		case 1: // interesting byte
			out[rng.Intn(len(out))] = interesting8[rng.Intn(len(interesting8))]
		case 2: // interesting 16-bit
			if len(out) >= 2 {
				p := rng.Intn(len(out) - 1)
				binary.LittleEndian.PutUint16(out[p:], interesting16[rng.Intn(len(interesting16))])
			}
		case 3: // interesting 32-bit
			if len(out) >= 4 {
				p := rng.Intn(len(out) - 3)
				binary.LittleEndian.PutUint32(out[p:], interesting32[rng.Intn(len(interesting32))])
			}
		case 4: // byte arithmetic
			out[rng.Intn(len(out))] += byte(1 + rng.Intn(detArithMax))
		case 5:
			out[rng.Intn(len(out))] -= byte(1 + rng.Intn(detArithMax))
		case 6: // random byte
			out[rng.Intn(len(out))] = byte(rng.Intn(256))
		case 7: // 16-bit arithmetic
			if len(out) >= 2 {
				p := rng.Intn(len(out) - 1)
				v := binary.LittleEndian.Uint16(out[p:])
				v += uint16(1 + rng.Intn(detArithMax))
				binary.LittleEndian.PutUint16(out[p:], v)
			}
		case 8: // delete a block
			if len(out) > 1 {
				from := rng.Intn(len(out))
				l := 1 + rng.Intn(len(out)-from)
				out = append(out[:from], out[from+l:]...)
			}
		case 9: // duplicate a block
			if len(out) < maxLen {
				from := rng.Intn(len(out))
				l := 1 + rng.Intn(len(out)-from)
				if len(out)+l > maxLen {
					l = maxLen - len(out)
				}
				if l > 0 {
					at := rng.Intn(len(out) + 1)
					blk := append([]byte(nil), out[from:from+l]...)
					out = append(out[:at], append(blk, out[at:]...)...)
				}
			}
		case 10: // overwrite a block with a copy from elsewhere
			if len(out) >= 2 {
				from, to := rng.Intn(len(out)), rng.Intn(len(out))
				l := 1 + rng.Intn(len(out)-max(from, to))
				copy(out[to:to+l], out[from:from+l])
			}
		case 11: // set a block to one value
			from := rng.Intn(len(out))
			l := 1 + rng.Intn(len(out)-from)
			v := byte(rng.Intn(256))
			for j := from; j < from+l; j++ {
				out[j] = v
			}
		}
	}
	if len(out) > maxLen {
		out = out[:maxLen]
	}
	return out
}

// splice joins a random prefix of a with a random suffix of b (afl's
// splice stage), then havocs the result.
func splice(rng *rand.Rand, a, b []byte, maxLen int) []byte {
	if len(a) == 0 || len(b) == 0 {
		return havoc(rng, a, maxLen)
	}
	cutA := rng.Intn(len(a))
	cutB := rng.Intn(len(b))
	out := make([]byte, 0, cutA+len(b)-cutB)
	out = append(out, a[:cutA]...)
	out = append(out, b[cutB:]...)
	if len(out) > maxLen {
		out = out[:maxLen]
	}
	return havoc(rng, out, maxLen)
}
