package fuzz

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// Corpus persistence and cross-process merging. Inputs are identified
// by content hash, so a corpus directory shared between runs — or a
// coordinator merging corpus deltas from many campaign workers — stays
// duplicate-free without any coordination beyond the hash.

// InputID returns the content-hash identity of one corpus input (the
// persisted file stem and the coordinator's dedup key).
func InputID(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// MergeInputs appends every input from add that dst does not already
// contain (by content hash) and reports how many were new.
func MergeInputs(dst [][]byte, add [][]byte) ([][]byte, int) {
	seen := make(map[string]bool, len(dst))
	for _, d := range dst {
		seen[InputID(d)] = true
	}
	n := 0
	for _, d := range add {
		id := InputID(d)
		if seen[id] {
			continue
		}
		seen[id] = true
		dst = append(dst, d)
		n++
	}
	return dst, n
}

// LoadDir reads every regular file in dir (sorted by name, so runs are
// reproducible) as one seed input. A missing directory is an empty
// corpus: the first run creates it on save.
func LoadDir(dir string) ([][]byte, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var seeds [][]byte
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, data)
	}
	return seeds, nil
}

// SaveDir persists a corpus, one file per input named by content hash,
// so re-saving an unchanged or overlapping corpus is idempotent and
// concurrent savers converge on the same file set.
func SaveDir(dir string, corpus [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, data := range corpus {
		path := filepath.Join(dir, InputID(data)+".bin")
		if _, err := os.Stat(path); err == nil {
			continue
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
