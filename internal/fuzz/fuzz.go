// Package fuzz implements a coverage-guided mutational fuzzer over a
// frozen VP snapshot: the concrete-only fast path of the ISS executes
// mutated byte streams at native-ish speed, a hashed PC-pair edge bitmap
// classifies behaviours, and a corpus of coverage-distinct inputs drives
// an afl-style deterministic+havoc mutation schedule. The hybrid driver
// (internal/cte) escalates coverage-stalled entries to the concolic
// engine and injects solved inputs back through Inject.
//
// Each execution clones the frozen snapshot (copy-on-write memory) and
// runs on the ISS's predecoded basic-block cache: all clones share one
// decoded-block layer, so per-execution cost is mutation + dispatch,
// not re-decoding the guest. iss.bb.* counters expose the cache
// behaviour; fuzz.execs over wall time is the throughput headline
// (EXPERIMENTS.md "Block cache ablation").
package fuzz

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"rvcte/internal/iss"
	"rvcte/internal/obs"
)

// Options configures a Fuzzer.
type Options struct {
	Seed    int64 // PRNG seed; runs are reproducible for a fixed seed at Workers=1
	Workers int   // concurrent executors (default 1)
	// MaxInstrPerRun bounds one execution (0 = the snapshot's own
	// Cfg.MaxInstr); runs that exhaust it are not findings.
	MaxInstrPerRun uint64
	MapBits        int // log2 of the per-bank edge map size (default 16 → 64 KiB)
	// States is the number of protocol-state coverage banks (stateful
	// multi-packet guests; see iss.Core.ProtoStates). The edge map gets
	// one bank per state — rounded up to a power of two — so the same
	// edge reached in different protocol states counts as new coverage.
	// 0 or 1 keeps the single flat map.
	States int
	MaxLen int // mutation length cap (default 4096)
	// DetBytes bounds the deterministic stages to an input prefix so one
	// long entry cannot monopolize the schedule (default 64).
	DetBytes int
	// Seeds are initial inputs queued behind the built-in empty baseline
	// (e.g. a corpus directory loaded by the CLI). They run exactly as
	// given and join the corpus if they add coverage.
	Seeds [][]byte
	// Obs, when non-nil, wires the fuzzer into the shared observability
	// layer: "fuzz.*" counters/gauges mirror Stats live, and every clone
	// feeds the global "iss.instr"/"iss.execs" counters.
	Obs *obs.Obs
}

// Finding is one deduplicated crash/bug discovered by concrete execution.
type Finding struct {
	Err    *iss.SimError
	Data   []byte // the input stream that triggered it
	Exec   uint64 // global execution index of discovery
	Output []byte // guest console output of the failing run
	Instrs uint64
}

// Stats is a snapshot of fuzzer progress counters.
type Stats struct {
	Execs      uint64
	TotalInstr uint64
	CorpusSize int
	Edges      int // nonzero virgin-map entries
	Findings   int
	Injected   int    // solver-derived inputs fed back by the hybrid loop
	Pruned     uint64 // runs rejected by a concrete assume(false)
	MaxDemand  int    // largest observed input demand (bytes)
	// LastNewCover is the Execs value when coverage last grew; the
	// hybrid driver uses Execs-LastNewCover as its stall signal.
	LastNewCover uint64
}

type findingKey struct {
	kind iss.ErrKind
	pc   uint32
}

type queued struct {
	data     []byte
	injected bool
	bound    int
}

// workerState is the per-worker scratch: a private PRNG (seeded from
// Options.Seed and the worker index) and a reusable edge map.
type workerState struct {
	rng  *rand.Rand
	edge []byte
}

// Fuzzer owns the frozen snapshot, the corpus, and the virgin coverage
// map. All mutable state is guarded by mu; executions run outside the
// lock on cloned cores.
type Fuzzer struct {
	snap *iss.Core
	opt  Options
	ws   []*workerState

	mu        sync.Mutex
	virgin    []byte
	sigs      map[uint64]bool
	corpus    []*Entry
	nextID    int
	queue     []queued // unfuzzed inputs: seeds and solver injections, FIFO
	findings  []Finding
	seenBug   map[findingKey]bool
	stats     Stats
	maxDemand int

	// Observability mirrors (Options.Obs); nil-safe when unwired. The
	// mutex-guarded stats stay the source of truth, these feed the live
	// registry.
	obsExecs, obsPruned, obsFindings, obsInjected *obs.Counter
	issInstr, issExecs                            *obs.Counter
	bbHits, bbMisses, bbInval                     *obs.Counter
	obsCorpus, obsEdges                           *obs.Gauge
	edgeEntries                                   int // nonzero virgin entries (mirrors Stats.Edges)
}

// New freezes snap and builds a fuzzer around it. The queue starts with
// one empty input: the first execution discovers the input demand and
// the baseline coverage.
func New(snap *iss.Core, opt Options) *Fuzzer {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.MapBits <= 0 {
		opt.MapBits = 16
	}
	if opt.MaxLen <= 0 {
		opt.MaxLen = 4096
	}
	if opt.DetBytes <= 0 {
		opt.DetBytes = 64
	}
	snap.Freeze()
	mapLen := iss.EdgeBanks(opt.States) << opt.MapBits
	f := &Fuzzer{
		snap:    snap,
		opt:     opt,
		virgin:  make([]byte, mapLen),
		sigs:    make(map[uint64]bool),
		seenBug: make(map[findingKey]bool),
		queue:   []queued{{data: []byte{}}},
	}
	for _, s := range opt.Seeds {
		f.queue = append(f.queue, queued{data: append([]byte(nil), s...)})
	}
	for i := 0; i < opt.Workers; i++ {
		f.ws = append(f.ws, &workerState{
			rng:  rand.New(rand.NewSource(opt.Seed + int64(i)*0x9e3779b97f4a7c)),
			edge: make([]byte, mapLen),
		})
	}
	if m := opt.Obs.Registry(); m != nil {
		f.obsExecs = m.Counter("fuzz.execs")
		f.obsPruned = m.Counter("fuzz.pruned")
		f.obsFindings = m.Counter("fuzz.findings")
		f.obsInjected = m.Counter("fuzz.injected")
		f.issInstr = m.Counter("iss.instr")
		f.issExecs = m.Counter("iss.execs")
		f.bbHits = m.Counter("iss.bb.hits")
		f.bbMisses = m.Counter("iss.bb.misses")
		f.bbInval = m.Counter("iss.bb.inval")
		f.obsCorpus = m.Gauge("fuzz.corpus")
		f.obsEdges = m.Gauge("fuzz.edges")
	}
	return f
}

// RunBatch executes n fuzz iterations across the configured workers and
// returns when all have finished. At Workers=1 the schedule is fully
// deterministic for a fixed seed.
func (f *Fuzzer) RunBatch(n int) { f.RunBatchContext(context.Background(), n) }

// RunBatchContext is RunBatch honoring cancellation: workers check the
// context between executions, so the batch returns at most one
// execution per worker after ctx is done. The schedule at Workers=1 is
// unchanged for an uncancelled context.
func (f *Fuzzer) RunBatchContext(ctx context.Context, n int) {
	if f.opt.Workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			f.step(f.ws[0])
		}
		return
	}
	remaining := int64(n)
	var wg sync.WaitGroup
	for _, ws := range f.ws {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			for atomic.AddInt64(&remaining, -1) >= 0 && ctx.Err() == nil {
				f.step(ws)
			}
		}(ws)
	}
	wg.Wait()
}

// step runs one pick→mutate→execute→merge iteration.
func (f *Fuzzer) step(ws *workerState) {
	f.mu.Lock()
	q := f.pickLocked(ws.rng)
	f.mu.Unlock()
	data := q.data

	c := f.snap.Clone()
	c.ConcreteOnly = true
	c.FuzzInput = data
	c.ObsInstr = f.issInstr
	c.ObsExecs = f.issExecs
	c.ObsBBHits = f.bbHits
	c.ObsBBMisses = f.bbMisses
	c.ObsBBInval = f.bbInval
	clear(ws.edge)
	c.EdgeMap = ws.edge
	// The snapshot may carry pre-executed initialization (skip-init
	// optimization); count only this run's instructions.
	startInstr := c.InstrCount
	c.Run(f.opt.MaxInstrPerRun)

	f.mu.Lock()
	f.mergeLocked(q, c, c.InstrCount-startInstr, ws.edge)
	f.mu.Unlock()
}

// pickLocked selects the next input to execute: queued seeds/injections
// first (FIFO, run as-is so their exact coverage is recorded), then an
// energy-weighted corpus pick run through the deterministic schedule or
// havoc/splice.
func (f *Fuzzer) pickLocked(rng *rand.Rand) queued {
	if len(f.queue) > 0 {
		q := f.queue[0]
		f.queue = f.queue[1:]
		return q
	}
	if len(f.corpus) == 0 {
		// Coverage-dead snapshot (or all entries minimized away): keep
		// probing with short random inputs.
		out := make([]byte, 1+rng.Intn(16))
		for i := range out {
			out[i] = byte(rng.Intn(256))
		}
		return queued{data: out}
	}
	e := f.weightedPickLocked(rng)
	e.Picks++
	base := e.Data
	if len(base) < f.maxDemand {
		// Pad to the observed demand so mutations can reach every
		// consumed stream position (missing bytes read as zero anyway).
		base = append(append([]byte(nil), base...), make([]byte, f.maxDemand-len(base))...)
	}
	detLen := len(base)
	if detLen > f.opt.DetBytes {
		detLen = f.opt.DetBytes
	}
	if e.DetPos >= 0 && e.DetPos >= detCount(detLen) {
		e.DetPos = -1 // deterministic schedule exhausted
	}
	if e.DetPos >= 0 {
		out := detMutate(base, e.DetPos, f.opt.DetBytes)
		e.DetPos++
		return queued{data: out}
	}
	if len(f.corpus) > 1 && rng.Intn(4) == 0 {
		other := f.corpus[rng.Intn(len(f.corpus))]
		return queued{data: splice(rng, base, other.Data, f.opt.MaxLen)}
	}
	return queued{data: havoc(rng, base, f.opt.MaxLen)}
}

// weightedPickLocked draws a corpus entry proportionally to its energy.
func (f *Fuzzer) weightedPickLocked(rng *rand.Rand) *Entry {
	total := 0.0
	for _, e := range f.corpus {
		total += e.energy()
	}
	r := rng.Float64() * total
	for _, e := range f.corpus {
		r -= e.energy()
		if r <= 0 {
			return e
		}
	}
	return f.corpus[len(f.corpus)-1]
}

// mergeLocked folds one finished execution into the corpus, coverage,
// finding, and stats state.
func (f *Fuzzer) mergeLocked(q queued, c *iss.Core, instrs uint64, edge []byte) {
	data := q.data
	f.stats.Execs++
	f.stats.TotalInstr += instrs
	f.obsExecs.Inc()
	if c.FuzzPos > f.maxDemand {
		f.maxDemand = c.FuzzPos
	}

	if c.Err != nil {
		switch c.Err.Kind {
		case iss.ErrAssumeFail:
			f.stats.Pruned++
			f.obsPruned.Inc()
		case iss.ErrLimit:
			// Budget exhaustion is exploration noise, not a bug.
		default:
			k := findingKey{kind: c.Err.Kind, pc: c.Err.PC}
			if !f.seenBug[k] {
				f.seenBug[k] = true
				f.obsFindings.Inc()
				f.findings = append(f.findings, Finding{
					Err:    c.Err,
					Data:   append([]byte(nil), data...),
					Exec:   f.stats.Execs,
					Output: append([]byte(nil), c.Output...),
					Instrs: instrs,
				})
			}
		}
	}

	cov, sig := bucketize(edge)
	newBits := 0
	if !f.sigs[sig] {
		f.sigs[sig] = true
		// Count map entries about to transition 0 → nonzero so the
		// edge-count gauge stays incremental (Stats() still rescans).
		for _, eb := range cov {
			if f.virgin[eb.Idx] == 0 && eb.Bits != 0 {
				f.edgeEntries++
			}
		}
		newBits = virginMerge(f.virgin, cov)
		f.obsEdges.Set(int64(f.edgeEntries))
	}
	if newBits > 0 {
		f.stats.LastNewCover = f.stats.Execs
	}
	// Admission: fuzz-discovered inputs must pay their way with new
	// coverage; solver-derived inputs are kept unconditionally — they sit
	// on a freshly flipped branch, and the hybrid loop must be able to
	// escalate past them even when their edge set looks familiar
	// (otherwise every exploration chain dies at the first
	// coverage-neutral generation, which pure concolic search would have
	// continued through).
	if newBits == 0 && !q.injected {
		return
	}
	keep := data
	if c.FuzzPos < len(keep) {
		// Unconsumed tail bytes cannot influence behaviour — trim them so
		// the corpus and its mutation surface stay at the real demand.
		keep = keep[:c.FuzzPos]
	}
	f.corpus = append(f.corpus, &Entry{
		ID:       f.nextID,
		Data:     append([]byte(nil), keep...),
		Sig:      sig,
		Cov:      cov,
		NewBits:  newBits,
		Exec:     f.stats.Execs,
		Injected: q.injected,
		Bound:    q.bound,
	})
	f.nextID++
	f.obsCorpus.Set(int64(len(f.corpus)))
}

// Inject queues a solver-derived input for execution; the hybrid driver
// calls this with inputs solved from escalated entries. bound is an
// opaque generational tag returned with the entry by EscalationTarget
// (0 for plain seeds).
func (f *Fuzzer) Inject(data []byte, bound int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queue = append(f.queue, queued{data: append([]byte(nil), data...), injected: true, bound: bound})
	f.stats.Injected++
	f.obsInjected.Inc()
}

// EscalationTarget picks the corpus entry most deserving of concolic
// attention — fewest prior escalations, newest first (a freshly
// discovered path is exactly where unexplored branches live, so solved
// inputs chain into deeper escalations Driller-style) — marks it
// escalated, and returns a copy of its input together with its
// generational bound. ok is false when the corpus is empty.
func (f *Fuzzer) EscalationTarget() (data []byte, bound int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best *Entry
	for _, e := range f.corpus {
		if best == nil ||
			e.Escalations < best.Escalations ||
			(e.Escalations == best.Escalations && e.ID > best.ID) {
			best = e
		}
	}
	if best == nil {
		return nil, 0, false
	}
	best.Escalations++
	return append([]byte(nil), best.Data...), best.Bound, true
}

// EdgeCovered reports whether any execution this campaign has taken the
// control-flow edge from→to in ANY protocol-state bank (virgin-map
// granularity, so hash collisions can report false positives). The
// hybrid driver consults this before paying solver time for a branch
// flip whose target the fuzzer already reaches; checking all banks
// keeps that filter conservative — a flip is only "new" when no state
// has seen the edge.
func (f *Fuzzer) EdgeCovered(from, to uint32) bool {
	banks := iss.EdgeBanks(f.opt.States)
	bankLen := len(f.virgin) / banks
	idx := int(iss.EdgeIndex(from, to, bankLen))
	f.mu.Lock()
	defer f.mu.Unlock()
	for b := 0; b < banks; b++ {
		if f.virgin[b*bankLen+idx] != 0 {
			return true
		}
	}
	return false
}

// SinceNewCover reports executions elapsed since coverage last grew —
// the hybrid loop's stall signal.
func (f *Fuzzer) SinceNewCover() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.Execs - f.stats.LastNewCover
}

// MaxDemand reports the largest observed input demand in bytes.
func (f *Fuzzer) MaxDemand() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxDemand
}

// Corpus returns a snapshot of the current corpus entries (shared
// pointers; callers must treat them as read-only).
func (f *Fuzzer) Corpus() []*Entry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Entry(nil), f.corpus...)
}

// Minimize performs an afl-cmin-style reduction of the corpus and
// returns (before, after) sizes.
func (f *Fuzzer) Minimize() (before, after int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	before = len(f.corpus)
	f.corpus = minimizeCorpus(f.corpus)
	return before, len(f.corpus)
}

// Findings returns the deduplicated findings discovered so far, ordered
// by discovery.
func (f *Fuzzer) Findings() []Finding {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Finding(nil), f.findings...)
}

// Stats returns a snapshot of the progress counters.
func (f *Fuzzer) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.CorpusSize = len(f.corpus)
	s.Findings = len(f.findings)
	s.MaxDemand = f.maxDemand
	for _, v := range f.virgin {
		if v != 0 {
			s.Edges++
		}
	}
	return s
}

// SortedFindings returns findings sorted by (kind, pc) for stable
// reporting independent of discovery order.
func SortedFindings(fs []Finding) []Finding {
	out := append([]Finding(nil), fs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Err.Kind != out[j].Err.Kind {
			return out[i].Err.Kind < out[j].Err.Kind
		}
		return out[i].Err.PC < out[j].Err.PC
	})
	return out
}
