package cte

import (
	"math/rand"
	"testing"
)

// oldPick is the previous O(n) scan-and-splice Coverage selection,
// kept as the ordering oracle for the heap-backed frontier.
func oldPick(queue *[]Input) Input {
	q := *queue
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].Score > q[best].Score ||
			(q[i].Score == q[best].Score && q[i].Gen < q[best].Gen) {
			best = i
		}
	}
	in := q[best]
	*queue = append(q[:best], q[best+1:]...)
	return in
}

func TestFrontierCoverageMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := newFrontier(Coverage, nil)
	var ref []Input
	push := func(in Input) {
		f.push(in)
		ref = append(ref, in)
	}
	for i := 0; i < 50; i++ {
		push(Input{Score: float64(rng.Intn(5)), Gen: rng.Intn(4), Bound: i})
	}
	// Interleave pops and pushes to exercise heap re-ordering.
	for i := 0; i < 80; i++ {
		if f.len() == 0 {
			break
		}
		got := f.pop()
		want := oldPick(&ref)
		if got.Score != want.Score || got.Gen != want.Gen || got.Bound != want.Bound {
			t.Fatalf("pop %d: got {score %v gen %d bound %d} want {score %v gen %d bound %d}",
				i, got.Score, got.Gen, got.Bound, want.Score, want.Gen, want.Bound)
		}
		if i%3 == 0 {
			push(Input{Score: float64(rng.Intn(5)), Gen: rng.Intn(4), Bound: 100 + i})
		}
	}
	if f.len() != len(ref) {
		t.Fatalf("length drift: frontier %d oracle %d", f.len(), len(ref))
	}
}

func TestFrontierBFSOrderAndCompaction(t *testing.T) {
	f := newFrontier(BFS, nil)
	const n = 300 // enough to trigger the dead-prefix compaction
	for i := 0; i < n; i++ {
		f.push(Input{Bound: i})
	}
	for i := 0; i < n; i++ {
		if got := f.pop(); got.Bound != i {
			t.Fatalf("pop %d: got bound %d", i, got.Bound)
		}
	}
	if f.len() != 0 {
		t.Fatalf("leftover %d", f.len())
	}
}

func TestFrontierDFSOrder(t *testing.T) {
	f := newFrontier(DFS, nil)
	for i := 0; i < 5; i++ {
		f.push(Input{Bound: i})
	}
	for i := 4; i >= 0; i-- {
		if got := f.pop(); got.Bound != i {
			t.Fatalf("dfs pop: got bound %d want %d", got.Bound, i)
		}
	}
}
