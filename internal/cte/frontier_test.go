package cte

import (
	"math/rand"
	"testing"
)

// oldPick is the previous O(n) scan-and-splice Coverage selection,
// kept as the ordering oracle for the heap-backed frontier.
func oldPick(queue *[]Input) Input {
	q := *queue
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].Score > q[best].Score ||
			(q[i].Score == q[best].Score && q[i].Gen < q[best].Gen) {
			best = i
		}
	}
	in := q[best]
	*queue = append(q[:best], q[best+1:]...)
	return in
}

func TestFrontierCoverageMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := newFrontier(Coverage, nil)
	var ref []Input
	push := func(in Input) {
		f.push(in)
		ref = append(ref, in)
	}
	for i := 0; i < 50; i++ {
		push(Input{Score: float64(rng.Intn(5)), Gen: rng.Intn(4), Bound: i})
	}
	// Interleave pops and pushes to exercise heap re-ordering.
	for i := 0; i < 80; i++ {
		if f.len() == 0 {
			break
		}
		got, ok := f.pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		want := oldPick(&ref)
		if got.Score != want.Score || got.Gen != want.Gen || got.Bound != want.Bound {
			t.Fatalf("pop %d: got {score %v gen %d bound %d} want {score %v gen %d bound %d}",
				i, got.Score, got.Gen, got.Bound, want.Score, want.Gen, want.Bound)
		}
		if i%3 == 0 {
			push(Input{Score: float64(rng.Intn(5)), Gen: rng.Intn(4), Bound: 100 + i})
		}
	}
	if f.len() != len(ref) {
		t.Fatalf("length drift: frontier %d oracle %d", f.len(), len(ref))
	}
}

func TestFrontierBFSOrderAndCompaction(t *testing.T) {
	f := newFrontier(BFS, nil)
	const n = 300 // enough to trigger the dead-prefix compaction
	for i := 0; i < n; i++ {
		f.push(Input{Bound: i})
	}
	for i := 0; i < n; i++ {
		if got, ok := f.pop(); !ok || got.Bound != i {
			t.Fatalf("pop %d: got bound %d ok=%v", i, got.Bound, ok)
		}
	}
	if f.len() != 0 {
		t.Fatalf("leftover %d", f.len())
	}
}

// TestFrontierEmptyPop is the regression test for the empty-frontier
// panic: pop on an empty frontier used to crash for Random
// (rand.Intn(0)) and Coverage (heap underflow). Every strategy must
// report emptiness through the (Input, bool) contract instead — drained
// frontiers are routine in both the sequential loop and parallel worker
// claim races.
func TestFrontierEmptyPop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		s    Strategy
	}{
		{"bfs", BFS}, {"dfs", DFS}, {"random", Random}, {"coverage", Coverage},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newFrontier(tc.s, rng)
			if _, ok := f.pop(); ok {
				t.Fatal("pop on never-used frontier reported an input")
			}
			// Fill, drain completely, then pop again: the drained state
			// must behave like the fresh one. 100 > 64 crosses the BFS
			// dead-prefix compaction boundary (head > 64), the spot where
			// a stale head index would fault or return a zero Input.
			const n = 100
			for i := 0; i < n; i++ {
				f.push(Input{Bound: i})
			}
			seen := make(map[int]bool)
			for i := 0; i < n; i++ {
				in, ok := f.pop()
				if !ok {
					t.Fatalf("pop %d: empty with %d inputs outstanding", i, n-i)
				}
				if seen[in.Bound] {
					t.Fatalf("pop %d: bound %d returned twice", i, in.Bound)
				}
				seen[in.Bound] = true
			}
			if _, ok := f.pop(); ok {
				t.Fatal("pop on drained frontier reported an input")
			}
			if f.len() != 0 {
				t.Fatalf("drained frontier len %d", f.len())
			}
			// And it must still be usable after draining.
			f.push(Input{Bound: 7})
			if in, ok := f.pop(); !ok || in.Bound != 7 {
				t.Fatalf("post-drain push/pop: got %+v ok=%v", in, ok)
			}
		})
	}
}

func TestFrontierDFSOrder(t *testing.T) {
	f := newFrontier(DFS, nil)
	for i := 0; i < 5; i++ {
		f.push(Input{Bound: i})
	}
	for i := 4; i >= 0; i-- {
		if got, ok := f.pop(); !ok || got.Bound != i {
			t.Fatalf("dfs pop: got bound %d want %d ok=%v", got.Bound, i, ok)
		}
	}
}
