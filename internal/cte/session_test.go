package cte

import (
	"bytes"
	"context"
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
)

// bitstormSrc: 8 independent symbolic branch bits -> 256 paths. Big enough
// that cancellation always lands before exhaustion.
const bitstormSrc = `
_start:
	la a0, buf
	li a1, 8
	la a2, name
	li a7, 1
	ecall            # make_symbolic(buf, 8, "b")
	la a3, buf
	li t2, 0
	li t3, 8
loop:
	add t4, a3, t2
	lbu t0, 0(t4)
	andi t0, t0, 1
	beqz t0, skip
	nop
skip:
	addi t2, t2, 1
	bltu t2, t3, loop
	li a0, 0
	li a7, 0
	ecall
.data
buf: .space 8
name: .asciz "b"
`

func counterVal(t *testing.T, snap *obs.Snapshot, name string) int64 {
	t.Helper()
	v, ok := snap.Counters[name]
	if !ok {
		t.Fatalf("counter %q missing from snapshot (have %v)", name, snap.Counters)
	}
	return v
}

// checkObsAgainstReport asserts the acceptance criterion of the obs
// layer: metric totals equal the Report's legacy counters exactly.
func checkObsAgainstReport(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Obs == nil {
		t.Fatal("report carries no obs snapshot")
	}
	want := map[string]int64{
		"cte.paths":       int64(rep.Paths),
		"cte.sat_tcs":     int64(rep.SatTCs),
		"cte.unsat_tcs":   int64(rep.UnsatTCs),
		"cte.unknown_tcs": int64(rep.UnknownTCs),
		"cte.pruned":      int64(rep.Pruned),
		"cte.findings":    int64(len(rep.Findings)),
		"iss.instr":       int64(rep.TotalInstr),
		"iss.execs":       int64(rep.Paths),
	}
	for name, w := range want {
		if got := counterVal(t, rep.Obs, name); got != w {
			t.Errorf("%s = %d, report says %d", name, got, w)
		}
	}
	if rep.Cache != nil {
		cacheWant := map[string]int64{
			"qcache.queries":      rep.Cache.Queries,
			"qcache.hits":         rep.Cache.Hits,
			"qcache.eval_hits":    rep.Cache.EvalHits,
			"qcache.subsume_hits": rep.Cache.SubsumeHits,
			"qcache.solver_calls": rep.Cache.SolverCalls,
			"qcache.slice_solves": rep.Cache.SliceSolves,
			"qcache.unknowns":     rep.Cache.Unknowns,
			"qcache.stores":       rep.Cache.Stores,
		}
		for name, w := range cacheWant {
			if got := counterVal(t, rep.Obs, name); got != w {
				t.Errorf("%s = %d, cache stats say %d", name, got, w)
			}
		}
	}
	// Solver-level queries: with a cache only misses reach the solver, so
	// smt.queries matches Report.Queries in both configurations.
	if got := counterVal(t, rep.Obs, "smt.queries"); got != int64(rep.Queries) {
		t.Errorf("smt.queries = %d, report says %d", got, rep.Queries)
	}
	if h, ok := rep.Obs.Histograms["cte.path_us"]; !ok {
		t.Error("cte.path_us histogram missing")
	} else if h.Count != int64(rep.Paths) {
		t.Errorf("cte.path_us count = %d, paths = %d", h.Count, rep.Paths)
	}
}

// TestSessionObsMatchesReport: the tentpole acceptance check at engine
// level — a wired concolic run's metric totals equal the legacy Report
// counters, sequentially and with a worker pool, with and without cache.
func TestSessionObsMatchesReport(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		cache   bool
	}{
		{"seq", 1, false},
		{"seq-cache", 1, true},
		{"par", 4, false},
		{"par-cache", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap := snapshot(t, bitstormSrc)
			cfg := Config{
				Workers: tc.workers,
				Budget:  Budget{MaxPaths: 400},
				Obs:     obs.New(),
			}
			if tc.cache {
				cfg.Cache.Queries = qcache.New(snap.B, qcache.Options{})
			}
			rep := NewSession(snap, cfg).Run(context.Background())
			if rep.Paths == 0 || !rep.Exhausted {
				t.Fatalf("exploration did not exhaust: %v", rep)
			}
			if rep.Mode != ModeConcolic || rep.Stopped != "exhausted" {
				t.Errorf("mode=%v stopped=%q", rep.Mode, rep.Stopped)
			}
			checkObsAgainstReport(t, rep)
		})
	}
}

// TestSessionHybridObsMatchesReport: same criterion for the hybrid
// engine: fuzzer and driver metric totals equal the FuzzStats section.
func TestSessionHybridObsMatchesReport(t *testing.T) {
	snap := snapshot(t, magicSrc)
	cfg := Config{
		Mode:        ModeHybrid,
		Workers:     1,
		Budget:      Budget{MaxExecs: 50_000},
		Obs:         obs.New(),
		Seed:        1,
		StopOnError: true,
		Fuzz:        FuzzConfig{Batch: 200},
	}
	rep := NewSession(snap, cfg).Run(context.Background())
	if rep.Fuzz == nil || rep.Obs == nil {
		t.Fatalf("hybrid report incomplete: fuzz=%v obs=%v", rep.Fuzz, rep.Obs)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings %d want 1 (stopped %s)", len(rep.Findings), rep.Stopped)
	}
	fs := rep.Fuzz
	want := map[string]int64{
		"fuzz.execs":             int64(fs.Execs),
		"fuzz.pruned":            int64(fs.Pruned),
		"fuzz.findings":          int64(fs.Findings),
		"fuzz.injected":          int64(fs.Injected),
		"hybrid.escalations":     int64(fs.Escalations),
		"hybrid.flips_attempted": int64(fs.FlipsAttempted),
		"hybrid.solves":          int64(fs.Solves),
		"hybrid.replayed_instr":  int64(fs.ReplayedInstrs),
	}
	for name, w := range want {
		if got := counterVal(t, rep.Obs, name); got != w {
			t.Errorf("%s = %d, fuzz stats say %d", name, got, w)
		}
	}
	// iss.instr counts fuzz executions plus concolic replays; iss.execs
	// counts fuzz executions only.
	if got := counterVal(t, rep.Obs, "iss.instr"); got != int64(fs.TotalInstr+fs.ReplayedInstrs) {
		t.Errorf("iss.instr = %d, want fuzz %d + replays %d", got, fs.TotalInstr, fs.ReplayedInstrs)
	}
	if got := counterVal(t, rep.Obs, "iss.execs"); got != int64(fs.Execs) {
		t.Errorf("iss.execs = %d, execs = %d", got, fs.Execs)
	}
	if g, ok := rep.Obs.Gauges["fuzz.corpus"]; !ok || g != int64(fs.CorpusSize) {
		t.Errorf("fuzz.corpus gauge = %d,%v want %d", g, ok, fs.CorpusSize)
	}
	if g, ok := rep.Obs.Gauges["fuzz.edges"]; !ok || g != int64(fs.Edges) {
		t.Errorf("fuzz.edges gauge = %d,%v want %d", g, ok, fs.Edges)
	}
}

// TestSessionTraceEvents: a traced run emits a well-formed event stream
// whose path events tally with the report.
func TestSessionTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	ob := obs.New()
	ob.Tracer = obs.NewTracer(&buf)
	rep := NewSession(snapshot(t, bitstormSrc), Config{Obs: ob}).
		Run(context.Background())
	if err := ob.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	census := map[string]int{}
	for _, ev := range events {
		census[ev.Ev]++
	}
	if census[obs.EvPathStart] != rep.Paths || census[obs.EvPathEnd] != rep.Paths {
		t.Errorf("path events %d/%d, report has %d paths",
			census[obs.EvPathStart], census[obs.EvPathEnd], rep.Paths)
	}
	if census[obs.EvSatQuery] != rep.Queries {
		t.Errorf("sat_query events %d, report has %d queries", census[obs.EvSatQuery], rep.Queries)
	}
	if census[obs.EvRunEnd] != 1 {
		t.Errorf("run_end events %d want 1", census[obs.EvRunEnd])
	}
	if last := events[len(events)-1]; last.Ev != obs.EvRunEnd || last.Class != "exhausted" {
		t.Errorf("last event %+v want run_end/exhausted", last)
	}
}

// TestSessionCancelSequential: an already-canceled context stops the
// sequential engine before the first path.
func TestSessionCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := NewSession(snapshot(t, bitstormSrc), Config{}).Run(ctx)
	if rep.Stopped != "canceled" {
		t.Errorf("stopped = %q want canceled", rep.Stopped)
	}
	if rep.Paths != 0 || rep.Exhausted {
		t.Errorf("canceled run still explored: %v", rep)
	}
}

// TestSessionCancelParallel: cancellation mid-run tears the worker pool
// down promptly with a partial report.
func TestSessionCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sess := NewSession(snapshot(t, bitstormSrc), Config{Workers: 4})
	sess.OnPath = func(path int, _ *iss.Core) {
		if path == 0 {
			cancel()
		}
	}
	rep := sess.Run(ctx)
	if rep.Stopped != "canceled" {
		t.Errorf("stopped = %q want canceled", rep.Stopped)
	}
	if rep.Paths == 0 {
		t.Error("no path merged before cancellation was observed")
	}
	if rep.Paths >= 256 {
		t.Errorf("run explored all %d paths despite cancellation", rep.Paths)
	}
}

// TestSessionCancelHybrid: an already-canceled context stops the hybrid
// driver before any fuzzing.
func TestSessionCancelHybrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := NewSession(snapshot(t, magicSrc), Config{Mode: ModeHybrid}).Run(ctx)
	if rep.Stopped != "canceled" {
		t.Errorf("stopped = %q want canceled", rep.Stopped)
	}
	if rep.Fuzz == nil || rep.Fuzz.Execs != 0 {
		t.Errorf("canceled hybrid run still fuzzed: %+v", rep.Fuzz)
	}
}
