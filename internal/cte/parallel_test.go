package cte

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"rvcte/internal/iss"
)

// runExits explores and returns the sorted multiset of path exit codes.
func runExits(t *testing.T, src string, cfg Config) (*Report, []uint32) {
	t.Helper()
	eng := NewSession(snapshot(t, src), cfg)
	var exits []uint32
	eng.OnPath = func(_ int, c *iss.Core) { exits = append(exits, c.ExitCode) }
	rep := eng.Run(context.Background())
	sort.Slice(exits, func(i, j int) bool { return exits[i] < exits[j] })
	return rep, exits
}

// TestParallelMatchesSequential: the explored path set is a property of
// the program, the dedup and the generational bounds — not of worker
// scheduling. Workers=4 must find exactly the sequential engine's paths
// (modulo order) and the same aggregate statistics.
func TestParallelMatchesSequential(t *testing.T) {
	seqRep, seqExits := runExits(t, counterSrc, Config{Workers: 1, Budget: Budget{MaxPaths: 100}})
	parRep, parExits := runExits(t, counterSrc, Config{Workers: 4, Budget: Budget{MaxPaths: 100}})

	if !seqRep.Exhausted || !parRep.Exhausted {
		t.Fatalf("both runs must exhaust (seq=%v par=%v)", seqRep.Exhausted, parRep.Exhausted)
	}
	if seqRep.Paths != parRep.Paths {
		t.Errorf("paths: seq=%d par=%d", seqRep.Paths, parRep.Paths)
	}
	if len(seqExits) != len(parExits) {
		t.Fatalf("exit multisets differ in size: seq=%v par=%v", seqExits, parExits)
	}
	for i := range seqExits {
		if seqExits[i] != parExits[i] {
			t.Fatalf("exit multisets differ: seq=%v par=%v", seqExits, parExits)
		}
	}
	if len(seqRep.Findings) != len(parRep.Findings) {
		t.Errorf("findings: seq=%d par=%d", len(seqRep.Findings), len(parRep.Findings))
	}
	if parRep.Workers != 4 || len(parRep.PerWorker) != 4 {
		t.Errorf("parallel report worker stats missing: %+v", parRep)
	}
	var perWorkerQueries int
	for _, ws := range parRep.PerWorker {
		perWorkerQueries += ws.Queries
	}
	if perWorkerQueries != parRep.Queries {
		t.Errorf("query aggregation: per-worker sum %d != total %d", perWorkerQueries, parRep.Queries)
	}
}

// TestParallelFindsAssertViolation: a finding surfaces under parallel
// exploration with StopOnError, with the same violating input.
func TestParallelFindsAssertViolation(t *testing.T) {
	eng := NewSession(snapshot(t, assertBugSrc), Config{StopOnError: true, Workers: 4, Budget: Budget{MaxPaths: 50}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) == 0 {
		t.Fatalf("no finding: %v", rep)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Err.Kind == iss.ErrAssertFail && eng.snap.B.Value(f.Input, "x[0]") == 0x42 {
			found = true
		}
	}
	if !found {
		t.Errorf("assert violation with x=0x42 not among findings: %v", rep.Findings)
	}
	if rep.Exhausted {
		t.Error("StopOnError run must not claim exhaustion")
	}
}

// TestParallelMaxPaths: the claim counter bounds executed paths exactly,
// even with workers racing for the queue.
func TestParallelMaxPaths(t *testing.T) {
	eng := NewSession(snapshot(t, counterSrc), Config{Workers: 4, Budget: Budget{MaxPaths: 3}})
	rep := eng.Run(context.Background())
	if rep.Paths != 3 {
		t.Errorf("paths: %d want 3", rep.Paths)
	}
	if rep.Exhausted {
		t.Error("queue should not be exhausted at MaxPaths=3")
	}
}

// TestParallelTimeout: an already-expired deadline stops the run before
// the first claim, like the sequential engine.
func TestParallelTimeout(t *testing.T) {
	eng := NewSession(snapshot(t, counterSrc), Config{Workers: 4, Budget: Budget{Timeout: time.Nanosecond}})
	rep := eng.Run(context.Background())
	if rep.Exhausted {
		t.Error("timeout run must not report exhaustion")
	}
	if rep.Paths != 0 {
		t.Errorf("expired budget should run no paths, ran %d", rep.Paths)
	}
}

// TestParallelStrategies: every strategy terminates and covers all
// distinct behaviors under the worker pool (order-free assertions only).
func TestParallelStrategies(t *testing.T) {
	for _, strat := range []Strategy{BFS, DFS, Random, Coverage} {
		t.Run(strat.String(), func(t *testing.T) {
			eng := NewSession(snapshot(t, counterSrc), Config{Seed: 42, Workers: 4, Budget: Budget{MaxPaths: 100}, Explore: ExploreConfig{Strategy: strat}})
			exits := map[uint32]int{}
			eng.OnPath = func(_ int, c *iss.Core) { exits[c.ExitCode]++ }
			rep := eng.Run(context.Background())
			if len(exits) != 8 {
				t.Errorf("distinct exits: %d want 8 (%v)", len(exits), exits)
			}
			if !rep.Exhausted {
				t.Error("exploration must terminate")
			}
			if rep.Paths > 20 {
				t.Errorf("too many paths: %d", rep.Paths)
			}
		})
	}
}

// TestConcurrentSnapshotClone exercises the clone-safety contract
// directly: once frozen, a snapshot may be cloned and executed from many
// goroutines at once (run under -race).
func TestConcurrentSnapshotClone(t *testing.T) {
	snap := snapshot(t, counterSrc)
	snap.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				c := snap.Clone()
				c.Run(0)
				if c.Err != nil && c.Err.Kind != iss.ErrAssumeFail {
					t.Errorf("clone run failed: %v", c.Err)
				}
			}
		}()
	}
	wg.Wait()
	if snap.InstrCount != 0 {
		t.Errorf("snapshot was mutated: %d instructions", snap.InstrCount)
	}
}

func TestWorkerResolution(t *testing.T) {
	if got := (Config{}).effectiveWorkers(); got != 1 {
		t.Errorf("zero value: %d want 1 (sequential)", got)
	}
	if got := (Config{Workers: 3}).effectiveWorkers(); got != 3 {
		t.Errorf("explicit: %d want 3", got)
	}
	if got := (Config{Workers: AutoWorkers}).effectiveWorkers(); got < 1 {
		t.Errorf("auto: %d want >= 1", got)
	}
}

// mulGateSrc hides the second path behind "x*y == 143": reaching it
// requires the solver to factor, which costs conflicts — the trace
// condition goes unknown under a tiny per-query budget.
const mulGateSrc = `
_start:
	la a0, x
	li a1, 2
	la a2, name
	li a7, 1
	ecall
	la a0, x
	lbu s0, 0(a0)
	lbu s1, 1(a0)
	mul s2, s0, s1
	li a1, 143
	bne s2, a1, ok
	li a0, 1
	li a7, 0
	ecall
ok:
	li a0, 0
	li a7, 0
	ecall
.data
x: .byte 0, 0
name: .asciz "x"
`

// TestUnknownTCsCounted: budget-exhausted queries are reported as
// UnknownTCs, not folded into UnsatTCs (which the paper's tables read
// as proven-unsat).
func TestUnknownTCsCounted(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep := NewSession(snapshot(t, mulGateSrc), Config{Workers: workers, Budget: Budget{MaxPaths: 20, MaxConflictsPerQuery: 1}}).Run(context.Background())
		if rep.UnknownTCs == 0 {
			t.Errorf("workers=%d: factoring TC should exhaust a 1-conflict budget (report %v)", workers, rep)
		}
		if rep.UnsatTCs != 0 {
			t.Errorf("workers=%d: unknown results must not count as unsat (report %v)", workers, rep)
		}

		// Without a budget the same TC is solved and both sides run.
		full := NewSession(snapshot(t, mulGateSrc), Config{Workers: workers, Budget: Budget{MaxPaths: 20}}).Run(context.Background())
		if full.UnknownTCs != 0 || full.Paths < 2 {
			t.Errorf("workers=%d: unbudgeted run should solve the gate (report %v)", workers, full)
		}
	}
}
