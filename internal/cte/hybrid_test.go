package cte

import (
	"bytes"
	"context"
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// magicSrc hides an assertion failure behind a 32-bit magic-word
// comparison — the canonical fuzzer-blind gate (2^-32 per random
// guess) that one solver query opens.
const magicSrc = `
_start:
	la a0, buf
	li a1, 8
	la a2, name
	li a7, 1
	ecall            # make_symbolic(buf, 8, "x")
	la a3, buf
	lw t0, 0(a3)
	li t1, 0x1badc0de
	bne t0, t1, out
	li a0, 0
	li a7, 3
	ecall            # CTE_assert(0): the gated bug
out:
	lbu a0, 4(a3)
	andi a0, a0, 1
	li a7, 0
	ecall
.data
buf: .space 8
name: .asciz "x"
`

// initMagicSrc prepends a deterministic init loop (no input dependence)
// to the magic gate, for the skip-init optimization test.
const initMagicSrc = `
_start:
	li t0, 0
	li t1, 2000
	li t2, 0
init:
	addi t2, t2, 3
	addi t0, t0, 1
	bltu t0, t1, init
	la a0, buf
	li a1, 8
	la a2, name
	li a7, 1
	ecall
	la a3, buf
	lw t0, 0(a3)
	li t1, 0x1badc0de
	bne t0, t1, out
	li a0, 0
	li a7, 3
	ecall
out:
	li a0, 0
	li a7, 0
	ecall
.data
buf: .space 8
name: .asciz "x"
`

// TestHybridSolvesMagicGate: random mutation cannot pass the 32-bit
// gate; a coverage stall escalates to the concolic engine, one solved
// flip is injected back, and the fuzzer's next execution finds the bug.
func TestHybridSolvesMagicGate(t *testing.T) {
	rep := NewSession(snapshot(t, magicSrc), Config{Mode: ModeHybrid, Seed: 1, StopOnError: true, Budget: Budget{MaxExecs: 50_000}, Fuzz: FuzzConfig{Batch: 200}}).Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("findings %d want 1 (stopped: %s, %+v)", len(rep.Findings), rep.Stopped, rep.Fuzz)
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Errorf("finding kind %v want assertion failure", f.Err.Kind)
	}
	if len(f.Data) < 4 || !bytes.Equal(f.Data[:4], []byte{0xde, 0xc0, 0xad, 0x1b}) {
		t.Errorf("finding input %x does not carry the solved magic word", f.Data)
	}
	if rep.Fuzz.Escalations == 0 || rep.Fuzz.Solves == 0 {
		t.Errorf("bug requires the concolic assist: escalations=%d solves=%d",
			rep.Fuzz.Escalations, rep.Fuzz.Solves)
	}
	if rep.Stopped != "stop-on-error" {
		t.Errorf("stopped = %q want stop-on-error", rep.Stopped)
	}
	if rep.Queries == 0 {
		t.Error("no SAT queries recorded")
	}
}

// TestHybridWithCache: the qcache slots in front of flip solving exactly
// as in the pure-concolic engine, and the run still finds the bug.
func TestHybridWithCache(t *testing.T) {
	snap := snapshot(t, magicSrc)
	rep := NewSession(snap, Config{Mode: ModeHybrid, Seed: 1, StopOnError: true, Budget: Budget{MaxExecs: 50_000}, Fuzz: FuzzConfig{Batch: 200}, Cache: CacheConfig{Queries: qcache.New(snap.B, qcache.Options{})}}).Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("findings %d want 1", len(rep.Findings))
	}
	if rep.Cache == nil {
		t.Fatal("cache stats missing from report")
	}
	if rep.Cache.SolverCalls == 0 {
		t.Error("cache recorded no solver traffic")
	}
}

// TestHybridDeterministicAtJ1: for a fixed seed and one worker, two
// campaigns are replicas.
func TestHybridDeterministicAtJ1(t *testing.T) {
	run := func() *Report {
		return NewSession(snapshot(t, magicSrc), Config{Mode: ModeHybrid, Seed: 9, Workers: 1, Budget: Budget{MaxExecs: 3000}, Fuzz: FuzzConfig{Batch: 150}}).Run(context.Background())
	}
	a, b := run(), run()
	if a.Fuzz.Execs != b.Fuzz.Execs || a.Fuzz.CorpusSize != b.Fuzz.CorpusSize ||
		a.Fuzz.Edges != b.Fuzz.Edges {
		t.Errorf("fuzz stats diverged:\n%+v\n%+v", a.Fuzz, b.Fuzz)
	}
	if a.Fuzz.Escalations != b.Fuzz.Escalations || a.Fuzz.Solves != b.Fuzz.Solves ||
		a.Fuzz.FlipsAttempted != b.Fuzz.FlipsAttempted || a.Queries != b.Queries {
		t.Errorf("concolic stats diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Fuzz.Escalations, a.Fuzz.Solves, a.Fuzz.FlipsAttempted, a.Queries,
			b.Fuzz.Escalations, b.Fuzz.Solves, b.Fuzz.FlipsAttempted, b.Queries)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts diverged: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if !bytes.Equal(a.Findings[i].Data, b.Findings[i].Data) ||
			a.Findings[i].Exec != b.Findings[i].Exec {
			t.Errorf("finding %d diverged", i)
		}
	}
}

// TestHybridSkipInit: the shared init prefix is executed once into the
// working snapshot, and the gate is still solvable from there.
func TestHybridSkipInit(t *testing.T) {
	rep := NewSession(snapshot(t, initMagicSrc), Config{Mode: ModeHybrid, Seed: 2, StopOnError: true, Budget: Budget{MaxExecs: 50_000}, Fuzz: FuzzConfig{Batch: 200}}).Run(context.Background())
	if rep.Fuzz.SkipInitInstrs < 3000 {
		t.Errorf("skip-init advanced only %d instructions; the init loop alone is ~6000",
			rep.Fuzz.SkipInitInstrs)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings %d want 1 (stopped: %s)", len(rep.Findings), rep.Stopped)
	}
	if rep.Findings[0].Err.Kind != iss.ErrAssertFail {
		t.Errorf("finding kind %v", rep.Findings[0].Err.Kind)
	}
}

// TestHybridParallel: a -j 4 campaign (fuzz workers + parallel flip
// solving) still finds the gated bug; run under -race by the verify
// target.
func TestHybridParallel(t *testing.T) {
	rep := NewSession(snapshot(t, magicSrc), Config{Mode: ModeHybrid, Seed: 3, Workers: 4, StopOnError: true, Budget: Budget{MaxExecs: 50_000}, Fuzz: FuzzConfig{Batch: 200}}).Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("findings %d want 1 (stopped: %s)", len(rep.Findings), rep.Stopped)
	}
}

// TestHybridDryTermination: a gate-free program saturates coverage
// immediately; after DryEscalations fruitless escalations the run ends
// on its own.
func TestHybridDryTermination(t *testing.T) {
	rep := NewSession(snapshot(t, twoPathSrc), Config{Mode: ModeHybrid, Seed: 4, Fuzz: FuzzConfig{Batch: 100, StallExecs: 100, DryEscalations: 2}}).Run(context.Background())
	if rep.Stopped != "dry" {
		t.Errorf("stopped = %q want dry", rep.Stopped)
	}
	if rep.Fuzz.Execs == 0 || rep.Fuzz.CorpusSize == 0 {
		t.Errorf("no fuzzing happened before drying out: %+v", rep.Fuzz)
	}
}

// TestSolvedInput: model values land on the stream offsets their
// variables consumed, little-endian, and unconstrained offsets keep the
// incumbent bytes.
func TestSolvedInput(t *testing.T) {
	b := smt.NewBuilder()
	v8 := b.Var(8, "a")
	v32 := b.Var(32, "b")
	v8b := b.Var(8, "c")
	order := []int{int(v8.Val), int(v32.Val), int(v8b.Val)}
	base := []byte{0x11, 0x22} // shorter than the 6-byte demand
	model := smt.Assignment{
		int(v8.Val):  0x7f,
		int(v32.Val): 0xdeadbeef,
		// v8b unconstrained: keeps base byte (zero-extended here)
	}
	got := solvedInput(base, order, b, model)
	want := []byte{0x7f, 0xef, 0xbe, 0xad, 0xde, 0x00}
	if !bytes.Equal(got, want) {
		t.Errorf("solvedInput = %x want %x", got, want)
	}
	if !bytes.Equal(base, []byte{0x11, 0x22}) {
		t.Error("solvedInput mutated its base input")
	}
}
