package cte

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// semanticRecord keys one executed path by its observable behavior —
// model choices (and thus assignment keys) are solver-history-dependent,
// so cross-process comparisons use behavior, not raw inputs (same
// contract as the parallel-mode fork tests).
func semanticRecord(c *iss.Core) string {
	return fmt.Sprintf("exit=%d err=%v out=%q", c.ExitCode, c.Err, c.Output)
}

// TestWireInputRoundTrip: exporting a frontier input and importing it
// into a different builder preserves the assignment (by name), the
// bound and the dedup key, including zero-valued assignments.
func TestWireInputRoundTrip(t *testing.T) {
	b1 := smt.NewBuilder()
	// Create vars in one order on the exporting side...
	x := b1.Var(32, "x")
	y := b1.Var(8, "y")
	in := Input{Assignment: smt.Assignment{int(x.Val): 41, int(y.Val): 0}, Bound: 3, Gen: 2}

	wi := ExportInput(b1, in)
	if wi.Key() != InputKey(b1, in) {
		t.Fatalf("wire key %q != engine key %q", wi.Key(), InputKey(b1, in))
	}
	data, err := json.Marshal(wi)
	if err != nil {
		t.Fatal(err)
	}
	var back WireInput
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	// ... and in the opposite order (plus an extra var) on the importer.
	b2 := smt.NewBuilder()
	b2.Var(16, "unrelated")
	b2.Var(8, "y")
	got := ImportInput(b2, back)
	if got.Bound != 3 || got.Gen != 2 {
		t.Fatalf("bound/gen lost: %+v", got)
	}
	if InputKey(b2, got) != wi.Key() {
		t.Fatalf("imported key %q != wire key %q", InputKey(b2, got), wi.Key())
	}
	if v := b2.Value(got.Assignment, "x"); v != 41 {
		t.Fatalf("x = %d want 41", v)
	}
	if id, ok := b2.VarID("y"); !ok || got.Assignment[id] != 0 {
		t.Fatalf("zero-valued y lost: %v", got.Assignment)
	}
}

// TestRootsBatchExecution is the campaign worker contract: with
// Options.Roots + MaxPaths == len(Roots) + BFS, exactly the leased
// inputs execute and their children land unexplored in Report.Frontier.
// Driving the exported frontier to exhaustion in a *fresh* process
// (builder + snapshot) reaches the same semantic path set as one
// uninterrupted exploration.
func TestRootsBatchExecution(t *testing.T) {
	// Uninterrupted baseline.
	var want []string
	base := NewSession(snapshot(t, counterSrc), Config{Budget: Budget{MaxPaths: 100}})
	base.OnPath = func(_ int, c *iss.Core) { want = append(want, semanticRecord(c)) }
	baseRep := base.Run(context.Background())
	if !baseRep.Exhausted {
		t.Fatal("baseline not exhausted")
	}

	// Batched exploration: carry the frontier across simulated process
	// boundaries in wire form, executing at most 3 inputs per lease.
	root := WireInput{} // empty assignment, bound 0
	pending := []WireInput{root}
	seen := map[string]bool{root.Key(): true} // every key ever enqueued
	var got []string
	for rounds := 0; len(pending) > 0; rounds++ {
		if rounds > 100 {
			t.Fatal("no convergence")
		}
		batch := pending
		if len(batch) > 3 {
			batch = batch[:3]
		}
		pending = pending[len(batch):]

		snap := snapshot(t, counterSrc) // fresh process state
		roots := make([]Input, len(batch))
		for i, wi := range batch {
			roots[i] = ImportInput(snap.B, wi)
		}
		eng := NewSession(snap, Config{Budget: Budget{MaxPaths: len(roots)},
			Explore: ExploreConfig{Roots: roots, ExportFrontier: true}})
		eng.OnPath = func(_ int, c *iss.Core) { got = append(got, semanticRecord(c)) }
		rep := eng.Run(context.Background())
		if rep.Paths != len(roots) {
			t.Fatalf("lease executed %d paths want %d", rep.Paths, len(roots))
		}
		for _, ch := range rep.Frontier {
			wi := ExportInput(snap.B, ch)
			if !seen[wi.Key()] { // coordinator-side dedup
				seen[wi.Key()] = true
				pending = append(pending, wi)
			}
		}
	}

	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("path counts: batched %d baseline %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path records diverge:\n batched:  %s\n baseline: %s", got[i], want[i])
		}
	}
}
