package cte

import (
	"context"
	"time"

	"rvcte/internal/bmc"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// BMCConfig tunes ModeBMC; zero values select the documented defaults.
// The other engines ignore it.
type BMCConfig struct {
	// K is the unroll depth bound in instructions per path. 0 falls
	// back to Budget.MaxInstrPerRun, then to the snapshot's own
	// MaxInstr default — the same ladder the concolic engine's per-path
	// budget resolves through, so the two engines are depth-aligned by
	// default.
	K int
	// MaxStates caps the merged-state pool (0 = bmc default).
	MaxStates int
	// NoReplay skips the concrete confirmation replay of findings.
	NoReplay bool
}

// bmcDepth resolves the effective depth bound for a snapshot.
func bmcDepth(snap *iss.Core, cfg Config) int {
	if cfg.BMC.K > 0 {
		return cfg.BMC.K
	}
	if cfg.Budget.MaxInstrPerRun > 0 {
		return int(cfg.Budget.MaxInstrPerRun)
	}
	if snap.Cfg.MaxInstr > 0 {
		return int(snap.Cfg.MaxInstr)
	}
	return 1 << 20
}

func bmcConfig(snap *iss.Core, cfg Config) bmc.Config {
	return bmc.Config{
		K:            bmcDepth(snap, cfg),
		Cache:        cfg.Cache.Queries,
		MaxConflicts: cfg.Budget.MaxConflictsPerQuery,
		MaxStates:    cfg.BMC.MaxStates,
		NoReplay:     cfg.BMC.NoReplay,
		Obs:          cfg.Obs,
	}
}

// runBMC executes the bounded-model-checking mode of a Session and
// lowers the bmc report into the unified Report shape: each reachable
// bug site becomes a Finding with the solver model as its input.
func runBMC(ctx context.Context, snap *iss.Core, cfg Config) *Report {
	start := time.Now()
	snap.Freeze()
	rep := &Report{}
	x, err := bmc.New(snap, bmcConfig(snap, cfg))
	if err != nil {
		rep.Stopped = "bmc-setup: " + err.Error()
		return rep
	}
	br := x.Run(ctx)
	rep.BMC = br
	rep.Queries = br.Queries
	rep.SolverTime = br.SolverTime
	rep.TotalInstr = br.Steps
	rep.Exhausted = br.Exhausted
	rep.Stopped = br.Stopped
	for _, f := range br.Findings {
		rep.Findings = append(rep.Findings, Finding{
			Err:   &iss.SimError{Kind: f.Kind, PC: f.PC, Addr: f.Addr, Msg: f.Msg},
			Input: f.Input,
		})
	}
	if cfg.Cache.Queries != nil {
		cs := cfg.Cache.Queries.Stats()
		rep.Cache = &cs
	}
	rep.WallTime = time.Since(start)
	return rep
}

// ConcolicBugKeys projects a concolic Report's findings onto the
// (kind, pc) bug-site keys the BMC cross-check compares on.
func ConcolicBugKeys(rep *Report) []bmc.BugKey {
	keys := make([]bmc.BugKey, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		keys = append(keys, bmc.BugKey{Kind: f.Err.Kind, PC: f.Err.PC})
	}
	return keys
}

// BMCCrossCheck is the exhaustiveness oracle plus the differential
// path-condition check, in one call: run the concolic engine
// depth-bounded to the BMC depth with StopOnError off, sampling up to
// maxSamples executed path conditions; run the bounded unrolling from
// the same snapshot; then require the two bug sets to agree
// (bmc.Compare) and the sampled path conditions to be satisfiable and
// covered by the unrolling's guard partition (Report.DiffCheck). The
// returned error is an engine-disagreement verdict, not a setup
// failure.
func BMCCrossCheck(ctx context.Context, snap *iss.Core, cfg Config, maxSamples int) (*bmc.CrossReport, *bmc.DiffReport, error) {
	k := bmcDepth(snap, cfg)
	ccfg := cfg
	ccfg.Mode = ModeConcolic
	ccfg.StopOnError = false
	ccfg.Budget.MaxInstrPerRun = uint64(k)

	var samples []bmc.PathSample
	sess := NewSession(snap, ccfg)
	sess.OnPath = func(_ int, core *iss.Core) {
		if len(samples) >= maxSamples {
			return
		}
		samples = append(samples, bmc.PathSample{
			Conds: append([]*smt.Expr(nil), core.EPC...),
			Input: core.Input,
			Depth: core.InstrCount,
		})
	}
	crep := sess.Run(ctx)

	cross, err := bmc.CrossCheck(ctx, snap, bmcConfig(snap, cfg), ConcolicBugKeys(crep))
	if err != nil || cross == nil {
		return cross, nil, err
	}
	diff, derr := cross.BMC.DiffCheck(snap.B, cfg.Cache.Queries, cfg.Budget.MaxConflictsPerQuery, samples)
	return cross, diff, derr
}
