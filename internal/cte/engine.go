// Package cte implements the concolic exploration engine of the paper
// (§3.1.1): it repeatedly clones the VP, executes an input, collects the
// trace conditions emitted by the concolic ISS, solves each satisfiable
// TC into a new input, and schedules inputs according to a search
// strategy. Generational bounds (à la SAGE) prevent re-exploration of
// already-covered path prefixes.
//
// Exploration can run on a pool of parallel workers (Config.Workers):
// every path is independent by construction — the snapshot is frozen
// once, each worker clones it and runs on its own core with its own
// solver — so only the input queue, the dedup set, the coverage map and
// the report are shared, guarded by one mutex. With more than one worker
// the path *order* (and therefore OnPath invocation order and Finding
// indices) depends on scheduling, but the explored path set, the dedup
// decisions and the set of findings do not; Workers == 1 preserves the
// fully deterministic sequential engine. See DESIGN.md ("Parallel
// exploration") for the clone-safety contract.
package cte

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"rvcte/internal/bmc"
	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// Strategy selects which pending input to execute next.
type Strategy int

const (
	// BFS explores inputs in generation order (the paper's default
	// engine has no sophisticated heuristics; FIFO matches it closest).
	BFS Strategy = iota
	// DFS dives into the most recently generated input first.
	DFS
	// Random picks uniformly among pending inputs (seeded, reproducible).
	Random
	// Coverage prefers inputs whose parent path discovered new code
	// (paper §5, future work item 3).
	Coverage
)

func (s Strategy) String() string {
	switch s {
	case BFS:
		return "bfs"
	case DFS:
		return "dfs"
	case Random:
		return "random"
	case Coverage:
		return "coverage"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Input is one pending test case: a model for the symbolic variables
// plus the generational bound below which no TCs are re-emitted.
type Input struct {
	Assignment smt.Assignment
	Bound      int
	Gen        int     // generation (parent's Gen+1)
	Score      float64 // coverage score inherited from the parent path
	// Fork, when non-nil, is a resumable VP checkpointed at this input's
	// divergence point with Assignment already substituted (iss fork.go):
	// executing the input resumes the checkpoint instead of re-running
	// the path prefix from the snapshot. nil means restart-from-snapshot
	// (the root input, fork mode off, or capture was unsafe at the site).
	Fork *iss.Core
}

// Finding is an error uncovered during exploration. Concolic findings
// carry the solved variable assignment (Input); hybrid findings carry
// the raw input byte stream (Data) and the execution index (Exec).
type Finding struct {
	Err    *iss.SimError
	Input  smt.Assignment
	Data   []byte // hybrid mode: the input stream that triggered it
	Path   int    // index of the path that hit the error (concolic)
	Exec   uint64 // global execution index of discovery (hybrid)
	Output []byte
	Instrs uint64
	Trace  []iss.TraceEntry // last instructions, when TraceDepth was set
}

func (f Finding) String() string {
	return fmt.Sprintf("path %d: %v (input %v)", f.Path, f.Err, f.Input)
}

// AutoWorkers selects one worker per CPU (Config.Workers).
const AutoWorkers = -1

func autoWorkers() int { return runtime.NumCPU() }

// WorkerStats is the per-worker breakdown of a parallel run.
type WorkerStats struct {
	Paths      int
	Queries    int
	SolverTime time.Duration
}

// Report aggregates the statistics the paper's tables use. It is the
// unified result of every engine: concolic runs fill the path-level
// counters, hybrid runs additionally carry the Fuzz section, BMC runs
// the BMC section; an observability snapshot rides along when the run
// was wired.
type Report struct {
	Mode       Mode          // which engine produced this report
	Paths      int           // #paths column (concolic)
	Queries    int           // #queries column
	SolverTime time.Duration // stime column (summed across workers)
	WallTime   time.Duration // time column
	TotalInstr uint64        // #instr column (combined over all paths)
	SatTCs     int
	UnsatTCs   int // proven unsatisfiable
	UnknownTCs int // solver budget exhausted — not proven either way
	// Forked counts paths that resumed a divergence checkpoint instead
	// of restarting from the snapshot; ForkRestarts counts children that
	// wanted a fork but fell back to a restart (capture skipped at an
	// unsafe site). Both stay zero with Fork.Enabled off.
	Forked       int
	ForkRestarts int
	Findings     []Finding
	Pruned       int
	Exhausted    bool // queue drained (full exploration)
	// Frontier holds the pending inputs left unexplored when the run
	// stopped (Explore.ExportFrontier only): the hand-off unit of the
	// campaign coordinator's sharded frontier.
	Frontier []Input
	// Stopped says why the run ended: "exhausted" | "path-budget" |
	// "exec-budget" | "timeout" | "stop-on-error" | "canceled" | "dry" |
	// "escalation-budget".
	Stopped string
	// Covered holds every PC executed on any path (when
	// Explore.TrackCoverage or the Coverage strategy is active).
	Covered map[uint32]struct{}
	// Workers is the resolved pool size; PerWorker holds the per-worker
	// breakdown for parallel runs (nil for sequential runs).
	Workers   int
	PerWorker []WorkerStats
	// Detectors lists the bug-detector kinds that were attached for the
	// run — the expansion of Config.Detectors ("all" resolved, defaults
	// applied), so reports are self-describing.
	Detectors []string
	// Cache holds the query-cache counters when Cache.Queries was set
	// (nil otherwise). Queries then counts only the SAT queries that
	// missed the cache.
	Cache *qcache.Stats
	// Fuzz is the hybrid-mode section (nil for pure concolic runs).
	Fuzz *FuzzStats
	// BMC is the bounded-model-checking section (nil for other modes).
	BMC *bmc.Report
	// Obs is the final metric snapshot when the run carried an Obs
	// bundle (nil otherwise). Its totals agree with the legacy counters
	// above — the engine-level tests assert it.
	Obs *obs.Snapshot
}

func (r *Report) String() string {
	s := fmt.Sprintf("paths=%d queries=%d stime=%.2fs time=%.2fs instr=%d sat=%d unsat=%d unknown=%d findings=%d",
		r.Paths, r.Queries, r.SolverTime.Seconds(), r.WallTime.Seconds(), r.TotalInstr,
		r.SatTCs, r.UnsatTCs, r.UnknownTCs, len(r.Findings))
	if r.Cache != nil {
		s += fmt.Sprintf(" cache[hit=%d eval=%d subsume=%d solve=%d]",
			r.Cache.Hits, r.Cache.EvalHits, r.Cache.SubsumeHits, r.Cache.SolverCalls)
	}
	return s
}

// engine drives concolic exploration from a VP snapshot (the
// ModeConcolic half of a Session).
type engine struct {
	Builder  *smt.Builder
	Solver   *smt.Solver // used by sequential runs; parallel workers own solvers
	Snapshot *iss.Core
	Cfg      Config

	// OnPath observes every executed core (Session.OnPath). Parallel
	// runs invoke it under the run lock, so the callback never races
	// with itself, but invocation order is scheduling-dependent.
	OnPath func(path int, core *iss.Core)

	// Observability handles (Config.Obs); nil-safe when unwired.
	obsPaths, obsSat, obsUnsat, obsUnknown *obs.Counter
	obsPruned, obsFindings                 *obs.Counter
	obsForks, obsForkRestarts              *obs.Counter
	issInstr, issExecs                     *obs.Counter
	bbHits, bbMisses, bbInval              *obs.Counter
	frontierG, coverG                      *obs.Gauge
	pathHist, forkSuffixHist               *obs.Histogram
	tracer                                 *obs.Tracer
}

// newEngine creates the concolic engine around a prepared VP snapshot.
// The snapshot is never mutated; every path runs on a clone (§3.1.1).
func newEngine(snapshot *iss.Core, cfg Config) *engine {
	solver := smt.NewSolver(snapshot.B)
	solver.MaxConflictsPerQuery = cfg.Budget.MaxConflictsPerQuery
	e := &engine{
		Builder:  snapshot.B,
		Solver:   solver,
		Snapshot: snapshot,
		Cfg:      cfg,
	}
	if m := cfg.Obs.Registry(); m != nil {
		e.obsPaths = m.Counter("cte.paths")
		e.obsSat = m.Counter("cte.sat_tcs")
		e.obsUnsat = m.Counter("cte.unsat_tcs")
		e.obsUnknown = m.Counter("cte.unknown_tcs")
		e.obsPruned = m.Counter("cte.pruned")
		e.obsFindings = m.Counter("cte.findings")
		e.obsForks = m.Counter("cte.forks")
		e.obsForkRestarts = m.Counter("cte.fork_restarts")
		e.forkSuffixHist = m.Histogram("cte.fork_suffix_instr", obs.LatencyBoundsUS)
		e.issInstr = m.Counter("iss.instr")
		e.issExecs = m.Counter("iss.execs")
		e.bbHits = m.Counter("iss.bb.hits")
		e.bbMisses = m.Counter("iss.bb.misses")
		e.bbInval = m.Counter("iss.bb.inval")
		e.frontierG = m.Gauge("cte.frontier")
		e.coverG = m.Gauge("cte.cover_pcs")
		e.pathHist = m.Histogram("cte.path_us", obs.LatencyBoundsUS)
		e.tracer = cfg.Obs.Trace()
		solver.SetObs(cfg.Obs)
		if cfg.Cache.Queries != nil {
			cfg.Cache.Queries.SetObs(cfg.Obs)
		}
	}
	return e
}

// run explores until the queue is exhausted or a budget is hit,
// honoring cancellation: the sequential loop checks ctx between paths
// and the parallel pool checks it at claim time, so the run winds down
// within one path execution of ctx ending and still returns a complete
// Report of the work done.
func (e *engine) run(ctx context.Context) *Report {
	// Freeze the snapshot's copy-on-write pages once, up front: Clone
	// then never mutates shared state, making concurrent clones safe
	// (and the sequential path identical).
	e.Snapshot.Freeze()
	var rep *Report
	if w := e.Cfg.effectiveWorkers(); w > 1 {
		rep = e.runParallel(ctx, w)
	} else {
		rep = e.runSequential(ctx)
	}
	if e.Cfg.Cache.Queries != nil {
		st := e.Cfg.Cache.Queries.Stats()
		rep.Cache = &st
	}
	return rep
}

// pathResult is everything one executed path contributes back to the
// shared exploration state. It is produced without touching shared
// mutable state, so workers can build it outside the run lock.
type pathResult struct {
	core         *iss.Core
	instrs       uint64
	children     []Input // sat models, not yet deduped; Score filled by the merger
	sat          int
	unsat        int
	unknown      int
	forked       bool // this path resumed a checkpoint (suffix-only execution)
	forkRestarts int  // children that fell back to restart (no safe checkpoint)
}

// executePath clones the snapshot, runs one input and solves its trace
// conditions with the given solver. Only the (frozen) snapshot and the
// internally-locked builder are shared; the caller merges the result
// under its own synchronization. pathID is the claim-order index used
// for trace events (it matches Report path indices only at Workers<=1).
func (e *engine) executePath(in Input, solver *smt.Solver, pathID int) pathResult {
	core := in.Fork
	forked := core != nil
	if !forked {
		core = e.Snapshot.Clone()
		core.Input = in.Assignment
		core.Bound = in.Bound
	}
	core.CaptureForks = e.Cfg.Fork.Enabled
	core.ForkMinPrefix = e.Cfg.Fork.MinPrefix
	core.ObsInstr = e.issInstr
	core.ObsExecs = e.issExecs
	core.ObsBBHits = e.bbHits
	core.ObsBBMisses = e.bbMisses
	core.ObsBBInval = e.bbInval
	if e.Cfg.Explore.Strategy == Coverage || e.Cfg.Explore.TrackCoverage {
		core.TrackCoverage = true
	}
	if e.Cfg.Explore.TraceDepth > 0 {
		core.TraceDepth = e.Cfg.Explore.TraceDepth
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Ev: obs.EvPathStart, Path: pathID})
	}
	pathStart := time.Now()
	// Count only instructions executed during this run (the snapshot may
	// already carry pre-executed initialization, per the clone-after-init
	// optimization).
	// For a forked path InstrCount already covers the inherited prefix, so
	// this counts only the re-executed suffix — the saving fork mode buys.
	startInstr := core.InstrCount
	core.Run(e.Cfg.Budget.MaxInstrPerRun)
	res := pathResult{core: core, instrs: core.InstrCount - startInstr, forked: forked}
	dur := time.Since(pathStart)
	e.pathHist.ObserveDuration(dur)
	if forked {
		e.forkSuffixHist.Observe(int64(res.instrs))
	}
	if e.tracer != nil {
		status := "ok"
		if core.Err != nil {
			status = core.Err.Kind.String()
		} else if core.Exited {
			status = "exit"
		}
		e.tracer.Emit(obs.Event{Ev: obs.EvPathEnd, Path: pathID,
			DurUS: dur.Microseconds(), N: int64(res.instrs), Result: status})
	}

	if e.Cfg.StopOnError {
		if f, prune := findingOf(core, 0); f != nil && !prune {
			// The run stops here anyway; skip the solver work.
			return res
		}
	}
	for _, tc := range core.Trace {
		conds := make([]*smt.Expr, 0, tc.EPCLen+1)
		conds = append(conds, core.EPC[:tc.EPCLen]...)
		conds = append(conds, tc.Cond)
		var sat, unknown bool
		var model smt.Assignment
		if e.Cfg.Cache.Queries != nil {
			// The incumbent input satisfied the whole prefix; passing it
			// as the hint enables independence slicing in the cache.
			sat, model, unknown = e.Cfg.Cache.Queries.Check(solver, conds, in.Assignment)
		} else {
			sat, model, unknown = solver.Check(conds...)
		}
		switch {
		case unknown:
			res.unknown++
		case !sat:
			res.unsat++
		default:
			res.sat++
			ch := Input{
				Assignment: model,
				Bound:      tc.SiteIdx + 1,
				Gen:        in.Gen + 1,
			}
			if e.Cfg.Fork.Enabled {
				// Resume from the divergence checkpoint; a nil fork means
				// capture was skipped at an unsafe site and the child
				// restarts from the snapshot instead.
				if fc := core.Fork(tc.SiteIdx, model, tc.SiteIdx+1); fc != nil {
					ch.Fork = fc
				} else {
					res.forkRestarts++
				}
			}
			res.children = append(res.children, ch)
		}
	}
	return res
}

// findingOf classifies a halted core: a Finding for a hard error, prune
// for an assume failure, neither for clean exits and budget exhaustion.
func findingOf(core *iss.Core, path int) (f *Finding, prune bool) {
	if core.Err == nil {
		return nil, false
	}
	switch core.Err.Kind {
	case iss.ErrAssumeFail:
		return nil, true
	case iss.ErrLimit:
		// Budget exhaustion is not a bug; the paper bounds the search
		// the same way (switch after one packet).
		return nil, false
	}
	return &Finding{
		Err:    core.Err,
		Input:  core.Input,
		Path:   path,
		Output: core.Output,
		Instrs: core.InstrCount,
		Trace:  core.RecentTrace(),
	}, false
}

// childKey is the (bound, assignment) dedup key of a pending input.
func childKey(b *smt.Builder, in Input) string {
	return fmt.Sprintf("%d|%s", in.Bound, DescribeInput(b, in.Assignment))
}

// runSequential is the deterministic single-worker engine.
func (e *engine) runSequential(ctx context.Context) *Report {
	start := time.Now()
	rep := &Report{Workers: 1}
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 1))

	front := newFrontier(e.Cfg.Explore.Strategy, rng)
	globalCover := make(map[uint32]struct{})
	seen := map[string]bool{} // dedup of (bound, assignment) pairs
	e.seedFrontier(front, seen)

	for front.len() > 0 {
		if ctx.Err() != nil {
			rep.Stopped = "canceled"
			break
		}
		if e.Cfg.Budget.MaxPaths > 0 && rep.Paths >= e.Cfg.Budget.MaxPaths {
			rep.Stopped = "path-budget"
			break
		}
		if e.Cfg.Budget.Timeout > 0 && time.Since(start) > e.Cfg.Budget.Timeout {
			rep.Stopped = "timeout"
			break
		}
		in, ok := front.pop()
		if !ok {
			break
		}
		res := e.executePath(in, e.Solver, rep.Paths)
		core := res.core
		rep.Paths++
		e.obsPaths.Inc()
		rep.TotalInstr += res.instrs
		if res.forked {
			rep.Forked++
			e.obsForks.Inc()
		}
		rep.ForkRestarts += res.forkRestarts
		e.obsForkRestarts.Add(int64(res.forkRestarts))
		if e.OnPath != nil {
			e.OnPath(rep.Paths-1, core)
		}

		// Coverage accounting: score is the number of newly discovered
		// PCs on this path; children inherit it.
		var score float64
		if core.TrackCoverage {
			for pc := range core.Coverage {
				if _, ok := globalCover[pc]; !ok {
					globalCover[pc] = struct{}{}
					score++
				}
			}
			e.coverG.Set(int64(len(globalCover)))
		}

		stopOnErr := false
		if f, prune := findingOf(core, rep.Paths-1); prune {
			rep.Pruned++
			e.obsPruned.Inc()
		} else if f != nil {
			rep.Findings = append(rep.Findings, *f)
			e.recordFinding(f)
			stopOnErr = e.Cfg.StopOnError
		}

		rep.SatTCs += res.sat
		rep.UnsatTCs += res.unsat
		rep.UnknownTCs += res.unknown
		e.obsSat.Add(int64(res.sat))
		e.obsUnsat.Add(int64(res.unsat))
		e.obsUnknown.Add(int64(res.unknown))
		for _, ch := range res.children {
			key := childKey(e.Builder, ch)
			if seen[key] {
				continue
			}
			seen[key] = true
			ch.Score = score
			front.push(ch)
		}
		e.frontierG.Set(int64(front.len()))
		if stopOnErr {
			rep.Stopped = "stop-on-error"
			break
		}
	}
	rep.Exhausted = rep.Stopped == "" && front.len() == 0
	if rep.Stopped == "" && rep.Exhausted {
		rep.Stopped = "exhausted"
	}
	rep.Covered = globalCover
	rep.WallTime = time.Since(start)
	e.fillSolverStats(rep)
	e.exportFrontier(front, rep)
	return rep
}

// seedFrontier fills a fresh frontier from Explore.Roots (dedup-seeded
// so a later child identical to a root is dropped), or with the default
// empty-assignment root when no explicit roots were configured.
func (e *engine) seedFrontier(front *frontier, seen map[string]bool) {
	if len(e.Cfg.Explore.Roots) == 0 {
		front.push(Input{Assignment: smt.Assignment{}})
		return
	}
	for _, r := range e.Cfg.Explore.Roots {
		if seen != nil {
			seen[childKey(e.Builder, r)] = true
		}
		front.push(r)
	}
}

// exportFrontier drains the unexplored queue into rep.Frontier when
// Explore.ExportFrontier is set. Fork checkpoints are process-local and
// dropped; an importing engine restarts those inputs from its snapshot.
func (e *engine) exportFrontier(front *frontier, rep *Report) {
	if !e.Cfg.Explore.ExportFrontier {
		return
	}
	rep.Frontier = make([]Input, 0, front.len())
	for {
		in, ok := front.pop()
		if !ok {
			break
		}
		in.Fork = nil
		rep.Frontier = append(rep.Frontier, in)
	}
}

// recordFinding mirrors one finding into the observability layer.
func (e *engine) recordFinding(f *Finding) {
	e.obsFindings.Inc()
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Ev: obs.EvFinding, Path: f.Path,
			PC: f.Err.PC, Err: f.Err.Error()})
	}
}

func (e *engine) fillSolverStats(rep *Report) {
	rep.Queries = e.Solver.Stats.Queries
	rep.SolverTime = e.Solver.Stats.SolverTime
}

// DescribeInput renders an input assignment with variable names, sorted,
// for stable test output and tool display.
func DescribeInput(b *smt.Builder, in smt.Assignment) string {
	type kv struct {
		name string
		val  uint64
	}
	var items []kv
	for id, v := range in {
		if id < b.NumVars() {
			items = append(items, kv{b.VarName(id), v})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	s := "{"
	for i, it := range items {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", it.name, it.val)
	}
	return s + "}"
}
