// Package cte implements the concolic exploration engine of the paper
// (§3.1.1): it repeatedly clones the VP, executes an input, collects the
// trace conditions emitted by the concolic ISS, solves each satisfiable
// TC into a new input, and schedules inputs according to a search
// strategy. Generational bounds (à la SAGE) prevent re-exploration of
// already-covered path prefixes.
package cte

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// Strategy selects which pending input to execute next.
type Strategy int

const (
	// BFS explores inputs in generation order (the paper's default
	// engine has no sophisticated heuristics; FIFO matches it closest).
	BFS Strategy = iota
	// DFS dives into the most recently generated input first.
	DFS
	// Random picks uniformly among pending inputs (seeded, reproducible).
	Random
	// Coverage prefers inputs whose parent path discovered new code
	// (paper §5, future work item 3).
	Coverage
)

func (s Strategy) String() string {
	switch s {
	case BFS:
		return "bfs"
	case DFS:
		return "dfs"
	case Random:
		return "random"
	case Coverage:
		return "coverage"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Input is one pending test case: a model for the symbolic variables
// plus the generational bound below which no TCs are re-emitted.
type Input struct {
	Assignment smt.Assignment
	Bound      int
	Gen        int     // generation (parent's Gen+1)
	Score      float64 // coverage score inherited from the parent path
}

// Finding is an error uncovered during exploration.
type Finding struct {
	Err    *iss.SimError
	Input  smt.Assignment
	Path   int // index of the path that hit the error
	Output []byte
	Instrs uint64
	Trace  []iss.TraceEntry // last instructions, when TraceDepth was set
}

func (f Finding) String() string {
	return fmt.Sprintf("path %d: %v (input %v)", f.Path, f.Err, f.Input)
}

// Options tunes one exploration run.
type Options struct {
	MaxPaths       int           // stop after this many executed paths (0 = unlimited)
	MaxInstrPerRun uint64        // per-path instruction budget (0 = snapshot default)
	Timeout        time.Duration // wall-clock budget (0 = unlimited)
	Strategy       Strategy
	StopOnError    bool  // stop at the first finding (paper §4.2.3 workflow)
	Seed           int64 // for the Random strategy
	// TrackCoverage aggregates executed PCs across all paths into
	// Report.Covered (implied by the Coverage strategy).
	TrackCoverage bool
	// TraceDepth enables the per-core diagnostic instruction ring (the
	// finding's last instructions are exposed via Finding.Trace).
	TraceDepth int
}

// Report aggregates the statistics the paper's tables use.
type Report struct {
	Paths      int           // #paths column
	Queries    int           // #queries column
	SolverTime time.Duration // stime column
	WallTime   time.Duration // time column
	TotalInstr uint64        // #instr column (combined over all paths)
	SatTCs     int
	UnsatTCs   int
	Findings   []Finding
	Pruned     int
	Exhausted  bool // queue drained (full exploration)
	// Covered holds every PC executed on any path (when
	// Options.TrackCoverage or the Coverage strategy is active).
	Covered map[uint32]struct{}
}

func (r *Report) String() string {
	return fmt.Sprintf("paths=%d queries=%d stime=%.2fs time=%.2fs instr=%d findings=%d",
		r.Paths, r.Queries, r.SolverTime.Seconds(), r.WallTime.Seconds(), r.TotalInstr, len(r.Findings))
}

// Engine drives concolic exploration from a VP snapshot.
type Engine struct {
	Builder  *smt.Builder
	Solver   *smt.Solver
	Snapshot *iss.Core
	Opt      Options

	// OnPath, when set, observes every executed core (testing hook and
	// tool output).
	OnPath func(path int, core *iss.Core)
}

// New creates an engine around a prepared VP snapshot. The snapshot is
// never mutated; every path runs on a clone (paper §3.1.1).
func New(snapshot *iss.Core, opt Options) *Engine {
	return &Engine{
		Builder:  snapshot.B,
		Solver:   smt.NewSolver(snapshot.B),
		Snapshot: snapshot,
		Opt:      opt,
	}
}

// Run explores until the queue is exhausted or a budget is hit.
func (e *Engine) Run() *Report {
	start := time.Now()
	rep := &Report{}
	rng := rand.New(rand.NewSource(e.Opt.Seed + 1))

	queue := []Input{{Assignment: smt.Assignment{}}}
	globalCover := make(map[uint32]struct{})
	seen := map[string]bool{} // dedup of (bound, assignment) pairs

	for len(queue) > 0 {
		if e.Opt.MaxPaths > 0 && rep.Paths >= e.Opt.MaxPaths {
			break
		}
		if e.Opt.Timeout > 0 && time.Since(start) > e.Opt.Timeout {
			break
		}
		in := e.pick(&queue, rng)

		core := e.Snapshot.Clone()
		core.Input = in.Assignment
		core.Bound = in.Bound
		if e.Opt.Strategy == Coverage || e.Opt.TrackCoverage {
			core.TrackCoverage = true
		}
		if e.Opt.TraceDepth > 0 {
			core.TraceDepth = e.Opt.TraceDepth
		}
		// Count only instructions executed during this run (the
		// snapshot may already carry pre-executed initialization, per
		// the clone-after-init optimization).
		startInstr := core.InstrCount
		core.Run(e.Opt.MaxInstrPerRun)
		rep.Paths++
		rep.TotalInstr += core.InstrCount - startInstr
		if e.OnPath != nil {
			e.OnPath(rep.Paths-1, core)
		}

		// Coverage accounting: score is the number of newly discovered
		// PCs on this path; children inherit it.
		var score float64
		if core.TrackCoverage {
			for pc := range core.Coverage {
				if _, ok := globalCover[pc]; !ok {
					globalCover[pc] = struct{}{}
					score++
				}
			}
		}

		if core.Err != nil {
			switch core.Err.Kind {
			case iss.ErrAssumeFail:
				rep.Pruned++
			case iss.ErrLimit:
				// Budget exhaustion is not a bug; the paper bounds the
				// search the same way (switch after one packet).
			default:
				rep.Findings = append(rep.Findings, Finding{
					Err:    core.Err,
					Input:  core.Input,
					Path:   rep.Paths - 1,
					Output: core.Output,
					Instrs: core.InstrCount,
					Trace:  core.RecentTrace(),
				})
				if e.Opt.StopOnError {
					rep.Covered = globalCover
					rep.WallTime = time.Since(start)
					e.fillSolverStats(rep)
					return rep
				}
			}
		}

		// Solve each emitted trace condition into a new input.
		for _, tc := range core.Trace {
			conds := make([]*smt.Expr, 0, tc.EPCLen+1)
			conds = append(conds, core.EPC[:tc.EPCLen]...)
			conds = append(conds, tc.Cond)
			sat, model, unknown := e.Solver.Check(conds...)
			if unknown {
				rep.UnsatTCs++
				continue
			}
			if !sat {
				rep.UnsatTCs++
				continue
			}
			rep.SatTCs++
			key := fmt.Sprintf("%d|%s", tc.SiteIdx+1, DescribeInput(e.Builder, model))
			if seen[key] {
				continue
			}
			seen[key] = true
			queue = append(queue, Input{
				Assignment: model,
				Bound:      tc.SiteIdx + 1,
				Gen:        in.Gen + 1,
				Score:      score,
			})
		}
	}
	rep.Exhausted = len(queue) == 0
	rep.Covered = globalCover
	rep.WallTime = time.Since(start)
	e.fillSolverStats(rep)
	return rep
}

func (e *Engine) fillSolverStats(rep *Report) {
	rep.Queries = e.Solver.Stats.Queries
	rep.SolverTime = e.Solver.Stats.SolverTime
}

// pick removes and returns the next input per the configured strategy.
func (e *Engine) pick(queue *[]Input, rng *rand.Rand) Input {
	q := *queue
	idx := 0
	switch e.Opt.Strategy {
	case BFS:
		idx = 0
	case DFS:
		idx = len(q) - 1
	case Random:
		idx = rng.Intn(len(q))
	case Coverage:
		// Highest score first; ties broken by earliest generation.
		best := 0
		for i := 1; i < len(q); i++ {
			if q[i].Score > q[best].Score ||
				(q[i].Score == q[best].Score && q[i].Gen < q[best].Gen) {
				best = i
			}
		}
		idx = best
	}
	in := q[idx]
	*queue = append(q[:idx], q[idx+1:]...)
	return in
}

// DescribeInput renders an input assignment with variable names, sorted,
// for stable test output and tool display.
func DescribeInput(b *smt.Builder, in smt.Assignment) string {
	type kv struct {
		name string
		val  uint64
	}
	var items []kv
	for id, v := range in {
		if id < b.NumVars() {
			items = append(items, kv{b.VarName(id), v})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	s := "{"
	for i, it := range items {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", it.name, it.val)
	}
	return s + "}"
}
