package cte

import (
	"context"
	"fmt"
	"time"

	"rvcte/internal/fuzz"
	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
)

// Mode selects which exploration engine a Session runs.
type Mode int

const (
	// ModeConcolic is the paper's pure concolic engine: every path runs
	// fully symbolically and every trace condition is solved.
	ModeConcolic Mode = iota
	// ModeHybrid is the Driller-style campaign: cheap concrete fuzzing
	// with concolic branch-solving when coverage stalls.
	ModeHybrid
	// ModeBMC is the bounded-model-checking backend: all paths are
	// symbolically executed at once up to a depth bound and each bug
	// site becomes one reachability query (internal/bmc).
	ModeBMC
)

func (m Mode) String() string {
	switch m {
	case ModeConcolic:
		return "concolic"
	case ModeHybrid:
		return "hybrid"
	case ModeBMC:
		return "bmc"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Budget bounds a run along every axis; zero values mean unlimited
// (except MaxInstrPerRun, where zero selects the snapshot's default).
type Budget struct {
	Timeout        time.Duration // wall-clock budget
	MaxPaths       int           // concolic: executed-path budget
	MaxInstrPerRun uint64        // per-execution instruction budget
	// MaxConflictsPerQuery bounds each individual solver query; a query
	// exceeding it counts as an unknown TC instead of blocking the run.
	MaxConflictsPerQuery int
	MaxExecs             uint64 // hybrid: concrete-execution budget
	MaxEscalations       int    // hybrid: concolic escalation budget
}

// Common is the configuration core shared by both engines.
type Common struct {
	// Workers sizes the worker pool: exploration workers in concolic
	// mode, fuzz executors plus flip-solve workers in hybrid mode. 0 or
	// 1 is sequential and deterministic; AutoWorkers picks NumCPU.
	Workers int
	Budget  Budget
	// Cache, when non-nil, is the SMT query cache consulted before any
	// solver call, shared by every worker (internally synchronized).
	Cache *qcache.Cache
	// Strategy orders the concolic frontier (BFS/DFS/Random/Coverage).
	// Hybrid mode ignores it (the corpus energy schedule decides).
	Strategy Strategy
	// Obs, when non-nil, wires the whole run — engines, solvers, cache,
	// fuzzer, ISS — into one observability bundle; the final Report
	// carries its snapshot.
	Obs         *obs.Obs
	Seed        int64 // PRNG seed; runs are reproducible for a fixed seed at Workers <= 1
	StopOnError bool  // stop at the first finding (paper §4.2.3 workflow)
}

// FuzzConfig tunes hybrid mode; zero values select the documented
// defaults. Concolic mode ignores it.
type FuzzConfig struct {
	// Batch is the number of concrete executions between stall checks
	// (default 500). StallExecs is the number of executions without new
	// coverage that triggers a concolic escalation (default Batch).
	Batch      int
	StallExecs uint64
	MapBits    int // edge map size (log2; default 16)
	// MaxFlipsPerEscalation bounds the branch flips solved per
	// escalation (default 64). DryEscalations stops the run after this
	// many consecutive fruitless escalations (default 3).
	MaxFlipsPerEscalation int
	DryEscalations        int
	// Seeds are initial corpus inputs (e.g. a persisted corpus dir).
	Seeds [][]byte
}

// Config is the unified configuration of a Session: the Common core
// plus per-mode extensions. It replaces the Options/HybridOptions split.
type Config struct {
	Common
	Mode Mode

	// Concolic-mode extensions.
	TrackCoverage bool // aggregate executed PCs into Report.Covered
	TraceDepth    int  // diagnostic instruction ring for findings
	// Fork resumes divergence checkpoints instead of re-executing path
	// prefixes from the snapshot (Options.Fork; cmd/cte -fork).
	Fork bool
	// ForkMinPrefix skips capture below this prefix length in
	// instructions (Options.ForkMinPrefix; cmd/cte -fork-min-prefix).
	ForkMinPrefix uint64
	// Roots seeds the frontier with explicit pending inputs and
	// ExportFrontier drains the unexplored queue into Report.Frontier —
	// the campaign coordinator's shard hand-off (Options.Roots /
	// Options.ExportFrontier).
	Roots          []Input
	ExportFrontier bool

	// Hybrid-mode extensions.
	Fuzz FuzzConfig

	// BMC-mode extensions.
	BMC BMCConfig
}

// engineOptions lowers a Config to the legacy Options the concolic
// engine runs on.
func (c Config) engineOptions() Options {
	return Options{
		MaxPaths:             c.Budget.MaxPaths,
		MaxInstrPerRun:       c.Budget.MaxInstrPerRun,
		Timeout:              c.Budget.Timeout,
		Strategy:             c.Strategy,
		StopOnError:          c.StopOnError,
		Seed:                 c.Seed,
		TrackCoverage:        c.TrackCoverage,
		TraceDepth:           c.TraceDepth,
		Fork:                 c.Fork,
		ForkMinPrefix:        c.ForkMinPrefix,
		Workers:              c.Workers,
		MaxConflictsPerQuery: c.Budget.MaxConflictsPerQuery,
		Cache:                c.Cache,
		Obs:                  c.Obs,
		Roots:                c.Roots,
		ExportFrontier:       c.ExportFrontier,
	}
}

// FuzzStats is the hybrid-mode section of a Report: the concrete
// fuzzer's counters plus the concolic-assist driver's.
type FuzzStats struct {
	fuzz.Stats

	Escalations    int    // concolic escalations triggered by stalls
	ReplayedInstrs uint64 // instructions spent on concolic replays
	FlipsAttempted int    // flip queries issued
	Solves         int    // solved branch flips injected back
	// SkipInitInstrs is the shared initialization prefix executed once
	// and frozen into the working snapshot instead of being re-run on
	// every execution.
	SkipInitInstrs uint64
	// Corpus is the final corpus input data, in admission order (the
	// CLI persists it for corpus-dir warm starts).
	Corpus [][]byte `json:"-"`
}

// Session is the single entry point for both exploration engines: build
// one with NewSession and call Run. The snapshot is never mutated;
// every execution runs on a clone (paper §3.1.1).
type Session struct {
	snap *iss.Core
	cfg  Config

	// OnPath, when set before Run, observes every executed core in
	// concolic mode (same contract as Engine.OnPath: serialized, but
	// scheduling-ordered with Workers > 1). Hybrid mode ignores it.
	OnPath func(path int, core *iss.Core)
}

// NewSession prepares a run of cfg's Mode over the snapshot.
func NewSession(snapshot *iss.Core, cfg Config) *Session {
	if cfg.Cache != nil {
		cfg.Cache.SetObs(cfg.Obs)
	}
	return &Session{snap: snapshot, cfg: cfg}
}

// Run executes the session until a budget is hit, the state space is
// exhausted, or ctx is canceled (Report.Stopped says which). Workers
// and fuzz batches observe cancellation within one execution, so an
// interrupt tears the run down promptly with a complete Report of the
// work done so far.
func (s *Session) Run(ctx context.Context) *Report {
	start := time.Now()
	var rep *Report
	switch s.cfg.Mode {
	case ModeHybrid:
		rep = runHybrid(ctx, s.snap, s.cfg)
	case ModeBMC:
		rep = runBMC(ctx, s.snap, s.cfg)
	default:
		eng := New(s.snap, s.cfg.engineOptions())
		eng.OnPath = s.OnPath
		rep = eng.RunContext(ctx)
	}
	rep.Mode = s.cfg.Mode
	rep.Obs = s.cfg.Obs.Snapshot()
	if tr := s.cfg.Obs.Trace(); tr != nil {
		tr.Emit(obs.Event{Ev: obs.EvRunEnd,
			DurUS: time.Since(start).Microseconds(), Class: rep.Stopped})
	}
	return rep
}
