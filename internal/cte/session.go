package cte

import (
	"context"
	"fmt"
	"time"

	"rvcte/internal/fuzz"
	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
)

// Mode selects which exploration engine a Session runs.
type Mode int

const (
	// ModeConcolic is the paper's pure concolic engine: every path runs
	// fully symbolically and every trace condition is solved.
	ModeConcolic Mode = iota
	// ModeHybrid is the Driller-style campaign: cheap concrete fuzzing
	// with concolic branch-solving when coverage stalls.
	ModeHybrid
	// ModeBMC is the bounded-model-checking backend: all paths are
	// symbolically executed at once up to a depth bound and each bug
	// site becomes one reachability query (internal/bmc).
	ModeBMC
)

func (m Mode) String() string {
	switch m {
	case ModeConcolic:
		return "concolic"
	case ModeHybrid:
		return "hybrid"
	case ModeBMC:
		return "bmc"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Budget bounds a run along every axis; zero values mean unlimited
// (except MaxInstrPerRun, where zero selects the snapshot's default).
type Budget struct {
	Timeout        time.Duration // wall-clock budget
	MaxPaths       int           // concolic: executed-path budget
	MaxInstrPerRun uint64        // per-execution instruction budget
	// MaxConflictsPerQuery bounds each individual solver query; a query
	// exceeding it counts as an unknown TC instead of blocking the run.
	MaxConflictsPerQuery int
	MaxExecs             uint64 // hybrid: concrete-execution budget
	MaxEscalations       int    // hybrid: concolic escalation budget
}

// ExploreConfig tunes the concolic engine's search. The other modes
// ignore it (hybrid mode's corpus energy schedule orders its own work).
type ExploreConfig struct {
	// Strategy orders the concolic frontier (BFS/DFS/Random/Coverage).
	Strategy Strategy
	// TrackCoverage aggregates executed PCs into Report.Covered
	// (implied by the Coverage strategy).
	TrackCoverage bool
	// TraceDepth enables the per-core diagnostic instruction ring (the
	// finding's last instructions are exposed via Finding.Trace).
	TraceDepth int
	// Roots seeds the frontier with explicit pending inputs and
	// ExportFrontier drains the unexplored queue into Report.Frontier —
	// the campaign coordinator's shard hand-off.
	Roots          []Input
	ExportFrontier bool
}

// FuzzConfig tunes hybrid mode; zero values select the documented
// defaults. The other modes ignore it.
type FuzzConfig struct {
	// Batch is the number of concrete executions between stall checks
	// (default 500). StallExecs is the number of executions without new
	// coverage that triggers a concolic escalation (default Batch).
	Batch      int
	StallExecs uint64
	MapBits    int // edge map size per protocol-state bank (log2; default 16)
	// MaxFlipsPerEscalation bounds the branch flips solved per
	// escalation (default 64). DryEscalations stops the run after this
	// many consecutive fruitless escalations (default 3).
	MaxFlipsPerEscalation int
	DryEscalations        int
	// Seeds are initial corpus inputs (e.g. a persisted corpus dir).
	Seeds [][]byte
}

// CacheConfig wires shared caches into a run.
type CacheConfig struct {
	// Queries, when non-nil, is the SMT query cache consulted before
	// any solver call, shared by every worker (internally
	// synchronized).
	Queries *qcache.Cache
}

// ForkConfig tunes state forking (DESIGN.md "State forking").
type ForkConfig struct {
	// Enabled resumes divergence checkpoints instead of re-executing
	// path prefixes from the snapshot (cmd/cte -fork). For stateful
	// multi-packet guests this is also the cross-packet checkpointing:
	// a divergence inside packet k resumes with packets 1..k-1 already
	// replayed.
	Enabled bool
	// MinPrefix skips capture below this prefix length in instructions
	// (cmd/cte -fork-min-prefix).
	MinPrefix uint64
}

// ProtocolConfig describes a stateful multi-packet campaign: the
// session depth, per-packet symbolic sizing and the guest's
// protocol-state byte. The engines bank edge coverage by that state
// (state × edge product coverage) and re-read it at every guest store
// to it; StateAddr == 0 disables all of it (single-packet behavior).
type ProtocolConfig struct {
	// Packets is the session depth in packets (descriptive: the guest
	// build fixes the actual depth; reports and campaign wire specs
	// carry it).
	Packets int
	// PktMax holds the per-packet symbolic size caps (last repeats).
	PktMax []int
	// StateAddr is the guest address of the protocol-state byte
	// (usually a symbol like "sess_state" resolved via the ELF).
	StateAddr uint32
	// States is the number of protocol states; edge coverage gets one
	// bank per state.
	States int
	// Probe, when set, observes every protocol-state change at the
	// next instruction boundary — the inter-packet guest-state probe
	// (diagnostics, campaign progress displays).
	Probe func(core *iss.Core, state uint32)
}

// Config is the unified configuration of a Session: mode, budgets and
// shared knobs at the top level plus per-concern sub-configs.
type Config struct {
	Mode Mode
	// Workers sizes the worker pool: exploration workers in concolic
	// mode, fuzz executors plus flip-solve workers in hybrid mode. 0 or
	// 1 is sequential and deterministic; AutoWorkers picks NumCPU.
	Workers int
	Budget  Budget
	// Obs, when non-nil, wires the whole run — engines, solvers, cache,
	// fuzzer, ISS — into one observability bundle; the final Report
	// carries its snapshot.
	Obs         *obs.Obs
	Seed        int64 // PRNG seed; runs are reproducible for a fixed seed at Workers <= 1
	StopOnError bool  // stop at the first finding (paper §4.2.3 workflow)
	// Detectors names the iss bug-detector set attached to the
	// snapshot before the run ("heap-guard", "heap-uaf", ..., or "all").
	// nil keeps the snapshot's current set (iss.DefaultDetectors for a
	// fresh core).
	Detectors []string

	Explore  ExploreConfig
	Fuzz     FuzzConfig
	Cache    CacheConfig
	Fork     ForkConfig
	BMC      BMCConfig
	Protocol ProtocolConfig
}

// effectiveWorkers resolves Workers to a concrete pool size.
func (c Config) effectiveWorkers() int {
	if c.Workers < 0 {
		return autoWorkers()
	}
	if c.Workers == 0 {
		return 1
	}
	return c.Workers
}

// FuzzStats is the hybrid-mode section of a Report: the concrete
// fuzzer's counters plus the concolic-assist driver's.
type FuzzStats struct {
	fuzz.Stats

	Escalations    int    // concolic escalations triggered by stalls
	ReplayedInstrs uint64 // instructions spent on concolic replays
	FlipsAttempted int    // flip queries issued
	Solves         int    // solved branch flips injected back
	// SkipInitInstrs is the shared initialization prefix executed once
	// and frozen into the working snapshot instead of being re-run on
	// every execution.
	SkipInitInstrs uint64
	// Corpus is the final corpus input data, in admission order (the
	// CLI persists it for corpus-dir warm starts).
	Corpus [][]byte `json:"-"`
}

// Session is the single entry point for every exploration engine: build
// one with NewSession and call Run. The snapshot is never mutated after
// Run starts; every execution runs on a clone (paper §3.1.1).
type Session struct {
	snap *iss.Core
	cfg  Config
	err  error // deferred configuration error (unknown detector, ...)

	// OnPath, when set before Run, observes every executed core in
	// concolic mode (serialized, but scheduling-ordered with
	// Workers > 1). The other modes ignore it.
	OnPath func(path int, core *iss.Core)
}

// NewSession prepares a run of cfg's Mode over the snapshot, attaching
// the configured detector set and protocol-state coverage wiring to it.
// Configuration errors (an unknown detector name) surface as the
// Report.Stopped of the subsequent Run.
func NewSession(snapshot *iss.Core, cfg Config) *Session {
	if cfg.Cache.Queries != nil {
		cfg.Cache.Queries.SetObs(cfg.Obs)
	}
	s := &Session{snap: snapshot, cfg: cfg}
	if err := snapshot.AttachDetectorSet(cfg.Detectors); err != nil {
		s.err = err
	}
	if cfg.Protocol.StateAddr != 0 {
		snapshot.ProtoStateAddr = cfg.Protocol.StateAddr
		snapshot.ProtoStates = cfg.Protocol.States
		snapshot.ProtoProbe = cfg.Protocol.Probe
	}
	return s
}

// Run executes the session until a budget is hit, the state space is
// exhausted, or ctx is canceled (Report.Stopped says which). Workers
// and fuzz batches observe cancellation within one execution, so an
// interrupt tears the run down promptly with a complete Report of the
// work done so far.
func (s *Session) Run(ctx context.Context) *Report {
	start := time.Now()
	var rep *Report
	switch {
	case s.err != nil:
		rep = &Report{Stopped: "config: " + s.err.Error()}
	case s.cfg.Mode == ModeHybrid:
		rep = runHybrid(ctx, s.snap, s.cfg)
	case s.cfg.Mode == ModeBMC:
		rep = runBMC(ctx, s.snap, s.cfg)
	default:
		eng := newEngine(s.snap, s.cfg)
		eng.OnPath = s.OnPath
		rep = eng.run(ctx)
	}
	rep.Mode = s.cfg.Mode
	rep.Detectors = s.snap.DetectorKinds()
	rep.Obs = s.cfg.Obs.Snapshot()
	if tr := s.cfg.Obs.Trace(); tr != nil {
		tr.Emit(obs.Event{Ev: obs.EvRunEnd,
			DurUS: time.Since(start).Microseconds(), Class: rep.Stopped})
	}
	return rep
}
