package cte

import (
	"container/heap"
	"math/rand"
)

// frontier holds the pending inputs of one exploration run and yields
// them according to the configured strategy. BFS and DFS pop in O(1),
// Random swap-removes in O(1), and Coverage uses a container/heap
// priority queue (O(log n) per operation) ordered by score descending,
// then generation ascending, then insertion order — the same element the
// previous O(n) scan-and-splice selected, without the linear cost that
// multiplies once parallel workers raise queue pressure.
//
// A frontier is not internally synchronized; the parallel engine guards
// it with the shared run mutex.
type frontier struct {
	strategy Strategy
	rng      *rand.Rand // Random strategy only

	list []Input // BFS (FIFO via head), DFS (LIFO), Random
	head int     // BFS consumption index into list

	pq  covQueue // Coverage
	seq int      // insertion counter for stable Coverage tie-breaks
}

func newFrontier(s Strategy, rng *rand.Rand) *frontier {
	return &frontier{strategy: s, rng: rng}
}

func (f *frontier) len() int {
	if f.strategy == Coverage {
		return len(f.pq)
	}
	return len(f.list) - f.head
}

func (f *frontier) push(in Input) {
	if f.strategy == Coverage {
		heap.Push(&f.pq, covItem{in: in, seq: f.seq})
		f.seq++
		return
	}
	f.list = append(f.list, in)
}

// pop yields the next input per the strategy; ok is false on an empty
// frontier. The guarded contract replaces the previous panics that an
// empty frontier produced for Random (rand.Intn(0)) and Coverage (heap
// pop on an empty heap) — callers race-prone enough to pop without a
// len() check (the parallel engine's claim loop) get a clean signal
// instead of a strategy-dependent crash.
func (f *frontier) pop() (Input, bool) {
	if f.len() == 0 {
		return Input{}, false
	}
	switch f.strategy {
	case Coverage:
		return heap.Pop(&f.pq).(covItem).in, true
	case DFS:
		in := f.list[len(f.list)-1]
		f.list[len(f.list)-1] = Input{}
		f.list = f.list[:len(f.list)-1]
		return in, true
	case Random:
		i := f.rng.Intn(len(f.list))
		in := f.list[i]
		f.list[i] = f.list[len(f.list)-1]
		f.list[len(f.list)-1] = Input{}
		f.list = f.list[:len(f.list)-1]
		return in, true
	default: // BFS
		in := f.list[f.head]
		f.list[f.head] = Input{} // release the model for GC
		f.head++
		// Compact once the dead prefix dominates, keeping pops O(1)
		// amortized without unbounded slice growth.
		if f.head > 64 && f.head > len(f.list)/2 {
			f.list = append(f.list[:0:0], f.list[f.head:]...)
			f.head = 0
		}
		return in, true
	}
}

// covItem is one Coverage-strategy queue entry.
type covItem struct {
	in  Input
	seq int
}

// covQueue implements heap.Interface: highest score first, ties broken
// by earliest generation, then earliest insertion.
type covQueue []covItem

func (q covQueue) Len() int { return len(q) }

func (q covQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.in.Score != b.in.Score {
		return a.in.Score > b.in.Score
	}
	if a.in.Gen != b.in.Gen {
		return a.in.Gen < b.in.Gen
	}
	return a.seq < b.seq
}

func (q covQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *covQueue) Push(x any) { *q = append(*q, x.(covItem)) }

func (q *covQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = covItem{}
	*q = old[:n-1]
	return it
}
