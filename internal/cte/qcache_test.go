package cte

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// cachedOptions returns cfg with a fresh cache for the engine's builder.
func cachedOptions(snap *iss.Core, cfg Config) Config {
	cfg.Cache.Queries = qcache.New(snap.B, qcache.Options{})
	return cfg
}

// stormSrc is the cache-friendly workload: three symbolic bytes, one
// independent threshold branch per byte (separable constraint groups —
// slicing and per-group reuse), then overlapping equality branches that
// chain neighbours together. The same flipped conditions recur under
// many different prefixes, which is what the cache exploits.
const stormSrc = `
_start:
	la a0, x
	li a1, 3
	la a2, name
	li a7, 1
	ecall
	la a0, x
	lbu s0, 0(a0)
	lbu s1, 1(a0)
	lbu s2, 2(a0)
	li t0, 100
	li a0, 0
	bgeu t0, s0, skip0
	addi a0, a0, 1
skip0:
	bgeu t0, s1, skip1
	addi a0, a0, 1
skip1:
	bgeu t0, s2, skip2
	addi a0, a0, 1
skip2:
	bne s0, s1, ne01
	addi a0, a0, 8
ne01:
	bne s1, s2, ne12
	addi a0, a0, 16
ne12:
	li a7, 0
	ecall
.data
x: .byte 0, 0, 0
name: .asciz "x"
`

// TestCachedMatchesUncached: the query cache is a pure solver
// accelerator — it must not change the explored path set, the TC
// classification or the findings, sequentially or under the worker pool,
// while strictly reducing the number of SAT queries.
func TestCachedMatchesUncached(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			plain, plainExits := runExits(t, stormSrc, Config{Workers: workers, Budget: Budget{MaxPaths: 200}})

			snap := snapshot(t, stormSrc)
			eng := NewSession(snap, cachedOptions(snap, Config{Workers: workers, Budget: Budget{MaxPaths: 200}}))
			var cachedExits []uint32
			var mu sync.Mutex
			eng.OnPath = func(_ int, c *iss.Core) {
				mu.Lock()
				cachedExits = append(cachedExits, c.ExitCode)
				mu.Unlock()
			}
			cached := eng.Run(context.Background())

			if !plain.Exhausted || !cached.Exhausted {
				t.Fatalf("both runs must exhaust (plain=%v cached=%v)", plain.Exhausted, cached.Exhausted)
			}
			if plain.Paths != cached.Paths {
				t.Errorf("paths: plain=%d cached=%d", plain.Paths, cached.Paths)
			}
			if plain.SatTCs != cached.SatTCs || plain.UnsatTCs != cached.UnsatTCs || plain.UnknownTCs != cached.UnknownTCs {
				t.Errorf("TC classification differs: plain=%v cached=%v", plain, cached)
			}
			if len(plain.Findings) != len(cached.Findings) {
				t.Errorf("findings: plain=%d cached=%d", len(plain.Findings), len(cached.Findings))
			}
			exitCount := func(exits []uint32) map[uint32]int {
				m := map[uint32]int{}
				for _, e := range exits {
					m[e]++
				}
				return m
			}
			pc, cc := exitCount(plainExits), exitCount(cachedExits)
			if len(pc) != len(cc) {
				t.Errorf("exit multisets differ: plain=%v cached=%v", pc, cc)
			}
			for e, n := range pc {
				if cc[e] != n {
					t.Errorf("exit %d: plain=%d cached=%d", e, n, cc[e])
				}
			}
			if cached.Queries >= plain.Queries {
				t.Errorf("cache must strictly reduce SAT queries: plain=%d cached=%d", plain.Queries, cached.Queries)
			}
			if cached.Cache == nil || cached.Cache.Queries == 0 {
				t.Fatalf("cached report must carry cache stats: %+v", cached.Cache)
			}
			if hits := cached.Cache.Hits + cached.Cache.EvalHits + cached.Cache.SubsumeHits; hits == 0 {
				t.Errorf("exploration of overlapping prefixes must hit the cache (%+v)", cached.Cache)
			}
			if plain.Cache != nil {
				t.Error("uncached report must not carry cache stats")
			}
		})
	}
}

// TestSharedCacheHitModelsValid is the engine-level correctness property
// test of the satellite task: with one cache shared by four workers
// (run under -race via `make verify`), every cache-served sat answer
// must carry a model that satisfies the queried constraint set, audited
// with the cache-independent qcache.ValidateModel.
func TestSharedCacheHitModelsValid(t *testing.T) {
	snap := snapshot(t, stormSrc)
	opt := cachedOptions(snap, Config{Workers: 4, Budget: Budget{MaxPaths: 200}})

	var mu sync.Mutex
	audited, cacheServed := 0, 0
	opt.Cache.Queries.OnAnswer = func(conds []*smt.Expr, sat bool, model smt.Assignment, fromCache bool) {
		mu.Lock()
		audited++
		if fromCache {
			cacheServed++
		}
		mu.Unlock()
		if sat && !qcache.ValidateModel(conds, model) {
			t.Errorf("cache answer (fromCache=%v) carries an invalid model %v", fromCache, model)
		}
	}
	rep := NewSession(snap, opt).Run(context.Background())
	if audited == 0 || cacheServed == 0 {
		t.Fatalf("audit hook saw %d answers, %d cache-served (%v)", audited, cacheServed, rep)
	}
}

// TestCacheWarmStartEngine: persisting the cache and reloading it in a
// fresh process-equivalent (new builder, new snapshot, new engine)
// reduces the SAT queries of the second run.
func TestCacheWarmStartEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "counter.qcache")

	snap1 := snapshot(t, counterSrc)
	opt1 := cachedOptions(snap1, Config{Budget: Budget{MaxPaths: 100}})
	first := NewSession(snap1, opt1).Run(context.Background())
	if err := opt1.Cache.Queries.Save(path); err != nil {
		t.Fatal(err)
	}
	if first.Queries == 0 {
		t.Fatalf("cold run must issue SAT queries: %v", first)
	}

	snap2 := snapshot(t, counterSrc)
	opt2 := cachedOptions(snap2, Config{Budget: Budget{MaxPaths: 100}})
	if err := opt2.Cache.Queries.Load(path); err != nil {
		t.Fatal(err)
	}
	second := NewSession(snap2, opt2).Run(context.Background())
	if second.Paths != first.Paths {
		t.Errorf("warm run explored %d paths, cold %d", second.Paths, first.Paths)
	}
	if second.Queries >= first.Queries {
		t.Errorf("warm start must reduce SAT queries: first=%d second=%d", first.Queries, second.Queries)
	}
	if second.Cache.Loaded == 0 {
		t.Errorf("warm run loaded no entries: %+v", second.Cache)
	}
}

// TestCacheWithBudgetedSolver: unknown results pass through the cache
// uncached and keep being counted as UnknownTCs.
func TestCacheWithBudgetedSolver(t *testing.T) {
	snap := snapshot(t, mulGateSrc)
	opt := cachedOptions(snap, Config{Budget: Budget{MaxPaths: 20, MaxConflictsPerQuery: 1}})
	rep := NewSession(snap, opt).Run(context.Background())
	if rep.UnknownTCs == 0 {
		t.Errorf("budgeted factoring TC should stay unknown through the cache (%v)", rep)
	}
	if rep.UnsatTCs != 0 {
		t.Errorf("unknown results must not be miscounted as unsat (%v)", rep)
	}
	if rep.Cache.Unknowns == 0 {
		t.Errorf("cache must count passed-through unknowns (%+v)", rep.Cache)
	}
}
