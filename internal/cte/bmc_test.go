package cte

import (
	"context"
	"testing"

	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/qcache"
	"rvcte/internal/smt"
)

// guestSnap builds a named benchmark program into a VP snapshot (the
// asm-based snapshot() helper can't express the C benchmarks).
func guestSnap(t *testing.T, name string) *iss.Core {
	t.Helper()
	p, ok := guest.BenchProgram(name)
	if !ok {
		t.Fatalf("unknown bench program %q", name)
	}
	core, _, err := guest.NewCore(smt.NewBuilder(), p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return core
}

// TestBMCConcolicAgreement is the differential acceptance test: on
// storm-s at the same depth bound the BMC bug set must equal the
// concolic finding set, every sampled concolic path condition must be
// satisfiable under the BMC solver, and each sampled input must fall
// under exactly one of the unrolling's accounted guards.
func TestBMCConcolicAgreement(t *testing.T) {
	snap := guestSnap(t, "storm-s")
	cfg := Config{Cache: CacheConfig{
		Queries: qcache.New(snap.B, qcache.Options{}),
	}}
	cross, diff, err := BMCCrossCheck(context.Background(), snap, cfg, 32)
	if err != nil {
		t.Fatalf("cross-check: %v", err)
	}
	if !cross.Agree {
		t.Fatalf("engines disagree: extra=%v missed=%v", cross.ExtraInBMC, cross.MissedByBMC)
	}
	if len(cross.BMCBugs) != 1 || cross.BMCBugs[0].Kind != iss.ErrAssertFail {
		t.Fatalf("bug set = %v, want the one assert site", cross.BMCBugs)
	}
	if len(cross.BMCBugs) != len(cross.ConcolicBugs) {
		t.Fatalf("bug sets differ: bmc=%v concolic=%v", cross.BMCBugs, cross.ConcolicBugs)
	}
	if diff.Samples == 0 {
		t.Fatal("no path samples collected")
	}
	if diff.SatAgreed != diff.Samples {
		t.Errorf("only %d/%d sampled path conditions satisfiable", diff.SatAgreed, diff.Samples)
	}
	if cross.BMC.Complete && diff.Covered != diff.Samples {
		t.Errorf("only %d/%d sampled inputs covered by the guard partition", diff.Covered, diff.Samples)
	}
}

// TestSessionModeBMC: the Session front door. ModeBMC must produce a
// unified Report carrying the bmc section, the finding lowered to the
// common Finding shape, and an input that replays to the same error.
func TestSessionModeBMC(t *testing.T) {
	snap := guestSnap(t, "storm-s")
	rep := NewSession(snap, Config{Mode: ModeBMC}).Run(context.Background())
	if rep.Mode != ModeBMC {
		t.Fatalf("report mode = %v", rep.Mode)
	}
	if rep.BMC == nil {
		t.Fatal("report carries no BMC section")
	}
	if !rep.Exhausted {
		t.Fatalf("not exhausted: %q", rep.Stopped)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Fatalf("finding = %v, want assert", f.Err)
	}
	// The lowered input must concretely reproduce the bug on a clone.
	core := snap.Clone()
	core.Input = f.Input
	core.Run(snap.Cfg.MaxInstr)
	if core.Err == nil || core.Err.Kind != iss.ErrAssertFail || core.Err.PC != f.Err.PC {
		t.Fatalf("model input replays to %v, want assert at %#x", core.Err, f.Err.PC)
	}
}

// TestBMCDepthLadder: BMC.K=0 falls back to Budget.MaxInstrPerRun, then
// the snapshot default — and a tiny explicit K truncates.
func TestBMCDepthLadder(t *testing.T) {
	snap := guestSnap(t, "storm-s")
	if got := bmcDepth(snap, Config{}); got != int(snap.Cfg.MaxInstr) {
		t.Errorf("default depth = %d, want snapshot MaxInstr %d", got, snap.Cfg.MaxInstr)
	}
	if got := bmcDepth(snap, Config{Budget: Budget{MaxInstrPerRun: 77}}); got != 77 {
		t.Errorf("budget depth = %d, want 77", got)
	}
	if got := bmcDepth(snap, Config{BMC: BMCConfig{K: 9}}); got != 9 {
		t.Errorf("explicit depth = %d, want 9", got)
	}
	rep := NewSession(snap, Config{Mode: ModeBMC, BMC: BMCConfig{K: 20, NoReplay: true}}).
		Run(context.Background())
	if rep.BMC == nil || rep.BMC.Truncated == 0 {
		t.Fatalf("K=20 did not truncate (bmc=%+v)", rep.BMC)
	}
	if rep.Exhausted {
		t.Error("truncated run reported Exhausted")
	}
}
