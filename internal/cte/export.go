package cte

import (
	"fmt"
	"sort"

	"rvcte/internal/smt"
)

// Frontier export/import. A campaign coordinator (internal/campaign)
// shards the pending-input frontier across worker processes, so inputs
// must cross process boundaries. Variable ids are builder-local (they
// depend on creation order), so the wire form is keyed by variable
// *name* and carries the width, letting the importing side mint or
// resolve the variable with smt.Builder.Var — the same name-anchored
// scheme qcache persistence uses for cached models.

// WireVar is one named symbolic assignment in process-portable form.
type WireVar struct {
	Name  string `json:"n"`
	Width uint8  `json:"w"`
	Val   uint64 `json:"v"`
}

// WireInput is the process-portable form of one frontier Input: the
// solved variable assignment (by name), the generational TC bound and
// the generation. Fork checkpoints never travel — a live ISS core is
// process-local — so an imported input restarts from the snapshot.
type WireInput struct {
	Vars  []WireVar `json:"vars,omitempty"`
	Bound int       `json:"bound,omitempty"`
	Gen   int       `json:"gen,omitempty"`
}

// ExportInput serializes in for transfer to another process. Variables
// are sorted by name, so the wire form of a given input is canonical
// (WireKey depends on it).
func ExportInput(b *smt.Builder, in Input) WireInput {
	wi := WireInput{Bound: in.Bound, Gen: in.Gen}
	for id, v := range in.Assignment {
		if id < b.NumVars() {
			wi.Vars = append(wi.Vars, WireVar{Name: b.VarName(id), Width: b.VarWidth(id), Val: v})
		}
	}
	sort.Slice(wi.Vars, func(i, j int) bool { return wi.Vars[i].Name < wi.Vars[j].Name })
	return wi
}

// ImportInput resolves a wire input against the local builder, minting
// any variable the local process has not created yet (Var reuses
// existing names and enforces width agreement).
func ImportInput(b *smt.Builder, wi WireInput) Input {
	in := Input{Assignment: smt.Assignment{}, Bound: wi.Bound, Gen: wi.Gen}
	for _, wv := range wi.Vars {
		v := b.Var(wv.Width, wv.Name)
		in.Assignment[int(v.Val)] = wv.Val
	}
	return in
}

// InputKey is the canonical dedup key of a pending input — the same
// (bound, sorted name=value assignment) key the engines dedup children
// by. Two processes agree on it for semantically identical inputs.
func InputKey(b *smt.Builder, in Input) string {
	return childKey(b, in)
}

// Key is the wire-side InputKey: computing it from the wire form yields
// exactly the key the exporting engine used, without needing a builder.
func (wi WireInput) Key() string {
	s := fmt.Sprintf("%d|{", wi.Bound)
	for i, wv := range wi.Vars {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", wv.Name, wv.Val)
	}
	return s + "}"
}
