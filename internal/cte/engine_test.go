package cte

import (
	"context"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

const ramBase = 0x80000000

func snapshot(t *testing.T, src string) *iss.Core {
	t.Helper()
	img, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b := smt.NewBuilder()
	c := iss.New(b, iss.Config{RamBase: ramBase, RamSize: 1 << 20, MaxInstr: 1_000_000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	return c
}

// twoPathSrc: one symbolic branch; exactly two paths exist.
const twoPathSrc = `
_start:
	la a0, x
	li a1, 4
	la a2, name
	li a7, 1
	ecall
	la a0, x
	lw a0, 0(a0)
	li a1, 5
	bltu a0, a1, small
	li a0, 100
	li a7, 0
	ecall
small:
	li a0, 50
	li a7, 0
	ecall
.data
x: .word 0
name: .asciz "x"
`

func TestExploreTwoPaths(t *testing.T) {
	eng := NewSession(snapshot(t, twoPathSrc), Config{Budget: Budget{MaxPaths: 10}})
	var exits []uint32
	eng.OnPath = func(_ int, c *iss.Core) { exits = append(exits, c.ExitCode) }
	rep := eng.Run(context.Background())
	if rep.Paths != 2 {
		t.Fatalf("paths: %d want 2 (%v)", rep.Paths, rep)
	}
	if !rep.Exhausted {
		t.Error("queue must be exhausted")
	}
	seen := map[uint32]bool{}
	for _, e := range exits {
		seen[e] = true
	}
	if !seen[50] || !seen[100] {
		t.Errorf("both sides must be explored, exits=%v", exits)
	}
	if rep.Queries == 0 || rep.SolverTime <= 0 {
		t.Error("solver statistics missing")
	}
	if len(rep.Findings) != 0 {
		t.Errorf("no findings expected: %v", rep.Findings)
	}
}

// counterSrc loops while x > i, incrementing i: the number of paths
// scales with the bound, exercising generational dedup (each path must be
// explored exactly once).
const counterSrc = `
_start:
	la a0, x
	li a1, 1
	la a2, name
	li a7, 1
	ecall           # 1 symbolic byte
	la a0, x
	lbu s0, 0(a0)
	andi s0, s0, 7  # x in 0..7
	li s1, 0
loop:
	bgeu s1, s0, done
	addi s1, s1, 1
	j loop
done:
	mv a0, s1
	li a7, 0
	ecall
.data
x: .byte 0
name: .asciz "x"
`

func TestExploreCounterAllPaths(t *testing.T) {
	for _, strat := range []Strategy{BFS, DFS, Random, Coverage} {
		t.Run(strat.String(), func(t *testing.T) {
			eng := NewSession(snapshot(t, counterSrc), Config{Seed: 42, Budget: Budget{MaxPaths: 100}, Explore: ExploreConfig{Strategy: strat}})
			exits := map[uint32]int{}
			eng.OnPath = func(_ int, c *iss.Core) { exits[c.ExitCode]++ }
			rep := eng.Run(context.Background())
			// x&7 takes 8 values -> 8 distinct terminal loop counts.
			if len(exits) != 8 {
				t.Errorf("distinct exits: %d want 8 (%v)", len(exits), exits)
			}
			if !rep.Exhausted {
				t.Error("exploration must terminate")
			}
			// Generational bounds must prevent path blowup: at most
			// one path per distinct value plus a few masked duplicates.
			if rep.Paths > 20 {
				t.Errorf("too many paths: %d", rep.Paths)
			}
		})
	}
}

// assertBugSrc hides an assertion violation at x == 0x42.
const assertBugSrc = `
_start:
	la a0, x
	li a1, 1
	la a2, name
	li a7, 1
	ecall
	la a0, x
	lbu s0, 0(a0)
	li a1, 0x42
	xor a0, s0, a1
	snez a0, a0
	li a7, 3
	ecall           # assert(x != 0x42)
	li a0, 0
	li a7, 0
	ecall
.data
x: .byte 0
name: .asciz "x"
`

func TestFindAssertViolation(t *testing.T) {
	eng := NewSession(snapshot(t, assertBugSrc), Config{StopOnError: true, Budget: Budget{MaxPaths: 50}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("findings: %v", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Err.Kind != iss.ErrAssertFail {
		t.Errorf("kind: %v", f.Err.Kind)
	}
	b := eng.snap.B
	if v := b.Value(f.Input, "x[0]"); v != 0x42 {
		t.Errorf("violating input: %#x want 0x42", v)
	}
	if rep.Paths > 3 {
		t.Errorf("should find the bug within 2 paths, took %d", rep.Paths)
	}
}

func TestStopOnErrorFalseCollectsAndContinues(t *testing.T) {
	eng := NewSession(snapshot(t, assertBugSrc), Config{Budget: Budget{MaxPaths: 50}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("expected exactly one finding: %v", rep.Findings)
	}
	if !rep.Exhausted {
		t.Error("exploration should finish the queue")
	}
}

// memBugSrc: a symbolic index into a 4-element table with a missing
// bounds check; index 0xff drives the access out of legal memory.
const memBugSrc = `
_start:
	la a0, idx
	li a1, 1
	la a2, name
	li a7, 1
	ecall
	la a0, idx
	lbu s0, 0(a0)
	li a1, 4
	bltu s0, a1, inbounds   # bounds check exists but value is used raw below
inbounds:
	slli s0, s0, 22         # scale way out of RAM for large idx
	la a1, table
	add a1, a1, s0
	lw a0, 0(a1)
	li a7, 0
	ecall
.data
idx: .byte 0
name: .asciz "idx"
table: .word 1, 2, 3, 4
`

func TestFindIllegalAccess(t *testing.T) {
	eng := NewSession(snapshot(t, memBugSrc), Config{StopOnError: true, Budget: Budget{MaxPaths: 20}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("findings: %d (report %v)", len(rep.Findings), rep)
	}
	k := rep.Findings[0].Err.Kind
	if k != iss.ErrIllegalLoad && k != iss.ErrIllegalJump && k != iss.ErrMisaligned && k != iss.ErrIllegalStore {
		t.Errorf("kind: %v", k)
	}
}

func TestMaxPathsBudget(t *testing.T) {
	eng := NewSession(snapshot(t, counterSrc), Config{Budget: Budget{MaxPaths: 3}})
	rep := eng.Run(context.Background())
	if rep.Paths != 3 {
		t.Errorf("paths: %d want 3", rep.Paths)
	}
	if rep.Exhausted {
		t.Error("queue should not be exhausted at MaxPaths=3")
	}
}

func TestDescribeInput(t *testing.T) {
	b := smt.NewBuilder()
	b.Var(8, "a")
	b.Var(8, "b")
	s := DescribeInput(b, smt.Assignment{0: 5, 1: 7})
	if s != "{a=5, b=7}" {
		t.Errorf("describe: %q", s)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Paths: 2, Queries: 3}
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestEngineCoverageAndTrace(t *testing.T) {
	eng := NewSession(snapshot(t, assertBugSrc), Config{StopOnError: true, Budget: Budget{MaxPaths: 50}, Explore: ExploreConfig{TrackCoverage: true, TraceDepth: 8}})
	rep := eng.Run(context.Background())
	if len(rep.Findings) != 1 {
		t.Fatalf("findings: %v", rep.Findings)
	}
	if len(rep.Covered) == 0 {
		t.Error("coverage must be aggregated")
	}
	f := rep.Findings[0]
	if len(f.Trace) == 0 || len(f.Trace) > 8 {
		t.Fatalf("trace length: %d", len(f.Trace))
	}
	// The final traced instruction is the failing assert's ecall.
	last := f.Trace[len(f.Trace)-1]
	if last.PC != f.Err.PC {
		t.Errorf("last traced pc %#x want %#x", last.PC, f.Err.PC)
	}
}

func TestEngineTimeout(t *testing.T) {
	// A 1ns budget expires before the first path is even scheduled: the
	// run stops immediately without claiming exhaustion.
	eng := NewSession(snapshot(t, counterSrc), Config{Budget: Budget{MaxPaths: 0, Timeout: 1}})
	rep := eng.Run(context.Background())
	if rep.Exhausted {
		t.Error("timeout run must not report exhaustion")
	}
	if rep.Paths != 0 {
		t.Errorf("expired budget should run no paths, ran %d", rep.Paths)
	}
}
