package cte

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"rvcte/internal/smt"
)

// parallelRun is the shared state of one multi-worker exploration. The
// mutex guards the frontier, the dedup set, the coverage map and the
// report; everything path-local (core clone, solver, blasted CNF) is
// worker-owned and needs no locking. The condition variable wakes idle
// workers when children are enqueued or the run stops.
type parallelRun struct {
	e    *engine
	ctx  context.Context
	mu   sync.Mutex
	cond *sync.Cond

	front    *frontier
	seen     map[string]bool
	cover    map[uint32]struct{}
	rep      *Report
	started  int // paths claimed, bounds MaxPaths
	inflight int // claimed but not yet merged
	deadline time.Time
	stop     bool // no further paths may be claimed
	abandon  bool // stopped with work left (timeout / StopOnError finding)
}

// halt marks the run stopped with the given reason (the first reason
// wins). Called with x.mu held.
func (x *parallelRun) halt(reason string, abandon bool) {
	x.stop = true
	if abandon {
		x.abandon = true
	}
	if x.rep.Stopped == "" {
		x.rep.Stopped = reason
	}
}

// runParallel explores with a pool of workers. Each worker clones the
// frozen snapshot, executes one path on its own core and solves the
// trace conditions on its own solver; results are merged under the run
// lock. Path order depends on scheduling; the explored path set, dedup
// and findings do not (paths are independent by construction, §3.1.1).
func (e *engine) runParallel(ctx context.Context, workers int) *Report {
	start := time.Now()
	x := &parallelRun{
		e:     e,
		ctx:   ctx,
		front: newFrontier(e.Cfg.Explore.Strategy, rand.New(rand.NewSource(e.Cfg.Seed+1))),
		seen:  map[string]bool{},
		cover: make(map[uint32]struct{}),
		rep:   &Report{Workers: workers, PerWorker: make([]WorkerStats, workers)},
	}
	x.cond = sync.NewCond(&x.mu)
	e.seedFrontier(x.front, x.seen)

	var timer *time.Timer
	if e.Cfg.Budget.Timeout > 0 {
		x.deadline = start.Add(e.Cfg.Budget.Timeout)
		// The deadline is checked at claim time; the timer additionally
		// wakes workers blocked waiting for new queue entries.
		timer = time.AfterFunc(e.Cfg.Budget.Timeout, func() {
			x.mu.Lock()
			x.halt("timeout", true)
			x.mu.Unlock()
			x.cond.Broadcast()
		})
	}
	// Cancellation watcher: wakes blocked workers when ctx ends. The
	// run-done channel stops the watcher on normal completion.
	runDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				x.mu.Lock()
				x.halt("canceled", true)
				x.mu.Unlock()
				x.cond.Broadcast()
			case <-runDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			x.worker(id)
		}(w)
	}
	wg.Wait()
	close(runDone)
	if timer != nil {
		timer.Stop()
	}

	// Timer/cancellation callbacks may still be mid-halt() after Stop()
	// returns, so the finalization reads stay under the run lock.
	x.mu.Lock()
	rep := x.rep
	rep.Exhausted = !x.abandon && x.front.len() == 0
	if rep.Stopped == "" {
		if rep.Exhausted {
			rep.Stopped = "exhausted"
		} else if x.e.Cfg.Budget.MaxPaths > 0 && x.started >= x.e.Cfg.Budget.MaxPaths {
			rep.Stopped = "path-budget"
		}
	}
	e.exportFrontier(x.front, rep)
	x.mu.Unlock()
	rep.Covered = x.cover
	rep.WallTime = time.Since(start)
	for _, ws := range rep.PerWorker {
		rep.Queries += ws.Queries
		rep.SolverTime += ws.SolverTime
	}
	return rep
}

// worker claims inputs until the queue drains or the run stops. Each
// worker owns a solver (and thus its own SAT instance and blasted CNF);
// the builder behind it is shared and internally locked.
func (x *parallelRun) worker(id int) {
	solver := smt.NewSolver(x.e.Builder)
	solver.MaxConflictsPerQuery = x.e.Cfg.Budget.MaxConflictsPerQuery
	solver.SetObs(x.e.Cfg.Obs)
	paths := 0
	for {
		x.mu.Lock()
		for !x.stop && x.front.len() == 0 && x.inflight > 0 {
			x.cond.Wait()
		}
		if x.stop || x.front.len() == 0 {
			// Stopped, or the queue drained with no path in flight that
			// could still produce children: the run is over.
			x.finish(id, solver, paths)
			return
		}
		// Claim-time ctx check: the watcher goroutine wakes blocked
		// workers, but a busy pool can drain a small queue before the
		// watcher is ever scheduled — polling here makes cancellation
		// take effect within one path execution regardless.
		if x.ctx.Err() != nil {
			x.halt("canceled", true)
			x.finish(id, solver, paths)
			return
		}
		if x.e.Cfg.Budget.MaxPaths > 0 && x.started >= x.e.Cfg.Budget.MaxPaths {
			x.halt("path-budget", false)
			x.finish(id, solver, paths)
			return
		}
		if !x.deadline.IsZero() && !time.Now().Before(x.deadline) {
			x.halt("timeout", true)
			x.finish(id, solver, paths)
			return
		}
		in, ok := x.front.pop()
		if !ok {
			// Raced with another claimer between the wait and here; the
			// guarded pop turns that into a clean retry instead of a panic.
			x.mu.Unlock()
			continue
		}
		pathID := x.started
		x.started++
		x.inflight++
		x.mu.Unlock()

		res := x.e.executePath(in, solver, pathID)
		paths++

		x.mu.Lock()
		x.merge(res)
		x.inflight--
		x.mu.Unlock()
		x.cond.Broadcast()
	}
}

// finish records the worker's solver statistics and wakes any blocked
// sibling so it can observe the stop. Called with x.mu held; releases it.
func (x *parallelRun) finish(id int, solver *smt.Solver, paths int) {
	x.rep.PerWorker[id] = WorkerStats{
		Paths:      paths,
		Queries:    solver.Stats.Queries,
		SolverTime: solver.Stats.SolverTime,
	}
	x.mu.Unlock()
	x.cond.Broadcast()
}

// merge folds one executed path into the shared report and enqueues its
// deduplicated children. Called with x.mu held.
func (x *parallelRun) merge(res pathResult) {
	e := x.e
	rep := x.rep
	core := res.core
	path := rep.Paths
	rep.Paths++
	e.obsPaths.Inc()
	rep.TotalInstr += res.instrs
	if res.forked {
		rep.Forked++
		e.obsForks.Inc()
	}
	rep.ForkRestarts += res.forkRestarts
	e.obsForkRestarts.Add(int64(res.forkRestarts))
	if e.OnPath != nil {
		// Serialized under the run lock; order is scheduling-dependent.
		e.OnPath(path, core)
	}

	var score float64
	if core.TrackCoverage {
		for pc := range core.Coverage {
			if _, ok := x.cover[pc]; !ok {
				x.cover[pc] = struct{}{}
				score++
			}
		}
		e.coverG.Set(int64(len(x.cover)))
	}

	if f, prune := findingOf(core, path); prune {
		rep.Pruned++
		e.obsPruned.Inc()
	} else if f != nil {
		rep.Findings = append(rep.Findings, *f)
		e.recordFinding(f)
		if e.Cfg.StopOnError {
			// In-flight siblings still merge their results, so the
			// report may carry more than one finding; no new paths are
			// claimed after this point.
			x.halt("stop-on-error", true)
		}
	}

	rep.SatTCs += res.sat
	rep.UnsatTCs += res.unsat
	rep.UnknownTCs += res.unknown
	e.obsSat.Add(int64(res.sat))
	e.obsUnsat.Add(int64(res.unsat))
	e.obsUnknown.Add(int64(res.unknown))
	if x.stop {
		return
	}
	for _, ch := range res.children {
		key := childKey(e.Builder, ch)
		if x.seen[key] {
			continue
		}
		x.seen[key] = true
		ch.Score = score
		x.front.push(ch)
	}
	e.frontierG.Set(int64(x.front.len()))
}
