package cte

import (
	"context"
	"fmt"
	"testing"

	"rvcte/internal/iss"
	"rvcte/internal/rv32"
)

// describePaths runs the engine at Workers=1 and renders every executed
// path — input assignment, exit, error, console output, absolute
// instruction count — in execution order. Fork mode resumes checkpoints
// mid-path, so any reconcretization or rewind bug shows up here as a
// diverging record.
func describePaths(t *testing.T, src string, cfg Config) ([]string, *Report) {
	t.Helper()
	eng := NewSession(snapshot(t, src), cfg)
	var recs []string
	eng.OnPath = func(_ int, c *iss.Core) {
		recs = append(recs, fmt.Sprintf("in=%s exit=%d err=%v out=%q instr=%d",
			DescribeInput(eng.snap.B, c.Input), c.ExitCode, c.Err, c.Output, c.InstrCount))
	}
	rep := eng.Run(context.Background())
	return recs, rep
}

// TestForkRestartParity is the bit-identical guarantee of Options.Fork:
// for every guest, the ordered path sequence produced with forking must
// equal the restart-only baseline exactly, on every observable (inputs,
// exits, errors, output, per-path instruction totals) and on the
// aggregate solver statistics.
func TestForkRestartParity(t *testing.T) {
	guests := []struct {
		name string
		src  string
	}{
		{"two-path", twoPathSrc},
		{"counter", counterSrc},
		{"bitstorm", bitstormSrc},
		{"assert-bug", assertBugSrc},
		{"illegal-access", memBugSrc},
	}
	for _, g := range guests {
		for _, strat := range []Strategy{BFS, DFS} {
			t.Run(fmt.Sprintf("%s/%s", g.name, strat), func(t *testing.T) {
				base := Config{Budget: Budget{MaxPaths: 400}, Explore: ExploreConfig{Strategy: strat}}
				fOpt, rOpt := base, base
				fOpt.Fork.Enabled = true
				forkRecs, forkRep := describePaths(t, g.src, fOpt)
				restRecs, restRep := describePaths(t, g.src, rOpt)

				if len(forkRecs) != len(restRecs) {
					t.Fatalf("path counts: fork %d restart %d", len(forkRecs), len(restRecs))
				}
				for i := range forkRecs {
					if forkRecs[i] != restRecs[i] {
						t.Errorf("path %d diverges:\n fork:    %s\n restart: %s",
							i, forkRecs[i], restRecs[i])
					}
				}
				if forkRep.Queries != restRep.Queries ||
					forkRep.SatTCs != restRep.SatTCs ||
					forkRep.UnsatTCs != restRep.UnsatTCs {
					t.Errorf("solver stats diverge: fork q=%d sat=%d unsat=%d, restart q=%d sat=%d unsat=%d",
						forkRep.Queries, forkRep.SatTCs, forkRep.UnsatTCs,
						restRep.Queries, restRep.SatTCs, restRep.UnsatTCs)
				}
				if len(forkRep.Findings) != len(restRep.Findings) {
					t.Errorf("findings: fork %d restart %d",
						len(forkRep.Findings), len(restRep.Findings))
				}
				// Forking must actually engage (every path beyond the seed
				// resumes a checkpoint on these hook-free guests) and the
				// restart baseline must never report fork activity.
				if forkRep.Paths > 1 && forkRep.Forked == 0 {
					t.Error("fork mode never resumed a checkpoint")
				}
				if forkRep.Forked+forkRep.ForkRestarts != forkRep.Paths-1 {
					t.Errorf("fork accounting: forked %d + restarts %d != paths-1 %d",
						forkRep.Forked, forkRep.ForkRestarts, forkRep.Paths-1)
				}
				if restRep.Forked != 0 || restRep.ForkRestarts != 0 {
					t.Errorf("restart baseline reports fork activity: %d/%d",
						restRep.Forked, restRep.ForkRestarts)
				}
				// The point of forking: strictly less re-execution.
				if forkRep.Paths > 1 && forkRep.TotalInstr >= restRep.TotalInstr {
					t.Errorf("fork mode executed %d instrs, restart %d — no prefix saved",
						forkRep.TotalInstr, restRep.TotalInstr)
				}
			})
		}
	}
}

// TestForkMinPrefixParity: with a capture threshold above every path
// length, fork mode degenerates into pure restarts — same results, all
// children accounted as fallbacks. A threshold of one instruction
// behaves like unconditional capture on these guests.
func TestForkMinPrefixParity(t *testing.T) {
	run := func(fork bool, minPrefix uint64) ([]string, *Report) {
		return describePaths(t, counterSrc, Config{Budget: Budget{MaxPaths: 100}, Fork: ForkConfig{Enabled: fork, MinPrefix: minPrefix}})
	}
	restRecs, _ := run(false, 0)

	highRecs, highRep := run(true, 1<<40)
	if highRep.Forked != 0 || highRep.ForkRestarts != highRep.Paths-1 {
		t.Errorf("threshold above path length: forked=%d restarts=%d paths=%d",
			highRep.Forked, highRep.ForkRestarts, highRep.Paths)
	}
	lowRecs, lowRep := run(true, 1)
	if lowRep.Forked != lowRep.Paths-1 {
		t.Errorf("threshold of 1: forked=%d paths=%d", lowRep.Forked, lowRep.Paths)
	}
	for name, recs := range map[string][]string{"high": highRecs, "low": lowRecs} {
		if len(recs) != len(restRecs) {
			t.Fatalf("%s threshold: %d paths want %d", name, len(recs), len(restRecs))
		}
		for i := range recs {
			if recs[i] != restRecs[i] {
				t.Errorf("%s threshold path %d diverges:\n %s\n %s", name, i, recs[i], restRecs[i])
			}
		}
	}
}

// TestForkFallbackOnExecHook: an installed ExecHook makes checkpoints
// unsound (external per-instruction state can't be cloned), so capture
// is skipped and every child falls back to a snapshot restart — with
// unchanged results.
func TestForkFallbackOnExecHook(t *testing.T) {
	run := func(fork bool) ([]string, *Report) {
		snap := snapshot(t, counterSrc)
		snap.ExecHook = func(c *iss.Core, inst rv32.Inst) bool { return false }
		eng := NewSession(snap, Config{Budget: Budget{MaxPaths: 100}, Fork: ForkConfig{Enabled: fork}})
		var recs []string
		eng.OnPath = func(_ int, c *iss.Core) {
			recs = append(recs, fmt.Sprintf("in=%s exit=%d", DescribeInput(eng.snap.B, c.Input), c.ExitCode))
		}
		return recs, eng.Run(context.Background())
	}
	forkRecs, forkRep := run(true)
	restRecs, _ := run(false)

	if forkRep.Forked != 0 {
		t.Errorf("checkpoints resumed under an ExecHook: %d", forkRep.Forked)
	}
	if forkRep.ForkRestarts == 0 {
		t.Error("fallback restarts not reported")
	}
	if len(forkRecs) != len(restRecs) {
		t.Fatalf("path counts: %d vs %d", len(forkRecs), len(restRecs))
	}
	for i := range forkRecs {
		if forkRecs[i] != restRecs[i] {
			t.Errorf("path %d diverges under fallback:\n %s\n %s", i, forkRecs[i], restRecs[i])
		}
	}
}

// TestForkParallelSameFindings: with several workers the path order —
// and therefore which solver model reaches each path first — is
// scheduling-dependent, so paths are keyed semantically: bitstorm's
// behavior depends only on bit 0 of each input byte (unassigned
// variables read as zero, matching both engines' semantics). The
// explored behavior set must match the restart baseline exactly.
func TestForkParallelSameFindings(t *testing.T) {
	run := func(fork bool) map[string]bool {
		eng := NewSession(snapshot(t, bitstormSrc), Config{Workers: 4, Budget: Budget{MaxPaths: 400}, Fork: ForkConfig{Enabled: fork}})
		set := map[string]bool{}
		eng.OnPath = func(_ int, c *iss.Core) {
			var bits [8]uint64
			for id := range bits {
				bits[id] = c.Input[id] & 1
			}
			set[fmt.Sprintf("%v|%d|%q", bits, c.ExitCode, c.Output)] = true
		}
		rep := eng.Run(context.Background())
		if !rep.Exhausted {
			t.Fatalf("fork=%v: not exhausted", fork)
		}
		return set
	}
	forkSet := run(true)
	restSet := run(false)
	if len(forkSet) != 256 || len(restSet) != 256 {
		t.Fatalf("behavior set sizes: fork %d restart %d want 256", len(forkSet), len(restSet))
	}
	for k := range forkSet {
		if !restSet[k] {
			t.Errorf("fork-only behavior %s", k)
		}
	}
}
