package cte

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"
	"unsafe"

	"rvcte/internal/fuzz"
	"rvcte/internal/iss"
	"rvcte/internal/obs"
	"rvcte/internal/smt"
)

// hybrid is the driver state for one run.
type hybrid struct {
	cfg     Config
	snap    *iss.Core // working snapshot (possibly advanced past init)
	builder *smt.Builder
	fz      *fuzz.Fuzzer
	solvers []*smt.Solver
	// attempted dedups flip queries by the full (path prefix, condition)
	// conjunction — a condition alone is not enough, since it may be
	// unsat under one prefix and sat under another.
	attempted map[string]bool
	rep       *Report
	fs        *FuzzStats

	// Observability handles (Config.Obs); nil-safe when unwired.
	obsEsc, obsFlips, obsSolves, obsReplayed *obs.Counter
	issInstr                                 *obs.Counter
	bbHits, bbMisses, bbInval                *obs.Counter
	tracer                                   *obs.Tracer
}

// runHybrid executes a hybrid fuzzing campaign over the snapshot and
// reports in the unified Report shape (Fuzz section filled).
func runHybrid(ctx context.Context, snapshot *iss.Core, cfg Config) *Report {
	if cfg.Workers < 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Fuzz.Batch <= 0 {
		cfg.Fuzz.Batch = 500
	}
	if cfg.Fuzz.StallExecs == 0 {
		cfg.Fuzz.StallExecs = uint64(cfg.Fuzz.Batch)
	}
	if cfg.Fuzz.MaxFlipsPerEscalation <= 0 {
		cfg.Fuzz.MaxFlipsPerEscalation = 64
	}
	if cfg.Fuzz.DryEscalations <= 0 {
		cfg.Fuzz.DryEscalations = 3
	}

	start := time.Now()
	snapshot.Freeze()
	working, skipped := advancePastInput(snapshot)

	h := &hybrid{
		cfg:       cfg,
		snap:      working,
		builder:   snapshot.B,
		attempted: make(map[string]bool),
		rep:       &Report{Mode: ModeHybrid, Workers: cfg.Workers},
		fs:        &FuzzStats{SkipInitInstrs: skipped},
	}
	h.rep.Fuzz = h.fs
	if m := cfg.Obs.Registry(); m != nil {
		h.obsEsc = m.Counter("hybrid.escalations")
		h.obsFlips = m.Counter("hybrid.flips_attempted")
		h.obsSolves = m.Counter("hybrid.solves")
		h.obsReplayed = m.Counter("hybrid.replayed_instr")
		h.issInstr = m.Counter("iss.instr")
		h.bbHits = m.Counter("iss.bb.hits")
		h.bbMisses = m.Counter("iss.bb.misses")
		h.bbInval = m.Counter("iss.bb.inval")
		h.tracer = cfg.Obs.Trace()
		if cfg.Cache.Queries != nil {
			cfg.Cache.Queries.SetObs(cfg.Obs)
		}
	}
	h.fz = fuzz.New(working, fuzz.Options{
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		MaxInstrPerRun: cfg.Budget.MaxInstrPerRun,
		MapBits:        cfg.Fuzz.MapBits,
		States:         cfg.Protocol.States,
		Seeds:          cfg.Fuzz.Seeds,
		Obs:            cfg.Obs,
	})
	for i := 0; i < cfg.Workers; i++ {
		s := smt.NewSolver(snapshot.B)
		s.MaxConflictsPerQuery = cfg.Budget.MaxConflictsPerQuery
		s.SetObs(cfg.Obs)
		h.solvers = append(h.solvers, s)
	}

	dry := 0
	for {
		if ctx.Err() != nil {
			h.rep.Stopped = "canceled"
			break
		}
		st := h.fz.Stats()
		if cfg.Budget.MaxExecs > 0 && st.Execs >= cfg.Budget.MaxExecs {
			h.rep.Stopped = "exec-budget"
			break
		}
		if cfg.Budget.Timeout > 0 && time.Since(start) > cfg.Budget.Timeout {
			h.rep.Stopped = "timeout"
			break
		}
		if h.fz.SinceNewCover() >= cfg.Fuzz.StallExecs {
			// Coverage stalled: escalate the most deserving corpus entry.
			// A fruitless escalation retries the next entry immediately —
			// fuzz batches are only worth their cost when there are solved
			// inputs to execute or coverage is still moving.
			if cfg.Budget.MaxEscalations > 0 && h.fs.Escalations >= cfg.Budget.MaxEscalations {
				h.rep.Stopped = "escalation-budget"
				break
			}
			data, bound, ok := h.fz.EscalationTarget()
			if !ok {
				data = []byte{} // empty corpus: escalate the baseline input
			}
			h.fs.Escalations++
			h.obsEsc.Inc()
			if h.escalate(ctx, data, bound) == 0 {
				dry++
				if dry >= cfg.Fuzz.DryEscalations {
					h.rep.Stopped = "dry"
					break
				}
				continue
			}
			dry = 0
		}
		batch := cfg.Fuzz.Batch
		if cfg.Budget.MaxExecs > 0 && st.Execs+uint64(batch) > cfg.Budget.MaxExecs {
			batch = int(cfg.Budget.MaxExecs - st.Execs)
		}
		batchStart := time.Now()
		h.fz.RunBatchContext(ctx, batch)
		if h.tracer != nil {
			after := h.fz.Stats()
			h.tracer.Emit(obs.Event{Ev: obs.EvFuzzBatch,
				DurUS: time.Since(batchStart).Microseconds(),
				N:     int64(after.Execs - st.Execs), N2: int64(after.Edges)})
		}
		if cfg.StopOnError && len(h.fz.Findings()) > 0 {
			h.rep.Stopped = "stop-on-error"
			break
		}
	}

	h.fs.Stats = h.fz.Stats()
	for _, f := range h.fz.Findings() {
		h.rep.Findings = append(h.rep.Findings, Finding{
			Err: f.Err, Data: f.Data, Exec: f.Exec,
			Output: f.Output, Instrs: f.Instrs,
		})
		if h.tracer != nil {
			h.tracer.Emit(obs.Event{Ev: obs.EvFinding,
				PC: f.Err.PC, Err: f.Err.Error(), N: int64(f.Exec)})
		}
	}
	for _, e := range h.fz.Corpus() {
		h.fs.Corpus = append(h.fs.Corpus, e.Data)
	}
	for _, s := range h.solvers {
		h.rep.Queries += s.Stats.Queries
		h.rep.SolverTime += s.Stats.SolverTime
	}
	h.rep.WallTime = time.Since(start)
	if cfg.Cache.Queries != nil {
		st := cfg.Cache.Queries.Stats()
		h.rep.Cache = &st
	}
	return h.rep
}

// escalate replays one fuzz input concolically (from its generational
// bound, so already-flipped sites stay quiet), solves the unattempted
// branch flips along its path across the worker pool, and injects every
// model back into the fuzzer. Returns the number of injected inputs.
func (h *hybrid) escalate(ctx context.Context, data []byte, bound int) int {
	escStart := time.Now()
	c := h.snap.Clone()
	// Fork capture stays off for escalation replays: the hybrid driver
	// consumes only the replay's trace conditions (the flip models feed
	// the fuzzer as byte streams), never a resumable checkpoint.
	c.CaptureForks = false
	if data == nil {
		data = []byte{}
	}
	c.FuzzInput = data // replay mode: stream supplies bytes, vars are minted
	c.Bound = bound
	// Replays charge iss.instr (total simulated work) but not iss.execs,
	// which counts fuzz executions only.
	c.ObsInstr = h.issInstr
	c.ObsBBHits = h.bbHits
	c.ObsBBMisses = h.bbMisses
	c.ObsBBInval = h.bbInval
	startInstr := c.InstrCount
	c.Run(h.cfg.Budget.MaxInstrPerRun)
	h.fs.ReplayedInstrs += c.InstrCount - startInstr
	h.obsReplayed.Add(int64(c.InstrCount - startInstr))

	// Flip-target selection. Two filters pick which trace conditions are
	// worth solver time this escalation:
	//
	//  1. Dedup by the full (path prefix, condition) conjunction — a
	//     condition alone is not enough, since it may be unsat under one
	//     prefix and sat under another. Expressions are interned with
	//     deterministic variable ids, so the key dedups across replays of
	//     different inputs sharing a path prefix.
	//
	//  2. Last-occurrence-per-group: a loop body emits one flip TC per
	//     iteration at the same branch PC, but only the deepest one
	//     advances the trip count — the earlier ones re-derive shorter
	//     (already covered) executions. Likewise a concretization ladder
	//     emits one TC per rung at the same site, and the last rung is
	//     the largest value. Per group (branch PC, or site index for
	//     ladders) only the last not-yet-attempted occurrence is solved;
	//     re-escalations walk backwards through the remainder.
	//
	// The EPC prefix part of the dedup key is shared between trace
	// conditions, so it is rendered once and sliced.
	epcKey := make([]byte, 0, 8*len(c.EPC))
	for _, e := range c.EPC {
		p := uintptr(unsafe.Pointer(e))
		for i := 0; i < 8; i++ {
			epcKey = append(epcKey, byte(p>>(8*i)))
		}
	}
	type cand struct {
		trace int
		key   string
	}
	chosen := make(map[uint64]cand)
	for ti, tc := range c.Trace {
		p := uintptr(unsafe.Pointer(tc.Cond))
		kb := append(epcKey[:8*tc.EPCLen:8*tc.EPCLen],
			byte(p), byte(p>>8), byte(p>>16), byte(p>>24),
			byte(p>>32), byte(p>>40), byte(p>>48), byte(p>>56))
		key := string(kb)
		if h.attempted[key] {
			continue
		}
		group := uint64(tc.FlipFrom)
		if tc.FlipFrom == 0 {
			group = 1<<32 | uint64(tc.SiteIdx)
		}
		chosen[group] = cand{trace: ti, key: key} // later occurrences win
	}
	type job struct {
		conds   []*smt.Expr
		siteIdx int
		flipTo  uint32
	}
	var picks []cand
	for _, cd := range chosen {
		picks = append(picks, cd)
	}
	// Uncovered flip edges first (a branch polarity concrete fuzzing has
	// never executed is the highest-value query), then path order; both
	// classes stay within the per-escalation cap.
	sort.Slice(picks, func(i, j int) bool {
		ci, cj := c.Trace[picks[i].trace], c.Trace[picks[j].trace]
		ui := ci.FlipTo != 0 && !h.fz.EdgeCovered(ci.FlipFrom, ci.FlipTo)
		uj := cj.FlipTo != 0 && !h.fz.EdgeCovered(cj.FlipFrom, cj.FlipTo)
		if ui != uj {
			return ui
		}
		return picks[i].trace < picks[j].trace
	})
	var jobs []job
	for _, pk := range picks {
		if len(jobs) >= h.cfg.Fuzz.MaxFlipsPerEscalation {
			break
		}
		tc := c.Trace[pk.trace]
		h.attempted[pk.key] = true
		conds := make([]*smt.Expr, 0, tc.EPCLen+1)
		conds = append(conds, c.EPC[:tc.EPCLen]...)
		conds = append(conds, tc.Cond)
		jobs = append(jobs, job{conds: conds, siteIdx: tc.SiteIdx, flipTo: tc.FlipTo})
	}
	h.fs.FlipsAttempted += len(jobs)
	h.obsFlips.Add(int64(len(jobs)))
	if len(jobs) == 0 {
		return 0
	}

	models := make([]smt.Assignment, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := 0
	workers := h.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(solver *smt.Solver) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return // unclaimed flips stay unsolved; the driver stops next
				}
				mu.Lock()
				if next >= len(jobs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				var ok, unk bool
				var model smt.Assignment
				if h.cfg.Cache.Queries != nil {
					// The incumbent replay satisfied the whole prefix:
					// its assignment is the slicing hint (same contract
					// as the pure-concolic engine).
					ok, model, unk = h.cfg.Cache.Queries.Check(solver, jobs[i].conds, c.Input)
				} else {
					ok, model, unk = solver.Check(jobs[i].conds...)
				}
				mu.Lock()
				switch {
				case unk:
					h.rep.UnknownTCs++
				case !ok:
					h.rep.UnsatTCs++
				default:
					h.rep.SatTCs++
					models[i] = model
				}
				mu.Unlock()
			}
		}(h.solvers[w])
	}
	wg.Wait()

	// Inject in path order so the campaign stays deterministic at -j 1.
	// Each solved input carries the flipped site's generation as its
	// bound (SAGE semantics: re-escalation explores past it only).
	injected := 0
	for i, m := range models {
		if m == nil {
			continue
		}
		h.fz.Inject(solvedInput(data, c.SymOrder, h.builder, m), jobs[i].siteIdx+1)
		injected++
		if h.tracer != nil {
			h.tracer.Emit(obs.Event{Ev: obs.EvFlipSolved, PC: jobs[i].flipTo})
		}
	}
	h.fs.Solves += injected
	h.obsSolves.Add(int64(injected))
	if h.tracer != nil {
		h.tracer.Emit(obs.Event{Ev: obs.EvEscalation,
			DurUS: time.Since(escStart).Microseconds(),
			N:     int64(len(jobs)), N2: int64(injected)})
	}
	return injected
}

// solvedInput maps a solver model back onto the input byte stream: the
// replay's SymOrder records which variable consumed which stream offset,
// so model values overwrite those bytes (little-endian) and unconstrained
// positions keep the incumbent's bytes.
func solvedInput(base []byte, order []int, b *smt.Builder, model smt.Assignment) []byte {
	out := append([]byte(nil), base...)
	pos := 0
	for _, id := range order {
		w := (int(b.VarWidth(id)) + 7) / 8
		for len(out) < pos+w {
			out = append(out, 0)
		}
		if v, ok := model[id]; ok {
			for i := 0; i < w; i++ {
				out[pos+i] = byte(v >> (8 * i))
			}
		}
		pos += w
	}
	return out
}

// advancePastInput implements the skip-init optimization: a concrete
// probe locates the instruction that consumes the first input byte; the
// shared prefix before it is executed once on a fresh clone, which is
// frozen and becomes the working snapshot for every subsequent
// execution and replay. Sound because no symbolic state can exist
// before the first make_symbolic. Returns the working snapshot and the
// skipped instruction count (0 = no input consumed or nothing to skip).
func advancePastInput(snap *iss.Core) (*iss.Core, uint64) {
	probe := snap.Clone()
	probe.ConcreteOnly = true
	probe.FuzzInput = []byte{}
	var steps uint64
	const probeBudget = 50_000_000
	for !probe.Halted() && probe.FuzzPos == 0 && steps < probeBudget {
		probe.Step()
		steps++
	}
	if probe.FuzzPos == 0 || steps < 2 {
		return snap, 0 // never consumes input (or nothing worth skipping)
	}
	skip := steps - 1 // stop just before the consuming instruction
	adv := snap.Clone()
	for i := uint64(0); i < skip; i++ {
		adv.Step()
	}
	adv.Freeze()
	return adv, skip
}
