package cc

import (
	"fmt"
)

// TypeKind classifies mini-C types.
type TypeKind int

const (
	TyVoid TypeKind = iota
	TyInt           // integer of Size bytes, Signed or not
	TyPtr
	TyArray
	TyStruct
	TyFunc
)

// Type describes a mini-C type. Types are structurally compared except
// structs, which compare by identity.
type Type struct {
	Kind   TypeKind
	Size   int
	Signed bool
	Elem   *Type   // Ptr / Array
	Len    int     // Array
	Fields []Field // Struct
	SName  string  // Struct tag
	Ret    *Type   // Func
	Params []*Type // Func
}

// Field is a struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

var (
	tyVoid   = &Type{Kind: TyVoid}
	tyInt    = &Type{Kind: TyInt, Size: 4, Signed: true}
	tyUint   = &Type{Kind: TyInt, Size: 4, Signed: false}
	tyChar   = &Type{Kind: TyInt, Size: 1, Signed: false} // plain char is unsigned in this dialect
	tySChar  = &Type{Kind: TyInt, Size: 1, Signed: true}
	tyShort  = &Type{Kind: TyInt, Size: 2, Signed: true}
	tyUShort = &Type{Kind: TyInt, Size: 2, Signed: false}
	tyBool   = &Type{Kind: TyInt, Size: 1, Signed: false}
)

func ptrTo(t *Type) *Type { return &Type{Kind: TyPtr, Size: 4, Elem: t} }

func (t *Type) String() string {
	switch t.Kind {
	case TyVoid:
		return "void"
	case TyInt:
		s := "u"
		if t.Signed {
			s = "i"
		}
		return fmt.Sprintf("%s%d", s, t.Size*8)
	case TyPtr:
		return t.Elem.String() + "*"
	case TyArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	case TyStruct:
		return "struct " + t.SName
	case TyFunc:
		return "func"
	}
	return "?"
}

func (t *Type) isInt() bool { return t.Kind == TyInt }
func (t *Type) isPtr() bool { return t.Kind == TyPtr }
func (t *Type) isScalar() bool {
	return t.Kind == TyInt || t.Kind == TyPtr || t.Kind == TyFunc
}

// sizeOf returns the storage size; arrays and structs are as declared.
func (t *Type) sizeOf() int {
	switch t.Kind {
	case TyArray:
		return t.Elem.sizeOf() * t.Len
	case TyPtr, TyFunc:
		return 4
	}
	return t.Size
}

func (t *Type) alignOf() int {
	switch t.Kind {
	case TyArray:
		return t.Elem.alignOf()
	case TyStruct:
		a := 1
		for _, f := range t.Fields {
			if fa := f.Type.alignOf(); fa > a {
				a = fa
			}
		}
		return a
	case TyPtr, TyFunc:
		return 4
	}
	if t.Size == 0 {
		return 1
	}
	return t.Size
}

// NodeKind enumerates AST node kinds (expressions and statements share
// one node type for compactness).
type NodeKind int

const (
	// Expressions
	NNum NodeKind = iota
	NStr
	NVar    // resolved local/global/function reference
	NBin    // s: operator
	NUn     // s: operator (! ~ - * &)
	NAssign // s: "=" or compound op
	NCond   // ?:
	NCall   // lhs: callee expr, args: list
	NIndex  // lhs[rhs]
	NField  // lhs.s (after -> normalization)
	NCast
	NPostIncDec // s: "++" or "--"
	NPreIncDec  // s: "++" or "--"

	// Statements
	NExprStmt
	NBlock
	NIf
	NWhile
	NDoWhile
	NFor
	NSwitch
	NCase
	NDefault
	NBreak
	NContinue
	NReturn
	NDeclStmt // local variable declaration (possibly with init)
	NAsm      // raw assembly pass-through
	NEmpty
)

// Node is an AST node.
type Node struct {
	Kind NodeKind
	Line int
	Ty   *Type // expression type (set during parsing/typing)

	S    string // operator / field name / asm text / string literal
	N    int64  // numeric literal
	L, R *Node  // generic children
	Cond *Node  // if/while/for/?: condition
	Then *Node
	Else *Node
	Init *Node   // for-init
	Post *Node   // for-post
	List []*Node // block statements, call args, switch body

	Sym *Symbol // NVar: resolved symbol
}

// SymKind distinguishes storage classes.
type SymKind int

const (
	SymLocal SymKind = iota
	SymGlobal
	SymFunc
	SymParam
)

// Symbol is a declared name.
type Symbol struct {
	Name   string
	Kind   SymKind
	Ty     *Type
	Offset int    // locals/params: frame offset (negative from fp)
	Global string // globals/functions: assembly label
}

// Func is a parsed function definition.
type Func struct {
	Name   string
	Ty     *Type // TyFunc
	Params []*Symbol
	Body   *Node
	Locals []*Symbol // all locals incl. params, for frame layout
	Line   int
}

// GlobalVar is a parsed global definition.
type GlobalVar struct {
	Sym    *Symbol
	Init   *Node   // scalar initializer expression (constant), or nil
	Vals   []*Node // array/struct initializer list, or nil
	Str    string  // string initializer for char arrays
	HasStr bool
	Line   int
}

// Unit is a parsed translation unit.
type Unit struct {
	Funcs   []*Func
	Globals []*GlobalVar
	strs    []string // interned string literals
}

type parser struct {
	toks []token
	pos  int

	structs    map[string]*Type
	typedefs   map[string]*Type
	globals    map[string]*Symbol
	locals     []map[string]*Symbol // scope stack
	curFn      *Func
	lastExtern bool // the last parseBaseType saw "extern"

	unit *Unit
}

// Parse compiles source text into an AST unit.
func Parse(src string) (*Unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:     toks,
		structs:  map[string]*Type{},
		typedefs: builtinTypedefs(),
		globals:  map[string]*Symbol{},
		unit:     &Unit{},
	}
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	return p.unit, nil
}

func builtinTypedefs() map[string]*Type {
	return map[string]*Type{
		"uint8_t":   tyChar,
		"int8_t":    tySChar,
		"uint16_t":  tyUShort,
		"int16_t":   tyShort,
		"uint32_t":  tyUint,
		"int32_t":   tyInt,
		"size_t":    tyUint,
		"uintptr_t": tyUint,
		"intptr_t":  tyInt,
		"_Bool":     tyBool,
		"bool":      tyBool,
	}
}

// --- token helpers ---

func (p *parser) tok() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{p.tok().line, fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.tok()
	return t.kind == tPunct && t.s == s
}

func (p *parser) isIdent(s string) bool {
	t := p.tok()
	return t.kind == tIdent && t.s == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isIdent(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return p.errf("expected %q, got %q", s, p.tok())
	}
	return nil
}

// --- scopes ---

func (p *parser) pushScope() { p.locals = append(p.locals, map[string]*Symbol{}) }
func (p *parser) popScope()  { p.locals = p.locals[:len(p.locals)-1] }

func (p *parser) lookup(name string) *Symbol {
	for i := len(p.locals) - 1; i >= 0; i-- {
		if s, ok := p.locals[i][name]; ok {
			return s
		}
	}
	return p.globals[name]
}

func (p *parser) declareLocal(name string, ty *Type) (*Symbol, error) {
	scope := p.locals[len(p.locals)-1]
	if _, dup := scope[name]; dup {
		return nil, p.errf("redeclaration of %q", name)
	}
	s := &Symbol{Name: name, Kind: SymLocal, Ty: ty}
	scope[name] = s
	p.curFn.Locals = append(p.curFn.Locals, s)
	return s, nil
}

// --- type parsing ---

var typeWords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"unsigned": true, "signed": true, "struct": true, "const": true,
	"volatile": true, "static": true, "extern": true, "register": true,
	"inline": true, "union": true,
}

// startsType reports whether the current token begins a type.
func (p *parser) startsType() bool {
	t := p.tok()
	if t.kind != tIdent {
		return false
	}
	if typeWords[t.s] {
		return true
	}
	_, istd := p.typedefs[t.s]
	return istd
}

// parseBaseType parses type specifiers (without declarators). It records
// whether "extern" appeared (the caller decides whether storage is
// emitted).
func (p *parser) parseBaseType() (*Type, error) {
	p.lastExtern = false
	// Swallow qualifiers/storage classes.
	for p.isIdent("const") || p.isIdent("volatile") || p.isIdent("static") ||
		p.isIdent("extern") || p.isIdent("register") || p.isIdent("inline") {
		if p.isIdent("extern") {
			p.lastExtern = true
		}
		p.pos++
	}
	t := p.tok()
	if t.kind != tIdent {
		return nil, p.errf("expected type, got %q", t)
	}
	if td, ok := p.typedefs[t.s]; ok {
		p.pos++
		return td, nil
	}
	switch t.s {
	case "void":
		p.pos++
		return tyVoid, nil
	case "struct", "union":
		return p.parseStructType(t.s == "union")
	}
	// Combinations of signed/unsigned char/short/int/long.
	signed := true
	seenSign := false
	size := 4
	seenBase := false
	for {
		t = p.tok()
		if t.kind != tIdent {
			break
		}
		switch t.s {
		case "unsigned":
			signed, seenSign = false, true
			p.pos++
			continue
		case "signed":
			signed, seenSign = true, true
			p.pos++
			continue
		case "char":
			size, seenBase = 1, true
			p.pos++
			continue
		case "short":
			size, seenBase = 2, true
			p.pos++
			if p.isIdent("int") {
				p.pos++
			}
			continue
		case "int", "long":
			seenBase = true
			p.pos++
			continue
		}
		break
	}
	if !seenBase && !seenSign {
		return nil, p.errf("expected type, got %q", p.tok())
	}
	if size == 1 && !seenSign {
		return tyChar, nil // plain char: unsigned in this dialect
	}
	return &Type{Kind: TyInt, Size: size, Signed: signed}, nil
}

// parseStructType parses "struct tag { ... }" or "struct tag".
func (p *parser) parseStructType(isUnion bool) (*Type, error) {
	p.pos++ // struct/union keyword
	tag := ""
	if p.tok().kind == tIdent && !p.isPunct("{") {
		tag = p.next().s
	}
	if !p.isPunct("{") {
		if tag == "" {
			return nil, p.errf("anonymous struct requires a body")
		}
		st, ok := p.structs[tag]
		if !ok {
			// Forward reference: create an incomplete struct.
			st = &Type{Kind: TyStruct, SName: tag, Size: -1}
			p.structs[tag] = st
		}
		return st, nil
	}
	p.pos++ // {
	st := p.structs[tag]
	if st == nil {
		st = &Type{Kind: TyStruct, SName: tag}
		if tag != "" {
			p.structs[tag] = st
		}
	}
	st.Fields = nil
	offset := 0
	maxSize := 0
	for !p.isPunct("}") {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		for {
			name, ty, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if ty.Kind == TyStruct && ty.Size < 0 {
				return nil, p.errf("field %q has incomplete type", name)
			}
			al := ty.alignOf()
			if !isUnion {
				offset = (offset + al - 1) / al * al
				st.Fields = append(st.Fields, Field{Name: name, Type: ty, Offset: offset})
				offset += ty.sizeOf()
			} else {
				st.Fields = append(st.Fields, Field{Name: name, Type: ty, Offset: 0})
				if s := ty.sizeOf(); s > maxSize {
					maxSize = s
				}
			}
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	p.pos++ // }
	al := st.alignOf()
	if isUnion {
		offset = maxSize
	}
	st.Size = (offset + al - 1) / al * al
	return st, nil
}

// parseDeclarator parses pointers, the name, array suffixes and function
// pointer syntax: e.g. "*name[10]" or "(*name)(int, int)".
func (p *parser) parseDeclarator(base *Type) (string, *Type, error) {
	ty := base
	for p.accept("*") {
		for p.isIdent("const") || p.isIdent("volatile") {
			p.pos++
		}
		ty = ptrTo(ty)
	}
	// Function pointer: (*name)(params) or (*name[N])(params)
	if p.isPunct("(") {
		p.pos++
		if err := p.expect("*"); err != nil {
			return "", nil, err
		}
		if p.tok().kind != tIdent {
			return "", nil, p.errf("expected function pointer name")
		}
		name := p.next().s
		var fpDims []int
		for p.accept("[") {
			if p.isPunct("]") {
				fpDims = append(fpDims, -1)
			} else {
				n, err := p.constExpr()
				if err != nil {
					return "", nil, err
				}
				fpDims = append(fpDims, int(n))
			}
			if err := p.expect("]"); err != nil {
				return "", nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return "", nil, err
		}
		if err := p.expect("("); err != nil {
			return "", nil, err
		}
		ft := &Type{Kind: TyFunc, Size: 4, Ret: ty}
		if !p.isPunct(")") {
			for {
				if p.isIdent("void") && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].s == ")" {
					p.pos++
					break
				}
				pt, err := p.parseBaseType()
				if err != nil {
					return "", nil, err
				}
				_, pty, err := p.parseDeclarator(pt)
				if err != nil {
					return "", nil, err
				}
				ft.Params = append(ft.Params, decay(pty))
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return "", nil, err
		}
		fty := ptrTo(ft)
		for i := len(fpDims) - 1; i >= 0; i-- {
			fty = &Type{Kind: TyArray, Elem: fty, Len: fpDims[i]}
		}
		return name, fty, nil
	}
	name := ""
	if p.tok().kind == tIdent && !typeWords[p.tok().s] {
		name = p.next().s
	}
	// Array suffixes (innermost last).
	var dims []int
	for p.accept("[") {
		if p.isPunct("]") {
			dims = append(dims, -1) // size from initializer
		} else {
			n, err := p.constExpr()
			if err != nil {
				return "", nil, err
			}
			dims = append(dims, int(n))
		}
		if err := p.expect("]"); err != nil {
			return "", nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		ty = &Type{Kind: TyArray, Elem: ty, Len: dims[i]}
	}
	return name, ty, nil
}

// decay converts array types to pointers (parameter adjustment).
func decay(t *Type) *Type {
	if t.Kind == TyArray {
		return ptrTo(t.Elem)
	}
	return t
}

// constExpr evaluates an integer constant expression at parse time.
func (p *parser) constExpr() (int64, error) {
	e, err := p.parseTernary()
	if err != nil {
		return 0, err
	}
	return p.evalConst(e)
}

func (p *parser) evalConst(e *Node) (int64, error) {
	switch e.Kind {
	case NNum:
		return e.N, nil
	case NUn:
		v, err := p.evalConst(e.L)
		if err != nil {
			return 0, err
		}
		switch e.S {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case NBin:
		a, err := p.evalConst(e.L)
		if err != nil {
			return 0, err
		}
		b, err := p.evalConst(e.R)
		if err != nil {
			return 0, err
		}
		switch e.S {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, &Error{e.Line, "division by zero in constant"}
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, &Error{e.Line, "modulo by zero in constant"}
			}
			return a % b, nil
		case "<<":
			return a << uint(b&31), nil
		case ">>":
			return a >> uint(b&31), nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		}
	case NCast:
		return p.evalConst(e.L)
	}
	return 0, &Error{e.Line, "expression is not constant"}
}
