package cc

import (
	"strings"
	"testing"

	"rvcte/internal/asm"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

const testCrt = `
.globl _start
_start:
	call main
	li a7, 0
	ecall
`

// compileRun compiles C source, links the tiny crt, runs the binary on
// the concolic ISS and returns the core (exit code in ExitCode).
func compileRun(t *testing.T, csrc string) *iss.Core {
	t.Helper()
	asmText, err := Compile(csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := asm.Assemble(testCrt+asmText, 0x80000000)
	if err != nil {
		t.Fatalf("assemble: %v\n--- asm ---\n%s", err, numbered(asmText))
	}
	c := iss.New(smt.NewBuilder(), iss.Config{RamBase: 0x80000000, RamSize: 1 << 20, MaxInstr: 5_000_000})
	c.LoadImage(img.Origin, img.Bytes, img.Entry())
	c.Run(0)
	if c.Err != nil {
		t.Fatalf("runtime error: %v\n--- asm ---\n%s", c.Err, numbered(asmText))
	}
	return c
}

func numbered(s string) string {
	lines := strings.Split(s, "\n")
	if len(lines) > 400 {
		lines = lines[:400]
	}
	return strings.Join(lines, "\n")
}

func expectExit(t *testing.T, csrc string, want uint32) {
	t.Helper()
	c := compileRun(t, csrc)
	if c.ExitCode != want {
		t.Errorf("exit code %d want %d", c.ExitCode, want)
	}
}

func TestReturnConstant(t *testing.T) {
	expectExit(t, `int main(void) { return 42; }`, 42)
}

func TestArithmeticPrecedence(t *testing.T) {
	expectExit(t, `int main() { return 2 + 3 * 4 - 6 / 2; }`, 11)
	expectExit(t, `int main() { return (2 + 3) * 4; }`, 20)
	expectExit(t, `int main() { return 7 % 3 + (1 << 4) + (255 >> 4); }`, 32)
	expectExit(t, `int main() { return (5 & 3) | (4 ^ 1); }`, 5)
	expectExit(t, `int main() { return ~0 & 0xff; }`, 255)
	expectExit(t, `int main() { return -(-7); }`, 7)
}

func TestLocalsAndAssignment(t *testing.T) {
	expectExit(t, `int main() { int a = 5; int b; b = a * 2; a += b; a -= 1; return a; }`, 14)
	expectExit(t, `int main() { int a = 6; a *= 7; a /= 2; a %= 16; return a; }`, 5)
	expectExit(t, `int main() { int a = 0xf0; a &= 0x3c; a |= 1; a ^= 2; a <<= 2; a >>= 1; return a; }`, 0x66)
	expectExit(t, `int main() { int a, b, c; a = b = c = 3; return a + b + c; }`, 9)
}

func TestIfElseWhile(t *testing.T) {
	expectExit(t, `
int main() {
    int n = 0, i = 1;
    while (i <= 10) { n += i; i++; }
    if (n == 55) return 1; else return 0;
}`, 1)
	expectExit(t, `
int main() {
    int i = 0, even = 0;
    for (i = 0; i < 20; i++) { if (i % 2) continue; even++; if (i > 10) break; }
    return even;
}`, 7)
	expectExit(t, `
int main() {
    int i = 0;
    do { i++; } while (i < 5);
    return i;
}`, 5)
	expectExit(t, `
int main() {
    int total = 0;
    for (int i = 0; i < 4; i++) total += i;
    return total;
}`, 6)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(10); }`, 55)
	expectExit(t, `
int add3(int a, int b, int c) { return a + b + c; }
int twice(int x) { return add3(x, x, 0); }
int main() { return twice(add3(1, 2, 3)); }`, 12)
	expectExit(t, `
void bump(int *p) { *p = *p + 1; }
int main() { int v = 9; bump(&v); bump(&v); return v; }`, 11)
}

func TestEightParams(t *testing.T) {
	expectExit(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b + c + d + e + f + g + h;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }`, 36)
}

func TestGlobalsAndInitializers(t *testing.T) {
	expectExit(t, `
int counter = 10;
unsigned int mask = 0xff;
int table[4] = {1, 2, 3, 4};
char msg[] = "abc";
int main() {
    counter += table[2];
    return counter + (int)msg[1] - 'a' + (int)(mask & 0xf);
}`, 10+3+1+15)
	expectExit(t, `
int zeroed[8];
int main() { int i, s = 0; for (i = 0; i < 8; i++) s += zeroed[i]; return s; }`, 0)
}

func TestArraysAndPointers(t *testing.T) {
	expectExit(t, `
int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i * i;
    int *p = a;
    p++;
    return a[4] + *p + p[2];
}`, 16+1+9)
	expectExit(t, `
int main() {
    int a[4] = {0,0,0,0};
    int *end = a + 4;
    int *p = a;
    int n = 0;
    while (p < end) { n++; p++; }
    return n + (int)(end - a);
}`, 8)
	expectExit(t, `
int g[3] = {10, 20, 30};
int main() { int *p = &g[1]; return *(p - 1) + *(p + 1); }`, 40)
}

func TestCharAndShortAccess(t *testing.T) {
	expectExit(t, `
int main() {
    unsigned char b[4];
    b[0] = 0x12; b[1] = 0x34; b[2] = 0xff; b[3] = 0;
    unsigned short h = (unsigned short)(b[0] | (b[1] << 8));
    return (int)(h >> 8) + (int)b[2];
}`, 0x34+0xff)
	expectExit(t, `
int main() {
    signed char c = (signed char)0xff;  // -1
    short s = (short)0xffff;            // -1
    if (c != -1) return 1;
    if (s != -1) return 2;
    return 0;
}`, 0)
	// Plain char is unsigned in this dialect.
	expectExit(t, `
int main() { char c = (char)0xff; if (c == 255) return 1; return 0; }`, 1)
}

func TestStructs(t *testing.T) {
	expectExit(t, `
struct point { int x; int y; };
struct rect { struct point a; struct point b; char tag; };
int area(struct rect *r) { return (r->b.x - r->a.x) * (r->b.y - r->a.y); }
int main() {
    struct rect r;
    r.a.x = 1; r.a.y = 2; r.b.x = 5; r.b.y = 7;
    r.tag = 'R';
    struct rect s;
    s = r;          // struct copy
    s.b.x = 9;
    return area(&r) * 100 + area(&s) + (int)s.tag - 'R';
}`, 20*100+40)
	expectExit(t, `
typedef struct node { int v; struct node *next; } node_t;
node_t n1, n2, n3;
int main() {
    n1.v = 1; n1.next = &n2;
    n2.v = 2; n2.next = &n3;
    n3.v = 4; n3.next = 0;
    int sum = 0;
    node_t *p = &n1;
    while (p) { sum += p->v; p = p->next; }
    return sum;
}`, 7)
	expectExit(t, `
struct item { char kind; int val; };
struct item items[3];
int main() {
    int i;
    for (i = 0; i < 3; i++) { items[i].kind = (char)i; items[i].val = i * 10; }
    return items[2].val + (int)items[1].kind + (int)sizeof(struct item);
}`, 20+1+8)
}

func TestSwitch(t *testing.T) {
	expectExit(t, `
int classify(int c) {
    switch (c) {
    case 1: return 10;
    case 2:
    case 3: return 23;
    case 4: break;
    default: return 99;
    }
    return 4;
}
int main() { return classify(1) + classify(2) + classify(3) + classify(4) + classify(7); }`,
		10+23+23+4+99)
}

func TestTernaryAndLogic(t *testing.T) {
	expectExit(t, `int main() { int a = 5; return a > 3 ? 1 : 2; }`, 1)
	expectExit(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
    int r = (0 && bump()) + (1 || bump());
    return calls * 10 + r;   // short-circuit: bump never called
}`, 1)
	expectExit(t, `int main() { return !0 + !5 * 10 + (3 && 2) + (0 || 0); }`, 2)
}

func TestIncDec(t *testing.T) {
	expectExit(t, `
int main() {
    int i = 5;
    int a = i++;
    int b = ++i;
    int c = i--;
    int d = --i;
    return a*1000 + b*100 + c*10 + d;   // 5,7,7,5
}`, 5000+700+70+5)
	expectExit(t, `
int main() {
    int arr[3] = {1,2,3};
    int *p = arr;
    int a = *p++;
    int b = *p;
    return a * 10 + b;
}`, 12)
}

func TestUnsignedSemantics(t *testing.T) {
	expectExit(t, `
int main() {
    unsigned int big = 0x80000000;
    if (big > 0x7fffffff) return 1;   // unsigned compare
    return 0;
}`, 1)
	expectExit(t, `
int main() {
    int neg = -1;
    if (neg < 0) { } else return 1;   // signed compare
    unsigned int u = (unsigned int)neg;
    if (u != 0xffffffff) return 2;
    return (int)(u >> 28);            // logical shift for unsigned
}`, 15)
	expectExit(t, `
int main() {
    int a = -7;
    return (a / 2 == -3) + (a % 2 == -1) * 2 + ((a >> 1) == -4) * 4;
}`, 7)
}

func TestFunctionPointers(t *testing.T) {
	expectExit(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(int (*f)(int, int), int x, int y) { return f(x, y); }
int main() {
    int (*op)(int, int) = add;
    int r = op(2, 3);
    op = &mul;
    r += (*op)(4, 5);
    r += apply(add, 10, 20);
    return r;
}`, 5+20+30)
	expectExit(t, `
void set1(int *p) { *p = 1; }
void set2(int *p) { *p = 2; }
void (*handlers[2])(int *p) = {set1, set2};
int main() { int v = 0; handlers[1](&v); return v; }`, 2)
}

func TestSizeof(t *testing.T) {
	expectExit(t, `
struct s { char a; int b; char c; };
int main() {
    return sizeof(char) + sizeof(short) * 10 + sizeof(int) * 100 +
           sizeof(struct s) * 1000 + sizeof(int *) * 10000;
}`, 1+20+400+12000+40000)
	expectExit(t, `
int arr[10];
int main() { return sizeof(arr) + sizeof arr[0]; }`, 44)
}

func TestPreprocessor(t *testing.T) {
	expectExit(t, `
#define LIMIT 10
#define DOUBLE_LIMIT (LIMIT * 2)
#define FEATURE_ON
int main() {
    int n = DOUBLE_LIMIT;
#ifdef FEATURE_ON
    n += 1;
#else
    n += 100;
#endif
#ifndef MISSING
    n += 2;
#endif
#ifdef MISSING
    n += 1000;
#endif
    return n;
}`, 23)
}

func TestAsmPassthrough(t *testing.T) {
	expectExit(t, `
int main() {
    int r;
    asm("li a0, 123");
    asm("mv s1, a0");
    r = 0;
    asm("mv a0, s1");
    return 0 + 0; // note: asm above is clobbered by this; test only that asm parses
}`, 0)
	// A more meaningful use: a wrapper function whose whole body is asm
	// (hand-written epilogue matching the compiler's frame layout).
	expectExit(t, `
int get_seven(void) {
    asm("li a0, 7");
    asm("addi sp, s0, -16");
    asm("lw ra, 12(sp)");
    asm("lw s0, 8(sp)");
    asm("addi sp, sp, 16");
    asm("ret");
    return 0; // unreachable
}
int main() { return get_seven(); }`, 7)
}

func TestCommaAndNestedCalls(t *testing.T) {
	expectExit(t, `
int sq(int x) { return x * x; }
int main() {
    int a = (1, 2, 3);
    return sq(sq(2)) + a;
}`, 19)
}

func TestStringData(t *testing.T) {
	expectExit(t, `
char *msg = "hello";
int mystrlen(char *s) { int n = 0; while (s[n]) n++; return n; }
int main() { return mystrlen(msg) + mystrlen("hi!"); }`, 8)
}

func TestLargeLocalArray(t *testing.T) {
	// Exercises frames beyond the 12-bit immediate range.
	expectExit(t, `
int main() {
    unsigned char buf[3000];
    int i;
    for (i = 0; i < 3000; i++) buf[i] = (unsigned char)(i & 0xff);
    int sum = 0;
    for (i = 2990; i < 3000; i++) sum += buf[i];
    return sum & 0xff;
}`, func() uint32 {
		sum := 0
		for i := 2990; i < 3000; i++ {
			sum += i & 0xff
		}
		return uint32(sum & 0xff)
	}())
}

func TestVoidFunctions(t *testing.T) {
	expectExit(t, `
int g;
void init(void) { g = 5; }
void noop() { return; }
int main() { init(); noop(); return g; }`, 5)
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`int main() { return x; }`,      // undeclared
		`int main() { int a; a(); }`,    // call non-function (call of int)
		`int main() { 5 = 3; }`,         // assign to rvalue
		`int main() { struct nope n; }`, // incomplete struct
		`int f(int a, int b, int c, int d, int e, int f2, int g, int h, int i) { return 0; }`, // >8 params
		`#define M(x) x`,                     // function-like macro
		`int main() { return 1`,              // unterminated
		`int main() { int a; return *a; }`,   // deref non-pointer
		`int arr[]; int main(){ return 0; }`, // unsized array
		`int main() { break; }`,              // break outside loop
	}
	for i, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("case %d: expected compile error for %q", i, src)
		}
	}
}

func TestGlobalFuncPtrTable(t *testing.T) {
	expectExit(t, `
int one() { return 1; }
int two() { return 2; }
struct entry { int (*fn)(void); int weight; };
struct entry tab[2] = { one, 10, two, 20 };
int main() {
    // flat initializer list fills fields in order
    return tab[0].fn() * tab[1].weight + tab[1].fn();
}`, 22)
}
