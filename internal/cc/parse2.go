package cc

import "fmt"

// parseUnit parses the whole translation unit.
func (p *parser) parseUnit() error {
	for p.tok().kind != tEOF {
		if p.accept(";") {
			continue
		}
		if p.isIdent("typedef") {
			p.pos++
			base, err := p.parseBaseType()
			if err != nil {
				return err
			}
			name, ty, err := p.parseDeclarator(base)
			if err != nil {
				return err
			}
			if name == "" {
				return p.errf("typedef needs a name")
			}
			p.typedefs[name] = ty
			if err := p.expect(";"); err != nil {
				return err
			}
			continue
		}
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		isExtern := p.lastExtern
		// struct definition followed by ';' declares only the type.
		if p.accept(";") {
			continue
		}
		if err := p.parseTopDecl(base, isExtern); err != nil {
			return err
		}
	}
	return nil
}

// parseTopDecl parses a function definition or one-or-more global
// variable declarations from a base type.
func (p *parser) parseTopDecl(base *Type, isExtern bool) error {
	for {
		line := p.tok().line
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errf("declaration needs a name")
		}
		if p.isPunct("(") {
			// Function definition or prototype. (A function-pointer
			// declarator consumes its parameter list itself, so "(" here
			// can only start a function's parameters.)
			return p.parseFunc(name, ty, line)
		}
		if err := p.parseGlobalVar(name, ty, line, isExtern); err != nil {
			return err
		}
		if p.accept(",") {
			continue
		}
		return p.expect(";")
	}
}

// parseFunc parses "(params) { body }" or "(params);".
func (p *parser) parseFunc(name string, ret *Type, line int) error {
	p.pos++ // (
	ft := &Type{Kind: TyFunc, Size: 4, Ret: ret}
	var params []*Symbol
	if !p.isPunct(")") {
		for {
			if p.isIdent("void") && p.toks[p.pos+1].s == ")" {
				p.pos++
				break
			}
			if p.isPunct("...") {
				return p.errf("variadic functions are not supported")
			}
			pb, err := p.parseBaseType()
			if err != nil {
				return err
			}
			pname, pty, err := p.parseDeclarator(pb)
			if err != nil {
				return err
			}
			pty = decay(pty)
			ft.Params = append(ft.Params, pty)
			params = append(params, &Symbol{Name: pname, Kind: SymParam, Ty: pty})
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	if len(params) > 8 {
		return p.errf("function %q has more than 8 parameters", name)
	}

	sym := p.globals[name]
	if sym == nil {
		sym = &Symbol{Name: name, Kind: SymFunc, Ty: ft, Global: name}
		p.globals[name] = sym
	}

	if p.accept(";") {
		return nil // prototype only
	}
	if !p.isPunct("{") {
		return p.errf("expected function body")
	}

	fn := &Func{Name: name, Ty: ft, Params: params, Line: line}
	p.curFn = fn
	p.pushScope()
	for _, ps := range params {
		if ps.Name == "" {
			return p.errf("parameter of %q lacks a name", name)
		}
		p.locals[len(p.locals)-1][ps.Name] = ps
		fn.Locals = append(fn.Locals, ps)
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	p.popScope()
	fn.Body = body
	p.curFn = nil
	p.unit.Funcs = append(p.unit.Funcs, fn)
	return nil
}

// parseGlobalVar parses an optional initializer and registers the
// global. Extern declarations without initializers register the symbol
// but emit no storage (the definition lives in another unit).
func (p *parser) parseGlobalVar(name string, ty *Type, line int, isExtern bool) error {
	if _, dup := p.globals[name]; dup {
		// Allow re-declaration (extern then definition); last wins.
	}
	sym := &Symbol{Name: name, Kind: SymGlobal, Ty: ty, Global: name}
	g := &GlobalVar{Sym: sym, Line: line}
	if p.accept("=") {
		if p.isPunct("{") {
			p.pos++
			for !p.isPunct("}") {
				e, err := p.parseTernary()
				if err != nil {
					return err
				}
				g.Vals = append(g.Vals, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect("}"); err != nil {
				return err
			}
		} else if p.tok().kind == tStr && ty.Kind == TyArray {
			g.Str = p.next().s
			g.HasStr = true
		} else {
			e, err := p.parseTernary()
			if err != nil {
				return err
			}
			g.Init = e
		}
	}
	if ty.Kind == TyArray && ty.Len < 0 {
		switch {
		case g.HasStr:
			ty.Len = len(g.Str) + 1
		case g.Vals != nil:
			ty.Len = len(g.Vals)
		default:
			return p.errf("array %q needs a size or initializer", name)
		}
	}
	p.globals[name] = sym
	if isExtern && g.Init == nil && g.Vals == nil && !g.HasStr {
		return nil // declaration only
	}
	p.unit.Globals = append(p.unit.Globals, g)
	return nil
}

// --- statements ---

func (p *parser) parseBlock() (*Node, error) {
	line := p.tok().line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	p.pushScope()
	blk := &Node{Kind: NBlock, Line: line}
	for !p.isPunct("}") {
		if p.tok().kind == tEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	p.pos++
	p.popScope()
	return blk, nil
}

func (p *parser) parseStmt() (*Node, error) {
	line := p.tok().line
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.accept(";"):
		return &Node{Kind: NEmpty, Line: line}, nil
	case p.isIdent("if"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		n := &Node{Kind: NIf, Line: line, Cond: cond, Then: then}
		if p.isIdent("else") {
			p.pos++
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			n.Else = els
		}
		return n, nil
	case p.isIdent("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NWhile, Line: line, Cond: cond, Then: body}, nil
	case p.isIdent("do"):
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.isIdent("while") {
			return nil, p.errf("expected while after do body")
		}
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Node{Kind: NDoWhile, Line: line, Cond: cond, Then: body}, nil
	case p.isIdent("for"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		p.pushScope()
		n := &Node{Kind: NFor, Line: line}
		if !p.isPunct(";") {
			if p.startsType() {
				init, err := p.parseDeclStmt()
				if err != nil {
					return nil, err
				}
				n.Init = init
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				n.Init = &Node{Kind: NExprStmt, Line: line, L: e}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		if !p.isPunct(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.Cond = cond
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		n.Then = body
		p.popScope()
		return n, nil
	case p.isIdent("switch"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NSwitch, Line: line, Cond: cond, Then: body}, nil
	case p.isIdent("case"):
		p.pos++
		v, err := p.constExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		return &Node{Kind: NCase, Line: line, N: v}, nil
	case p.isIdent("default"):
		p.pos++
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		return &Node{Kind: NDefault, Line: line}, nil
	case p.isIdent("break"):
		p.pos++
		return &Node{Kind: NBreak, Line: line}, p.expect(";")
	case p.isIdent("continue"):
		p.pos++
		return &Node{Kind: NContinue, Line: line}, p.expect(";")
	case p.isIdent("return"):
		p.pos++
		n := &Node{Kind: NReturn, Line: line}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.L = e
		}
		return n, p.expect(";")
	case p.isIdent("asm") || p.isIdent("__asm__"):
		p.pos++
		p.accept("volatile")
		p.accept("__volatile__")
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if p.tok().kind != tStr {
			return nil, p.errf("asm needs a string literal")
		}
		text := p.next().s
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Node{Kind: NAsm, Line: line, S: text}, p.expect(";")
	case p.startsType():
		return p.parseDeclStmt()
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NExprStmt, Line: line, L: e}, p.expect(";")
	}
}

// parseDeclStmt parses a local declaration list ("int a = 1, *b;").
func (p *parser) parseDeclStmt() (*Node, error) {
	line := p.tok().line
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	blk := &Node{Kind: NBlock, Line: line}
	for {
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("declaration needs a name")
		}
		if ty.Kind == TyArray && ty.Len < 0 {
			return nil, p.errf("local array %q needs an explicit size", name)
		}
		if ty.Kind == TyStruct && ty.Size < 0 {
			return nil, p.errf("local %q has incomplete struct type", name)
		}
		sym, err := p.declareLocal(name, ty)
		if err != nil {
			return nil, err
		}
		d := &Node{Kind: NDeclStmt, Line: line, Sym: sym}
		if p.accept("=") {
			if p.isPunct("{") {
				if ty.Kind != TyArray {
					return nil, p.errf("brace initializer on non-array local")
				}
				p.pos++
				for !p.isPunct("}") {
					e, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					d.List = append(d.List, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect("}"); err != nil {
					return nil, err
				}
				if len(d.List) > ty.Len {
					return nil, p.errf("too many initializers for %q", name)
				}
			} else {
				init, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.L = init
			}
		}
		blk.List = append(blk.List, d)
		if !p.accept(",") {
			break
		}
	}
	return blk, p.expect(";")
}

// --- expressions (precedence climbing) ---

func (p *parser) parseExpr() (*Node, error) {
	e, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	for p.isPunct(",") {
		p.pos++
		r, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		e = &Node{Kind: NBin, S: ",", Line: r.Line, L: e, R: r, Ty: r.Ty}
	}
	return e, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssign() (*Node, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.kind == tPunct && assignOps[t.s] {
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if !isLvalue(lhs) {
			return nil, &Error{t.line, "assignment to non-lvalue"}
		}
		return &Node{Kind: NAssign, S: t.s, Line: t.line, L: lhs, R: rhs, Ty: lhs.Ty}, nil
	}
	return lhs, nil
}

func isLvalue(e *Node) bool {
	switch e.Kind {
	case NVar:
		return e.Sym != nil && e.Sym.Kind != SymFunc
	case NIndex, NField:
		return true
	case NUn:
		return e.S == "*"
	}
	return false
}

func (p *parser) parseTernary() (*Node, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	line := p.next().line
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Node{Kind: NCond, Line: line, Cond: cond, Then: then, Else: els, Ty: then.Ty}, nil
}

// binary operator precedence (C levels).
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (*Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.s]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = p.typeBinary(t.s, lhs, rhs, t.line)
	}
}

// typeBinary assigns the result type of a binary expression, handling
// pointer arithmetic.
func (p *parser) typeBinary(op string, l, r *Node, line int) *Node {
	n := &Node{Kind: NBin, S: op, Line: line, L: l, R: r}
	lt, rt := decay(exprType(l)), decay(exprType(r))
	switch op {
	case "+", "-":
		switch {
		case lt.isPtr() && rt.isInt():
			n.Ty = lt
		case lt.isInt() && rt.isPtr() && op == "+":
			n.Ty = rt
		case lt.isPtr() && rt.isPtr() && op == "-":
			n.Ty = tyInt
		default:
			n.Ty = usualArith(lt, rt)
		}
	case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
		n.Ty = tyInt
	case ",":
		n.Ty = rt
	default:
		n.Ty = usualArith(lt, rt)
	}
	return n
}

// usualArith: both sides are 32-bit after promotion; the result is
// unsigned if either side is an unsigned 32-bit type or a pointer.
func usualArith(a, b *Type) *Type {
	au := a.isPtr() || a.Kind == TyFunc || (a.isInt() && !a.Signed && a.Size == 4)
	bu := b.isPtr() || b.Kind == TyFunc || (b.isInt() && !b.Signed && b.Size == 4)
	if au || bu {
		return tyUint
	}
	return tyInt
}

func exprType(e *Node) *Type {
	if e.Ty != nil {
		return e.Ty
	}
	return tyInt
}

func (p *parser) parseUnary() (*Node, error) {
	t := p.tok()
	switch {
	case p.isPunct("-"):
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NUn, S: "-", Line: t.line, L: e, Ty: usualArith(decay(exprType(e)), tyInt)}, nil
	case p.isPunct("+"):
		p.pos++
		return p.parseUnary()
	case p.isPunct("!"):
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NUn, S: "!", Line: t.line, L: e, Ty: tyInt}, nil
	case p.isPunct("~"):
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NUn, S: "~", Line: t.line, L: e, Ty: usualArith(decay(exprType(e)), tyInt)}, nil
	case p.isPunct("*"):
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		et := decay(exprType(e))
		if !et.isPtr() && et.Kind != TyFunc {
			return nil, &Error{t.line, "dereference of non-pointer"}
		}
		var rty *Type
		if et.Kind == TyFunc {
			rty = et // *funcptr is the function itself
		} else {
			rty = et.Elem
		}
		return &Node{Kind: NUn, S: "*", Line: t.line, L: e, Ty: rty}, nil
	case p.isPunct("&"):
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if e.Kind == NVar && e.Sym != nil && e.Sym.Kind == SymFunc {
			return &Node{Kind: NUn, S: "&", Line: t.line, L: e, Ty: ptrTo(e.Sym.Ty)}, nil
		}
		if !isLvalue(e) {
			return nil, &Error{t.line, "address of non-lvalue"}
		}
		return &Node{Kind: NUn, S: "&", Line: t.line, L: e, Ty: ptrTo(exprType(e))}, nil
	case p.isPunct("++") || p.isPunct("--"):
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if !isLvalue(e) {
			return nil, &Error{t.line, t.s + " needs an lvalue"}
		}
		return &Node{Kind: NPreIncDec, S: t.s, Line: t.line, L: e, Ty: exprType(e)}, nil
	case p.isIdent("sizeof"):
		p.pos++
		var ty *Type
		if p.isPunct("(") && p.toks[p.pos+1].kind == tIdent &&
			(typeWords[p.toks[p.pos+1].s] || p.typedefs[p.toks[p.pos+1].s] != nil) {
			p.pos++
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			_, full, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			ty = full
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			ty = exprType(e)
		}
		return &Node{Kind: NNum, N: int64(ty.sizeOf()), Line: t.line, Ty: tyUint}, nil
	case p.isPunct("(") && p.toks[p.pos+1].kind == tIdent &&
		(typeWords[p.toks[p.pos+1].s] || p.typedefs[p.toks[p.pos+1].s] != nil):
		// Cast.
		p.pos++
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		_, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Node{Kind: NCast, Line: t.line, L: e, Ty: ty}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (*Node, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		switch {
		case p.isPunct("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			bt := decay(exprType(e))
			if !bt.isPtr() {
				return nil, &Error{t.line, "indexing a non-pointer"}
			}
			e = &Node{Kind: NIndex, Line: t.line, L: e, R: idx, Ty: bt.Elem}
		case p.isPunct("("):
			p.pos++
			call := &Node{Kind: NCall, Line: t.line, L: e}
			if !p.isPunct(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.List = append(call.List, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if len(call.List) > 8 {
				return nil, &Error{t.line, "more than 8 call arguments"}
			}
			ft := calleeType(e)
			if ft == nil {
				return nil, &Error{t.line, "call of non-function"}
			}
			call.Ty = ft.Ret
			e = call
		case p.isPunct("."):
			p.pos++
			if p.tok().kind != tIdent {
				return nil, p.errf("expected field name")
			}
			fname := p.next().s
			st := exprType(e)
			f := findField(st, fname)
			if f == nil {
				return nil, &Error{t.line, fmt.Sprintf("no field %q in %s", fname, st)}
			}
			e = &Node{Kind: NField, S: fname, Line: t.line, L: e, Ty: f.Type}
		case p.isPunct("->"):
			p.pos++
			if p.tok().kind != tIdent {
				return nil, p.errf("expected field name")
			}
			fname := p.next().s
			pt := decay(exprType(e))
			if !pt.isPtr() {
				return nil, &Error{t.line, "-> on non-pointer"}
			}
			f := findField(pt.Elem, fname)
			if f == nil {
				return nil, &Error{t.line, fmt.Sprintf("no field %q in %s", fname, pt.Elem)}
			}
			// Normalize p->f to (*p).f
			deref := &Node{Kind: NUn, S: "*", Line: t.line, L: e, Ty: pt.Elem}
			e = &Node{Kind: NField, S: fname, Line: t.line, L: deref, Ty: f.Type}
		case p.isPunct("++") || p.isPunct("--"):
			p.pos++
			if !isLvalue(e) {
				return nil, &Error{t.line, t.s + " needs an lvalue"}
			}
			e = &Node{Kind: NPostIncDec, S: t.s, Line: t.line, L: e, Ty: exprType(e)}
		default:
			return e, nil
		}
	}
}

// calleeType returns the function type of a call target.
func calleeType(e *Node) *Type {
	t := exprType(e)
	if t.Kind == TyFunc {
		return t
	}
	if t.Kind == TyPtr && t.Elem.Kind == TyFunc {
		return t.Elem
	}
	return nil
}

func findField(st *Type, name string) *Field {
	if st == nil || st.Kind != TyStruct {
		return nil
	}
	for i := range st.Fields {
		if st.Fields[i].Name == name {
			return &st.Fields[i]
		}
	}
	return nil
}

func (p *parser) parsePrimary() (*Node, error) {
	t := p.tok()
	switch t.kind {
	case tNum:
		p.pos++
		ty := tyInt
		if t.n > 0x7fffffff {
			ty = tyUint
		}
		return &Node{Kind: NNum, N: t.n, Line: t.line, Ty: ty}, nil
	case tStr:
		p.pos++
		// Adjacent string literals concatenate.
		s := t.s
		for p.tok().kind == tStr {
			s += p.next().s
		}
		idx := len(p.unit.strs)
		p.unit.strs = append(p.unit.strs, s)
		return &Node{Kind: NStr, S: s, N: int64(idx), Line: t.line, Ty: ptrTo(tyChar)}, nil
	case tIdent:
		if t.s == "NULL" {
			p.pos++
			return &Node{Kind: NNum, N: 0, Line: t.line, Ty: ptrTo(tyVoid)}, nil
		}
		sym := p.lookup(t.s)
		if sym == nil {
			return nil, &Error{t.line, fmt.Sprintf("undeclared identifier %q", t.s)}
		}
		p.pos++
		return &Node{Kind: NVar, Line: t.line, Sym: sym, Ty: sym.Ty}, nil
	case tPunct:
		if t.s == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token %q", t)
}
