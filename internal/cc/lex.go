// Package cc implements a mini-C compiler targeting RV32IM assembly. It
// replaces the GCC cross-toolchain of the paper for building guest
// software: the runtime library, the peripheral software models, the
// benchmark programs and the mini-RTOS + TCP/IP stack are all written in
// this dialect and compiled to RISC-V machine code via internal/asm.
//
// The dialect is a practical C subset: void/char/short/int (signed and
// unsigned, plus the <stdint.h> fixed-width names), pointers, 1-D arrays,
// structs, typedefs, function pointers, all the usual operators including
// compound assignment and ternary, if/else, while, do-while, for, switch,
// break/continue/return, string literals, sizeof, casts, global
// initializers, an object-like #define / #ifdef preprocessor, and
// asm("...") pass-through statements. Notable deliberate deviations:
// plain char is unsigned, and at most 8 parameters are passed (all in
// registers).
package cc

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tChar
	tPunct
)

type token struct {
	kind tokKind
	s    string // identifier, punctuation, or raw string contents
	n    int64  // numeric value
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "<eof>"
	case tNum:
		return fmt.Sprint(t.n)
	case tStr:
		return strconv.Quote(t.s)
	default:
		return t.s
	}
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

var punctuators = []string{
	// Longest first.
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

type lexer struct {
	src    string
	pos    int
	line   int
	macros map[string][]token
	toks   []token
}

// lex runs the preprocessor and tokenizer over src.
func lex(src string) ([]token, error) {
	l := &lexer{macros: map[string][]token{}}
	lines := strings.Split(src, "\n")

	// Conditional-compilation state: a stack of "emitting" flags.
	type condState struct {
		emitting bool
		taken    bool // some branch of this #if chain already emitted
	}
	var conds []condState
	emitting := func() bool {
		for _, c := range conds {
			if !c.emitting {
				return false
			}
		}
		return true
	}

	inBlockComment := false
	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if inBlockComment {
			if end := strings.Index(line, "*/"); end >= 0 {
				line = line[end+2:]
				inBlockComment = false
			} else {
				continue
			}
		}
		// Strip comments (block comments spanning lines handled above).
		line = stripLineComments(line, &inBlockComment)
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			directive := strings.TrimSpace(trimmed[1:])
			switch {
			case strings.HasPrefix(directive, "define"):
				if !emitting() {
					continue
				}
				rest := strings.TrimSpace(directive[len("define"):])
				sp := strings.IndexAny(rest, " \t(")
				var name, body string
				if sp < 0 {
					name, body = rest, ""
				} else if rest[sp] == '(' {
					return nil, &Error{lineNo, "function-like macros are not supported"}
				} else {
					name, body = rest[:sp], strings.TrimSpace(rest[sp:])
				}
				if name == "" {
					return nil, &Error{lineNo, "empty #define"}
				}
				bodyToks, err := l.tokenizeLine(body, lineNo)
				if err != nil {
					return nil, err
				}
				l.macros[name] = bodyToks
			case strings.HasPrefix(directive, "undef"):
				if emitting() {
					delete(l.macros, strings.TrimSpace(directive[len("undef"):]))
				}
			case strings.HasPrefix(directive, "ifdef"):
				name := strings.TrimSpace(directive[len("ifdef"):])
				_, def := l.macros[name]
				conds = append(conds, condState{emitting: def, taken: def})
			case strings.HasPrefix(directive, "ifndef"):
				name := strings.TrimSpace(directive[len("ifndef"):])
				_, def := l.macros[name]
				conds = append(conds, condState{emitting: !def, taken: !def})
			case strings.HasPrefix(directive, "else"):
				if len(conds) == 0 {
					return nil, &Error{lineNo, "#else without #if"}
				}
				top := &conds[len(conds)-1]
				top.emitting = !top.taken
				top.taken = true
			case strings.HasPrefix(directive, "endif"):
				if len(conds) == 0 {
					return nil, &Error{lineNo, "#endif without #if"}
				}
				conds = conds[:len(conds)-1]
			case strings.HasPrefix(directive, "include"):
				// The guest build system concatenates translation units;
				// includes are accepted and ignored.
			case strings.HasPrefix(directive, "pragma"):
				// Ignored.
			default:
				return nil, &Error{lineNo, fmt.Sprintf("unsupported preprocessor directive %q", directive)}
			}
			continue
		}
		if !emitting() {
			continue
		}
		toks, err := l.tokenizeLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, toks...)
	}
	if len(conds) != 0 {
		return nil, &Error{len(lines), "unterminated #if block"}
	}
	l.toks = append(l.toks, token{kind: tEOF, line: len(lines)})
	return l.toks, nil
}

func stripLineComments(line string, inBlock *bool) string {
	var out strings.Builder
	i := 0
	inStr, inChr := false, false
	for i < len(line) {
		c := line[i]
		switch {
		case inStr:
			out.WriteByte(c)
			if c == '\\' && i+1 < len(line) {
				out.WriteByte(line[i+1])
				i++
			} else if c == '"' {
				inStr = false
			}
			i++
		case inChr:
			out.WriteByte(c)
			if c == '\\' && i+1 < len(line) {
				out.WriteByte(line[i+1])
				i++
			} else if c == '\'' {
				inChr = false
			}
			i++
		case c == '"':
			inStr = true
			out.WriteByte(c)
			i++
		case c == '\'':
			inChr = true
			out.WriteByte(c)
			i++
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return out.String()
		case c == '/' && i+1 < len(line) && line[i+1] == '*':
			if end := strings.Index(line[i+2:], "*/"); end >= 0 {
				out.WriteByte(' ')
				i += 2 + end + 2
			} else {
				*inBlock = true
				return out.String()
			}
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String()
}

// tokenizeLine tokenizes one line, applying macro substitution.
func (l *lexer) tokenizeLine(line string, lineNo int) ([]token, error) {
	var out []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			name := line[i:j]
			i = j
			if body, ok := l.macros[name]; ok {
				// Object-like macro: splice the body (no recursion guard
				// needed for our macro usage, but cap depth defensively).
				out = append(out, body...)
			} else {
				out = append(out, token{kind: tIdent, s: name, line: lineNo})
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(line) && (isIdentChar(line[j])) {
				j++
			}
			text := line[i:j]
			i = j
			// Strip C integer suffixes.
			for len(text) > 0 {
				last := text[len(text)-1]
				if last == 'u' || last == 'U' || last == 'l' || last == 'L' {
					text = text[:len(text)-1]
				} else {
					break
				}
			}
			v, err := strconv.ParseUint(text, 0, 64)
			if err != nil {
				return nil, &Error{lineNo, fmt.Sprintf("bad number %q", line[i:])}
			}
			out = append(out, token{kind: tNum, n: int64(v), line: lineNo})
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' && j+1 < len(line) {
					e, err := unescape(line[j+1])
					if err != nil {
						return nil, &Error{lineNo, err.Error()}
					}
					sb.WriteByte(e)
					j += 2
				} else {
					sb.WriteByte(line[j])
					j++
				}
			}
			if j >= len(line) {
				return nil, &Error{lineNo, "unterminated string literal"}
			}
			out = append(out, token{kind: tStr, s: sb.String(), line: lineNo})
			i = j + 1
		case c == '\'':
			j := i + 1
			var v byte
			if j < len(line) && line[j] == '\\' {
				if j+1 >= len(line) {
					return nil, &Error{lineNo, "unterminated char literal"}
				}
				e, err := unescape(line[j+1])
				if err != nil {
					return nil, &Error{lineNo, err.Error()}
				}
				v = e
				j += 2
			} else if j < len(line) {
				v = line[j]
				j++
			}
			if j >= len(line) || line[j] != '\'' {
				return nil, &Error{lineNo, "unterminated char literal"}
			}
			out = append(out, token{kind: tNum, n: int64(v), line: lineNo})
			i = j + 1
		default:
			matched := false
			for _, p := range punctuators {
				if strings.HasPrefix(line[i:], p) {
					out = append(out, token{kind: tPunct, s: p, line: lineNo})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, &Error{lineNo, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	return out, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, fmt.Errorf("unsupported escape \\%c", c)
}
