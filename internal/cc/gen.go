package cc

import (
	"fmt"
	"strings"
)

// Compile parses src and generates RV32IM assembly accepted by
// internal/asm.
func Compile(src string) (string, error) { return CompileUnit(src, "") }

// CompileUnit compiles one translation unit with a label prefix, so
// several units can be concatenated into one assembly file without
// internal-label collisions.
func CompileUnit(src, prefix string) (string, error) {
	unit, err := Parse(src)
	if err != nil {
		return "", err
	}
	g := &gen{unit: unit, prefix: prefix}
	return g.run()
}

type gen struct {
	unit   *Unit
	out    strings.Builder
	label  int
	prefix string

	fn        *Func
	frameSize int
	breaks    []string
	continues []string
	retLabel  string
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.out, format+"\n", args...)
}

func (g *gen) newLabel(hint string) string {
	g.label++
	return fmt.Sprintf(".L%s%s%d", g.prefix, hint, g.label)
}

func (g *gen) run() (string, error) {
	g.emit(".text")
	for _, fn := range g.unit.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	g.emit(".data")
	for _, gv := range g.unit.Globals {
		if err := g.genGlobal(gv); err != nil {
			return "", err
		}
	}
	for i, s := range g.unit.strs {
		g.emit(".Lstr%s_%d:", g.prefix, i)
		g.emit("\t.asciz %q", s)
	}
	return g.out.String(), nil
}

// --- globals ---

// staticInit resolves an initializer to either a numeric constant or a
// label+offset pair.
func (g *gen) staticInit(e *Node) (val int64, label string, err error) {
	switch e.Kind {
	case NNum:
		return e.N, "", nil
	case NStr:
		return 0, fmt.Sprintf(".Lstr%s_%d", g.prefix, e.N), nil
	case NVar:
		if e.Sym.Kind == SymFunc || e.Sym.Kind == SymGlobal {
			return 0, e.Sym.Global, nil
		}
		return 0, "", &Error{e.Line, "non-static initializer"}
	case NUn:
		if e.S == "&" {
			return g.staticInit(e.L)
		}
		if e.S == "-" {
			v, l, err := g.staticInit(e.L)
			if err != nil || l != "" {
				return 0, "", &Error{e.Line, "non-constant initializer"}
			}
			return -v, "", nil
		}
	case NCast:
		return g.staticInit(e.L)
	case NBin:
		_, ll, err := g.staticInit(e.L)
		if err != nil {
			return 0, "", err
		}
		rv, rl, err := g.staticInit(e.R)
		if err != nil {
			return 0, "", err
		}
		if ll == "" && rl == "" {
			p := &parser{}
			return mustConst(p, e), "", nil
		}
		if ll != "" && rl == "" && e.S == "+" {
			return 0, fmt.Sprintf("%s+%d", ll, rv), nil
		}
	}
	return 0, "", &Error{e.Line, "unsupported static initializer"}
}

func mustConst(p *parser, e *Node) int64 {
	v, err := p.evalConst(e)
	if err != nil {
		return 0
	}
	return v
}

func (g *gen) genGlobal(gv *GlobalVar) error {
	ty := gv.Sym.Ty
	size := ty.sizeOf()
	// Uninitialized globals go to .bss (zero-filled at load, absent from
	// the image).
	if gv.Init == nil && gv.Vals == nil && !gv.HasStr {
		g.emit(".bss")
		g.emit(".align 2")
		g.emit(".globl %s", gv.Sym.Global)
		g.emit("%s:", gv.Sym.Global)
		g.emit("\t.space %d", size)
		g.emit(".data")
		return nil
	}
	g.emit(".align 2")
	g.emit(".globl %s", gv.Sym.Global)
	g.emit("%s:", gv.Sym.Global)
	switch {
	case gv.HasStr:
		g.emit("\t.asciz %q", gv.Str)
		if pad := size - (len(gv.Str) + 1); pad > 0 {
			g.emit("\t.space %d", pad)
		}
	case gv.Vals != nil:
		elem := ty
		if ty.Kind == TyArray {
			elem = ty.Elem
		}
		esz := elem.sizeOf()
		for _, v := range gv.Vals {
			val, label, err := g.staticInit(v)
			if err != nil {
				return err
			}
			switch {
			case label != "":
				g.emit("\t.word %s", label)
			case esz == 1:
				g.emit("\t.byte %d", uint8(val))
			case esz == 2:
				g.emit("\t.half %d", uint16(val))
			default:
				g.emit("\t.word %d", uint32(val))
			}
		}
		if rest := size - len(gv.Vals)*esz; rest > 0 {
			g.emit("\t.space %d", rest)
		}
	case gv.Init != nil:
		val, label, err := g.staticInit(gv.Init)
		if err != nil {
			return err
		}
		if label != "" {
			g.emit("\t.word %s", label)
		} else {
			switch size {
			case 1:
				g.emit("\t.byte %d", uint8(val))
			case 2:
				g.emit("\t.half %d", uint16(val))
			default:
				g.emit("\t.word %d", uint32(val))
			}
		}
	default:
		g.emit("\t.space %d", size)
	}
	return nil
}

// --- functions ---

func (g *gen) genFunc(fn *Func) error {
	g.fn = fn
	g.retLabel = g.newLabel("ret_" + fn.Name + "_")

	// Frame layout: s0 holds the caller's sp. ra at -4(s0), old s0 at
	// -8(s0), locals below.
	offset := 8
	for _, l := range fn.Locals {
		sz := l.Ty.sizeOf()
		al := l.Ty.alignOf()
		offset = (offset+sz+al-1)/al*al + 0
		l.Offset = offset
	}
	g.frameSize = (offset + 15) / 16 * 16

	g.emit(".globl %s", fn.Name)
	g.emit("%s:", fn.Name)
	// Never store below sp: an interrupt may push a trap frame at sp at
	// any instruction boundary (RISC-V has no red zone).
	g.emit("\taddi sp, sp, -16")
	g.emit("\tsw ra, 12(sp)")
	g.emit("\tsw s0, 8(sp)")
	g.emit("\taddi s0, sp, 16")
	g.genFrameAdjust(-(g.frameSize - 16))

	// Spill register parameters to their frame slots.
	for i, ps := range fn.Params {
		g.genStoreToFrame(fmt.Sprintf("a%d", i), ps.Offset, ps.Ty)
	}

	if err := g.genStmt(fn.Body); err != nil {
		return err
	}
	// Implicit return (value undefined for non-void, as in C).
	g.emit("%s:", g.retLabel)
	g.emit("\taddi sp, s0, -16")
	g.emit("\tlw ra, 12(sp)")
	g.emit("\tlw s0, 8(sp)")
	g.emit("\taddi sp, sp, 16")
	g.emit("\tret")
	return nil
}

// genFrameAdjust moves sp by delta, handling large frames.
func (g *gen) genFrameAdjust(delta int) {
	if delta >= -2048 && delta <= 2047 {
		g.emit("\taddi sp, sp, %d", delta)
		return
	}
	g.emit("\tli t0, %d", delta)
	g.emit("\tadd sp, sp, t0")
}

// genStoreToFrame stores reg into the frame slot at -off(s0) with the
// width of ty.
func (g *gen) genStoreToFrame(reg string, off int, ty *Type) {
	op := storeOp(ty)
	if -off >= -2048 {
		g.emit("\t%s %s, %d(s0)", op, reg, -off)
		return
	}
	g.emit("\tli t0, %d", -off)
	g.emit("\tadd t0, s0, t0")
	g.emit("\t%s %s, 0(t0)", op, reg)
}

func storeOp(ty *Type) string {
	switch ty.sizeOf() {
	case 1:
		return "sb"
	case 2:
		return "sh"
	}
	return "sw"
}

func loadOp(ty *Type) string {
	t := decay(ty)
	switch t.sizeOf() {
	case 1:
		if t.Signed {
			return "lb"
		}
		return "lbu"
	case 2:
		if t.Signed {
			return "lh"
		}
		return "lhu"
	}
	return "lw"
}

func (g *gen) push(reg string) {
	g.emit("\taddi sp, sp, -4")
	g.emit("\tsw %s, 0(sp)", reg)
}

func (g *gen) pop(reg string) {
	g.emit("\tlw %s, 0(sp)", reg)
	g.emit("\taddi sp, sp, 4")
}

// --- statements ---

func (g *gen) genStmt(s *Node) error {
	switch s.Kind {
	case NBlock:
		for _, st := range s.List {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
	case NEmpty:
	case NExprStmt:
		return g.genExpr(s.L)
	case NDeclStmt:
		if s.List != nil {
			// Local array initializer: store each element, zero the rest.
			elem := s.Sym.Ty.Elem
			esz := elem.sizeOf()
			for i := 0; i < s.Sym.Ty.Len; i++ {
				if i < len(s.List) {
					if err := g.genExpr(s.List[i]); err != nil {
						return err
					}
				} else {
					g.emit("\tli a0, 0")
				}
				g.genStoreToFrame("a0", s.Sym.Offset-i*esz, elem)
			}
			return nil
		}
		if s.L != nil {
			if s.Sym.Ty.Kind == TyStruct {
				return &Error{s.Line, "struct initializers are not supported; assign instead"}
			}
			if err := g.genExpr(s.L); err != nil {
				return err
			}
			g.genStoreToFrame("a0", s.Sym.Offset, s.Sym.Ty)
		}
	case NIf:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		g.emit("\tbeqz a0, %s", elseL)
		if err := g.genStmt(s.Then); err != nil {
			return err
		}
		g.emit("\tj %s", endL)
		g.emit("%s:", elseL)
		if s.Else != nil {
			if err := g.genStmt(s.Else); err != nil {
				return err
			}
		}
		g.emit("%s:", endL)
	case NWhile:
		top := g.newLabel("while")
		end := g.newLabel("wend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, top)
		g.emit("%s:", top)
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		g.emit("\tbeqz a0, %s", end)
		if err := g.genStmt(s.Then); err != nil {
			return err
		}
		g.emit("\tj %s", top)
		g.emit("%s:", end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
	case NDoWhile:
		top := g.newLabel("do")
		cond := g.newLabel("docond")
		end := g.newLabel("doend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, cond)
		g.emit("%s:", top)
		if err := g.genStmt(s.Then); err != nil {
			return err
		}
		g.emit("%s:", cond)
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		g.emit("\tbnez a0, %s", top)
		g.emit("%s:", end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
	case NFor:
		top := g.newLabel("for")
		post := g.newLabel("fpost")
		end := g.newLabel("fend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, post)
		if s.Init != nil {
			if err := g.genStmt(s.Init); err != nil {
				return err
			}
		}
		g.emit("%s:", top)
		if s.Cond != nil {
			if err := g.genExpr(s.Cond); err != nil {
				return err
			}
			g.emit("\tbeqz a0, %s", end)
		}
		if err := g.genStmt(s.Then); err != nil {
			return err
		}
		g.emit("%s:", post)
		if s.Post != nil {
			if err := g.genExpr(s.Post); err != nil {
				return err
			}
		}
		g.emit("\tj %s", top)
		g.emit("%s:", end)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.continues = g.continues[:len(g.continues)-1]
	case NSwitch:
		return g.genSwitch(s)
	case NCase, NDefault:
		return &Error{s.Line, "case label outside switch"}
	case NBreak:
		if len(g.breaks) == 0 {
			return &Error{s.Line, "break outside loop/switch"}
		}
		g.emit("\tj %s", g.breaks[len(g.breaks)-1])
	case NContinue:
		if len(g.continues) == 0 {
			return &Error{s.Line, "continue outside loop"}
		}
		g.emit("\tj %s", g.continues[len(g.continues)-1])
	case NReturn:
		if s.L != nil {
			if err := g.genExpr(s.L); err != nil {
				return err
			}
		}
		g.emit("\tj %s", g.retLabel)
	case NAsm:
		for _, line := range strings.Split(s.S, "\n") {
			g.emit("\t%s", line)
		}
	default:
		return &Error{s.Line, fmt.Sprintf("cannot generate statement kind %d", s.Kind)}
	}
	return nil
}

// genSwitch lowers a switch into a compare chain.
func (g *gen) genSwitch(s *Node) error {
	end := g.newLabel("swend")
	g.breaks = append(g.breaks, end)
	defer func() { g.breaks = g.breaks[:len(g.breaks)-1] }()

	if err := g.genExpr(s.Cond); err != nil {
		return err
	}
	// Collect case labels.
	type caseInfo struct {
		idx   int
		label string
		val   int64
		def   bool
	}
	var cases []caseInfo
	for i, st := range s.Then.List {
		switch st.Kind {
		case NCase:
			cases = append(cases, caseInfo{idx: i, label: g.newLabel("case"), val: st.N})
		case NDefault:
			cases = append(cases, caseInfo{idx: i, label: g.newLabel("default"), def: true})
		}
	}
	defaultL := end
	for _, ci := range cases {
		if ci.def {
			defaultL = ci.label
			continue
		}
		g.emit("\tli t0, %d", ci.val)
		g.emit("\tbeq a0, t0, %s", ci.label)
	}
	g.emit("\tj %s", defaultL)
	ci := 0
	for i, st := range s.Then.List {
		if ci < len(cases) && cases[ci].idx == i {
			g.emit("%s:", cases[ci].label)
			ci++
			continue
		}
		if st.Kind == NCase || st.Kind == NDefault {
			continue
		}
		if err := g.genStmt(st); err != nil {
			return err
		}
	}
	g.emit("%s:", end)
	return nil
}
