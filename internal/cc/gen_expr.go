package cc

import "fmt"

// genExpr evaluates e into a0.
func (g *gen) genExpr(e *Node) error {
	switch e.Kind {
	case NNum:
		g.emit("\tli a0, %d", uint32(e.N))
	case NStr:
		g.emit("\tla a0, .Lstr%s_%d", g.prefix, e.N)
	case NVar:
		return g.genVarLoad(e)
	case NBin:
		return g.genBinary(e)
	case NUn:
		return g.genUnary(e)
	case NAssign:
		return g.genAssign(e)
	case NCond:
		elseL := g.newLabel("celse")
		endL := g.newLabel("cend")
		if err := g.genExpr(e.Cond); err != nil {
			return err
		}
		g.emit("\tbeqz a0, %s", elseL)
		if err := g.genExpr(e.Then); err != nil {
			return err
		}
		g.emit("\tj %s", endL)
		g.emit("%s:", elseL)
		if err := g.genExpr(e.Else); err != nil {
			return err
		}
		g.emit("%s:", endL)
	case NCall:
		return g.genCall(e)
	case NIndex, NField:
		if err := g.genAddr(e); err != nil {
			return err
		}
		g.genLoadFromA0(e.Ty)
	case NCast:
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.genCastA0(decay(exprType(e.L)), e.Ty)
	case NPreIncDec, NPostIncDec:
		return g.genIncDec(e)
	default:
		return &Error{e.Line, fmt.Sprintf("cannot generate expression kind %d", e.Kind)}
	}
	return nil
}

// genVarLoad loads a variable value (or address for arrays/functions).
func (g *gen) genVarLoad(e *Node) error {
	sym := e.Sym
	switch sym.Kind {
	case SymFunc:
		g.emit("\tla a0, %s", sym.Global)
	case SymGlobal:
		g.emit("\tla a0, %s", sym.Global)
		if sym.Ty.Kind != TyArray && sym.Ty.Kind != TyStruct {
			g.emit("\t%s a0, 0(a0)", loadOp(sym.Ty))
		}
	default: // local / param
		if sym.Ty.Kind == TyArray || sym.Ty.Kind == TyStruct {
			g.genFrameAddr(sym.Offset)
			return nil
		}
		g.genFrameLoad(sym.Offset, sym.Ty)
	}
	return nil
}

// genFrameAddr computes s0 - off into a0.
func (g *gen) genFrameAddr(off int) {
	if -off >= -2048 {
		g.emit("\taddi a0, s0, %d", -off)
		return
	}
	g.emit("\tli a0, %d", -off)
	g.emit("\tadd a0, s0, a0")
}

func (g *gen) genFrameLoad(off int, ty *Type) {
	op := loadOp(ty)
	if -off >= -2048 {
		g.emit("\t%s a0, %d(s0)", op, -off)
		return
	}
	g.emit("\tli a0, %d", -off)
	g.emit("\tadd a0, s0, a0")
	g.emit("\t%s a0, 0(a0)", op)
}

// genLoadFromA0 loads *(a0) with the width of ty, keeping addresses for
// aggregates.
func (g *gen) genLoadFromA0(ty *Type) {
	if ty.Kind == TyArray || ty.Kind == TyStruct || ty.Kind == TyFunc {
		// Aggregates evaluate to their address; dereferencing a function
		// pointer yields the same function designator.
		return
	}
	g.emit("\t%s a0, 0(a0)", loadOp(ty))
}

// genAddr evaluates the address of an lvalue into a0.
func (g *gen) genAddr(e *Node) error {
	switch e.Kind {
	case NVar:
		sym := e.Sym
		switch sym.Kind {
		case SymGlobal, SymFunc:
			g.emit("\tla a0, %s", sym.Global)
		default:
			g.genFrameAddr(sym.Offset)
		}
	case NUn:
		if e.S != "*" {
			return &Error{e.Line, "not an lvalue"}
		}
		return g.genExpr(e.L)
	case NIndex:
		if err := g.genExpr(e.L); err != nil { // base (decays to pointer)
			return err
		}
		g.push("a0")
		if err := g.genExpr(e.R); err != nil {
			return err
		}
		g.genScaleA0(e.Ty.sizeOf())
		g.pop("a1")
		g.emit("\tadd a0, a1, a0")
	case NField:
		lt := exprType(e.L)
		f := findField(lt, e.S)
		if f == nil {
			return &Error{e.Line, "unknown field " + e.S}
		}
		if err := g.genAddr(e.L); err != nil {
			return err
		}
		if f.Offset != 0 {
			g.genAddImm("a0", f.Offset)
		}
	default:
		return &Error{e.Line, "expression is not addressable"}
	}
	return nil
}

// genScaleA0 multiplies a0 by size.
func (g *gen) genScaleA0(size int) {
	switch size {
	case 1:
	case 2:
		g.emit("\tslli a0, a0, 1")
	case 4:
		g.emit("\tslli a0, a0, 2")
	case 8:
		g.emit("\tslli a0, a0, 3")
	default:
		g.emit("\tli t0, %d", size)
		g.emit("\tmul a0, a0, t0")
	}
}

func (g *gen) genAddImm(reg string, v int) {
	if v >= -2048 && v <= 2047 {
		g.emit("\taddi %s, %s, %d", reg, reg, v)
		return
	}
	g.emit("\tli t0, %d", v)
	g.emit("\tadd %s, %s, t0", reg, reg)
}

// genCastA0 converts a0 from one scalar type to another.
func (g *gen) genCastA0(from, to *Type) {
	if to.Kind == TyVoid {
		return
	}
	t := decay(to)
	if !t.isInt() || t.Size == 4 {
		return // pointer/function/32-bit: bit pattern unchanged
	}
	switch {
	case t.Size == 1 && !t.Signed:
		g.emit("\tandi a0, a0, 0xff")
	case t.Size == 1 && t.Signed:
		g.emit("\tslli a0, a0, 24")
		g.emit("\tsrai a0, a0, 24")
	case t.Size == 2 && !t.Signed:
		g.emit("\tslli a0, a0, 16")
		g.emit("\tsrli a0, a0, 16")
	case t.Size == 2 && t.Signed:
		g.emit("\tslli a0, a0, 16")
		g.emit("\tsrai a0, a0, 16")
	}
	_ = from
}

// genBinary handles arithmetic, comparisons and logic. Operand order:
// lhs ends in a1, rhs in a0.
func (g *gen) genBinary(e *Node) error {
	switch e.S {
	case "&&":
		out := g.newLabel("andF")
		end := g.newLabel("andE")
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.emit("\tbeqz a0, %s", out)
		if err := g.genExpr(e.R); err != nil {
			return err
		}
		g.emit("\tsnez a0, a0")
		g.emit("\tj %s", end)
		g.emit("%s:", out)
		g.emit("\tli a0, 0")
		g.emit("%s:", end)
		return nil
	case "||":
		out := g.newLabel("orT")
		end := g.newLabel("orE")
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.emit("\tbnez a0, %s", out)
		if err := g.genExpr(e.R); err != nil {
			return err
		}
		g.emit("\tsnez a0, a0")
		g.emit("\tj %s", end)
		g.emit("%s:", out)
		g.emit("\tli a0, 1")
		g.emit("%s:", end)
		return nil
	case ",":
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		return g.genExpr(e.R)
	}

	lt, rt := decay(exprType(e.L)), decay(exprType(e.R))
	if err := g.genExpr(e.L); err != nil {
		return err
	}
	// Scale integer operand for pointer arithmetic lhs.
	g.push("a0")
	if err := g.genExpr(e.R); err != nil {
		return err
	}
	if (e.S == "+" || e.S == "-") && lt.isPtr() && rt.isInt() {
		g.genScaleA0(lt.Elem.sizeOf())
	}
	g.pop("a1")
	if e.S == "+" && lt.isInt() && rt.isPtr() {
		// scale the lhs (in a1)
		sz := rt.Elem.sizeOf()
		switch sz {
		case 1:
		case 2:
			g.emit("\tslli a1, a1, 1")
		case 4:
			g.emit("\tslli a1, a1, 2")
		default:
			g.emit("\tli t0, %d", sz)
			g.emit("\tmul a1, a1, t0")
		}
	}

	unsigned := !usualArith(lt, rt).Signed
	switch e.S {
	case "+":
		g.emit("\tadd a0, a1, a0")
	case "-":
		g.emit("\tsub a0, a1, a0")
		if lt.isPtr() && rt.isPtr() {
			// pointer difference: divide by element size
			sz := lt.Elem.sizeOf()
			switch sz {
			case 1:
			case 2:
				g.emit("\tsrai a0, a0, 1")
			case 4:
				g.emit("\tsrai a0, a0, 2")
			default:
				g.emit("\tli t0, %d", sz)
				g.emit("\tdiv a0, a0, t0")
			}
		}
	case "*":
		g.emit("\tmul a0, a1, a0")
	case "/":
		if unsigned {
			g.emit("\tdivu a0, a1, a0")
		} else {
			g.emit("\tdiv a0, a1, a0")
		}
	case "%":
		if unsigned {
			g.emit("\tremu a0, a1, a0")
		} else {
			g.emit("\trem a0, a1, a0")
		}
	case "&":
		g.emit("\tand a0, a1, a0")
	case "|":
		g.emit("\tor a0, a1, a0")
	case "^":
		g.emit("\txor a0, a1, a0")
	case "<<":
		g.emit("\tsll a0, a1, a0")
	case ">>":
		if lt.isInt() && lt.Signed && lt.Size == 4 {
			g.emit("\tsra a0, a1, a0")
		} else {
			g.emit("\tsrl a0, a1, a0")
		}
	case "==":
		g.emit("\tsub a0, a1, a0")
		g.emit("\tseqz a0, a0")
	case "!=":
		g.emit("\tsub a0, a1, a0")
		g.emit("\tsnez a0, a0")
	case "<":
		g.emit("\t%s a0, a1, a0", sltOp(unsigned || lt.isPtr() || rt.isPtr()))
	case ">":
		g.emit("\t%s a0, a0, a1", sltOp(unsigned || lt.isPtr() || rt.isPtr()))
	case "<=":
		g.emit("\t%s a0, a0, a1", sltOp(unsigned || lt.isPtr() || rt.isPtr()))
		g.emit("\txori a0, a0, 1")
	case ">=":
		g.emit("\t%s a0, a1, a0", sltOp(unsigned || lt.isPtr() || rt.isPtr()))
		g.emit("\txori a0, a0, 1")
	default:
		return &Error{e.Line, "unknown binary operator " + e.S}
	}
	return nil
}

func sltOp(unsigned bool) string {
	if unsigned {
		return "sltu"
	}
	return "slt"
}

func (g *gen) genUnary(e *Node) error {
	switch e.S {
	case "-":
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.emit("\tneg a0, a0")
	case "!":
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.emit("\tseqz a0, a0")
	case "~":
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.emit("\tnot a0, a0")
	case "*":
		if err := g.genExpr(e.L); err != nil {
			return err
		}
		g.genLoadFromA0(e.Ty)
	case "&":
		return g.genAddr(e.L)
	default:
		return &Error{e.Line, "unknown unary operator " + e.S}
	}
	return nil
}

// genAssign handles = and compound assignments, including struct copy.
func (g *gen) genAssign(e *Node) error {
	lt := exprType(e.L)
	if e.S == "=" && lt.Kind == TyStruct {
		// Struct assignment: word-wise copy.
		if err := g.genAddr(e.L); err != nil {
			return err
		}
		g.push("a0")
		if err := g.genExpr(e.R); err != nil { // struct rvalue = address
			return err
		}
		g.pop("a1") // a1 = dst, a0 = src
		size := lt.sizeOf()
		loop := g.newLabel("scopy")
		g.emit("\tli t0, %d", size)
		g.emit("%s:", loop)
		g.emit("\tlbu t1, 0(a0)")
		g.emit("\tsb t1, 0(a1)")
		g.emit("\taddi a0, a0, 1")
		g.emit("\taddi a1, a1, 1")
		g.emit("\taddi t0, t0, -1")
		g.emit("\tbnez t0, %s", loop)
		return nil
	}

	if e.S == "=" {
		if err := g.genExpr(e.R); err != nil {
			return err
		}
		g.push("a0")
		if err := g.genAddr(e.L); err != nil {
			return err
		}
		g.pop("a1")
		g.emit("\t%s a1, 0(a0)", storeOp(lt))
		g.emit("\tmv a0, a1")
		return nil
	}

	// Compound assignment: addr in a1 (kept), rhs in a0.
	if err := g.genAddr(e.L); err != nil {
		return err
	}
	g.push("a0")
	if err := g.genExpr(e.R); err != nil {
		return err
	}
	rt := decay(exprType(e.R))
	if (e.S == "+=" || e.S == "-=") && decay(lt).isPtr() {
		g.genScaleA0(decay(lt).Elem.sizeOf())
	}
	g.pop("a1")
	g.emit("\t%s t1, 0(a1)", loadOp(lt))
	unsigned := !usualArith(decay(lt), rt).Signed
	switch e.S {
	case "+=":
		g.emit("\tadd a0, t1, a0")
	case "-=":
		g.emit("\tsub a0, t1, a0")
	case "*=":
		g.emit("\tmul a0, t1, a0")
	case "/=":
		if unsigned {
			g.emit("\tdivu a0, t1, a0")
		} else {
			g.emit("\tdiv a0, t1, a0")
		}
	case "%=":
		if unsigned {
			g.emit("\tremu a0, t1, a0")
		} else {
			g.emit("\trem a0, t1, a0")
		}
	case "&=":
		g.emit("\tand a0, t1, a0")
	case "|=":
		g.emit("\tor a0, t1, a0")
	case "^=":
		g.emit("\txor a0, t1, a0")
	case "<<=":
		g.emit("\tsll a0, t1, a0")
	case ">>=":
		if decay(lt).isInt() && decay(lt).Signed {
			g.emit("\tsra a0, t1, a0")
		} else {
			g.emit("\tsrl a0, t1, a0")
		}
	default:
		return &Error{e.Line, "unknown compound assignment " + e.S}
	}
	g.emit("\t%s a0, 0(a1)", storeOp(lt))
	return nil
}

// genIncDec handles ++/-- (pre and post).
func (g *gen) genIncDec(e *Node) error {
	ty := decay(exprType(e.L))
	step := 1
	if ty.isPtr() {
		step = ty.Elem.sizeOf()
	}
	if e.S == "--" {
		step = -step
	}
	if err := g.genAddr(e.L); err != nil {
		return err
	}
	g.emit("\tmv a1, a0")
	g.emit("\t%s a0, 0(a1)", loadOp(exprType(e.L)))
	if e.Kind == NPostIncDec {
		g.emit("\tmv t1, a0") // old value
		g.genAddImm("a0", step)
		g.emit("\t%s a0, 0(a1)", storeOp(exprType(e.L)))
		g.emit("\tmv a0, t1")
	} else {
		g.genAddImm("a0", step)
		g.emit("\t%s a0, 0(a1)", storeOp(exprType(e.L)))
	}
	return nil
}

// genCall evaluates a function call.
func (g *gen) genCall(e *Node) error {
	// Evaluate args left-to-right onto the stack.
	for _, a := range e.List {
		if err := g.genExpr(a); err != nil {
			return err
		}
		g.push("a0")
	}
	// Direct or indirect?
	direct := ""
	callee := e.L
	// Unwrap (*fp)(...) and plain fp(...).
	if callee.Kind == NUn && callee.S == "*" {
		callee = callee.L
	}
	if callee.Kind == NVar && callee.Sym.Kind == SymFunc {
		direct = callee.Sym.Global
	} else {
		if err := g.genExpr(callee); err != nil {
			return err
		}
		g.emit("\tmv t2, a0")
	}
	// Pop args into a(n-1)..a0.
	for i := len(e.List) - 1; i >= 0; i-- {
		g.pop(fmt.Sprintf("a%d", i))
	}
	if direct != "" {
		g.emit("\tcall %s", direct)
	} else {
		g.emit("\tjalr ra, 0(t2)")
	}
	return nil
}
