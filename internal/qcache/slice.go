package qcache

import "rvcte/internal/smt"

// Independence slicing (the "independent constraint sets" optimization of
// EXE/KLEE): two conditions belong to the same group iff they share a
// free variable, transitively. A conjunction is satisfiable iff every
// group is, and per-group models merge into a whole-set model because the
// groups are variable-disjoint by construction.

// slice partitions conds into connectivity groups of condition indices
// via union-find over the shared variables. Group order is by first
// member; the members of each group keep their original order.
func (c *Cache) slice(conds []*smt.Expr) [][]int {
	parent := make([]int, len(conds))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	owner := map[int]int{} // variable id -> first cond index using it
	for i, e := range conds {
		for _, v := range c.varsOf(e) {
			if j, ok := owner[v]; ok {
				union(i, j)
			} else {
				owner[v] = i
			}
		}
	}

	groups := map[int][]int{}
	var order []int
	for i := range conds {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}
