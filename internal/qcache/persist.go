package qcache

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Cross-run persistence. The cache serializes to JSONL — one entry per
// line — so repeated runs on the same guest binary warm-start. The
// format is self-describing and safe to merge:
//
//	{"k":<key>,"e":[<elem>...],"s":true,"m":{"<var name>":<value>}}
//
// Keys and element hashes are structural (variables hash by name, see
// key.go), so entries from a previous process land on the same keys.
// Sat models are stored keyed by variable *name* and re-validated with
// smt.Eval before any hit is served, so a stale or foreign sat entry can
// cost a re-solve but never a wrong model. Unsat entries are trusted by
// key: a matching key means a structurally identical constraint set
// (modulo 64-bit hash collision, the standard exposure of any hashed
// cache).

// persistEntry is the on-disk form of one cache entry.
type persistEntry struct {
	Key   uint64            `json:"k"`
	Elems []uint64          `json:"e"`
	Sat   bool              `json:"s"`
	Model map[string]uint64 `json:"m,omitempty"`
}

// Save writes every cache entry to path (atomically, via a temp file in
// the same directory).
func (c *Cache) Save(path string) error {
	var ents []*entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, ent := range s.exact {
			ents = append(ents, ent)
		}
		s.mu.Unlock()
	}
	// Deterministic file contents for a given entry set.
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, ent := range ents {
		pe := persistEntry{Key: ent.key, Elems: ent.elems, Sat: ent.sat, Model: ent.model}
		if err := enc.Encode(&pe); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load merges entries from path into the cache. Malformed lines abort
// with an error; a missing file is reported via os.IsNotExist on the
// returned error, which warm-start callers treat as an empty cache.
func (c *Cache) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var pe persistEntry
		if err := json.Unmarshal(sc.Bytes(), &pe); err != nil {
			return fmt.Errorf("qcache: %s:%d: %v", path, line, err)
		}
		if len(pe.Elems) == 0 || (pe.Sat && pe.Model == nil) {
			return fmt.Errorf("qcache: %s:%d: malformed entry", path, line)
		}
		c.insert(&entry{key: pe.Key, elems: pe.Elems, sat: pe.Sat, model: pe.Model}, &c.stats.Loaded)
	}
	return sc.Err()
}
