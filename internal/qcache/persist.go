package qcache

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// Cross-run persistence. The cache serializes to JSONL — one entry per
// line — so repeated runs on the same guest binary warm-start. The
// format is self-describing and safe to merge:
//
//	{"k":<key>,"e":[<elem>...],"s":true,"m":{"<var name>":<value>}}
//
// Keys and element hashes are structural (variables hash by name, see
// key.go), so entries from a previous process land on the same keys.
// Sat models are stored keyed by variable *name* and re-validated with
// smt.Eval before any hit is served, so a stale or foreign sat entry can
// cost a re-solve but never a wrong model. Unsat entries are trusted by
// key: a matching key means a structurally identical constraint set
// (modulo 64-bit hash collision, the standard exposure of any hashed
// cache).
//
// The same wire form crosses process boundaries live: campaign workers
// export their new entries to the coordinator and import the merged set
// of their peers (ExportEntries / ImportEntries), so one worker's solve
// is every worker's warm start.

// WireEntry is the on-disk and on-the-wire form of one cache entry.
type WireEntry struct {
	Key   uint64            `json:"k"`
	Elems []uint64          `json:"e"`
	Sat   bool              `json:"s"`
	Model map[string]uint64 `json:"m,omitempty"`
}

// Valid reports whether the entry is structurally well-formed (a sat
// entry must carry a model; every entry names its constraint elements).
func (w WireEntry) Valid() bool {
	return len(w.Elems) > 0 && (!w.Sat || w.Model != nil)
}

// ExportEntries snapshots every cache entry in wire form, sorted by key
// (deterministic for a given entry set). Entries are immutable once
// inserted, so the returned slice can be serialized without copying.
func (c *Cache) ExportEntries() []WireEntry {
	var out []WireEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, ent := range s.exact {
			out = append(out, WireEntry{Key: ent.key, Elems: ent.elems, Sat: ent.sat, Model: ent.model})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ImportEntries merges wire entries into the cache (first writer of a
// key wins; malformed entries are skipped) and reports how many were
// new. Imported entries count as Loaded, like a disk warm start.
func (c *Cache) ImportEntries(ents []WireEntry) int {
	n := 0
	for _, w := range ents {
		if !w.Valid() {
			continue
		}
		before := atomic.LoadInt64(&c.stats.Loaded)
		c.insert(&entry{key: w.Key, elems: w.Elems, sat: w.Sat, model: w.Model}, &c.stats.Loaded)
		if atomic.LoadInt64(&c.stats.Loaded) != before {
			n++
		}
	}
	return n
}

// Save writes every cache entry to path. The write is crash-safe and
// safe against concurrent savers: entries stream into a uniquely named
// temp file in the target directory, which is fsynced and then
// atomically renamed over path — a process killed mid-save (or two
// workers saving the same shared cache file at once) can never leave a
// torn or interleaved file for a peer to load.
func (c *Cache) Save(path string) error {
	ents := c.ExportEntries()

	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, pe := range ents {
		if err := enc.Encode(&pe); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	// The rename must not be reordered before the data reaches disk, or
	// a crash between them publishes a complete-looking empty file.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load merges entries from path into the cache. Malformed lines abort
// with an error; a missing file is reported via os.IsNotExist on the
// returned error, which warm-start callers treat as an empty cache.
func (c *Cache) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var pe WireEntry
		if err := json.Unmarshal(sc.Bytes(), &pe); err != nil {
			return fmt.Errorf("qcache: %s:%d: %v", path, line, err)
		}
		if !pe.Valid() {
			return fmt.Errorf("qcache: %s:%d: malformed entry", path, line)
		}
		c.insert(&entry{key: pe.Key, elems: pe.Elems, sat: pe.Sat, model: pe.Model}, &c.stats.Loaded)
	}
	return sc.Err()
}
