// Package qcache is the SMT query-cache subsystem sitting between the
// concolic exploration engine (internal/cte) and the solver
// (internal/smt). Concolic exploration re-issues highly overlapping
// queries — a long shared path-condition prefix plus one flipped branch —
// and the cache turns most of them into dictionary lookups and cheap
// model evaluations, in the spirit of KLEE's counterexample cache:
//
//   - Canonical keys. A constraint set is keyed by the sorted,
//     deduplicated structural hashes of its conditions (key.go). Hashing
//     is memoized per interned DAG node, so a query costs O(roots) after
//     the first visit. Variables hash by name, making keys stable across
//     processes (persist.go).
//   - Model reuse. Cached sat models (and, during slicing, the incumbent
//     input) are *tried* against a new set with smt.Eval before any SAT
//     call. A cached superset model automatically satisfies a subset
//     query, so superset subsumption falls out of the candidate index +
//     Eval check; no cached model is ever returned unvalidated.
//   - Unsat subsumption. Any superset of a known-unsat set is unsat.
//     Unsat entries are indexed under their minimum element hash (which a
//     superset necessarily contains), so the subset scan is a bounded
//     per-element probe, not a cache-wide sweep.
//   - Independence slicing. On a miss the set is partitioned into
//     variable-connectivity groups (slice.go); only the group containing
//     the flipped branch goes to the SAT solver, the untouched prefix
//     groups are re-satisfied by the incumbent input, and the per-group
//     models merge soundly because groups are variable-disjoint.
//
// One Cache may be shared by every worker of a parallel exploration:
// lookups and stores take fine-grained sharded locks, counters are
// atomics, and entries are immutable after insertion.
package qcache

import (
	"sync"
	"sync/atomic"
	"time"

	"rvcte/internal/obs"
	"rvcte/internal/smt"
)

const (
	numShards   = 16
	maxElemList = 32 // cap per-element index lists (exact map is unbounded)
	// largeSetThreshold classifies a constraint set as "large" for the
	// qcache.large_sets counter — beyond it, canonicalization and the
	// candidate Eval scans dominate resolve latency, not the SAT solve.
	largeSetThreshold = 256
)

// Options tunes a cache.
type Options struct {
	// MaxCandidates bounds how many cached models are tried (via
	// smt.Eval) per lookup before falling back to the solver. 0 selects
	// the default of 8.
	MaxCandidates int
}

// Stats is a snapshot of the cache counters. Hits+EvalHits+SubsumeHits
// is the number of Check calls answered without any SAT query;
// SolverCalls is the number that reached the SAT solver, of which
// SliceSolves solved only the flipped-branch group.
type Stats struct {
	Queries     int64 `json:"queries"`      // non-trivial Check calls
	Hits        int64 `json:"hits"`         // exact-key hits
	EvalHits    int64 `json:"eval_hits"`    // answered by re-evaluating a cached model
	SubsumeHits int64 `json:"subsume_hits"` // unsat by subset subsumption
	SolverCalls int64 `json:"solver_calls"` // fell through to the SAT solver
	SliceSolves int64 `json:"slice_solves"` // ... of which solved only the sliced group
	Unknowns    int64 `json:"unknowns"`     // solver budget exhaustion passed through (uncached)
	Stores      int64 `json:"stores"`       // entries inserted this run
	Loaded      int64 `json:"loaded"`       // entries loaded from disk
	Entries     int64 `json:"entries"`      // current entry count
}

type entry struct {
	key   uint64
	elems []uint64 // sorted, deduplicated element hashes
	sat   bool
	model map[string]uint64 // name-keyed model projection; nil for unsat
}

type shard struct {
	mu    sync.Mutex
	exact map[uint64]*entry
	// satByElem indexes sat entries under each of their element hashes
	// (bounded lists — the reuse heuristic); unsatByMin indexes unsat
	// entries under their minimum element hash (exact subset detection:
	// a superset necessarily contains the minimum).
	satByElem  map[uint64][]*entry
	unsatByMin map[uint64][]*entry
}

// Cache is a concurrency-safe SMT query cache bound to one Builder.
type Cache struct {
	b       *smt.Builder
	maxCand int

	// OnAnswer, when set before first use, observes every non-trivial
	// Check answer: the canonicalized conditions, the verdict, the model
	// (nil unless sat) and whether the full-set cache lookup answered
	// (sliced and solved queries report false). It is invoked
	// synchronously from Check on the calling goroutine — the audit hook
	// the correctness property tests hang off.
	OnAnswer func(conds []*smt.Expr, sat bool, model smt.Assignment, fromCache bool)

	hmu    sync.Mutex
	hashes map[*smt.Expr]uint64
	vars   map[*smt.Expr][]int

	shards [numShards]shard

	stats Stats // accessed atomically

	// Observability mirrors (SetObs): the Stats atomics stay the source
	// of truth for Report.Cache; these handles additionally feed the
	// shared metrics registry ("qcache.*") and the tracer. All nil-safe,
	// so an unwired cache pays one nil test per event.
	obsQueries, obsHits, obsEvalHits, obsSubsumeHits       *obs.Counter
	obsSolverCalls, obsSliceSolves, obsUnknowns, obsStores *obs.Counter
	obsEntries                                             *obs.Gauge
	// obsResolveUS buckets end-to-end resolve latency (lookup + slicing +
	// residual solve) by constraint-set size; obsLargeSets counts resolves
	// beyond largeSetThreshold elements.
	obsResolveUS [4]*obs.Histogram
	obsLargeSets *obs.Counter
	tracer       *obs.Tracer
}

// SetObs wires the cache into an observability bundle: hit/miss/store
// counters under "qcache.*", an entry-count gauge, and per-hit trace
// events classed "exact" | "subsume" | "eval". Safe with a nil o; call
// before sharing the cache across workers.
func (c *Cache) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	m := o.Registry()
	c.obsQueries = m.Counter("qcache.queries")
	c.obsHits = m.Counter("qcache.hits")
	c.obsEvalHits = m.Counter("qcache.eval_hits")
	c.obsSubsumeHits = m.Counter("qcache.subsume_hits")
	c.obsSolverCalls = m.Counter("qcache.solver_calls")
	c.obsSliceSolves = m.Counter("qcache.slice_solves")
	c.obsUnknowns = m.Counter("qcache.unknowns")
	c.obsStores = m.Counter("qcache.stores")
	c.obsEntries = m.Gauge("qcache.entries")
	for i, size := range [4]string{"le8", "le64", "le256", "gt256"} {
		c.obsResolveUS[i] = m.Histogram("qcache.resolve_us."+size, obs.LatencyBoundsUS)
	}
	c.obsLargeSets = m.Counter("qcache.large_sets")
	c.tracer = o.Trace()
}

// resolveHist picks the resolve-latency histogram for a constraint set
// of n elements (nil when the cache is unwired).
func (c *Cache) resolveHist(n int) *obs.Histogram {
	switch {
	case n <= 8:
		return c.obsResolveUS[0]
	case n <= 64:
		return c.obsResolveUS[1]
	case n <= largeSetThreshold:
		return c.obsResolveUS[2]
	default:
		return c.obsResolveUS[3]
	}
}

// hit records one cache-answered query of the given class.
func (c *Cache) hit(counter *int64, obsCounter *obs.Counter, class string) {
	atomic.AddInt64(counter, 1)
	obsCounter.Inc()
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{Ev: obs.EvCacheHit, Class: class})
	}
}

// New creates an empty cache for expressions of b.
func New(b *smt.Builder, opt Options) *Cache {
	c := &Cache{
		b:       b,
		maxCand: opt.MaxCandidates,
		hashes:  map[*smt.Expr]uint64{},
		vars:    map[*smt.Expr][]int{},
	}
	if c.maxCand <= 0 {
		c.maxCand = 8
	}
	for i := range c.shards {
		c.shards[i] = shard{
			exact:      map[uint64]*entry{},
			satByElem:  map[uint64][]*entry{},
			unsatByMin: map[uint64][]*entry{},
		}
	}
	return c
}

// Stats returns a consistent-enough snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Queries:     atomic.LoadInt64(&c.stats.Queries),
		Hits:        atomic.LoadInt64(&c.stats.Hits),
		EvalHits:    atomic.LoadInt64(&c.stats.EvalHits),
		SubsumeHits: atomic.LoadInt64(&c.stats.SubsumeHits),
		SolverCalls: atomic.LoadInt64(&c.stats.SolverCalls),
		SliceSolves: atomic.LoadInt64(&c.stats.SliceSolves),
		Unknowns:    atomic.LoadInt64(&c.stats.Unknowns),
		Stores:      atomic.LoadInt64(&c.stats.Stores),
		Loaded:      atomic.LoadInt64(&c.stats.Loaded),
		Entries:     atomic.LoadInt64(&c.stats.Entries),
	}
}

// ValidateModel reports whether m satisfies every condition. It is the
// cache-independent correctness oracle: the cache runs it before handing
// out any cached or merged model, and tests use it to audit hits.
func ValidateModel(conds []*smt.Expr, m smt.Assignment) bool {
	for _, e := range conds {
		if smt.Eval(e, m) != 1 {
			return false
		}
	}
	return true
}

// Check determines the satisfiability of the conjunction of conds,
// consulting and updating the cache and falling back to solver for
// residual SAT work. Each cond must have width 1. hint, when non-nil, is
// an assignment known to satisfy all but the final condition (the
// engine's incumbent input: the flipped branch is last); it enables
// independence slicing. The returned model, like smt.Solver.Check's, may
// leave unconstrained variables unassigned (they read as zero).
//
// Check is safe for concurrent use with distinct solvers; the solver
// itself is only used by the calling goroutine.
func (c *Cache) Check(solver *smt.Solver, conds []*smt.Expr, hint smt.Assignment) (sat bool, model smt.Assignment, unknown bool) {
	live := make([]*smt.Expr, 0, len(conds))
	for _, e := range conds {
		if e.IsTrue() {
			continue
		}
		if e.IsFalse() {
			return false, nil, false
		}
		live = append(live, e)
	}
	if len(live) == 0 {
		return true, smt.Assignment{}, false
	}
	atomic.AddInt64(&c.stats.Queries, 1)
	c.obsQueries.Inc()
	var t0 time.Time
	wired := c.obsResolveUS[0] != nil
	if wired {
		t0 = time.Now()
	}
	sat, model, unknown, fromCache := c.resolve(solver, live, hint)
	if wired {
		c.resolveHist(len(live)).ObserveDuration(time.Since(t0))
		if len(live) > largeSetThreshold {
			c.obsLargeSets.Inc()
		}
	}
	if c.OnAnswer != nil && !unknown {
		c.OnAnswer(live, sat, model, fromCache)
	}
	return sat, model, unknown
}

func (c *Cache) resolve(solver *smt.Solver, live []*smt.Expr, hint smt.Assignment) (sat bool, model smt.Assignment, unknown, fromCache bool) {
	elems := c.hashSet(live)
	key := setKey(elems)
	if st, m, ok := c.lookupSet(key, elems, live); ok {
		return st, m, false, true
	}

	if hint != nil {
		if st, m, unk, ok := c.checkSliced(solver, live, hint, key, elems); ok {
			return st, m, unk, false
		}
	}

	// Full solve.
	atomic.AddInt64(&c.stats.SolverCalls, 1)
	c.obsSolverCalls.Inc()
	sat, model, unknown = solver.Check(live...)
	if unknown {
		atomic.AddInt64(&c.stats.Unknowns, 1)
		c.obsUnknowns.Inc()
		return false, nil, true, false
	}
	if sat {
		c.store(&entry{key: key, elems: elems, sat: true, model: c.project(live, model)})
	} else {
		c.store(&entry{key: key, elems: elems, sat: false})
	}
	return sat, model, false, false
}

// checkSliced partitions live into independence groups and solves only
// the group containing the final (flipped-branch) condition; the other
// groups are re-satisfied by the hint. ok reports whether slicing
// applied; when false the caller falls back to a full solve.
func (c *Cache) checkSliced(solver *smt.Solver, live []*smt.Expr, hint smt.Assignment, key uint64, elems []uint64) (sat bool, model smt.Assignment, unknown, ok bool) {
	groups := c.slice(live)
	if len(groups) < 2 {
		return false, nil, false, false
	}
	last := len(live) - 1
	var flipped []int
	merged := smt.Assignment{}
	for _, g := range groups {
		inFlipped := false
		for _, i := range g {
			if i == last {
				inFlipped = true
				break
			}
		}
		if inFlipped {
			flipped = g
			continue
		}
		// Prefix group: the incumbent input satisfied the whole prefix,
		// so it satisfies this group. Verify (cheap) rather than trust —
		// callers other than the engine may pass arbitrary hints.
		for _, i := range g {
			if smt.Eval(live[i], hint) != 1 {
				return false, nil, false, false
			}
			for _, v := range c.varsOf(live[i]) {
				merged[v] = hint[v]
			}
		}
	}

	sub := make([]*smt.Expr, 0, len(flipped))
	for _, i := range flipped {
		sub = append(sub, live[i])
	}
	subElems := c.hashSet(sub)
	subKey := setKey(subElems)

	var subModel smt.Assignment
	if st, m, hit := c.lookupSet(subKey, subElems, sub); hit {
		if !st {
			// The flipped group alone is unsat, hence so is the superset.
			c.store(&entry{key: key, elems: elems, sat: false})
			return false, nil, false, true
		}
		subModel = m
	} else {
		atomic.AddInt64(&c.stats.SolverCalls, 1)
		atomic.AddInt64(&c.stats.SliceSolves, 1)
		c.obsSolverCalls.Inc()
		c.obsSliceSolves.Inc()
		st, m, unk := solver.Check(sub...)
		if unk {
			atomic.AddInt64(&c.stats.Unknowns, 1)
			c.obsUnknowns.Inc()
			return false, nil, true, true
		}
		if !st {
			c.store(&entry{key: subKey, elems: subElems, sat: false})
			c.store(&entry{key: key, elems: elems, sat: false})
			return false, nil, false, true
		}
		c.store(&entry{key: subKey, elems: subElems, sat: true, model: c.project(sub, m)})
		subModel = m
	}

	for _, i := range flipped {
		for _, v := range c.varsOf(live[i]) {
			merged[v] = subModel[v]
		}
	}
	// Groups are variable-disjoint, so the merge must satisfy the whole
	// set; the check guards against misuse (a hint overlapping the
	// flipped group's variables would have been caught by slicing).
	if !ValidateModel(live, merged) {
		return false, nil, false, false
	}
	c.store(&entry{key: key, elems: elems, sat: true, model: c.project(live, merged)})
	return true, merged, false, true
}

// lookupSet resolves a canonicalized set from the cache alone: exact key,
// unsat subset subsumption, then bounded model reuse. ok reports whether
// the cache answered.
func (c *Cache) lookupSet(key uint64, elems []uint64, conds []*smt.Expr) (sat bool, model smt.Assignment, ok bool) {
	if ent := c.getExact(key); ent != nil {
		if !ent.sat {
			c.hit(&c.stats.Hits, c.obsHits, "exact")
			return false, nil, true
		}
		if m := c.hydrate(ent.model); ValidateModel(conds, m) {
			c.hit(&c.stats.Hits, c.obsHits, "exact")
			return true, m, true
		}
		// Key collision or stale persisted model: fall through and let
		// the normal path re-solve (the store keeps the first entry, so
		// this query will keep re-solving — correct, merely unlucky).
	}
	if c.unsatSubset(elems) {
		c.hit(&c.stats.SubsumeHits, c.obsSubsumeHits, "subsume")
		c.store(&entry{key: key, elems: elems, sat: false})
		return false, nil, true
	}
	for _, ent := range c.satCandidates(elems) {
		if m := c.hydrate(ent.model); ValidateModel(conds, m) {
			c.hit(&c.stats.EvalHits, c.obsEvalHits, "eval")
			c.store(&entry{key: key, elems: elems, sat: true, model: c.project(conds, m)})
			return true, m, true
		}
	}
	return false, nil, false
}

func (c *Cache) getExact(key uint64) *entry {
	s := &c.shards[key%numShards]
	s.mu.Lock()
	ent := s.exact[key]
	s.mu.Unlock()
	return ent
}

// unsatSubset reports whether some cached unsat set is a subset of elems.
func (c *Cache) unsatSubset(elems []uint64) bool {
	var have map[uint64]bool
	for _, e := range elems {
		s := &c.shards[e%numShards]
		s.mu.Lock()
		cands := s.unsatByMin[e]
		s.mu.Unlock()
		if len(cands) == 0 {
			continue
		}
		if have == nil {
			have = make(map[uint64]bool, len(elems))
			for _, h := range elems {
				have[h] = true
			}
		}
	scan:
		for _, u := range cands {
			if len(u.elems) > len(elems) {
				continue
			}
			for _, h := range u.elems {
				if !have[h] {
					continue scan
				}
			}
			return true
		}
	}
	return false
}

// satCandidates gathers up to maxCand distinct cached sat entries sharing
// at least one element with elems. Entries indexed under more elements
// are found earlier; supersets of elems (whose models are guaranteed to
// validate) are indexed under every element and thus always candidates.
func (c *Cache) satCandidates(elems []uint64) []*entry {
	var out []*entry
	seen := map[*entry]bool{}
	for _, e := range elems {
		s := &c.shards[e%numShards]
		s.mu.Lock()
		list := s.satByElem[e]
		for _, ent := range list {
			if !seen[ent] {
				seen[ent] = true
				out = append(out, ent)
			}
		}
		s.mu.Unlock()
		if len(out) >= c.maxCand {
			out = out[:c.maxCand]
			break
		}
	}
	return out
}

// store inserts an immutable entry; the first writer of a key wins.
func (c *Cache) store(ent *entry) { c.insert(ent, &c.stats.Stores) }

func (c *Cache) insert(ent *entry, counter *int64) {
	s := &c.shards[ent.key%numShards]
	s.mu.Lock()
	if _, dup := s.exact[ent.key]; dup {
		s.mu.Unlock()
		return
	}
	s.exact[ent.key] = ent
	s.mu.Unlock()
	atomic.AddInt64(counter, 1)
	if counter == &c.stats.Stores {
		c.obsStores.Inc()
	}
	c.obsEntries.Set(atomic.AddInt64(&c.stats.Entries, 1))
	c.index(ent)
}

// index registers ent in the per-element lookup structures.
func (c *Cache) index(ent *entry) {
	if ent.sat {
		for _, e := range ent.elems {
			s := &c.shards[e%numShards]
			s.mu.Lock()
			if len(s.satByElem[e]) < maxElemList {
				s.satByElem[e] = append(s.satByElem[e], ent)
			}
			s.mu.Unlock()
		}
		return
	}
	min := ent.elems[0]
	s := &c.shards[min%numShards]
	s.mu.Lock()
	if len(s.unsatByMin[min]) < maxElemList {
		s.unsatByMin[min] = append(s.unsatByMin[min], ent)
	}
	s.mu.Unlock()
}

// project restricts model to the variables of conds, keyed by name (the
// persistable, id-stable representation).
func (c *Cache) project(conds []*smt.Expr, model smt.Assignment) map[string]uint64 {
	out := map[string]uint64{}
	for _, e := range conds {
		for _, v := range c.varsOf(e) {
			if _, ok := out[c.b.VarName(v)]; !ok {
				out[c.b.VarName(v)] = model[v]
			}
		}
	}
	return out
}

// hydrate converts a name-keyed model back to builder variable ids.
// Names unknown to the builder are skipped: they cannot appear in any
// condition this builder constructed.
func (c *Cache) hydrate(m map[string]uint64) smt.Assignment {
	out := make(smt.Assignment, len(m))
	for name, v := range m {
		if id, ok := c.b.VarID(name); ok {
			out[id] = v
		}
	}
	return out
}
