package qcache

import (
	"fmt"
	"testing"

	"rvcte/internal/smt"
)

// benchConds returns the i-th distinct two-group constraint set: an
// equality pinning x and a range constraint on y — the generic shape of
// a path-condition prefix plus flipped branch.
func benchConds(b *smt.Builder, x, y *smt.Expr, i int) []*smt.Expr {
	return []*smt.Expr{
		b.Eq(x, b.Const(32, uint64(i))),
		b.Ult(y, b.Const(32, uint64(i%1000)+1)),
	}
}

// BenchmarkQueryCacheHit measures the exact-hit path: canonicalization,
// lookup and the Eval-based model validation, with no SAT work.
func BenchmarkQueryCacheHit(b *testing.B) {
	bld := smt.NewBuilder()
	x, y := bld.Var(32, "x"), bld.Var(32, "y")
	c := New(bld, Options{})
	conds := benchConds(bld, x, y, 7)
	solver := smt.NewSolver(bld)
	if sat, _, _ := c.Check(solver, conds, nil); !sat {
		b.Fatal("seed query must be sat")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sat, _, _ := c.Check(solver, conds, nil); !sat {
			b.Fatal("hit must stay sat")
		}
	}
	if st := c.Stats(); st.SolverCalls != 1 {
		b.Fatalf("benchmark must not re-solve (%+v)", st)
	}
}

// BenchmarkQueryCacheMiss measures the miss path end to end: hashing a
// fresh set, the failed lookups, the SAT solve and the store.
func BenchmarkQueryCacheMiss(b *testing.B) {
	bld := smt.NewBuilder()
	x, y := bld.Var(32, "x"), bld.Var(32, "y")
	sets := make([][]*smt.Expr, b.N)
	for i := range sets {
		sets[i] = benchConds(bld, x, y, i)
	}
	c := New(bld, Options{})
	solver := smt.NewSolver(bld)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sat, _, _ := c.Check(solver, sets[i], nil); !sat {
			b.Fatal("miss must be sat")
		}
	}
}

// BenchmarkQueryCacheEvalReuse measures the counterexample-cache path:
// every query is a fresh set (no exact hit possible) sharing one element
// with a cached sat entry whose model happens to satisfy the rest, so
// each iteration is answered by model re-evaluation instead of SAT.
func BenchmarkQueryCacheEvalReuse(b *testing.B) {
	bld := smt.NewBuilder()
	x, y := bld.Var(32, "x"), bld.Var(32, "y")
	c := New(bld, Options{})
	solver := smt.NewSolver(bld)
	pin := bld.Eq(x, bld.Const(32, 3))
	if sat, _, _ := c.Check(solver, []*smt.Expr{pin, bld.Ult(y, bld.Const(32, 10))}, nil); !sat {
		b.Fatal("seed query must be sat")
	}
	sets := make([][]*smt.Expr, b.N)
	for i := range sets {
		// The cached model (y < 10) satisfies every wider bound.
		sets[i] = []*smt.Expr{pin, bld.Ult(y, bld.Const(32, uint64(i)+1000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sat, _, _ := c.Check(solver, sets[i], nil); !sat {
			b.Fatal("reuse query must be sat")
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.SolverCalls != 1 {
		b.Fatalf("reuse benchmark must not re-solve (%+v)", st)
	}
}

// largeConds builds an n-element constraint set over independent byte
// variables — the shape of a deep path condition (a long prefix of small
// per-variable facts). At this size canonicalization, the sorted key and
// the candidate Eval scans dominate resolve latency, not SAT work.
func largeConds(bld *smt.Builder, n int) []*smt.Expr {
	conds := make([]*smt.Expr, 0, n)
	for i := 0; len(conds) < n; i++ {
		v := bld.Var(8, fmt.Sprintf("lv[%d]", i))
		conds = append(conds, bld.Ne(v, bld.Const(8, uint64(i%251))))
		if len(conds) < n {
			conds = append(conds, bld.Ult(v, bld.Const(8, 250)))
		}
	}
	return conds
}

// BenchmarkQCacheResolveLarge guards the canonicalization cost of an
// ~800-element constraint set: after the seed solve every iteration is
// an exact hit, so the loop measures hashing, key construction and
// lookup at BMC/deep-path scale with zero SAT work.
func BenchmarkQCacheResolveLarge(b *testing.B) {
	bld := smt.NewBuilder()
	conds := largeConds(bld, 800)
	c := New(bld, Options{})
	solver := smt.NewSolver(bld)
	if sat, _, _ := c.Check(solver, conds, nil); !sat {
		b.Fatal("seed query must be sat")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sat, _, _ := c.Check(solver, conds, nil); !sat {
			b.Fatal("hit must stay sat")
		}
	}
	if st := c.Stats(); st.SolverCalls != 1 {
		b.Fatalf("benchmark must not re-solve (%+v)", st)
	}
}
