package qcache

import (
	"sort"

	"rvcte/internal/smt"
)

// Structural hashing of the interned expression DAG. Every *smt.Expr is
// hashed exactly once per cache (the per-node memo exploits interning:
// pointer identity implies structural identity within one Builder), so
// hashing a constraint set is O(new nodes), amortized O(roots) for the
// concolic pattern of a long shared path-condition prefix.
//
// The hash is a pure function of the expression *structure* — kind,
// width, operand order, constant values — and, for variables, of the
// variable *name* rather than its builder-assigned id. Names are stable
// across runs of the same guest binary while ids depend on creation
// order, so name-based hashing is what makes persisted cache entries
// (see persist.go) land on the same keys in a fresh process.

// mix64 is a splitmix64-style finalizer step used as the hash combiner.
// The constants are fixed forever: persisted cache files depend on them.
func mix64(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hashString hashes a variable name (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashExpr returns the structural hash of e, memoized per node.
func (c *Cache) hashExpr(e *smt.Expr) uint64 {
	c.hmu.Lock()
	h := c.hashLocked(e)
	c.hmu.Unlock()
	return h
}

func (c *Cache) hashLocked(e *smt.Expr) uint64 {
	if h, ok := c.hashes[e]; ok {
		return h
	}
	h := uint64(0x51ca7e00)
	h = mix64(h, uint64(e.Kind))
	h = mix64(h, uint64(e.Width))
	if e.Kind == smt.KVar {
		h = mix64(h, hashString(c.b.VarName(int(e.Val))))
	} else {
		h = mix64(h, e.Val)
	}
	for _, k := range []*smt.Expr{e.K0, e.K1, e.K2} {
		if k == nil {
			break
		}
		h = mix64(h, c.hashLocked(k))
	}
	c.hashes[e] = h
	return h
}

// hashSet hashes every condition and returns the sorted, deduplicated
// element hashes — the canonical representation of the conjunction.
func (c *Cache) hashSet(conds []*smt.Expr) []uint64 {
	elems := make([]uint64, 0, len(conds))
	c.hmu.Lock()
	for _, e := range conds {
		elems = append(elems, c.hashLocked(e))
	}
	c.hmu.Unlock()
	sort.Slice(elems, func(i, j int) bool { return elems[i] < elems[j] })
	// Deduplicate: conjunction is idempotent, so {a,a,b} keys as {a,b}.
	out := elems[:0]
	for i, h := range elems {
		if i == 0 || h != elems[i-1] {
			out = append(out, h)
		}
	}
	return out
}

// setKey folds sorted element hashes into the canonical conjunction key.
func setKey(elems []uint64) uint64 {
	h := uint64(0xc0417e57) ^ uint64(len(elems))
	for _, e := range elems {
		h = mix64(h, e)
	}
	return h
}

// varsOf returns the sorted distinct variable ids of e, memoized per
// root. Roots repeat heavily across queries (the same trace condition is
// re-checked under ever-longer prefixes), so the memo keeps independence
// slicing cheap.
func (c *Cache) varsOf(e *smt.Expr) []int {
	c.hmu.Lock()
	if v, ok := c.vars[e]; ok {
		c.hmu.Unlock()
		return v
	}
	c.hmu.Unlock()
	// Collect outside the lock: Vars can walk a large DAG.
	ids := e.Vars(nil, map[*smt.Expr]bool{})
	sort.Ints(ids)
	c.hmu.Lock()
	c.vars[e] = ids
	c.hmu.Unlock()
	return ids
}
