package qcache

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"rvcte/internal/obs"
	"rvcte/internal/smt"
)

// newEnv returns a builder with three 8-bit variables and a fresh cache.
func newEnv(opt Options) (*smt.Builder, *Cache, []*smt.Expr) {
	b := smt.NewBuilder()
	vars := []*smt.Expr{b.Var(8, "a"), b.Var(8, "b"), b.Var(8, "c")}
	return b, New(b, opt), vars
}

func TestExactHit(t *testing.T) {
	b, c, v := newEnv(Options{})
	conds := []*smt.Expr{b.Ult(v[0], b.Const(8, 10)), b.Eq(v[1], b.Const(8, 3))}

	s1 := smt.NewSolver(b)
	sat, m, unknown := c.Check(s1, conds, nil)
	if !sat || unknown {
		t.Fatalf("first check: sat=%v unknown=%v", sat, unknown)
	}
	if !ValidateModel(conds, m) {
		t.Fatalf("first model invalid: %v", m)
	}

	s2 := smt.NewSolver(b)
	sat, m, unknown = c.Check(s2, conds, nil)
	if !sat || unknown {
		t.Fatalf("second check: sat=%v unknown=%v", sat, unknown)
	}
	if !ValidateModel(conds, m) {
		t.Fatalf("hit model invalid: %v", m)
	}
	if s2.Stats.Queries != 0 {
		t.Errorf("exact hit must not touch the solver (ran %d queries)", s2.Stats.Queries)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("hits=%d want 1 (%+v)", st.Hits, st)
	}
}

func TestExactHitIgnoresOrderAndDuplicates(t *testing.T) {
	b, c, v := newEnv(Options{})
	p := b.Ult(v[0], b.Const(8, 10))
	q := b.Eq(v[1], b.Const(8, 3))

	c.Check(smt.NewSolver(b), []*smt.Expr{p, q}, nil)
	s := smt.NewSolver(b)
	sat, _, _ := c.Check(s, []*smt.Expr{q, p, q}, nil)
	if !sat {
		t.Fatal("permuted set must stay sat")
	}
	if s.Stats.Queries != 0 {
		t.Errorf("canonicalization must make {p,q} and {q,p,q} the same key")
	}
}

func TestUnsatSubsumption(t *testing.T) {
	b, c, v := newEnv(Options{})
	lt := b.Ult(v[0], b.Const(8, 5))
	gt := b.Ugt(v[0], b.Const(8, 10))
	core := []*smt.Expr{lt, gt}

	if sat, _, _ := c.Check(smt.NewSolver(b), core, nil); sat {
		t.Fatal("core must be unsat")
	}
	// Any superset of the unsat core is unsat without solving.
	super := []*smt.Expr{lt, gt, b.Eq(v[1], b.Const(8, 3))}
	s := smt.NewSolver(b)
	if sat, _, _ := c.Check(s, super, nil); sat {
		t.Fatal("superset of an unsat core must be unsat")
	}
	if s.Stats.Queries != 0 {
		t.Errorf("subsumed query must not touch the solver (ran %d)", s.Stats.Queries)
	}
	if st := c.Stats(); st.SubsumeHits != 1 {
		t.Errorf("subsumeHits=%d want 1 (%+v)", st.SubsumeHits, st)
	}
	// The subsumed key is now cached exactly.
	s2 := smt.NewSolver(b)
	c.Check(s2, super, nil)
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("re-query of subsumed set should exact-hit (%+v)", st)
	}
}

func TestModelReuseFromSuperset(t *testing.T) {
	b, c, v := newEnv(Options{})
	p := b.Eq(v[0], b.Const(8, 7))
	q := b.Eq(v[1], b.Const(8, 1))

	if sat, _, _ := c.Check(smt.NewSolver(b), []*smt.Expr{p, q}, nil); !sat {
		t.Fatal("superset must be sat")
	}
	// The subset {p} shares element p with the cached superset; its model
	// must be reused via Eval without a SAT call.
	s := smt.NewSolver(b)
	sat, m, _ := c.Check(s, []*smt.Expr{p}, nil)
	if !sat || !ValidateModel([]*smt.Expr{p}, m) {
		t.Fatalf("subset reuse failed: sat=%v m=%v", sat, m)
	}
	if s.Stats.Queries != 0 {
		t.Errorf("subset of a cached sat set must reuse its model (ran %d queries)", s.Stats.Queries)
	}
	if st := c.Stats(); st.EvalHits != 1 {
		t.Errorf("evalHits=%d want 1 (%+v)", st.EvalHits, st)
	}
}

func TestIndependenceSlicing(t *testing.T) {
	b, c, v := newEnv(Options{})
	// Prefix constrains a and b (two groups); the flipped branch touches
	// only c. The hint satisfies the prefix.
	prefix := []*smt.Expr{b.Eq(v[0], b.Const(8, 3)), b.Ult(v[1], b.Const(8, 9))}
	flip := b.Eq(v[2], b.Const(8, 200))
	conds := append(append([]*smt.Expr{}, prefix...), flip)
	hint := smt.Assignment{0: 3, 1: 0}

	s := smt.NewSolver(b)
	sat, m, unknown := c.Check(s, conds, hint)
	if !sat || unknown {
		t.Fatalf("sliced check: sat=%v unknown=%v", sat, unknown)
	}
	if !ValidateModel(conds, m) {
		t.Fatalf("merged model invalid: %v", m)
	}
	if m[2] != 200 {
		t.Errorf("flipped-group model: c=%d want 200", m[2])
	}
	st := c.Stats()
	if st.SliceSolves != 1 || st.SolverCalls != 1 {
		t.Errorf("expected exactly one sliced solve (%+v)", st)
	}
	// The sliced group was cached on its own: a different prefix with the
	// same flipped branch reuses it.
	conds2 := []*smt.Expr{b.Eq(v[0], b.Const(8, 4)), flip}
	s2 := smt.NewSolver(b)
	sat, m, _ = c.Check(s2, conds2, smt.Assignment{0: 4})
	if !sat || !ValidateModel(conds2, m) {
		t.Fatalf("second sliced check failed: sat=%v m=%v", sat, m)
	}
	if s2.Stats.Queries != 0 {
		t.Errorf("flipped group cached per-group must re-serve (ran %d queries)", s2.Stats.Queries)
	}
}

func TestSlicedUnsatPropagates(t *testing.T) {
	b, c, v := newEnv(Options{})
	flip := b.Ult(v[2], b.Const(8, 0)) // nothing is < 0: folded false? Ult folds to const false.
	if !flip.IsFalse() {
		t.Fatal("expected fold")
	}
	// Use a genuinely unsat non-constant group instead: c < 5 && c > 10.
	g := b.And(b.Ult(v[2], b.Const(8, 5)), b.Ugt(v[2], b.Const(8, 10)))
	conds := []*smt.Expr{b.Eq(v[0], b.Const(8, 1)), g}
	sat, _, unknown := c.Check(smt.NewSolver(b), conds, smt.Assignment{0: 1})
	if sat || unknown {
		t.Fatalf("must be unsat: sat=%v unknown=%v", sat, unknown)
	}
	// Both the group key and the full key are now unsat entries; a
	// superset of the group alone subsumes.
	s := smt.NewSolver(b)
	sat, _, _ = c.Check(s, []*smt.Expr{g, b.Eq(v[1], b.Const(8, 2))}, nil)
	if sat {
		t.Fatal("superset of unsat group must be unsat")
	}
	if s.Stats.Queries != 0 {
		t.Errorf("unsat group must subsume supersets (ran %d queries)", s.Stats.Queries)
	}
}

func TestUnknownPassthroughUncached(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var(8, "x")
	y := b.Var(8, "y")
	c := New(b, Options{})
	// Factoring without wraparound (zero-extended operands): only the
	// divisor pairs of 143 solve it, which costs the solver real search.
	hard := b.Eq(b.Mul(b.ZExt(x, 32), b.ZExt(y, 32)), b.Const(32, 143))

	s := smt.NewSolver(b)
	s.MaxConflictsPerQuery = 1
	sat, _, unknown := c.Check(s, []*smt.Expr{hard}, nil)
	if sat || !unknown {
		t.Fatalf("budgeted factoring query: sat=%v unknown=%v", sat, unknown)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("unknown results must not be cached (%+v)", st)
	}
	// An unbudgeted solver later answers the same key for real.
	s2 := smt.NewSolver(b)
	sat, m, unknown := c.Check(s2, []*smt.Expr{hard}, nil)
	if !sat || unknown || smt.Eval(hard, m) != 1 {
		t.Fatalf("unbudgeted re-check: sat=%v unknown=%v m=%v", sat, unknown, m)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("solved result must be cached (%+v)", st)
	}
}

func TestTrivialQueries(t *testing.T) {
	b, c, _ := newEnv(Options{})
	s := smt.NewSolver(b)
	if sat, _, _ := c.Check(s, []*smt.Expr{b.Bool(false)}, nil); sat {
		t.Error("constant false must be unsat")
	}
	sat, m, _ := c.Check(s, []*smt.Expr{b.Bool(true)}, nil)
	if !sat || m == nil {
		t.Error("constant true must be sat with an empty model")
	}
	if st := c.Stats(); st.Queries != 0 {
		t.Errorf("trivial queries must not count (%+v)", st)
	}
}

func TestPersistenceWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.qcache")

	build := func() (*smt.Builder, []*smt.Expr, []*smt.Expr) {
		b := smt.NewBuilder()
		v := []*smt.Expr{b.Var(8, "a"), b.Var(8, "b")}
		satSet := []*smt.Expr{b.Ult(v[0], b.Const(8, 10)), b.Eq(v[1], b.Const(8, 3))}
		unsatSet := []*smt.Expr{b.Ult(v[0], b.Const(8, 5)), b.Ugt(v[0], b.Const(8, 10))}
		return b, satSet, unsatSet
	}

	b1, satSet, unsatSet := build()
	c1 := New(b1, Options{})
	c1.Check(smt.NewSolver(b1), satSet, nil)
	c1.Check(smt.NewSolver(b1), unsatSet, nil)
	if err := c1.Save(path); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new builder (ids may differ in principle; names
	// are what the persisted keys and models rely on), warm cache.
	b2, satSet2, unsatSet2 := build()
	c2 := New(b2, Options{})
	if err := c2.Load(path); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Loaded == 0 {
		t.Fatalf("no entries loaded (%+v)", st)
	}
	s := smt.NewSolver(b2)
	sat, m, _ := c2.Check(s, satSet2, nil)
	if !sat || !ValidateModel(satSet2, m) {
		t.Fatalf("warm sat check failed: sat=%v m=%v", sat, m)
	}
	if sat, _, _ := c2.Check(s, unsatSet2, nil); sat {
		t.Fatal("warm unsat check failed")
	}
	if s.Stats.Queries != 0 {
		t.Errorf("warm-start queries must be served from disk entries (ran %d)", s.Stats.Queries)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	b := smt.NewBuilder()
	c := New(b, Options{})
	if err := c.Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("expected an error for a missing file")
	}
}

// randCond builds a random width-1 condition over vars. Comparisons of
// small linear/bitwise combinations keep every query easy for the solver
// while still exercising sharing, folding and multi-variable groups.
func randCond(rng *rand.Rand, b *smt.Builder, vars []*smt.Expr) *smt.Expr {
	operand := func() *smt.Expr {
		v := vars[rng.Intn(len(vars))]
		switch rng.Intn(4) {
		case 0:
			return v
		case 1:
			return b.Add(v, b.Const(8, uint64(rng.Intn(256))))
		case 2:
			return b.Xor(v, vars[rng.Intn(len(vars))])
		default:
			return b.And(v, b.Const(8, uint64(rng.Intn(256))))
		}
	}
	l, r := operand(), b.Const(8, uint64(rng.Intn(64)))
	switch rng.Intn(4) {
	case 0:
		return b.Eq(l, r)
	case 1:
		return b.Ult(l, r)
	case 2:
		return b.Ule(l, r)
	default:
		return b.Not(b.Eq(l, r))
	}
}

// TestPropertyMatchesSolver is the cache correctness property test: for
// random constraint sets, the cache must agree with a fresh solver on
// satisfiability, and every sat answer — hit or miss — must carry a model
// that satisfies the queried set (audited with the cache-independent
// ValidateModel).
func TestPropertyMatchesSolver(t *testing.T) {
	b := smt.NewBuilder()
	vars := []*smt.Expr{b.Var(8, "a"), b.Var(8, "b"), b.Var(8, "c")}
	c := New(b, Options{})
	rng := rand.New(rand.NewSource(7))

	pool := make([]*smt.Expr, 40)
	for i := range pool {
		pool[i] = randCond(rng, b, vars)
	}
	for iter := 0; iter < 400; iter++ {
		n := 1 + rng.Intn(5)
		conds := make([]*smt.Expr, 0, n)
		for i := 0; i < n; i++ {
			conds = append(conds, pool[rng.Intn(len(pool))])
		}
		var hint smt.Assignment
		if rng.Intn(2) == 0 {
			hint = smt.Assignment{0: uint64(rng.Intn(256)), 1: uint64(rng.Intn(256)), 2: uint64(rng.Intn(256))}
		}
		gotSat, gotModel, unknown := c.Check(smt.NewSolver(b), conds, hint)
		if unknown {
			t.Fatalf("iter %d: unexpected unknown", iter)
		}
		wantSat, _, _ := smt.NewSolver(b).Check(conds...)
		if gotSat != wantSat {
			t.Fatalf("iter %d: cache says sat=%v, solver says %v for %v", iter, gotSat, wantSat, conds)
		}
		if gotSat && !ValidateModel(conds, gotModel) {
			t.Fatalf("iter %d: model %v does not satisfy %v", iter, gotModel, conds)
		}
	}
	st := c.Stats()
	if st.Hits+st.EvalHits+st.SubsumeHits == 0 {
		t.Errorf("property run never hit the cache (%+v)", st)
	}
	t.Logf("property stats: %+v", st)
}

// TestConcurrentSharedCache drives one cache from many goroutines with
// per-goroutine solvers — the parallel engine's sharing pattern — and
// audits every sat model. Run under -race.
func TestConcurrentSharedCache(t *testing.T) {
	b := smt.NewBuilder()
	vars := []*smt.Expr{b.Var(8, "a"), b.Var(8, "b"), b.Var(8, "c")}
	c := New(b, Options{})

	seedRng := rand.New(rand.NewSource(11))
	pool := make([]*smt.Expr, 30)
	for i := range pool {
		pool[i] = randCond(seedRng, b, vars)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			solver := smt.NewSolver(b)
			for i := 0; i < 100; i++ {
				n := 1 + rng.Intn(4)
				conds := make([]*smt.Expr, 0, n)
				for j := 0; j < n; j++ {
					conds = append(conds, pool[rng.Intn(len(pool))])
				}
				sat, m, unknown := c.Check(solver, conds, nil)
				if unknown {
					errs <- fmt.Errorf("goroutine %d: unknown", seed)
					return
				}
				if sat && !ValidateModel(conds, m) {
					errs <- fmt.Errorf("goroutine %d: invalid hit model %v for %v", seed, m, conds)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResolveLatencyHistograms: with an obs bundle wired, every
// non-trivial Check lands in exactly one size-keyed resolve histogram,
// and sets beyond largeSetThreshold elements tick the large-set counter.
func TestResolveLatencyHistograms(t *testing.T) {
	bld := smt.NewBuilder()
	c := New(bld, Options{})
	ob := obs.New()
	c.SetObs(ob)
	solver := smt.NewSolver(bld)

	small := []*smt.Expr{bld.Eq(bld.Var(32, "hx"), bld.Const(32, 1))}
	if sat, _, _ := c.Check(solver, small, nil); !sat {
		t.Fatal("small set must be sat")
	}
	large := largeConds(bld, largeSetThreshold+44)
	if sat, _, _ := c.Check(solver, large, nil); !sat {
		t.Fatal("large set must be sat")
	}

	snap := ob.Snapshot()
	for name, want := range map[string]int64{
		"qcache.resolve_us.le8":   1,
		"qcache.resolve_us.le64":  0,
		"qcache.resolve_us.le256": 0,
		"qcache.resolve_us.gt256": 1,
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s missing (have %v)", name, snap.Histograms)
		}
		if h.Count != want {
			t.Errorf("%s count = %d, want %d", name, h.Count, want)
		}
	}
	if got := snap.Counters["qcache.large_sets"]; got != 1 {
		t.Errorf("qcache.large_sets = %d, want 1", got)
	}
}
