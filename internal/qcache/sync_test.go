package qcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rvcte/internal/smt"
)

// syncEnv builds one "worker": its own builder and cache over a shared
// variable vocabulary, with nQueries distinct solved entries.
func syncEnv(t *testing.T, salt, nQueries int) *Cache {
	t.Helper()
	b := smt.NewBuilder()
	c := New(b, Options{})
	v := b.Var(16, "x")
	s := smt.NewSolver(b)
	for i := 0; i < nQueries; i++ {
		c.Check(s, []*smt.Expr{b.Eq(v, b.Const(16, uint64(salt*100+i)))}, nil)
	}
	return c
}

// TestExportImportSync is the campaign sync contract: a worker's new
// entries exported and imported by a peer answer the peer's identical
// queries without any solver call, and re-importing is idempotent.
func TestExportImportSync(t *testing.T) {
	producer := syncEnv(t, 1, 5)
	ents := producer.ExportEntries()
	if len(ents) != 5 {
		t.Fatalf("exported %d entries want 5", len(ents))
	}

	b := smt.NewBuilder()
	peer := New(b, Options{})
	if n := peer.ImportEntries(ents); n != 5 {
		t.Fatalf("imported %d want 5", n)
	}
	if n := peer.ImportEntries(ents); n != 0 {
		t.Fatalf("re-import must be idempotent, merged %d", n)
	}
	v := b.Var(16, "x")
	s := smt.NewSolver(b)
	sat, m, _ := peer.Check(s, []*smt.Expr{b.Eq(v, b.Const(16, 103))}, nil)
	if !sat || m == nil {
		t.Fatalf("peer miss on synced entry: sat=%v m=%v", sat, m)
	}
	if s.Stats.Queries != 0 {
		t.Errorf("synced entry must be served without solving (ran %d queries)", s.Stats.Queries)
	}
	// Malformed wire entries (a crashed peer, a truncated merge) are
	// skipped, never inserted.
	if n := peer.ImportEntries([]WireEntry{{Key: 99}, {Key: 98, Elems: []uint64{1}, Sat: true}}); n != 0 {
		t.Errorf("malformed entries merged: %d", n)
	}
}

// TestConcurrentSaveCrashSafe: many goroutines saving different caches
// over the same shared path — the mid-sync kill scenario of the
// campaign's shared cache directory — must never leave a torn,
// interleaved or partially visible file: every observable state of path
// is one complete, loadable JSONL snapshot.
func TestConcurrentSaveCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared.qcache")

	caches := make([]*Cache, 4)
	for i := range caches {
		caches[i] = syncEnv(t, i+1, 8)
	}
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for _, c := range caches {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				if err := c.Save(path); err != nil {
					t.Errorf("save: %v", err)
				}
				// Every concurrent observation of the file must load
				// cleanly into a fresh cache.
				fresh := New(smt.NewBuilder(), Options{})
				if err := fresh.Load(path); err != nil && !os.IsNotExist(err) {
					t.Errorf("torn file observed: %v", err)
				}
			}(c)
		}
	}
	wg.Wait()

	// The final state is exactly one writer's complete snapshot.
	final := New(smt.NewBuilder(), Options{})
	if err := final.Load(path); err != nil {
		t.Fatalf("final load: %v", err)
	}
	if got := final.Stats().Loaded; got != 8 {
		t.Errorf("final file holds %d entries, want one complete 8-entry snapshot", got)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestSaveDeterministic: the same entry set serializes to identical
// bytes regardless of insertion order (the spool diffing guarantee).
func TestSaveDeterministic(t *testing.T) {
	dir := t.TempDir()
	mk := func(order []int) string {
		b := smt.NewBuilder()
		c := New(b, Options{})
		v := b.Var(16, "x")
		s := smt.NewSolver(b)
		for _, i := range order {
			c.Check(s, []*smt.Expr{b.Eq(v, b.Const(16, uint64(i)))}, nil)
		}
		p := filepath.Join(dir, fmt.Sprintf("o%v.qcache", order[0]))
		if err := c.Save(p); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if mk([]int{1, 2, 3}) != mk([]int{3, 1, 2}) {
		t.Error("save is not deterministic across insertion orders")
	}
}
