// Package asm implements a two-pass assembler for a GNU-flavoured subset
// of RV32IM assembly. It is the back end of the mini-C compiler and the
// way peripheral software models and runtime code are written, replacing
// the GCC cross-toolchain the paper uses.
//
// Supported: labels, .text/.data/.bss sections, .globl, .word, .half,
// .byte, .asciz, .ascii, .space, .align, .equ, all RV32IM mnemonics, the
// common pseudo-instructions (li, la, mv, not, neg, seqz, snez, beqz,
// bnez, blez, bgez, bltz, bgtz, bgt, ble, bgtu, bleu, j, jr, call, tail,
// ret, nop, csrr, csrw) and %hi()/%lo() relocation operators.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"rvcte/internal/rv32"
)

// Image is an assembled, fully relocated memory image.
type Image struct {
	Origin  uint32 // load address of Bytes
	Bytes   []byte // .text followed by .data
	BssAddr uint32 // start of zero-initialized region
	BssSize uint32
	Symbols map[string]uint32 // label -> absolute address (or .equ value)
	Globals []string          // symbols declared .globl, in order
}

// Entry returns the address of the _start symbol, or Origin if absent.
func (img *Image) Entry() uint32 {
	if e, ok := img.Symbols["_start"]; ok {
		return e
	}
	return img.Origin
}

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
	secBss
)

// stmt is one parsed source statement.
type stmt struct {
	line  int
	label string   // non-empty for label definitions
	op    string   // mnemonic or directive (with leading .)
	args  []string // raw operand strings
	sec   section  // section active at this statement
	addr  uint32   // assigned in pass 1
	size  uint32   // bytes emitted
}

// Assembler carries the state of one assembly run.
type assembler struct {
	origin   uint32
	stmts    []stmt
	symbols  map[string]uint32
	globals  []string
	equs     map[string]int64
	compress bool // RV32C compression pass enabled
}

// Assemble assembles src into an image loaded at origin (32-bit
// encodings only).
func Assemble(src string, origin uint32) (*Image, error) {
	return assemble(src, origin, false)
}

// AssembleCompressed assembles src with the RV32C compression pass:
// instructions with 16-bit forms are emitted compressed, iterating
// layout to a fixpoint (sizes only shrink, so branch offsets stay in
// range).
func AssembleCompressed(src string, origin uint32) (*Image, error) {
	return assemble(src, origin, true)
}

func assemble(src string, origin uint32, compress bool) (*Image, error) {
	a := &assembler{
		origin:   origin,
		symbols:  make(map[string]uint32),
		equs:     make(map[string]int64),
		compress: compress,
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(false); err != nil {
		return nil, err
	}
	if compress {
		if err := a.compressPass(); err != nil {
			return nil, err
		}
	}
	return a.emit()
}

// compressPass shrinks compressible instructions to 16 bits, re-laying
// out until addresses stabilize.
func (a *assembler) compressPass() error {
	for iter := 0; iter < 32; iter++ {
		changed := false
		for i := range a.stmts {
			s := &a.stmts[i]
			if s.label != "" || strings.HasPrefix(s.op, ".") || s.sec != secText {
				continue
			}
			if s.size != 4 && s.size != 2 {
				continue // fixed two-word pseudo expansions stay as-is
			}
			words, err := a.encodeInst(s)
			if err != nil {
				return err
			}
			if len(words) != 1 {
				continue
			}
			want := uint32(4)
			if _, ok := rv32.Compress(rv32.Decode(words[0])); ok {
				want = 2
			}
			if s.size != want {
				s.size = want
				changed = true
			}
		}
		if !changed {
			return nil
		}
		if err := a.layout(true); err != nil {
			return err
		}
	}
	return fmt.Errorf("asm: compression did not converge")
}

// parse splits the source into statements. Labels may share a line with
// an instruction ("loop: addi ...").
func (a *assembler) parse(src string) error {
	sec := secText
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		for line != "" {
			// Leading label(s).
			if i := labelEnd(line); i >= 0 {
				name := strings.TrimSpace(line[:i])
				if !validSymbol(name) {
					return &Error{lineNo + 1, fmt.Sprintf("bad label %q", name)}
				}
				a.stmts = append(a.stmts, stmt{line: lineNo + 1, label: name, sec: sec})
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			op, rest := splitOp(line)
			args := splitArgs(rest)
			switch op {
			case ".text":
				sec = secText
			case ".data":
				sec = secData
			case ".bss":
				sec = secBss
			case ".section":
				if len(args) > 0 {
					switch strings.TrimPrefix(args[0], ".") {
					case "text":
						sec = secText
					case "data", "rodata", "sdata":
						sec = secData
					case "bss", "sbss":
						sec = secBss
					default:
						sec = secData
					}
				}
			case ".globl", ".global":
				for _, g := range args {
					a.globals = append(a.globals, g)
				}
			case ".equ", ".set":
				if len(args) != 2 {
					return &Error{lineNo + 1, ".equ needs name, value"}
				}
				v, err := strconv.ParseInt(args[1], 0, 64)
				if err != nil {
					return &Error{lineNo + 1, fmt.Sprintf(".equ value %q: %v", args[1], err)}
				}
				a.equs[args[0]] = v
			case ".type", ".size", ".file", ".ident", ".option", ".attribute", ".p2align":
				// Ignored metadata directives (accepted for GNU compatibility).
			default:
				a.stmts = append(a.stmts, stmt{line: lineNo + 1, op: op, args: args, sec: sec})
			}
			line = ""
		}
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case '#', ';':
			if !inStr {
				return line[:i]
			}
		case '/':
			if !inStr && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

// labelEnd returns the index of a leading label's colon, or -1.
func labelEnd(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == ':':
			return i
		case c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'):
			// still a symbol char
		default:
			return -1
		}
	}
	return -1
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || c == '.' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return false
	}
	return true
}

func splitOp(line string) (op, rest string) {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' || line[i] == '\t' {
			return line[:i], strings.TrimSpace(line[i:])
		}
	}
	return line, ""
}

// splitArgs splits on commas not inside parens or strings.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// stmtSize returns the number of bytes a statement occupies. Pseudo
// instructions use fixed worst-case expansions so layout is one pass.
func (a *assembler) stmtSize(s *stmt) (uint32, error) {
	if s.label != "" {
		return 0, nil
	}
	if strings.HasPrefix(s.op, ".") {
		switch s.op {
		case ".word":
			return uint32(4 * len(s.args)), nil
		case ".half":
			return uint32(2 * len(s.args)), nil
		case ".byte":
			return uint32(len(s.args)), nil
		case ".asciz", ".string":
			str, err := parseString(s.args)
			if err != nil {
				return 0, &Error{s.line, err.Error()}
			}
			return uint32(len(str) + 1), nil
		case ".ascii":
			str, err := parseString(s.args)
			if err != nil {
				return 0, &Error{s.line, err.Error()}
			}
			return uint32(len(str)), nil
		case ".space", ".zero", ".skip":
			if len(s.args) != 1 {
				return 0, &Error{s.line, s.op + " needs a size"}
			}
			n, err := a.parseIntNoSym(s.args[0])
			if err != nil {
				return 0, &Error{s.line, err.Error()}
			}
			return uint32(n), nil
		case ".align", ".balign":
			// Resolved during layout (depends on current address).
			return 0, nil
		default:
			return 0, &Error{s.line, fmt.Sprintf("unknown directive %s", s.op)}
		}
	}
	switch s.op {
	case "li", "la", "call":
		return 8, nil
	default:
		return 4, nil
	}
}

// layout assigns addresses (pass 1). Section order: text, data, bss.
// With keepSizes, instruction sizes chosen by the compression pass are
// preserved; alignment padding is always recomputed.
func (a *assembler) layout(keepSizes bool) error {
	// First compute per-section sizes.
	var sizes [3]uint32
	offsets := make([]uint32, len(a.stmts)) // offset within own section
	for k := range a.symbols {
		delete(a.symbols, k)
	}
	for i := range a.stmts {
		s := &a.stmts[i]
		cur := &sizes[s.sec]
		if s.op == ".align" || s.op == ".balign" {
			if len(s.args) < 1 {
				return &Error{s.line, ".align needs an argument"}
			}
			n, err := a.parseIntNoSym(s.args[0])
			if err != nil {
				return &Error{s.line, err.Error()}
			}
			var alignment uint32
			if s.op == ".align" {
				alignment = 1 << uint(n)
			} else {
				alignment = uint32(n)
			}
			if alignment == 0 {
				alignment = 1
			}
			pad := (alignment - *cur%alignment) % alignment
			s.size = pad
			offsets[i] = *cur
			*cur += pad
			continue
		}
		if keepSizes && s.label == "" && !strings.HasPrefix(s.op, ".") {
			offsets[i] = *cur
			*cur += s.size
			continue
		}
		sz, err := a.stmtSize(s)
		if err != nil {
			return err
		}
		s.size = sz
		offsets[i] = *cur
		*cur += sz
	}
	textBase := a.origin
	dataBase := align4(textBase + sizes[secText])
	bssBase := align4(dataBase + sizes[secData])
	bases := [3]uint32{textBase, dataBase, bssBase}
	for i := range a.stmts {
		s := &a.stmts[i]
		s.addr = bases[s.sec] + offsets[i]
		if s.label != "" {
			if _, dup := a.symbols[s.label]; dup {
				return &Error{s.line, fmt.Sprintf("duplicate label %q", s.label)}
			}
			a.symbols[s.label] = s.addr
		}
	}
	// .equ values enter the symbol table as absolute constants.
	for name, v := range a.equs {
		a.symbols[name] = uint32(v)
	}
	return nil
}

func align4(v uint32) uint32 { return (v + 3) &^ 3 }

func parseString(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("string directive needs exactly one operand")
	}
	s := args[0]
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %q", s)
	}
	unq, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("bad string literal %q: %v", s, err)
	}
	return unq, nil
}

// parseIntNoSym parses an integer (no symbol references allowed).
func (a *assembler) parseIntNoSym(s string) (int64, error) {
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

// resolve evaluates an operand that may be a number, a symbol, a
// symbol+offset expression, a char literal, or %hi()/%lo() of those.
func (a *assembler) resolve(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		v, err := a.resolve(s[4:len(s)-1], line)
		if err != nil {
			return 0, err
		}
		return int64((uint32(v) + 0x800) >> 12), nil
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		v, err := a.resolve(s[4:len(s)-1], line)
		if err != nil {
			return 0, err
		}
		lo := uint32(v) & 0xfff
		if lo >= 0x800 {
			return int64(lo) - 0x1000, nil
		}
		return int64(lo), nil
	}
	// symbol+offset / symbol-offset
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			base := strings.TrimSpace(s[:i])
			if _, ok := a.symbols[base]; ok {
				bv, err := a.resolve(base, line)
				if err != nil {
					return 0, err
				}
				ov, err := a.resolve(s[i+1:], line)
				if err != nil {
					return 0, err
				}
				if s[i] == '-' {
					return bv - ov, nil
				}
				return bv + ov, nil
			}
		}
	}
	if v, ok := a.symbols[s]; ok {
		return int64(v), nil
	}
	if len(s) >= 3 && s[0] == '\'' {
		c, _, _, err := strconv.UnquoteChar(s[1:len(s)-1], '\'')
		if err == nil {
			return int64(c), nil
		}
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow unsigned hex that overflows int32 range.
		uv, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, &Error{line, fmt.Sprintf("cannot resolve operand %q", s)}
		}
		return int64(uv), nil
	}
	return v, nil
}

// memOperand parses "imm(reg)" or "(reg)" or "sym" forms for loads/stores.
func (a *assembler) memOperand(s string, line int) (imm int64, reg int, err error) {
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, &Error{line, fmt.Sprintf("bad memory operand %q", s)}
	}
	regName := strings.TrimSpace(s[open+1 : len(s)-1])
	reg = rv32.RegByName(regName)
	if reg < 0 {
		return 0, 0, &Error{line, fmt.Sprintf("bad register %q", regName)}
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		return 0, reg, nil
	}
	imm, err = a.resolve(immStr, line)
	return imm, reg, err
}

func (a *assembler) reg(s string, line int) (uint8, error) {
	r := rv32.RegByName(strings.TrimSpace(s))
	if r < 0 {
		return 0, &Error{line, fmt.Sprintf("bad register %q", s)}
	}
	return uint8(r), nil
}
