package asm

import (
	"encoding/binary"
	"testing"

	"rvcte/internal/rv32"
)

// disasmAll walks an image's text decoding every instruction.
func disasmAll(img *Image, textEnd uint32) []rv32.Inst {
	var out []rv32.Inst
	pc := img.Origin
	for pc < textEnd {
		off := pc - img.Origin
		word := uint32(binary.LittleEndian.Uint16(img.Bytes[off:]))
		if word&3 == 3 {
			word = binary.LittleEndian.Uint32(img.Bytes[off:])
		}
		in := rv32.Decode(word)
		out = append(out, in)
		pc += uint32(in.Size)
	}
	return out
}

const compressibleSrc = `
_start:
	li a0, 10        # addi half compresses to c.li
	mv a1, a0        # c.mv
	add a0, a0, a1   # c.add
	addi a0, a0, 1   # c.addi
	beqz a0, done
	j loop
loop:
	addi a0, a0, -1
	bnez a0, loop
done:
	li a7, 0
	ecall
`

func TestAssembleCompressedShrinks(t *testing.T) {
	plain, err := Assemble(compressibleSrc, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := AssembleCompressed(compressibleSrc, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Bytes) >= len(plain.Bytes) {
		t.Fatalf("compression did not shrink: %d -> %d bytes", len(plain.Bytes), len(comp.Bytes))
	}
	t.Logf("image size %d -> %d bytes", len(plain.Bytes), len(comp.Bytes))

	// Decode both streams: instruction sequences must be semantically
	// identical except for branch/jump immediates (which shrink with
	// the layout).
	pi := disasmAll(plain, plain.Origin+uint32(len(plain.Bytes)))
	ci := disasmAll(comp, comp.Origin+uint32(len(comp.Bytes)))
	if len(pi) != len(ci) {
		t.Fatalf("instruction counts differ: %d vs %d", len(pi), len(ci))
	}
	nCompressed := 0
	for i := range pi {
		if ci[i].Size == 2 {
			nCompressed++
		}
		if pi[i].Op != ci[i].Op || pi[i].Rd != ci[i].Rd || pi[i].Rs1 != ci[i].Rs1 {
			t.Errorf("inst %d: %v vs %v", i, pi[i], ci[i])
		}
	}
	if nCompressed < 5 {
		t.Errorf("expected several compressed instructions, got %d", nCompressed)
	}
}

func TestCompressedBranchTargets(t *testing.T) {
	img, err := AssembleCompressed(`
	_start:
		li a0, 3
	loop:
		addi a0, a0, -1
		bnez a0, loop
		beq a0, a1, out
		j loop
	out:
		ecall
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Verify that every branch/jump lands exactly on an instruction
	// boundary of the compressed stream.
	bounds := map[uint32]bool{}
	pc := img.Origin
	end := img.Origin + uint32(len(img.Bytes))
	type bt struct{ from, to uint32 }
	var branches []bt
	for pc < end {
		off := pc - img.Origin
		word := uint32(binary.LittleEndian.Uint16(img.Bytes[off:]))
		if word&3 == 3 {
			word = binary.LittleEndian.Uint32(img.Bytes[off:])
		}
		in := rv32.Decode(word)
		bounds[pc] = true
		switch in.Op {
		case rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU, rv32.OpJAL:
			branches = append(branches, bt{pc, pc + uint32(in.Imm)})
		}
		pc += uint32(in.Size)
	}
	bounds[end] = true
	for _, b := range branches {
		if !bounds[b.to] {
			t.Errorf("branch at %#x targets %#x, not an instruction boundary", b.from, b.to)
		}
	}
}

// TestCompressedAlignInterplay: .align directives inside compressed text
// must keep labeled data and following code correctly aligned across
// re-layout iterations.
func TestCompressedAlignInterplay(t *testing.T) {
	img, err := AssembleCompressed(`
	_start:
		li a0, 1
		mv a1, a0
		j next
	.align 2
	table:
		.word 0x11223344
	next:
		lw a2, 0(a2)
		ecall
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	tbl := img.Symbols["table"]
	if tbl%4 != 0 {
		t.Errorf("table at %#x must stay 4-aligned", tbl)
	}
	if binary.LittleEndian.Uint32(img.Bytes[tbl-img.Origin:]) != 0x11223344 {
		t.Error("table contents corrupted by compression relayout")
	}
	// The jump over the table must land exactly at 'next'.
	next := img.Symbols["next"]
	if next <= tbl {
		t.Errorf("layout order broken: next=%#x table=%#x", next, tbl)
	}
}

// TestCompressionIsDeterministic: two compression runs of the same source
// produce byte-identical images.
func TestCompressionIsDeterministic(t *testing.T) {
	a, err := AssembleCompressed(compressibleSrc, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssembleCompressed(compressibleSrc, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes) != string(b.Bytes) {
		t.Error("compression output not deterministic")
	}
}
