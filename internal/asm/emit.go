package asm

import (
	"encoding/binary"
	"fmt"
	"strings"

	"rvcte/internal/rv32"
)

// opsByName maps assembler mnemonics to base ops (non-pseudo).
var opsByName = map[string]rv32.Op{
	"lui": rv32.OpLUI, "auipc": rv32.OpAUIPC, "jal": rv32.OpJAL, "jalr": rv32.OpJALR,
	"beq": rv32.OpBEQ, "bne": rv32.OpBNE, "blt": rv32.OpBLT, "bge": rv32.OpBGE,
	"bltu": rv32.OpBLTU, "bgeu": rv32.OpBGEU,
	"lb": rv32.OpLB, "lh": rv32.OpLH, "lw": rv32.OpLW, "lbu": rv32.OpLBU, "lhu": rv32.OpLHU,
	"sb": rv32.OpSB, "sh": rv32.OpSH, "sw": rv32.OpSW,
	"addi": rv32.OpADDI, "slti": rv32.OpSLTI, "sltiu": rv32.OpSLTIU,
	"xori": rv32.OpXORI, "ori": rv32.OpORI, "andi": rv32.OpANDI,
	"slli": rv32.OpSLLI, "srli": rv32.OpSRLI, "srai": rv32.OpSRAI,
	"add": rv32.OpADD, "sub": rv32.OpSUB, "sll": rv32.OpSLL, "slt": rv32.OpSLT,
	"sltu": rv32.OpSLTU, "xor": rv32.OpXOR, "srl": rv32.OpSRL, "sra": rv32.OpSRA,
	"or": rv32.OpOR, "and": rv32.OpAND,
	"mul": rv32.OpMUL, "mulh": rv32.OpMULH, "mulhsu": rv32.OpMULHSU, "mulhu": rv32.OpMULHU,
	"div": rv32.OpDIV, "divu": rv32.OpDIVU, "rem": rv32.OpREM, "remu": rv32.OpREMU,
	"fence": rv32.OpFENCE, "ecall": rv32.OpECALL, "ebreak": rv32.OpEBREAK,
	"mret": rv32.OpMRET, "wfi": rv32.OpWFI,
	"csrrw": rv32.OpCSRRW, "csrrs": rv32.OpCSRRS, "csrrc": rv32.OpCSRRC,
	"csrrwi": rv32.OpCSRRWI, "csrrsi": rv32.OpCSRRSI, "csrrci": rv32.OpCSRRCI,
}

// emit is pass 2: encode every statement at its assigned address.
func (a *assembler) emit() (*Image, error) {
	var endText, endData uint32 = a.origin, a.origin
	var bssStart, bssEnd uint32
	for _, s := range a.stmts {
		end := s.addr + s.size
		switch s.sec {
		case secText:
			if end > endText {
				endText = end
			}
		case secData:
			if end > endData {
				endData = end
			}
		case secBss:
			if bssStart == 0 || s.addr < bssStart {
				bssStart = s.addr
			}
			if end > bssEnd {
				bssEnd = end
			}
		}
	}
	imgEnd := endData
	if endText > imgEnd {
		imgEnd = endText
	}
	img := &Image{
		Origin:  a.origin,
		Bytes:   make([]byte, imgEnd-a.origin),
		Symbols: a.symbols,
		Globals: a.globals,
		BssAddr: bssStart,
		BssSize: bssEnd - bssStart,
	}
	if bssStart == 0 {
		img.BssAddr = align4(imgEnd)
		img.BssSize = 0
	}

	for i := range a.stmts {
		s := &a.stmts[i]
		if s.label != "" || s.size == 0 && strings.HasPrefix(s.op, ".align") {
			continue
		}
		if s.sec == secBss {
			if !strings.HasPrefix(s.op, ".") {
				return nil, &Error{s.line, "instructions not allowed in .bss"}
			}
			continue // bss contents are implicitly zero
		}
		off := s.addr - a.origin
		if strings.HasPrefix(s.op, ".") {
			if err := a.emitDirective(img, s, off); err != nil {
				return nil, err
			}
			continue
		}
		words, err := a.encodeInst(s)
		if err != nil {
			return nil, err
		}
		if s.size == 2 {
			// Chosen by the compression pass; sizes only shrink after
			// the decision, so the compressed form must still exist.
			h, ok := rv32.Compress(rv32.Decode(words[0]))
			if !ok {
				return nil, &Error{s.line, "instruction no longer compressible after layout"}
			}
			binary.LittleEndian.PutUint16(img.Bytes[off:], h)
			continue
		}
		for wi, w := range words {
			binary.LittleEndian.PutUint32(img.Bytes[off+uint32(4*wi):], w)
		}
	}
	return img, nil
}

func (a *assembler) emitDirective(img *Image, s *stmt, off uint32) error {
	switch s.op {
	case ".word":
		for i, arg := range s.args {
			v, err := a.resolve(arg, s.line)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(img.Bytes[off+uint32(4*i):], uint32(v))
		}
	case ".half":
		for i, arg := range s.args {
			v, err := a.resolve(arg, s.line)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint16(img.Bytes[off+uint32(2*i):], uint16(v))
		}
	case ".byte":
		for i, arg := range s.args {
			v, err := a.resolve(arg, s.line)
			if err != nil {
				return err
			}
			img.Bytes[off+uint32(i)] = byte(v)
		}
	case ".asciz", ".string":
		str, err := parseString(s.args)
		if err != nil {
			return &Error{s.line, err.Error()}
		}
		copy(img.Bytes[off:], str)
		img.Bytes[off+uint32(len(str))] = 0
	case ".ascii":
		str, err := parseString(s.args)
		if err != nil {
			return &Error{s.line, err.Error()}
		}
		copy(img.Bytes[off:], str)
	case ".space", ".zero", ".skip", ".align", ".balign":
		// Already zero.
	default:
		return &Error{s.line, fmt.Sprintf("unknown directive %s", s.op)}
	}
	return nil
}

// encodeInst encodes one mnemonic (possibly a pseudo-instruction
// expanding to two words).
func (a *assembler) encodeInst(s *stmt) ([]uint32, error) {
	bad := func(format string, args ...any) ([]uint32, error) {
		return nil, &Error{s.line, fmt.Sprintf(format, args...)}
	}
	need := func(n int) error {
		if len(s.args) != n {
			return &Error{s.line, fmt.Sprintf("%s needs %d operands, got %d", s.op, n, len(s.args))}
		}
		return nil
	}
	enc1 := func(in rv32.Inst) ([]uint32, error) {
		w, err := rv32.Encode(in)
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return []uint32{w}, nil
	}

	op := s.op
	switch op {
	case "nop":
		return enc1(rv32.Inst{Op: rv32.OpADDI})
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		v, err := a.resolve(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return a.encodeLI(rd, uint32(v), s.line)
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		v, err := a.resolve(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return a.encodeLI(rd, uint32(v), s.line)
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := a.reg(s.args[0], s.line)
		rs, err2 := a.reg(s.args[1], s.line)
		if err1 != nil || err2 != nil {
			return bad("bad registers in mv")
		}
		return enc1(rv32.Inst{Op: rv32.OpADDI, Rd: rd, Rs1: rs})
	case "not":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpXORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpSUB, Rd: rd, Rs1: 0, Rs2: rs})
	case "seqz":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpSLTU, Rd: rd, Rs1: 0, Rs2: rs})
	case "sltz":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpSLT, Rd: rd, Rs1: rs, Rs2: 0})
	case "sgtz":
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpSLT, Rd: rd, Rs1: 0, Rs2: rs})
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		target, err := a.resolve(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		rel := int32(uint32(target) - s.addr)
		switch op {
		case "beqz":
			return enc1(rv32.Inst{Op: rv32.OpBEQ, Rs1: rs, Rs2: 0, Imm: rel})
		case "bnez":
			return enc1(rv32.Inst{Op: rv32.OpBNE, Rs1: rs, Rs2: 0, Imm: rel})
		case "blez":
			return enc1(rv32.Inst{Op: rv32.OpBGE, Rs1: 0, Rs2: rs, Imm: rel})
		case "bgez":
			return enc1(rv32.Inst{Op: rv32.OpBGE, Rs1: rs, Rs2: 0, Imm: rel})
		case "bltz":
			return enc1(rv32.Inst{Op: rv32.OpBLT, Rs1: rs, Rs2: 0, Imm: rel})
		default: // bgtz
			return enc1(rv32.Inst{Op: rv32.OpBLT, Rs1: 0, Rs2: rs, Imm: rel})
		}
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		target, err := a.resolve(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		rel := int32(uint32(target) - s.addr)
		// Swap operand order: bgt a,b == blt b,a.
		switch op {
		case "bgt":
			return enc1(rv32.Inst{Op: rv32.OpBLT, Rs1: rs2, Rs2: rs1, Imm: rel})
		case "ble":
			return enc1(rv32.Inst{Op: rv32.OpBGE, Rs1: rs2, Rs2: rs1, Imm: rel})
		case "bgtu":
			return enc1(rv32.Inst{Op: rv32.OpBLTU, Rs1: rs2, Rs2: rs1, Imm: rel})
		default: // bleu
			return enc1(rv32.Inst{Op: rv32.OpBGEU, Rs1: rs2, Rs2: rs1, Imm: rel})
		}
	case "j":
		target, err := a.resolve(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpJAL, Rd: 0, Imm: int32(uint32(target) - s.addr)})
	case "jr":
		rs, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpJALR, Rd: 0, Rs1: rs})
	case "ret":
		return enc1(rv32.Inst{Op: rv32.OpJALR, Rd: 0, Rs1: 1})
	case "call":
		// Fixed two-word expansion: auipc ra, hi; jalr ra, lo(ra).
		target, err := a.resolve(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rel := uint32(target) - s.addr
		hi := (rel + 0x800) >> 12 << 12
		lo := int32(rel - hi)
		w1, err := rv32.Encode(rv32.Inst{Op: rv32.OpAUIPC, Rd: 1, Imm: int32(hi)})
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		w2, err := rv32.Encode(rv32.Inst{Op: rv32.OpJALR, Rd: 1, Rs1: 1, Imm: lo})
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return []uint32{w1, w2}, nil
	case "tail":
		target, err := a.resolve(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpJAL, Rd: 0, Imm: int32(uint32(target) - s.addr)})
	case "csrr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		csr := rv32.CSRByName(s.args[1])
		if csr < 0 {
			return bad("bad CSR %q", s.args[1])
		}
		return enc1(rv32.Inst{Op: rv32.OpCSRRS, Rd: rd, Rs1: 0, Imm: int32(csr)})
	case "csrw":
		if err := need(2); err != nil {
			return nil, err
		}
		csr := rv32.CSRByName(s.args[0])
		if csr < 0 {
			return bad("bad CSR %q", s.args[0])
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: rv32.OpCSRRW, Rd: 0, Rs1: rs, Imm: int32(csr)})
	}

	base, ok := opsByName[op]
	if !ok {
		return bad("unknown mnemonic %q", op)
	}

	switch base {
	case rv32.OpLUI, rv32.OpAUIPC:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		v, err := a.resolve(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Imm: int32(uint32(v) << 12)})
	case rv32.OpJAL:
		// jal target | jal rd, target
		rd := uint8(1)
		targetArg := s.args[0]
		if len(s.args) == 2 {
			r, err := a.reg(s.args[0], s.line)
			if err != nil {
				return nil, err
			}
			rd = r
			targetArg = s.args[1]
		}
		target, err := a.resolve(targetArg, s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Imm: int32(uint32(target) - s.addr)})
	case rv32.OpJALR:
		// jalr rs | jalr rd, imm(rs) | jalr rd, rs, imm
		switch len(s.args) {
		case 1:
			rs, err := a.reg(s.args[0], s.line)
			if err != nil {
				return nil, err
			}
			return enc1(rv32.Inst{Op: base, Rd: 1, Rs1: rs})
		case 2:
			rd, err := a.reg(s.args[0], s.line)
			if err != nil {
				return nil, err
			}
			imm, rs, err := a.memOperand(s.args[1], s.line)
			if err != nil {
				return nil, err
			}
			return enc1(rv32.Inst{Op: base, Rd: rd, Rs1: uint8(rs), Imm: int32(imm)})
		case 3:
			rd, err := a.reg(s.args[0], s.line)
			if err != nil {
				return nil, err
			}
			rs, err := a.reg(s.args[1], s.line)
			if err != nil {
				return nil, err
			}
			imm, err := a.resolve(s.args[2], s.line)
			if err != nil {
				return nil, err
			}
			return enc1(rv32.Inst{Op: base, Rd: rd, Rs1: rs, Imm: int32(imm)})
		}
		return bad("jalr operands")
	case rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU:
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		target, err := a.resolve(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rs1: rs1, Rs2: rs2, Imm: int32(uint32(target) - s.addr)})
	case rv32.OpLB, rv32.OpLH, rv32.OpLW, rv32.OpLBU, rv32.OpLHU:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		imm, rs, err := a.memOperand(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Rs1: uint8(rs), Imm: int32(imm)})
	case rv32.OpSB, rv32.OpSH, rv32.OpSW:
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		imm, rs1, err := a.memOperand(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rs1: uint8(rs1), Rs2: rs2, Imm: int32(imm)})
	case rv32.OpADDI, rv32.OpSLTI, rv32.OpSLTIU, rv32.OpXORI, rv32.OpORI, rv32.OpANDI,
		rv32.OpSLLI, rv32.OpSRLI, rv32.OpSRAI:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		imm, err := a.resolve(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Rs1: rs, Imm: int32(imm)})
	case rv32.OpFENCE, rv32.OpECALL, rv32.OpEBREAK, rv32.OpMRET, rv32.OpWFI:
		return enc1(rv32.Inst{Op: base})
	case rv32.OpCSRRW, rv32.OpCSRRS, rv32.OpCSRRC:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		csr := rv32.CSRByName(s.args[1])
		if csr < 0 {
			return bad("bad CSR %q", s.args[1])
		}
		rs, err := a.reg(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Rs1: rs, Imm: int32(csr)})
	case rv32.OpCSRRWI, rv32.OpCSRRSI, rv32.OpCSRRCI:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		csr := rv32.CSRByName(s.args[1])
		if csr < 0 {
			return bad("bad CSR %q", s.args[1])
		}
		zimm, err := a.resolve(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Rs2: uint8(zimm), Imm: int32(csr)})
	default: // R-type
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(s.args[0], s.line)
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(s.args[1], s.line)
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(s.args[2], s.line)
		if err != nil {
			return nil, err
		}
		return enc1(rv32.Inst{Op: base, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
}

// encodeLI emits the fixed two-word lui+addi sequence loading v into rd.
func (a *assembler) encodeLI(rd uint8, v uint32, line int) ([]uint32, error) {
	hi := (v + 0x800) >> 12 << 12
	lo := int32(v - hi)
	w1, err := rv32.Encode(rv32.Inst{Op: rv32.OpLUI, Rd: rd, Imm: int32(hi)})
	if err != nil {
		return nil, &Error{line, err.Error()}
	}
	w2, err := rv32.Encode(rv32.Inst{Op: rv32.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
	if err != nil {
		return nil, &Error{line, err.Error()}
	}
	return []uint32{w1, w2}, nil
}
