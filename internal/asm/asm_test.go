package asm

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"rvcte/internal/rv32"
)

func mustAssemble(t *testing.T, src string, origin uint32) *Image {
	t.Helper()
	img, err := Assemble(src, origin)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func word(img *Image, addr uint32) uint32 {
	return binary.LittleEndian.Uint32(img.Bytes[addr-img.Origin:])
}

func TestAssembleBasic(t *testing.T) {
	img := mustAssemble(t, `
		.globl _start
	_start:
		addi a0, zero, 5
		addi a1, a0, -3
		add  a2, a0, a1
		ecall
	`, 0x8000_0000)

	if img.Entry() != 0x80000000 {
		t.Errorf("entry: %#x", img.Entry())
	}
	d := rv32.Decode(word(img, 0x80000000))
	if d.String() != "addi a0, zero, 5" {
		t.Errorf("inst 0: %s", d)
	}
	d = rv32.Decode(word(img, 0x80000004))
	if d.String() != "addi a1, a0, -3" {
		t.Errorf("inst 1: %s", d)
	}
	d = rv32.Decode(word(img, 0x8000000c))
	if d.Op != rv32.OpECALL {
		t.Errorf("inst 3: %s", d)
	}
	if img.Globals[0] != "_start" {
		t.Errorf("globals: %v", img.Globals)
	}
}

func TestBranchesAndLabels(t *testing.T) {
	img := mustAssemble(t, `
	_start:
		beq a0, a1, done
		addi a0, a0, 1
		j _start
	done:
		ret
	`, 0x1000)

	beq := rv32.Decode(word(img, 0x1000))
	if beq.Op != rv32.OpBEQ || beq.Imm != 12 {
		t.Errorf("beq: %+v", beq)
	}
	j := rv32.Decode(word(img, 0x1008))
	if j.Op != rv32.OpJAL || j.Rd != 0 || j.Imm != -8 {
		t.Errorf("j: %+v", j)
	}
	if img.Symbols["done"] != 0x100c {
		t.Errorf("done: %#x", img.Symbols["done"])
	}
}

func TestBackwardAndForwardRefs(t *testing.T) {
	img := mustAssemble(t, `
	loop:
		bnez a0, exit
		j loop
	exit:
		ret
	`, 0)
	b := rv32.Decode(word(img, 0))
	if b.Op != rv32.OpBNE || b.Imm != 8 {
		t.Errorf("bnez: %+v", b)
	}
}

func TestLiExpansion(t *testing.T) {
	img := mustAssemble(t, `
		li a0, 42
		li a1, 0x12345678
		li a2, -1
		li a3, 0x80000800
	`, 0)
	// Each li is exactly 8 bytes: lui+addi.
	check := func(addr uint32, want uint32, reg uint8) {
		t.Helper()
		lui := rv32.Decode(word(img, addr))
		addi := rv32.Decode(word(img, addr+4))
		if lui.Op != rv32.OpLUI || addi.Op != rv32.OpADDI {
			t.Fatalf("li at %#x: %v / %v", addr, lui, addi)
		}
		got := uint32(lui.Imm) + uint32(addi.Imm)
		if got != want {
			t.Errorf("li at %#x: loads %#x want %#x", addr, got, want)
		}
		if lui.Rd != reg || addi.Rd != reg {
			t.Errorf("li at %#x: wrong reg", addr)
		}
	}
	check(0, 42, 10)
	check(8, 0x12345678, 11)
	check(16, 0xffffffff, 12)
	check(24, 0x80000800, 13)
}

func TestLaAndHiLo(t *testing.T) {
	img := mustAssemble(t, `
		la a0, message
		lui a1, %hi(message)
		addi a1, a1, %lo(message)
	.data
	message:
		.asciz "hi"
	`, 0x8000_0000)
	msg := img.Symbols["message"]
	if string(img.Bytes[msg-img.Origin:msg-img.Origin+3]) != "hi\x00" {
		t.Errorf("message content wrong")
	}
	lui := rv32.Decode(word(img, 0x80000000))
	addi := rv32.Decode(word(img, 0x80000004))
	if uint32(lui.Imm)+uint32(addi.Imm) != msg {
		t.Errorf("la: %#x want %#x", uint32(lui.Imm)+uint32(addi.Imm), msg)
	}
	lui2 := rv32.Decode(word(img, 0x80000008))
	addi2 := rv32.Decode(word(img, 0x8000000c))
	if uint32(lui2.Imm)+uint32(addi2.Imm) != msg {
		t.Errorf("%%hi/%%lo: %#x want %#x", uint32(lui2.Imm)+uint32(addi2.Imm), msg)
	}
}

func TestLoadStoreOperands(t *testing.T) {
	img := mustAssemble(t, `
		lw a0, 8(sp)
		sw a1, -4(s0)
		lbu a2, 0(a3)
		sb a4, 127(a5)
	`, 0)
	lw := rv32.Decode(word(img, 0))
	if lw.String() != "lw a0, 8(sp)" {
		t.Errorf("lw: %s", lw)
	}
	sw := rv32.Decode(word(img, 4))
	if sw.String() != "sw a1, -4(s0)" {
		t.Errorf("sw: %s", sw)
	}
}

func TestDataDirectives(t *testing.T) {
	img := mustAssemble(t, `
	.data
	tbl:
		.word 1, 2, 0xdeadbeef, tbl
		.half 0x1234
		.byte 1, 2, 3
		.align 2
	after:
		.space 8
		.ascii "ab"
	`, 0x1000)
	base := img.Symbols["tbl"]
	if word(img, base) != 1 || word(img, base+8) != 0xdeadbeef {
		t.Error(".word values")
	}
	if word(img, base+12) != base {
		t.Error(".word symbol self-reference")
	}
	if binary.LittleEndian.Uint16(img.Bytes[base+16-img.Origin:]) != 0x1234 {
		t.Error(".half")
	}
	after := img.Symbols["after"]
	if after%4 != 0 {
		t.Errorf(".align: after at %#x", after)
	}
	if got := string(img.Bytes[after+8-img.Origin : after+10-img.Origin]); got != "ab" {
		t.Errorf(".ascii: %q", got)
	}
}

func TestBssSection(t *testing.T) {
	img := mustAssemble(t, `
	.text
		nop
	.bss
	buf:
		.space 64
	buf2:
		.space 4
	`, 0x1000)
	if img.BssSize != 68 {
		t.Errorf("bss size: %d", img.BssSize)
	}
	if img.Symbols["buf2"] != img.Symbols["buf"]+64 {
		t.Error("bss layout")
	}
	if img.Symbols["buf"] < 0x1004 {
		t.Errorf("bss must follow text: %#x", img.Symbols["buf"])
	}
}

func TestEqu(t *testing.T) {
	img := mustAssemble(t, `
	.equ MAGIC, 0x1234
		li a0, MAGIC
		addi a1, zero, 16
	`, 0)
	lui := rv32.Decode(word(img, 0))
	addi := rv32.Decode(word(img, 4))
	if uint32(lui.Imm)+uint32(addi.Imm) != 0x1234 {
		t.Error(".equ value not usable in li")
	}
}

func TestPseudoInstructions(t *testing.T) {
	img := mustAssemble(t, `
		nop
		mv a0, a1
		not a2, a3
		neg a4, a5
		seqz a0, a1
		snez a2, a3
		jr ra
		ret
	f:
		call f
		tail f
	`, 0)
	wantOps := []string{
		"addi zero, zero, 0",
		"addi a0, a1, 0",
		"xori a2, a3, -1",
		"sub a4, zero, a5",
		"sltiu a0, a1, 1",
		"sltu a2, zero, a3",
		"jalr zero, 0(ra)",
		"jalr zero, 0(ra)",
	}
	for i, want := range wantOps {
		got := rv32.Decode(word(img, uint32(4*i))).String()
		if got != want {
			t.Errorf("inst %d: got %q want %q", i, got, want)
		}
	}
	// call f at f: auipc ra, 0; jalr ra, 0(ra)
	auipc := rv32.Decode(word(img, 32))
	jalr := rv32.Decode(word(img, 36))
	if auipc.Op != rv32.OpAUIPC || auipc.Rd != 1 || jalr.Op != rv32.OpJALR || jalr.Rd != 1 {
		t.Errorf("call: %v / %v", auipc, jalr)
	}
	tail := rv32.Decode(word(img, 40))
	if tail.Op != rv32.OpJAL || tail.Rd != 0 || tail.Imm != -8 {
		t.Errorf("tail: %v", tail)
	}
}

func TestCsrInstructions(t *testing.T) {
	img := mustAssemble(t, `
		csrr a0, mcause
		csrw mtvec, a1
		csrrs a2, mepc, zero
		csrrwi zero, mstatus, 8
	`, 0)
	if got := rv32.Decode(word(img, 0)).String(); got != "csrrs a0, mcause, zero" {
		t.Errorf("csrr: %s", got)
	}
	if got := rv32.Decode(word(img, 4)).String(); got != "csrrw zero, mtvec, a1" {
		t.Errorf("csrw: %s", got)
	}
	d := rv32.Decode(word(img, 12))
	if d.Op != rv32.OpCSRRWI || d.Rs2 != 8 {
		t.Errorf("csrrwi: %+v", d)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"addi a0, a1",       // missing operand
		"addi a0, a1, 5000", // imm out of range
		"lw a0, nope",       // bad mem operand
		"addi q9, a0, 1",    // bad register
		"j undefined_label", // unresolved symbol
		"dup:\ndup:\nnop",   // duplicate label
		".word \"str\"",     // bad value
		".asciz 5",          // bad string
		".equ X",            // missing value
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	img := mustAssemble(t, `
	# full line comment
		nop            # trailing comment
		nop            ; semicolon comment
		nop            // C++ comment
	lbl:	nop        # label sharing a line
	.data
	s:	.asciz "has # hash ; and // inside"
	`, 0)
	if img.Symbols["lbl"] != 12 {
		t.Errorf("lbl: %#x", img.Symbols["lbl"])
	}
	sAddr := img.Symbols["s"]
	got := string(img.Bytes[sAddr-img.Origin : sAddr-img.Origin+27])
	if got != "has # hash ; and // inside\x00" {
		t.Errorf("string with comment chars: %q", got)
	}
}

// Property: assembling R-type instructions with random registers round
// trips through decode.
func TestAssembleDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mnems := []string{"add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
		"mul", "mulh", "div", "divu", "rem", "remu"}
	for i := 0; i < 300; i++ {
		m := mnems[rng.Intn(len(mnems))]
		rd, rs1, rs2 := rng.Intn(32), rng.Intn(32), rng.Intn(32)
		src := m + " " + rv32.RegName(uint8(rd)) + ", " + rv32.RegName(uint8(rs1)) + ", " + rv32.RegName(uint8(rs2))
		img := mustAssemble(t, src, 0)
		d := rv32.Decode(word(img, 0))
		if d.Op.String() != m || int(d.Rd) != rd || int(d.Rs1) != rs1 || int(d.Rs2) != rs2 {
			t.Fatalf("round trip %q: got %v", src, d)
		}
	}
}
