//go:build race

package campaign

// raceEnabled lets timing-sensitive tests widen their budgets under the
// race detector's order-of-magnitude slowdown.
const raceEnabled = true
