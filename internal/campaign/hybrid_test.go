package campaign

import (
	"context"
	"testing"
)

// TestHybridCampaignTCPIP exercises the hybrid lease path: timeboxed
// fuzzing leases over the tcpip stack, corpus deltas flowing through
// the coordinator between leases, stop-on-error completion with a
// classified Table-2 bug.
func TestHybridCampaignTCPIP(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid fuzzing is slow")
	}
	co, err := NewCoordinator("", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Short stall windows keep the solver in the loop (the tcpip gates
	// are comparison-shaped — same knobs as the hybrid ablation). The
	// race detector slows concrete execution by an order of magnitude,
	// so the per-lease timebox widens accordingly.
	leaseMS := int64(2_000)
	if raceEnabled {
		leaseMS = 20_000
	}
	st, err := co.Create(Spec{
		Prog: "tcpip", Mode: "hybrid",
		FuzzLeaseMS: leaseMS, LeaseTTLMS: 600_000, StopOnError: true, Seed: 1,
		FuzzBatch: 200, StallExecs: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	r, err := NewRunner(st.Spec)
	if err != nil {
		t.Fatal(err)
	}

	maxLeases := 30
	if raceEnabled {
		maxLeases = 10
	}
	for lease := 0; lease < maxLeases; lease++ {
		qseq, cseq := r.Cursors()
		l, err := co.Lease(id, LeaseRequest{Worker: "hx", QSeq: qseq, CSeq: cseq})
		if err != nil {
			t.Fatal(err)
		}
		r.Sync(l)
		if l.Done {
			break
		}
		if l.ID == "" || l.FuzzMS != leaseMS || l.Shard != -1 {
			t.Fatalf("hybrid lease shape: %+v", l)
		}
		res := r.Run(context.Background(), l)
		res.Worker = "hx"
		if _, err := co.Result(id, res); err != nil {
			t.Fatal(err)
		}
	}

	final, _ := co.Status(id)
	if final.State != StateDone {
		t.Fatalf("hybrid campaign state %q after lease budget (stats %+v)", final.State, final.Stats)
	}
	if final.Stats.Execs == 0 {
		t.Fatal("no fuzz executions accounted")
	}
	if final.Findings == 0 {
		t.Fatal("hybrid campaign found nothing")
	}
	fs, _, _ := co.FindingsSince(context.Background(), id, 0)
	f := fs[0]
	if f.Bug < 1 || f.Bug > 6 {
		t.Fatalf("tcpip finding not classified to a Table-2 bug: %+v", f)
	}
	if f.Kind == "" || f.Func == "" {
		t.Fatalf("finding missing classification: %+v", f)
	}
}
