package campaign

import (
	"context"
	"fmt"
	"os"
	"time"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	Server   string        // coordinator address ("host:port" or URL)
	ID       string        // stable worker identity (default host-pid)
	Campaign string        // serve only this campaign ("" = every running one)
	Poll     time.Duration // idle poll interval (default 500ms)
	Logf     func(format string, args ...any)
}

func (o *WorkerOptions) normalize() {
	if o.ID == "" {
		host, _ := os.Hostname()
		o.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// RunWorker is a worker process's main loop: discover running
// campaigns, claim leases, execute them on a local Runner and return
// results, until ctx is canceled. Per-campaign state (snapshot,
// builder, query cache, sync cursors) persists across leases. A lease
// is executed under a child context that a heartbeat loop cancels when
// the coordinator rejects the lease (expired, or the campaign ended) —
// the partial result is still reported and the coordinator's dedup
// sorts it out.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	opts.normalize()
	cl := NewClient(opts.Server)
	runners := map[string]*Runner{}

	for ctx.Err() == nil {
		worked, err := workerPass(ctx, cl, opts, runners)
		if err != nil && ctx.Err() == nil {
			opts.Logf("worker %s: %v", opts.ID, err)
		}
		if !worked {
			select {
			case <-ctx.Done():
			case <-time.After(opts.Poll):
			}
		}
	}
	return ctx.Err()
}

// workerPass claims and executes at most one lease per running
// campaign; it reports whether any work was done.
func workerPass(ctx context.Context, cl *Client, opts WorkerOptions, runners map[string]*Runner) (bool, error) {
	var specs []Spec
	if opts.Campaign != "" {
		st, err := cl.Get(ctx, opts.Campaign)
		if err != nil {
			return false, err
		}
		specs = []Spec{st.Spec}
	} else {
		sts, err := cl.List(ctx)
		if err != nil {
			return false, err
		}
		for _, st := range sts {
			if st.State == StateRunning {
				specs = append(specs, st.Spec)
			}
		}
	}

	worked := false
	for _, spec := range specs {
		r := runners[spec.ID]
		if r == nil {
			var err error
			if r, err = NewRunner(spec); err != nil {
				return worked, err
			}
			runners[spec.ID] = r
		}
		qseq, cseq := r.Cursors()
		l, err := cl.Lease(ctx, spec.ID, LeaseRequest{Worker: opts.ID, QSeq: qseq, CSeq: cseq})
		if err != nil {
			return worked, err
		}
		r.Sync(l)
		if l.Done {
			delete(runners, spec.ID)
			continue
		}
		if l.ID == "" {
			continue // others hold the frontier; poll again
		}
		worked = true
		res := executeLease(ctx, cl, opts, r, spec.ID, l)
		res.Worker = opts.ID
		if _, err := cl.Result(ctx, spec.ID, res); err != nil {
			return worked, err
		}
		opts.Logf("worker %s: lease %s: %d paths, %d children, %d findings",
			opts.ID, l.ID, len(res.Records), len(res.Frontier), len(res.Findings))
	}
	return worked, nil
}

// executeLease runs one lease under a heartbeat loop. The heartbeat
// fires every TTL/3; a Cancel reply (or an unreachable coordinator past
// the lease deadline) cancels the session context.
func executeLease(ctx context.Context, cl *Client, opts WorkerOptions, r *Runner, campID string, l Lease) Result {
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ttl := time.Duration(l.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-leaseCtx.Done():
				return
			case <-t.C:
				hb, err := cl.Heartbeat(leaseCtx, campID, l.ID)
				if err == nil && hb.Cancel {
					cancel()
					return
				}
			}
		}
	}()
	res := r.Run(leaseCtx, l)
	close(stop)
	return res
}
