package campaign

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// singleSessionSemantics explores prog exhaustively in one process and
// returns the sorted set of semantic path records (the parity baseline).
func singleSessionSemantics(t *testing.T, prog string) []string {
	t.Helper()
	b := smt.NewBuilder()
	p, err := guest.ProgramFor(prog, guest.ProgramOpts{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := guest.NewCore(b, p)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	sess := cte.NewSession(snap, cte.Config{})
	sess.OnPath = func(_ int, c *iss.Core) {
		rec := PathRecord{Exit: c.ExitCode, Output: string(c.Output)}
		if c.Err != nil {
			rec.Err = c.Err.Error()
		}
		set[rec.Semantic()] = true
	}
	rep := sess.Run(context.Background())
	if !rep.Exhausted {
		t.Fatalf("baseline did not exhaust: stopped=%s paths=%d", rep.Stopped, rep.Paths)
	}
	return sortedSet(set)
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestShardedParityStormS is the deterministic-merge contract of the
// campaign service: exploring storm-s through a coordinator with 4
// frontier shards and 2 HTTP worker processes reaches exactly the
// semantic path set of one uninterrupted single-process session, with
// zero duplicated path records across shards (semantic-set parity, the
// same comparison the parallel-mode fork tests use — raw assignments
// are solver-history-dependent).
func TestShardedParityStormS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker exploration is slow")
	}
	want := singleSessionSemantics(t, "storm-s")

	co, err := NewCoordinator("", nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(co, nil))
	defer ts.Close()
	cl := NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.Create(ctx, Spec{Prog: "storm-s", Shards: 4, Batch: 8, LeaseTTLMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID

	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	for i := 0; i < 2; i++ {
		go RunWorker(wctx, WorkerOptions{Server: ts.URL, ID: []string{"alpha", "beta"}[i], Poll: 20 * time.Millisecond})
	}

	final, err := cl.WaitDone(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	stopWorkers()
	if final.State != StateDone {
		t.Fatalf("campaign state %q", final.State)
	}
	if final.Stats.Duplicates != 0 {
		t.Fatalf("%d duplicated path records across shards", final.Stats.Duplicates)
	}
	if final.Pending != 0 || final.Leases != 0 {
		t.Fatalf("campaign done with pending=%d leases=%d", final.Pending, final.Leases)
	}

	recs, err := co.Records(id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Stats.Paths != len(recs) {
		t.Fatalf("stats.Paths=%d but %d records", final.Stats.Paths, len(recs))
	}
	keys := map[string]bool{}
	set := map[string]bool{}
	for _, r := range recs {
		if keys[r.Key] {
			t.Fatalf("path key %q recorded twice", r.Key)
		}
		keys[r.Key] = true
		set[r.Semantic()] = true
	}
	got := sortedSet(set)

	if len(got) != len(want) {
		t.Fatalf("semantic sets differ: sharded %d, single-session %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("semantic record diverges:\n sharded: %s\n single:  %s", got[i], want[i])
		}
	}
}
