package campaign

import (
	"encoding/json"
	"net/http"

	"rvcte/internal/obs"
)

// NewServer wires the coordinator into an HTTP control plane, grown out
// of the obs diagnostics handler (which keeps serving /metrics and
// /debug/pprof on the same address):
//
//	POST   /campaigns                — create (Spec in, Status out, 201)
//	GET    /campaigns                — list ([]Status)
//	GET    /campaigns/{id}           — status
//	DELETE /campaigns/{id}           — graceful cancel (Status out)
//	GET    /campaigns/{id}/findings  — NDJSON finding stream; one
//	                                   WireFinding per line, closes when
//	                                   the campaign leaves "running"
//	POST   /campaigns/{id}/lease     — worker: claim work (LeaseRequest/Lease)
//	POST   /campaigns/{id}/results   — worker: return a lease (Result/ResultReply)
//	POST   /campaigns/{id}/heartbeat — worker: extend a lease ({"lease": id}/HeartbeatReply)
//
// All bodies are JSON. Unknown campaigns are 404, malformed bodies 400,
// invalid specs 422.
func NewServer(co *Coordinator, o *obs.Obs) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(o))

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if !decode(w, r, &spec) {
			return
		}
		st, err := co.Create(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		reply(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, co.List())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := co.Status(r.PathValue("id"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		reply(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := co.Cancel(r.PathValue("id"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		reply(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /campaigns/{id}/findings", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := co.Status(id); err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			flusher.Flush() // commit headers before the first (possibly late) finding
		}
		enc := json.NewEncoder(w)
		idx := 0
		for {
			fs, state, err := co.FindingsSince(r.Context(), id, idx)
			if err != nil {
				return // client went away (or campaign deleted)
			}
			for _, f := range fs {
				if enc.Encode(&f) != nil {
					return
				}
			}
			idx += len(fs)
			if flusher != nil {
				flusher.Flush()
			}
			if state != StateRunning {
				return
			}
		}
	})
	mux.HandleFunc("POST /campaigns/{id}/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		l, err := co.Lease(r.PathValue("id"), req)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		reply(w, http.StatusOK, l)
	})
	mux.HandleFunc("POST /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		var res Result
		if !decode(w, r, &res) {
			return
		}
		rr, err := co.Result(r.PathValue("id"), res)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		reply(w, http.StatusOK, rr)
	})
	mux.HandleFunc("POST /campaigns/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var hb struct {
			Lease string `json:"lease"`
		}
		if !decode(w, r, &hb) {
			return
		}
		h, err := co.Heartbeat(r.PathValue("id"), hb.Lease)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		reply(w, http.StatusOK, h)
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
