package campaign

import (
	"context"
	"fmt"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/fuzz"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/qcache"
	"rvcte/internal/relf"
	"rvcte/internal/smt"
)

// Runner executes leases for one campaign: it holds the worker-local
// long-lived state — the SMT builder, the VP snapshot (never mutated;
// sessions clone it), the query cache, and the sync bookkeeping. One
// Runner per campaign per worker process.
type Runner struct {
	spec  Spec
	b     *smt.Builder
	snap  *iss.Core
	elf   *relf.File
	qc    *qcache.Cache
	qsent map[uint64]bool    // qcache keys already exchanged with the coordinator
	qseq  int                // sync cursor into the coordinator's entry list
	cseq  int                // sync cursor into the coordinator's corpus
	seeds [][]byte           // synced corpus (hybrid seeds)
	fixed uint               // fixed-bug mask, for classification
	proto cte.ProtocolConfig // stateful guests: resolved protocol-state wiring
}

// NewRunner builds the worker-local state for spec. The program name
// resolves through the same table as cmd/cte's -prog, so every worker
// of a campaign executes a bit-identical guest.
func NewRunner(spec Spec) (*Runner, error) {
	p, err := guest.ProgramFor(spec.Prog, guest.ProgramOpts{
		Fix: spec.FixList, PktMax: spec.PktMax, Pkts: spec.Pkts, PktCaps: spec.PktCaps,
	})
	if err != nil {
		return nil, err
	}
	fixed, _ := guest.ParseFixList(spec.FixList, 1, 9)
	b := smt.NewBuilder()
	snap, elf, err := guest.NewCore(b, p)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		spec:  spec,
		b:     b,
		snap:  snap,
		elf:   elf,
		qc:    qcache.New(b, qcache.Options{}),
		qsent: map[uint64]bool{},
		fixed: fixed,
	}
	// Stateful guests publish their protocol-state symbol; resolving it
	// here means every worker banks edge coverage identically.
	if p.Proto.StateSym != "" {
		if addr, ok := elf.Symbol(p.Proto.StateSym); ok {
			r.proto = cte.ProtocolConfig{
				Packets:   p.Proto.Pkts,
				PktMax:    p.Proto.Caps,
				StateAddr: addr,
				States:    p.Proto.States,
			}
		}
	}
	return r, nil
}

// Cursors returns the sync cursors to send with the next lease request.
func (r *Runner) Cursors() (qseq, cseq int) { return r.qseq, r.cseq }

// Sync merges a lease response's query-cache and corpus deltas into the
// local state and advances the cursors. Entries received from the
// coordinator count as already-exchanged, so they are not echoed back.
func (r *Runner) Sync(l Lease) {
	for _, e := range l.QEntries {
		r.qsent[e.Key] = true
	}
	r.qc.ImportEntries(l.QEntries)
	if l.QSeq > r.qseq {
		r.qseq = l.QSeq
	}
	if len(l.Corpus) > 0 {
		r.seeds, _ = fuzz.MergeInputs(r.seeds, l.Corpus)
	}
	if l.CSeq > r.cseq {
		r.cseq = l.CSeq
	}
}

// Run executes one lease and assembles its Result. Concolic leases run
// exactly the leased inputs (roots + path budget + BFS) sequentially,
// so the i-th executed path is the i-th leased input and every record
// carries its input's canonical key; hybrid leases run one fuzzing
// timebox seeded with the synced corpus. Cancelling ctx (the heartbeat
// loop does, on lease rejection) winds the session down promptly; the
// partial result is still valid and worth reporting.
func (r *Runner) Run(ctx context.Context, l Lease) Result {
	if r.spec.Mode == "hybrid" {
		return r.runHybrid(ctx, l)
	}
	return r.runConcolic(ctx, l)
}

func (r *Runner) runConcolic(ctx context.Context, l Lease) Result {
	start := time.Now()
	roots := make([]cte.Input, len(l.Inputs))
	for i, wi := range l.Inputs {
		roots[i] = cte.ImportInput(r.b, wi)
	}
	cfg := cte.Config{
		Workers: 1, // sequential: path i is leased input i
		Budget: cte.Budget{
			MaxPaths:             len(roots),
			MaxInstrPerRun:       r.spec.MaxInstr,
			MaxConflictsPerQuery: r.spec.MaxConflicts,
		},
		Cache:       cte.CacheConfig{Queries: r.qc},
		Seed:        r.spec.Seed,
		StopOnError: r.spec.StopOnError,
		Detectors:   r.spec.Detectors,
		Explore: cte.ExploreConfig{
			Strategy:       cte.BFS,
			Roots:          roots,
			ExportFrontier: true,
		},
		Protocol: r.proto,
	}
	res := Result{Lease: l.ID}
	sess := cte.NewSession(r.snap, cfg)
	idx := 0
	sess.OnPath = func(_ int, c *iss.Core) {
		if idx >= len(l.Inputs) {
			return
		}
		rec := PathRecord{Key: l.Inputs[idx].Key(), Exit: c.ExitCode, Output: string(c.Output)}
		if c.Err != nil {
			rec.Err = c.Err.Error()
		}
		res.Records = append(res.Records, rec)
		idx++
	}
	rep := sess.Run(ctx)

	for _, ch := range rep.Frontier {
		res.Frontier = append(res.Frontier, cte.ExportInput(r.b, ch))
	}
	for _, f := range rep.Findings {
		res.Findings = append(res.Findings, r.wireFinding(f))
	}
	res.QEntries = r.qcacheDelta()
	res.Stats = ResultStats{
		Paths:   rep.Paths,
		Queries: rep.Queries,
		Instr:   rep.TotalInstr,
		WallMS:  time.Since(start).Milliseconds(),
	}
	return res
}

func (r *Runner) runHybrid(ctx context.Context, l Lease) Result {
	start := time.Now()
	cfg := cte.Config{
		Mode: cte.ModeHybrid,
		Budget: cte.Budget{
			Timeout:              time.Duration(l.FuzzMS) * time.Millisecond,
			MaxInstrPerRun:       r.spec.MaxInstr,
			MaxConflictsPerQuery: r.spec.MaxConflicts,
		},
		Cache:       cte.CacheConfig{Queries: r.qc},
		Seed:        r.spec.Seed,
		StopOnError: r.spec.StopOnError,
		Detectors:   r.spec.Detectors,
		Fuzz: cte.FuzzConfig{
			Seeds:          r.seeds,
			Batch:          r.spec.FuzzBatch,
			StallExecs:     r.spec.StallExecs,
			DryEscalations: r.spec.DryEscalations,
		},
		Protocol: r.proto,
	}
	rep := cte.NewSession(r.snap, cfg).Run(ctx)

	res := Result{Lease: l.ID}
	for _, f := range rep.Findings {
		res.Findings = append(res.Findings, r.wireFinding(f))
	}
	if rep.Fuzz != nil {
		// Send the inputs the coordinator has not seeded us with; it
		// dedups by content hash anyway.
		merged, _ := fuzz.MergeInputs(append([][]byte(nil), r.seeds...), rep.Fuzz.Corpus)
		res.Corpus = merged[len(r.seeds):]
		res.Stats.Execs = rep.Fuzz.Execs
	}
	res.QEntries = r.qcacheDelta()
	res.Stats.Queries = rep.Queries
	res.Stats.Instr = rep.TotalInstr
	res.Stats.WallMS = time.Since(start).Milliseconds()
	return res
}

// qcacheDelta exports the cache entries not yet exchanged with the
// coordinator and marks them sent.
func (r *Runner) qcacheDelta() []qcache.WireEntry {
	var delta []qcache.WireEntry
	for _, e := range r.qc.ExportEntries() {
		if !r.qsent[e.Key] {
			r.qsent[e.Key] = true
			delta = append(delta, e)
		}
	}
	return delta
}

func (r *Runner) wireFinding(f cte.Finding) WireFinding {
	wf := WireFinding{
		Kind: f.Err.Kind.String(),
		PC:   f.Err.PC,
		Addr: f.Err.Addr,
		Msg:  f.Err.Error(),
		Func: guest.LocateFunc(r.elf, f.Err.PC),
		Data: f.Data,
	}
	if f.Input != nil {
		wf.Input = cte.ExportInput(r.b, cte.Input{Assignment: f.Input})
	}
	if bug := guest.Classify(r.spec.Prog, r.elf, f.Err.Kind, f.Err.PC, r.fixed); bug != 0 {
		wf.Bug = bug
	}
	return wf
}

// String identifies the runner in logs.
func (r *Runner) String() string {
	return fmt.Sprintf("runner(%s %s)", r.spec.ID, r.spec.Prog)
}
