package campaign

import (
	"context"
	"sort"
	"testing"
)

// driveCampaign pumps one local worker (direct method calls, no HTTP)
// against co until the campaign leaves the running state or maxLeases
// have been executed; it returns the number of leases run.
func driveCampaign(t *testing.T, co *Coordinator, r *Runner, id, worker string, maxLeases int) int {
	t.Helper()
	n := 0
	for n < maxLeases {
		qseq, cseq := r.Cursors()
		l, err := co.Lease(id, LeaseRequest{Worker: worker, QSeq: qseq, CSeq: cseq})
		if err != nil {
			t.Fatal(err)
		}
		r.Sync(l)
		if l.Done {
			break
		}
		if l.ID == "" {
			t.Fatalf("single-worker campaign starved: %+v", l)
		}
		res := r.Run(context.Background(), l)
		res.Worker = worker
		if _, err := co.Result(id, res); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

func findingKeys(fs []WireFinding) []string {
	set := map[string]bool{}
	for _, f := range fs {
		set[f.Key()] = true
	}
	return sortedSet(set)
}

// TestSpoolKillResume is the crash-recovery contract: a coordinator
// killed mid-campaign — with results merged, frontier sharded, and a
// lease in flight — is replaced by a fresh coordinator over the same
// spool directory, which resumes the campaign to completion and reaches
// exactly the finding set of an uninterrupted run, with no duplicated
// path records.
func TestSpoolKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("tcpip exploration is slow")
	}
	// PktMax 24 keeps the tcpip frontier small enough to exhaust in
	// well under a second while still reaching real findings; Batch 4
	// leaves the campaign genuinely mid-flight after three leases.
	spec := Spec{Prog: "tcpip", PktMax: 24, Shards: 4, Batch: 4, LeaseTTLMS: 600_000}

	// Uninterrupted baseline campaign (no spool).
	base, err := NewCoordinator("", nil)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := base.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewRunner(bst.Spec)
	if err != nil {
		t.Fatal(err)
	}
	driveCampaign(t, base, br, bst.Spec.ID, "base", 1000)
	baseSt, _ := base.Status(bst.Spec.ID)
	if baseSt.State != StateDone {
		t.Fatalf("baseline campaign state %q", baseSt.State)
	}
	baseFindings, _, _ := base.FindingsSince(context.Background(), bst.Spec.ID, 0)
	wantKeys := findingKeys(baseFindings)
	if len(wantKeys) == 0 {
		t.Fatal("baseline campaign found nothing — test is vacuous")
	}
	baseRecs, _ := base.Records(bst.Spec.ID)

	// Phase 1: spooled coordinator, killed mid-campaign.
	spool := t.TempDir()
	co1, err := NewCoordinator(spool, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := co1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	r1, err := NewRunner(st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	driveCampaign(t, co1, r1, id, "w1", 3)
	// Leave a lease in flight at the moment of the "kill": its inputs
	// must survive into the restarted coordinator.
	qseq, cseq := r1.Cursors()
	inFlight, err := co1.Lease(id, LeaseRequest{Worker: "w1", QSeq: qseq, CSeq: cseq})
	if err != nil || inFlight.ID == "" {
		t.Fatalf("in-flight lease: %+v err=%v", inFlight, err)
	}
	mid, _ := co1.Status(id)
	if mid.State != StateRunning || mid.Stats.Paths == 0 {
		t.Fatalf("campaign not genuinely mid-flight at kill: %+v", mid)
	}
	// co1 is never touched again: the process is "gone".

	// Phase 2: a fresh coordinator resumes from the spool.
	co2, err := NewCoordinator(spool, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := co2.Status(id)
	if err != nil {
		t.Fatalf("campaign lost across restart: %v", err)
	}
	if st2.State != StateRunning {
		t.Fatalf("resumed state %q", st2.State)
	}
	if st2.Stats.Paths != mid.Stats.Paths {
		t.Fatalf("resumed paths %d != pre-kill %d", st2.Stats.Paths, mid.Stats.Paths)
	}
	if st2.Leases != 0 {
		t.Fatalf("dead worker's lease survived the restart: %d", st2.Leases)
	}
	// The in-flight lease's inputs are back in the frontier.
	if st2.Pending != mid.Pending+len(inFlight.Inputs) {
		t.Fatalf("in-flight inputs lost: pending %d, want %d+%d",
			st2.Pending, mid.Pending, len(inFlight.Inputs))
	}

	// A new worker process (fresh Runner: new builder, snapshot, cache)
	// drives the resumed campaign to completion.
	r2, err := NewRunner(st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	driveCampaign(t, co2, r2, id, "w2", 1000)
	final, _ := co2.Status(id)
	if final.State != StateDone {
		t.Fatalf("resumed campaign state %q", final.State)
	}
	if final.Stats.Duplicates != 0 {
		t.Fatalf("%d duplicated path records after resume", final.Stats.Duplicates)
	}

	gotFindings, _, _ := co2.FindingsSince(context.Background(), id, 0)
	gotKeys := findingKeys(gotFindings)
	if !equalStrings(gotKeys, wantKeys) {
		t.Fatalf("finding sets differ after kill+resume:\n resumed:  %v\n baseline: %v", gotKeys, wantKeys)
	}

	// Semantic path-set parity with the uninterrupted campaign, and
	// every record key accepted exactly once.
	recs, _ := co2.Records(id)
	keys := map[string]bool{}
	gotSet := map[string]bool{}
	for _, r := range recs {
		if keys[r.Key] {
			t.Fatalf("path key %q recorded twice", r.Key)
		}
		keys[r.Key] = true
		gotSet[r.Semantic()] = true
	}
	wantSet := map[string]bool{}
	for _, r := range baseRecs {
		wantSet[r.Semantic()] = true
	}
	if !equalStrings(sortedSet(gotSet), sortedSet(wantSet)) {
		t.Fatalf("semantic path sets differ: resumed %d, baseline %d", len(gotSet), len(wantSet))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
