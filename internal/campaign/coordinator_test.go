package campaign

import (
	"fmt"
	"testing"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/obs"
)

// fakeClock drives the coordinator's lease expiry deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newTestCoordinator(t *testing.T) (*Coordinator, *fakeClock) {
	t.Helper()
	co, err := NewCoordinator("", nil)
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	co.now = fc.now
	return co, fc
}

func wireInput(val uint64) cte.WireInput {
	return cte.WireInput{Vars: []cte.WireVar{{Name: "x", Width: 32, Val: val}}, Bound: 1}
}

// TestLeaseExpiryRedelivery: a worker that stops heartbeating loses its
// lease — the inputs are re-leased to another worker — and its late
// result is accepted but fully deduplicated (zero duplicate records in
// the campaign's record set).
func TestLeaseExpiryRedelivery(t *testing.T) {
	co, fc := newTestCoordinator(t)
	st, err := co.Create(Spec{Prog: "counter-s", Shards: 1, Batch: 4, LeaseTTLMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID

	l1, err := co.Lease(id, LeaseRequest{Worker: "a"})
	if err != nil || l1.ID == "" || len(l1.Inputs) != 1 {
		t.Fatalf("first lease: %+v err=%v", l1, err)
	}
	rootKey := l1.Inputs[0].Key()

	// Within TTL nothing is re-assignable: a second worker gets no work.
	l2, _ := co.Lease(id, LeaseRequest{Worker: "b"})
	if l2.ID != "" || l2.Done {
		t.Fatalf("lease while another holds the frontier: %+v", l2)
	}

	// Past the TTL the batch is reclaimed and re-leased.
	fc.advance(2 * time.Second)
	l3, _ := co.Lease(id, LeaseRequest{Worker: "b"})
	if l3.ID == "" || len(l3.Inputs) != 1 || l3.Inputs[0].Key() != rootKey {
		t.Fatalf("expired batch not re-leased: %+v", l3)
	}
	if got, _ := co.Status(id); got.Stats.Expired != 1 {
		t.Fatalf("expired count = %d want 1", got.Stats.Expired)
	}
	// The original worker's heartbeat now says: abandon it.
	hb, _ := co.Heartbeat(id, l1.ID)
	if !hb.Cancel {
		t.Fatal("heartbeat on an expired lease must cancel")
	}

	// Worker b returns the result: one record, one child.
	child := wireInput(7)
	if _, err := co.Result(id, Result{Lease: l3.ID, Worker: "b",
		Records:  []PathRecord{{Key: rootKey, Exit: 0}},
		Frontier: []cte.WireInput{child},
	}); err != nil {
		t.Fatal(err)
	}
	// Worker a comes back late with the same record: dropped, not doubled.
	rr, err := co.Result(id, Result{Lease: l1.ID, Worker: "a",
		Records:  []PathRecord{{Key: rootKey, Exit: 0}},
		Frontier: []cte.WireInput{child},
	})
	if err != nil || !rr.Accepted || rr.Duplicates != 1 {
		t.Fatalf("late result: %+v err=%v", rr, err)
	}
	got, _ := co.Status(id)
	if got.Stats.Paths != 1 || got.Stats.Duplicates != 1 {
		t.Fatalf("stats after late result: %+v", got.Stats)
	}
	if got.Pending != 1 {
		t.Fatalf("child enqueued %d times, want exactly 1", got.Pending)
	}
	recs, _ := co.Records(id)
	if len(recs) != 1 || recs[0].Key != rootKey {
		t.Fatalf("record set: %+v", recs)
	}
}

// TestWorkStealing: a worker whose preferred shard is empty serves the
// fullest shard instead, so one shard's backlog drains fleet-wide.
func TestWorkStealing(t *testing.T) {
	co, _ := newTestCoordinator(t)
	st, err := co.Create(Spec{Prog: "counter-s", Shards: 2, Batch: 2, LeaseTTLMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID

	// Execute the root and feed children that all land in one shard.
	l, _ := co.Lease(id, LeaseRequest{Worker: "a"})
	var kids []cte.WireInput
	target := -1
	for v := uint64(0); len(kids) < 4; v++ {
		in := wireInput(v)
		s := shardOf(in.Key(), 2)
		if target == -1 {
			target = s
		}
		if s == target {
			kids = append(kids, in)
		}
	}
	if _, err := co.Result(id, Result{Lease: l.ID, Worker: "a",
		Records:  []PathRecord{{Key: l.Inputs[0].Key()}},
		Frontier: kids,
	}); err != nil {
		t.Fatal(err)
	}

	// Find a worker name whose preferred shard is the EMPTY one.
	other := ""
	for i := 0; ; i++ {
		w := fmt.Sprintf("w%d", i)
		if shardOf(w, 2) != target {
			other = w
			break
		}
	}
	ls, _ := co.Lease(id, LeaseRequest{Worker: other})
	if ls.ID == "" || ls.Shard != target {
		t.Fatalf("steal lease: %+v (want shard %d)", ls, target)
	}
	if got, _ := co.Status(id); got.Stats.Stolen == 0 {
		t.Fatal("steal not accounted")
	}
}

// TestCancelPropagates: DELETE semantics — running leases are told to
// stop, new lease requests are turned away, results are ignored.
func TestCancelPropagates(t *testing.T) {
	co, _ := newTestCoordinator(t)
	st, err := co.Create(Spec{Prog: "counter-s", Shards: 1, Batch: 1, LeaseTTLMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	l, _ := co.Lease(id, LeaseRequest{Worker: "a"})
	if l.ID == "" {
		t.Fatal("no lease")
	}
	if got, _ := co.Cancel(id); got.State != StateCanceled {
		t.Fatalf("cancel state: %+v", got)
	}
	if hb, _ := co.Heartbeat(id, l.ID); !hb.Cancel {
		t.Fatal("heartbeat must cancel after campaign cancel")
	}
	if l2, _ := co.Lease(id, LeaseRequest{Worker: "b"}); !l2.Done {
		t.Fatalf("lease after cancel: %+v", l2)
	}
	if rr, _ := co.Result(id, Result{Lease: l.ID, Records: []PathRecord{{Key: "k"}}}); rr.Accepted {
		t.Fatal("result accepted after cancel")
	}
}

// TestStopOnErrorRequeuesRemainder: a lease that ends early (first
// finding) returns its unexecuted inputs to the shard and the campaign
// finishes with the finding.
func TestStopOnErrorRequeues(t *testing.T) {
	co, _ := newTestCoordinator(t)
	st, err := co.Create(Spec{Prog: "counter-s", Shards: 1, Batch: 4, LeaseTTLMS: 60_000, StopOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	l, _ := co.Lease(id, LeaseRequest{Worker: "a"})
	// Seed three siblings, lease them, then return only one executed.
	co.Result(id, Result{Lease: l.ID,
		Records:  []PathRecord{{Key: l.Inputs[0].Key()}},
		Frontier: []cte.WireInput{wireInput(1), wireInput(2), wireInput(3)},
	})
	l2, _ := co.Lease(id, LeaseRequest{Worker: "a"})
	if len(l2.Inputs) != 3 {
		t.Fatalf("expected 3 leased inputs, got %d", len(l2.Inputs))
	}
	rr, err := co.Result(id, Result{Lease: l2.ID,
		Records:  []PathRecord{{Key: l2.Inputs[0].Key(), Err: "boom"}},
		Findings: []WireFinding{{Kind: "load-oob", PC: 0x80000010, Msg: "boom"}},
	})
	if err != nil || !rr.Accepted {
		t.Fatalf("result: %+v err=%v", rr, err)
	}
	got, _ := co.Status(id)
	if got.State != StateDone {
		t.Fatalf("stop-on-error campaign still %q", got.State)
	}
	if got.Stats.Requeued != 2 || got.Pending != 2 {
		t.Fatalf("unexecuted inputs not requeued: %+v pending=%d", got.Stats, got.Pending)
	}
	if got.Findings != 1 {
		t.Fatalf("findings = %d", got.Findings)
	}
}

// TestScopedCampaignMetrics: each campaign's counters land in its own
// namespace of the coordinator's registry.
func TestScopedCampaignMetrics(t *testing.T) {
	co, _ := newTestCoordinator(t)
	ob := obs.New()
	co.obs = ob
	st, _ := co.Create(Spec{Prog: "counter-s", Shards: 1, Batch: 1, LeaseTTLMS: 60_000})
	id := st.Spec.ID
	l, _ := co.Lease(id, LeaseRequest{Worker: "a"})
	co.Result(id, Result{Lease: l.ID, Records: []PathRecord{{Key: l.Inputs[0].Key()}}})
	snap := ob.Snapshot()
	if snap.Counters["campaign."+id+".paths"] != 1 {
		t.Fatalf("scoped paths counter missing: %v", snap.Counters)
	}
}
