package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rvcte/internal/cte"
	"rvcte/internal/fuzz"
	"rvcte/internal/qcache"
)

// Spool persistence. Every campaign mutation rewrites
// <spool>/<id>.json with the whole campaign state — temp file plus
// atomic rename, the same crash-safety discipline as qcache.Save — so a
// coordinator killed at any instant leaves a loadable spool. Outstanding
// leases persist as their input batches: on restore they return to the
// front of their shards and the lease ids are forgotten, so a worker
// finishing a pre-crash lease reports against an unknown lease and the
// executed-key dedup keeps its records exactly-once.

// spoolLease is the persisted form of an outstanding lease.
type spoolLease struct {
	Shard  int             `json:"shard"`
	Inputs []cte.WireInput `json:"inputs,omitempty"`
}

// spoolCampaign is the persisted form of one campaign.
type spoolCampaign struct {
	Spec     Spec               `json:"spec"`
	State    string             `json:"state"`
	Shards   [][]cte.WireInput  `json:"shards"`
	Seen     []string           `json:"seen,omitempty"`
	Executed []string           `json:"executed,omitempty"`
	Records  []PathRecord       `json:"records,omitempty"`
	Findings []WireFinding      `json:"findings,omitempty"`
	Corpus   [][]byte           `json:"corpus,omitempty"`
	QEntries []qcache.WireEntry `json:"qentries,omitempty"`
	Leases   []spoolLease       `json:"leases,omitempty"`
	LeaseSeq int                `json:"lease_seq"`
	Stats    Stats              `json:"stats"`
}

// persistLocked writes c to the spool (no-op without one). Must hold
// co.mu. Persistence failures are surfaced on campaign creation and
// swallowed afterwards: a full disk must not take the live fleet down,
// it only degrades restart fidelity.
func (co *Coordinator) persistLocked(c *campaign) error {
	if co.spool == "" {
		return nil
	}
	sc := spoolCampaign{
		Spec:     c.spec,
		State:    c.state,
		Shards:   c.shards,
		Seen:     sortedKeys(c.seen),
		Executed: sortedKeys(c.executed),
		Records:  c.records,
		Findings: c.findings,
		Corpus:   c.corpus,
		QEntries: c.qentries,
		LeaseSeq: c.leaseSeq,
		Stats:    c.stats,
	}
	leaseIDs := make([]string, 0, len(c.leases))
	for id := range c.leases {
		leaseIDs = append(leaseIDs, id)
	}
	sort.Strings(leaseIDs)
	for _, id := range leaseIDs {
		l := c.leases[id]
		sc.Leases = append(sc.Leases, spoolLease{Shard: l.shard, Inputs: l.inputs})
	}

	path := filepath.Join(co.spool, c.spec.ID+".json")
	f, err := os.CreateTemp(co.spool, c.spec.ID+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriter(f)
	if err := json.NewEncoder(w).Encode(&sc); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	// Rename must not be reordered before the data reaches disk.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// loadSpool restores every persisted campaign. Must run before the
// coordinator serves (called from NewCoordinator).
func (co *Coordinator) loadSpool() error {
	if err := os.MkdirAll(co.spool, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(co.spool)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.Contains(name, ".tmp-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(co.spool, name))
		if err != nil {
			return err
		}
		var sc spoolCampaign
		if err := json.Unmarshal(data, &sc); err != nil {
			return fmt.Errorf("campaign: spool %s: %v", name, err)
		}
		c := newCampaign(sc.Spec)
		c.state = sc.State
		if len(sc.Shards) == sc.Spec.Shards {
			c.shards = sc.Shards
		}
		for i := range c.shards {
			if c.shards[i] == nil {
				c.shards[i] = []cte.WireInput{}
			}
		}
		for _, k := range sc.Seen {
			c.seen[k] = true
		}
		for _, k := range sc.Executed {
			c.executed[k] = true
		}
		c.records = sc.Records
		c.findings = sc.Findings
		for _, f := range sc.Findings {
			c.findingKeys[f.Key()] = true
		}
		c.corpus = sc.Corpus
		for _, in := range sc.Corpus {
			c.corpusIDs[fuzz.InputID(in)] = true
		}
		c.qentries = sc.QEntries
		for _, q := range sc.QEntries {
			c.qkeys[q.Key] = true
		}
		c.leaseSeq = sc.LeaseSeq
		c.stats = sc.Stats
		// In-flight leases died with the old coordinator: their inputs
		// go back to the front of their shards for re-assignment.
		for _, l := range sc.Leases {
			co.requeueLocked(c, &lease{shard: l.Shard, inputs: l.Inputs})
		}
		c.wireMetrics(co.obs)
		co.campaigns[sc.Spec.ID] = c
		if n, err := strconv.Atoi(strings.TrimPrefix(sc.Spec.ID, "c")); err == nil && n > co.nextID {
			co.nextID = n
		}
	}
	return nil
}
