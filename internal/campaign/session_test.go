package campaign

import (
	"context"
	"testing"
)

// TestSessionCampaignDeepBug runs a hybrid campaign over the stateful
// tcpip-session guest: the Spec carries the multi-packet shape (depth,
// per-packet caps) and the detector set over the wire, the runner
// resolves the protocol-state symbol locally, and the campaign stops on
// a classified deep bug (7-9) that only manifests at packet depth 3.
func TestSessionCampaignDeepBug(t *testing.T) {
	if testing.Short() {
		t.Skip("stateful hybrid fuzzing is slow")
	}
	if raceEnabled {
		// The race detector slows concrete execution ~10x; reaching a
		// depth-3 bug would need more lease budget than the package
		// timeout allows, and this test adds discovery depth, not
		// concurrency coverage (the other campaign tests race-test the
		// lease protocol).
		t.Skip("deep-session discovery is too slow under the race detector")
	}
	co, err := NewCoordinator("", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wider timeboxes than the single-packet hybrid campaign: the
	// session guest's input is three packets, so each execution is
	// longer and the coverage map (state-banked) saturates later.
	leaseMS := int64(20_000)
	st, err := co.Create(Spec{
		Prog: "tcpip-session", Pkts: 3, Detectors: []string{"all"},
		Mode:        "hybrid",
		FuzzLeaseMS: leaseMS, LeaseTTLMS: 600_000, StopOnError: true, Seed: 1,
		FuzzBatch: 200, StallExecs: 200, DryEscalations: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	r, err := NewRunner(st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.proto.StateAddr == 0 || r.proto.States != 4 {
		t.Fatalf("runner did not resolve the protocol-state wiring: %+v", r.proto)
	}

	maxLeases := 12
	for lease := 0; lease < maxLeases; lease++ {
		qseq, cseq := r.Cursors()
		l, err := co.Lease(id, LeaseRequest{Worker: "sx", QSeq: qseq, CSeq: cseq})
		if err != nil {
			t.Fatal(err)
		}
		r.Sync(l)
		if l.Done {
			break
		}
		res := r.Run(context.Background(), l)
		res.Worker = "sx"
		if _, err := co.Result(id, res); err != nil {
			t.Fatal(err)
		}
	}

	final, _ := co.Status(id)
	if final.State != StateDone {
		t.Fatalf("session campaign state %q after lease budget (stats %+v)", final.State, final.Stats)
	}
	if final.Findings == 0 {
		t.Fatal("session campaign found nothing")
	}
	fs, _, _ := co.FindingsSince(context.Background(), id, 0)
	f := fs[0]
	if f.Bug < 7 || f.Bug > 9 {
		t.Fatalf("session finding not classified to a deep bug: %+v", f)
	}
	if f.Kind == "" || f.Func == "" {
		t.Fatalf("finding missing classification: %+v", f)
	}
	t.Logf("campaign: bug %d (%s in %s) after %d execs", f.Bug, f.Kind, f.Func, final.Stats.Execs)
}
