package campaign

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/fuzz"
	"rvcte/internal/obs"
	"rvcte/internal/qcache"
)

// Coordinator owns the campaigns of one control plane: the sharded
// frontiers, the lease table, and all dedup state. Every public method
// is safe for concurrent use; one mutex guards everything (the work
// units — path executions — are orders of magnitude more expensive than
// any bookkeeping here, so a single lock never contends meaningfully).
//
// Lease lifecycle: a batch of inputs pops off one shard into a lease
// with a TTL deadline. Heartbeats extend the deadline; a lease past its
// deadline is swept on the next public call — its unexecuted inputs
// return to the *front* of their shard (oldest work first) and the
// lease id is forgotten, so the original worker's late result is still
// accepted but its records land in the executed-key dedup. A worker
// whose preferred shard (hash of its id) is empty steals from the
// fullest shard, so a straggler's backlog drains fleet-wide.
type Coordinator struct {
	mu        sync.Mutex
	cond      *sync.Cond // broadcast on any campaign mutation
	campaigns map[string]*campaign
	spool     string
	obs       *obs.Obs
	nextID    int
	now       func() time.Time // injectable for lease-expiry tests
}

type lease struct {
	id       string
	worker   string
	shard    int // -1 for hybrid timeboxes
	inputs   []cte.WireInput
	deadline time.Time
}

type campaign struct {
	spec  Spec
	state string

	shards      [][]cte.WireInput // per-shard pending queues (FIFO)
	seen        map[string]bool   // every input key ever enqueued
	executed    map[string]bool   // every input key with an accepted record
	records     []PathRecord
	findings    []WireFinding
	findingKeys map[string]bool
	corpus      [][]byte // append-ordered; CSeq cursors index into it
	corpusIDs   map[string]bool
	qentries    []qcache.WireEntry // append-ordered; QSeq cursors index into it
	qkeys       map[uint64]bool
	leases      map[string]*lease
	leaseSeq    int
	stats       Stats

	// Scoped metrics (campaign.<id>.*) in the coordinator's registry.
	mPaths, mFindings, mDup, mExpired, mStolen *obs.Counter
	gPending, gLeases                          *obs.Gauge
}

// NewCoordinator creates a coordinator. With a non-empty spool
// directory, campaign state persists across restarts: every mutation
// rewrites <spool>/<id>.json atomically, and a new coordinator over the
// same directory resumes every campaign mid-flight (outstanding leases
// are returned to their shards — the workers holding them will be
// re-leased the same inputs and any late duplicate results are dropped
// by the executed-key dedup).
func NewCoordinator(spool string, o *obs.Obs) (*Coordinator, error) {
	co := &Coordinator{
		campaigns: map[string]*campaign{},
		spool:     spool,
		obs:       o,
		now:       time.Now,
	}
	co.cond = sync.NewCond(&co.mu)
	if spool != "" {
		if err := co.loadSpool(); err != nil {
			return nil, err
		}
	}
	return co, nil
}

func shardOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Create registers a new campaign and seeds its frontier with the root
// input (the all-free assignment).
func (co *Coordinator) Create(spec Spec) (Status, error) {
	if err := spec.normalize(); err != nil {
		return Status{}, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.nextID++
	spec.ID = fmt.Sprintf("c%d", co.nextID)
	c := newCampaign(spec)
	if spec.Mode == "concolic" {
		root := cte.WireInput{}
		c.seen[root.Key()] = true
		c.shards[shardOf(root.Key(), spec.Shards)] = append(c.shards[shardOf(root.Key(), spec.Shards)], root)
	}
	c.wireMetrics(co.obs)
	co.campaigns[spec.ID] = c
	co.cond.Broadcast()
	if err := co.persistLocked(c); err != nil {
		delete(co.campaigns, spec.ID)
		return Status{}, err
	}
	return co.statusLocked(c), nil
}

func newCampaign(spec Spec) *campaign {
	return &campaign{
		spec:        spec,
		state:       StateRunning,
		shards:      make([][]cte.WireInput, spec.Shards),
		seen:        map[string]bool{},
		executed:    map[string]bool{},
		findingKeys: map[string]bool{},
		corpusIDs:   map[string]bool{},
		qkeys:       map[uint64]bool{},
		leases:      map[string]*lease{},
	}
}

func (c *campaign) wireMetrics(o *obs.Obs) {
	s := o.Scoped("campaign." + c.spec.ID).Registry()
	c.mPaths = s.Counter("paths")
	c.mFindings = s.Counter("findings")
	c.mDup = s.Counter("duplicates")
	c.mExpired = s.Counter("expired")
	c.mStolen = s.Counter("stolen")
	c.gPending = s.Gauge("pending")
	c.gLeases = s.Gauge("leases")
}

func (c *campaign) pending() int {
	n := 0
	for _, s := range c.shards {
		n += len(s)
	}
	return n
}

func (c *campaign) gauges() {
	c.gPending.Set(int64(c.pending()))
	c.gLeases.Set(int64(len(c.leases)))
}

// get must hold co.mu.
func (co *Coordinator) get(id string) (*campaign, error) {
	c := co.campaigns[id]
	if c == nil {
		return nil, fmt.Errorf("campaign: no campaign %q", id)
	}
	return c, nil
}

// sweepLocked reclaims expired leases: their unexecuted inputs return
// to the front of their shard (lazy expiry — runs on every public call,
// so an idle coordinator converges as soon as anyone talks to it).
func (co *Coordinator) sweepLocked(c *campaign) {
	now := co.now()
	for id, l := range c.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(c.leases, id)
		c.stats.Expired++
		c.mExpired.Inc()
		co.requeueLocked(c, l)
	}
}

// requeueLocked returns a lease's not-yet-executed inputs to the front
// of its shard.
func (co *Coordinator) requeueLocked(c *campaign, l *lease) {
	if l.shard < 0 {
		return
	}
	var back []cte.WireInput
	for _, in := range l.inputs {
		if !c.executed[in.Key()] {
			back = append(back, in)
		}
	}
	if len(back) > 0 {
		c.shards[l.shard] = append(back, c.shards[l.shard]...)
	}
}

// checkDoneLocked transitions a running campaign to done when its
// termination condition holds.
func (co *Coordinator) checkDoneLocked(c *campaign) {
	if c.state != StateRunning {
		return
	}
	switch {
	case c.spec.StopOnError && len(c.findings) > 0:
	case c.spec.MaxPaths > 0 && c.stats.Paths >= c.spec.MaxPaths:
	case c.spec.MaxExecs > 0 && c.stats.Execs >= c.spec.MaxExecs:
	case c.spec.Mode == "concolic" && c.pending() == 0 && len(c.leases) == 0:
	default:
		return
	}
	c.state = StateDone
	co.persistLocked(c)
	co.cond.Broadcast()
}

// Lease claims work for a worker. Concolic campaigns hand out a batch
// from the worker's preferred shard (hash(worker) % shards), stealing
// from the fullest shard when the preferred one is empty; hybrid
// campaigns hand out fuzzing timeboxes. The reply always carries the
// query-cache and corpus deltas past the request's sync cursors.
func (co *Coordinator) Lease(id string, req LeaseRequest) (Lease, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, err := co.get(id)
	if err != nil {
		return Lease{}, err
	}
	co.sweepLocked(c)
	co.checkDoneLocked(c)
	defer c.gauges()

	l := Lease{QSeq: len(c.qentries), CSeq: len(c.corpus), State: c.state}
	if req.QSeq >= 0 && req.QSeq < len(c.qentries) {
		l.QEntries = append([]qcache.WireEntry(nil), c.qentries[req.QSeq:]...)
	}
	if req.CSeq >= 0 && req.CSeq < len(c.corpus) {
		l.Corpus = append([][]byte(nil), c.corpus[req.CSeq:]...)
	}
	if c.state != StateRunning {
		l.Done = true
		return l, nil
	}

	c.leaseSeq++
	lid := fmt.Sprintf("%s-l%d", c.spec.ID, c.leaseSeq)
	ttl := time.Duration(c.spec.LeaseTTLMS) * time.Millisecond

	if c.spec.Mode == "hybrid" {
		c.leases[lid] = &lease{id: lid, worker: req.Worker, shard: -1, deadline: co.now().Add(ttl)}
		l.ID, l.Shard, l.FuzzMS, l.TTLMS = lid, -1, c.spec.FuzzLeaseMS, c.spec.LeaseTTLMS
		co.persistLocked(c)
		return l, nil
	}

	shard := co.pickShardLocked(c, req.Worker)
	if shard < 0 {
		// Nothing pending: either other workers hold the rest (poll
		// again) or the campaign just finished.
		co.checkDoneLocked(c)
		l.Done = c.state != StateRunning
		l.State = c.state
		return l, nil
	}
	batch := co.popBatchLocked(c, shard)
	if len(batch) == 0 {
		co.checkDoneLocked(c)
		l.Done = c.state != StateRunning
		l.State = c.state
		return l, nil
	}
	lw := &lease{id: lid, worker: req.Worker, shard: shard, inputs: batch, deadline: co.now().Add(ttl)}
	c.leases[lid] = lw
	l.ID, l.Shard, l.Inputs, l.TTLMS = lid, shard, batch, c.spec.LeaseTTLMS
	co.persistLocked(c)
	return l, nil
}

// pickShardLocked chooses the shard to lease from: the worker's
// preferred shard when non-empty, else the fullest (a steal). -1 when
// every shard is empty.
func (co *Coordinator) pickShardLocked(c *campaign, worker string) int {
	pref := shardOf(worker, c.spec.Shards)
	if len(c.shards[pref]) > 0 {
		return pref
	}
	best, n := -1, 0
	for i, s := range c.shards {
		if len(s) > n {
			best, n = i, len(s)
		}
	}
	if best >= 0 {
		c.stats.Stolen++
		c.mStolen.Inc()
	}
	return best
}

// popBatchLocked pops up to Batch inputs off a shard, skipping any key
// that has been executed since it was enqueued (a late result beat the
// queue).
func (co *Coordinator) popBatchLocked(c *campaign, shard int) []cte.WireInput {
	var batch []cte.WireInput
	for len(batch) < c.spec.Batch && len(c.shards[shard]) > 0 {
		in := c.shards[shard][0]
		c.shards[shard] = c.shards[shard][1:]
		if c.executed[in.Key()] {
			continue
		}
		batch = append(batch, in)
	}
	return batch
}

// Heartbeat extends a lease's deadline. Cancel in the reply tells the
// worker to abandon the lease: it is unknown (expired and reclaimed) or
// the campaign is no longer running.
func (co *Coordinator) Heartbeat(id, leaseID string) (HeartbeatReply, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, err := co.get(id)
	if err != nil {
		return HeartbeatReply{}, err
	}
	co.sweepLocked(c)
	l := c.leases[leaseID]
	if l == nil || c.state != StateRunning {
		return HeartbeatReply{OK: l != nil, Cancel: true}, nil
	}
	l.deadline = co.now().Add(time.Duration(c.spec.LeaseTTLMS) * time.Millisecond)
	return HeartbeatReply{OK: true}, nil
}

// Result merges a lease's outcome. Late results (expired or unknown
// leases) are still merged — the executed-key dedup guarantees every
// path key contributes exactly one record no matter how many workers
// ran it. Inputs the worker did not execute (a stop-on-error lease that
// ended early) return to their shard.
func (co *Coordinator) Result(id string, res Result) (ResultReply, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, err := co.get(id)
	if err != nil {
		return ResultReply{}, err
	}
	co.sweepLocked(c)
	if c.state == StateCanceled {
		return ResultReply{}, nil
	}
	reply := ResultReply{Accepted: true}

	covered := make(map[string]bool, len(res.Records))
	for _, r := range res.Records {
		covered[r.Key] = true
		if c.executed[r.Key] {
			c.stats.Duplicates++
			c.mDup.Inc()
			reply.Duplicates++
			continue
		}
		c.executed[r.Key] = true
		c.records = append(c.records, r)
		c.stats.Paths++
		c.mPaths.Inc()
	}
	if l := c.leases[res.Lease]; l != nil {
		delete(c.leases, res.Lease)
		var back []cte.WireInput
		for _, in := range l.inputs {
			if k := in.Key(); !covered[k] && !c.executed[k] {
				back = append(back, in)
				c.stats.Requeued++
			}
		}
		if len(back) > 0 && l.shard >= 0 {
			c.shards[l.shard] = append(back, c.shards[l.shard]...)
		}
	}
	for _, ch := range res.Frontier {
		k := ch.Key()
		if c.seen[k] || c.executed[k] {
			continue
		}
		c.seen[k] = true
		s := shardOf(k, c.spec.Shards)
		c.shards[s] = append(c.shards[s], ch)
	}
	for _, f := range res.Findings {
		if k := f.Key(); !c.findingKeys[k] {
			c.findingKeys[k] = true
			if f.Worker == "" {
				f.Worker = res.Worker
			}
			c.findings = append(c.findings, f)
			c.mFindings.Inc()
		}
	}
	for _, e := range res.QEntries {
		if e.Valid() && !c.qkeys[e.Key] {
			c.qkeys[e.Key] = true
			c.qentries = append(c.qentries, e)
		}
	}
	for _, in := range res.Corpus {
		if id := fuzz.InputID(in); !c.corpusIDs[id] {
			c.corpusIDs[id] = true
			c.corpus = append(c.corpus, in)
		}
	}
	c.stats.Queries += res.Stats.Queries
	c.stats.Instr += res.Stats.Instr
	c.stats.Execs += res.Stats.Execs

	co.checkDoneLocked(c)
	c.gauges()
	co.persistLocked(c)
	co.cond.Broadcast()
	return reply, nil
}

// Cancel stops a campaign: outstanding leases are dropped (their
// workers learn via heartbeat/lease rejection) and the frontier is
// frozen as-is.
func (co *Coordinator) Cancel(id string) (Status, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, err := co.get(id)
	if err != nil {
		return Status{}, err
	}
	if c.state == StateRunning {
		c.state = StateCanceled
		c.leases = map[string]*lease{}
		co.persistLocked(c)
		co.cond.Broadcast()
	}
	return co.statusLocked(c), nil
}

// Status reports one campaign.
func (co *Coordinator) Status(id string) (Status, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, err := co.get(id)
	if err != nil {
		return Status{}, err
	}
	co.sweepLocked(c)
	co.checkDoneLocked(c)
	return co.statusLocked(c), nil
}

// List reports every campaign, sorted by id.
func (co *Coordinator) List() []Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]Status, 0, len(co.campaigns))
	for _, c := range co.campaigns {
		co.sweepLocked(c)
		co.checkDoneLocked(c)
		out = append(out, co.statusLocked(c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

func (co *Coordinator) statusLocked(c *campaign) Status {
	return Status{
		Spec:     c.spec,
		State:    c.state,
		Pending:  c.pending(),
		Leases:   len(c.leases),
		Findings: len(c.findings),
		Stats:    c.stats,
	}
}

// Records returns the accepted path records of a campaign (a copy).
func (co *Coordinator) Records(id string) ([]PathRecord, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c, err := co.get(id)
	if err != nil {
		return nil, err
	}
	return append([]PathRecord(nil), c.records...), nil
}

// FindingsSince blocks until the campaign has findings past from, the
// campaign leaves the running state, or ctx is done; it returns the new
// findings and the campaign state (the NDJSON stream's pump).
func (co *Coordinator) FindingsSince(ctx context.Context, id string, from int) ([]WireFinding, string, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	stop := context.AfterFunc(ctx, co.cond.Broadcast)
	defer stop()
	for {
		c, err := co.get(id)
		if err != nil {
			return nil, "", err
		}
		co.sweepLocked(c)
		co.checkDoneLocked(c)
		if from > len(c.findings) {
			from = len(c.findings)
		}
		if len(c.findings) > from || c.state != StateRunning || ctx.Err() != nil {
			return append([]WireFinding(nil), c.findings[from:]...), c.state, ctx.Err()
		}
		co.cond.Wait()
	}
}
