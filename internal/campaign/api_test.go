package campaign

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPStatusCodes pins the control plane's error contract: invalid
// specs are 422, malformed bodies 400, unknown campaigns 404 — and the
// obs diagnostics (/metrics) keep being served from the same mux.
func TestHTTPStatusCodes(t *testing.T) {
	co, _ := newTestCoordinator(t)
	ts := httptest.NewServer(NewServer(co, nil))
	defer ts.Close()

	req := func(method, path, body string) int {
		t.Helper()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		r, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"unknown prog", "POST", "/campaigns", `{"prog":"no-such-program"}`, 422},
		{"unknown mode", "POST", "/campaigns", `{"prog":"storm-s","mode":"psychic"}`, 422},
		{"malformed body", "POST", "/campaigns", `{"prog":`, 400},
		{"status of unknown", "GET", "/campaigns/c999", "", 404},
		{"cancel of unknown", "DELETE", "/campaigns/c999", "", 404},
		{"findings of unknown", "GET", "/campaigns/c999/findings", "", 404},
		{"lease on unknown", "POST", "/campaigns/c999/lease", `{"worker":"w"}`, 404},
		{"result on unknown", "POST", "/campaigns/c999/results", `{"lease":"x"}`, 404},
		{"heartbeat on unknown", "POST", "/campaigns/c999/heartbeat", `{"lease":"x"}`, 404},
		{"metrics still served", "GET", "/metrics", "", 200},
	}
	for _, tc := range cases {
		if got := req(tc.method, tc.path, tc.body); got != tc.want {
			t.Errorf("%s: %s %s = %d, want %d", tc.name, tc.method, tc.path, got, tc.want)
		}
	}

	// A valid create is 201 and assigns an id.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"prog":"storm-s"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d, want 201", resp.StatusCode)
	}
}

// TestFindingsStreamOverHTTP runs a stop-on-error sensor campaign with
// one HTTP worker and consumes the NDJSON finding stream end-to-end:
// the stream must deliver the finding (classified with its containing
// guest function and the worker that hit it) and then close, because
// the campaign left the running state.
func TestFindingsStreamOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("worker exploration is slow")
	}
	co, err := NewCoordinator("", nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(co, nil))
	defer ts.Close()
	cl := NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.Create(ctx, Spec{Prog: "sensor", Shards: 2, Batch: 8, LeaseTTLMS: 60_000, StopOnError: true})
	if err != nil {
		t.Fatal(err)
	}

	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	go RunWorker(wctx, WorkerOptions{Server: ts.URL, ID: "streamer", Poll: 20 * time.Millisecond})

	var got []WireFinding
	final, err := cl.StreamFindings(ctx, st.Spec.ID, func(f WireFinding) {
		got = append(got, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("stream closed with campaign %q", final.State)
	}
	if len(got) == 0 {
		t.Fatal("stream delivered no findings")
	}
	f := got[0]
	if f.Kind == "" || f.PC == 0 {
		t.Fatalf("finding missing classification: %+v", f)
	}
	if f.Func == "" {
		t.Fatalf("finding not located to a guest function: %+v", f)
	}
	if f.Worker != "streamer" {
		t.Fatalf("finding worker = %q, want streamer", f.Worker)
	}
}

// TestCancelOverHTTP: DELETE turns away the worker — a subsequent lease
// request comes back Done and the status reads canceled.
func TestCancelOverHTTP(t *testing.T) {
	co, _ := newTestCoordinator(t)
	ts := httptest.NewServer(NewServer(co, nil))
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	st, err := cl.Create(ctx, Spec{Prog: "storm-s", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := st.Spec.ID
	if st, err = cl.Cancel(ctx, id); err != nil || st.State != StateCanceled {
		t.Fatalf("cancel: %+v err=%v", st, err)
	}
	l, err := cl.Lease(ctx, id, LeaseRequest{Worker: "w"})
	if err != nil || !l.Done || l.State != StateCanceled {
		t.Fatalf("lease after cancel: %+v err=%v", l, err)
	}
	if st, err = cl.Get(ctx, id); err != nil || st.State != StateCanceled {
		t.Fatalf("status after cancel: %+v err=%v", st, err)
	}
}
