package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the coordinator's HTTP API (NewServer's routes). The
// zero HTTP client is fine for the request/reply calls; the findings
// stream holds its connection open for the campaign's lifetime.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a coordinator at addr ("host:port" or a full
// http:// URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("campaign: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Create submits a new campaign.
func (c *Client) Create(ctx context.Context, spec Spec) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/campaigns", spec, &st)
	return st, err
}

// List fetches every campaign.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var st []Status
	err := c.do(ctx, http.MethodGet, "/campaigns", nil, &st)
	return st, err
}

// Get fetches one campaign's status.
func (c *Client) Get(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/campaigns/"+id, nil, &st)
	return st, err
}

// Cancel requests a graceful cancel.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodDelete, "/campaigns/"+id, nil, &st)
	return st, err
}

// Lease claims work.
func (c *Client) Lease(ctx context.Context, id string, req LeaseRequest) (Lease, error) {
	var l Lease
	err := c.do(ctx, http.MethodPost, "/campaigns/"+id+"/lease", req, &l)
	return l, err
}

// Result returns a lease's outcome.
func (c *Client) Result(ctx context.Context, id string, res Result) (ResultReply, error) {
	var rr ResultReply
	err := c.do(ctx, http.MethodPost, "/campaigns/"+id+"/results", res, &rr)
	return rr, err
}

// Heartbeat extends a lease.
func (c *Client) Heartbeat(ctx context.Context, id, leaseID string) (HeartbeatReply, error) {
	var h HeartbeatReply
	err := c.do(ctx, http.MethodPost, "/campaigns/"+id+"/heartbeat",
		map[string]string{"lease": leaseID}, &h)
	return h, err
}

// StreamFindings consumes the NDJSON finding stream, invoking fn per
// finding, until the campaign leaves the running state (normal return)
// or ctx is canceled. It returns the campaign's final status.
func (c *Client) StreamFindings(ctx context.Context, id string, fn func(WireFinding)) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/campaigns/"+id+"/findings", nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("campaign: findings stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var f WireFinding
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return Status{}, fmt.Errorf("campaign: findings stream: %v", err)
		}
		if fn != nil {
			fn(f)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return Status{}, err
	}
	return c.Get(context.WithoutCancel(ctx), id)
}

// WaitDone polls until the campaign leaves the running state.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
