// Package campaign is the fleet-scale layer of the repo: a long-running
// coordinator that shards a concolic path frontier (or a hybrid fuzzing
// corpus) across worker processes, plus the HTTP control plane and the
// worker client that speak its lease protocol.
//
// The unit of distribution is the process-portable frontier input
// (cte.WireInput): workers claim a lease — a batch of pending inputs
// popped from one shard — execute exactly those inputs on their own VP
// snapshot, and return the semantic path records, the child inputs, any
// findings, and their query-cache/corpus deltas. The coordinator owns
// all dedup state (every key ever enqueued, every key ever executed),
// so crashed or slow workers can be re-assigned without losing or
// duplicating paths. See DESIGN.md "Campaign service".
package campaign

import (
	"fmt"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/qcache"
)

// Campaign states.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
)

// Spec describes one campaign: the guest program (cmd/cte's -prog
// vocabulary, so every worker builds bit-identical state) and the
// distribution/budget knobs. Zero values select the documented
// defaults.
type Spec struct {
	ID      string `json:"id,omitempty"` // assigned by the coordinator
	Prog    string `json:"prog"`
	FixList string `json:"fix,omitempty"`     // tcpip: bugs to patch ("1,2")
	PktMax  int    `json:"pkt_max,omitempty"` // tcpip: symbolic packet bound
	Mode    string `json:"mode,omitempty"`    // "concolic" (default) | "hybrid"
	// Pkts/PktCaps describe stateful multi-packet sessions
	// (tcpip-session): the session depth and the per-packet symbolic
	// size caps (last cap repeats; empty falls back to PktMax).
	Pkts    int   `json:"pkts,omitempty"`
	PktCaps []int `json:"pkt_caps,omitempty"`
	// Detectors names the iss bug-detector set every worker attaches
	// ("heap-guard", "stack-canary", ..., or "all"); empty keeps the
	// default set.
	Detectors []string `json:"detectors,omitempty"`

	Shards     int   `json:"shards,omitempty"`       // frontier shards (default 4)
	Batch      int   `json:"batch,omitempty"`        // inputs per lease (default 16)
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"` // lease lifetime (default 30s)

	MaxPaths     int    `json:"max_paths,omitempty"` // total path budget (0 = unlimited)
	MaxInstr     uint64 `json:"max_instr,omitempty"` // per-path instruction budget
	MaxConflicts int    `json:"max_conflicts,omitempty"`
	StopOnError  bool   `json:"stop_on_error,omitempty"` // finish at the first finding
	Seed         int64  `json:"seed,omitempty"`

	FuzzLeaseMS int64  `json:"fuzz_lease_ms,omitempty"` // hybrid: timebox per lease (default 5s)
	MaxExecs    uint64 `json:"max_execs,omitempty"`     // hybrid: total execution budget
	FuzzBatch   int    `json:"fuzz_batch,omitempty"`    // hybrid: execs between stall checks
	StallExecs  uint64 `json:"stall_execs,omitempty"`   // hybrid: stall window before escalation
	// DryEscalations ends a hybrid lease after this many consecutive
	// escalations without new coverage (0 = engine default). Stateful
	// session guests need hundreds: their state-banked coverage map
	// keeps paying out long after a single-packet guest would be done.
	DryEscalations int `json:"dry_escalations,omitempty"`
}

// normalize applies defaults and validates the program spec (the same
// resolution every worker will perform).
func (s *Spec) normalize() error {
	if s.Mode == "" {
		s.Mode = "concolic"
	}
	if s.Mode != "concolic" && s.Mode != "hybrid" {
		return fmt.Errorf("campaign: unknown mode %q", s.Mode)
	}
	if s.Shards <= 0 {
		s.Shards = 4
	}
	if s.Batch <= 0 {
		s.Batch = 16
	}
	if s.LeaseTTLMS <= 0 {
		s.LeaseTTLMS = 30_000
	}
	if s.FuzzLeaseMS <= 0 {
		s.FuzzLeaseMS = 5_000
	}
	_, err := guest.ProgramFor(s.Prog, guest.ProgramOpts{
		Fix: s.FixList, PktMax: s.PktMax, Pkts: s.Pkts, PktCaps: s.PktCaps,
	})
	if err != nil {
		return err
	}
	for _, d := range s.Detectors {
		if d == "all" {
			continue
		}
		if _, derr := iss.NewDetector(d); derr != nil {
			return fmt.Errorf("campaign: %v", derr)
		}
	}
	return nil
}

// PathRecord is the semantic identity of one executed path: the
// canonical input key plus the observable behavior. The coordinator
// dedups records by Key — this is the "no path lost, no path executed
// twice in the record set" guarantee of the lease protocol.
type PathRecord struct {
	Key    string `json:"key"`
	Exit   uint32 `json:"exit"`
	Err    string `json:"err,omitempty"`
	Output string `json:"out,omitempty"`
}

// Semantic is the behavior-only view of the record (model choices are
// solver-history-dependent, so cross-sharding comparisons use this, not
// Key — same contract as the parallel-mode fork tests).
func (r PathRecord) Semantic() string {
	e := r.Err
	if e == "" {
		e = "<nil>"
	}
	return fmt.Sprintf("exit=%d err=%v out=%q", r.Exit, e, r.Output)
}

// WireFinding is one discovered error in process-portable form. Workers
// classify locally (they hold the ELF): Func is the containing guest
// function, Bug the Table-2 bug number for tcpip campaigns (0 when not
// applicable).
type WireFinding struct {
	Kind   string        `json:"kind"`
	PC     uint32        `json:"pc"`
	Addr   uint32        `json:"addr,omitempty"`
	Msg    string        `json:"msg"`
	Func   string        `json:"func,omitempty"`
	Bug    int           `json:"bug,omitempty"`
	Input  cte.WireInput `json:"input,omitempty"` // concolic: the solved assignment
	Data   []byte        `json:"data,omitempty"`  // hybrid: the raw input stream
	Worker string        `json:"worker,omitempty"`
}

// Key dedups findings across shards: two workers hitting the same error
// site report one finding.
func (f WireFinding) Key() string {
	return fmt.Sprintf("%s@%#x", f.Kind, f.PC)
}

// LeaseRequest is a worker's claim for work. QSeq/CSeq are the worker's
// sync cursors into the campaign's append-ordered query-cache entry and
// corpus lists; the lease response carries everything past them.
type LeaseRequest struct {
	Worker string `json:"worker"`
	QSeq   int    `json:"qseq"`
	CSeq   int    `json:"cseq"`
}

// Lease is the coordinator's reply: a batch of frontier inputs (concolic)
// or a fuzzing timebox (hybrid), plus the sync deltas. An empty ID with
// Done=false means "no work right now, poll again" (other workers hold
// the remaining leases); Done=true means the campaign is finished and
// the worker should move on.
type Lease struct {
	ID     string          `json:"id,omitempty"`
	Shard  int             `json:"shard"`
	Inputs []cte.WireInput `json:"inputs,omitempty"`
	FuzzMS int64           `json:"fuzz_ms,omitempty"`
	TTLMS  int64           `json:"ttl_ms,omitempty"`

	QEntries []qcache.WireEntry `json:"qentries,omitempty"`
	QSeq     int                `json:"qseq"`
	Corpus   [][]byte           `json:"corpus,omitempty"`
	CSeq     int                `json:"cseq"`

	Done  bool   `json:"done,omitempty"`
	State string `json:"state,omitempty"`
}

// ResultStats is the worker-side accounting of one lease execution.
type ResultStats struct {
	Paths   int    `json:"paths"`
	Queries int    `json:"queries"`
	Instr   uint64 `json:"instr"`
	Execs   uint64 `json:"execs,omitempty"`
	WallMS  int64  `json:"wall_ms"`
}

// Result returns a lease's outcome to the coordinator.
type Result struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`

	Records  []PathRecord       `json:"records,omitempty"`
	Frontier []cte.WireInput    `json:"frontier,omitempty"`
	Findings []WireFinding      `json:"findings,omitempty"`
	QEntries []qcache.WireEntry `json:"qentries,omitempty"`
	Corpus   [][]byte           `json:"corpus,omitempty"`
	Stats    ResultStats        `json:"stats"`
}

// ResultReply acknowledges a result. Duplicates counts records dropped
// because their key was already executed (a re-assigned lease whose
// original worker came back late).
type ResultReply struct {
	Accepted   bool `json:"accepted"`
	Duplicates int  `json:"duplicates"`
}

// HeartbeatReply answers a lease heartbeat. Cancel tells the worker to
// abandon the lease (expired and re-assigned, or campaign finished) —
// the worker cancels its session context.
type HeartbeatReply struct {
	OK     bool `json:"ok"`
	Cancel bool `json:"cancel"`
}

// Stats is the coordinator-side accounting of one campaign.
type Stats struct {
	Paths      int    `json:"paths"`
	Queries    int    `json:"queries"`
	Instr      uint64 `json:"instr"`
	Execs      uint64 `json:"execs,omitempty"`
	Duplicates int    `json:"duplicates"` // records dropped by executed-key dedup
	Expired    int    `json:"expired"`    // leases reclaimed after TTL
	Stolen     int    `json:"stolen"`     // leases served from a non-preferred shard
	Requeued   int    `json:"requeued"`   // leased inputs returned unexecuted
}

// Status is the externally visible state of a campaign.
type Status struct {
	Spec     Spec   `json:"spec"`
	State    string `json:"state"`
	Pending  int    `json:"pending"` // frontier inputs awaiting a lease
	Leases   int    `json:"leases"`  // outstanding leases
	Findings int    `json:"findings"`
	Stats    Stats  `json:"stats"`
}
