package rv32

import (
	"math/rand"
	"testing"
)

// TestCompressRoundTrip: every successful compression must decode back
// to the exact same semantic instruction.
func TestCompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tried, compressed := 0, 0
	for i := 0; i < 200000; i++ {
		var in Inst
		switch rng.Intn(12) {
		case 0:
			in = Inst{Op: OpADDI, Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Imm: int32(rng.Intn(128) - 64)}
		case 1:
			in = Inst{Op: OpLUI, Rd: uint8(rng.Intn(32)), Imm: int32(rng.Intn(1<<20)-(1<<19)) << 12}
		case 2:
			in = Inst{Op: OpADD, Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Rs2: uint8(rng.Intn(32))}
		case 3:
			in = Inst{Op: []Op{OpSUB, OpXOR, OpOR, OpAND}[rng.Intn(4)],
				Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Rs2: uint8(rng.Intn(32))}
			if rng.Intn(2) == 0 {
				in.Rs1 = in.Rd
			}
		case 4:
			in = Inst{Op: []Op{OpSLLI, OpSRLI, OpSRAI}[rng.Intn(3)],
				Rd: uint8(rng.Intn(32)), Imm: int32(rng.Intn(32))}
			in.Rs1 = in.Rd
		case 5:
			in = Inst{Op: OpANDI, Rd: uint8(rng.Intn(32)), Imm: int32(rng.Intn(128) - 64)}
			in.Rs1 = in.Rd
		case 6:
			in = Inst{Op: OpLW, Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Imm: int32(rng.Intn(300) &^ 3)}
		case 7:
			in = Inst{Op: OpSW, Rs1: uint8(rng.Intn(32)), Rs2: uint8(rng.Intn(32)), Imm: int32(rng.Intn(300) &^ 3)}
		case 8:
			in = Inst{Op: OpJAL, Rd: uint8(rng.Intn(2)), Imm: int32(rng.Intn(4096)-2048) &^ 1}
		case 9:
			in = Inst{Op: OpJALR, Rd: uint8(rng.Intn(2)), Rs1: uint8(rng.Intn(32))}
		case 10:
			in = Inst{Op: []Op{OpBEQ, OpBNE}[rng.Intn(2)], Rs1: uint8(rng.Intn(32)), Imm: int32(rng.Intn(512)-256) &^ 1}
		default:
			in = Inst{Op: OpEBREAK}
		}
		tried++
		h, ok := Compress(in)
		if !ok {
			continue
		}
		compressed++
		out := Decode(uint32(h))
		if out.Size != 2 {
			t.Fatalf("compressed decode size %d for %+v -> %#x", out.Size, in, h)
		}
		if out.Op != in.Op || out.Rd != in.Rd || out.Rs1 != in.Rs1 || out.Rs2 != in.Rs2 || out.Imm != in.Imm {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v (enc %#04x)", in, out, h)
		}
	}
	if compressed < tried/20 {
		t.Errorf("too few compressions exercised: %d of %d", compressed, tried)
	}
	t.Logf("round-tripped %d compressed encodings out of %d candidates", compressed, tried)
}

// TestCompressKnownEncodings cross-checks specific encodings against the
// spec values used in the decoder tests.
func TestCompressKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint16
	}{
		{Inst{Op: OpADDI, Rd: 0, Rs1: 0, Imm: 0}, 0x0001},    // c.nop
		{Inst{Op: OpADDI, Rd: 10, Rs1: 0, Imm: 10}, 0x4529},  // c.li a0,10
		{Inst{Op: OpADDI, Rd: 10, Rs1: 10, Imm: -1}, 0x157d}, // c.addi a0,-1
		{Inst{Op: OpJALR, Rd: 0, Rs1: 1}, 0x8082},            // c.jr ra
		{Inst{Op: OpADD, Rd: 10, Rs1: 0, Rs2: 11}, 0x852e},   // c.mv a0,a1
		{Inst{Op: OpADD, Rd: 10, Rs1: 10, Rs2: 12}, 0x9532},  // c.add a0,a2
		{Inst{Op: OpLW, Rd: 10, Rs1: 10, Imm: 0}, 0x4108},    // c.lw a0,0(a0)
		{Inst{Op: OpSW, Rs1: 10, Rs2: 11, Imm: 0}, 0xc10c},   // c.sw a1,0(a0)
		{Inst{Op: OpADDI, Rd: 2, Rs1: 2, Imm: -16}, 0x1141},  // c.addi sp,-16
		{Inst{Op: OpEBREAK}, 0x9002},                         // c.ebreak
	}
	for _, tc := range cases {
		got, ok := Compress(tc.in)
		if !ok {
			t.Errorf("%+v: not compressed", tc.in)
			continue
		}
		if got != tc.want {
			t.Errorf("%+v: got %#04x want %#04x", tc.in, got, tc.want)
		}
	}
}

// TestCompressRejects: encodings without compressed forms must be
// rejected.
func TestCompressRejects(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: 1},   // rd != rs1, rs1 != 0
		{Op: OpADDI, Rd: 5, Rs1: 5, Imm: 100}, // imm too big
		{Op: OpLUI, Rd: 2, Imm: 0x1000},       // rd == sp
		{Op: OpLW, Rd: 5, Rs1: 6, Imm: 0},     // non-prime regs
		{Op: OpLW, Rd: 9, Rs1: 9, Imm: 2},     // misaligned imm
		{Op: OpJAL, Rd: 5, Imm: 4},            // rd not x0/x1
		{Op: OpJAL, Rd: 0, Imm: 4096},         // out of range
		{Op: OpBEQ, Rs1: 8, Rs2: 9, Imm: 4},   // rs2 != x0
		{Op: OpBEQ, Rs1: 8, Rs2: 0, Imm: 512}, // out of range
		{Op: OpJALR, Rd: 1, Rs1: 5, Imm: 8},   // nonzero offset
		{Op: OpMUL, Rd: 8, Rs1: 8, Rs2: 9},    // no C form for mul
		{Op: OpECALL},                         // no C form
	}
	for _, in := range cases {
		if h, ok := Compress(in); ok {
			t.Errorf("%+v: unexpectedly compressed to %#04x", in, h)
		}
	}
}
