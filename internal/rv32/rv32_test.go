package rv32

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Known encodings cross-checked against the RISC-V spec examples /
// GNU as output.
func TestDecodeKnownEncodings(t *testing.T) {
	cases := []struct {
		word uint32
		want string
	}{
		{0x00000013, "addi zero, zero, 0"}, // nop
		{0x00150513, "addi a0, a0, 1"},     // addi a0,a0,1
		{0x800000b7, "lui ra, 0x80000"},    // lui ra,0x80000
		{0x00008067, "jalr zero, 0(ra)"},   // ret
		{0xfe010113, "addi sp, sp, -32"},   // addi sp,sp,-32
		{0x00112e23, "sw ra, 28(sp)"},      // sw ra,28(sp)
		{0x01c12083, "lw ra, 28(sp)"},      // lw ra,28(sp)
		{0x00209463, "bne ra, sp, 8"},      // bne ra,sp,+8
		{0x02a5d533, "divu a0, a1, a0"},    // divu a0,a1,a0
		{0x02b50533, "mul a0, a0, a1"},     // mul a0,a0,a1
		{0x40b50533, "sub a0, a0, a1"},     // sub a0,a0,a1
		{0x00000073, "ecall"},
		{0x00100073, "ebreak"},
		{0x30200073, "mret"},
		{0x10500073, "wfi"},
		{0x30529073, "csrrw zero, mtvec, t0"}, // csrrw x0,mtvec,t0
		{0x341022f3, "csrrs t0, mepc, zero"},  // csrr t0,mepc
	}
	for _, tc := range cases {
		got := Decode(tc.word)
		if got.String() != tc.want {
			t.Errorf("decode %#08x: got %q want %q", tc.word, got.String(), tc.want)
		}
		if got.Size != 4 {
			t.Errorf("decode %#08x: size %d", tc.word, got.Size)
		}
	}
}

func TestDecodeCompressed(t *testing.T) {
	cases := []struct {
		half uint16
		want string
	}{
		{0x0001, "addi zero, zero, 0"}, // c.nop
		{0x4501, "addi a0, zero, 0"},   // c.li a0,0
		{0x4529, "addi a0, zero, 10"},  // c.li a0,10
		{0x157d, "addi a0, a0, -1"},    // c.addi a0,-1
		{0x8082, "jalr zero, 0(ra)"},   // c.jr ra (ret)
		{0x852e, "add a0, zero, a1"},   // c.mv a0,a1
		{0x9532, "add a0, a0, a2"},     // c.add a0,a2
		{0x05e1, "addi a1, a1, 24"},    // c.addi a1, 24
		{0x4108, "lw a0, 0(a0)"},       // c.lw a0,0(a0)
		{0xc10c, "sw a1, 0(a0)"},       // c.sw a1,0(a0)
		{0x1141, "addi sp, sp, -16"},   // c.addi sp,-16
		{0x0141, "addi sp, sp, 16"},    // c.addi sp,16
		{0x9002, "ebreak"},             // c.ebreak
	}
	for _, tc := range cases {
		got := Decode(uint32(tc.half))
		if got.String() != tc.want {
			t.Errorf("decode c %#04x: got %q want %q", tc.half, got.String(), tc.want)
		}
		if got.Size != 2 {
			t.Errorf("decode c %#04x: size %d want 2", tc.half, got.Size)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	for _, w := range []uint32{0x00000000, 0xffffffff, 0x0000707f} {
		if got := Decode(w); got.Op != OpIllegal && w == 0 {
			t.Errorf("decode %#08x: expected illegal, got %v", w, got)
		}
	}
	if Decode(0).Op != OpIllegal {
		t.Error("all-zero word must decode as illegal")
	}
}

// Property: encoding then decoding is the identity on the semantic fields.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rTypes := []Op{OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}
	iTypes := []Op{OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpJALR, OpLB, OpLH, OpLW, OpLBU, OpLHU}

	for iter := 0; iter < 5000; iter++ {
		var in Inst
		switch rng.Intn(7) {
		case 0:
			in = Inst{Op: rTypes[rng.Intn(len(rTypes))], Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Rs2: uint8(rng.Intn(32))}
		case 1:
			in = Inst{Op: iTypes[rng.Intn(len(iTypes))], Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Imm: int32(rng.Intn(4096) - 2048)}
		case 2:
			in = Inst{Op: []Op{OpSB, OpSH, OpSW}[rng.Intn(3)], Rs1: uint8(rng.Intn(32)), Rs2: uint8(rng.Intn(32)), Imm: int32(rng.Intn(4096) - 2048)}
		case 3:
			in = Inst{Op: []Op{OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU}[rng.Intn(6)],
				Rs1: uint8(rng.Intn(32)), Rs2: uint8(rng.Intn(32)), Imm: int32(rng.Intn(4096)-2048) * 2}
		case 4:
			in = Inst{Op: []Op{OpLUI, OpAUIPC}[rng.Intn(2)], Rd: uint8(rng.Intn(32)), Imm: int32(rng.Uint32() & 0xfffff000)}
		case 5:
			in = Inst{Op: OpJAL, Rd: uint8(rng.Intn(32)), Imm: int32(rng.Intn(1<<20)-(1<<19)) * 2}
		default:
			in = Inst{Op: []Op{OpSLLI, OpSRLI, OpSRAI}[rng.Intn(3)], Rd: uint8(rng.Intn(32)), Rs1: uint8(rng.Intn(32)), Imm: int32(rng.Intn(32))}
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out := Decode(w)
		if out.Op != in.Op || out.Rd != in.Rd || out.Rs1 != in.Rs1 || out.Imm != in.Imm {
			t.Fatalf("round trip: in=%+v out=%+v (word %#08x)", in, out, w)
		}
		if in.Op != OpSLLI && in.Op != OpSRLI && in.Op != OpSRAI && in.Op != OpLUI && in.Op != OpAUIPC &&
			in.Op != OpJAL && in.Op != OpJALR && out.Rs2 != in.Rs2 &&
			(in.Op == OpADD || in.Op == OpSUB || in.Op == OpBEQ || in.Op == OpSW) {
			t.Fatalf("round trip rs2: in=%+v out=%+v", in, out)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Imm: 5000},
		{Op: OpADDI, Imm: -3000},
		{Op: OpSW, Imm: 2048},
		{Op: OpBEQ, Imm: 1}, // odd branch offset
		{Op: OpBEQ, Imm: 8192},
		{Op: OpJAL, Imm: 1 << 21},
		{Op: OpSLLI, Imm: 32},
		{Op: OpIllegal},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("encode %+v: expected error", in)
		}
	}
}

func TestRegisterNames(t *testing.T) {
	if RegName(0) != "zero" || RegName(2) != "sp" || RegName(10) != "a0" {
		t.Error("ABI names wrong")
	}
	if RegByName("sp") != 2 || RegByName("a7") != 17 || RegByName("x31") != 31 {
		t.Error("RegByName wrong")
	}
	if RegByName("fp") != 8 {
		t.Error("fp must alias s0")
	}
	if RegByName("bogus") != -1 {
		t.Error("unknown register must be -1")
	}
}

func TestCSRNames(t *testing.T) {
	if CSRName(CSRMTVec) != "mtvec" || CSRName(CSRMEPC) != "mepc" {
		t.Error("CSR names wrong")
	}
	if CSRByName("mtvec") != CSRMTVec || CSRByName("mcause") != CSRMCause {
		t.Error("CSRByName wrong")
	}
	if CSRByName("nope") != -1 {
		t.Error("unknown CSR must be -1")
	}
}

// Property: compressed decodes always have Size 2, uncompressed Size 4.
func TestDecodeSizeProperty(t *testing.T) {
	f := func(w uint32) bool {
		d := Decode(w)
		if w&3 != 3 {
			return d.Size == 2
		}
		return d.Size == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics and the raw field is preserved.
func TestDecodeTotality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		w := rng.Uint32()
		d := Decode(w)
		if d.Size == 4 && d.Raw != w {
			t.Fatalf("raw not preserved: %#x vs %#x", d.Raw, w)
		}
		if d.Size == 2 && d.Raw != w&0xffff {
			t.Fatalf("compressed raw not masked: %#x", d.Raw)
		}
	}
}
