package rv32

// Compress attempts to encode inst as a 16-bit C-extension instruction.
// It returns the encoding and true when a compressed form exists (the
// assembler's optional compression pass uses this; Decode expands the
// result back to the identical base instruction).
func Compress(in Inst) (uint16, bool) {
	prime := func(r uint8) (uint16, bool) { // x8..x15 -> 3-bit encoding
		if r >= 8 && r <= 15 {
			return uint16(r - 8), true
		}
		return 0, false
	}
	r5 := func(r uint8) uint16 { return uint16(r & 31) }

	switch in.Op {
	case OpADDI:
		imm := in.Imm
		switch {
		case in.Rd == in.Rs1 && imm >= -32 && imm <= 31 && !(in.Rd == 0 && imm != 0):
			// C.ADDI (C.NOP when rd=0, imm=0). imm==0 with rd!=0 is a
			// HINT encoding; keep it only for the canonical nop.
			if imm == 0 && in.Rd != 0 {
				return 0, false
			}
			u := uint16(imm) & 0x3f
			return 0x0001 | (u>>5)<<12 | r5(in.Rd)<<7 | (u&31)<<2, true
		case in.Rs1 == 0 && in.Rd != 0 && imm >= -32 && imm <= 31:
			// C.LI
			u := uint16(imm) & 0x3f
			return 0x4001 | (u>>5)<<12 | r5(in.Rd)<<7 | (u&31)<<2, true
		case in.Rd == 2 && in.Rs1 == 2 && imm != 0 && imm >= -512 && imm <= 511 && imm%16 == 0:
			// C.ADDI16SP
			u := uint32(imm)
			return uint16(0x6101 |
				(u>>9&1)<<12 | (u>>4&1)<<6 | (u>>6&1)<<5 |
				(u>>7&3)<<3 | (u>>5&1)<<2), true
		}
		// C.ADDI4SPN: addi rd', sp, nzuimm (multiple of 4, 0..1020)
		if in.Rs1 == 2 {
			if rdP, ok := prime(in.Rd); ok && in.Imm > 0 && in.Imm <= 1020 && in.Imm%4 == 0 {
				u := uint32(in.Imm)
				return uint16((u>>4&3)<<11 | (u>>6&15)<<7 |
					(u>>2&1)<<6 | (u>>3&1)<<5 | uint32(rdP)<<2), true
			}
		}
		return 0, false

	case OpLUI:
		// C.LUI: rd != 0,2; imm[17:12] != 0, sign-extended from bit 17.
		if in.Rd == 0 || in.Rd == 2 {
			return 0, false
		}
		hi := in.Imm >> 12
		if hi == 0 || hi < -32 || hi > 31 {
			return 0, false
		}
		u := uint16(hi) & 0x3f
		return 0x6001 | (u>>5)<<12 | r5(in.Rd)<<7 | (u&31)<<2, true

	case OpADD:
		switch {
		case in.Rs1 == 0 && in.Rd != 0 && in.Rs2 != 0:
			// C.MV
			return 0x8002 | r5(in.Rd)<<7 | r5(in.Rs2)<<2, true
		case in.Rd == in.Rs1 && in.Rd != 0 && in.Rs2 != 0:
			// C.ADD
			return 0x9002 | r5(in.Rd)<<7 | r5(in.Rs2)<<2, true
		}
		return 0, false

	case OpSUB, OpXOR, OpOR, OpAND:
		rdP, ok1 := prime(in.Rd)
		rs2P, ok2 := prime(in.Rs2)
		if !ok1 || !ok2 || in.Rd != in.Rs1 {
			return 0, false
		}
		f2 := map[Op]uint16{OpSUB: 0, OpXOR: 1, OpOR: 2, OpAND: 3}[in.Op]
		return 0x8c01 | rdP<<7 | f2<<5 | rs2P<<2, true

	case OpSLLI:
		// C.SLLI: rd != 0, shamt 1..31
		if in.Rd == in.Rs1 && in.Rd != 0 && in.Imm >= 1 && in.Imm <= 31 {
			return 0x0002 | r5(in.Rd)<<7 | uint16(in.Imm&31)<<2, true
		}
		return 0, false

	case OpSRLI, OpSRAI:
		rdP, ok := prime(in.Rd)
		if !ok || in.Rd != in.Rs1 || in.Imm < 1 || in.Imm > 31 {
			return 0, false
		}
		f2 := uint16(0)
		if in.Op == OpSRAI {
			f2 = 1
		}
		return 0x8001 | f2<<10 | rdP<<7 | uint16(in.Imm&31)<<2, true

	case OpANDI:
		rdP, ok := prime(in.Rd)
		if !ok || in.Rd != in.Rs1 || in.Imm < -32 || in.Imm > 31 {
			return 0, false
		}
		u := uint16(in.Imm) & 0x3f
		return 0x8801 | (u>>5)<<12 | rdP<<7 | (u&31)<<2, true

	case OpLW:
		if in.Rs1 == 2 && in.Rd != 0 && in.Imm >= 0 && in.Imm <= 252 && in.Imm%4 == 0 {
			// C.LWSP
			u := uint32(in.Imm)
			return uint16(0x4002 | (u>>5&1)<<12 | uint32(r5(in.Rd))<<7 |
				(u>>2&7)<<4 | (u>>6&3)<<2), true
		}
		rdP, ok1 := prime(in.Rd)
		rs1P, ok2 := prime(in.Rs1)
		if ok1 && ok2 && in.Imm >= 0 && in.Imm <= 124 && in.Imm%4 == 0 {
			// C.LW
			u := uint32(in.Imm)
			return uint16(0x4000 | (u>>3&7)<<10 | uint32(rs1P)<<7 |
				(u>>2&1)<<6 | (u>>6&1)<<5 | uint32(rdP)<<2), true
		}
		return 0, false

	case OpSW:
		if in.Rs1 == 2 && in.Imm >= 0 && in.Imm <= 252 && in.Imm%4 == 0 {
			// C.SWSP
			u := uint32(in.Imm)
			return uint16(0xc002 | (u>>2&15)<<9 | (u>>6&3)<<7 | uint32(r5(in.Rs2))<<2), true
		}
		rs2P, ok1 := prime(in.Rs2)
		rs1P, ok2 := prime(in.Rs1)
		if ok1 && ok2 && in.Imm >= 0 && in.Imm <= 124 && in.Imm%4 == 0 {
			// C.SW
			u := uint32(in.Imm)
			return uint16(0xc000 | (u>>3&7)<<10 | uint32(rs1P)<<7 |
				(u>>2&1)<<6 | (u>>6&1)<<5 | uint32(rs2P)<<2), true
		}
		return 0, false

	case OpJAL:
		if in.Imm < -2048 || in.Imm > 2047 || in.Imm%2 != 0 {
			return 0, false
		}
		u := uint32(in.Imm)
		enc := (u>>11&1)<<12 | (u>>4&1)<<11 | (u>>8&3)<<9 | (u>>10&1)<<8 |
			(u>>6&1)<<7 | (u>>7&1)<<6 | (u>>1&7)<<3 | (u>>5&1)<<2
		switch in.Rd {
		case 0: // C.J
			return uint16(0xa001 | enc), true
		case 1: // C.JAL (RV32)
			return uint16(0x2001 | enc), true
		}
		return 0, false

	case OpJALR:
		if in.Imm != 0 || in.Rs1 == 0 {
			return 0, false
		}
		switch in.Rd {
		case 0: // C.JR
			return 0x8002 | r5(in.Rs1)<<7, true
		case 1: // C.JALR
			return 0x9002 | r5(in.Rs1)<<7, true
		}
		return 0, false

	case OpBEQ, OpBNE:
		rs1P, ok := prime(in.Rs1)
		if !ok || in.Rs2 != 0 || in.Imm < -256 || in.Imm > 255 || in.Imm%2 != 0 {
			return 0, false
		}
		u := uint32(in.Imm)
		enc := (u>>8&1)<<12 | (u>>3&3)<<10 | uint32(rs1P)<<7 |
			(u>>6&3)<<5 | (u>>1&3)<<3 | (u>>5&1)<<2
		if in.Op == OpBEQ {
			return uint16(0xc001 | enc), true
		}
		return uint16(0xe001 | enc), true

	case OpEBREAK:
		return 0x9002, true
	}
	return 0, false
}
