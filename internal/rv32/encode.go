package rv32

import "fmt"

// Instruction encoders for the assembler. Each returns the 32-bit
// little-endian encoding. Immediate ranges are validated; out-of-range
// immediates return an error so the assembler can report source locations.

type encInfo struct {
	opcode uint32
	funct3 uint32
	funct7 uint32
	format byte // R I S B U J E(system) C(csr) Z(csr-imm)
}

var encTable = map[Op]encInfo{
	OpLUI:    {0x37, 0, 0, 'U'},
	OpAUIPC:  {0x17, 0, 0, 'U'},
	OpJAL:    {0x6f, 0, 0, 'J'},
	OpJALR:   {0x67, 0, 0, 'I'},
	OpBEQ:    {0x63, 0, 0, 'B'},
	OpBNE:    {0x63, 1, 0, 'B'},
	OpBLT:    {0x63, 4, 0, 'B'},
	OpBGE:    {0x63, 5, 0, 'B'},
	OpBLTU:   {0x63, 6, 0, 'B'},
	OpBGEU:   {0x63, 7, 0, 'B'},
	OpLB:     {0x03, 0, 0, 'I'},
	OpLH:     {0x03, 1, 0, 'I'},
	OpLW:     {0x03, 2, 0, 'I'},
	OpLBU:    {0x03, 4, 0, 'I'},
	OpLHU:    {0x03, 5, 0, 'I'},
	OpSB:     {0x23, 0, 0, 'S'},
	OpSH:     {0x23, 1, 0, 'S'},
	OpSW:     {0x23, 2, 0, 'S'},
	OpADDI:   {0x13, 0, 0, 'I'},
	OpSLTI:   {0x13, 2, 0, 'I'},
	OpSLTIU:  {0x13, 3, 0, 'I'},
	OpXORI:   {0x13, 4, 0, 'I'},
	OpORI:    {0x13, 6, 0, 'I'},
	OpANDI:   {0x13, 7, 0, 'I'},
	OpSLLI:   {0x13, 1, 0x00, 'R'}, // shamt in rs2 slot
	OpSRLI:   {0x13, 5, 0x00, 'R'},
	OpSRAI:   {0x13, 5, 0x20, 'R'},
	OpADD:    {0x33, 0, 0x00, 'R'},
	OpSUB:    {0x33, 0, 0x20, 'R'},
	OpSLL:    {0x33, 1, 0x00, 'R'},
	OpSLT:    {0x33, 2, 0x00, 'R'},
	OpSLTU:   {0x33, 3, 0x00, 'R'},
	OpXOR:    {0x33, 4, 0x00, 'R'},
	OpSRL:    {0x33, 5, 0x00, 'R'},
	OpSRA:    {0x33, 5, 0x20, 'R'},
	OpOR:     {0x33, 6, 0x00, 'R'},
	OpAND:    {0x33, 7, 0x00, 'R'},
	OpMUL:    {0x33, 0, 0x01, 'R'},
	OpMULH:   {0x33, 1, 0x01, 'R'},
	OpMULHSU: {0x33, 2, 0x01, 'R'},
	OpMULHU:  {0x33, 3, 0x01, 'R'},
	OpDIV:    {0x33, 4, 0x01, 'R'},
	OpDIVU:   {0x33, 5, 0x01, 'R'},
	OpREM:    {0x33, 6, 0x01, 'R'},
	OpREMU:   {0x33, 7, 0x01, 'R'},
	OpFENCE:  {0x0f, 0, 0, 'E'},
	OpECALL:  {0x73, 0, 0, 'E'},
	OpEBREAK: {0x73, 0, 0, 'E'},
	OpMRET:   {0x73, 0, 0, 'E'},
	OpWFI:    {0x73, 0, 0, 'E'},
	OpCSRRW:  {0x73, 1, 0, 'C'},
	OpCSRRS:  {0x73, 2, 0, 'C'},
	OpCSRRC:  {0x73, 3, 0, 'C'},
	OpCSRRWI: {0x73, 5, 0, 'Z'},
	OpCSRRSI: {0x73, 6, 0, 'Z'},
	OpCSRRCI: {0x73, 7, 0, 'Z'},
}

// Encode produces the 32-bit encoding of inst. It validates immediate
// ranges and returns an error for unencodable instructions.
func Encode(inst Inst) (uint32, error) {
	info, ok := encTable[inst.Op]
	if !ok {
		return 0, fmt.Errorf("rv32: cannot encode %v", inst.Op)
	}
	rd := uint32(inst.Rd) & 31
	rs1 := uint32(inst.Rs1) & 31
	rs2 := uint32(inst.Rs2) & 31
	imm := inst.Imm

	switch info.format {
	case 'R':
		if inst.Op == OpSLLI || inst.Op == OpSRLI || inst.Op == OpSRAI {
			if imm < 0 || imm > 31 {
				return 0, fmt.Errorf("rv32: shift amount %d out of range", imm)
			}
			rs2 = uint32(imm)
		}
		return info.funct7<<25 | rs2<<20 | rs1<<15 | info.funct3<<12 | rd<<7 | info.opcode, nil
	case 'I':
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("rv32: I-immediate %d out of range", imm)
		}
		return uint32(imm)&0xfff<<20 | rs1<<15 | info.funct3<<12 | rd<<7 | info.opcode, nil
	case 'S':
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("rv32: S-immediate %d out of range", imm)
		}
		u := uint32(imm) & 0xfff
		return u>>5<<25 | rs2<<20 | rs1<<15 | info.funct3<<12 | (u&31)<<7 | info.opcode, nil
	case 'B':
		if imm < -4096 || imm > 4095 || imm&1 != 0 {
			return 0, fmt.Errorf("rv32: B-immediate %d out of range", imm)
		}
		u := uint32(imm)
		return bits(u, 12, 12)<<31 | bits(u, 10, 5)<<25 | rs2<<20 | rs1<<15 |
			info.funct3<<12 | bits(u, 4, 1)<<8 | bits(u, 11, 11)<<7 | info.opcode, nil
	case 'U':
		return uint32(imm)&0xfffff000 | rd<<7 | info.opcode, nil
	case 'J':
		if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
			return 0, fmt.Errorf("rv32: J-immediate %d out of range", imm)
		}
		u := uint32(imm)
		return bits(u, 20, 20)<<31 | bits(u, 10, 1)<<21 | bits(u, 11, 11)<<20 |
			bits(u, 19, 12)<<12 | rd<<7 | info.opcode, nil
	case 'E':
		switch inst.Op {
		case OpECALL:
			return 0x00000073, nil
		case OpEBREAK:
			return 0x00100073, nil
		case OpMRET:
			return 0x30200073, nil
		case OpWFI:
			return 0x10500073, nil
		case OpFENCE:
			return 0x0000000f, nil
		}
	case 'C':
		if imm < 0 || imm > 4095 {
			return 0, fmt.Errorf("rv32: CSR number %d out of range", imm)
		}
		return uint32(imm)<<20 | rs1<<15 | info.funct3<<12 | rd<<7 | info.opcode, nil
	case 'Z':
		if imm < 0 || imm > 4095 {
			return 0, fmt.Errorf("rv32: CSR number %d out of range", imm)
		}
		if rs2 > 31 {
			return 0, fmt.Errorf("rv32: CSR zimm %d out of range", rs2)
		}
		return uint32(imm)<<20 | rs2<<15 | info.funct3<<12 | rd<<7 | info.opcode, nil
	}
	return 0, fmt.Errorf("rv32: cannot encode %v", inst.Op)
}
