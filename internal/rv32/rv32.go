// Package rv32 defines the RV32IMC instruction set: opcodes, decoding of
// 32-bit and 16-bit (compressed) encodings, instruction encoding helpers
// for the assembler, and register/CSR naming.
package rv32

import "fmt"

// Op enumerates the decoded operations. Compressed instructions decode to
// their base-ISA equivalents (the C extension only adds encodings, not
// semantics).
type Op uint8

const (
	OpIllegal Op = iota

	// RV32I
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpFENCE
	OpECALL
	OpEBREAK

	// Zicsr (used for trap handling)
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI

	// Privileged
	OpMRET
	OpWFI

	// M extension
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	opMax
)

// NumOps is the number of distinct decoded operations, for sizing
// per-opcode dispatch tables.
const NumOps = int(opMax)

var opNames = [...]string{
	OpIllegal: "illegal",
	OpLUI:     "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori", OpORI: "ori", OpANDI: "andi",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpFENCE: "fence", OpECALL: "ecall", OpEBREAK: "ebreak",
	OpCSRRW: "csrrw", OpCSRRS: "csrrs", OpCSRRC: "csrrc",
	OpCSRRWI: "csrrwi", OpCSRRSI: "csrrsi", OpCSRRCI: "csrrci",
	OpMRET: "mret", OpWFI: "wfi",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is a decoded instruction. For CSR instructions Imm holds the CSR
// number and Rs2 the zimm (for the *I forms).
type Inst struct {
	Op   Op
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Imm  int32
	Size uint8  // 2 for compressed encodings, 4 otherwise
	Raw  uint32 // the (possibly 16-bit) fetched encoding
}

func (i Inst) String() string {
	switch i.Op {
	case OpECALL, OpEBREAK, OpMRET, OpWFI, OpFENCE:
		return i.Op.String()
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", i.Op, RegName(i.Rd), uint32(i.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("%s %s, %d", i.Op, RegName(i.Rd), i.Imm)
	case OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rs1), RegName(i.Rs2), i.Imm)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rs2), i.Imm, RegName(i.Rs1))
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
	case OpCSRRW, OpCSRRS, OpCSRRC:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), CSRName(uint16(i.Imm)), RegName(i.Rs1))
	case OpCSRRWI, OpCSRRSI, OpCSRRCI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), CSRName(uint16(i.Imm)), i.Rs2)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2))
	}
}

// ABI register names, x0..x31.
var regNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of register r.
func RegName(r uint8) string {
	if r < 32 {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// RegByName resolves an ABI or xN register name; returns -1 if unknown.
func RegByName(name string) int {
	for i, n := range regNames {
		if n == name {
			return i
		}
	}
	if name == "fp" {
		return 8
	}
	var n int
	if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < 32 {
		return n
	}
	return -1
}

// Machine-mode CSR numbers used by the VP.
const (
	CSRMStatus  = 0x300
	CSRMISA     = 0x301
	CSRMIE      = 0x304
	CSRMTVec    = 0x305
	CSRMScratch = 0x340
	CSRMEPC     = 0x341
	CSRMCause   = 0x342
	CSRMTVal    = 0x343
	CSRMIP      = 0x344
	CSRMCycle   = 0xb00
	CSRMCycleH  = 0xb80
	CSRMHartID  = 0xf14
)

// CSRName returns a human-readable name for the CSR number.
func CSRName(csr uint16) string {
	switch csr {
	case CSRMStatus:
		return "mstatus"
	case CSRMISA:
		return "misa"
	case CSRMIE:
		return "mie"
	case CSRMTVec:
		return "mtvec"
	case CSRMScratch:
		return "mscratch"
	case CSRMEPC:
		return "mepc"
	case CSRMCause:
		return "mcause"
	case CSRMTVal:
		return "mtval"
	case CSRMIP:
		return "mip"
	case CSRMCycle:
		return "mcycle"
	case CSRMCycleH:
		return "mcycleh"
	case CSRMHartID:
		return "mhartid"
	}
	return fmt.Sprintf("csr(0x%x)", csr)
}

// CSRByName resolves a CSR name; returns -1 if unknown.
func CSRByName(name string) int {
	for _, csr := range []uint16{CSRMStatus, CSRMISA, CSRMIE, CSRMTVec, CSRMScratch,
		CSRMEPC, CSRMCause, CSRMTVal, CSRMIP, CSRMCycle, CSRMCycleH, CSRMHartID} {
		if CSRName(csr) == name {
			return int(csr)
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "0x%x", &n); err == nil && n >= 0 && n < 4096 {
		return n
	}
	return -1
}

// Trap causes (mcause values).
const (
	CauseMisalignedFetch = 0
	CauseFetchAccess     = 1
	CauseIllegalInst     = 2
	CauseBreakpoint      = 3
	CauseMisalignedLoad  = 4
	CauseLoadAccess      = 5
	CauseMisalignedStore = 6
	CauseStoreAccess     = 7
	CauseECallM          = 11
	CauseInterruptFlag   = 0x80000000
	IrqMachineSoftware   = 3
	IrqMachineTimer      = 7
	IrqMachineExternal   = 11
)

func bits(v uint32, hi, lo uint) uint32 { return v >> lo & (1<<(hi-lo+1) - 1) }

func signExtend(v uint32, bit uint) int32 {
	shift := 31 - bit
	return int32(v<<shift) >> shift
}

// Decode decodes the instruction starting with the 32-bit little-endian
// word w (for compressed instructions only the low 16 bits are used).
func Decode(w uint32) Inst {
	if w&3 != 3 {
		return decodeCompressed(uint16(w))
	}
	opcode := w & 0x7f
	rd := uint8(bits(w, 11, 7))
	rs1 := uint8(bits(w, 19, 15))
	rs2 := uint8(bits(w, 24, 20))
	funct3 := bits(w, 14, 12)
	funct7 := bits(w, 31, 25)
	ill := Inst{Op: OpIllegal, Size: 4, Raw: w}

	switch opcode {
	case 0x37: // LUI
		return Inst{Op: OpLUI, Rd: rd, Imm: int32(w & 0xfffff000), Size: 4, Raw: w}
	case 0x17: // AUIPC
		return Inst{Op: OpAUIPC, Rd: rd, Imm: int32(w & 0xfffff000), Size: 4, Raw: w}
	case 0x6f: // JAL
		imm := bits(w, 31, 31)<<20 | bits(w, 19, 12)<<12 | bits(w, 20, 20)<<11 | bits(w, 30, 21)<<1
		return Inst{Op: OpJAL, Rd: rd, Imm: signExtend(imm, 20), Size: 4, Raw: w}
	case 0x67: // JALR
		if funct3 != 0 {
			return ill
		}
		return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: signExtend(bits(w, 31, 20), 11), Size: 4, Raw: w}
	case 0x63: // branches
		imm := bits(w, 31, 31)<<12 | bits(w, 7, 7)<<11 | bits(w, 30, 25)<<5 | bits(w, 11, 8)<<1
		ops := [8]Op{OpBEQ, OpBNE, OpIllegal, OpIllegal, OpBLT, OpBGE, OpBLTU, OpBGEU}
		op := ops[funct3]
		if op == OpIllegal {
			return ill
		}
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 12), Size: 4, Raw: w}
	case 0x03: // loads
		ops := [8]Op{OpLB, OpLH, OpLW, OpIllegal, OpLBU, OpLHU, OpIllegal, OpIllegal}
		op := ops[funct3]
		if op == OpIllegal {
			return ill
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: signExtend(bits(w, 31, 20), 11), Size: 4, Raw: w}
	case 0x23: // stores
		ops := [8]Op{OpSB, OpSH, OpSW, OpIllegal, OpIllegal, OpIllegal, OpIllegal, OpIllegal}
		op := ops[funct3]
		if op == OpIllegal {
			return ill
		}
		imm := bits(w, 31, 25)<<5 | bits(w, 11, 7)
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 11), Size: 4, Raw: w}
	case 0x13: // op-imm
		imm := signExtend(bits(w, 31, 20), 11)
		switch funct3 {
		case 0:
			return Inst{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: imm, Size: 4, Raw: w}
		case 2:
			return Inst{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: imm, Size: 4, Raw: w}
		case 3:
			return Inst{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: imm, Size: 4, Raw: w}
		case 4:
			return Inst{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: imm, Size: 4, Raw: w}
		case 6:
			return Inst{Op: OpORI, Rd: rd, Rs1: rs1, Imm: imm, Size: 4, Raw: w}
		case 7:
			return Inst{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: imm, Size: 4, Raw: w}
		case 1:
			if funct7 != 0 {
				return ill
			}
			return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2), Size: 4, Raw: w}
		case 5:
			switch funct7 {
			case 0:
				return Inst{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2), Size: 4, Raw: w}
			case 0x20:
				return Inst{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2), Size: 4, Raw: w}
			}
			return ill
		}
		return ill
	case 0x33: // op
		type key struct {
			f3 uint32
			f7 uint32
		}
		ops := map[key]Op{
			{0, 0}: OpADD, {0, 0x20}: OpSUB, {1, 0}: OpSLL, {2, 0}: OpSLT,
			{3, 0}: OpSLTU, {4, 0}: OpXOR, {5, 0}: OpSRL, {5, 0x20}: OpSRA,
			{6, 0}: OpOR, {7, 0}: OpAND,
			{0, 1}: OpMUL, {1, 1}: OpMULH, {2, 1}: OpMULHSU, {3, 1}: OpMULHU,
			{4, 1}: OpDIV, {5, 1}: OpDIVU, {6, 1}: OpREM, {7, 1}: OpREMU,
		}
		op, ok := ops[key{funct3, funct7}]
		if !ok {
			return ill
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Size: 4, Raw: w}
	case 0x0f: // FENCE (and FENCE.I) — treated as no-ops by the VP
		return Inst{Op: OpFENCE, Size: 4, Raw: w}
	case 0x73: // SYSTEM
		csr := bits(w, 31, 20)
		switch funct3 {
		case 0:
			switch w {
			case 0x00000073:
				return Inst{Op: OpECALL, Size: 4, Raw: w}
			case 0x00100073:
				return Inst{Op: OpEBREAK, Size: 4, Raw: w}
			case 0x30200073:
				return Inst{Op: OpMRET, Size: 4, Raw: w}
			case 0x10500073:
				return Inst{Op: OpWFI, Size: 4, Raw: w}
			}
			return ill
		case 1:
			return Inst{Op: OpCSRRW, Rd: rd, Rs1: rs1, Imm: int32(csr), Size: 4, Raw: w}
		case 2:
			return Inst{Op: OpCSRRS, Rd: rd, Rs1: rs1, Imm: int32(csr), Size: 4, Raw: w}
		case 3:
			return Inst{Op: OpCSRRC, Rd: rd, Rs1: rs1, Imm: int32(csr), Size: 4, Raw: w}
		case 5:
			return Inst{Op: OpCSRRWI, Rd: rd, Rs2: rs1, Imm: int32(csr), Size: 4, Raw: w}
		case 6:
			return Inst{Op: OpCSRRSI, Rd: rd, Rs2: rs1, Imm: int32(csr), Size: 4, Raw: w}
		case 7:
			return Inst{Op: OpCSRRCI, Rd: rd, Rs2: rs1, Imm: int32(csr), Size: 4, Raw: w}
		}
		return ill
	}
	return ill
}

// decodeCompressed expands a 16-bit C-extension encoding into its base
// instruction. Size is 2 so the PC advances correctly.
func decodeCompressed(h uint16) Inst {
	w := uint32(h)
	ill := Inst{Op: OpIllegal, Size: 2, Raw: w}
	op := w & 3
	funct3 := bits(w, 15, 13)
	// Registers in the "prime" (3-bit) encodings map to x8..x15.
	rdP := uint8(bits(w, 4, 2)) + 8
	rs1P := uint8(bits(w, 9, 7)) + 8

	switch op {
	case 0:
		switch funct3 {
		case 0: // C.ADDI4SPN: addi rd', sp, nzuimm
			imm := bits(w, 10, 7)<<6 | bits(w, 12, 11)<<4 | bits(w, 5, 5)<<3 | bits(w, 6, 6)<<2
			if imm == 0 {
				return ill
			}
			return Inst{Op: OpADDI, Rd: rdP, Rs1: 2, Imm: int32(imm), Size: 2, Raw: w}
		case 2: // C.LW
			imm := bits(w, 5, 5)<<6 | bits(w, 12, 10)<<3 | bits(w, 6, 6)<<2
			return Inst{Op: OpLW, Rd: rdP, Rs1: rs1P, Imm: int32(imm), Size: 2, Raw: w}
		case 6: // C.SW
			imm := bits(w, 5, 5)<<6 | bits(w, 12, 10)<<3 | bits(w, 6, 6)<<2
			return Inst{Op: OpSW, Rs1: rs1P, Rs2: rdP, Imm: int32(imm), Size: 2, Raw: w}
		}
		return ill
	case 1:
		switch funct3 {
		case 0: // C.ADDI (C.NOP when rd=0)
			rd := uint8(bits(w, 11, 7))
			imm := signExtend(bits(w, 12, 12)<<5|bits(w, 6, 2), 5)
			return Inst{Op: OpADDI, Rd: rd, Rs1: rd, Imm: imm, Size: 2, Raw: w}
		case 1: // C.JAL (RV32)
			imm := cjImm(w)
			return Inst{Op: OpJAL, Rd: 1, Imm: imm, Size: 2, Raw: w}
		case 2: // C.LI
			rd := uint8(bits(w, 11, 7))
			imm := signExtend(bits(w, 12, 12)<<5|bits(w, 6, 2), 5)
			return Inst{Op: OpADDI, Rd: rd, Rs1: 0, Imm: imm, Size: 2, Raw: w}
		case 3:
			rd := uint8(bits(w, 11, 7))
			if rd == 2 { // C.ADDI16SP
				imm := signExtend(bits(w, 12, 12)<<9|bits(w, 4, 3)<<7|bits(w, 5, 5)<<6|bits(w, 2, 2)<<5|bits(w, 6, 6)<<4, 9)
				if imm == 0 {
					return ill
				}
				return Inst{Op: OpADDI, Rd: 2, Rs1: 2, Imm: imm, Size: 2, Raw: w}
			}
			// C.LUI
			imm := signExtend(bits(w, 12, 12)<<17|bits(w, 6, 2)<<12, 17)
			if imm == 0 {
				return ill
			}
			return Inst{Op: OpLUI, Rd: rd, Imm: imm, Size: 2, Raw: w}
		case 4:
			f2 := bits(w, 11, 10)
			switch f2 {
			case 0: // C.SRLI
				sh := bits(w, 12, 12)<<5 | bits(w, 6, 2)
				return Inst{Op: OpSRLI, Rd: rs1P, Rs1: rs1P, Imm: int32(sh), Size: 2, Raw: w}
			case 1: // C.SRAI
				sh := bits(w, 12, 12)<<5 | bits(w, 6, 2)
				return Inst{Op: OpSRAI, Rd: rs1P, Rs1: rs1P, Imm: int32(sh), Size: 2, Raw: w}
			case 2: // C.ANDI
				imm := signExtend(bits(w, 12, 12)<<5|bits(w, 6, 2), 5)
				return Inst{Op: OpANDI, Rd: rs1P, Rs1: rs1P, Imm: imm, Size: 2, Raw: w}
			case 3:
				ops := [4]Op{OpSUB, OpXOR, OpOR, OpAND}
				if bits(w, 12, 12) != 0 {
					return ill
				}
				return Inst{Op: ops[bits(w, 6, 5)], Rd: rs1P, Rs1: rs1P, Rs2: rdP, Size: 2, Raw: w}
			}
			return ill
		case 5: // C.J
			return Inst{Op: OpJAL, Rd: 0, Imm: cjImm(w), Size: 2, Raw: w}
		case 6: // C.BEQZ
			return Inst{Op: OpBEQ, Rs1: rs1P, Rs2: 0, Imm: cbImm(w), Size: 2, Raw: w}
		case 7: // C.BNEZ
			return Inst{Op: OpBNE, Rs1: rs1P, Rs2: 0, Imm: cbImm(w), Size: 2, Raw: w}
		}
		return ill
	case 2:
		rd := uint8(bits(w, 11, 7))
		switch funct3 {
		case 0: // C.SLLI
			sh := bits(w, 12, 12)<<5 | bits(w, 6, 2)
			return Inst{Op: OpSLLI, Rd: rd, Rs1: rd, Imm: int32(sh), Size: 2, Raw: w}
		case 2: // C.LWSP
			if rd == 0 {
				return ill
			}
			imm := bits(w, 3, 2)<<6 | bits(w, 12, 12)<<5 | bits(w, 6, 4)<<2
			return Inst{Op: OpLW, Rd: rd, Rs1: 2, Imm: int32(imm), Size: 2, Raw: w}
		case 4:
			rs2 := uint8(bits(w, 6, 2))
			if bits(w, 12, 12) == 0 {
				if rs2 == 0 { // C.JR
					if rd == 0 {
						return ill
					}
					return Inst{Op: OpJALR, Rd: 0, Rs1: rd, Size: 2, Raw: w}
				}
				// C.MV
				return Inst{Op: OpADD, Rd: rd, Rs1: 0, Rs2: rs2, Size: 2, Raw: w}
			}
			if rs2 == 0 {
				if rd == 0 { // C.EBREAK
					return Inst{Op: OpEBREAK, Size: 2, Raw: w}
				}
				// C.JALR
				return Inst{Op: OpJALR, Rd: 1, Rs1: rd, Size: 2, Raw: w}
			}
			// C.ADD
			return Inst{Op: OpADD, Rd: rd, Rs1: rd, Rs2: rs2, Size: 2, Raw: w}
		case 6: // C.SWSP
			imm := bits(w, 8, 7)<<6 | bits(w, 12, 9)<<2
			return Inst{Op: OpSW, Rs1: 2, Rs2: uint8(bits(w, 6, 2)), Imm: int32(imm), Size: 2, Raw: w}
		}
		return ill
	}
	return ill
}

// cjImm decodes the C.J/C.JAL immediate.
func cjImm(w uint32) int32 {
	imm := bits(w, 12, 12)<<11 | bits(w, 8, 8)<<10 | bits(w, 10, 9)<<8 |
		bits(w, 6, 6)<<7 | bits(w, 7, 7)<<6 | bits(w, 2, 2)<<5 |
		bits(w, 11, 11)<<4 | bits(w, 5, 3)<<1
	return signExtend(imm, 11)
}

// cbImm decodes the C.BEQZ/C.BNEZ immediate.
func cbImm(w uint32) int32 {
	imm := bits(w, 12, 12)<<8 | bits(w, 6, 5)<<6 | bits(w, 2, 2)<<5 |
		bits(w, 11, 10)<<3 | bits(w, 4, 3)<<1
	return signExtend(imm, 8)
}
